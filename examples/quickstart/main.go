// Quickstart: bring up a 4-node SCRAMNet cluster, exchange messages
// with the BillBoard Protocol, and broadcast with single-step hardware
// multicast.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sim"
)

func main() {
	k := repro.NewKernel()
	tb, err := repro.NewTestbed(k, repro.SCRAMNet, 4)
	if err != nil {
		log.Fatal(err)
	}
	eps := tb.Endpoints

	// Node 0 sends a greeting to node 1, then broadcasts to everyone.
	k.Spawn("node0", func(p *sim.Proc) {
		if err := eps[0].Send(p, 1, []byte("hello, node 1")); err != nil {
			log.Fatal(err)
		}
		if err := eps[0].Mcast(p, []int{1, 2, 3}, []byte("hello, everyone")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8s] node 0: posted a unicast and a 3-way multicast\n", sim.Duration(p.Now()))
	})

	for r := 1; r < 4; r++ {
		r := r
		k.Spawn(fmt.Sprintf("node%d", r), func(p *sim.Proc) {
			buf := make([]byte, 64)
			if r == 1 { // node 1 gets the unicast first (in-order per sender)
				n, err := eps[1].Recv(p, 0, buf)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("[%8s] node 1: %q\n", sim.Duration(p.Now()), buf[:n])
			}
			n, err := eps[r].Recv(p, 0, buf)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%8s] node %d: %q\n", sim.Duration(p.Now()), r, buf[:n])
		})
	}

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}

	st := tb.Ring.NIC(0).Stats()
	fmt.Printf("\nnode 0 NIC: %d ring packets, %d bytes replicated to all banks\n",
		st.PacketsSent, st.BytesSent)
	fmt.Println("note: the multicast cost one buffer write + three flag words —")
	fmt.Println("each extra receiver added a single word of SCRAMNet traffic.")
}
