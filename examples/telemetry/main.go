// Telemetry: SCRAMNet's original habitat — hard-real-time state sharing
// for simulators, process control and telemetry (§2). No protocol at
// all: each producer owns a region of the replicated memory and stores
// sensor words straight into its NIC; every consumer sees them within a
// bounded, predictable number of ring hops.
//
// A flight-simulation-style setup: node 0 produces aircraft state at
// 1 kHz, nodes 1..3 (visual, motion, instructor stations) sample it and
// record staleness. The demo then bypasses a failed node on the dual
// ring mid-run — replication continues for the survivors.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
	"repro/internal/sim"
)

const (
	frames  = 50
	stateHz = 1000
	// stateBase is where the producer's state vector lives in the
	// replicated address space: 6 words (xyz position + attitude) and a
	// frame counter word.
	stateBase   = 0x1000
	frameOff    = stateBase + 6*4
	periodNanos = sim.Second / stateHz
)

func main() {
	k := repro.NewKernel()
	tb, err := repro.NewTestbed(k, repro.SCRAMNet, 4)
	if err != nil {
		log.Fatal(err)
	}
	ring := tb.Ring
	// Instrument the run: the ring reports hop and apply counters, and
	// each consumer station feeds its per-frame staleness into a
	// histogram. Instruments charge no virtual time, so the timeline is
	// identical with or without them.
	m := metrics.New()
	ring.SetMetrics(m)
	// Stream the registry every 10 ms of virtual time instead of taking
	// one snapshot at the end: the periodic points show the bypass event
	// as a flattening of the hop counter, not just a final total.
	stream := metrics.NewStream(k, m, 10*sim.Millisecond)

	// Producer: write the state vector then the frame counter (the ring
	// preserves per-sender order, so a consumer that sees frame N also
	// sees frame N's state — a seqlock with no lock word).
	k.Spawn("dynamics", func(p *sim.Proc) {
		for f := 1; f <= frames; f++ {
			for wIdx := 0; wIdx < 6; wIdx++ {
				ring.NIC(0).WriteWord(p, stateBase+4*wIdx, uint32(f*100+wIdx))
			}
			ring.NIC(0).WriteWord(p, frameOff, uint32(f))
			p.Delay(periodNanos)
		}
	})

	type sample struct {
		node    int
		frame   uint32
		stale   sim.Duration
		samples int
	}
	results := make([]sample, 4)
	for node := 1; node <= 3; node++ {
		node := node
		k.Spawn(fmt.Sprintf("station%d", node), func(p *sim.Proc) {
			stale := m.Histogram("telemetry.staleness_ns", node)
			var last uint32
			var worst sim.Duration
			count := 0
			// A bypassed station stops seeing frames; give up shortly
			// after the producer must have finished.
			deadline := sim.Time((frames + 5) * int64(periodNanos))
			for int(last) < frames && p.Now() < deadline {
				f := ring.NIC(node).ReadWord(p, frameOff)
				if f != last {
					last = f
					count++
					// Staleness: how far behind the producer's frame
					// clock this station is when it first sees frame f.
					produced := sim.Time(int64(f-1) * int64(periodNanos))
					lag := p.Now().Sub(produced)
					stale.Observe(int64(lag))
					if lag > worst {
						worst = lag
					}
					// Consistency check: state words must belong to
					// frame f (per-sender FIFO guarantees it).
					for wIdx := 0; wIdx < 6; wIdx++ {
						v := ring.NIC(node).ReadWord(p, stateBase+4*wIdx)
						if v != f*100+uint32(wIdx) {
							log.Fatalf("station %d: torn frame %d (word %d = %d)", node, f, wIdx, v)
						}
					}
				}
				p.Delay(50 * sim.Microsecond) // 20 kHz sampling
			}
			results[node] = sample{node, last, worst, count}
		})
	}

	// Mid-run, bypass station 2's node on the dual ring: the rest keep
	// receiving frames.
	k.At(sim.Time(20*periodNanos), func() {
		fmt.Println("t=20ms: node 2 failed — optical bypass engaged (dual ring)")
		ring.FailNode(2)
	})

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	k.Close()

	fmt.Printf("\n%-10s  %8s  %10s  %14s\n", "station", "frames", "seen", "worst staleness")
	for node := 1; node <= 3; node++ {
		r := results[node]
		status := "ok"
		if r.samples < frames {
			status = fmt.Sprintf("bypassed after frame %d", r.frame)
		}
		fmt.Printf("station %-3d  %8d  %10d  %14s  %s\n", node, frames, r.samples, r.stale, status)
	}
	fmt.Printf("\n%-10s  %8s  %10s  %10s  %10s\n", "station", "samples", "p50 stale", "p99 stale", "max stale")
	for node := 1; node <= 3; node++ {
		h := m.Histogram("telemetry.staleness_ns", node)
		fmt.Printf("station %-3d  %8d  %10s  %10s  %10s\n", node, h.Count(),
			sim.Duration(h.Quantile(0.5)), sim.Duration(h.Quantile(0.99)), sim.Duration(h.Max()))
	}
	// Ring activity over time, from the periodic snapshot stream: each
	// row is one 10 ms window's growth. The bypass at t=20ms is visible
	// as the hop rate dropping (three survivors forward, not four).
	points := stream.Points()
	fmt.Printf("\n%-10s  %12s  %12s   (from the 10 ms snapshot stream, %d points)\n",
		"window", "Δring.hops", "Δapplies", len(points))
	rollup := func(p metrics.StreamPoint, name string) int64 {
		v, _ := p.Snap.Rollup().Counter(name, metrics.NodeGlobal)
		return v
	}
	for i := 1; i < len(points); i++ {
		fmt.Printf("%-10s  %12d  %12d\n", sim.Duration(points[i].T).String(),
			rollup(points[i], "ring.hops")-rollup(points[i-1], "ring.hops"),
			rollup(points[i], "ring.packets_applied")-rollup(points[i-1], "ring.packets_applied"))
	}
	last := points[len(points)-1]
	fmt.Printf("ring totals at the last stream point (t=%s): %d packet hops, %d applies\n",
		sim.Duration(last.T), rollup(last, "ring.hops"), rollup(last, "ring.packets_applied"))

	fmt.Println("\nEvery surviving station saw every frame un-torn: single-writer")
	fmt.Println("regions + per-sender FIFO replication make the frame counter a")
	fmt.Println("free seqlock, and staleness stays bounded by design (§2).")
}
