// Paramdist: a broadcast-heavy master/worker workload — the master
// repeatedly broadcasts a parameter block, workers evaluate it and
// return scalar scores, and a barrier closes each round (the shape of
// iterative optimization, ensemble control, or frame-synchronous
// simulation). This is the workload class where the paper's multicast
// collectives pay off: compare the same program over the tree-based and
// multicast-based MPI_Bcast/MPI_Barrier, and over Fast Ethernet.
//
//	go run ./examples/paramdist [-rounds 100] [-params 256]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	rounds := flag.Int("rounds", 100, "broadcast/score/barrier rounds")
	params := flag.Int("params", 256, "parameter block size in bytes")
	flag.Parse()

	type config struct {
		name  string
		net   repro.Network
		mcast bool
	}
	configs := []config{
		{"SCRAMNet + multicast collectives", repro.SCRAMNet, true},
		{"SCRAMNet + tree collectives", repro.SCRAMNet, false},
		{"hybrid (BBP + Myrinet) + multicast", repro.Hybrid, true},
		{"Fast Ethernet (tree)", repro.FastEthernet, false},
	}
	fmt.Printf("master/worker parameter distribution: 4 ranks, %d rounds, %d-byte blocks\n\n",
		*rounds, *params)
	fmt.Printf("%-34s  %14s  %14s\n", "configuration", "total", "per round")
	var base float64
	for i, cfg := range configs {
		vt := farm(cfg.net, cfg.mcast, *rounds, *params)
		ms := float64(vt) / 1e6
		if i == 0 {
			base = ms
		}
		fmt.Printf("%-34s  %12.2fms  %12.1fµs   (%.1fx)\n",
			cfg.name, ms, 1e3*ms/float64(*rounds), ms/base)
	}
	fmt.Println("\nThe single-step bbp_Mcast turns the dominant broadcast+barrier")
	fmt.Println("pattern into a few ring transits — the paper's Figure 5/6 story")
	fmt.Println("at application level.")
}

func farm(net repro.Network, mcast bool, rounds, params int) sim.Duration {
	const ranks = 4
	k := repro.NewKernel()
	w, err := repro.NewMPI(k, net, ranks, mcast)
	if err != nil {
		log.Fatal(err)
	}
	var finish sim.Time
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		block := make([]byte, params)
		score := make([]byte, 8)
		best := make([]byte, 8)
		for r := 0; r < rounds; r++ {
			if c.Rank() == 0 {
				// New parameters derived from the last round.
				for i := range block {
					block[i] = byte(r + i)
				}
			}
			if err := c.Bcast(p, 0, block); err != nil {
				log.Fatal(err)
			}
			// Evaluate: a few microseconds of simulated compute.
			p.Delay(15 * sim.Microsecond)
			v := float64(int(block[0])+c.Rank()) / float64(r+1)
			binary.LittleEndian.PutUint64(score, math.Float64bits(v))
			if err := c.Reduce(p, 0, mpi.MaxF64, score, best); err != nil {
				log.Fatal(err)
			}
			if err := c.Barrier(p); err != nil {
				log.Fatal(err)
			}
		}
		if p.Now() > finish {
			finish = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return finish.Sub(0)
}
