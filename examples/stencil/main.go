// Stencil: a 1-D heat-diffusion solver parallelized with MPI halo
// exchange and a periodic Allreduce convergence check — the classic
// fine-grained parallel workload the paper's introduction motivates
// low-latency networks with. Run it on SCRAMNet and on Fast Ethernet to
// see why latency, not bandwidth, dominates at this granularity: every
// iteration exchanges two 8-byte halo cells per neighbor.
//
//	go run ./examples/stencil [-n 4096] [-iters 200] [-net all]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func main() {
	cells := flag.Int("n", 4096, "total grid cells")
	iters := flag.Int("iters", 200, "time steps")
	netFlag := flag.String("net", "all", "network (or 'all' to compare)")
	flag.Parse()

	nets := []repro.Network{repro.SCRAMNet, repro.FastEthernet, repro.ATM}
	if *netFlag != "all" {
		nets = []repro.Network{repro.Network(*netFlag)}
	}
	fmt.Printf("1-D heat diffusion: %d cells, %d steps, 4 ranks, halo = 8 B/neighbor/step\n\n", *cells, *iters)
	fmt.Printf("%-14s  %14s  %16s\n", "network", "virtual time", "per step")
	for _, net := range nets {
		vt, checksum := solve(net, *cells, *iters)
		fmt.Printf("%-14s  %12.2fms  %13.1fµs   (checksum %.6f)\n",
			net, float64(vt)/1e6, float64(vt)/1e3/float64(*iters), checksum)
	}
	fmt.Println("\nThe physics is identical everywhere (checksums match); only the")
	fmt.Println("communication time differs — the paper's case for SCRAMNet at")
	fmt.Println("fine granularity.")
}

func solve(net repro.Network, cells, iters int) (sim.Duration, float64) {
	const ranks = 4
	k := repro.NewKernel()
	w, err := repro.NewMPI(k, net, ranks, net == repro.SCRAMNet)
	if err != nil {
		log.Fatal(err)
	}
	var finish sim.Time
	var checksum float64
	local := cells / ranks

	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		me, n := c.Rank(), c.Size()
		// Grid with ghost cells at [0] and [local+1]; hot spot at the
		// global center.
		u := make([]float64, local+2)
		next := make([]float64, local+2)
		for i := 1; i <= local; i++ {
			g := me*local + i - 1
			if g == cells/2 {
				u[i] = 1000
			}
		}
		buf8 := make([]byte, 8)
		halo := func(val float64, dst int) {
			binary.LittleEndian.PutUint64(buf8, math.Float64bits(val))
			if err := c.Send(p, dst, 1, buf8); err != nil {
				log.Fatal(err)
			}
		}
		recvHalo := func(src int) float64 {
			b := make([]byte, 8)
			if _, err := c.Recv(p, src, 1, b); err != nil {
				log.Fatal(err)
			}
			return math.Float64frombits(binary.LittleEndian.Uint64(b))
		}
		for it := 0; it < iters; it++ {
			// Exchange halos with neighbors; even ranks send first to
			// avoid rendezvous deadlock (messages are eager anyway).
			if me > 0 {
				halo(u[1], me-1)
			}
			if me < n-1 {
				halo(u[local], me+1)
			}
			if me > 0 {
				u[0] = recvHalo(me - 1)
			}
			if me < n-1 {
				u[local+1] = recvHalo(me + 1)
			}
			// Jacobi update (compute time charged per cell).
			p.Delay(sim.Duration(local) * 12 * sim.Nanosecond)
			for i := 1; i <= local; i++ {
				next[i] = u[i] + 0.25*(u[i-1]-2*u[i]+u[i+1])
			}
			u, next = next, u
			// Every 50 steps, a global residual via Allreduce.
			if it%50 == 49 {
				var local8 [8]byte
				sum := 0.0
				for i := 1; i <= local; i++ {
					sum += u[i]
				}
				binary.LittleEndian.PutUint64(local8[:], math.Float64bits(sum))
				out := make([]byte, 8)
				if err := c.Allreduce(p, mpi.SumF64, local8[:], out); err != nil {
					log.Fatal(err)
				}
				if me == 0 {
					checksum = math.Float64frombits(binary.LittleEndian.Uint64(out))
				}
			}
		}
		if p.Now() > finish {
			finish = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return finish.Sub(0), checksum
}
