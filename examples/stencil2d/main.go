// Stencil2d: a 2-D Jacobi heat solver on a Cartesian process grid with
// halo exchange via MPI_Cart_shift — the denser communication pattern
// (four neighbors per rank per step) that magnifies the latency gap
// between SCRAMNet and the TCP/IP networks.
//
//	go run ./examples/stencil2d [-n 64] [-iters 60]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	px, py = 2, 2 // process grid
	ranks  = px * py
)

func main() {
	n := flag.Int("n", 64, "local grid edge per rank")
	iters := flag.Int("iters", 60, "Jacobi sweeps")
	flag.Parse()

	fmt.Printf("2-D heat diffusion: %dx%d local grid per rank, %d sweeps, %dx%d grid of ranks\n",
		*n, *n, *iters, px, py)
	fmt.Printf("halo traffic: 4 exchanges of %d bytes per rank per sweep\n\n", 8**n)
	fmt.Printf("%-14s  %14s  %14s\n", "network", "virtual time", "per sweep")
	var checks []float64
	for _, net := range []repro.Network{repro.SCRAMNet, repro.FastEthernet} {
		vt, sum := solve(net, *n, *iters)
		checks = append(checks, sum)
		fmt.Printf("%-14s  %12.2fms  %13.1fµs\n", net, float64(vt)/1e6, float64(vt)/1e3/float64(*iters))
	}
	if math.Abs(checks[0]-checks[1]) > 1e-9 {
		log.Fatalf("solutions diverge across networks: %v", checks)
	}
	fmt.Printf("\nidentical heat checksum on both networks: %.6f\n", checks[0])
}

func solve(net repro.Network, n, iters int) (sim.Duration, float64) {
	k := repro.NewKernel()
	w, err := repro.NewMPI(k, net, ranks, net == repro.SCRAMNet)
	if err != nil {
		log.Fatal(err)
	}
	var finish sim.Time
	var checksum float64
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		ct, err := mpi.CartCreate(c, []int{py, px}, []bool{false, false})
		if err != nil {
			log.Fatal(err)
		}
		// Local grid with one ghost ring; (n+2)x(n+2).
		stride := n + 2
		u := make([]float64, stride*stride)
		next := make([]float64, stride*stride)
		co := ct.Coords(c.Rank())
		if co[0] == 0 && co[1] == 0 {
			u[stride*(n/2)+n/2] = 4096 // hot spot in rank (0,0)
		}
		rowBuf := make([]byte, 8*n)
		colBuf := make([]byte, 8*n)
		packRow := func(row int, dst []byte) {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(u[stride*row+1+i]))
			}
		}
		unpackRow := func(row int, src []byte) {
			for i := 0; i < n; i++ {
				u[stride*row+1+i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
			}
		}
		packCol := func(col int, dst []byte) {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(u[stride*(1+i)+col]))
			}
		}
		unpackCol := func(col int, src []byte) {
			for i := 0; i < n; i++ {
				u[stride*(1+i)+col] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
			}
		}
		recvBuf := make([]byte, 8*n)
		for it := 0; it < iters; it++ {
			// North/south halo (dimension 0), then west/east (dim 1).
			packRow(1, rowBuf)
			if got, err := ct.SendrecvShift(p, 0, -1, 1, rowBuf, recvBuf); err != nil {
				log.Fatal(err)
			} else if got {
				unpackRow(n+1, recvBuf)
			}
			packRow(n, rowBuf)
			if got, err := ct.SendrecvShift(p, 0, 1, 2, rowBuf, recvBuf); err != nil {
				log.Fatal(err)
			} else if got {
				unpackRow(0, recvBuf)
			}
			packCol(1, colBuf)
			if got, err := ct.SendrecvShift(p, 1, -1, 3, colBuf, recvBuf); err != nil {
				log.Fatal(err)
			} else if got {
				unpackCol(n+1, recvBuf)
			}
			packCol(n, colBuf)
			if got, err := ct.SendrecvShift(p, 1, 1, 4, colBuf, recvBuf); err != nil {
				log.Fatal(err)
			} else if got {
				unpackCol(0, recvBuf)
			}
			// Five-point Jacobi sweep; compute time charged per cell.
			p.Delay(sim.Duration(n*n) * 9 * sim.Nanosecond)
			for y := 1; y <= n; y++ {
				for x := 1; x <= n; x++ {
					i := stride*y + x
					next[i] = u[i] + 0.2*(u[i-1]+u[i+1]+u[i-stride]+u[i+stride]-4*u[i])
				}
			}
			u, next = next, u
		}
		// Global heat checksum.
		local := 0.0
		for y := 1; y <= n; y++ {
			for x := 1; x <= n; x++ {
				local += u[stride*y+x]
			}
		}
		lb := make([]byte, 8)
		binary.LittleEndian.PutUint64(lb, math.Float64bits(local))
		gb := make([]byte, 8)
		if err := c.Allreduce(p, mpi.SumF64, lb, gb); err != nil {
			log.Fatal(err)
		}
		if c.Rank() == 0 {
			checksum = math.Float64frombits(binary.LittleEndian.Uint64(gb))
		}
		if p.Now() > finish {
			finish = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	return finish.Sub(0), checksum
}
