// Pubsub: topic fan-out with in-network filter/steer handlers. A
// publisher partitions a region of its replicated-memory partition
// into fixed-size topic slots and broadcasts market-feed-style updates
// into them — one ring write reaches everyone, as in the telemetry
// example. The new part is on the receive side: each subscriber node
// installs a spin.TopicFilter on its NIC, and packets for topics it
// did not subscribe to are steered past its bank (spin.Steer) at the
// transit point. The node's replica only ever materializes the topics
// it asked for, without the host spending a single bus cycle to filter
// — the sPIN idea (PAPERS.md) grafted onto SCRAMNet's ring.
//
//	go run ./examples/pubsub
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spin"
)

const (
	nodes  = 4
	topics = 8
	// Each topic slot carries 3 payload words plus a sequence word the
	// publisher writes last — per-sender FIFO makes it a free seqlock.
	slotWords = 4
	slotBytes = slotWords * 4
	base      = 0x2000
	rounds    = 25
	period    = 100 * sim.Microsecond
)

// subscribedTo reports node's topic interest: node 1 takes the even
// topics, node 2 the odd ones, node 3 only topics 0 and 1.
func subscribedTo(node, topic int) bool {
	switch node {
	case 1:
		return topic%2 == 0
	case 2:
		return topic%2 == 1
	default:
		return topic < 2
	}
}

func slotOff(topic int) int { return base + topic*slotBytes }
func seqOff(topic int) int  { return slotOff(topic) + (slotWords-1)*4 }

func main() {
	k := repro.NewKernel()
	tb, err := repro.NewTestbed(k, repro.SCRAMNet, nodes)
	if err != nil {
		log.Fatal(err)
	}
	ring := tb.Ring
	m := metrics.New()
	ring.SetMetrics(m)

	// Subscribers install their filters before any traffic flows. The
	// filter is pure NIC-side state: no host polling is involved in
	// rejecting a topic.
	for node := 1; node < nodes; node++ {
		node := node
		ring.NIC(node).InstallHandler(base, topics*slotBytes, &spin.TopicFilter{
			Base: base, SlotBytes: slotBytes, Topics: topics,
			Subscribed: func(topic int) bool { return subscribedTo(node, topic) },
		})
	}

	// Publisher: every period, update each topic's payload words and
	// then its sequence word.
	k.Spawn("publisher", func(p *sim.Proc) {
		for r := 1; r <= rounds; r++ {
			for topic := 0; topic < topics; topic++ {
				for w := 0; w < slotWords-1; w++ {
					ring.NIC(0).WriteWord(p, slotOff(topic)+4*w, uint32(r*1000+topic*10+w))
				}
				ring.NIC(0).WriteWord(p, seqOff(topic), uint32(r))
			}
			p.Delay(period)
		}
	})

	// Subscribers: poll the sequence words of subscribed topics and
	// verify un-torn payloads; count updates seen per topic.
	type tally struct {
		seen  [topics]int
		wrong int
	}
	results := make([]tally, nodes)
	for node := 1; node < nodes; node++ {
		node := node
		k.Spawn(fmt.Sprintf("subscriber%d", node), func(p *sim.Proc) {
			var last [topics]uint32
			deadline := sim.Time(int64(rounds+5) * int64(period))
			for p.Now() < deadline {
				for topic := 0; topic < topics; topic++ {
					if !subscribedTo(node, topic) {
						continue
					}
					seq := ring.NIC(node).ReadWord(p, seqOff(topic))
					if seq == last[topic] {
						continue
					}
					last[topic] = seq
					results[node].seen[topic]++
					for w := 0; w < slotWords-1; w++ {
						v := ring.NIC(node).ReadWord(p, slotOff(topic)+4*w)
						if v != uint32(int(seq)*1000+topic*10+w) {
							results[node].wrong++
						}
					}
				}
				p.Delay(20 * sim.Microsecond)
			}
		})
	}

	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	k.Close()

	fmt.Printf("%d topics × %d rounds published; per-node view after the run:\n\n", topics, rounds)
	fmt.Printf("%-12s  %-28s  %10s  %10s  %8s\n", "node", "subscribed topics", "updates", "steered", "torn")
	for node := 1; node < nodes; node++ {
		subs := ""
		updates := 0
		unsubscribedClean := true
		for topic := 0; topic < topics; topic++ {
			if subscribedTo(node, topic) {
				if subs != "" {
					subs += ","
				}
				subs += fmt.Sprint(topic)
				updates += results[node].seen[topic]
			} else {
				// The whole point: unsubscribed slots never materialize
				// in this node's bank replica.
				for b, v := range ring.NIC(node).Peek(slotOff(topic), slotBytes) {
					if v != 0 {
						unsubscribedClean = false
						_ = b
					}
				}
			}
		}
		st := ring.NIC(node).HandlerStats()
		fmt.Printf("subscriber%d  %-28s  %10d  %10d  %8d\n", node, subs, updates, st.PacketsSteered, results[node].wrong)
		if !unsubscribedClean {
			log.Fatalf("subscriber%d: an unsubscribed topic leaked into the bank replica", node)
		}
		if results[node].wrong != 0 {
			log.Fatalf("subscriber%d: torn topic payloads", node)
		}
	}
	fmt.Printf("\nspin.packets_steered (global): %d — every steered packet is a\n", rollup(m))
	fmt.Println("bank write the subscriber's replica never took and its host never")
	fmt.Println("had to inspect: filtering ran at the ring transit point.")
}

func rollup(m *metrics.Registry) int64 {
	v, _ := m.Snapshot().Rollup().Counter("spin.packets_steered", metrics.NodeGlobal)
	return v
}
