// Package prof wires the standard runtime/pprof profiles into a
// command's flag set. The simulation kernel's own self-profiler
// (internal/sim.Profiler) attributes wall time to *event kinds*; these
// profiles attribute it to *functions* — the two views compose: the
// kind table says which layer is hot, the pprof graph says which code.
//
// Usage, in main():
//
//	start, stop := prof.Flags()
//	flag.Parse()
//	start()
//	defer stop()
//
// Paths that terminate via os.Exit (which skips defers) must call the
// stop function explicitly first, or the CPU profile is truncated and
// the heap profile never written.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags registers -cpuprofile and -memprofile on the default flag set.
// It must be called before flag.Parse; start must be called after.
// Both returned functions do nothing when the flags were not given, and
// stop is idempotent.
func Flags() (start, stop func()) {
	cpu := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mem := flag.String("memprofile", "", "write a heap profile to this file on exit")
	started := false
	start = func() {
		if *cpu == "" {
			return
		}
		f, err := os.Create(*cpu)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(2)
		}
		started = true
	}
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		if started {
			pprof.StopCPUProfile()
		}
		if *mem != "" {
			f, err := os.Create(*mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		}
	}
	return start, stop
}
