// Package tcpip is a deliberately small kernel TCP/IP model ("TCP-lite")
// that runs message-oriented sockets over any xport.Fabric. It exists to
// reproduce the software overhead structure that dominates the baseline
// networks in the paper: system calls, per-segment protocol processing,
// software checksums, user↔kernel copies, interrupts, and windowed flow
// control with cumulative acknowledgements.
//
// Simplifications, documented per the reproduction contract: the
// fabrics are lossless and FIFO, so there is no retransmission, no
// congestion control and no connection handshake (the paper's
// measurements are steady-state ping-pongs on established connections);
// message framing (length-prefixing) is folded into the segment header
// rather than modeled as a byte stream.
//
// Each node runs its protocol stack as a daemon process — the testbed's
// dual-processor SMP boxes allow kernel receive processing to proceed
// while the application computes.
package tcpip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/xport"
)

// HeaderBytes is the on-wire header per segment: a 20-byte IP header
// plus a 20-byte TCP-lite header.
const HeaderBytes = 40

const (
	kindData = 1
	kindAck  = 2
)

// Config holds the stack's cost model and protocol parameters.
type Config struct {
	// SyscallSend / SyscallRecv are the fixed costs of entering the
	// kernel for a send or receive call.
	SyscallSend sim.Duration
	SyscallRecv sim.Duration
	// StackPerSegmentTx / Rx are the TCP/IP protocol processing costs
	// per segment on each side.
	StackPerSegmentTx sim.Duration
	StackPerSegmentRx sim.Duration
	// CopyPerByte is the user↔kernel copy cost, charged on each side.
	CopyPerByte sim.Duration
	// ChecksumPerByte is the software Internet-checksum cost, charged on
	// each side; zero for fabrics whose NICs checksum in hardware (ATM
	// AAL5).
	ChecksumPerByte sim.Duration
	// DriverTx is the per-segment driver and DMA-posting cost.
	DriverTx sim.Duration
	// InterruptCost is charged per arriving frame before protocol
	// processing.
	InterruptCost sim.Duration
	// WindowBytes bounds unacknowledged in-flight data per peer.
	WindowBytes int
	// AckEveryBytes makes the receiver emit a cumulative ACK once this
	// many new bytes arrived; a completed message always ACKs.
	AckEveryBytes int
	// PollCost is a non-blocking readiness check (FIONREAD-style),
	// charged by TryRecv instead of a full receive syscall.
	PollCost sim.Duration
	// Nagle enables sender-side small-segment coalescing: a sub-MSS
	// segment waits until no data is unacknowledged. The benchmark
	// profiles leave it off (TCP_NODELAY), as latency measurements of
	// the era did; turn it on together with DelayedAck to reproduce the
	// classic request-response stall.
	Nagle bool
	// DelayedAck, when positive, holds back completion ACKs for up to
	// this long in the hope of piggybacking (threshold ACKs still go
	// out immediately).
	DelayedAck sim.Duration
	// MaxMessage bounds one application message.
	MaxMessage int
	// RecvTimeout bounds blocking receives (0 = forever).
	RecvTimeout sim.Duration
}

// FastEthernetProfile returns the cost model for kernel TCP/IP on
// 100 Mb/s Ethernet (software checksums, two copies).
func FastEthernetProfile() Config {
	return Config{
		SyscallSend:       26 * sim.Microsecond,
		SyscallRecv:       24 * sim.Microsecond,
		StackPerSegmentTx: 21 * sim.Microsecond,
		StackPerSegmentRx: 21 * sim.Microsecond,
		CopyPerByte:       15 * sim.Nanosecond,
		ChecksumPerByte:   10 * sim.Nanosecond,
		DriverTx:          8 * sim.Microsecond,
		InterruptCost:     17 * sim.Microsecond,
		WindowBytes:       64 << 10,
		AckEveryBytes:     4096,
		PollCost:          3 * sim.Microsecond,
		MaxMessage:        1 << 20,
		RecvTimeout:       5 * sim.Second,
	}
}

// ATMProfile returns the cost model for IP-over-ATM: AAL5 CRC in
// hardware (no software checksum) but a heavier driver and interrupt
// path than Ethernet.
func ATMProfile() Config {
	c := FastEthernetProfile()
	c.ChecksumPerByte = 0
	c.DriverTx = 16 * sim.Microsecond
	c.InterruptCost = 26 * sim.Microsecond
	c.StackPerSegmentRx = 24 * sim.Microsecond
	return c
}

// MyrinetProfile returns the cost model for kernel TCP/IP over the
// Myrinet driver.
func MyrinetProfile() Config {
	c := FastEthernetProfile()
	c.DriverTx = 12 * sim.Microsecond
	c.InterruptCost = 15 * sim.Microsecond
	return c
}

// Errors returned by sockets.
var (
	ErrTimeout   = errors.New("tcpip: operation timed out")
	ErrTooLarge  = errors.New("tcpip: message exceeds MaxMessage")
	ErrTruncated = errors.New("tcpip: receive buffer smaller than message")
	ErrBadRank   = errors.New("tcpip: bad peer rank")
)

// header is the TCP-lite segment header.
type header struct {
	kind  byte
	msgID uint32
	off   uint32
	total uint32
	ack   uint32 // cumulative payload bytes acknowledged (kindAck)
}

func encodeHeader(h header, payload []byte) []byte {
	f := make([]byte, HeaderBytes+len(payload))
	f[0] = h.kind
	binary.LittleEndian.PutUint32(f[4:], h.msgID)
	binary.LittleEndian.PutUint32(f[8:], h.off)
	binary.LittleEndian.PutUint32(f[12:], h.total)
	binary.LittleEndian.PutUint32(f[16:], h.ack)
	copy(f[HeaderBytes:], payload)
	return f
}

func decodeHeader(f []byte) (header, []byte, error) {
	if len(f) < HeaderBytes {
		return header{}, nil, fmt.Errorf("tcpip: %d-byte frame shorter than header", len(f))
	}
	h := header{
		kind:  f[0],
		msgID: binary.LittleEndian.Uint32(f[4:]),
		off:   binary.LittleEndian.Uint32(f[8:]),
		total: binary.LittleEndian.Uint32(f[12:]),
		ack:   binary.LittleEndian.Uint32(f[16:]),
	}
	return h, f[HeaderBytes:], nil
}

// Stats counts socket activity.
type Stats struct {
	MsgsSent     int64
	MsgsRecv     int64
	SegmentsSent int64
	SegmentsRecv int64
	AcksSent     int64
	AcksRecv     int64
	BytesSent    int64
	BytesRecv    int64
}

var _ xport.Endpoint = (*Stack)(nil)
