package tcpip

import (
	"testing"

	"repro/internal/sim"
)

// nagleWorld builds two stacks with the given Nagle/delayed-ACK policy.
func nagleWorld(t *testing.T, nagle bool, delayedAck sim.Duration) (*sim.Kernel, []*Stack) {
	t.Helper()
	return feWorld(t, 2, func(c *Config) {
		c.Nagle = nagle
		c.DelayedAck = delayedAck
	})
}

// twoSmallThenEcho measures a sender issuing two back-to-back small
// messages and waiting for an echo of the second — the request pattern
// that trips the Nagle/delayed-ACK interaction.
func twoSmallThenEcho(t *testing.T, nagle bool, delayedAck sim.Duration) sim.Duration {
	t.Helper()
	k, stacks := nagleWorld(t, nagle, delayedAck)
	var elapsed sim.Duration
	k.Spawn("client", func(p *sim.Proc) {
		start := p.Now()
		if err := stacks[0].Send(p, 1, []byte("req-1")); err != nil {
			t.Error(err)
			return
		}
		if err := stacks[0].Send(p, 1, []byte("req-2")); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 16)
		if _, err := stacks[0].Recv(p, 1, buf); err != nil {
			t.Error(err)
			return
		}
		elapsed = p.Now().Sub(start)
	})
	k.Spawn("server", func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < 2; i++ {
			if _, err := stacks[1].Recv(p, 0, buf); err != nil {
				t.Error(err)
				return
			}
		}
		if err := stacks[1].Send(p, 0, []byte("resp")); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestNagleDelayedAckStall(t *testing.T) {
	const delayedAck = 500 * sim.Microsecond
	fast := twoSmallThenEcho(t, false, 0)
	stalled := twoSmallThenEcho(t, true, delayedAck)
	// The second small request must wait for the delayed ACK of the
	// first: the classic stall adds roughly the delayed-ACK timeout.
	if stalled < fast+sim.Duration(float64(delayedAck)*0.8) {
		t.Fatalf("Nagle+delayed-ACK exchange %.1fµs vs %.1fµs plain: expected a ≥%.0fµs stall",
			stalled.Microseconds(), fast.Microseconds(), (delayedAck).Microseconds()*0.8)
	}
}

func TestNagleAloneStillCompletes(t *testing.T) {
	// Nagle without delayed ACK: the immediate completion ACK releases
	// the second segment quickly — a modest penalty, no stall.
	fast := twoSmallThenEcho(t, false, 0)
	nagled := twoSmallThenEcho(t, true, 0)
	if nagled < fast {
		t.Fatalf("Nagle made the exchange faster? %.1f vs %.1f", nagled.Microseconds(), fast.Microseconds())
	}
	if nagled > fast+300*1000 {
		t.Fatalf("Nagle alone stalled %.1fµs (plain %.1fµs)", nagled.Microseconds(), fast.Microseconds())
	}
}

func TestDelayedAckStillDrivesWindow(t *testing.T) {
	// A window-limited bulk transfer must complete even with delayed
	// ACKs: threshold ACKs bypass the timer.
	k, stacks := feWorld(t, 2, func(c *Config) {
		c.DelayedAck = 500 * sim.Microsecond
		c.WindowBytes = 8 << 10
	})
	const size = 128 << 10
	done := false
	k.Spawn("tx", func(p *sim.Proc) {
		if err := stacks[0].Send(p, 1, make([]byte, size)); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, size)
		n, err := stacks[1].Recv(p, 0, buf)
		done = err == nil && n == size
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("windowed transfer stalled under delayed ACK")
	}
}

func TestLargeSegmentsBypassNagle(t *testing.T) {
	// Full-MSS segments are never Nagled: a bulk transfer performs the
	// same with and without it.
	measure := func(nagle bool) sim.Duration {
		k, stacks := nagleWorld(t, nagle, 0)
		const size = 64 << 10
		var elapsed sim.Duration
		k.Spawn("tx", func(p *sim.Proc) {
			start := p.Now()
			if err := stacks[0].Send(p, 1, make([]byte, size)); err != nil {
				t.Error(err)
			}
			elapsed = p.Now().Sub(start)
		})
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, size)
			if _, err := stacks[1].Recv(p, 0, buf); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	plain, nagled := measure(false), measure(true)
	// The tail segment may wait one in-flight drain; allow a small
	// difference but not a stall.
	if diff := nagled - plain; diff < 0 || diff > 20*1000*1000 {
		t.Fatalf("bulk Nagle penalty %v (plain %v)", diff, plain)
	}
}
