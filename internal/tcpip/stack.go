package tcpip

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xport"
)

// Stack is one node's TCP-lite instance plus its message socket; it
// implements xport.Endpoint.
type Stack struct {
	k    *sim.Kernel
	fab  xport.Fabric
	cfg  Config
	node int

	rxFrames *sim.Queue[frameIn]
	peers    []*peer
	// completed[src] queues fully reassembled messages from src.
	completed [][]recvMsg
	rxWake    *sim.Cond
	rrNext    int
	stats     Stats
}

type frameIn struct {
	src   int
	frame []byte
}

type recvMsg struct {
	data []byte
}

// peer is per-remote-node connection state.
type peer struct {
	// Transmit side.
	nextMsgID uint32
	sentBytes uint32 // cumulative payload bytes sent
	ackdBytes uint32 // cumulative payload bytes acknowledged by the peer
	txWake    *sim.Cond

	// Receive side.
	asm         map[uint32]*assembly
	rcvdBytes   uint32 // cumulative payload bytes received
	lastAckSent uint32
	ackTimer    *sim.Timer
}

type assembly struct {
	total int
	got   int
	data  []byte
}

// NewStack attaches a TCP-lite stack to node on fab and starts its
// kernel daemon.
func NewStack(k *sim.Kernel, fab xport.Fabric, node int, cfg Config) *Stack {
	s := &Stack{
		k:         k,
		fab:       fab,
		cfg:       cfg,
		node:      node,
		rxFrames:  sim.NewQueue[frameIn](k),
		completed: make([][]recvMsg, fab.Nodes()),
		rxWake:    sim.NewCond(k),
	}
	for i := 0; i < fab.Nodes(); i++ {
		s.peers = append(s.peers, &peer{txWake: sim.NewCond(k), asm: map[uint32]*assembly{}})
	}
	fab.SetHandler(node, func(src int, frame []byte) {
		s.rxFrames.Push(frameIn{src, frame})
	})
	k.SpawnDaemon(fmt.Sprintf("tcpip-%d", node), s.kernelLoop)
	return s
}

// kernelLoop is the node's softirq context: it takes interrupts, runs
// per-segment protocol processing, reassembles messages, and emits
// cumulative ACKs.
func (s *Stack) kernelLoop(p *sim.Proc) {
	for {
		in := s.rxFrames.Pop(p)
		p.Delay(s.cfg.InterruptCost)
		h, payload, err := decodeHeader(in.frame)
		if err != nil {
			continue // malformed frame: count and drop
		}
		pr := s.peers[in.src]
		switch h.kind {
		case kindAck:
			s.stats.AcksRecv++
			p.Delay(s.cfg.StackPerSegmentRx / 2) // ACK processing is cheaper
			if int32(h.ack-pr.ackdBytes) > 0 {
				pr.ackdBytes = h.ack
				pr.txWake.Broadcast()
			}
		case kindData:
			s.stats.SegmentsRecv++
			p.Delay(s.cfg.StackPerSegmentRx + sim.Duration(len(payload))*s.cfg.ChecksumPerByte)
			a := pr.asm[h.msgID]
			if a == nil {
				a = &assembly{total: int(h.total), data: make([]byte, int(h.total))}
				pr.asm[h.msgID] = a
			}
			copy(a.data[h.off:], payload)
			a.got += len(payload)
			pr.rcvdBytes += uint32(len(payload))
			done := a.got >= a.total
			if done {
				delete(pr.asm, h.msgID)
				s.completed[in.src] = append(s.completed[in.src], recvMsg{a.data})
				s.rxWake.Broadcast()
			}
			// Cumulative ACK policy. Threshold crossings ACK at once
			// (they clock the window open). Beyond that, every byte is
			// eventually acknowledged: immediately when DelayedAck is
			// zero, else within the delayed-ACK timeout — TCP's
			// guarantee that a Nagle'd sender can never starve.
			overThreshold := pr.rcvdBytes-pr.lastAckSent >= uint32(s.cfg.AckEveryBytes)
			switch {
			case overThreshold:
				s.sendAck(in.src, pr)
			case pr.rcvdBytes == pr.lastAckSent:
				// Nothing outstanding (duplicate application of an
				// already-acked range cannot happen on a FIFO fabric).
			case s.cfg.DelayedAck <= 0:
				s.sendAck(in.src, pr)
			case pr.ackTimer == nil:
				src := in.src
				pr.ackTimer = s.k.AfterKind(s.cfg.DelayedAck, "fabric", func() {
					pr.ackTimer = nil
					s.sendAck(src, pr)
				})
			}
		}
	}
}

// sendAck emits a cumulative ACK to peer src, canceling any pending
// delayed-ACK timer.
func (s *Stack) sendAck(src int, pr *peer) {
	if pr.ackTimer != nil {
		pr.ackTimer.Stop()
		pr.ackTimer = nil
	}
	pr.lastAckSent = pr.rcvdBytes
	s.stats.AcksSent++
	s.fab.Transmit(s.node, src, encodeHeader(header{kind: kindAck, ack: pr.rcvdBytes}, nil))
}

// Rank returns this stack's node number.
func (s *Stack) Rank() int { return s.node }

// Procs returns the node count.
func (s *Stack) Procs() int { return s.fab.Nodes() }

// MaxMessage returns the largest application message.
func (s *Stack) MaxMessage() int { return s.cfg.MaxMessage }

// NativeMcast reports false: IP-level multicast is not modeled; MPI over
// TCP loops over point-to-point sends, as MPICH does.
func (s *Stack) NativeMcast() bool { return false }

// Stats returns a copy of the socket counters.
func (s *Stack) Stats() Stats { return s.stats }

// mss returns the payload bytes per segment.
func (s *Stack) mss() int { return s.fab.MTU() - HeaderBytes }

// Send transmits data to dst, segmenting at the fabric MTU and blocking
// (in virtual time) on the flow-control window.
func (s *Stack) Send(p *sim.Proc, dst int, data []byte) error {
	if dst == s.node || dst < 0 || dst >= s.Procs() {
		return ErrBadRank
	}
	if len(data) > s.cfg.MaxMessage {
		return ErrTooLarge
	}
	pr := s.peers[dst]
	p.Delay(s.cfg.SyscallSend)
	msgID := pr.nextMsgID
	pr.nextMsgID++
	total := len(data)
	off := 0
	for {
		seg := total - off
		if seg > s.mss() {
			seg = s.mss()
		}
		// Window: block until in-flight bytes fit.
		for pr.sentBytes-pr.ackdBytes+uint32(seg) > uint32(s.cfg.WindowBytes) {
			pr.txWake.Wait(p)
		}
		// Nagle: a small segment may not leave while data is in flight.
		if s.cfg.Nagle && seg < s.mss() {
			for pr.sentBytes != pr.ackdBytes {
				pr.txWake.Wait(p)
			}
		}
		p.Delay(s.cfg.StackPerSegmentTx +
			sim.Duration(seg)*(s.cfg.CopyPerByte+s.cfg.ChecksumPerByte) +
			s.cfg.DriverTx)
		h := header{kind: kindData, msgID: msgID, off: uint32(off), total: uint32(total)}
		s.fab.Transmit(s.node, dst, encodeHeader(h, data[off:off+seg]))
		pr.sentBytes += uint32(seg)
		s.stats.SegmentsSent++
		off += seg
		if off >= total {
			break
		}
	}
	s.stats.MsgsSent++
	s.stats.BytesSent += int64(total)
	return nil
}

// Mcast loops over Send: no replication below the socket layer.
func (s *Stack) Mcast(p *sim.Proc, dsts []int, data []byte) error {
	for _, d := range dsts {
		if err := s.Send(p, d, data); err != nil {
			return err
		}
	}
	return nil
}

func (s *Stack) pop(src int) (recvMsg, bool) {
	q := s.completed[src]
	if len(q) == 0 {
		return recvMsg{}, false
	}
	m := q[0]
	s.completed[src] = q[1:]
	return m, true
}

func (s *Stack) deliver(p *sim.Proc, m recvMsg, buf []byte) (int, error) {
	if len(m.data) > len(buf) {
		return 0, ErrTruncated
	}
	p.Delay(sim.Duration(len(m.data)) * s.cfg.CopyPerByte)
	copy(buf, m.data)
	s.stats.MsgsRecv++
	s.stats.BytesRecv += int64(len(m.data))
	return len(m.data), nil
}

// Recv blocks for the next message from src.
func (s *Stack) Recv(p *sim.Proc, src int, buf []byte) (int, error) {
	if src == s.node || src < 0 || src >= s.Procs() {
		return 0, ErrBadRank
	}
	p.Delay(s.cfg.SyscallRecv)
	deadline := sim.Time(-1)
	if s.cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(s.cfg.RecvTimeout)
	}
	for {
		if m, ok := s.pop(src); ok {
			return s.deliver(p, m, buf)
		}
		if deadline >= 0 {
			if p.Now() >= deadline || !s.rxWake.WaitTimeout(p, deadline.Sub(p.Now())) {
				return 0, ErrTimeout
			}
		} else {
			s.rxWake.Wait(p)
		}
	}
}

// TryRecv checks once, without blocking, for a message from src. It
// charges only a readiness-poll cost; the copy-out still costs a full
// delivery when a message is present.
func (s *Stack) TryRecv(p *sim.Proc, src int, buf []byte) (int, bool, error) {
	if src == s.node || src < 0 || src >= s.Procs() {
		return 0, false, ErrBadRank
	}
	p.Delay(s.cfg.PollCost)
	if m, ok := s.pop(src); ok {
		n, err := s.deliver(p, m, buf)
		return n, err == nil, err
	}
	return 0, false, nil
}

// RecvAny blocks for the next message from any source, round-robin fair.
func (s *Stack) RecvAny(p *sim.Proc, buf []byte) (src, n int, err error) {
	p.Delay(s.cfg.SyscallRecv)
	deadline := sim.Time(-1)
	if s.cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(s.cfg.RecvTimeout)
	}
	for {
		for i := 0; i < s.Procs(); i++ {
			c := (s.rrNext + i) % s.Procs()
			if c == s.node {
				continue
			}
			if m, ok := s.pop(c); ok {
				s.rrNext = (c + 1) % s.Procs()
				n, err = s.deliver(p, m, buf)
				return c, n, err
			}
		}
		if deadline >= 0 {
			if p.Now() >= deadline || !s.rxWake.WaitTimeout(p, deadline.Sub(p.Now())) {
				return 0, 0, ErrTimeout
			}
		} else {
			s.rxWake.Wait(p)
		}
	}
}
