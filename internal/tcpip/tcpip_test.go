package tcpip

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/atm"
	"repro/internal/ethernet"
	"repro/internal/myrinet"
	"repro/internal/sim"
	"repro/internal/xport"
)

func feWorld(t testing.TB, nodes int, mutate ...func(*Config)) (*sim.Kernel, []*Stack) {
	t.Helper()
	k := sim.NewKernel()
	fab, err := ethernet.New(k, ethernet.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastEthernetProfile()
	for _, m := range mutate {
		m(&cfg)
	}
	stacks := make([]*Stack, nodes)
	for i := range stacks {
		stacks[i] = NewStack(k, fab, i, cfg)
	}
	return k, stacks
}

func TestHeaderRoundtrip(t *testing.T) {
	f := func(kind byte, msgID, off, total, ack uint32, n uint8) bool {
		payload := make([]byte, n)
		sim.NewRNG(uint64(msgID)).Bytes(payload)
		h := header{kind: kind, msgID: msgID, off: off, total: total, ack: ack}
		frame := encodeHeader(h, payload)
		got, pl, err := decodeHeader(frame)
		return err == nil && got == h && bytes.Equal(pl, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortFrameRejected(t *testing.T) {
	if _, _, err := decodeHeader(make([]byte, 10)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestMessageRoundtrip(t *testing.T) {
	k, stacks := feWorld(t, 2)
	msg := []byte("over the fast ethernet")
	var got []byte
	k.Spawn("tx", func(p *sim.Proc) {
		if err := stacks[0].Send(p, 1, msg); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		n, err := stacks[1].Recv(p, 0, buf)
		if err != nil {
			t.Error(err)
			return
		}
		got = append(got, buf[:n]...)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestSegmentationReassemblyIdentity(t *testing.T) {
	// Property: any payload size — sub-MTU, exactly MSS, multi-segment,
	// window-filling — survives segmentation and reassembly bit-exact.
	f := func(seed uint64, sizeRaw uint32) bool {
		size := int(sizeRaw % 200000)
		k, stacks := feWorld(t, 2)
		defer k.Close()
		msg := make([]byte, size)
		sim.NewRNG(seed).Bytes(msg)
		ok := false
		k.Spawn("tx", func(p *sim.Proc) {
			if err := stacks[0].Send(p, 1, msg); err != nil {
				t.Error(err)
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, size+1)
			n, err := stacks[1].Recv(p, 0, buf)
			ok = err == nil && n == size && bytes.Equal(buf[:n], msg)
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	// A transfer far larger than the window must complete (ACK clocking
	// works) and the sender must have emitted ACK-paced segments.
	k, stacks := feWorld(t, 2, func(c *Config) { c.WindowBytes = 8 << 10 })
	const size = 256 << 10
	k.Spawn("tx", func(p *sim.Proc) {
		if err := stacks[0].Send(p, 1, make([]byte, size)); err != nil {
			t.Error(err)
		}
	})
	done := false
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, size)
		n, err := stacks[1].Recv(p, 0, buf)
		done = err == nil && n == size
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("windowed transfer did not complete")
	}
	if stacks[1].Stats().AcksSent == 0 {
		t.Fatal("no ACKs emitted during a window-limited transfer")
	}
	if stacks[0].Stats().AcksRecv == 0 {
		t.Fatal("sender processed no ACKs")
	}
}

func TestInOrderAcrossSizes(t *testing.T) {
	k, stacks := feWorld(t, 2)
	sizes := []int{0, 1, 1456, 1457, 5000, 3, 40000, 7}
	k.Spawn("tx", func(p *sim.Proc) {
		for i, n := range sizes {
			msg := make([]byte, n)
			for j := range msg {
				msg[j] = byte(i)
			}
			if err := stacks[0].Send(p, 1, msg); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64<<10)
		for i, want := range sizes {
			n, err := stacks[1].Recv(p, 0, buf)
			if err != nil || n != want {
				t.Errorf("msg %d: n=%d want=%d err=%v", i, n, want, err)
				return
			}
			for j := 0; j < n; j++ {
				if buf[j] != byte(i) {
					t.Errorf("msg %d corrupted at byte %d", i, j)
					return
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyCalibrationFE(t *testing.T) {
	// DESIGN.md §5: TCP-lite on Fast Ethernet, 0-byte one-way ≈150 µs.
	lat := oneWay(t, "fe", 0)
	if lat < 110 || lat > 190 {
		t.Fatalf("FE 0-byte one-way %.1f µs, want ≈150", lat)
	}
	// Slope sanity: 1456 bytes in one frame adds wire+copy+checksum time.
	lat1456 := oneWay(t, "fe", 1456)
	if lat1456 <= lat {
		t.Fatalf("1456-byte latency %.1f µs not above 0-byte %.1f µs", lat1456, lat)
	}
}

func TestLatencyCalibrationATMAboveFE(t *testing.T) {
	// Figure 6 implies ATM's small-message latency exceeds Fast
	// Ethernet's (554 µs vs 660 µs 3-node barriers).
	fe, atmLat := oneWay(t, "fe", 4), oneWay(t, "atm", 4)
	if atmLat <= fe {
		t.Fatalf("ATM 4-byte one-way %.1f µs should exceed FE's %.1f µs", atmLat, fe)
	}
}

func TestATMFasterPerByte(t *testing.T) {
	// ...but ATM's higher wire rate and hardware CRC make its large
	// messages cheaper: the slope inversion behind Figure 2/3.
	const size = 8 << 10
	feDelta := oneWay(t, "fe", size) - oneWay(t, "fe", 0)
	atmDelta := oneWay(t, "atm", size) - oneWay(t, "atm", 0)
	if atmDelta >= feDelta {
		t.Fatalf("ATM per-byte cost (Δ=%.1fµs) should be below FE's (Δ=%.1fµs)", atmDelta, feDelta)
	}
}

// oneWay measures one-way latency of an n-byte message on a named
// network profile with the receiver already blocked in Recv.
func oneWay(t testing.TB, net string, n int) float64 {
	t.Helper()
	k := sim.NewKernel()
	var fab xport.Fabric
	var cfg Config
	var err error
	switch net {
	case "fe":
		fab, err = ethernet.New(k, ethernet.DefaultConfig(2))
		cfg = FastEthernetProfile()
	case "atm":
		fab, err = atm.New(k, atm.DefaultConfig(2))
		cfg = ATMProfile()
	case "myr":
		fab, err = myrinet.New(k, myrinet.DefaultConfig(2))
		cfg = MyrinetProfile()
	default:
		t.Fatalf("unknown net %q", net)
	}
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := NewStack(k, fab, 0, cfg), NewStack(k, fab, 1, cfg)
	var sent, recvd sim.Time
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, n+1)
		if _, err := s1.Recv(p, 0, buf); err != nil {
			t.Error(err)
		}
		recvd = p.Now()
	})
	k.Spawn("tx", func(p *sim.Proc) {
		p.Delay(50 * sim.Microsecond)
		sent = p.Now()
		if err := s0.Send(p, 1, make([]byte, n)); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return recvd.Sub(sent).Microseconds()
}

func TestErrTooLargeAndBadRank(t *testing.T) {
	k, stacks := feWorld(t, 2)
	k.Spawn("p", func(p *sim.Proc) {
		if err := stacks[0].Send(p, 1, make([]byte, stacks[0].MaxMessage()+1)); err != ErrTooLarge {
			t.Errorf("oversize err = %v", err)
		}
		if err := stacks[0].Send(p, 0, nil); err != ErrBadRank {
			t.Errorf("self err = %v", err)
		}
		if _, err := stacks[0].Recv(p, 7, nil); err != ErrBadRank {
			t.Errorf("bad-src err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeout(t *testing.T) {
	k, stacks := feWorld(t, 2, func(c *Config) { c.RecvTimeout = 300 * sim.Microsecond })
	var err error
	k.Spawn("rx", func(p *sim.Proc) {
		_, err = stacks[1].Recv(p, 0, make([]byte, 8))
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestRecvAnyAndTryRecv(t *testing.T) {
	k, stacks := feWorld(t, 3)
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		if _, ok, _ := stacks[0].TryRecv(p, 1, buf); ok {
			t.Error("TryRecv hit before send")
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			src, n, err := stacks[0].RecvAny(p, buf)
			if err != nil || n != 1 {
				t.Errorf("RecvAny: %v", err)
				return
			}
			seen[src] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("sources seen: %v", seen)
		}
	})
	for _, s := range []int{1, 2} {
		s := s
		k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
			p.Delay(sim.Duration(s) * 100 * sim.Microsecond)
			if err := stacks[s].Send(p, 0, []byte{byte(s)}); err != nil {
				t.Error(err)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	// Full-duplex links: simultaneous opposite transfers must both
	// complete, exercising ACKs riding against data.
	k, stacks := feWorld(t, 2)
	const size = 50 << 10
	ok := [2]bool{}
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) {
			peer := 1 - i
			if err := stacks[i].Send(p, peer, make([]byte, size)); err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, size)
			n, err := stacks[i].Recv(p, peer, buf)
			ok[i] = err == nil && n == size
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok[0] || !ok[1] {
		t.Fatalf("bidirectional transfer: %v", ok)
	}
}
