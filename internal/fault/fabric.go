package fault

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xport"
)

// Fabric wraps any xport.Fabric with fault injection — the switched-
// fabric equivalent of the SCRAMNet ring's CRC drops and optical
// bypass. It implements both xport.Fabric (so protocol stacks run over
// it unchanged) and Target (so scripts drive it).
//
// Loss is decided per frame from a deterministic generator seeded at
// construction; a failed node neither sources nor sinks frames (its
// link is down), and the down check is made both at transmit time and
// again at delivery time so a node failing while a frame is in flight
// still loses it.
type Fabric struct {
	k     *sim.Kernel
	inner xport.Fabric
	rng   *sim.RNG
	loss  float64
	down  []bool

	stats FabricStats
	im    fabricInstruments
}

// fabricInstruments mirror FabricStats into the metrics registry
// (cluster-wide, NodeGlobal — frames cross nodes, so per-node
// attribution would be arbitrary).
type fabricInstruments struct {
	droppedLoss *metrics.Counter // fault.frames_dropped_loss
	droppedDown *metrics.Counter // fault.frames_dropped_down
	forwarded   *metrics.Counter // fault.frames_forwarded
}

// SetMetrics installs the wrapper's instruments (nil disables).
func (f *Fabric) SetMetrics(m *metrics.Registry) {
	if m == nil {
		f.im = fabricInstruments{}
		return
	}
	f.im = fabricInstruments{
		droppedLoss: m.Counter("fault.frames_dropped_loss", metrics.NodeGlobal),
		droppedDown: m.Counter("fault.frames_dropped_down", metrics.NodeGlobal),
		forwarded:   m.Counter("fault.frames_forwarded", metrics.NodeGlobal),
	}
}

// FabricStats counts the wrapper's interventions.
type FabricStats struct {
	// DroppedLoss counts frames dropped by a transient loss window.
	DroppedLoss int64
	// DroppedDown counts frames dropped because an endpoint was failed.
	DroppedDown int64
	// Forwarded counts frames passed through intact.
	Forwarded int64
}

// NewFabric wraps inner with fault injection, seeding the per-frame
// drop generator with seed.
func NewFabric(k *sim.Kernel, inner xport.Fabric, seed uint64) *Fabric {
	return &Fabric{
		k:     k,
		inner: inner,
		rng:   sim.NewRNG(seed + 1),
		down:  make([]bool, inner.Nodes()),
	}
}

// Nodes returns the host count of the wrapped fabric.
func (f *Fabric) Nodes() int { return f.inner.Nodes() }

// MTU returns the wrapped fabric's frame payload limit.
func (f *Fabric) MTU() int { return f.inner.MTU() }

// Stats returns a copy of the intervention counters.
func (f *Fabric) Stats() FabricStats { return f.stats }

// FailNode takes node i's link down.
func (f *Fabric) FailNode(i int) { f.down[i] = true }

// RepairNode restores node i's link.
func (f *Fabric) RepairNode(i int) { f.down[i] = false }

// NodeFailed reports whether node i's link is currently down.
func (f *Fabric) NodeFailed(i int) bool { return f.down[i] }

// SetLossRate sets the per-frame drop probability.
func (f *Fabric) SetLossRate(r float64) { f.loss = r }

// Transmit forwards the frame unless a fault claims it.
func (f *Fabric) Transmit(src, dst int, frame []byte) {
	if f.down[src] || f.down[dst] {
		f.stats.DroppedDown++
		f.im.droppedDown.Inc()
		return
	}
	if f.loss > 0 && f.rng.Float64() < f.loss {
		f.stats.DroppedLoss++
		f.im.droppedLoss.Inc()
		return
	}
	f.inner.Transmit(src, dst, frame)
}

// SetHandler installs node's delivery callback, re-checking the node's
// health at arrival time.
func (f *Fabric) SetHandler(node int, fn func(src int, frame []byte)) {
	f.inner.SetHandler(node, func(src int, frame []byte) {
		if f.down[node] || f.down[src] {
			f.stats.DroppedDown++
			f.im.droppedDown.Inc()
			return
		}
		f.stats.Forwarded++
		f.im.forwarded.Inc()
		fn(src, frame)
	})
}

var (
	_ xport.Fabric = (*Fabric)(nil)
	_ Target       = (*Fabric)(nil)
)
