// Package fault is a deterministic, seed-driven fault-injection layer
// for the simulated testbed. It models the failure scenarios §2 of the
// paper alludes to — "a failed node is optically bypassed" on the dual
// SCRAMNet ring — and extends them uniformly to the switched fabrics so
// that every layer above (BBP, TCP-lite, the hybrid router, MPI) can be
// exercised under the same scripted adversity.
//
// A Script is an ordered list of timed Actions: node fail/repair and
// transient loss windows. Scripts are either hand-built or produced by
// Generate from a seed, and replaying the same script against the same
// workload yields a bit-identical simulation — faults are part of the
// deterministic event order, never a source of flakiness.
//
// Scripts apply to any Target: a *scramnet.Network (via Ring) or any
// xport.Fabric wrapped by NewFabric.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind enumerates the fault actions a script can schedule.
type Kind int

const (
	// NodeFail takes Node out of service: optically bypassed on a dual
	// SCRAMNet ring, link unplugged on a switched fabric.
	NodeFail Kind = iota
	// NodeRepair returns Node to service (its state may be stale).
	NodeRepair
	// LossStart begins a transient corruption window: every in-flight
	// packet or frame is independently dropped with probability Rate.
	LossStart
	// LossStop closes the loss window (rate back to zero).
	LossStop
	// LinkCut severs ring segment Node (the fiber pair between ring
	// nodes Node and Node+1). Applies only to targets implementing
	// LinkTarget — the SCRAMNet ring; switched fabrics have no shared
	// fiber to cut, and the action is skipped there.
	LinkCut
	// LinkSplice repairs ring segment Node, undoing LinkCut.
	LinkSplice
)

func (k Kind) String() string {
	switch k {
	case NodeFail:
		return "node-fail"
	case NodeRepair:
		return "node-repair"
	case LossStart:
		return "loss-start"
	case LossStop:
		return "loss-stop"
	case LinkCut:
		return "link-cut"
	case LinkSplice:
		return "link-splice"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Action is one scheduled fault.
type Action struct {
	At   sim.Time
	Kind Kind
	Node int     // NodeFail / NodeRepair target; LinkCut / LinkSplice segment
	Rate float64 // LossStart drop probability in [0,1]
}

// Script is a replayable fault schedule. Seed parameterizes the random
// stream a Target uses to decide individual packet drops inside loss
// windows, so the same script produces the same drops every run.
type Script struct {
	Seed    uint64
	Actions []Action
}

// Target is anything faults can be applied to. Both the SCRAMNet ring
// adapter and the fabric wrapper implement it.
type Target interface {
	Nodes() int
	FailNode(i int)
	RepairNode(i int)
	SetLossRate(r float64)
}

// LinkTarget is the optional extension for targets with per-segment
// link state — the SCRAMNet ring. LinkCut/LinkSplice actions apply (and
// are counted and traced) only on targets that implement it; on others
// they are skipped, so one script can drive a ring and a fabric to the
// same node-level fault pattern while the cable cuts stay ring-only.
type LinkTarget interface {
	CutLink(i int)
	SpliceLink(i int)
}

// Apply schedules every action of the script on kernel k against tgt.
// Actions at or before the current virtual time fire immediately (in
// scheduling order). Apply may be called for several targets to subject
// co-located networks to the same fault pattern.
func (s *Script) Apply(k *sim.Kernel, tgt Target) {
	s.ApplyMetrics(k, tgt, nil)
}

// ApplyMetrics is Apply, additionally counting each fired action in m
// under "fault.injected_events" plus a per-kind counter, all attributed
// to the faulted node (loss windows are cluster-wide). A nil registry
// counts nothing.
func (s *Script) ApplyMetrics(k *sim.Kernel, tgt Target, m *metrics.Registry) {
	s.ApplyObserved(k, tgt, m, nil)
}

// ApplyObserved is ApplyMetrics, additionally emitting a trace instant
// (category "fault") at each action's fire time, so a timeline can line
// injected faults up against retry and bus activity. A nil recorder
// records nothing.
func (s *Script) ApplyObserved(k *sim.Kernel, tgt Target, m *metrics.Registry, rec *trace.Recorder) {
	if s == nil {
		return
	}
	for _, a := range s.Actions {
		a := a
		at := a.At
		if at < k.Now() {
			at = k.Now()
		}
		k.AtKind(at, "fault", func() {
			if a.Kind == LinkCut || a.Kind == LinkSplice {
				// Cable cuts only exist on link-stateful targets; a
				// fabric skips them without counting, so the injected-
				// event counters report what actually happened.
				lt, ok := tgt.(LinkTarget)
				if !ok {
					return
				}
				m.Counter("fault.injected_events", metrics.NodeGlobal).Inc()
				m.Counter("fault.injected_"+a.Kind.String(), metrics.NodeGlobal).Inc()
				rec.Emitf(k.Now(), trace.Fault, metrics.NodeGlobal, a.Kind.String(), "segment=%d", a.Node)
				if a.Kind == LinkCut {
					lt.CutLink(a.Node)
				} else {
					lt.SpliceLink(a.Node)
				}
				return
			}
			node := metrics.NodeGlobal
			if a.Kind == NodeFail || a.Kind == NodeRepair {
				node = a.Node
			}
			m.Counter("fault.injected_events", metrics.NodeGlobal).Inc()
			m.Counter("fault.injected_"+a.Kind.String(), node).Inc()
			rec.Emitf(k.Now(), trace.Fault, node, a.Kind.String(), "node=%d rate=%g", a.Node, a.Rate)
			switch a.Kind {
			case NodeFail:
				tgt.FailNode(a.Node)
			case NodeRepair:
				tgt.RepairNode(a.Node)
			case LossStart:
				tgt.SetLossRate(a.Rate)
			case LossStop:
				tgt.SetLossRate(0)
			}
		})
	}
}

// MaxLoss returns the largest loss rate any window of the script opens;
// zero means the script never drops traffic.
func (s *Script) MaxLoss() float64 {
	if s == nil {
		return 0
	}
	max := 0.0
	for _, a := range s.Actions {
		if a.Kind == LossStart && a.Rate > max {
			max = a.Rate
		}
	}
	return max
}

// String renders the script for logs and failure messages.
func (s *Script) String() string {
	if s == nil {
		return "fault.Script(nil)"
	}
	out := fmt.Sprintf("fault.Script{seed=%d", s.Seed)
	for _, a := range s.Actions {
		switch a.Kind {
		case NodeFail, NodeRepair:
			out += fmt.Sprintf(" %s@%d(node %d)", a.Kind, a.At, a.Node)
		case LinkCut, LinkSplice:
			out += fmt.Sprintf(" %s@%d(seg %d)", a.Kind, a.At, a.Node)
		case LossStart:
			out += fmt.Sprintf(" %s@%d(%.2f)", a.Kind, a.At, a.Rate)
		default:
			out += fmt.Sprintf(" %s@%d", a.Kind, a.At)
		}
	}
	return out + "}"
}

// Validate checks that the script's per-target action ordering is
// realizable: for each node, fail/repair actions (in At order) must
// alternate starting with a failure, and for each segment, cut/splice
// actions likewise starting with a cut. A repair of a node that is not
// down — or a second failure of one that is — marks a script whose
// later actions are unreachable no-ops; such scripts used to slip out
// of Generate when two randomly drawn fail→repair cycles for one node
// overlapped. Loss windows are global and idempotent, so Validate does
// not constrain them.
func (s *Script) Validate() error {
	if s == nil {
		return nil
	}
	acts := append([]Action(nil), s.Actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	down := map[int]bool{}
	cut := map[int]bool{}
	for _, a := range acts {
		switch a.Kind {
		case NodeFail:
			if down[a.Node] {
				return fmt.Errorf("fault: node %d failed again at %d while already down", a.Node, a.At)
			}
			down[a.Node] = true
		case NodeRepair:
			if !down[a.Node] {
				return fmt.Errorf("fault: node %d repaired at %d while not down", a.Node, a.At)
			}
			down[a.Node] = false
		case LinkCut:
			if cut[a.Node] {
				return fmt.Errorf("fault: segment %d cut again at %d while already severed", a.Node, a.At)
			}
			cut[a.Node] = true
		case LinkSplice:
			if !cut[a.Node] {
				return fmt.Errorf("fault: segment %d spliced at %d while intact", a.Node, a.At)
			}
			cut[a.Node] = false
		}
	}
	return nil
}

// Flap builds a script that rapidly cycles one node through count
// fail→repair pairs, one full cycle per period: the node goes down at
// (k+1)·period and comes back half a period later, for k = 0..count-1.
// Flapping is the classic failure-detector stress test — a node that
// oscillates near the suspicion threshold must be fenced consistently
// (stale incarnations never resurrect) without poisoning verdicts about
// anyone else. The first cycle is delayed a full period so the cluster
// has a quiet warm-up window.
func Flap(node int, period sim.Duration, count int) *Script {
	s := &Script{Seed: uint64(node)*1000003 + 1}
	for k := 0; k < count; k++ {
		down := sim.Time(0).Add(sim.Duration(k+1) * period)
		s.Actions = append(s.Actions,
			Action{At: down, Kind: NodeFail, Node: node},
			Action{At: down.Add(period / 2), Kind: NodeRepair, Node: node})
	}
	return s
}

// GenConfig bounds the random script generator.
type GenConfig struct {
	// Horizon is the script length; all actions land inside it.
	Horizon sim.Duration
	// Nodes is the network size actions may address.
	Nodes int
	// LossWindows is how many transient loss windows to open.
	LossWindows int
	// MaxLossRate caps each window's drop probability.
	MaxLossRate float64
	// NodeFailures is how many fail→repair cycles to schedule.
	NodeFailures int
	// LinkCuts is how many cut→splice cycles to schedule on random ring
	// segments (skipped by targets without link state).
	LinkCuts int
	// Protect lists nodes that are never failed (e.g. the endpoints a
	// test communicates through). Loss windows still affect them.
	Protect []int
}

// Generate builds a random script from seed. The same (seed, cfg) pair
// always yields the same script.
func Generate(seed uint64, cfg GenConfig) *Script {
	rng := sim.NewRNG(seed)
	s := &Script{Seed: seed}
	protected := map[int]bool{}
	for _, n := range cfg.Protect {
		protected[n] = true
	}
	var candidates []int
	for i := 0; i < cfg.Nodes; i++ {
		if !protected[i] {
			candidates = append(candidates, i)
		}
	}
	for w := 0; w < cfg.LossWindows; w++ {
		start := rng.Duration(cfg.Horizon)
		length := rng.Duration(cfg.Horizon-start) + 1
		rate := cfg.MaxLossRate * rng.Float64()
		s.Actions = append(s.Actions,
			Action{At: sim.Time(0).Add(start), Kind: LossStart, Rate: rate},
			Action{At: sim.Time(0).Add(start + length), Kind: LossStop})
	}
	// Fail→repair cycles must not overlap for one node: a second
	// failure inside an open cycle, once the actions are time-sorted,
	// leaves a repair that fires while the node is already up — an
	// unreachable action Validate rejects. Windows are drawn exactly as
	// before (so seeds without collisions keep their scripts) and only
	// redrawn — boundedly — when they would overlap an accepted window
	// for the same target; a cycle that cannot be placed is dropped.
	place := func(windows map[int][][2]sim.Duration, key int, down, up sim.Duration) bool {
		for _, w := range windows[key] {
			if down < w[1] && w[0] < up {
				return false
			}
		}
		windows[key] = append(windows[key], [2]sim.Duration{down, up})
		return true
	}
	failWindows := map[int][][2]sim.Duration{}
	for f := 0; f < cfg.NodeFailures && len(candidates) > 0; f++ {
		node := candidates[rng.Intn(len(candidates))]
		for try := 0; try < 16; try++ {
			down := rng.Duration(cfg.Horizon)
			up := down + rng.Duration(cfg.Horizon-down) + 1
			if !place(failWindows, node, down, up) {
				continue
			}
			s.Actions = append(s.Actions,
				Action{At: sim.Time(0).Add(down), Kind: NodeFail, Node: node},
				Action{At: sim.Time(0).Add(up), Kind: NodeRepair, Node: node})
			break
		}
	}
	cutWindows := map[int][][2]sim.Duration{}
	for c := 0; c < cfg.LinkCuts && cfg.Nodes > 0; c++ {
		seg := rng.Intn(cfg.Nodes)
		for try := 0; try < 16; try++ {
			down := rng.Duration(cfg.Horizon)
			up := down + rng.Duration(cfg.Horizon-down) + 1
			if !place(cutWindows, seg, down, up) {
				continue
			}
			s.Actions = append(s.Actions,
				Action{At: sim.Time(0).Add(down), Kind: LinkCut, Node: seg},
				Action{At: sim.Time(0).Add(up), Kind: LinkSplice, Node: seg})
			break
		}
	}
	sort.SliceStable(s.Actions, func(i, j int) bool { return s.Actions[i].At < s.Actions[j].At })
	return s
}

// ring adapts *scramnet.Network to Target (the method names differ).
type ring struct{ n *scramnet.Network }

// Ring returns a fault Target driving a SCRAMNet ring: NodeFail maps to
// the optical bypass of §2, loss windows to the CRC-drop fault model the
// ring hardware already implements.
func Ring(n *scramnet.Network) Target { return ring{n} }

func (r ring) Nodes() int            { return r.n.Nodes() }
func (r ring) FailNode(i int)        { r.n.FailNode(i) }
func (r ring) RepairNode(i int)      { r.n.RepairNode(i) }
func (r ring) SetLossRate(x float64) { r.n.SetDropRate(x) }
func (r ring) CutLink(i int)         { r.n.CutLink(i) }
func (r ring) SpliceLink(i int)      { r.n.SpliceLink(i) }
