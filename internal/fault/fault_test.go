package fault_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := fault.GenConfig{
		Horizon:      10 * sim.Millisecond,
		Nodes:        4,
		LossWindows:  3,
		MaxLossRate:  0.5,
		NodeFailures: 2,
		Protect:      []int{0, 1},
	}
	a := fault.Generate(42, cfg)
	b := fault.Generate(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scripts:\n%v\n%v", a, b)
	}
	c := fault.Generate(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical scripts: %v", a)
	}
	if len(a.Actions) != 2*cfg.LossWindows+2*cfg.NodeFailures {
		t.Fatalf("got %d actions, want %d", len(a.Actions), 2*cfg.LossWindows+2*cfg.NodeFailures)
	}
	for i, act := range a.Actions {
		if i > 0 && act.At < a.Actions[i-1].At {
			t.Fatalf("actions not time-sorted at %d: %v", i, a)
		}
		if (act.Kind == fault.NodeFail || act.Kind == fault.NodeRepair) && (act.Node == 0 || act.Node == 1) {
			t.Fatalf("protected node failed: %+v", act)
		}
		if act.At > sim.Time(0).Add(2*cfg.Horizon) {
			t.Fatalf("action beyond horizon: %+v", act)
		}
	}
	if a.MaxLoss() <= 0 || a.MaxLoss() > cfg.MaxLossRate {
		t.Fatalf("MaxLoss %v outside (0, %v]", a.MaxLoss(), cfg.MaxLossRate)
	}
}

func TestFlapScript(t *testing.T) {
	period := 2 * sim.Millisecond
	s := fault.Flap(3, period, 4)
	if len(s.Actions) != 8 {
		t.Fatalf("got %d actions, want 8", len(s.Actions))
	}
	for k := 0; k < 4; k++ {
		down, up := s.Actions[2*k], s.Actions[2*k+1]
		wantDown := sim.Time(0).Add(sim.Duration(k+1) * period)
		if down.Kind != fault.NodeFail || down.Node != 3 || down.At != wantDown {
			t.Fatalf("cycle %d fail action wrong: %+v", k, down)
		}
		if up.Kind != fault.NodeRepair || up.Node != 3 || up.At != wantDown.Add(period/2) {
			t.Fatalf("cycle %d repair action wrong: %+v", k, up)
		}
	}
	if s.MaxLoss() != 0 {
		t.Fatalf("flap script opens loss windows: %v", s)
	}
	if !reflect.DeepEqual(s, fault.Flap(3, period, 4)) {
		t.Fatal("Flap is not deterministic")
	}
}

func TestApplyDrivesRing(t *testing.T) {
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet})
	if err != nil {
		t.Fatal(err)
	}
	s := &fault.Script{Seed: 7, Actions: []fault.Action{
		{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.NodeFail, Node: 2},
		{At: sim.Time(0).Add(3 * sim.Millisecond), Kind: fault.NodeRepair, Node: 2},
	}}
	s.Apply(k, fault.Ring(c.Ring))
	k.RunFor(2 * sim.Millisecond)
	if !c.Ring.NodeFailed(2) {
		t.Fatal("node 2 not bypassed after NodeFail action")
	}
	k.RunFor(2 * sim.Millisecond)
	if c.Ring.NodeFailed(2) {
		t.Fatal("node 2 still bypassed after NodeRepair action")
	}
	k.Close()
}

func TestFabricWrapperDropsAndStats(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	san, err := myrinet.New(k, myrinet.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	ff := fault.NewFabric(k, san, 1)
	var got int
	ff.SetHandler(1, func(src int, frame []byte) { got++ })

	send := func() {
		ff.Transmit(0, 1, []byte{1, 2, 3, 4})
		k.Run()
	}
	send()
	if got != 1 || ff.Stats().Forwarded != 1 {
		t.Fatalf("fault-free frame not forwarded: got=%d stats=%+v", got, ff.Stats())
	}
	ff.SetLossRate(1.0)
	send()
	if got != 1 || ff.Stats().DroppedLoss != 1 {
		t.Fatalf("full-loss frame not dropped: got=%d stats=%+v", got, ff.Stats())
	}
	ff.SetLossRate(0)
	ff.FailNode(1)
	send()
	if got != 1 || ff.Stats().DroppedDown != 1 {
		t.Fatalf("frame to failed node not dropped: got=%d stats=%+v", got, ff.Stats())
	}
	if !ff.NodeFailed(1) || ff.NodeFailed(0) {
		t.Fatal("NodeFailed bookkeeping wrong")
	}
	ff.RepairNode(1)
	send()
	if got != 2 {
		t.Fatal("frame after repair not delivered")
	}
}

// runFaultedBBP drives a fixed workload over a lossy SCRAMNet ring with
// the BBP retry extension enabled and returns the bytes delivered, in
// order, plus the sender's final stats.
func runFaultedBBP(t *testing.T, script *fault.Script) ([]byte, core.Stats) {
	t.Helper()
	k := sim.NewKernel()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 30
	var delivered []byte
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			payload := bytes.Repeat([]byte{byte(i + 1)}, 24)
			if err := c.Endpoints[0].Send(p, 1, payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			p.Delay(40 * sim.Microsecond)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		for i := 0; i < msgs; i++ {
			n, err := c.Endpoints[1].Recv(p, 0, buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			delivered = append(delivered, buf[:n]...)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return delivered, c.Endpoints[0].(*core.Endpoint).Stats()
}

func TestScriptReplayIsBitIdentical(t *testing.T) {
	script := &fault.Script{Seed: 1234, Actions: []fault.Action{
		{At: sim.Time(0).Add(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.15},
		{At: sim.Time(0).Add(600 * sim.Microsecond), Kind: fault.LossStop},
	}}
	a, statsA := runFaultedBBP(t, script)
	b, statsB := runFaultedBBP(t, script)
	if !bytes.Equal(a, b) {
		t.Fatalf("two replays of the same script diverged: %d vs %d bytes", len(a), len(b))
	}
	if statsA != statsB {
		t.Fatalf("replay stats diverged:\n%+v\n%+v", statsA, statsB)
	}
	if statsA.Retransmits == 0 {
		t.Fatalf("loss window injected but no retransmissions occurred: %+v", statsA)
	}
	var want []byte
	for i := 0; i < 30; i++ {
		want = append(want, bytes.Repeat([]byte{byte(i + 1)}, 24)...)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("delivered bytes differ from the sent workload: got %d bytes, want %d", len(a), len(want))
	}
}
