package fault_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := fault.GenConfig{
		Horizon:      10 * sim.Millisecond,
		Nodes:        4,
		LossWindows:  3,
		MaxLossRate:  0.5,
		NodeFailures: 2,
		Protect:      []int{0, 1},
	}
	a := fault.Generate(42, cfg)
	b := fault.Generate(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scripts:\n%v\n%v", a, b)
	}
	c := fault.Generate(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical scripts: %v", a)
	}
	if len(a.Actions) != 2*cfg.LossWindows+2*cfg.NodeFailures {
		t.Fatalf("got %d actions, want %d", len(a.Actions), 2*cfg.LossWindows+2*cfg.NodeFailures)
	}
	for i, act := range a.Actions {
		if i > 0 && act.At < a.Actions[i-1].At {
			t.Fatalf("actions not time-sorted at %d: %v", i, a)
		}
		if (act.Kind == fault.NodeFail || act.Kind == fault.NodeRepair) && (act.Node == 0 || act.Node == 1) {
			t.Fatalf("protected node failed: %+v", act)
		}
		if act.At > sim.Time(0).Add(2*cfg.Horizon) {
			t.Fatalf("action beyond horizon: %+v", act)
		}
	}
	if a.MaxLoss() <= 0 || a.MaxLoss() > cfg.MaxLossRate {
		t.Fatalf("MaxLoss %v outside (0, %v]", a.MaxLoss(), cfg.MaxLossRate)
	}
}

func TestFlapScript(t *testing.T) {
	period := 2 * sim.Millisecond
	s := fault.Flap(3, period, 4)
	if len(s.Actions) != 8 {
		t.Fatalf("got %d actions, want 8", len(s.Actions))
	}
	for k := 0; k < 4; k++ {
		down, up := s.Actions[2*k], s.Actions[2*k+1]
		wantDown := sim.Time(0).Add(sim.Duration(k+1) * period)
		if down.Kind != fault.NodeFail || down.Node != 3 || down.At != wantDown {
			t.Fatalf("cycle %d fail action wrong: %+v", k, down)
		}
		if up.Kind != fault.NodeRepair || up.Node != 3 || up.At != wantDown.Add(period/2) {
			t.Fatalf("cycle %d repair action wrong: %+v", k, up)
		}
	}
	if s.MaxLoss() != 0 {
		t.Fatalf("flap script opens loss windows: %v", s)
	}
	if !reflect.DeepEqual(s, fault.Flap(3, period, 4)) {
		t.Fatal("Flap is not deterministic")
	}
}

func TestApplyDrivesRing(t *testing.T) {
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet})
	if err != nil {
		t.Fatal(err)
	}
	s := &fault.Script{Seed: 7, Actions: []fault.Action{
		{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.NodeFail, Node: 2},
		{At: sim.Time(0).Add(3 * sim.Millisecond), Kind: fault.NodeRepair, Node: 2},
	}}
	s.Apply(k, fault.Ring(c.Ring))
	k.RunFor(2 * sim.Millisecond)
	if !c.Ring.NodeFailed(2) {
		t.Fatal("node 2 not bypassed after NodeFail action")
	}
	k.RunFor(2 * sim.Millisecond)
	if c.Ring.NodeFailed(2) {
		t.Fatal("node 2 still bypassed after NodeRepair action")
	}
	k.Close()
}

func TestFabricWrapperDropsAndStats(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	san, err := myrinet.New(k, myrinet.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	ff := fault.NewFabric(k, san, 1)
	var got int
	ff.SetHandler(1, func(src int, frame []byte) { got++ })

	send := func() {
		ff.Transmit(0, 1, []byte{1, 2, 3, 4})
		k.Run()
	}
	send()
	if got != 1 || ff.Stats().Forwarded != 1 {
		t.Fatalf("fault-free frame not forwarded: got=%d stats=%+v", got, ff.Stats())
	}
	ff.SetLossRate(1.0)
	send()
	if got != 1 || ff.Stats().DroppedLoss != 1 {
		t.Fatalf("full-loss frame not dropped: got=%d stats=%+v", got, ff.Stats())
	}
	ff.SetLossRate(0)
	ff.FailNode(1)
	send()
	if got != 1 || ff.Stats().DroppedDown != 1 {
		t.Fatalf("frame to failed node not dropped: got=%d stats=%+v", got, ff.Stats())
	}
	if !ff.NodeFailed(1) || ff.NodeFailed(0) {
		t.Fatal("NodeFailed bookkeeping wrong")
	}
	ff.RepairNode(1)
	send()
	if got != 2 {
		t.Fatal("frame after repair not delivered")
	}
}

// runFaultedBBP drives a fixed workload over a lossy SCRAMNet ring with
// the BBP retry extension enabled and returns the bytes delivered, in
// order, plus the sender's final stats.
func runFaultedBBP(t *testing.T, script *fault.Script) ([]byte, core.Stats) {
	t.Helper()
	k := sim.NewKernel()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 30
	var delivered []byte
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			payload := bytes.Repeat([]byte{byte(i + 1)}, 24)
			if err := c.Endpoints[0].Send(p, 1, payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			p.Delay(40 * sim.Microsecond)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		for i := 0; i < msgs; i++ {
			n, err := c.Endpoints[1].Recv(p, 0, buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			delivered = append(delivered, buf[:n]...)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return delivered, c.Endpoints[0].(*core.Endpoint).Stats()
}

func TestScriptReplayIsBitIdentical(t *testing.T) {
	script := &fault.Script{Seed: 1234, Actions: []fault.Action{
		{At: sim.Time(0).Add(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.15},
		{At: sim.Time(0).Add(600 * sim.Microsecond), Kind: fault.LossStop},
	}}
	a, statsA := runFaultedBBP(t, script)
	b, statsB := runFaultedBBP(t, script)
	if !bytes.Equal(a, b) {
		t.Fatalf("two replays of the same script diverged: %d vs %d bytes", len(a), len(b))
	}
	if statsA != statsB {
		t.Fatalf("replay stats diverged:\n%+v\n%+v", statsA, statsB)
	}
	if statsA.Retransmits == 0 {
		t.Fatalf("loss window injected but no retransmissions occurred: %+v", statsA)
	}
	var want []byte
	for i := 0; i < 30; i++ {
		want = append(want, bytes.Repeat([]byte{byte(i + 1)}, 24)...)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("delivered bytes differ from the sent workload: got %d bytes, want %d", len(a), len(want))
	}
}

func TestGenerateLinkCuts(t *testing.T) {
	cfg := fault.GenConfig{
		Horizon:      10 * sim.Millisecond,
		Nodes:        4,
		NodeFailures: 2,
		LinkCuts:     3,
	}
	s := fault.Generate(99, cfg)
	if err := s.Validate(); err != nil {
		t.Fatalf("generated script invalid: %v\n%v", err, s)
	}
	cuts, splices := 0, 0
	for _, a := range s.Actions {
		switch a.Kind {
		case fault.LinkCut:
			cuts++
		case fault.LinkSplice:
			splices++
		}
		if (a.Kind == fault.LinkCut || a.Kind == fault.LinkSplice) && (a.Node < 0 || a.Node >= cfg.Nodes) {
			t.Fatalf("segment out of range: %+v", a)
		}
	}
	if cuts != cfg.LinkCuts || splices != cfg.LinkCuts {
		t.Fatalf("got %d cuts / %d splices, want %d each", cuts, splices, cfg.LinkCuts)
	}
	// Adding link cuts must not change the failure schedule the same
	// seed produced without them (seeded tests elsewhere rely on it).
	plain := fault.Generate(99, fault.GenConfig{Horizon: cfg.Horizon, Nodes: cfg.Nodes, NodeFailures: cfg.NodeFailures})
	var fails, wantFails []fault.Action
	for _, a := range s.Actions {
		if a.Kind == fault.NodeFail || a.Kind == fault.NodeRepair {
			fails = append(fails, a)
		}
	}
	wantFails = append(wantFails, plain.Actions...)
	for i := range wantFails {
		if wantFails[i].Kind == fault.LossStart || wantFails[i].Kind == fault.LossStop {
			t.Fatalf("unexpected loss action in failure-only script: %+v", wantFails[i])
		}
	}
	if !reflect.DeepEqual(fails, wantFails) {
		t.Fatalf("link cuts perturbed the failure schedule:\n%v\n%v", fails, wantFails)
	}
}

// TestGenerateAlwaysValid is the ordering property the validator
// enforces at build time: for any seed, Generate's schedules never
// repair before failing, never splice an intact segment, and never
// stack overlapping windows on one target.
func TestGenerateAlwaysValid(t *testing.T) {
	cfg := fault.GenConfig{
		Horizon:      5 * sim.Millisecond,
		Nodes:        5,
		LossWindows:  2,
		MaxLossRate:  0.3,
		NodeFailures: 4,
		LinkCuts:     4,
	}
	for seed := uint64(0); seed < 64; seed++ {
		if err := fault.Generate(seed, cfg).Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestValidateRejectsBadScripts(t *testing.T) {
	at := func(d sim.Duration) sim.Time { return sim.Time(0).Add(d) }
	bad := []fault.Script{
		{Actions: []fault.Action{ // repair before fail
			{At: at(1 * sim.Millisecond), Kind: fault.NodeRepair, Node: 2},
			{At: at(2 * sim.Millisecond), Kind: fault.NodeFail, Node: 2},
		}},
		{Actions: []fault.Action{ // double fail, no repair between
			{At: at(1 * sim.Millisecond), Kind: fault.NodeFail, Node: 1},
			{At: at(2 * sim.Millisecond), Kind: fault.NodeFail, Node: 1},
		}},
		{Actions: []fault.Action{ // splice an intact segment
			{At: at(1 * sim.Millisecond), Kind: fault.LinkSplice, Node: 0},
		}},
		{Actions: []fault.Action{ // double cut of one segment
			{At: at(1 * sim.Millisecond), Kind: fault.LinkCut, Node: 3},
			{At: at(2 * sim.Millisecond), Kind: fault.LinkCut, Node: 3},
		}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad script %d accepted: %v", i, &s)
		}
	}
	good := fault.Script{Actions: []fault.Action{
		{At: at(1 * sim.Millisecond), Kind: fault.LinkCut, Node: 3},
		{At: at(2 * sim.Millisecond), Kind: fault.LinkSplice, Node: 3},
		{At: at(3 * sim.Millisecond), Kind: fault.LinkCut, Node: 3},
		{At: at(4 * sim.Millisecond), Kind: fault.LinkSplice, Node: 3},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("cut/splice cycle rejected: %v", err)
	}
}

func TestScriptStringCoversLinkActions(t *testing.T) {
	s := &fault.Script{Seed: 5, Actions: []fault.Action{
		{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.LinkCut, Node: 2},
		{At: sim.Time(0).Add(2 * sim.Millisecond), Kind: fault.LinkSplice, Node: 2},
	}}
	str := s.String()
	if !strings.Contains(str, "link-cut") || !strings.Contains(str, "link-splice") {
		t.Fatalf("String() misses link actions: %q", str)
	}
	if !strings.Contains(str, "seg 2") {
		t.Fatalf("String() misses the segment number: %q", str)
	}
}

// TestApplyLinkActionsDriveRing checks the LinkTarget plumbing end to
// end on a real ring, and that a fabric (which has no link segments)
// skips the same actions without counting them as injected.
func TestApplyLinkActionsDriveRing(t *testing.T) {
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet})
	if err != nil {
		t.Fatal(err)
	}
	s := &fault.Script{Seed: 7, Actions: []fault.Action{
		{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.LinkCut, Node: 1},
		{At: sim.Time(0).Add(3 * sim.Millisecond), Kind: fault.LinkSplice, Node: 1},
	}}
	s.Apply(k, fault.Ring(c.Ring))
	k.RunFor(2 * sim.Millisecond)
	if !c.Ring.LinkCut(1) {
		t.Fatal("segment 1 not cut after LinkCut action")
	}
	k.RunFor(2 * sim.Millisecond)
	if c.Ring.LinkCut(1) {
		t.Fatal("segment 1 still cut after LinkSplice action")
	}
	k.Close()

	// Fabrics have no ring segments: link actions are skipped.
	k2 := sim.NewKernel()
	defer k2.Close()
	san, err := myrinet.New(k2, myrinet.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	ff := fault.NewFabric(k2, san, 1)
	s.Apply(k2, ff)
	k2.RunFor(5 * sim.Millisecond)
	// Nothing to assert on the fabric beyond not panicking; frames
	// still flow.
	var got int
	ff.SetHandler(1, func(src int, frame []byte) { got++ })
	ff.Transmit(0, 1, []byte{9})
	k2.Run()
	if got != 1 {
		t.Fatal("fabric stopped forwarding after skipped link actions")
	}
}
