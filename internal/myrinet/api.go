package myrinet

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/xport"
)

// APIConfig holds the host-side costs of the vendor user-level API.
// MyriAPI of the era still crossed the kernel for some operations and
// staged data through NIC SRAM, so its small-message latency is tens of
// microseconds even though the wire is fast — exactly the regime in
// which Figure 2 shows SCRAMNet winning below ≈500 bytes.
type APIConfig struct {
	// SendOverhead is the fixed host cost of posting one send.
	SendOverhead sim.Duration
	// RecvOverhead is the fixed host cost of completing one receive.
	RecvOverhead sim.Duration
	// CopyPerByte is the host↔NIC-SRAM staging cost per byte, charged
	// on each side.
	CopyPerByte sim.Duration
	// PollCost is one receive-poll of the NIC status across the bus.
	PollCost sim.Duration
	// RecvTimeout bounds blocking receives (0 = forever).
	RecvTimeout sim.Duration
}

// DefaultAPIConfig returns costs calibrated to an ≈85 µs one-way
// short-message latency (DESIGN.md §5).
func DefaultAPIConfig() APIConfig {
	return APIConfig{
		SendOverhead: 38 * sim.Microsecond,
		RecvOverhead: 38 * sim.Microsecond,
		CopyPerByte:  10 * sim.Nanosecond,
		PollCost:     900 * sim.Nanosecond,
		RecvTimeout:  5 * sim.Second,
	}
}

// ErrTimeout is returned when a blocking API receive exceeds the
// configured timeout.
var ErrTimeout = errors.New("myrinet: receive timed out")

type apiMsg struct {
	src  int
	data []byte
}

// fragHdr is the per-packet framing the API library prepends so that
// messages longer than one network packet reassemble at the receiver:
// message id, fragment offset, total length (4 bytes each).
const fragHdr = 12

type apiAsm struct {
	total int
	got   int
	data  []byte
}

// API is the per-node native interface; it implements xport.Endpoint.
// It talks to the SAN through the xport.Fabric interface so that fault
// injection layers can interpose transparently.
type API struct {
	net    xport.Fabric
	cfg    APIConfig
	rank   int
	nextID []uint32
	asm    []map[uint32]*apiAsm
	rx     [][]apiMsg // per-source FIFO of completed messages
}

// OpenAPI attaches the native API on node rank. The node must not also
// run an IP stack on the same NIC in this model.
func OpenAPI(net xport.Fabric, rank int, cfg APIConfig) *API {
	a := &API{
		net:    net,
		cfg:    cfg,
		rank:   rank,
		nextID: make([]uint32, net.Nodes()),
		asm:    make([]map[uint32]*apiAsm, net.Nodes()),
		rx:     make([][]apiMsg, net.Nodes()),
	}
	for i := range a.asm {
		a.asm[i] = map[uint32]*apiAsm{}
	}
	net.SetHandler(rank, func(src int, frame []byte) {
		id := getU32(frame[0:])
		off := int(getU32(frame[4:]))
		total := int(getU32(frame[8:]))
		as := a.asm[src][id]
		if as == nil {
			as = &apiAsm{total: total, data: make([]byte, total)}
			a.asm[src][id] = as
		}
		payload := frame[fragHdr:]
		copy(as.data[off:], payload)
		as.got += len(payload)
		if as.got >= as.total {
			delete(a.asm[src], id)
			a.rx[src] = append(a.rx[src], apiMsg{src, as.data})
		}
	})
	return a
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Rank returns this endpoint's node number.
func (a *API) Rank() int { return a.rank }

// Procs returns the node count.
func (a *API) Procs() int { return a.net.Nodes() }

// MaxMessage returns the largest message the API library accepts;
// longer messages are fragmented across packets transparently.
func (a *API) MaxMessage() int { return 1 << 20 }

// NativeMcast reports false: Myrinet multicast is sender-looped.
func (a *API) NativeMcast() bool { return false }

// Send stages data into NIC SRAM and injects it, fragmenting at the
// packet limit.
func (a *API) Send(p *sim.Proc, dst int, data []byte) error {
	if dst == a.rank || dst < 0 || dst >= a.Procs() {
		return fmt.Errorf("myrinet: bad destination %d", dst)
	}
	if len(data) > a.MaxMessage() {
		return fmt.Errorf("myrinet: %d bytes exceeds message limit %d", len(data), a.MaxMessage())
	}
	p.Delay(a.cfg.SendOverhead + sim.Duration(len(data))*a.cfg.CopyPerByte)
	id := a.nextID[dst]
	a.nextID[dst]++
	maxPayload := a.net.MTU() - fragHdr
	off := 0
	for {
		m := len(data) - off
		if m > maxPayload {
			m = maxPayload
		}
		frame := make([]byte, fragHdr+m)
		putU32(frame[0:], id)
		putU32(frame[4:], uint32(off))
		putU32(frame[8:], uint32(len(data)))
		copy(frame[fragHdr:], data[off:off+m])
		a.net.Transmit(a.rank, dst, frame)
		off += m
		if off >= len(data) {
			return nil
		}
	}
}

// Mcast loops Send over the destinations (no hardware replication).
func (a *API) Mcast(p *sim.Proc, dsts []int, data []byte) error {
	for _, d := range dsts {
		if err := a.Send(p, d, data); err != nil {
			return err
		}
	}
	return nil
}

func (a *API) pop(src int) (apiMsg, bool) {
	if len(a.rx[src]) == 0 {
		return apiMsg{}, false
	}
	m := a.rx[src][0]
	a.rx[src] = a.rx[src][1:]
	return m, true
}

func (a *API) complete(p *sim.Proc, m apiMsg, buf []byte) (int, error) {
	if len(m.data) > len(buf) {
		return 0, fmt.Errorf("myrinet: %d-byte message into %d-byte buffer", len(m.data), len(buf))
	}
	p.Delay(a.cfg.RecvOverhead + sim.Duration(len(m.data))*a.cfg.CopyPerByte)
	copy(buf, m.data)
	return len(m.data), nil
}

// Recv blocks (polling the NIC) for the next message from src.
func (a *API) Recv(p *sim.Proc, src int, buf []byte) (int, error) {
	deadline := sim.Time(-1)
	if a.cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(a.cfg.RecvTimeout)
	}
	for {
		if m, ok := a.pop(src); ok {
			return a.complete(p, m, buf)
		}
		p.Delay(a.cfg.PollCost)
		if deadline >= 0 && p.Now() > deadline {
			return 0, ErrTimeout
		}
	}
}

// TryRecv polls once for a message from src.
func (a *API) TryRecv(p *sim.Proc, src int, buf []byte) (int, bool, error) {
	p.Delay(a.cfg.PollCost)
	if m, ok := a.pop(src); ok {
		n, err := a.complete(p, m, buf)
		return n, err == nil, err
	}
	return 0, false, nil
}

// RecvAny blocks for the next message from any source.
func (a *API) RecvAny(p *sim.Proc, buf []byte) (src, n int, err error) {
	deadline := sim.Time(-1)
	if a.cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(a.cfg.RecvTimeout)
	}
	for {
		for s := 0; s < a.Procs(); s++ {
			if s == a.rank {
				continue
			}
			if m, ok := a.pop(s); ok {
				n, err = a.complete(p, m, buf)
				return s, n, err
			}
		}
		p.Delay(a.cfg.PollCost)
		if deadline >= 0 && p.Now() > deadline {
			return 0, 0, ErrTimeout
		}
	}
}

var _ xport.Endpoint = (*API)(nil)
