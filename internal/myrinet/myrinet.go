// Package myrinet models a Myrinet SAN of the paper's era: 1.28 Gb/s
// full-duplex links into a cut-through (wormhole) crossbar switch, plus
// the vendor's user-level API ("Myrinet API" in Figures 2–3 — the
// MyriAPI library, not the research FM/BIP layers).
//
// Cut-through switching means a packet's head can leave the switch while
// its tail is still arriving, so end-to-end latency is one serialization
// plus a small per-switch routing delay — not two serializations as in a
// store-and-forward Ethernet switch. Both the input and output links are
// still occupied for the packet's full wire time.
package myrinet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xport"
)

// Config describes the SAN.
type Config struct {
	Nodes int
	// MTU is the packet payload limit handed to the fabric (Myrinet has
	// no hard architectural limit; NIC SRAM staging bounds it).
	MTU int
	// PerByte is the wire serialization per byte (6.25 ns at 1.28 Gb/s).
	PerByte sim.Duration
	// HeaderBytes is the source-route header plus CRC on the wire.
	HeaderBytes int
	// PropDelay is cable propagation per link.
	PropDelay sim.Duration
	// SwitchLatency is the crossbar's cut-through routing delay.
	SwitchLatency sim.Duration
}

// DefaultConfig returns a 1.28 Gb/s Myrinet.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		MTU:           4096,
		PerByte:       6 * sim.Nanosecond, // ≈1.28 Gb/s (exactly 6.25 ns/B)
		HeaderBytes:   16,
		PropDelay:     100 * sim.Nanosecond,
		SwitchLatency: 550 * sim.Nanosecond,
	}
}

// Network is the SAN; it implements xport.Fabric.
type Network struct {
	k        *sim.Kernel
	cfg      Config
	up, down []*sim.Server
	handlers []func(src int, frame []byte)

	packets int64
	bytes   int64
}

// New builds the SAN on kernel k.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("myrinet: need at least 2 nodes, got %d", cfg.Nodes)
	}
	n := &Network{k: k, cfg: cfg, handlers: make([]func(int, []byte), cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		n.up = append(n.up, sim.NewServer(k))
		n.down = append(n.down, sim.NewServer(k))
	}
	return n, nil
}

// Nodes returns the host count.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// MTU returns the packet payload limit.
func (n *Network) MTU() int { return n.cfg.MTU }

// SetHandler installs node's packet delivery callback.
func (n *Network) SetHandler(node int, fn func(src int, frame []byte)) {
	n.handlers[node] = fn
}

func (n *Network) wireTime(payload int) sim.Duration {
	return sim.Duration(payload+n.cfg.HeaderBytes) * n.cfg.PerByte
}

// Transmit sends one packet src→dst through the cut-through crossbar.
func (n *Network) Transmit(src, dst int, frame []byte) {
	if len(frame) > n.cfg.MTU {
		panic(fmt.Sprintf("myrinet: %d-byte packet exceeds MTU %d", len(frame), n.cfg.MTU))
	}
	n.packets++
	n.bytes += int64(len(frame))
	wire := n.wireTime(len(frame))
	cfg := n.cfg
	// The head cuts through: the output link starts carrying the packet
	// one switch latency after the head enters, so it is busy during
	// (almost) the same interval as the input link. Occupy it now for
	// contention purposes; delivery completes when the tail has crossed
	// both the input serialization and the cut-through pipeline.
	n.down[dst].Serve(wire, nil)
	n.up[src].Serve(wire, func() {
		n.k.AfterKind(2*cfg.PropDelay+cfg.SwitchLatency, "fabric", func() {
			if h := n.handlers[dst]; h != nil {
				h(src, frame)
			}
		})
	})
}

// Stats returns packets and payload bytes transmitted.
func (n *Network) Stats() (packets, bytes int64) { return n.packets, n.bytes }

var _ xport.Fabric = (*Network)(nil)
