package myrinet

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	// Cut-through: latency ≈ one serialization + switch latency, not two.
	k := sim.NewKernel()
	cfg := DefaultConfig(2)
	n, _ := New(k, cfg)
	var arrival sim.Time
	n.SetHandler(1, func(src int, frame []byte) { arrival = k.Now() })
	k.At(0, func() { n.Transmit(0, 1, make([]byte, 4096)) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	oneWire := sim.Duration(4096+cfg.HeaderBytes) * cfg.PerByte
	want := sim.Time(oneWire + 2*cfg.PropDelay + cfg.SwitchLatency)
	if arrival != want {
		t.Fatalf("arrival = %d, want %d (single serialization)", arrival, want)
	}
}

func TestNativeAPILatencyCalibration(t *testing.T) {
	// Figure 2 calibration: short-message one-way ≈ 85 µs on the vendor
	// API (DESIGN.md §5).
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(4))
	a0 := OpenAPI(n, 0, DefaultAPIConfig())
	a1 := OpenAPI(n, 1, DefaultAPIConfig())
	var lat sim.Duration
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		if _, err := a1.Recv(p, 0, buf); err != nil {
			t.Error(err)
		}
		lat = p.Now().Sub(0)
	})
	k.Spawn("tx", func(p *sim.Proc) {
		if err := a0.Send(p, 1, []byte{1, 2, 3, 4}); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if us := lat.Microseconds(); us < 65 || us > 105 {
		t.Fatalf("native API 4-byte latency %.1f µs, want ≈85", us)
	}
}

func TestNativeAPIRoundtripContent(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(2))
	a0 := OpenAPI(n, 0, DefaultAPIConfig())
	a1 := OpenAPI(n, 1, DefaultAPIConfig())
	msg := make([]byte, 2000)
	sim.NewRNG(11).Bytes(msg)
	var got []byte
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 4096)
		n, err := a1.Recv(p, 0, buf)
		if err != nil {
			t.Error(err)
			return
		}
		got = append(got, buf[:n]...)
		// Echo back.
		if err := a1.Send(p, 0, got); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("tx", func(p *sim.Proc) {
		if err := a0.Send(p, 1, msg); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, 4096)
		if _, err := a0.Recv(p, 1, buf); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted")
	}
}

func TestNativeAPIInOrder(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(2))
	a0 := OpenAPI(n, 0, DefaultAPIConfig())
	a1 := OpenAPI(n, 1, DefaultAPIConfig())
	const count = 20
	var got []int
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if err := a0.Send(p, 1, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < count; i++ {
			if _, err := a1.Recv(p, 0, buf); err != nil {
				t.Error(err)
				return
			}
			got = append(got, int(buf[0]))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestNativeAPITimeout(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(2))
	cfg := DefaultAPIConfig()
	cfg.RecvTimeout = 100 * sim.Microsecond
	a1 := OpenAPI(n, 1, cfg)
	var err error
	k.Spawn("rx", func(p *sim.Proc) {
		_, err = a1.Recv(p, 0, make([]byte, 8))
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestNativeAPIMcastAndRecvAny(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(4))
	apis := make([]*API, 4)
	for i := range apis {
		apis[i] = OpenAPI(n, i, DefaultAPIConfig())
	}
	if apis[0].Rank() != 0 || apis[0].Procs() != 4 || apis[0].NativeMcast() {
		t.Fatal("identity accessors wrong")
	}
	got := map[int]bool{}
	k.Spawn("tx", func(p *sim.Proc) {
		if err := apis[0].Mcast(p, []int{1, 2, 3}, []byte("fan")); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("collector", func(p *sim.Proc) {
		// Nodes 1-3 each forward to node 1, which gathers with RecvAny.
		p.Delay(1 * sim.Millisecond)
		buf := make([]byte, 16)
		for _, a := range apis[1:] {
			nn, ok, err := a.TryRecv(p, 0, buf)
			if !ok || err != nil || string(buf[:nn]) != "fan" {
				t.Errorf("node %d TryRecv: ok=%v err=%v", a.Rank(), ok, err)
			}
			got[a.Rank()] = true
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("mcast reached %d of 3", len(got))
	}
}

func TestNativeAPIRecvAnyFair(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(3))
	a0 := OpenAPI(n, 0, DefaultAPIConfig())
	a1 := OpenAPI(n, 1, DefaultAPIConfig())
	a2 := OpenAPI(n, 2, DefaultAPIConfig())
	seen := map[int]int{}
	k.Spawn("tx1", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := a1.Send(p, 0, []byte{1}); err != nil {
				t.Error(err)
			}
		}
	})
	k.Spawn("tx2", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := a2.Send(p, 0, []byte{2}); err != nil {
				t.Error(err)
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < 6; i++ {
			src, _, err := a0.RecvAny(p, buf)
			if err != nil || int(buf[0]) != src {
				t.Errorf("RecvAny: src=%d err=%v", src, err)
				return
			}
			seen[src]++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if seen[1] != 3 || seen[2] != 3 {
		t.Fatalf("seen = %v", seen)
	}
	if _, err := n.Stats(); false {
		_ = err
	}
	packets, bytes := n.Stats()
	if packets == 0 || bytes == 0 {
		t.Fatal("fabric stats not counted")
	}
}

func TestNativeAPIBadArgs(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(2))
	a0 := OpenAPI(n, 0, DefaultAPIConfig())
	k.Spawn("p", func(p *sim.Proc) {
		if err := a0.Send(p, 0, nil); err == nil {
			t.Error("self-send accepted")
		}
		if err := a0.Send(p, 5, nil); err == nil {
			t.Error("bad destination accepted")
		}
		if err := a0.Send(p, 1, make([]byte, a0.MaxMessage()+1)); err == nil {
			t.Error("oversize accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthNear160MBs(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(2)
	n, _ := New(k, cfg)
	const count = 100
	var last sim.Time
	n.SetHandler(1, func(src int, frame []byte) { last = k.Now() })
	k.At(0, func() {
		for i := 0; i < count; i++ {
			n.Transmit(0, 1, make([]byte, 4096))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	mbps := float64(4096*count) / (float64(last) / 1e9) / 1e6
	if mbps < 140 || mbps > 175 {
		t.Fatalf("wire rate %.1f MB/s, want ≈160", mbps)
	}
}
