package scramnet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestSingleCutWrapsByteIdentical cuts each segment in turn on a dual
// ring and checks §2's wrap-healing claim: one severed fiber pair is
// healed by wrapping onto the secondary ring, so every node still
// receives every write byte-identically, with no packet loss — only
// added latency, visible as ring.wrap_hops.
func TestSingleCutWrapsByteIdentical(t *testing.T) {
	const nodes = 4
	for seg := 0; seg < nodes; seg++ {
		k, n := newNet(t, nodes)
		m := metrics.New()
		n.SetMetrics(m)
		n.CutLink(seg)
		for w := 0; w < nodes; w++ {
			w := w
			k.Spawn("writer", func(p *sim.Proc) {
				n.NIC(w).WriteWord(p, 4*w, uint32(0x100+w))
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		ref := n.NIC(0).Peek(0, 4*nodes)
		for i := 1; i < nodes; i++ {
			if got := n.NIC(i).Peek(0, 4*nodes); !bytes.Equal(got, ref) {
				t.Fatalf("seg %d cut: node %d bank %x != node 0 bank %x", seg, i, got, ref)
			}
		}
		for i := 0; i < nodes; i++ {
			if lost := n.NIC(i).Stats().PacketsLost; lost != 0 {
				t.Errorf("seg %d cut: node %d lost %d packets", seg, i, lost)
			}
		}
		if wraps := m.Counter("ring.wrap_hops", metrics.NodeGlobal).Value(); wraps == 0 {
			t.Errorf("seg %d cut: no wrap hops counted", seg)
		}
		if cuts := m.Counter("ring.link_cuts", metrics.NodeGlobal).Value(); cuts != 1 {
			t.Errorf("seg %d cut: link_cuts = %d, want 1", seg, cuts)
		}
	}
}

// TestSingleCutAddsLatencyOnly compares a clean ring against a cut one:
// the wrap path may only delay delivery, never change what arrives.
func TestSingleCutAddsLatencyOnly(t *testing.T) {
	run := func(cut bool) (sim.Time, []byte) {
		k, n := newNet(t, 4)
		if cut {
			n.CutLink(0)
		}
		k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 64, 7) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), n.NIC(3).Peek(64, 4)
	}
	cleanEnd, cleanBank := run(false)
	cutEnd, cutBank := run(true)
	if !bytes.Equal(cleanBank, cutBank) {
		t.Fatalf("cut changed delivered bytes: %x vs %x", cutBank, cleanBank)
	}
	if cutEnd <= cleanEnd {
		t.Errorf("wrap path should cost extra latency: clean %v, cut %v", cleanEnd, cutEnd)
	}
}

// TestDoubleCutSegmentsRing severs two segments: the ring splits into
// two arcs and writes no longer cross the cuts, but delivery within
// each arc continues — the precondition for the partition machinery.
func TestDoubleCutSegmentsRing(t *testing.T) {
	// Segments 1 (1→2) and 3 (3→0): arcs {0,1} and {2,3}.
	k, n := newNet(t, 4)
	n.CutLink(1)
	n.CutLink(3)
	if n.CutSegments() != 2 {
		t.Fatalf("CutSegments = %d, want 2", n.CutSegments())
	}
	k.Spawn("w0", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 0xa) })
	k.Spawn("w2", func(p *sim.Proc) { n.NIC(2).WriteWord(p, 4, 0xb) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.NIC(1).Peek(0, 4)[0] != 0xa {
		t.Error("node 1 (same arc as 0) missed node 0's write")
	}
	for _, i := range []int{2, 3} {
		if n.NIC(i).Peek(0, 4)[0] == 0xa {
			t.Errorf("node %d (far arc) received node 0's write across the cuts", i)
		}
	}
	if n.NIC(3).Peek(4, 4)[0] != 0xb {
		t.Error("node 3 (same arc as 2) missed node 2's write")
	}
	for _, i := range []int{0, 1} {
		if n.NIC(i).Peek(4, 4)[0] == 0xb {
			t.Errorf("node %d (far arc) received node 2's write across the cuts", i)
		}
	}
}

// TestSpliceRestoresDelivery verifies the heal: after both segments
// are spliced, new writes reach everyone again.
func TestSpliceRestoresDelivery(t *testing.T) {
	k, n := newNet(t, 4)
	n.CutLink(1)
	n.CutLink(3)
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 0, 1)
		p.Delay(50 * sim.Microsecond)
		n.SpliceLink(1)
		n.SpliceLink(3)
		n.NIC(0).WriteWord(p, 4, 2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.CutSegments() != 0 {
		t.Fatalf("CutSegments = %d after splice, want 0", n.CutSegments())
	}
	for _, i := range []int{2, 3} {
		if n.NIC(i).Peek(0, 4)[0] == 1 {
			t.Errorf("node %d received pre-splice write across the partition", i)
		}
		if n.NIC(i).Peek(4, 4)[0] != 2 {
			t.Errorf("node %d missed the post-splice write", i)
		}
	}
}

// TestSingleRingCutLosesDownstream: without the secondary ring there is
// no wrap path — a cut drops everything that would cross it.
func TestSingleRingCutLosesDownstream(t *testing.T) {
	k, n := newNet(t, 4, func(c *Config) { c.DualRing = false })
	n.CutLink(1)
	k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 42) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 3} {
		if n.NIC(i).Peek(0, 4)[0] == 42 {
			t.Errorf("node %d received across a cut single ring", i)
		}
	}
	if n.NIC(0).Stats().PacketsLost == 0 {
		t.Error("expected lost packets charged to the origin")
	}
}

// TestRouteBrokenRing covers the routing probe's error paths: a severed
// single ring reports the cut, and a dual ring whose every node is
// bypassed reports a broken ring instead of spinning forever (the bug
// the bounded walk fixed).
func TestRouteBrokenRing(t *testing.T) {
	_, single := newNet(t, 4, func(c *Config) { c.DualRing = false })
	single.CutLink(2)
	if _, err := single.Route(2); err == nil {
		t.Fatal("single-ring cut: Route returned no error")
	} else {
		var bre *BrokenRingError
		if !errors.As(err, &bre) || !bre.Cut {
			t.Fatalf("single-ring cut: err = %v, want BrokenRingError{Cut: true}", err)
		}
	}

	_, dual := newNet(t, 4)
	for i := 0; i < 4; i++ {
		dual.FailNode(i)
	}
	if _, err := dual.Route(0); err == nil {
		t.Fatal("all-bypassed dual ring: Route returned no error (would spin)")
	} else {
		var bre *BrokenRingError
		if !errors.As(err, &bre) || bre.Cut {
			t.Fatalf("all-bypassed: err = %v, want BrokenRingError{Cut: false}", err)
		}
	}

	// Healthy ring: the probe agrees with plain successor stepping.
	_, ok := newNet(t, 4)
	if next, err := ok.Route(1); err != nil || next != 2 {
		t.Fatalf("healthy Route(1) = %d, %v; want 2, nil", next, err)
	}
}

// TestBypassPlusCut combines the two dual-ring heals: node 1 optically
// bypassed and segment 2 severed. Every surviving node must still see
// every write, with both bypass and wrap hops counted.
func TestBypassPlusCut(t *testing.T) {
	k, n := newNet(t, 4)
	m := metrics.New()
	n.SetMetrics(m)
	n.FailNode(1)
	n.CutLink(2)
	k.Spawn("w0", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 0x11) })
	k.Spawn("w3", func(p *sim.Proc) { n.NIC(3).WriteWord(p, 4, 0x22) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 3} {
		if n.NIC(i).Peek(0, 4)[0] != 0x11 {
			t.Errorf("node %d missed node 0's write under bypass+cut", i)
		}
		if n.NIC(i).Peek(4, 4)[0] != 0x22 {
			t.Errorf("node %d missed node 3's write under bypass+cut", i)
		}
	}
	if n.NIC(1).Peek(0, 4)[0] == 0x11 {
		t.Error("bypassed node applied a write")
	}
	if m.Counter("ring.bypass_hops", metrics.NodeGlobal).Value() == 0 {
		t.Error("no bypass hops counted")
	}
	if m.Counter("ring.wrap_hops", metrics.NodeGlobal).Value() == 0 {
		t.Error("no wrap hops counted")
	}
}

// TestSingleCutDeliveryProperty is the wrap-healing property: for any
// single severed segment, any writer set, and any write interleaving,
// every node's bank converges byte-identically — a single cut on a
// dual ring is invisible to the memory abstraction.
func TestSingleCutDeliveryProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		return singleCutConverges(t, seed)
	}
	cfg := &quick.Config{
		MaxCount: 20,
		Rand:     rand.New(rand.NewSource(20260808)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func singleCutConverges(t *testing.T, seed uint64) bool {
	const (
		nodes   = 5
		region  = 256
		horizon = 200 * sim.Microsecond
	)
	rng := sim.NewRNG(seed)
	seg := rng.Intn(nodes)
	cutAt := sim.Time(0).Add(rng.Duration(horizon))

	k, n := newNet(t, nodes)
	defer k.Close()
	k.At(cutAt, func() { n.CutLink(seg) })

	for w := 0; w < nodes; w++ {
		w := w
		base := w * region
		k.Spawn("writer", func(p *sim.Proc) {
			r := sim.NewRNG(seed ^ uint64(w)<<32)
			for i := 0; i < 16; i++ {
				p.Delay(r.Duration(horizon / 8))
				n.NIC(w).WriteWord(p, base+4*(i%(region/4)), uint32(r.Uint64()))
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ref := n.NIC(0).Peek(0, nodes*region)
	for i := 1; i < nodes; i++ {
		if !bytes.Equal(n.NIC(i).Peek(0, nodes*region), ref) {
			t.Logf("seed %d: node %d diverged (seg %d cut at %v)", seed, i, seg, cutAt)
			return false
		}
	}
	for i := 0; i < nodes; i++ {
		if n.NIC(i).Stats().PacketsLost != 0 {
			t.Logf("seed %d: node %d lost packets under a single cut", seed, i)
			return false
		}
	}
	return true
}
