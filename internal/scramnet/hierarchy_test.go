package scramnet

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func newHier(t *testing.T, leaves, hostsPerLeaf int) (*sim.Kernel, *Hierarchy) {
	t.Helper()
	k := sim.NewKernel()
	h, err := NewHierarchy(k, DefaultHierarchyConfig(leaves, hostsPerLeaf))
	if err != nil {
		t.Fatal(err)
	}
	return k, h
}

func TestHierarchyConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewHierarchy(k, DefaultHierarchyConfig(1, 2)); err == nil {
		t.Error("single-leaf hierarchy accepted")
	}
	cfg := DefaultHierarchyConfig(2, 2)
	cfg.LeafHosts[1] = 0
	if _, err := NewHierarchy(k, cfg); err == nil {
		t.Error("empty leaf accepted")
	}
}

func TestHierarchyGlobalNumbering(t *testing.T) {
	_, h := newHier(t, 3, 2)
	if h.Nodes() != 6 {
		t.Fatalf("Nodes = %d, want 6", h.Nodes())
	}
	// Hosts 0,1 on leaf 0; 2,3 on leaf 1; 4,5 on leaf 2.
	if h.NIC(2) != h.Leaf(1).NIC(0) {
		t.Error("global host 2 should be leaf 1 node 0")
	}
	if h.NIC(5) != h.Leaf(2).NIC(1) {
		t.Error("global host 5 should be leaf 2 node 1")
	}
}

func TestHierarchyCrossRingReplication(t *testing.T) {
	k, h := newHier(t, 3, 2)
	data := make([]byte, 500)
	sim.NewRNG(1).Bytes(data)
	k.Spawn("writer", func(p *sim.Proc) {
		h.NIC(0).Write(p, 4096, data) // host on leaf 0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.Nodes(); i++ {
		if !bytes.Equal(h.NIC(i).Peek(4096, len(data)), data) {
			t.Errorf("host %d bank missing the cross-ring write", i)
		}
	}
	// Backbone and bridge banks replicate too (full address space
	// everywhere).
	if !bytes.Equal(h.Backbone().NIC(2).Peek(4096, len(data)), data) {
		t.Error("backbone bank missing the write")
	}
	if !h.Quiescent() {
		t.Error("hierarchy not quiescent after Run")
	}
}

func TestHierarchyPerSenderFIFOAcrossRings(t *testing.T) {
	// Writes from a host on leaf 0 must apply at a host on leaf 2 in
	// issue order even though they crossed two bridges.
	k, h := newHier(t, 3, 2)
	var arrived []int
	h.NIC(4).EnableInterrupts(true, func(off int) { arrived = append(arrived, off) })
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 24; i++ {
			h.NIC(0).WriteWordInterrupt(p, i*4, uint32(i))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrived) != 24 {
		t.Fatalf("got %d arrivals, want 24", len(arrived))
	}
	for i, off := range arrived {
		if off != i*4 {
			t.Fatalf("cross-ring FIFO violated at %d: offset %d", i, off)
		}
	}
}

func TestHierarchyLatencyExceedsFlatRing(t *testing.T) {
	// Crossing two bridges and three rings must cost more than a flat
	// ring of the same host count.
	flatLat := func() sim.Duration {
		k := sim.NewKernel()
		n, err := New(k, DefaultConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		var at sim.Time
		n.NIC(2).EnableInterrupts(true, func(off int) { at = k.Now() })
		k.Spawn("w", func(p *sim.Proc) { n.NIC(0).WriteWordInterrupt(p, 0, 1) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return at.Sub(0)
	}()
	hierLat := func() sim.Duration {
		k, h := newHier(t, 2, 2)
		var at sim.Time
		h.NIC(2).EnableInterrupts(true, func(off int) { at = k.Now() }) // other leaf
		k.Spawn("w", func(p *sim.Proc) { h.NIC(0).WriteWordInterrupt(p, 0, 1) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return at.Sub(0)
	}()
	if hierLat <= flatLat {
		t.Fatalf("hierarchy latency %v not above flat ring %v", hierLat, flatLat)
	}
}

func TestHierarchySingleWriterCheckGlobal(t *testing.T) {
	k, h := newHier(t, 2, 2)
	h.SetSingleWriterCheck(true)
	panicked := false
	k.Spawn("w0", func(p *sim.Proc) { h.NIC(0).WriteWord(p, 0, 1) }) // leaf 0
	k.Spawn("w2", func(p *sim.Proc) {                                // leaf 1
		p.Delay(sim.Millisecond)
		func() {
			defer func() { panicked = recover() != nil }()
			h.NIC(2).WriteWord(p, 0, 2)
		}()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Error("cross-ring single-writer violation not caught")
	}
}

func TestHierarchyManyLeavesAllPairs(t *testing.T) {
	// Every host writes its own word; every bank ends identical.
	k, h := newHier(t, 4, 3)
	for i := 0; i < h.Nodes(); i++ {
		i := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			h.NIC(i).WriteWord(p, i*4, uint32(0xA0+i))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.Nodes(); i++ {
		for j := 0; j < h.Nodes(); j++ {
			if got := h.NIC(j).Peek(i*4, 1)[0]; got != byte(0xA0+i) {
				t.Fatalf("host %d's word not at host %d: %#x", i, j, got)
			}
		}
	}
}
