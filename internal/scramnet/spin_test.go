package scramnet

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/spin"
)

// fnHandler adapts a function to spin.Handler for ring-level tests.
type fnHandler func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict

func (f fnHandler) OnTransit(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
	return f(ctx, pkt)
}

func TestHandlerConsumeStripsPacket(t *testing.T) {
	k, n := newNet(t, 4)
	n.NIC(1).InstallHandler(128, 4, fnHandler(func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
		ctx.Charge(1)
		return spin.Consume
	}))
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 128, 0xcafef00d)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Nodes 0 (writer, synchronous) and 1 (consumer, applies) see the
	// word; nodes 2 and 3 never do.
	want := []byte{0x0d, 0xf0, 0xfe, 0xca}
	for _, i := range []int{0, 1} {
		if got := n.NIC(i).Peek(128, 4); !bytes.Equal(got, want) {
			t.Errorf("node %d bank = %x, want %x", i, got, want)
		}
	}
	for _, i := range []int{2, 3} {
		if got := n.NIC(i).Peek(128, 4); !bytes.Equal(got, make([]byte, 4)) {
			t.Errorf("node %d bank = %x, want zeros", i, got)
		}
	}
	st := n.NIC(1).HandlerStats()
	if st.PacketsConsumed != 1 || st.HandlersRun != 1 {
		t.Errorf("stats %+v", st)
	}
	if !n.Quiescent() {
		t.Error("ring not quiescent")
	}
}

func TestHandlerSteerSkipsLocalApply(t *testing.T) {
	k, n := newNet(t, 4)
	n.NIC(2).InstallHandler(128, 4, fnHandler(func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
		ctx.Charge(1)
		return spin.Steer
	}))
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 128, 0xcafef00d)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0x0d, 0xf0, 0xfe, 0xca}
	for _, i := range []int{0, 1, 3} {
		if got := n.NIC(i).Peek(128, 4); !bytes.Equal(got, want) {
			t.Errorf("node %d bank = %x, want %x", i, got, want)
		}
	}
	if got := n.NIC(2).Peek(128, 4); !bytes.Equal(got, make([]byte, 4)) {
		t.Errorf("steer node bank = %x, want zeros", got)
	}
	if st := n.NIC(2).HandlerStats(); st.PacketsSteered != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestHandlerRewritePropagatesDownstreamAndToOrigin(t *testing.T) {
	k, n := newNet(t, 4)
	n.NIC(1).InstallHandler(128, 4, fnHandler(func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
		ctx.Charge(1)
		pkt.Data[0]++
		return spin.Rewrite
	}))
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 128, 0x10)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Node 1 rewrites 0x10 -> 0x11; nodes 1..3 and — via strip-apply —
	// the origin all see the rewritten value.
	for i := 0; i < 4; i++ {
		if got := n.NIC(i).Peek(128, 1)[0]; got != 0x11 {
			t.Errorf("node %d byte = %#x, want 0x11", i, got)
		}
	}
	if st := n.NIC(1).HandlerStats(); st.PacketsRewritten != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestHandlerCostChargedInVirtualTime(t *testing.T) {
	const cycles = 100
	run := func(install bool) sim.Duration {
		k, n := newNet(t, 3)
		if install {
			n.NIC(1).InstallHandler(128, 4, fnHandler(func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
				ctx.Charge(cycles)
				return spin.Forward
			}))
		}
		var done sim.Time
		k.Spawn("writer", func(p *sim.Proc) {
			n.NIC(0).WriteWord(p, 128, 1)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		done = k.Now()
		return sim.Duration(done)
	}
	base, handled := run(false), run(true)
	wantDelta := cycles * DefaultHandlerCycleCost
	if handled-base != wantDelta {
		t.Errorf("handler cost: drained at %v vs %v, delta %v want %v",
			handled, base, handled-base, wantDelta)
	}
}

func TestHandlerBudgetTrapAtRingLevel(t *testing.T) {
	k, n := newNet(t, 3, func(c *Config) { c.HandlerBudget = 10 })
	n.NIC(1).InstallHandler(128, 4, fnHandler(func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
		pkt.Data[0] = 0xff // must be rolled back by the trap
		ctx.Charge(1 << 20)
		return spin.Consume // must be ignored: trapped packets forward
	}))
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 128, 0x42)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := n.NIC(i).Peek(128, 1)[0]; got != 0x42 {
			t.Errorf("node %d byte = %#x, want 0x42 (trap must roll back and forward)", i, got)
		}
	}
	st := n.NIC(1).HandlerStats()
	if st.TrapsToHost != 1 || st.HandlerCycles != 10 || st.PacketsConsumed != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestUninstallHandlerRestoresPlainTransit(t *testing.T) {
	k, n := newNet(t, 3)
	id := n.NIC(1).InstallHandler(128, 4, fnHandler(func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
		return spin.Steer
	}))
	if !n.NIC(1).UninstallHandler(id) {
		t.Fatal("uninstall failed")
	}
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 128, 0x7)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.NIC(1).Peek(128, 1)[0]; got != 0x7 {
		t.Errorf("uninstalled handler still steering: byte %#x", got)
	}
	if st := n.NIC(1).HandlerStats(); st.HandlersRun != 0 {
		t.Errorf("uninstalled handler ran: %+v", st)
	}
}

func TestDropRateConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	for _, r := range []float64{-0.1, 1.1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		cfg := DefaultConfig(3)
		cfg.DropRate = r
		if _, err := New(k, cfg); err == nil {
			t.Errorf("DropRate %v accepted, want error", r)
		}
	}
	for _, r := range []float64{0, 0.5, 1} {
		cfg := DefaultConfig(3)
		cfg.DropRate = r
		if _, err := New(k, cfg); err != nil {
			t.Errorf("DropRate %v rejected: %v", r, err)
		}
	}
}

func TestSetDropRateClamps(t *testing.T) {
	_, n := newNet(t, 3)
	for _, c := range []struct{ in, want float64 }{
		{-0.5, 0}, {1.5, 1}, {math.NaN(), 0}, {math.Inf(1), 1}, {math.Inf(-1), 0}, {0.25, 0.25},
	} {
		n.SetDropRate(c.in)
		if got := n.Config().DropRate; got != c.want {
			t.Errorf("SetDropRate(%v): got %v want %v", c.in, got, c.want)
		}
	}
}

// TestEnableInterruptsNilHandler is the regression test for the panic:
// arming interrupts with a nil handler used to crash on the first
// interrupt-flagged packet.
func TestEnableInterruptsNilHandler(t *testing.T) {
	k, n := newNet(t, 3)
	n.NIC(1).EnableInterrupts(true, nil) // must not arm, must not panic
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWordInterrupt(p, 128, 0xabad1dea)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := n.NIC(1).Peek(128, 4); !bytes.Equal(got, []byte{0xea, 0x1d, 0xad, 0xab}) {
		t.Errorf("interrupt write not applied: %x", got)
	}
}

// TestHandlerDeterminism: two identical runs with handlers, drops and a
// mid-flight failure must produce byte-identical banks and identical
// spin.* counters.
func TestHandlerDeterminism(t *testing.T) {
	type result struct {
		banks [][]byte
		stats []spin.Stats
	}
	run := func() result {
		k, n := newNet(t, 5, func(c *Config) {
			c.DropRate = 0.3
			c.Seed = 77
		})
		for i := 1; i < 5; i++ {
			i := i
			n.NIC(i).InstallHandler(128, 64, fnHandler(func(ctx *spin.HandlerCtx, pkt spin.Packet) spin.Verdict {
				ctx.Charge(2)
				if pkt.Off%8 == 0 {
					pkt.Data[0] ^= byte(i)
					return spin.Rewrite
				}
				return spin.Forward
			}))
		}
		k.Spawn("writer", func(p *sim.Proc) {
			for w := 0; w < 16; w++ {
				n.NIC(0).WriteWord(p, 128+4*w, uint32(0x1000+w))
			}
		})
		k.At(sim.Time(0).Add(5*sim.Microsecond), func() { n.FailNode(3) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		r := result{}
		for i := 0; i < 5; i++ {
			r.banks = append(r.banks, n.NIC(i).Peek(128, 64))
			r.stats = append(r.stats, n.NIC(i).HandlerStats())
		}
		return r
	}
	a, b := run(), run()
	for i := range a.banks {
		if !bytes.Equal(a.banks[i], b.banks[i]) {
			t.Errorf("node %d banks differ:\n%x\n%x", i, a.banks[i], b.banks[i])
		}
		if a.stats[i] != b.stats[i] {
			t.Errorf("node %d spin stats differ: %+v vs %+v", i, a.stats[i], b.stats[i])
		}
	}
}
