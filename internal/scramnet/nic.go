package scramnet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/pci"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/trace"
)

// NIC is one node's SCRAMNet interface card: a full replica of the
// shared memory bank, a host bus attachment, and a ring link.
type NIC struct {
	net *Network
	id  int
	// ownerID identifies this card's host in the single-writer table;
	// it equals id on a flat ring and the global host number in a
	// hierarchy.
	ownerID int
	mem     []byte
	bus     *pci.Bus

	link      *sim.Server // outgoing ring link (local + transit traffic)
	txBacklog int         // bytes queued in the transmit FIFO
	txDrain   *sim.Cond

	failed bool

	// Trace context stamped onto every packet this card injects. The
	// BBP layer sets it around the bus writes belonging to one message;
	// safe without locking because nic.send runs synchronously inside
	// the calling simulation process.
	ctxMsg  uint64
	ctxSpan trace.SpanID

	intrOn      bool
	intrHandler func(off int)
	// onApply, when set, observes every remote write applied to this
	// bank (used by hierarchy bridges to forward between rings).
	onApply func(pkt *packet)

	// handlers is the card's in-network handler engine (internal/spin),
	// created lazily on the first InstallHandler so an un-handled card
	// adds nothing to the transit path. mreg remembers the metrics
	// registry so a lazily created engine gets its spin.* instruments.
	handlers *spin.Engine
	mreg     *metrics.Registry

	stats Stats
	im    nicInstruments
}

// nicInstruments are the per-card metrics (nil = disabled no-ops).
type nicInstruments struct {
	injected      *metrics.Counter // ring.packets_injected
	applied       *metrics.Counter // ring.packets_applied
	crcDrops      *metrics.Counter // ring.packets_lost (CRC or broken ring)
	bytesInjected *metrics.Counter // ring.bytes_injected
	interrupts    *metrics.Counter // ring.interrupts_taken
	combined      *metrics.Counter // ring.packets_combined (handler rewrites at transit)
}

// setMetrics creates this card's instruments, keyed by its host number,
// and wires the host bus with the same node id.
func (nic *NIC) setMetrics(m *metrics.Registry) {
	nic.im = nicInstruments{
		injected:      m.Counter("ring.packets_injected", nic.ownerID),
		applied:       m.Counter("ring.packets_applied", nic.ownerID),
		crcDrops:      m.Counter("ring.packets_lost", nic.ownerID),
		bytesInjected: m.Counter("ring.bytes_injected", nic.ownerID),
		interrupts:    m.Counter("ring.interrupts_taken", nic.ownerID),
		combined:      m.Counter("ring.packets_combined", nic.ownerID),
	}
	nic.bus.SetMetrics(m, nic.ownerID)
	nic.mreg = m
	if nic.handlers != nil {
		nic.handlers.SetMetrics(m)
	}
}

// SetTraceContext attributes subsequent injections from this card to
// message msg under parent span parent, returning the previous context
// so the caller can restore it (two processes — the application and the
// retry daemon — share one card). Cheap enough to call unconditionally;
// it only labels trace events. If one process blocks mid-write while
// the other holds the context, a packet label can momentarily attach to
// the wrong message; this affects only ring-span attribution, never the
// protocol events themselves, which carry explicit ids.
func (nic *NIC) SetTraceContext(msg uint64, parent trace.SpanID) (prevMsg uint64, prevParent trace.SpanID) {
	prevMsg, prevParent = nic.ctxMsg, nic.ctxSpan
	nic.ctxMsg, nic.ctxSpan = msg, parent
	return
}

// ID returns the ring node number.
func (nic *NIC) ID() int { return nic.id }

// Bus returns the host I/O bus the card is attached to.
func (nic *NIC) Bus() *pci.Bus { return nic.bus }

// LinkUp reports whether the card sees carrier on its ring receiver. A
// bypassed (failed) card loses carrier; the host can sample this status
// register to notice it was partitioned from the ring and rejoin with a
// fresh identity once the bypass is removed.
func (nic *NIC) LinkUp() bool { return !nic.failed }

// RingCuts returns the number of severed ring segments the card's ring
// status register reports (Network.CutSegments). Hosts sample it
// alongside LinkUp as the hardware evidence that distinguishes a
// partitioned peer from a dead one.
func (nic *NIC) RingCuts() int { return nic.net.cuts }

// NetworkConfig returns the configuration of the ring this card sits
// on (used by layers that need propagation bounds, e.g. scrsync).
func (nic *NIC) NetworkConfig() Config { return nic.net.cfg }

// Size returns the replicated memory size in bytes.
func (nic *NIC) Size() int { return len(nic.mem) }

// Stats returns a copy of the card's counters.
func (nic *NIC) Stats() Stats { return nic.stats }

// AssignOwner transfers single-writer ownership of the words covering
// [off, off+n) to the given host number, overwriting the recorded
// owner. Protocol layers call it at explicit hand-over points (posting
// and reclaiming a rendezvous window); it is bookkeeping only and
// charges no bus or wire time.
func (nic *NIC) AssignOwner(owner, off, n int) {
	nic.checkRange(off, n)
	nic.net.assignOwner(owner, off, n)
}

// checkWriter enforces the single-writer discipline for a host write
// from this card. A bypassed (failed) card is exempt: its transmitter
// drives the optical bypass loop, so its writes reach no other bank and
// cannot conflict with a live writer — in particular, a dead sender
// blindly finishing a rendezvous window whose words have already been
// reclaimed and re-lent by the receiver must not trip the assertion.
func (nic *NIC) checkWriter(off, n int) {
	if nic.failed {
		return
	}
	nic.net.checkOwner(nic.ownerID, off, n)
}

// DrainBound returns a conservative virtual time by which every write
// this card has issued so far will have been applied at every live
// node: the transmit link's busy horizon (all queued local and transit
// packets serialized) plus one full revolution of worst-case hop and
// wire delays. Layers that pipeline writes against ring circulation
// (the rendezvous window path) use it to bound how far they run ahead.
func (nic *NIC) DrainBound() sim.Time {
	t := nic.net.k.Now()
	if busy := nic.link.BusyUntil(); busy > t {
		t = busy
	}
	cfg := nic.net.cfg
	wire := cfg.FixedPacketWire
	if cfg.Mode == VariablePackets {
		wire = cfg.VarHeaderWire + sim.Duration(MaxVarPayload)*cfg.VarPerByteWire
	}
	return t.Add(sim.Duration(cfg.Nodes) * (cfg.HopDelay + wire))
}

func (nic *NIC) checkRange(off, n int) {
	if off < 0 || n < 0 || off+n > len(nic.mem) {
		panic(fmt.Sprintf("scramnet: access [%d,%d) outside %d-byte bank", off, off+n, len(nic.mem)))
	}
}

// apply installs a remote write into the local bank (called by the ring).
func (nic *NIC) apply(pkt *packet) {
	copy(nic.mem[pkt.off:], pkt.data)
	nic.stats.PacketsApplied++
	nic.im.applied.Inc()
	nic.net.tracer.EmitMsg(nic.net.k.Now(), trace.Ring, nic.id, "apply", pkt.msg, pkt.span, "off=%#x len=%d from=%d", pkt.off, len(pkt.data), pkt.origin)
	if pkt.interrupt && nic.intrOn && nic.intrHandler != nil {
		// Capture the handler at vectoring time: the host may disable
		// or reconfigure interrupts during the dispatch latency, and
		// the card must deliver through the vector it latched, not
		// through whatever the field holds when the timer fires (a nil
		// there used to panic the simulation).
		off, h := pkt.off, nic.intrHandler
		nic.stats.InterruptsTaken++
		nic.im.interrupts.Inc()
		nic.net.k.AfterKind(nic.net.cfg.InterruptLatency, "intr", func() { h(off) })
	}
	if nic.onApply != nil {
		nic.onApply(pkt)
	}
}

// stripApply installs a handler-rewritten packet into the origin's own
// bank at strip time, closing the streaming-reduction loop: after one
// revolution the initiator's replica holds the fully combined lanes.
// Not an "apply" for accounting purposes — the trace/metrics identity
// (apply events == ring.packets_applied) counts remote applies only.
func (nic *NIC) stripApply(pkt *packet) {
	copy(nic.mem[pkt.off:], pkt.data)
	nic.net.tracer.EmitMsg(nic.net.k.Now(), trace.Spin, nic.id, "strip-apply", pkt.msg, pkt.span, "off=%#x len=%d", pkt.off, len(pkt.data))
}

// InstallHandler registers an in-network handler (internal/spin) for
// ring packets overlapping [off, off+n) at this card's transit point,
// returning an id for UninstallHandler. Handlers run before the local
// apply and the forward decision, in install order, and their cycle
// cost is charged in virtual time per Config.HandlerCycleCost /
// Config.HandlerBudget.
func (nic *NIC) InstallHandler(off, n int, h spin.Handler) int {
	nic.checkRange(off, n)
	if nic.handlers == nil {
		nic.handlers = spin.NewEngine(nic.ownerID, nic.net.cfg.HandlerBudget)
		if nic.mreg != nil {
			nic.handlers.SetMetrics(nic.mreg)
		}
	}
	return nic.handlers.Install(off, n, h)
}

// UninstallHandler removes the handler registered under id, reporting
// whether it was installed.
func (nic *NIC) UninstallHandler(id int) bool {
	return nic.handlers != nil && nic.handlers.Uninstall(id)
}

// HandlerStats returns a copy of the card's spin.* counters (zero when
// no handler was ever installed).
func (nic *NIC) HandlerStats() spin.Stats {
	if nic.handlers == nil {
		return spin.Stats{}
	}
	return nic.handlers.Stats()
}

// transit runs the card's in-network handlers against a packet hopping
// through, returning the verdict, the virtual-time cost to charge
// before the packet progresses, and the open handler span (closed by
// the ring once the cost has elapsed). ran is false — and everything
// else zero — when no installed range overlaps the packet, which keeps
// un-handled traffic cost-free.
func (nic *NIC) transit(pkt *packet) (v spin.Verdict, cost sim.Duration, span trace.SpanID, ran bool) {
	if nic.handlers == nil || !nic.handlers.Covers(pkt.off, len(pkt.data)) {
		return spin.Forward, 0, 0, false
	}
	net := nic.net
	ctx := &spin.HandlerCtx{
		Node: nic.id,
		Now:  net.k.Now(),
		Bank: func(off, n int) []byte {
			nic.checkRange(off, n)
			return nic.mem[off : off+n]
		},
		InjectHook: func(off int, data []byte) { nic.handlerInject(off, data, pkt) },
	}
	span = net.tracer.BeginSpan(net.k.Now(), trace.Spin, nic.id, "handler", pkt.msg, pkt.span, "off=%#x len=%d from=%d", pkt.off, len(pkt.data), pkt.origin)
	v, cycles, trapped := nic.handlers.Run(ctx, spin.Packet{Origin: pkt.origin, Off: pkt.off, Hops: pkt.hops, Data: pkt.data, Interrupt: pkt.interrupt})
	if v == spin.Rewrite {
		pkt.rewritten = true
		nic.stats.PacketsCombined++
		nic.im.combined.Inc()
	}
	if trapped {
		net.tracer.EmitMsg(net.k.Now(), trace.Spin, nic.id, "trap", pkt.msg, span, "budget=%d", net.cfg.HandlerBudget)
	}
	return v, sim.Duration(cycles) * net.cfg.HandlerCycleCost, span, true
}

// handlerInject posts a NIC-originated ring write on behalf of an
// in-network handler (HandlerCtx.Inject): local bank update plus a
// ring packet, with no host-bus cost — the handler engine sits on the
// card side of the bus. The injected packet inherits the triggering
// packet's trace attribution, and the single-writer discipline applies
// exactly as for a host write from this node.
//
// Handler injections deliberately bypass the host transmit FIFO
// (TxFIFOBytes) and its backpressure accounting: the FIFO sits between
// the host bus and the card, and a card-originated write enters the
// ring insertion path directly. The packet still serializes on this
// node's outgoing link — which is the contention that matters for
// DrainBound and for host writes queued behind it — but it neither
// occupies FIFO capacity nor can a handler stall a transit waiting for
// FIFO space (handlers run inside ring event processing, where there is
// no host process to block).
func (nic *NIC) handlerInject(off int, data []byte, cause *packet) {
	nic.checkRange(off, len(data))
	nic.checkWriter(off, len(data))
	data = append([]byte(nil), data...)
	copy(nic.mem[off:], data)
	nic.net.inject(&packet{origin: nic.id, off: off, data: data, nicOrigin: true, msg: cause.msg, parent: cause.span})
}

// injectForwarded re-posts a write that arrived from another ring, as if
// this NIC's host had written it (used by hierarchy bridges; no bus time
// is charged — the bridge moves data NIC-to-NIC in hardware). The bank
// is updated immediately, as for a host write. msg/parent carry the
// originating packet's trace attribution across the bridge.
func (nic *NIC) injectForwarded(off int, data []byte, interrupt bool, msg uint64, parent trace.SpanID) {
	copy(nic.mem[off:], data)
	nic.txBacklog += len(data)
	nic.net.inject(&packet{origin: nic.id, off: off, data: data, interrupt: interrupt, msg: msg, parent: parent})
}

// stallTxFIFO blocks the host process until the transmit FIFO can accept
// n more bytes. This is the mechanism that throttles PIO streams to the
// ring rate.
func (nic *NIC) stallTxFIFO(p *sim.Proc, n int) {
	for nic.txBacklog+n > nic.net.cfg.TxFIFOBytes {
		nic.txDrain.Wait(p)
	}
	nic.txBacklog += n
}

// send chunks [off, off+len(data)) into ring packets and injects them.
// charge is invoked with each chunk's byte count before the FIFO stall so
// that host-bus time overlaps the wire drain, as it does in hardware.
// The local bank has already been updated by the caller.
func (nic *NIC) send(p *sim.Proc, off int, data []byte, interrupt bool, charge func(chunk int)) {
	max := nic.net.maxPayload()
	for len(data) > 0 {
		n := len(data)
		if n > max {
			n = max
		}
		pkt := &packet{origin: nic.id, off: off, data: append([]byte(nil), data[:n]...), interrupt: interrupt, msg: nic.ctxMsg, parent: nic.ctxSpan}
		if charge != nil {
			charge(n)
		}
		nic.stallTxFIFO(p, n)
		nic.net.inject(pkt)
		off += n
		data = data[n:]
	}
}

// WriteWord performs one posted PIO word write: local bank update plus a
// ring packet. This is the paper's "single store instruction" path.
func (nic *NIC) WriteWord(p *sim.Proc, off int, v uint32) {
	nic.writeWord(p, off, v, false)
}

// WriteWordInterrupt is WriteWord with the packet's interrupt bit set:
// receivers with interrupts enabled take one on arrival.
func (nic *NIC) WriteWordInterrupt(p *sim.Proc, off int, v uint32) {
	nic.writeWord(p, off, v, true)
}

func (nic *NIC) writeWord(p *sim.Proc, off int, v uint32, intr bool) {
	nic.checkRange(off, 4)
	nic.checkWriter(off, 4)
	nic.bus.PIOWrite(p, 1)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	copy(nic.mem[off:], b[:])
	nic.send(p, off, b[:], intr, nil)
}

// ReadWord performs one PIO word read from the local bank. Reads never
// generate ring traffic — the data is already local. That the read still
// costs a full bus round trip is what makes polling expensive (§7).
func (nic *NIC) ReadWord(p *sim.Proc, off int) uint32 {
	nic.checkRange(off, 4)
	nic.bus.PIORead(p, 1)
	return binary.LittleEndian.Uint32(nic.mem[off:])
}

// Write copies data into the bank at off with PIO word writes and
// replicates it. data need not be word-aligned in length; the tail word
// is read-modify-written locally.
func (nic *NIC) Write(p *sim.Proc, off int, data []byte) {
	if len(data) == 0 {
		return
	}
	nic.checkRange(off, len(data))
	nic.checkWriter(off, len(data))
	copy(nic.mem[off:], data)
	nic.send(p, off, data, false, func(chunk int) {
		nic.bus.PIOWrite(p, pci.WordsFor(chunk))
	})
}

// WriteDMA is Write using the DMA engine: fixed setup cost, then the
// engine streams the block across the bus without per-word CPU work.
// The calling process blocks until the engine finishes handing the block
// to the transmit FIFO.
func (nic *NIC) WriteDMA(p *sim.Proc, off int, data []byte) {
	if len(data) == 0 {
		return
	}
	nic.checkRange(off, len(data))
	nic.checkWriter(off, len(data))
	copy(nic.mem[off:], data)
	cfg := nic.bus.Config()
	nic.bus.CountDMABurst(len(data))
	p.Delay(cfg.DMASetup)
	nic.send(p, off, data, false, func(chunk int) {
		p.Delay(sim.Duration(chunk) * cfg.DMAPerByte)
	})
	p.Delay(cfg.DMACompletionCheck)
}

// ReadWords fills dst with len(dst) consecutive 32-bit words starting
// at the word-aligned offset off, as one burst read transaction. The
// card satisfies a small aligned window from a single internal fetch,
// so the host pays one non-posted round trip plus one bus data phase
// per additional word (pci.Bus.PIOReadBurst) — the wide-read poll path.
// Arbitrary-length payload reads (Read) go through the non-prefetchable
// aperture and stay word-priced; this operation is only for fixed
// control windows such as a receiver's MESSAGE-flag region.
func (nic *NIC) ReadWords(p *sim.Proc, off int, dst []uint32) {
	if len(dst) == 0 {
		return
	}
	if off%4 != 0 {
		panic(fmt.Sprintf("scramnet: burst read at unaligned offset %#x", off))
	}
	nic.checkRange(off, 4*len(dst))
	nic.bus.PIOReadBurst(p, len(dst))
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(nic.mem[off+4*i:])
	}
}

// Read copies n bytes from the local bank into buf with PIO word reads.
func (nic *NIC) Read(p *sim.Proc, off int, buf []byte) {
	if len(buf) == 0 {
		return
	}
	nic.checkRange(off, len(buf))
	nic.bus.PIORead(p, pci.WordsFor(len(buf)))
	copy(buf, nic.mem[off:])
}

// ReadDMA copies n bytes from the local bank into buf using the DMA
// engine (no ring traffic either way).
func (nic *NIC) ReadDMA(p *sim.Proc, off int, buf []byte) {
	if len(buf) == 0 {
		return
	}
	nic.checkRange(off, len(buf))
	nic.bus.DMA(p, len(buf))
	copy(buf, nic.mem[off:])
}

// Peek returns bank bytes without charging bus time. It is for tests and
// invariant checks only, never for modeled software paths.
func (nic *NIC) Peek(off, n int) []byte {
	nic.checkRange(off, n)
	return append([]byte(nil), nic.mem[off:off+n]...)
}

// EnableInterrupts turns interrupt delivery on or off and installs the
// handler invoked (after Config.InterruptLatency) for each arriving
// packet that carries the interrupt bit. Enabling with a nil handler
// is equivalent to disabling: the card masks the interrupt rather than
// vectoring through a null pointer on the first interrupt-bit packet.
func (nic *NIC) EnableInterrupts(on bool, handler func(off int)) {
	nic.intrOn = on && handler != nil
	nic.intrHandler = handler
}
