package scramnet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestDualRingFailoverConvergence is a property test over random fault
// timings and write interleavings: on a dual ring, whatever moment a
// node is bypassed (and possibly repaired), the banks of every node
// that was never failed must be byte-identical once the ring quiesces.
// This is §2's failover claim — "a failed node is optically bypassed"
// and replication continues among the survivors.
func TestDualRingFailoverConvergence(t *testing.T) {
	prop := func(seed uint64) bool {
		return convergesAfterFailover(t, seed)
	}
	// A fixed generator keeps the sampled fault schedules reproducible;
	// bump MaxCount locally when hunting for counterexamples.
	cfg := &quick.Config{
		MaxCount: 20,
		Rand:     rand.New(rand.NewSource(20250805)),
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// convergesAfterFailover runs one randomized scenario derived entirely
// from seed: a victim node fails at a random instant (and is repaired
// at a later one in half the scenarios) while every other node streams
// word writes into its own region of the replicated memory.
func convergesAfterFailover(t *testing.T, seed uint64) bool {
	const (
		nodes   = 4
		region  = 1024 // bytes of bank each node writes, disjoint
		horizon = 300 * sim.Microsecond
	)
	rng := sim.NewRNG(seed)
	victim := rng.Intn(nodes)
	failAt := sim.Time(0).Add(rng.Duration(horizon))
	repair := rng.Intn(2) == 0
	repairAt := failAt.Add(rng.Duration(horizon) + 1)

	k, n := newNet(t, nodes)
	defer k.Close()
	k.At(failAt, func() { n.FailNode(victim) })
	if repair {
		k.At(repairAt, func() { n.RepairNode(victim) })
	}

	for w := 0; w < nodes; w++ {
		if w == victim {
			continue
		}
		w := w
		// Per-writer generator split off the scenario seed so schedules
		// are independent but fully determined.
		wrng := sim.NewRNG(seed ^ uint64(w+1)*0x9e3779b97f4a7c15)
		k.Spawn("writer", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				p.Delay(wrng.Duration(horizon / 40))
				off := w*region + 4*wrng.Intn(region/4)
				n.NIC(w).WriteWord(p, off, uint32(seed)^uint32(i)<<8|uint32(w))
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Logf("seed %d: run: %v", seed, err)
		return false
	}
	if !n.Quiescent() {
		t.Logf("seed %d: ring not quiescent after Run", seed)
		return false
	}

	// Every never-failed bank must agree over the whole written range;
	// the victim's bank may legitimately be stale.
	var ref []byte
	refNode := -1
	for i := 0; i < nodes; i++ {
		if i == victim {
			continue
		}
		bank := n.NIC(i).Peek(0, nodes*region)
		if ref == nil {
			ref, refNode = bank, i
			continue
		}
		if !bytes.Equal(bank, ref) {
			t.Logf("seed %d: survivor banks diverge (node %d vs node %d, victim %d, fail@%v repair=%v)",
				seed, i, refNode, victim, failAt, repair)
			return false
		}
	}
	return true
}
