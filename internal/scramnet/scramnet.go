// Package scramnet models the SCRAMNet (Shared Common RAM Network)
// replicated shared-memory ring described in §2 of the paper.
//
// Every node's NIC carries a full replica of the shared address space.
// When a host writes a word into its NIC, the NIC updates the local bank
// immediately and injects a packet that circulates the ring: each node it
// passes applies the write to its own bank and forwards it, and the
// originating node strips it after a full revolution. Consequences the
// BillBoard Protocol depends on, and which this model reproduces
// mechanically rather than by formula:
//
//   - writes by one node are applied at every other node in issue order
//     (per-sender FIFO), with bounded, predictable latency;
//   - writes by different nodes may be observed in different orders at
//     different nodes (the memory is NOT coherent);
//   - transmission is either fixed 4-byte packets (max 6.5 MB/s) or
//     variable-length packets of 4 B–1 KB (max 16.7 MB/s, higher
//     latency), per §2;
//   - neighbor-to-neighbor latency is 250–800 ns depending on the
//     transmission mode and cabling.
//
// Host access goes through a pci.Bus: posted PIO writes, expensive PIO
// reads, or DMA for bulk transfers. A transmit FIFO of bounded depth sits
// between the host and the ring; when the host outruns the wire the FIFO
// fills and further writes stall, which is what limits long-message
// bandwidth to the ring rate.
package scramnet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/pci"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/trace"
)

// Mode selects the ring transmission mode (§2 of the paper).
type Mode int

const (
	// FixedPackets transmits fixed 4-byte packets: lowest latency,
	// 6.5 MB/s maximum throughput.
	FixedPackets Mode = iota
	// VariablePackets transmits 4 B–1 KB packets: 16.7 MB/s maximum
	// throughput but higher per-packet latency.
	VariablePackets
)

func (m Mode) String() string {
	if m == FixedPackets {
		return "fixed-4B"
	}
	return "variable"
}

// MaxNodes is the architectural ring size limit (§2: "a ring of up to
// 256 nodes").
const MaxNodes = 256

// MaxVarPayload is the largest variable-mode packet payload.
const MaxVarPayload = 1024

// Config describes a SCRAMNet ring.
type Config struct {
	// Nodes is the ring size (2..MaxNodes).
	Nodes int
	// MemBytes is the size of the replicated memory bank (word multiple).
	MemBytes int
	// Mode selects fixed or variable packets.
	Mode Mode
	// HopDelay is the node-to-node propagation plus node transit delay.
	// The paper gives 250–800 ns depending on mode and media.
	HopDelay sim.Duration
	// FixedPacketWire is the serialization time of one fixed 4-byte
	// packet (4 B / 6.5 MB/s ≈ 615 ns).
	FixedPacketWire sim.Duration
	// VarHeaderWire and VarPerByteWire give variable-packet
	// serialization: header + payload·perByte (1 B / 16.7 MB/s ≈ 60 ns).
	VarHeaderWire  sim.Duration
	VarPerByteWire sim.Duration
	// TxFIFOBytes is the transmit FIFO depth between host and ring.
	TxFIFOBytes int
	// Bus gives host I/O bus timings.
	Bus pci.Config
	// InterruptLatency is the cost from packet arrival to the host
	// handler running (interrupt + kernel dispatch + context switch).
	InterruptLatency sim.Duration
	// DualRing enables the redundant second ring: a bypassed (failed)
	// node is skipped optically and replication continues.
	DualRing bool
	// SingleWriterCheck, when set, panics if two different nodes ever
	// write the same word — the BillBoard Protocol's core discipline.
	SingleWriterCheck bool
	// DropRate injects hardware faults: the probability (0..1) that an
	// injected packet is corrupted in flight and discarded by the CRC
	// check at its first hop. SCRAMNet hardware detects but does not
	// retransmit; the BillBoard Protocol inherits that assumption, so
	// under injected faults receives time out (tested) rather than
	// deliver corrupt data. Deterministic via Seed.
	DropRate float64
	// Seed drives the fault-injection generator.
	Seed uint64
	// HandlerCycleCost is the virtual-time cost of one in-network
	// handler cycle (internal/spin) at a ring transit point. Zero
	// selects DefaultHandlerCycleCost. Handler cost is charged only on
	// packets overlapping an installed handler range, so an un-handled
	// ring reproduces the calibrated figures exactly.
	HandlerCycleCost sim.Duration
	// HandlerBudget caps the handler cycles one packet may consume at
	// one transit; on overrun the packet traps to the host — handler
	// mutations roll back and the packet proceeds as if unhandled.
	// Zero selects DefaultHandlerBudget.
	HandlerBudget int64
}

// Default in-network handler cost parameters: a ~200 MHz handler core
// (5 ns/cycle, the sPIN ballpark) and a budget generous enough for a
// full 1 KB variable packet's worth of lane combines, small enough
// that a runaway handler stalls one transit by at most ~1.3 µs.
const (
	DefaultHandlerCycleCost = 5 * sim.Nanosecond
	DefaultHandlerBudget    = 260
)

// DefaultConfig returns a ring matching the paper's testbed: 4 nodes,
// fixed 4-byte packets, fiber hop delay, 2 MB banks, PCI host interface.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:            nodes,
		MemBytes:         2 << 20,
		Mode:             FixedPackets,
		HopDelay:         250 * sim.Nanosecond,
		FixedPacketWire:  615 * sim.Nanosecond,
		VarHeaderWire:    240 * sim.Nanosecond,
		VarPerByteWire:   60 * sim.Nanosecond,
		TxFIFOBytes:      1024,
		Bus:              pci.DefaultConfig(),
		InterruptLatency: 9 * sim.Microsecond,
		DualRing:         true,
	}
}

func (c *Config) validate() error {
	if c.Nodes < 2 || c.Nodes > MaxNodes {
		return fmt.Errorf("scramnet: %d nodes outside 2..%d", c.Nodes, MaxNodes)
	}
	if c.MemBytes <= 0 || c.MemBytes%4 != 0 {
		return fmt.Errorf("scramnet: memory size %d not a positive word multiple", c.MemBytes)
	}
	if c.TxFIFOBytes < 4 {
		return fmt.Errorf("scramnet: TX FIFO %d too small", c.TxFIFOBytes)
	}
	// The comparison is written to also reject NaN, which satisfies
	// neither bound.
	if !(c.DropRate >= 0 && c.DropRate <= 1) {
		return fmt.Errorf("scramnet: DropRate %v outside [0,1]", c.DropRate)
	}
	if c.HandlerCycleCost < 0 {
		return fmt.Errorf("scramnet: negative HandlerCycleCost %v", c.HandlerCycleCost)
	}
	if c.HandlerBudget < 0 {
		return fmt.Errorf("scramnet: negative HandlerBudget %d", c.HandlerBudget)
	}
	return nil
}

// packet is one ring transfer unit. hops counts link traversals so a
// packet whose origin has been bypassed (and therefore can never strip
// it) still ages out after one full revolution.
type packet struct {
	origin    int
	off       int
	data      []byte
	interrupt bool
	hops      int
	// rewritten marks a payload mutated by an in-network handler
	// (spin.Rewrite): the origin applies it at strip time, so one
	// revolution delivers the fully combined value back to the
	// initiator's bank.
	rewritten bool
	// nicOrigin marks a card-originated injection (handlerInject): it
	// never occupied the host transmit FIFO, so the FIFO accounting
	// must not be credited when it serializes.
	nicOrigin bool
	// Trace attribution (zero when tracing is off or the write is not
	// message-attributed): msg is the BBP message id stamped from the
	// injecting NIC's context, parent the causal parent span, span the
	// packet's own inject→strip span.
	msg    uint64
	parent trace.SpanID
	span   trace.SpanID
}

// ownerTable tracks, per word offset, which host first wrote it
// (SingleWriterCheck). A hierarchy shares one table across its rings so
// the discipline is enforced globally.
type ownerTable struct {
	enabled bool
	m       map[int]int
}

// assign transfers ownership of the words covering [off, off+size) to
// writer, overwriting any previous owner. The BillBoard layer uses it
// when a process lends part of its data partition to a peer (a posted
// rendezvous window): the discipline stays one-writer-per-word at any
// instant, but the writer changes hands at well-defined protocol points.
func (t *ownerTable) assign(writer, off, size int) {
	if !t.enabled {
		return
	}
	for w := off / 4; w <= (off+size-1)/4; w++ {
		t.m[w] = writer
	}
}

func (t *ownerTable) check(writer, off, size int) {
	if !t.enabled {
		return
	}
	for w := off / 4; w <= (off+size-1)/4; w++ {
		if prev, ok := t.m[w]; ok {
			if prev != writer {
				panic(fmt.Sprintf("scramnet: single-writer violation: word %#x written by node %d then node %d", w*4, prev, writer))
			}
		} else {
			t.m[w] = writer
		}
	}
}

// Network is a SCRAMNet ring.
type Network struct {
	k      *sim.Kernel
	cfg    Config
	nics   []*NIC
	owner  *ownerTable
	tracer *trace.Recorder
	faults *sim.RNG
	im     netInstruments

	// cut[i] marks ring segment i — the fiber pair between node i and
	// node (i+1)%Nodes — as severed; cuts is the count of severed
	// segments (the ring status register, see CutSegments).
	cut  []bool
	cuts int
}

// netInstruments are the ring-wide metrics (nil = disabled no-ops).
type netInstruments struct {
	hops        *metrics.Counter // ring.hops: link traversals, incl. bypass
	bypassHops  *metrics.Counter // ring.bypass_hops: traversals through optical bypass
	wrapHops    *metrics.Counter // ring.wrap_hops: extra secondary-ring transits crossing a severed segment
	nodeFails   *metrics.Counter // ring.node_fails
	nodeRepairs *metrics.Counter // ring.node_repairs
	linkCuts    *metrics.Counter // ring.link_cuts
	linkSplices *metrics.Counter // ring.link_splices
}

// SetTracer installs an event recorder on the ring and every NIC's host
// bus (nil disables tracing).
func (n *Network) SetTracer(r *trace.Recorder) {
	n.tracer = r
	for _, nic := range n.nics {
		nic.bus.SetTracer(r, nic.ownerID)
	}
}

// SetMetrics installs metrics instruments on the ring, its NICs and
// their host buses (nil disables). Metrics never charge virtual time,
// so enabling them cannot perturb a measurement.
func (n *Network) SetMetrics(m *metrics.Registry) {
	if m == nil {
		n.im = netInstruments{}
		for _, nic := range n.nics {
			nic.im = nicInstruments{}
			nic.bus.SetMetrics(nil, 0)
			nic.mreg = nil
			if nic.handlers != nil {
				nic.handlers.SetMetrics(nil)
			}
		}
		return
	}
	n.im = netInstruments{
		hops:        m.Counter("ring.hops", metrics.NodeGlobal),
		bypassHops:  m.Counter("ring.bypass_hops", metrics.NodeGlobal),
		wrapHops:    m.Counter("ring.wrap_hops", metrics.NodeGlobal),
		nodeFails:   m.Counter("ring.node_fails", metrics.NodeGlobal),
		nodeRepairs: m.Counter("ring.node_repairs", metrics.NodeGlobal),
		linkCuts:    m.Counter("ring.link_cuts", metrics.NodeGlobal),
		linkSplices: m.Counter("ring.link_splices", metrics.NodeGlobal),
	}
	for _, nic := range n.nics {
		nic.setMetrics(m)
	}
}

// New builds a ring of cfg.Nodes NICs on kernel k.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.HandlerCycleCost == 0 {
		cfg.HandlerCycleCost = DefaultHandlerCycleCost
	}
	if cfg.HandlerBudget == 0 {
		cfg.HandlerBudget = DefaultHandlerBudget
	}
	n := &Network{
		k:      k,
		cfg:    cfg,
		owner:  &ownerTable{enabled: cfg.SingleWriterCheck, m: map[int]int{}},
		faults: sim.NewRNG(cfg.Seed + 1),
		cut:    make([]bool, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		nic := &NIC{
			net:     n,
			id:      i,
			ownerID: i,
			mem:     make([]byte, cfg.MemBytes),
			bus:     pci.New(k, cfg.Bus),
			link:    sim.NewServer(k),
			txDrain: sim.NewCond(k),
			intrOn:  false,
		}
		n.nics = append(n.nics, nic)
	}
	return n, nil
}

// Kernel returns the simulation kernel the ring runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// Config returns the ring configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the ring size.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// NIC returns node i's interface card.
func (n *Network) NIC(i int) *NIC { return n.nics[i] }

// BrokenRingError reports that a packet leaving node From found no
// route to another live station: a severed segment on a single ring, a
// dead node breaking a single ring, or (with DualRing) every node
// bypassed. The forwarding path drops the packet and closes its span
// with "ring-broken"; probes can call Route to ask the same question
// without traffic.
type BrokenRingError struct {
	From int  // node the packet could not progress past
	Cut  bool // a severed segment (vs. a dead node / fully bypassed ring)
}

func (e *BrokenRingError) Error() string {
	if e.Cut {
		return fmt.Sprintf("scramnet: ring broken at node %d: severed segment with no secondary path", e.From)
	}
	return fmt.Sprintf("scramnet: ring broken at node %d: no live station reachable", e.From)
}

// route computes the next station for a packet leaving node from: the
// next non-bypassed node on the primary ring, crossing severed segments
// via the counter-rotating secondary ring when DualRing permits. The
// wrap is FDDI-style: the node upstream of a cut turns traffic back
// onto the secondary, which carries it (applying nothing) until the
// node just downstream of the nearest severed segment — found counter-
// rotating — wraps it onto the primary again. With a single cut that
// re-entry node is the cut's own far side, a full counter-revolution
// away; with two cuts it is the start of the sender's arc, so each arc
// closes into its own sub-ring and intra-arc delivery is preserved.
//
// hops counts logical primary advances (these age the packet exactly as
// on an intact ring), wrap the extra secondary transits a wrap adds
// (latency only), byp the optical-bypass transits through failed nodes.
// err is a *BrokenRingError when no station past from is reachable —
// including the previously unbounded case of every node bypassed on a
// DualRing, which used to spin forever in the routing walk.
func (n *Network) route(from int) (next, hops, wrap, byp int, err error) {
	nn := n.cfg.Nodes
	cur := from
	for hops < nn {
		if n.cut[cur] {
			if !n.cfg.DualRing {
				return 0, 0, 0, 0, &BrokenRingError{From: cur, Cut: true}
			}
			w := cur
			dist := 0
			for dist < nn {
				prev := (w - 1 + nn) % nn
				if n.cut[prev] {
					break // prev→w is severed: w wraps secondary → primary
				}
				w = prev
				dist++
			}
			hops++
			if dist > 0 {
				wrap += dist - 1
			}
			cur = w
			if dist == 0 {
				// Both segments adjacent to cur are severed: a single-
				// node arc wraps straight back to the station itself.
				return cur, hops, wrap, byp, nil
			}
		} else {
			hops++
			cur = (cur + 1) % nn
		}
		if !n.nics[cur].failed {
			return cur, hops, wrap, byp, nil
		}
		if !n.cfg.DualRing {
			return 0, 0, 0, 0, &BrokenRingError{From: cur}
		}
		byp++
	}
	// A full revolution of advances found no live station: every node
	// is bypassed and the packet has nowhere to land.
	return 0, 0, 0, 0, &BrokenRingError{From: from}
}

// Route exposes the forwarding decision for probes and tests: the next
// station a packet leaving node from would reach, or a
// *BrokenRingError when the topology leaves it none.
func (n *Network) Route(from int) (next int, err error) {
	next, _, _, _, err = n.route(from)
	return next, err
}

// wireTime returns the serialization time of pkt on one link.
func (n *Network) wireTime(pkt *packet) sim.Duration {
	if n.cfg.Mode == FixedPackets {
		return n.cfg.FixedPacketWire
	}
	return n.cfg.VarHeaderWire + sim.Duration(len(pkt.data))*n.cfg.VarPerByteWire
}

// maxPayload returns the packet payload limit for the current mode.
func (n *Network) maxPayload() int {
	if n.cfg.Mode == FixedPackets {
		return 4
	}
	return MaxVarPayload
}

// checkOwner enforces the single-writer discipline when enabled.
func (n *Network) checkOwner(node, off, size int) {
	n.owner.check(node, off, size)
}

// assignOwner hands the words in [off, off+size) to node (see
// ownerTable.assign).
func (n *Network) assignOwner(node, off, size int) {
	n.owner.assign(node, off, size)
}

// MemBytes returns the replicated bank size.
func (n *Network) MemBytes() int { return n.cfg.MemBytes }

// inject starts pkt from its origin: serialize on the origin's outgoing
// link, then hop to the first downstream node.
func (n *Network) inject(pkt *packet) {
	src := n.nics[pkt.origin]
	src.stats.PacketsSent++
	src.stats.BytesSent += int64(len(pkt.data))
	src.im.injected.Inc()
	src.im.bytesInjected.Add(int64(len(pkt.data)))
	// "inject" opens the packet's ring span; it closes at strip, CRC
	// drop, or ring break ("pkt-end"), so the causal tree shows exactly
	// how far each replication packet got.
	pkt.span = n.tracer.BeginSpan(n.k.Now(), trace.Ring, pkt.origin, "inject", pkt.msg, pkt.parent, "off=%#x len=%d", pkt.off, len(pkt.data))
	wire := n.wireTime(pkt)
	src.link.Serve(wire, func() {
		if !pkt.nicOrigin {
			src.txBacklog -= len(pkt.data)
			src.txDrain.Broadcast()
		}
		if src.failed {
			// The origin was optically bypassed: its transmitter drives
			// the bypass loop, not the ring, so the packet reaches no
			// other node. The local bank already holds the write; only
			// replication is lost.
			src.stats.PacketsLost++
			n.tracer.EndSpan(n.k.Now(), trace.Ring, pkt.origin, "pkt-end", pkt.span, pkt.msg, "bypassed")
			return
		}
		if n.cfg.DropRate > 0 && n.faults.Float64() < n.cfg.DropRate {
			// Corrupted in flight: the next hop's CRC check discards it.
			src.stats.PacketsLost++
			src.im.crcDrops.Inc()
			n.tracer.EndSpan(n.k.Now(), trace.Ring, pkt.origin, "pkt-end", pkt.span, pkt.msg, "crc-drop")
			return
		}
		n.forward(pkt.origin, pkt)
	})
}

// forward moves pkt from node `from` to the next live node, applying the
// write there and continuing until the packet returns to its origin.
func (n *Network) forward(from int, pkt *packet) {
	next, hops, wrap, byp, err := n.route(from)
	if err != nil {
		n.nics[pkt.origin].stats.PacketsLost++
		n.nics[pkt.origin].im.crcDrops.Inc()
		n.tracer.EndSpan(n.k.Now(), trace.Ring, pkt.origin, "pkt-end", pkt.span, pkt.msg, "ring-broken")
		return // broken ring: packet lost downstream
	}
	pkt.hops += hops
	n.im.hops.Add(int64(hops))
	if byp > 0 {
		n.im.bypassHops.Add(int64(byp))
	}
	if wrap > 0 {
		n.im.wrapHops.Add(int64(wrap))
	}
	aged := pkt.hops >= n.cfg.Nodes
	// A single-node arc wraps the packet straight back to the station
	// it just left; unless that station is the origin (normal strip),
	// the origin sits across a cut and can never strip it — drop it.
	isolated := next == from && next != pkt.origin
	n.k.AfterKind(sim.Duration(hops+wrap)*n.cfg.HopDelay, "ring", func() {
		if isolated {
			n.nics[pkt.origin].stats.PacketsLost++
			n.nics[pkt.origin].im.crcDrops.Inc()
			n.tracer.EndSpan(n.k.Now(), trace.Ring, pkt.origin, "pkt-end", pkt.span, pkt.msg, "isolated node=%d", next)
			return
		}
		if next == pkt.origin || aged {
			// Stripped by the source after a full revolution — or aged
			// out after as many hops, which is what removes a packet
			// whose origin was optically bypassed while it circulated.
			// A handler-rewritten packet is applied to the origin's own
			// bank first: the strip is how the initiator of a streaming
			// reduction observes the fully combined value.
			if pkt.rewritten && next == pkt.origin {
				n.nics[next].stripApply(pkt)
			}
			n.tracer.EndSpan(n.k.Now(), trace.Ring, pkt.origin, "pkt-end", pkt.span, pkt.msg, "strip hops=%d", pkt.hops)
			return
		}
		nic := n.nics[next]
		// In-network handlers run before the local apply and the
		// forward decision; their cycle cost occupies the transit point
		// for real virtual time before the packet progresses.
		verdict, cost, hspan, ran := nic.transit(pkt)
		proceed := func() {
			if ran {
				n.tracer.EndSpan(n.k.Now(), trace.Spin, nic.id, "handler-end", hspan, pkt.msg, "verdict=%s", verdict)
			}
			if verdict != spin.Steer {
				nic.apply(pkt)
			}
			if verdict == spin.Consume {
				n.tracer.EndSpan(n.k.Now(), trace.Ring, pkt.origin, "pkt-end", pkt.span, pkt.msg, "consumed node=%d hops=%d", nic.id, pkt.hops)
				return
			}
			// Transit: the packet occupies this node's outgoing link too.
			nic.link.Serve(n.wireTime(pkt), func() {
				n.forward(next, pkt)
			})
		}
		if cost > 0 {
			n.k.AfterKind(cost, "ring", proceed)
		} else {
			proceed()
		}
	})
}

// SetSingleWriterCheck toggles the single-writer assertion at run time;
// the BillBoard Protocol layer turns it on to validate its discipline.
func (n *Network) SetSingleWriterCheck(on bool) {
	n.cfg.SingleWriterCheck = on
	n.owner.enabled = on
}

// FailNode marks node i failed. With DualRing the node is optically
// bypassed and the rest of the ring keeps replicating; with a single
// ring, packets are lost when they reach the break.
func (n *Network) FailNode(i int) {
	n.nics[i].failed = true
	n.im.nodeFails.Inc()
}

// RepairNode returns a failed node to service. Its bank may be stale
// until peers rewrite their words.
func (n *Network) RepairNode(i int) {
	n.nics[i].failed = false
	n.im.nodeRepairs.Inc()
}

// NodeFailed reports whether node i is currently bypassed.
func (n *Network) NodeFailed(i int) bool { return n.nics[i].failed }

// CutLink severs ring segment i — the fiber pair between node i and
// node (i+1)%Nodes, taking out both the primary and the co-routed
// secondary direction, as one cable cut does. With DualRing a single
// cut heals transparently: traffic wraps onto the secondary ring at the
// two nodes adjacent to the cut (counted in ring.wrap_hops) with
// byte-identical delivery and bounded added latency; a second cut
// segments the ring into two isolated arcs. Cutting a segment that is
// already severed is a no-op.
func (n *Network) CutLink(i int) {
	if n.cut[i] {
		return
	}
	n.cut[i] = true
	n.cuts++
	n.im.linkCuts.Inc()
}

// SpliceLink repairs segment i, undoing CutLink. Splicing an intact
// segment is a no-op.
func (n *Network) SpliceLink(i int) {
	if !n.cut[i] {
		return
	}
	n.cut[i] = false
	n.cuts--
	n.im.linkSplices.Inc()
}

// LinkCut reports whether segment i is currently severed.
func (n *Network) LinkCut(i int) bool { return n.cut[i] }

// CutSegments returns the number of currently severed segments — the
// ring status register every card can read. Each arc of a partitioned
// ring borders both cuts, so the count is arc-local knowledge: failure
// detectors use it as hardware corroboration when deciding whether an
// unresponsive arc of peers is dead or merely unreachable.
func (n *Network) CutSegments() int { return n.cuts }

// SetDropRate adjusts the in-flight corruption probability at run time.
// Fault-injection scripts use it to open and close transient loss
// windows; the generator stream (Config.Seed) is unaffected. Rates
// outside [0,1] are clamped — a drop probability can be nothing else,
// and a scripted sweep that overshoots must saturate, not corrupt the
// comparison against the RNG (NaN clamps to 0).
func (n *Network) SetDropRate(r float64) {
	if !(r >= 0) {
		r = 0
	} else if r > 1 {
		r = 1
	}
	n.cfg.DropRate = r
}

// Quiescent reports whether no packets are in flight anywhere (all link
// servers idle). Useful for replication tests.
func (n *Network) Quiescent() bool {
	now := n.k.Now()
	for _, nic := range n.nics {
		if nic.link.BusyUntil() > now {
			return false
		}
	}
	return true
}

// Stats aggregates per-NIC counters.
type Stats struct {
	PacketsSent     int64
	PacketsApplied  int64
	PacketsLost     int64
	BytesSent       int64
	InterruptsTaken int64
	// PacketsCombined counts ring packets this card's in-network
	// handlers rewrote in place at its transit point — the NIC-side
	// gather/combine work of a spin.Reducer round (DESIGN.md §15). It
	// is the per-hop evidence that a collective's state accumulated in
	// the card, not in a rank-side poll tree.
	PacketsCombined int64
}
