package scramnet

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Hierarchy is a two-level ring-of-rings, the paper's §2 answer to the
// 256-node ring limit: leaf rings carry the hosts, a backbone ring
// carries one bridge per leaf, and every write is forwarded so that all
// banks in all rings replicate the full address space.
//
// Topology is a tree, so forwarding cannot loop: a bridge re-injects a
// packet into the adjacent ring as a fresh packet originated by its own
// node there, and a ring strips packets at their origin.
//
// Hierarchy implements the same surface the BillBoard Protocol needs
// from a single Network (core.RingNetwork), with hosts numbered
// globally across leaves in leaf order.
type Hierarchy struct {
	k        *sim.Kernel
	backbone *Network
	leaves   []*Network
	// hostRing/hostLocal map a global host id to its leaf and the node
	// number inside it (bridge slots are not hosts).
	hostRing  []int
	hostLocal []int
	owner     *ownerTable
	memBytes  int
}

// HierarchyConfig describes a two-level hierarchy.
type HierarchyConfig struct {
	// LeafHosts gives the number of hosts on each leaf ring (each leaf
	// additionally carries one bridge node).
	LeafHosts []int
	// Ring is the per-ring hardware configuration; its Nodes field is
	// ignored (derived per ring).
	Ring Config
	// BridgeDelay is the store-and-forward latency through a bridge,
	// on top of both rings' normal serialization.
	BridgeDelay sim.Duration
}

// DefaultHierarchyConfig returns two leaf rings of `hostsPerLeaf` hosts
// bridged by a backbone.
func DefaultHierarchyConfig(leaves, hostsPerLeaf int) HierarchyConfig {
	sizes := make([]int, leaves)
	for i := range sizes {
		sizes[i] = hostsPerLeaf
	}
	return HierarchyConfig{
		LeafHosts:   sizes,
		Ring:        DefaultConfig(2), // Nodes overridden per ring
		BridgeDelay: 400 * sim.Nanosecond,
	}
}

// NewHierarchy builds the hierarchy on kernel k.
func NewHierarchy(k *sim.Kernel, cfg HierarchyConfig) (*Hierarchy, error) {
	if len(cfg.LeafHosts) < 2 {
		return nil, fmt.Errorf("scramnet: hierarchy needs at least 2 leaf rings, got %d", len(cfg.LeafHosts))
	}
	h := &Hierarchy{
		k:        k,
		owner:    &ownerTable{enabled: cfg.Ring.SingleWriterCheck, m: map[int]int{}},
		memBytes: cfg.Ring.MemBytes,
	}
	// Backbone: one node per leaf (its bridge).
	bbCfg := cfg.Ring
	bbCfg.Nodes = len(cfg.LeafHosts)
	bb, err := New(k, bbCfg)
	if err != nil {
		return nil, fmt.Errorf("scramnet: backbone: %w", err)
	}
	bb.owner = h.owner
	h.backbone = bb

	global := 0
	for li, hosts := range cfg.LeafHosts {
		if hosts < 1 {
			return nil, fmt.Errorf("scramnet: leaf %d has %d hosts", li, hosts)
		}
		lcfg := cfg.Ring
		lcfg.Nodes = hosts + 1 // + bridge slot, the last node
		leaf, err := New(k, lcfg)
		if err != nil {
			return nil, fmt.Errorf("scramnet: leaf %d: %w", li, err)
		}
		leaf.owner = h.owner
		h.leaves = append(h.leaves, leaf)
		for n := 0; n < hosts; n++ {
			h.hostRing = append(h.hostRing, li)
			h.hostLocal = append(h.hostLocal, n)
			leaf.NIC(n).ownerID = global
			global++
		}
		// The bridge node never host-writes; give it an id outside the
		// host range so the shared owner table stays unambiguous.
		leaf.NIC(hosts).ownerID = -(li + 1)
		h.wireBridge(li, hosts, cfg.BridgeDelay)
	}
	return h, nil
}

// wireBridge connects leaf li's bridge slot (its last node) to backbone
// node li, forwarding applied writes in both directions.
func (h *Hierarchy) wireBridge(li, bridgeLocal int, delay sim.Duration) {
	leafNIC := h.leaves[li].NIC(bridgeLocal)
	bbNIC := h.backbone.NIC(li)
	// Leaf traffic (originated by leaf hosts) reaches the bridge slot
	// and crosses onto the backbone.
	leafNIC.onApply = func(pkt *packet) {
		data := append([]byte(nil), pkt.data...)
		off, intr := pkt.off, pkt.interrupt
		msg, parent := pkt.msg, pkt.span
		h.k.AfterKind(delay, "ring", func() { bbNIC.injectForwarded(off, data, intr, msg, parent) })
	}
	// Backbone traffic (other leaves' forwarded writes) crosses down
	// into this leaf.
	bbNIC.onApply = func(pkt *packet) {
		data := append([]byte(nil), pkt.data...)
		off, intr := pkt.off, pkt.interrupt
		msg, parent := pkt.msg, pkt.span
		h.k.AfterKind(delay, "ring", func() { leafNIC.injectForwarded(off, data, intr, msg, parent) })
	}
}

// Kernel returns the simulation kernel.
func (h *Hierarchy) Kernel() *sim.Kernel { return h.k }

// Nodes returns the global host count (bridges excluded).
func (h *Hierarchy) Nodes() int { return len(h.hostRing) }

// MemBytes returns the replicated bank size.
func (h *Hierarchy) MemBytes() int { return h.memBytes }

// NIC returns global host i's interface card.
func (h *Hierarchy) NIC(i int) *NIC {
	return h.leaves[h.hostRing[i]].NIC(h.hostLocal[i])
}

// Leaf returns leaf ring li (for tests and instrumentation).
func (h *Hierarchy) Leaf(li int) *Network { return h.leaves[li] }

// Backbone returns the backbone ring.
func (h *Hierarchy) Backbone() *Network { return h.backbone }

// SetMetrics installs metrics on every ring of the hierarchy (nil
// disables). NICs are keyed by their global host number; bridge slots
// report under the bridge NIC's ownerID.
func (h *Hierarchy) SetMetrics(m *metrics.Registry) {
	h.backbone.SetMetrics(m)
	for _, leaf := range h.leaves {
		leaf.SetMetrics(m)
	}
}

// SetTracer installs a trace recorder on every ring of the hierarchy
// (nil disables). Packet spans carry their message attribution across
// bridges, so a causal tree can follow a write leaf→backbone→leaf.
func (h *Hierarchy) SetTracer(r *trace.Recorder) {
	h.backbone.SetTracer(r)
	for _, leaf := range h.leaves {
		leaf.SetTracer(r)
	}
}

// SetSingleWriterCheck toggles the global single-writer assertion.
func (h *Hierarchy) SetSingleWriterCheck(on bool) { h.owner.enabled = on }

// Quiescent reports whether no packets are in flight on any ring.
func (h *Hierarchy) Quiescent() bool {
	if !h.backbone.Quiescent() {
		return false
	}
	for _, l := range h.leaves {
		if !l.Quiescent() {
			return false
		}
	}
	return true
}
