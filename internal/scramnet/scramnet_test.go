package scramnet

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newNet(t *testing.T, nodes int, mutate ...func(*Config)) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig(nodes)
	for _, m := range mutate {
		m(&cfg)
	}
	n, err := New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, n
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	bad := []Config{
		{Nodes: 1, MemBytes: 4096, TxFIFOBytes: 64},
		{Nodes: 300, MemBytes: 4096, TxFIFOBytes: 64},
		{Nodes: 4, MemBytes: 0, TxFIFOBytes: 64},
		{Nodes: 4, MemBytes: 4095, TxFIFOBytes: 64},
		{Nodes: 4, MemBytes: 4096, TxFIFOBytes: 0},
	}
	for i, cfg := range bad {
		if _, err := New(k, cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}

func TestWordReplication(t *testing.T) {
	k, n := newNet(t, 4)
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 128, 0xdeadbeef)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := n.NIC(i).Peek(128, 4); !bytes.Equal(got, []byte{0xef, 0xbe, 0xad, 0xde}) {
			t.Errorf("node %d bank = %x", i, got)
		}
	}
	if !n.Quiescent() {
		t.Error("network not quiescent after Run")
	}
}

func TestBlockReplicationAllBanksIdentical(t *testing.T) {
	k, n := newNet(t, 5)
	data := make([]byte, 3000)
	rng := sim.NewRNG(7)
	rng.Bytes(data)
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(2).Write(p, 4096, data)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := n.NIC(i).Peek(4096, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("node %d bank differs from written data", i)
		}
	}
}

func TestPerSenderFIFOOrder(t *testing.T) {
	// Writes by one node must be applied at every other node in issue
	// order. Observed via arrival interrupts at the farthest node.
	k, n := newNet(t, 4)
	var arrived []int
	n.NIC(3).EnableInterrupts(true, func(off int) { arrived = append(arrived, off) })
	k.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			n.NIC(0).WriteWordInterrupt(p, i*4, uint32(i))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrived) != 32 {
		t.Fatalf("got %d arrivals, want 32", len(arrived))
	}
	for i, off := range arrived {
		if off != i*4 {
			t.Fatalf("arrival %d at offset %d: per-sender FIFO violated", i, off)
		}
	}
}

func TestNonCoherence(t *testing.T) {
	// Two nodes writing the same word at the same instant: nodes between
	// them on the ring observe the writes in different orders, so banks
	// legitimately diverge. This documents the paper's §2 caveat.
	k, n := newNet(t, 4, func(c *Config) { c.SingleWriterCheck = false })
	k.Spawn("w0", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 0xAAAAAAAA) })
	k.Spawn("w2", func(p *sim.Proc) { n.NIC(2).WriteWord(p, 0, 0xBBBBBBBB) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	v1 := n.NIC(1).Peek(0, 4)
	v3 := n.NIC(3).Peek(0, 4)
	if bytes.Equal(v1, v3) {
		t.Fatalf("nodes 1 and 3 agree (%x); expected divergent final values for concurrent writers", v1)
	}
}

func TestSingleWriterCheckPanics(t *testing.T) {
	k, n := newNet(t, 3, func(c *Config) { c.SingleWriterCheck = true })
	panicked := false
	k.Spawn("w0", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 1) })
	k.Spawn("w1", func(p *sim.Proc) {
		p.Delay(100 * sim.Microsecond)
		func() {
			defer func() { panicked = recover() != nil }()
			n.NIC(1).WriteWord(p, 0, 2)
		}()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Error("expected single-writer panic")
	}
}

func TestBoundedVisibilityLatency(t *testing.T) {
	// A single uncontended word write must be visible at the farthest
	// node within hops*(hop+wire) plus the PIO cost — the bounded,
	// predictable latency claim of §2.
	k, n := newNet(t, 8)
	cfg := n.Config()
	var visible sim.Time
	n.NIC(7).EnableInterrupts(true, func(off int) { visible = k.Now() - sim.Time(cfg.InterruptLatency) })
	k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWordInterrupt(p, 0, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	bound := sim.Time(cfg.Bus.PIOWriteWord) +
		sim.Time(7)*sim.Time(cfg.HopDelay+cfg.FixedPacketWire)
	if visible == 0 || visible > bound {
		t.Fatalf("visible at %d, bound %d", visible, bound)
	}
}

func TestFixedModeThroughput(t *testing.T) {
	// A long PIO stream is throttled by the TX FIFO to the fixed-mode
	// ring rate: 4 bytes per 615 ns ≈ 6.5 MB/s.
	k, n := newNet(t, 4)
	const size = 1 << 16
	var elapsed sim.Duration
	k.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		n.NIC(0).Write(p, 0, make([]byte, size))
		elapsed = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	mbps := float64(size) / (float64(elapsed) / 1e9) / 1e6
	if mbps < 5.5 || mbps > 6.8 {
		t.Fatalf("fixed-mode throughput %.2f MB/s, want ≈6.5", mbps)
	}
}

func TestVariableModeThroughputHigher(t *testing.T) {
	measure := func(mode Mode) float64 {
		k, n := newNet(t, 4, func(c *Config) { c.Mode = mode })
		const size = 1 << 16
		var elapsed sim.Duration
		k.Spawn("writer", func(p *sim.Proc) {
			start := p.Now()
			n.NIC(0).WriteDMA(p, 0, make([]byte, size))
			elapsed = p.Now().Sub(start)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(size) / (float64(elapsed) / 1e9) / 1e6
	}
	fixed, variable := measure(FixedPackets), measure(VariablePackets)
	if variable <= fixed {
		t.Fatalf("variable mode %.1f MB/s not faster than fixed %.1f MB/s", variable, fixed)
	}
	if variable < 14 || variable > 17.5 {
		t.Fatalf("variable-mode throughput %.2f MB/s, want ≈16.7", variable)
	}
}

func TestDualRingBypassKeepsReplicating(t *testing.T) {
	k, n := newNet(t, 4)
	n.FailNode(1)
	k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 42) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 3} {
		if n.NIC(i).Peek(0, 4)[0] != 42 {
			t.Errorf("node %d missed write despite dual-ring bypass", i)
		}
	}
	if n.NIC(1).Peek(0, 4)[0] == 42 {
		t.Error("bypassed node should not have applied the write")
	}
}

func TestSingleRingBreakLosesDownstream(t *testing.T) {
	k, n := newNet(t, 4, func(c *Config) { c.DualRing = false })
	n.FailNode(1)
	k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 42) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 3} {
		if n.NIC(i).Peek(0, 4)[0] == 42 {
			t.Errorf("node %d received write across a broken single ring", i)
		}
	}
	if n.NIC(0).Stats().PacketsLost == 0 {
		t.Error("expected a lost-packet count on the origin")
	}
}

func TestRepairNodeResumesReplication(t *testing.T) {
	k, n := newNet(t, 4)
	n.FailNode(2)
	k.Spawn("writer", func(p *sim.Proc) {
		n.NIC(0).WriteWord(p, 0, 1)
		p.Delay(100 * sim.Microsecond)
		n.RepairNode(2)
		n.NIC(0).WriteWord(p, 4, 2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.NIC(2).Peek(0, 4)[0] == 1 {
		t.Error("node 2 should have missed the first write")
	}
	if n.NIC(2).Peek(4, 4)[0] != 2 {
		t.Error("node 2 should see writes after repair")
	}
}

func TestInterruptLatencyCharged(t *testing.T) {
	k, n := newNet(t, 2)
	cfg := n.Config()
	var handled sim.Time
	n.NIC(1).EnableInterrupts(true, func(off int) { handled = k.Now() })
	k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWordInterrupt(p, 0, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if handled < sim.Time(cfg.InterruptLatency) {
		t.Fatalf("handler ran at %d, before interrupt latency %d", handled, cfg.InterruptLatency)
	}
	if n.NIC(1).Stats().InterruptsTaken != 1 {
		t.Fatalf("InterruptsTaken = %d", n.NIC(1).Stats().InterruptsTaken)
	}
}

func TestInterruptsDisabledByDefault(t *testing.T) {
	k, n := newNet(t, 2)
	k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWordInterrupt(p, 0, 1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.NIC(1).Stats().InterruptsTaken != 0 {
		t.Error("interrupt taken while disabled")
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	k, n := newNet(t, 2)
	panicked := false
	k.Spawn("writer", func(p *sim.Proc) {
		func() {
			defer func() { panicked = recover() != nil }()
			n.NIC(0).WriteWord(p, n.NIC(0).Size(), 1)
		}()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !panicked {
		t.Error("expected out-of-range panic")
	}
}

func TestReplicationProperty(t *testing.T) {
	// Property: for any single writer, offset, and payload, after
	// quiescence every live bank holds the payload (zero-copy hardware
	// replication is content-agnostic).
	f := func(seed uint64, offRaw uint16, sizeRaw uint16) bool {
		k := sim.NewKernel()
		defer k.Close()
		cfg := DefaultConfig(4)
		n, err := New(k, cfg)
		if err != nil {
			return false
		}
		off := int(offRaw) % (cfg.MemBytes - 4096)
		size := int(sizeRaw)%2048 + 1
		data := make([]byte, size)
		sim.NewRNG(seed).Bytes(data)
		writer := int(seed % 4)
		k.Spawn("w", func(p *sim.Proc) { n.NIC(writer).Write(p, off, data) })
		if err := k.Run(); err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if !bytes.Equal(n.NIC(i).Peek(off, size), data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHopDelayScalesWithDistance(t *testing.T) {
	// Visibility time at node k grows linearly in ring distance.
	k, n := newNet(t, 8)
	times := make([]sim.Time, 8)
	for i := 1; i < 8; i++ {
		i := i
		n.NIC(i).EnableInterrupts(true, func(off int) {
			if times[i] == 0 {
				times[i] = k.Now()
			}
		})
	}
	k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWordInterrupt(p, 0, 7) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 8; i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("visibility not monotonic in hop count: t[%d]=%d t[%d]=%d", i-1, times[i-1], i, times[i])
		}
	}
}
