package scramnet

import (
	"testing"

	"repro/internal/sim"
)

func TestDropRateZeroLosesNothing(t *testing.T) {
	k, n := newNet(t, 4)
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			n.NIC(0).WriteWord(p, i*4, uint32(i))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if lost := n.NIC(0).Stats().PacketsLost; lost != 0 {
		t.Fatalf("lost %d packets at DropRate 0", lost)
	}
}

func TestDropRateLosesAndCounts(t *testing.T) {
	k, n := newNet(t, 4, func(c *Config) { c.DropRate = 0.5; c.Seed = 7 })
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			n.NIC(0).WriteWord(p, i*4, 0xFFFFFFFF)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	lost := n.NIC(0).Stats().PacketsLost
	if lost < 60 || lost > 140 {
		t.Fatalf("lost %d of 200 at DropRate 0.5", lost)
	}
	// Dropped packets never reached the peers' banks.
	missing := 0
	for i := 0; i < 200; i++ {
		if n.NIC(2).Peek(i*4, 1)[0] != 0xFF {
			missing++
		}
	}
	if int64(missing) == 0 {
		t.Fatal("no holes in the remote bank despite drops")
	}
}

func TestFaultsDeterministic(t *testing.T) {
	lost := func() int64 {
		k, n := newNet(t, 4, func(c *Config) { c.DropRate = 0.3; c.Seed = 42 })
		k.Spawn("w", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				n.NIC(0).WriteWord(p, i*4, 1)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return n.NIC(0).Stats().PacketsLost
	}
	if a, b := lost(), lost(); a != b {
		t.Fatalf("fault injection not deterministic: %d vs %d", a, b)
	}
}
