package scrsync

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

func ring(t testing.TB, nodes int) (*sim.Kernel, *scramnet.Network) {
	t.Helper()
	k := sim.NewKernel()
	n, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	n.SetSingleWriterCheck(true)
	return k, n
}

func TestBarrierSynchronizes(t *testing.T) {
	const nodes = 4
	k, n := ring(t, nodes)
	b, err := NewBarrier(0x100, nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lastArrive sim.Time
	exits := make([]sim.Time, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			p.Delay(sim.Duration(i) * 100 * sim.Microsecond)
			if p.Now() > lastArrive {
				lastArrive = p.Now()
			}
			b.Wait(p, n.NIC(i), i)
			exits[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range exits {
		if e < lastArrive {
			t.Errorf("party %d left the barrier at %d, before the last arrival %d", i, e, lastArrive)
		}
	}
}

func TestBarrierReusableManyRounds(t *testing.T) {
	const nodes = 3
	const rounds = 20
	k, n := ring(t, nodes)
	b, _ := NewBarrier(0, nodes, 0)
	phase := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				// Uneven pacing: stragglers rotate.
				p.Delay(sim.Duration((i+r)%3) * 30 * sim.Microsecond)
				phase[i] = r
				b.Wait(p, n.NIC(i), i)
				// After the barrier nobody is still in an older round.
				for j := 0; j < nodes; j++ {
					if phase[j] < r {
						t.Errorf("round %d: party %d saw party %d still at %d", r, i, j, phase[j])
						return
					}
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierValidation(t *testing.T) {
	if _, err := NewBarrier(0, 1, 0); err == nil {
		t.Error("1-party barrier accepted")
	}
	if _, err := NewBarrier(0, MaxParties+1, 0); err == nil {
		t.Error("oversized barrier accepted")
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	const nodes = 4
	const iters = 12
	k, n := ring(t, nodes)
	m, err := NewMutex(0x200, nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	inside := 0
	var violations int
	total := 0
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			rng := sim.NewRNG(uint64(i) + 7)
			for it := 0; it < iters; it++ {
				p.Delay(rng.Duration(40 * sim.Microsecond))
				m.Lock(p, n.NIC(i), i)
				inside++
				if inside != 1 {
					violations++
				}
				p.Delay(5 * sim.Microsecond) // critical section
				total++
				inside--
				m.Unlock(p, n.NIC(i), i)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations)
	}
	if total != nodes*iters {
		t.Fatalf("total = %d, want %d", total, nodes*iters)
	}
}

func TestMutexMutualExclusionProperty(t *testing.T) {
	// Property: under randomized contention patterns the bakery lock
	// never admits two parties, for any seed.
	f := func(seed uint64) bool {
		const nodes = 3
		k := sim.NewKernel()
		defer k.Close()
		n, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
		if err != nil {
			return false
		}
		m, err := NewMutex(0, nodes, 0)
		if err != nil {
			return false
		}
		inside, bad := 0, false
		for i := 0; i < nodes; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
				rng := sim.NewRNG(seed ^ uint64(i*977))
				for it := 0; it < 6; it++ {
					p.Delay(rng.Duration(25 * sim.Microsecond))
					m.Lock(p, n.NIC(i), i)
					inside++
					if inside != 1 {
						bad = true
					}
					p.Delay(rng.Duration(8 * sim.Microsecond))
					inside--
					m.Unlock(p, n.NIC(i), i)
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFIFOAcrossNodes(t *testing.T) {
	const count = 40
	k, n := ring(t, 2)
	q, err := NewQueue(0x400, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint32
	k.Spawn("producer", func(p *sim.Proc) {
		rec := make([]byte, 8)
		for i := 0; i < count; i++ {
			rec[0], rec[1] = byte(i), byte(i>>8)
			if err := q.Produce(p, n.NIC(0), rec); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < count; i++ {
			if err := q.Consume(p, n.NIC(1), buf); err != nil {
				t.Error(err)
				return
			}
			got = append(got, uint32(buf[0])|uint32(buf[1])<<8)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("record %d out of order: %d (queue smaller than stream forces wrap + backpressure)", i, v)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	// With a slow consumer the producer must stall, never overwrite.
	k, n := ring(t, 2)
	q, _ := NewQueue(0, 2, 4, 0)
	var prodDone, consStart sim.Time
	k.Spawn("producer", func(p *sim.Proc) {
		rec := []byte{1, 2, 3, 4}
		for i := 0; i < 6; i++ {
			if err := q.Produce(p, n.NIC(0), rec); err != nil {
				t.Error(err)
			}
		}
		prodDone = p.Now()
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		p.Delay(2 * sim.Millisecond)
		consStart = p.Now()
		buf := make([]byte, 4)
		for i := 0; i < 6; i++ {
			if err := q.Consume(p, n.NIC(1), buf); err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if prodDone < consStart {
		t.Fatalf("producer finished at %d before consumer started at %d: ring overfilled", prodDone, consStart)
	}
}

func TestQueueValidation(t *testing.T) {
	if _, err := NewQueue(0, 1, 8, 0); err == nil {
		t.Error("1-slot queue accepted")
	}
	if _, err := NewQueue(0, 4, 6, 0); err == nil {
		t.Error("non-word record size accepted")
	}
	k, n := ring(t, 2)
	q, _ := NewQueue(0, 4, 8, 0)
	k.Spawn("p", func(p *sim.Proc) {
		if err := q.Produce(p, n.NIC(0), make([]byte, 9)); err == nil {
			t.Error("oversize record accepted")
		}
		if err := q.Consume(p, n.NIC(0), make([]byte, 4)); err == nil {
			t.Error("undersized consume buffer accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintHelpers(t *testing.T) {
	if BarrierBytes(8) != 32 {
		t.Errorf("BarrierBytes(8) = %d", BarrierBytes(8))
	}
	if MutexBytes(4) != 32 {
		t.Errorf("MutexBytes(4) = %d", MutexBytes(4))
	}
	if QueueBytes(16, 64) != 8+16*64 {
		t.Errorf("QueueBytes = %d", QueueBytes(16, 64))
	}
}
