package scrsync_test

import (
	"fmt"

	"repro/internal/scramnet"
	"repro/internal/scrsync"
	"repro/internal/sim"
)

// Three nodes coordinate through a barrier laid out in replicated
// memory — no messages, no locks, just single-writer generation words.
func ExampleBarrier() {
	k := sim.NewKernel()
	ring, _ := scramnet.New(k, scramnet.DefaultConfig(3))
	b, _ := scrsync.NewBarrier(0x100, 3, 0)
	order := []string{}
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) {
			p.Delay(sim.Duration(i*50) * sim.Microsecond) // staggered work
			b.Wait(p, ring.NIC(i), i)
			order = append(order, "released")
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("%d nodes released together\n", len(order))
	// Output: 3 nodes released together
}

// A bakery lock serializes a critical section across nodes on
// non-coherent memory.
func ExampleMutex() {
	k := sim.NewKernel()
	ring, _ := scramnet.New(k, scramnet.DefaultConfig(2))
	m, _ := scrsync.NewMutex(0x200, 2, 0)
	counter := 0
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				m.Lock(p, ring.NIC(i), i)
				counter++ // protected
				m.Unlock(p, ring.NIC(i), i)
			}
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	fmt.Println("counter =", counter)
	// Output: counter = 10
}
