// Package scrsync provides synchronization primitives for SCRAMNet
// replicated shared memory, in the spirit of the mechanisms the paper
// cites as its companion work ("Synchronization Mechanisms for
// SCRAMNet+ Systems", reference [10]).
//
// SCRAMNet memory is replicated but NOT coherent, and has no
// read-modify-write primitives, so every construct here is built from
// single-writer words only:
//
//   - Barrier: per-participant generation words — each process writes
//     only its own word and polls the others' replicas.
//   - Mutex: Lamport's bakery algorithm, which is correct even with
//     safe (stale-readable) registers — exactly what a replica that is
//     still converging provides. Every choosing/ticket word has one
//     writer.
//   - Queue: a single-producer single-consumer ring buffer; the head
//     index is written only by the producer and the tail only by the
//     consumer.
//
// All primitives charge realistic PIO costs through the NIC they are
// given; layouts are parameterized by a base offset so applications can
// place them anywhere in the replicated address space.
package scrsync

import (
	"fmt"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

// MaxParties bounds barrier and lock membership (one word per party).
const MaxParties = 64

// Barrier is a sense-reversing flat barrier over per-party generation
// words. Word i (at base + 4i) is written ONLY by party i; arrival
// increments the party's generation, and everyone polls until all
// replicas reach the generation.
type Barrier struct {
	base    int
	parties int
	poll    sim.Duration
}

// BarrierBytes returns the memory footprint of a barrier for n parties.
func BarrierBytes(n int) int { return 4 * n }

// NewBarrier lays out a barrier for the given parties at base.
func NewBarrier(base, parties int, pollInterval sim.Duration) (*Barrier, error) {
	if parties < 2 || parties > MaxParties {
		return nil, fmt.Errorf("scrsync: %d parties outside 2..%d", parties, MaxParties)
	}
	if pollInterval <= 0 {
		pollInterval = 500 * sim.Nanosecond
	}
	return &Barrier{base: base, parties: parties, poll: pollInterval}, nil
}

// Wait enters the barrier as party `me` on the given NIC and blocks (in
// virtual time) until every party has arrived at the same generation.
func (b *Barrier) Wait(p *sim.Proc, nic *scramnet.NIC, me int) {
	gen := nic.ReadWord(p, b.base+4*me) + 1
	nic.WriteWord(p, b.base+4*me, gen)
	for {
		done := true
		for i := 0; i < b.parties; i++ {
			if i == me {
				continue
			}
			// A party ahead of us (gen+1) also counts as arrived.
			if g := nic.ReadWord(p, b.base+4*i); int32(g-gen) < 0 {
				done = false
				break
			}
		}
		if done {
			return
		}
		p.Delay(b.poll)
	}
}

// Mutex is Lamport's bakery lock over replicated memory. For party i,
// choosing[i] (base + 4i) and number[i] (base + 4(n+i)) are written
// only by party i.
type Mutex struct {
	base    int
	parties int
	poll    sim.Duration
}

// MutexBytes returns the memory footprint of a mutex for n parties.
func MutexBytes(n int) int { return 8 * n }

// NewMutex lays out a bakery lock for the given parties at base.
func NewMutex(base, parties int, pollInterval sim.Duration) (*Mutex, error) {
	if parties < 2 || parties > MaxParties {
		return nil, fmt.Errorf("scrsync: %d parties outside 2..%d", parties, MaxParties)
	}
	if pollInterval <= 0 {
		pollInterval = 500 * sim.Nanosecond
	}
	return &Mutex{base: base, parties: parties, poll: pollInterval}, nil
}

func (m *Mutex) choosingOff(i int) int { return m.base + 4*i }
func (m *Mutex) numberOff(i int) int   { return m.base + 4*(m.parties+i) }

// Lock acquires the mutex for party `me`. The bakery algorithm's doorway
// (choose a ticket larger than every visible ticket) tolerates stale
// replicas: two parties may pick equal tickets, and the (ticket, id)
// tie-break resolves it.
func (m *Mutex) Lock(p *sim.Proc, nic *scramnet.NIC, me int) {
	// Doorway: announce we are choosing, pick max+1.
	nic.WriteWord(p, m.choosingOff(me), 1)
	max := uint32(0)
	for i := 0; i < m.parties; i++ {
		if n := nic.ReadWord(p, m.numberOff(i)); n > max {
			max = n
		}
	}
	nic.WriteWord(p, m.numberOff(me), max+1)
	nic.WriteWord(p, m.choosingOff(me), 0)
	// Wait for the write to settle everywhere before inspecting peers:
	// the ring guarantees bounded propagation, so a short settle delay
	// upper-bounds it. (Reference [10] uses the same bounded-latency
	// argument.)
	p.Delay(m.settle(nic))
	mine := max + 1
	for i := 0; i < m.parties; i++ {
		if i == me {
			continue
		}
		for nic.ReadWord(p, m.choosingOff(i)) != 0 {
			p.Delay(m.poll)
		}
		for {
			n := nic.ReadWord(p, m.numberOff(i))
			if n == 0 || n > mine || (n == mine && i > me) {
				break
			}
			p.Delay(m.poll)
		}
	}
}

// Unlock releases the mutex.
func (m *Mutex) Unlock(p *sim.Proc, nic *scramnet.NIC, me int) {
	nic.WriteWord(p, m.numberOff(me), 0)
}

// settle returns an upper bound on ring propagation for one word.
func (m *Mutex) settle(nic *scramnet.NIC) sim.Duration {
	cfg := nicNet(nic)
	return sim.Duration(cfg.Nodes) * (cfg.HopDelay + cfg.FixedPacketWire)
}

func nicNet(nic *scramnet.NIC) scramnet.Config {
	return nic.NetworkConfig()
}

// Queue is a single-producer single-consumer byte-record ring buffer in
// replicated memory. Layout at base:
//
//	head word (written by producer), tail word (written by consumer),
//	then capacity bytes of slot storage in recSize records.
//
// Produce writes the record then advances head; per-sender FIFO makes
// the record visible before the index everywhere.
type Queue struct {
	base    int
	slots   int
	recSize int
	poll    sim.Duration
}

// QueueBytes returns the footprint of a queue with the given geometry.
func QueueBytes(slots, recSize int) int { return 8 + slots*recSize }

// NewQueue lays out a SPSC queue at base.
func NewQueue(base, slots, recSize int, pollInterval sim.Duration) (*Queue, error) {
	if slots < 2 {
		return nil, fmt.Errorf("scrsync: need at least 2 slots, got %d", slots)
	}
	if recSize < 4 || recSize%4 != 0 {
		return nil, fmt.Errorf("scrsync: record size %d must be a positive word multiple", recSize)
	}
	if pollInterval <= 0 {
		pollInterval = 500 * sim.Nanosecond
	}
	return &Queue{base: base, slots: slots, recSize: recSize, poll: pollInterval}, nil
}

func (q *Queue) headOff() int      { return q.base }
func (q *Queue) tailOff() int      { return q.base + 4 }
func (q *Queue) slotOff(i int) int { return q.base + 8 + i*q.recSize }

// Produce appends one record (len ≤ recSize), blocking while the ring
// is full.
func (q *Queue) Produce(p *sim.Proc, nic *scramnet.NIC, rec []byte) error {
	if len(rec) > q.recSize {
		return fmt.Errorf("scrsync: %d-byte record exceeds slot size %d", len(rec), q.recSize)
	}
	head := nic.ReadWord(p, q.headOff())
	for {
		tail := nic.ReadWord(p, q.tailOff())
		if head-tail < uint32(q.slots) {
			break
		}
		p.Delay(q.poll)
	}
	nic.Write(p, q.slotOff(int(head)%q.slots), rec)
	nic.WriteWord(p, q.headOff(), head+1)
	return nil
}

// Consume removes the oldest record into buf, blocking while empty.
func (q *Queue) Consume(p *sim.Proc, nic *scramnet.NIC, buf []byte) error {
	if len(buf) < q.recSize {
		return fmt.Errorf("scrsync: %d-byte buffer below slot size %d", len(buf), q.recSize)
	}
	tail := nic.ReadWord(p, q.tailOff())
	for {
		head := nic.ReadWord(p, q.headOff())
		if head != tail {
			break
		}
		p.Delay(q.poll)
	}
	nic.Read(p, q.slotOff(int(tail)%q.slots), buf[:q.recSize])
	nic.WriteWord(p, q.tailOff(), tail+1)
	return nil
}
