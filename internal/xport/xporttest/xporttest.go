// Package xporttest provides a shared conformance harness for
// xport.Fabric implementations. Every fabric in the testbed — Fast
// Ethernet, ATM, Myrinet, and the fault-injection wrapper — must
// satisfy the same frame-level contract the protocol stacks assume:
// correct addressing, bit-exact payloads, per-(src,dst) FIFO order,
// event-driven delivery that advances virtual time, and handler
// isolation between nodes.
package xporttest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/xport"
)

// Builder constructs a fresh fabric with the given node count on k.
type Builder func(k *sim.Kernel, nodes int) xport.Fabric

// delivery is one observed frame arrival.
type delivery struct {
	node, src int
	frame     []byte
	at        sim.Time
}

// FabricContract runs the full battery against the fabric built by b.
// Call it from the implementation package's tests:
//
//	xporttest.FabricContract(t, func(k *sim.Kernel, nodes int) xport.Fabric { ... })
func FabricContract(t *testing.T, b Builder) {
	t.Helper()
	t.Run("Identity", func(t *testing.T) { contractIdentity(t, b) })
	t.Run("Delivery", func(t *testing.T) { contractDelivery(t, b) })
	t.Run("FIFO", func(t *testing.T) { contractFIFO(t, b) })
	t.Run("Isolation", func(t *testing.T) { contractIsolation(t, b) })
	t.Run("TimeAdvances", func(t *testing.T) { contractTime(t, b) })
}

// capture installs recording handlers on every node of f.
func capture(f xport.Fabric, k *sim.Kernel, log *[]delivery) {
	for i := 0; i < f.Nodes(); i++ {
		i := i
		f.SetHandler(i, func(src int, frame []byte) {
			*log = append(*log, delivery{
				node: i, src: src, frame: append([]byte(nil), frame...), at: k.Now(),
			})
		})
	}
}

func contractIdentity(t *testing.T, b Builder) {
	k := sim.NewKernel()
	defer k.Close()
	f := b(k, 4)
	if f.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", f.Nodes())
	}
	if f.MTU() < 1 {
		t.Fatalf("MTU() = %d, want >= 1", f.MTU())
	}
}

// contractDelivery: a frame reaches exactly its destination, with the
// true source and intact bytes, including at the MTU limit.
func contractDelivery(t *testing.T, b Builder) {
	k := sim.NewKernel()
	defer k.Close()
	f := b(k, 4)
	var log []delivery
	capture(f, k, &log)

	small := []byte{0xde, 0xad, 0xbe, 0xef}
	full := make([]byte, f.MTU())
	sim.NewRNG(3).Bytes(full)
	k.Spawn("tx", func(p *sim.Proc) {
		f.Transmit(0, 2, append([]byte(nil), small...))
		f.Transmit(3, 1, append([]byte(nil), full...))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("deliveries: %d, want 2 (%v)", len(log), log)
	}
	for _, d := range log {
		switch d.node {
		case 2:
			if d.src != 0 || !bytes.Equal(d.frame, small) {
				t.Fatalf("node 2 got src=%d frame=%x", d.src, d.frame)
			}
		case 1:
			if d.src != 3 || !bytes.Equal(d.frame, full) {
				t.Fatalf("node 1 got src=%d, %d bytes (MTU frame corrupted?)", d.src, len(d.frame))
			}
		default:
			t.Fatalf("frame leaked to node %d", d.node)
		}
	}
}

// contractFIFO: frames between one (src, dst) pair arrive in transmit
// order even when a second stream interleaves.
func contractFIFO(t *testing.T, b Builder) {
	k := sim.NewKernel()
	defer k.Close()
	f := b(k, 4)
	var log []delivery
	capture(f, k, &log)

	const per = 10
	k.Spawn("tx0", func(p *sim.Proc) {
		for i := 0; i < per; i++ {
			f.Transmit(0, 1, []byte{0, byte(i)})
			p.Delay(3 * sim.Microsecond)
		}
	})
	k.Spawn("tx2", func(p *sim.Proc) {
		for i := 0; i < per; i++ {
			f.Transmit(2, 1, []byte{2, byte(i)})
			p.Delay(5 * sim.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	next := map[int]byte{0: 0, 2: 0}
	for _, d := range log {
		if d.node != 1 || len(d.frame) != 2 || int(d.frame[0]) != d.src {
			t.Fatalf("bad delivery %+v", d)
		}
		if d.frame[1] != next[d.src] {
			t.Fatalf("stream %d out of order: got %d want %d", d.src, d.frame[1], next[d.src])
		}
		next[d.src]++
	}
	if next[0] != per || next[2] != per {
		t.Fatalf("incomplete: %v", next)
	}
}

// contractIsolation: replacing one node's handler must not disturb the
// others, and a node with no handler must not crash the fabric.
func contractIsolation(t *testing.T, b Builder) {
	k := sim.NewKernel()
	defer k.Close()
	f := b(k, 4)
	var got []int
	f.SetHandler(1, func(src int, frame []byte) { got = append(got, 1) })
	f.SetHandler(2, func(src int, frame []byte) { got = append(got, 2) })
	k.Spawn("tx", func(p *sim.Proc) {
		f.Transmit(0, 1, []byte{1})
		f.Transmit(0, 3, []byte{3}) // node 3 has no handler installed
		f.Transmit(0, 2, []byte{2})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" && fmt.Sprint(got) != "[2 1]" {
		t.Fatalf("handler calls: %v", got)
	}
}

// contractTime: delivery is event-driven and strictly after transmit —
// a physical fabric cannot deliver at the instant of posting.
func contractTime(t *testing.T, b Builder) {
	k := sim.NewKernel()
	defer k.Close()
	f := b(k, 2)
	var log []delivery
	capture(f, k, &log)
	var posted sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		p.Delay(1 * sim.Microsecond)
		posted = p.Now()
		f.Transmit(0, 1, make([]byte, 64))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("deliveries: %d", len(log))
	}
	if !(log[0].at > posted) {
		t.Fatalf("delivered at %v, posted at %v — zero-latency fabric", log[0].at, posted)
	}
}
