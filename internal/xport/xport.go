// Package xport defines the message transport interface shared by every
// network in the testbed: the BillBoard Protocol on SCRAMNet, TCP-lite
// sockets on Fast Ethernet / ATM / Myrinet, and the native Myrinet API.
//
// The MPI implementation's channel device is written against this
// interface, which is how the paper's apples-to-apples comparison — the
// same MPICH stack over different networks — is reproduced structurally.
package xport

import (
	"repro/internal/sim"
	"repro/internal/spin"
)

// Endpoint is one process's handle on a messaging substrate. Sends are
// reliable and each (sender, receiver) stream is delivered in order.
type Endpoint interface {
	// Rank is this endpoint's process number, Procs the world size.
	Rank() int
	Procs() int
	// MaxMessage is the largest payload a single Send may carry.
	MaxMessage() int
	// Send posts data to dst. It may block (virtual time) for flow
	// control but returns before the receiver consumes the message.
	Send(p *sim.Proc, dst int, data []byte) error
	// Mcast posts one message to several destinations. Substrates
	// without hardware replication loop over Send.
	Mcast(p *sim.Proc, dsts []int, data []byte) error
	// Recv blocks for the next in-order message from src.
	Recv(p *sim.Proc, src int, buf []byte) (int, error)
	// TryRecv polls once for a message from src.
	TryRecv(p *sim.Proc, src int, buf []byte) (n int, ok bool, err error)
	// RecvAny blocks for the next message from any source.
	RecvAny(p *sim.Proc, buf []byte) (src, n int, err error)
	// NativeMcast reports whether Mcast is a single-step hardware
	// operation (true only for the BillBoard Protocol on SCRAMNet).
	NativeMcast() bool
}

// StreamReducer is the optional in-network collective extension (only
// the BillBoard Protocol on SCRAMNet with Config.Stream implements
// it): an allreduce over 32-bit lanes computed by transit handlers as
// the vector circulates the ring, one revolution instead of a log(P)
// software tree. Layers that want the fast path type-assert their
// Endpoint against this interface and fall back to rank-side
// reduction when the assertion fails or StreamAllreduce declines.
type StreamReducer interface {
	// StreamMax is the largest vector one fast-path round can carry
	// (0 when the extension is configured off).
	StreamMax() int
	// StreamAllreduce runs one collective in-network allreduce round.
	// done=false with a nil error is a collective decline: every rank
	// gets the same verdict for the same round and must run the same
	// software fallback. done=true means recv holds the reduction of
	// every rank's send.
	StreamAllreduce(p *sim.Proc, op spin.RingOp, send, recv []byte) (done bool, err error)
}

// Windowed is the optional receiver-posted-window extension (only the
// BillBoard Protocol on SCRAMNet implements it). A receiver reserves a
// contiguous window in its own data partition and advertises it to one
// sender, who then writes payload straight into the remote replica of
// that window — no per-chunk descriptors, flags or acknowledgments —
// and the receiver reads it back locally. Layers that want the
// zero-copy rendezvous path type-assert their Endpoint against this
// interface and fall back to plain sends when the assertion fails.
type Windowed interface {
	// ReserveWindow reserves n bytes of this endpoint's data partition
	// and grants write ownership of the window to process src. It may
	// run garbage collection to make room; ok is false when no
	// contiguous window of n bytes can be found.
	ReserveWindow(p *sim.Proc, src, n int) (off int, ok bool)
	// ReleaseWindow returns a reserved window to the partition's free
	// pool and reclaims write ownership for the endpoint. Pure
	// bookkeeping: no bus or wire time, callable outside a process
	// context (e.g. when abandoning a transfer after a peer death).
	ReleaseWindow(off, n int)
	// WriteWindow writes data into dst's partition at the
	// partition-relative offset off (within a window dst reserved for
	// this endpoint). It returns a conservative bound on the virtual
	// time by which the written bytes are visible at every live node,
	// letting callers pipeline further writes against ring circulation.
	WriteWindow(p *sim.Proc, dst, off int, data []byte) sim.Time
	// ReadWindow reads len(buf) bytes from this endpoint's own
	// partition at partition-relative offset off (a local bank read).
	ReadWindow(p *sim.Proc, off int, buf []byte)
}
