// Package xport defines the message transport interface shared by every
// network in the testbed: the BillBoard Protocol on SCRAMNet, TCP-lite
// sockets on Fast Ethernet / ATM / Myrinet, and the native Myrinet API.
//
// The MPI implementation's channel device is written against this
// interface, which is how the paper's apples-to-apples comparison — the
// same MPICH stack over different networks — is reproduced structurally.
package xport

import "repro/internal/sim"

// Endpoint is one process's handle on a messaging substrate. Sends are
// reliable and each (sender, receiver) stream is delivered in order.
type Endpoint interface {
	// Rank is this endpoint's process number, Procs the world size.
	Rank() int
	Procs() int
	// MaxMessage is the largest payload a single Send may carry.
	MaxMessage() int
	// Send posts data to dst. It may block (virtual time) for flow
	// control but returns before the receiver consumes the message.
	Send(p *sim.Proc, dst int, data []byte) error
	// Mcast posts one message to several destinations. Substrates
	// without hardware replication loop over Send.
	Mcast(p *sim.Proc, dsts []int, data []byte) error
	// Recv blocks for the next in-order message from src.
	Recv(p *sim.Proc, src int, buf []byte) (int, error)
	// TryRecv polls once for a message from src.
	TryRecv(p *sim.Proc, src int, buf []byte) (n int, ok bool, err error)
	// RecvAny blocks for the next message from any source.
	RecvAny(p *sim.Proc, buf []byte) (src, n int, err error)
	// NativeMcast reports whether Mcast is a single-step hardware
	// operation (true only for the BillBoard Protocol on SCRAMNet).
	NativeMcast() bool
}
