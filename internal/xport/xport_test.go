package xport_test

import (
	"testing"

	"repro/internal/atm"
	"repro/internal/ethernet"
	"repro/internal/fault"
	"repro/internal/myrinet"
	"repro/internal/sim"
	"repro/internal/xport"
	"repro/internal/xport/xporttest"
)

// Every fabric in the testbed runs the shared contract battery — the
// frame-level guarantees (addressing, integrity, per-pair FIFO,
// isolation, physical latency) that the TCP-lite stacks and the native
// Myrinet API are written against.

func TestFastEthernetFabricContract(t *testing.T) {
	xporttest.FabricContract(t, func(k *sim.Kernel, nodes int) xport.Fabric {
		n, err := ethernet.New(k, ethernet.DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		return n
	})
}

func TestATMFabricContract(t *testing.T) {
	xporttest.FabricContract(t, func(k *sim.Kernel, nodes int) xport.Fabric {
		n, err := atm.New(k, atm.DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		return n
	})
}

func TestMyrinetFabricContract(t *testing.T) {
	xporttest.FabricContract(t, func(k *sim.Kernel, nodes int) xport.Fabric {
		n, err := myrinet.New(k, myrinet.DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		return n
	})
}

// The fault-injection wrapper must itself honor the fabric contract
// when no faults are active: transparent pass-through.
func TestFaultWrapperFabricContract(t *testing.T) {
	xporttest.FabricContract(t, func(k *sim.Kernel, nodes int) xport.Fabric {
		n, err := ethernet.New(k, ethernet.DefaultConfig(nodes))
		if err != nil {
			t.Fatal(err)
		}
		return fault.NewFabric(k, n, 1)
	})
}
