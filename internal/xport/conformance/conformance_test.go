// Package conformance runs one behavioral test battery against every
// xport.Endpoint implementation — the BillBoard Protocol, the three
// TCP-lite stacks, the native Myrinet API, and the hybrid router — so
// that the MPI engine's assumptions (reliability, per-stream FIFO,
// exact message boundaries, non-blocking polls) are guaranteed to hold
// on every substrate it can be configured over.
package conformance

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xport"
)

// build constructs a 4-node world on the given network.
func build(t *testing.T, net cluster.Network) (*sim.Kernel, []xport.Endpoint) {
	t.Helper()
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	return k, c.Endpoints
}

func forEachNetwork(t *testing.T, fn func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint)) {
	for _, net := range cluster.AllNetworks {
		net := net
		t.Run(string(net), func(t *testing.T) {
			k, eps := build(t, net)
			fn(t, k, eps)
		})
	}
}

func TestIdentity(t *testing.T) {
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		defer k.Close()
		for i, ep := range eps {
			if ep.Rank() != i || ep.Procs() != 4 {
				t.Errorf("endpoint %d: Rank=%d Procs=%d", i, ep.Rank(), ep.Procs())
			}
			if ep.MaxMessage() < 1024 {
				t.Errorf("endpoint %d: MaxMessage %d implausibly small", i, ep.MaxMessage())
			}
		}
	})
}

func TestBoundariesPreserved(t *testing.T) {
	// Three differently-sized messages arrive as three messages with
	// exact lengths — never coalesced or split at the API.
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		sizes := []int{1, 900, 17}
		k.Spawn("tx", func(p *sim.Proc) {
			for i, n := range sizes {
				msg := bytes.Repeat([]byte{byte(i + 1)}, n)
				if err := eps[0].Send(p, 1, msg); err != nil {
					t.Error(err)
					return
				}
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 2048)
			for i, want := range sizes {
				n, err := eps[1].Recv(p, 0, buf)
				if err != nil || n != want || buf[0] != byte(i+1) {
					t.Errorf("msg %d: n=%d want=%d err=%v", i, n, want, err)
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPerStreamFIFOUnderCrossTraffic(t *testing.T) {
	// Streams from two senders interleave arbitrarily, but each stream
	// is individually ordered.
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		const per = 12
		for _, s := range []int{1, 2} {
			s := s
			k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
				for i := 0; i < per; i++ {
					if err := eps[s].Send(p, 0, []byte{byte(s), byte(i)}); err != nil {
						t.Error(err)
						return
					}
					p.Delay(sim.Duration(s*13) * sim.Microsecond)
				}
			})
		}
		k.Spawn("rx", func(p *sim.Proc) {
			next := map[int]byte{1: 0, 2: 0}
			buf := make([]byte, 8)
			for got := 0; got < 2*per; got++ {
				src, n, err := eps[0].RecvAny(p, buf)
				if err != nil || n != 2 || int(buf[0]) != src {
					t.Errorf("RecvAny: src=%d n=%d err=%v", src, n, err)
					return
				}
				if buf[1] != next[src] {
					t.Errorf("stream %d out of order: got %d want %d", src, buf[1], next[src])
					return
				}
				next[src]++
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTryRecvNeverFalsePositive(t *testing.T) {
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 64)
			// Nothing sent: repeated polls must all miss.
			for i := 0; i < 5; i++ {
				if _, ok, err := eps[2].TryRecv(p, 1, buf); ok || err != nil {
					t.Errorf("poll %d: ok=%v err=%v", i, ok, err)
					return
				}
			}
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(1 * sim.Millisecond) // after the negative polls above
			if err := eps[1].Send(p, 2, []byte("late")); err != nil {
				t.Error(err)
				return
			}
		})
		k.Spawn("rx2", func(p *sim.Proc) {
			// Eventually the message is pollable exactly once.
			p.Delay(5 * sim.Millisecond)
			buf := make([]byte, 64)
			n, ok, err := eps[2].TryRecv(p, 1, buf)
			if !ok || err != nil || string(buf[:n]) != "late" {
				t.Errorf("TryRecv after delivery: ok=%v n=%d err=%v", ok, n, err)
				return
			}
			if _, ok, _ := eps[2].TryRecv(p, 1, buf); ok {
				t.Error("message delivered twice")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMcastReachesAllDestinations(t *testing.T) {
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		msg := []byte("fanout")
		got := make([]bool, 4)
		k.Spawn("tx", func(p *sim.Proc) {
			if err := eps[3].Mcast(p, []int{0, 1, 2}, msg); err != nil {
				t.Error(err)
			}
		})
		for r := 0; r < 3; r++ {
			r := r
			k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
				buf := make([]byte, 64)
				n, err := eps[r].Recv(p, 3, buf)
				got[r] = err == nil && bytes.Equal(buf[:n], msg)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			if !got[r] {
				t.Errorf("destination %d missed the mcast", r)
			}
		}
	})
}

func TestZeroByteMessages(t *testing.T) {
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		k.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				if err := eps[0].Send(p, 1, nil); err != nil {
					t.Error(err)
					return
				}
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				n, err := eps[1].Recv(p, 0, make([]byte, 8))
				if err != nil || n != 0 {
					t.Errorf("zero-byte recv %d: n=%d err=%v", i, n, err)
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBidirectionalSimultaneous(t *testing.T) {
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		ok := [2]bool{}
		for i := 0; i < 2; i++ {
			i := i
			k.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) {
				peer := 1 - i
				msg := bytes.Repeat([]byte{byte(i + 1)}, 300)
				if err := eps[i].Send(p, peer, msg); err != nil {
					t.Error(err)
					return
				}
				buf := make([]byte, 512)
				n, err := eps[i].Recv(p, peer, buf)
				ok[i] = err == nil && n == 300 && buf[0] == byte(peer+1)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok[0] || !ok[1] {
			t.Fatalf("simultaneous exchange: %v", ok)
		}
	})
}

func TestLargestSingleMessage(t *testing.T) {
	// Each substrate must carry a reasonably large message intact (64
	// KiB, or its own max if smaller).
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		size := 64 << 10
		if m := eps[0].MaxMessage(); m < size {
			size = m
		}
		payload := make([]byte, size)
		sim.NewRNG(99).Bytes(payload)
		ok := false
		k.Spawn("tx", func(p *sim.Proc) {
			if err := eps[0].Send(p, 1, payload); err != nil {
				t.Error(err)
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, size+1)
			n, err := eps[1].Recv(p, 0, buf)
			ok = err == nil && n == size && bytes.Equal(buf[:n], payload)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%d-byte message corrupted or lost", size)
		}
	})
}
