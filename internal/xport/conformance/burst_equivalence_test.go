package conformance

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// This file is the burst-poll equivalence battery (ISSUE 4): the
// wide-read poll path must be an accounting optimization only. Under
// randomized lossy workloads it must detect the exact same message set
// in the exact same per-source order as the per-word path, and in a
// surgically scripted ACK-loss scenario it must issue the exact same
// retransmission re-ACKs.

// runBurstWorkload drives a seeded many-to-one workload — two senders,
// randomized sizes and gaps, the battery's loss window and node-3
// fail/repair cycle, retry-enabled BBP — with the given poll mode, and
// returns the per-source delivery order observed by the RecvAny sink
// plus the sink's endpoint stats.
func runBurstWorkload(t *testing.T, seed uint64, mode core.BurstMode) (map[int][]byte, core.Stats) {
	t.Helper()
	const perSender = 8
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	bbp.BurstPoll = mode
	script := &fault.Script{Seed: seed, Actions: []fault.Action{
		{At: sim.Time(0).Add(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.15},
		{At: sim.Time(0).Add(150 * sim.Microsecond), Kind: fault.NodeFail, Node: 3},
		{At: sim.Time(0).Add(450 * sim.Microsecond), Kind: fault.NodeRepair, Node: 3},
		{At: sim.Time(0).Add(500 * sim.Microsecond), Kind: fault.LossStop},
	}}
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	eps := c.Endpoints
	for _, s := range []int{1, 2} {
		s := s
		rng := sim.NewRNG(seed ^ uint64(s)<<32)
		k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
			for i := 0; i < perSender; i++ {
				// Randomized size (2..61 B), sender and index in the
				// first two bytes; the RNG stream is a function of (seed,
				// sender) only, so both poll modes see one workload.
				msg := make([]byte, 2+int(rng.Uint64()%60))
				msg[0], msg[1] = byte(s), byte(i)
				if err := eps[s].Send(p, 0, msg); err != nil {
					t.Errorf("sender %d msg %d: %v", s, i, err)
					return
				}
				p.Delay(sim.Duration(10+rng.Uint64()%40) * sim.Microsecond)
			}
		})
	}
	order := map[int][]byte{}
	k.Spawn("sink", func(p *sim.Proc) {
		buf := make([]byte, 128)
		for i := 0; i < 2*perSender; i++ {
			src, n, err := eps[0].RecvAny(p, buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if n < 2 || int(buf[0]) != src {
				t.Errorf("recv %d: %d bytes from %d, tag %d", i, n, src, buf[0])
				return
			}
			order[src] = append(order[src], buf[1])
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return order, eps[0].(*core.Endpoint).Stats()
}

// TestBurstPollEquivalenceUnderFaults runs the randomized lossy
// workload with per-word and with forced-burst polling across several
// seeds and demands identical per-source delivery: same message set,
// same order, nothing lost (the retry layer guarantees completeness),
// with the burst run actually exercising wide reads.
func TestBurstPollEquivalenceUnderFaults(t *testing.T) {
	for _, seed := range []uint64{20250806, 424242, 7} {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			perWord, pwStats := runBurstWorkload(t, seed, core.BurstOff)
			burst, buStats := runBurstWorkload(t, seed, core.BurstOn)
			for _, s := range []int{1, 2} {
				if got, want := fmt.Sprintf("%v", burst[s]), fmt.Sprintf("%v", perWord[s]); got != want {
					t.Errorf("sender %d delivery order diverged:\n  per-word: %s\n  burst:    %s", s, want, got)
				}
				if len(perWord[s]) != 8 {
					t.Errorf("sender %d: per-word run delivered %d of 8", s, len(perWord[s]))
				}
			}
			if pwStats.BurstPolls != 0 {
				t.Errorf("BurstOff sink performed %d burst polls", pwStats.BurstPolls)
			}
			if buStats.BurstPolls == 0 {
				t.Error("BurstOn sink performed no burst polls")
			}
			if buStats.Received != pwStats.Received {
				t.Errorf("received diverged: per-word %d, burst %d", pwStats.Received, buStats.Received)
			}
		})
	}
}

// runAckLossOnce posts a single message whose ACK write is surgically
// dropped by a total-loss window that opens only after the message has
// been published and consumed, forcing the sender to retransmit and the
// receiver to re-acknowledge from its slot floor. Returns the
// receiver's stats.
func runAckLossOnce(t *testing.T, mode core.BurstMode) core.Stats {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig() // first retransmit after 200µs
	bbp.BurstPoll = mode
	// The sender's publish completes within a few µs; the receiver
	// first polls at 20µs (local reads generate no ring traffic), so
	// the only packet inside the [10µs, 190µs] total-loss window is its
	// ACK write. The retransmission at ~200µs lands after the repair.
	script := &fault.Script{Seed: 1, Actions: []fault.Action{
		{At: sim.Time(0).Add(10 * sim.Microsecond), Kind: fault.LossStart, Rate: 1.0},
		{At: sim.Time(0).Add(190 * sim.Microsecond), Kind: fault.LossStop},
	}}
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	eps := c.Endpoints
	k.Spawn("tx", func(p *sim.Proc) {
		if err := eps[1].Send(p, 0, []byte("ack-me")); err != nil {
			t.Error(err)
		}
	})
	k.SpawnDaemon("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		p.Delay(20 * sim.Microsecond)
		for {
			if _, ok, _ := eps[0].TryRecv(p, 1, buf); !ok {
				p.Delay(20 * sim.Microsecond)
			}
		}
	})
	k.RunFor(2 * sim.Millisecond)
	return eps[0].(*core.Endpoint).Stats()
}

// TestBurstPollReAckEquivalence pins the retransmission re-ACK path:
// with the ACK write scripted away, the per-word and burst poll paths
// must consume the message once, observe the retransmission, and issue
// exactly the same number of re-ACKs.
func TestBurstPollReAckEquivalence(t *testing.T) {
	pw := runAckLossOnce(t, core.BurstOff)
	bu := runAckLossOnce(t, core.BurstOn)
	for _, c := range []struct {
		name string
		st   core.Stats
	}{{"per-word", pw}, {"burst", bu}} {
		if c.st.Received != 1 {
			t.Errorf("%s: received %d, want exactly 1 (re-ACK must not redeliver)", c.name, c.st.Received)
		}
		if c.st.ReAcks == 0 {
			t.Errorf("%s: no re-ACKs — the scripted ACK loss did not bite", c.name)
		}
	}
	if pw.ReAcks != bu.ReAcks {
		t.Errorf("re-ACK count diverged: per-word %d, burst %d", pw.ReAcks, bu.ReAcks)
	}
	if bu.BurstPolls == 0 {
		t.Error("burst run performed no burst polls")
	}
}
