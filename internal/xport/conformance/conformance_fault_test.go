package conformance

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/xport"
	"repro/internal/xport/oracle"
)

// This file extends the battery with the contract's edges (size limits,
// fragmentation boundaries) and with the baseline fault script: every
// substrate is driven through the same scripted adversity and checked
// against the delivery oracle. Substrates without a recovery layer may
// lose messages under faults but must never duplicate, reorder, or
// invent; the BBP retry extension must additionally lose nothing.

func TestMaxMessageEdges(t *testing.T) {
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		defer k.Close()
		max := eps[0].MaxMessage()
		k.Spawn("edges", func(p *sim.Proc) {
			// One past the limit must be rejected outright.
			if err := eps[0].Send(p, 1, make([]byte, max+1)); err == nil {
				t.Errorf("%d-byte send (max %d) not rejected", max+1, max)
			}
		})
		// An exact-limit message must cross intact. Cap the probe so the
		// multi-megabyte substrates don't dominate the suite; the capped
		// case is already covered by TestLargestSingleMessage.
		if max <= 128<<10 {
			payload := make([]byte, max)
			sim.NewRNG(7).Bytes(payload)
			ok := false
			k.Spawn("tx", func(p *sim.Proc) {
				if err := eps[2].Send(p, 3, payload); err != nil {
					t.Errorf("exact-max send: %v", err)
				}
			})
			k.Spawn("rx", func(p *sim.Proc) {
				buf := make([]byte, max+1)
				n, err := eps[3].Recv(p, 2, buf)
				ok = err == nil && n == max && bytes.Equal(buf[:n], payload)
			})
			defer func() {
				if !ok {
					t.Errorf("exact-max (%d bytes) message corrupted or lost", max)
				}
			}()
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFragmentationBoundaries sends sizes chosen to straddle every
// substrate's frame and packet boundaries (Ethernet's 1500-byte MTU,
// ATM's 48-byte cells, SCRAMNet's 4-byte packets and the stacks' MSS
// after headers) and requires bit-exact reassembly.
func TestFragmentationBoundaries(t *testing.T) {
	sizes := []int{47, 48, 49, 1459, 1460, 1461, 1500, 1501, 2920, 4095}
	forEachNetwork(t, func(t *testing.T, k *sim.Kernel, eps []xport.Endpoint) {
		defer k.Close()
		payloads := make([][]byte, len(sizes))
		rng := sim.NewRNG(11)
		for i, n := range sizes {
			payloads[i] = make([]byte, n)
			rng.Bytes(payloads[i])
		}
		k.Spawn("tx", func(p *sim.Proc) {
			for i := range payloads {
				if err := eps[0].Send(p, 1, payloads[i]); err != nil {
					t.Errorf("size %d: %v", sizes[i], err)
					return
				}
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 8192)
			for i := range payloads {
				n, err := eps[1].Recv(p, 0, buf)
				if err != nil {
					t.Errorf("size %d: %v", sizes[i], err)
					return
				}
				if n != sizes[i] || !bytes.Equal(buf[:n], payloads[i]) {
					t.Errorf("size %d reassembled to %d bytes (equal=%v)", sizes[i], n, bytes.Equal(buf[:n], payloads[i]))
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// batteryScript is the baseline fault script every substrate faces: a
// 15% transient loss window across the middle of the workload plus a
// fail→repair cycle of node 3, which carries no test traffic (on the
// dual ring it is optically bypassed; on a switch its link goes dark).
func batteryScript() *fault.Script {
	return &fault.Script{Seed: 20250805, Actions: []fault.Action{
		{At: sim.Time(0).Add(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.15},
		{At: sim.Time(0).Add(150 * sim.Microsecond), Kind: fault.NodeFail, Node: 3},
		{At: sim.Time(0).Add(450 * sim.Microsecond), Kind: fault.NodeRepair, Node: 3},
		{At: sim.Time(0).Add(500 * sim.Microsecond), Kind: fault.LossStop},
	}}
}

// TestFaultScriptBattery runs the baseline fault script against every
// substrate. SCRAMNet (retry-enabled BBP) and the hybrid's small-message
// road must deliver everything; the stacks without a recovery layer run
// time-bounded with polling receivers and must satisfy every oracle
// clause except completeness.
func TestFaultScriptBattery(t *testing.T) {
	const msgs = 15
	for _, net := range cluster.AllNetworks {
		net := net
		// The retry extension gives these two a recovery layer, so the
		// oracle additionally demands completeness.
		reliable := net == cluster.SCRAMNet || net == cluster.Hybrid
		t.Run(string(net), func(t *testing.T) {
			k := sim.NewKernel()
			defer k.Close()
			opts := cluster.Options{Nodes: 4, Net: net, Faults: batteryScript()}
			if reliable {
				bbp := core.DefaultConfig()
				bbp.Retry = core.DefaultRetryConfig()
				opts.BBP = &bbp
			}
			c, err := cluster.New(k, opts)
			if err != nil {
				t.Fatal(err)
			}
			o := oracle.New()
			tx, rx := o.Wrap(c.Endpoints[0]), o.Wrap(c.Endpoints[1])

			k.Spawn("tx", func(p *sim.Proc) {
				for i := 0; i < msgs; i++ {
					// Unique payloads, small enough for the hybrid's BBP
					// road, spaced across the loss window.
					msg := bytes.Repeat([]byte{byte(i + 1)}, 40)
					if err := tx.Send(p, 1, msg); err != nil && reliable {
						t.Errorf("send %d: %v", i, err)
						return
					}
					p.Delay(30 * sim.Microsecond)
				}
			})
			if reliable {
				// Blocking receives: with the retry layer underneath every
				// message arrives, and the run quiesces on its own.
				k.Spawn("rx", func(p *sim.Proc) {
					buf := make([]byte, 64)
					for i := 0; i < msgs; i++ {
						if _, err := rx.Recv(p, 0, buf); err != nil {
							t.Errorf("recv %d: %v", i, err)
							return
						}
					}
				})
				if err := k.Run(); err != nil {
					t.Fatal(err)
				}
			} else {
				// No recovery layer: drain by polling and stop at a fixed
				// horizon — a dropped frame may stall the rest of the
				// stream, which is legal here.
				k.SpawnDaemon("rx", func(p *sim.Proc) {
					buf := make([]byte, 64)
					for {
						if _, ok, err := rx.TryRecv(p, 0, buf); err != nil || !ok {
							p.Delay(20 * sim.Microsecond)
						}
					}
				})
				k.RunFor(10 * sim.Millisecond)
			}
			st, err := o.Check(reliable)
			if err != nil {
				t.Fatalf("oracle: %v (%v)", err, st)
			}
			if reliable && st.Delivered != msgs {
				t.Fatalf("delivered %d of %d", st.Delivered, msgs)
			}
			if st.Delivered == 0 {
				t.Fatalf("nothing delivered at all (%v)", st)
			}
		})
	}
}

// TestFaultScriptReplayMatches runs the battery's lossy workload twice
// on the same substrate and script and demands identical delivery sets
// — scripted faults are part of the deterministic event order.
func TestFaultScriptReplayMatches(t *testing.T) {
	run := func() string {
		k := sim.NewKernel()
		defer k.Close()
		c, err := cluster.New(k, cluster.Options{
			Nodes: 4, Net: cluster.FastEthernet, Faults: batteryScript(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		k.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				_ = c.Endpoints[0].Send(p, 1, []byte{byte(i + 1)})
				p.Delay(40 * sim.Microsecond)
			}
		})
		k.SpawnDaemon("rx", func(p *sim.Proc) {
			buf := make([]byte, 8)
			for {
				if n, ok, err := c.Endpoints[1].TryRecv(p, 0, buf); err == nil && ok && n == 1 {
					got = append(got, buf[0])
				} else {
					p.Delay(25 * sim.Microsecond)
				}
			}
		})
		k.RunFor(5 * sim.Millisecond)
		return fmt.Sprintf("%v", got)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged:\n  %s\n  %s", a, b)
	}
}
