package xport

// Fabric is a frame-level network: NICs, links, and a switch or ring.
// The TCP-lite stack (internal/tcpip) runs over any Fabric; the fabrics
// in this repository are Fast Ethernet, ATM and Myrinet.
//
// Transmit is event-driven and charges no caller CPU time: host-side
// costs (driver, DMA, interrupts) belong to the protocol stack above.
// Frames between one (src, dst) pair are delivered reliably and in
// order; that is a property of every switched fabric modeled here.
type Fabric interface {
	// Nodes is the number of attached hosts.
	Nodes() int
	// MTU is the largest frame payload the fabric accepts.
	MTU() int
	// Transmit queues frame from src's NIC to dst's. The fabric owns
	// the slice afterwards.
	Transmit(src, dst int, frame []byte)
	// SetHandler installs dst-side delivery: fn runs (in event context,
	// zero CPU charged) when a frame has fully arrived at node's NIC.
	SetHandler(node int, fn func(src int, frame []byte))
}
