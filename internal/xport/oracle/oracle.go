// Package oracle is a transparent delivery checker for any
// xport.Endpoint. Wrapping a world of endpoints records every Send and
// Mcast payload and every successful receive; Check then verifies the
// transport's contract per (sender, receiver) stream:
//
//   - no invention: every delivered message was previously sent,
//   - exactly-once: no sent message is delivered twice,
//   - in-order: deliveries are a subsequence of the send order,
//   - (optionally) completeness: every sent message was delivered.
//
// Completeness is a separate knob because lossy runs legitimately drop
// messages on transports without a recovery layer (TCP-lite has no
// retransmission); exactly-once and ordering must hold regardless, and
// a BBP endpoint with the retry extension must additionally pass the
// completeness check under the fault scripts the test suite uses.
package oracle

import (
	"bytes"
	"fmt"

	"repro/internal/sim"
	"repro/internal/xport"
)

// Oracle accumulates the send and delivery logs for one world of
// wrapped endpoints. It lives outside simulated time: recording costs
// the simulation nothing.
type Oracle struct {
	streams map[[2]int]*stream
}

// stream is the per-(sender, receiver) history.
type stream struct {
	sent      [][]byte
	delivered [][]byte
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{streams: make(map[[2]int]*stream)}
}

func (o *Oracle) stream(src, dst int) *stream {
	key := [2]int{src, dst}
	s := o.streams[key]
	if s == nil {
		s = &stream{}
		o.streams[key] = s
	}
	return s
}

// RecordSend logs a payload posted from src to dst.
func (o *Oracle) RecordSend(src, dst int, data []byte) {
	s := o.stream(src, dst)
	s.sent = append(s.sent, append([]byte(nil), data...))
}

// RecordDelivery logs a payload handed to the application at dst.
func (o *Oracle) RecordDelivery(src, dst int, data []byte) {
	s := o.stream(src, dst)
	s.delivered = append(s.delivered, append([]byte(nil), data...))
}

// Wrap returns an endpoint that forwards every call to ep and records
// sends and deliveries. Wrap every endpoint of a world with the same
// Oracle before starting traffic.
func (o *Oracle) Wrap(ep xport.Endpoint) *Endpoint {
	return &Endpoint{Endpoint: ep, o: o}
}

// Stats summarizes a Check pass.
type Stats struct {
	Streams   int
	Sent      int
	Delivered int
	Lost      int
}

func (s Stats) String() string {
	return fmt.Sprintf("streams=%d sent=%d delivered=%d lost=%d", s.Streams, s.Sent, s.Delivered, s.Lost)
}

// Check verifies every stream. Deliveries must form an in-order,
// duplicate-free subsequence of the sends; with requireAll the
// subsequence must be the whole send log (no losses). It returns the
// aggregate stats and the first violation found, if any.
func (o *Oracle) Check(requireAll bool) (Stats, error) {
	var st Stats
	for key, s := range o.streams {
		st.Streams++
		st.Sent += len(s.sent)
		st.Delivered += len(s.delivered)
		// cursor walks the send log; each delivery must match a sent
		// payload at or after it. A delivery that matches nothing ahead
		// of the cursor is an invention, a duplicate, or a reordering —
		// all contract violations.
		cursor := 0
		for di, d := range s.delivered {
			found := -1
			for i := cursor; i < len(s.sent); i++ {
				if bytes.Equal(s.sent[i], d) {
					found = i
					break
				}
			}
			if found < 0 {
				return st, fmt.Errorf("oracle: stream %d->%d delivery #%d (%d bytes) is not an in-order, exactly-once match of the send log (%d sent, cursor %d)",
					key[0], key[1], di, len(d), len(s.sent), cursor)
			}
			st.Lost += found - cursor
			cursor = found + 1
		}
		st.Lost += len(s.sent) - cursor
		if requireAll && len(s.delivered) != len(s.sent) {
			return st, fmt.Errorf("oracle: stream %d->%d lost %d of %d messages",
				key[0], key[1], len(s.sent)-len(s.delivered), len(s.sent))
		}
	}
	return st, nil
}

// Endpoint is the recording wrapper. It satisfies xport.Endpoint and
// adds no simulated cost.
type Endpoint struct {
	xport.Endpoint
	o *Oracle
}

// Inner returns the wrapped endpoint.
func (e *Endpoint) Inner() xport.Endpoint { return e.Endpoint }

// Send records the payload, then forwards. Only successful sends are
// recorded: a rejected send (ErrTooLarge, bad rank) never entered the
// transport.
func (e *Endpoint) Send(p *sim.Proc, dst int, data []byte) error {
	err := e.Endpoint.Send(p, dst, data)
	if err == nil {
		e.o.RecordSend(e.Rank(), dst, data)
	}
	return err
}

// Mcast records one send per destination, then forwards.
func (e *Endpoint) Mcast(p *sim.Proc, dsts []int, data []byte) error {
	err := e.Endpoint.Mcast(p, dsts, data)
	if err == nil {
		for _, d := range dsts {
			e.o.RecordSend(e.Rank(), d, data)
		}
	}
	return err
}

// Recv forwards and records the delivery.
func (e *Endpoint) Recv(p *sim.Proc, src int, buf []byte) (int, error) {
	n, err := e.Endpoint.Recv(p, src, buf)
	if err == nil {
		e.o.RecordDelivery(src, e.Rank(), buf[:n])
	}
	return n, err
}

// TryRecv forwards and records the delivery when one happened.
func (e *Endpoint) TryRecv(p *sim.Proc, src int, buf []byte) (n int, ok bool, err error) {
	n, ok, err = e.Endpoint.TryRecv(p, src, buf)
	if err == nil && ok {
		e.o.RecordDelivery(src, e.Rank(), buf[:n])
	}
	return n, ok, err
}

// RecvAny forwards and records the delivery.
func (e *Endpoint) RecvAny(p *sim.Proc, buf []byte) (src, n int, err error) {
	src, n, err = e.Endpoint.RecvAny(p, buf)
	if err == nil {
		e.o.RecordDelivery(src, e.Rank(), buf[:n])
	}
	return src, n, err
}

var _ xport.Endpoint = (*Endpoint)(nil)
