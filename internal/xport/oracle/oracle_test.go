package oracle_test

import (
	"testing"

	"repro/internal/xport/oracle"
)

func msg(b byte) []byte { return []byte{b, b, b} }

// record plays a send log and a delivery log into a fresh oracle on
// the 0->1 stream and returns the Check result.
func check(t *testing.T, sent, delivered []byte, requireAll bool) error {
	t.Helper()
	o := oracle.New()
	for _, b := range sent {
		o.RecordSend(0, 1, msg(b))
	}
	for _, b := range delivered {
		o.RecordDelivery(0, 1, msg(b))
	}
	_, err := o.Check(requireAll)
	return err
}

func TestOracleAcceptsCleanRun(t *testing.T) {
	if err := check(t, []byte{1, 2, 3, 4}, []byte{1, 2, 3, 4}, true); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}
}

func TestOracleAcceptsLossWithoutRequireAll(t *testing.T) {
	if err := check(t, []byte{1, 2, 3, 4}, []byte{1, 3}, false); err != nil {
		t.Fatalf("lossy-but-ordered run rejected: %v", err)
	}
}

func TestOracleRejectsLossWithRequireAll(t *testing.T) {
	if err := check(t, []byte{1, 2, 3}, []byte{1, 3}, true); err == nil {
		t.Fatal("lost message not reported under requireAll")
	}
}

func TestOracleRejectsDuplicate(t *testing.T) {
	if err := check(t, []byte{1, 2, 3}, []byte{1, 2, 2, 3}, false); err == nil {
		t.Fatal("duplicated delivery not reported")
	}
}

func TestOracleRejectsReordering(t *testing.T) {
	if err := check(t, []byte{1, 2, 3}, []byte{1, 3, 2}, false); err == nil {
		t.Fatal("reordered delivery not reported")
	}
}

func TestOracleRejectsInvention(t *testing.T) {
	if err := check(t, []byte{1, 2}, []byte{1, 9}, false); err == nil {
		t.Fatal("invented delivery not reported")
	}
}

func TestOracleCountsLosses(t *testing.T) {
	o := oracle.New()
	for _, b := range []byte{1, 2, 3, 4, 5} {
		o.RecordSend(0, 1, msg(b))
	}
	for _, b := range []byte{2, 4} {
		o.RecordDelivery(0, 1, msg(b))
	}
	st, err := o.Check(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams != 1 || st.Sent != 5 || st.Delivered != 2 || st.Lost != 3 {
		t.Fatalf("stats: %v", st)
	}
}

// TestOracleStreamsAreIndependent: a violation in one stream must be
// reported even when every other stream is clean, and clean streams
// must not inherit another stream's history.
func TestOracleStreamsAreIndependent(t *testing.T) {
	o := oracle.New()
	o.RecordSend(0, 1, msg(1))
	o.RecordDelivery(0, 1, msg(1))
	o.RecordSend(2, 3, msg(1))
	o.RecordDelivery(2, 3, msg(1))
	o.RecordDelivery(2, 3, msg(1)) // duplicate on 2->3 only
	if _, err := o.Check(false); err == nil {
		t.Fatal("duplicate on one stream of many not reported")
	}
}

// TestOracleIdenticalPayloads: repeated identical payloads are legal
// when sent repeatedly — the cursor must match them one-for-one rather
// than flagging duplicates.
func TestOracleIdenticalPayloads(t *testing.T) {
	if err := check(t, []byte{7, 7, 7}, []byte{7, 7, 7}, true); err != nil {
		t.Fatalf("repeated identical payloads rejected: %v", err)
	}
	if err := check(t, []byte{7, 7}, []byte{7, 7, 7}, false); err == nil {
		t.Fatal("extra copy beyond the send log not reported")
	}
}
