package sim

// Queue is an unbounded FIFO with blocking receive, used to pass items
// between simulated processes and event handlers. Push never blocks.
type Queue[T any] struct {
	k        *Kernel
	items    []T
	nonempty *Cond
}

// NewQueue returns an empty queue attached to k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k, nonempty: NewCond(k)}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends an item and wakes one waiting receiver.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.nonempty.Signal()
}

// TryPop removes and returns the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop blocks p until an item is available, then removes and returns it.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.nonempty.Wait(p)
	}
	v, _ := q.TryPop()
	return v
}

// PopTimeout is like Pop but gives up after d, reporting ok=false.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (T, bool) {
	deadline := p.Now().Add(d)
	for len(q.items) == 0 {
		remain := deadline.Sub(p.Now())
		if remain <= 0 || !q.nonempty.WaitTimeout(p, remain) {
			var zero T
			return zero, false
		}
	}
	v, _ := q.TryPop()
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// Server models a FIFO service center (a wire, a bus, a DMA engine): jobs
// arriving while the server is busy queue behind it in virtual time. It
// is implemented without a process: Serve computes the completion time
// and schedules a single event.
type Server struct {
	k         *Kernel
	busyUntil Time
}

// NewServer returns an idle server.
func NewServer(k *Kernel) *Server { return &Server{k: k} }

// Serve enqueues a job of the given service duration and invokes done
// (which may be nil) at its completion time. It returns the completion
// time.
func (s *Server) Serve(service Duration, done func()) Time {
	start := s.k.now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start.Add(service)
	s.busyUntil = finish
	if done != nil {
		s.k.At(finish, done)
	}
	return finish
}

// BusyUntil returns the time at which the server's current backlog
// drains.
func (s *Server) BusyUntil() Time { return s.busyUntil }
