package sim

import (
	"strings"
	"testing"
)

// workload runs a fixed mix of events, observers, labeled events and a
// process on k, and returns the number of plain fn invocations.
func workload(k *Kernel) *int {
	fired := new(int)
	bump := func() { *fired++ }
	k.At(10, bump)
	k.After(25, bump)
	k.AtKind(40, "ring", bump)
	k.AfterKind(55, "bus", bump)
	var tick func()
	n := 0
	tick = func() {
		*fired++
		n++
		if n < 3 {
			k.AfterObserver(100, tick)
		}
	}
	k.AfterObserver(100, tick)
	k.Spawn("worker", func(p *Proc) {
		p.Delay(30)
		*fired++
		p.Delay(30)
		*fired++
	})
	return fired
}

// TestProfilerZeroVirtualTime proves a profiled run is the identical
// simulation: same final clock, same executed-event count, same number
// of callback firings as an unprofiled run of the same workload.
func TestProfilerZeroVirtualTime(t *testing.T) {
	plain := NewKernel()
	fp := workload(plain)
	if err := plain.Run(); err != nil {
		t.Fatalf("plain run: %v", err)
	}

	prof := NewProfiler()
	profiled := NewKernel()
	profiled.SetProfiler(prof)
	fq := workload(profiled)
	if err := profiled.Run(); err != nil {
		t.Fatalf("profiled run: %v", err)
	}

	if plain.Now() != profiled.Now() {
		t.Errorf("final clock diverged: plain %d profiled %d", plain.Now(), profiled.Now())
	}
	if plain.Executed() != profiled.Executed() {
		t.Errorf("executed diverged: plain %d profiled %d", plain.Executed(), profiled.Executed())
	}
	if *fp != *fq {
		t.Errorf("firings diverged: plain %d profiled %d", *fp, *fq)
	}
}

// TestProfilerTotalEventsIdentity asserts the cmd/anatomy identity:
// every executed event is attributed to exactly one kind.
func TestProfilerTotalEventsIdentity(t *testing.T) {
	prof := NewProfiler()
	k := NewKernel()
	k.SetProfiler(prof)
	workload(k)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if prof.TotalEvents() != k.Executed() {
		t.Fatalf("TotalEvents %d != Executed %d", prof.TotalEvents(), k.Executed())
	}
	var sum int64
	for _, s := range prof.Stats() {
		sum += s.Events
		var bsum int64
		for _, b := range s.Buckets {
			bsum += b
		}
		if bsum != s.Events {
			t.Errorf("kind %q: bucket sum %d != events %d", s.Kind, bsum, s.Events)
		}
		if s.WallNs < 0 || s.MaxNs < 0 {
			t.Errorf("kind %q: negative wall time", s.Kind)
		}
	}
	if sum != prof.TotalEvents() {
		t.Errorf("kind sum %d != TotalEvents %d", sum, prof.TotalEvents())
	}
}

// TestProfilerKinds checks the attribution labels: explicit kinds,
// observer default and the generic bucket, plus proc resumes.
func TestProfilerKinds(t *testing.T) {
	prof := NewProfiler()
	k := NewKernel()
	k.SetProfiler(prof)
	workload(k)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := map[string]int64{
		"ring":     1,
		"bus":      1,
		"event":    2,
		"observer": 3,
		// Spawn handoff + two Delay resumes.
		"proc": 3,
	}
	got := map[string]int64{}
	for _, s := range prof.Stats() {
		got[s.Kind] = s.Events
	}
	for kind, n := range want {
		if got[kind] != n {
			t.Errorf("kind %q: got %d events, want %d (all: %v)", kind, got[kind], n, got)
		}
	}
}

// TestProfilerCanceledNotCounted verifies canceled timers are neither
// executed nor profiled.
func TestProfilerCanceledNotCounted(t *testing.T) {
	prof := NewProfiler()
	k := NewKernel()
	k.SetProfiler(prof)
	tm := k.AfterKind(10, "ring", func() { t.Error("canceled event fired") })
	tm.Stop()
	k.After(20, func() {})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if k.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", k.Executed())
	}
	if prof.TotalEvents() != 1 {
		t.Errorf("TotalEvents = %d, want 1", prof.TotalEvents())
	}
}

// TestProfilerAccumulatesAcrossKernels runs two kernels into one
// profiler, as the sweep driver does for a whole matrix.
func TestProfilerAccumulatesAcrossKernels(t *testing.T) {
	prof := NewProfiler()
	var total int64
	for i := 0; i < 2; i++ {
		k := NewKernel()
		k.SetProfiler(prof)
		workload(k)
		if err := k.Run(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		total += k.Executed()
	}
	if prof.TotalEvents() != total {
		t.Fatalf("TotalEvents %d != summed Executed %d", prof.TotalEvents(), total)
	}
}

func TestProfilerRender(t *testing.T) {
	prof := NewProfiler()
	k := NewKernel()
	k.SetProfiler(prof)
	workload(k)
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	var sb strings.Builder
	prof.Render(&sb)
	out := sb.String()
	for _, want := range []string{"kind", "ring", "proc", "observer", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	var empty strings.Builder
	NewProfiler().Render(&empty)
	if !strings.Contains(empty.String(), "no events") {
		t.Errorf("empty render = %q", empty.String())
	}
}

func TestProfBucketLayout(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1024, 11},
		{1 << 50, ProfBuckets - 1},
	}
	for _, c := range cases {
		if got := profBucket(c.v); got != c.want {
			t.Errorf("profBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}
