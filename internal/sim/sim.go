// Package sim implements a deterministic discrete-event simulation kernel
// with a virtual nanosecond clock.
//
// The kernel interleaves two kinds of activity:
//
//   - plain events: closures scheduled at an absolute virtual time with
//     Kernel.At or Kernel.After, executed on the kernel goroutine; and
//   - processes: coroutines (see Proc) that model software running on a
//     simulated CPU. A process runs exclusively — the kernel hands it a
//     token and waits until the process blocks again — so all simulation
//     state is accessed by at most one goroutine at a time and no locking
//     is needed anywhere in the models.
//
// Events with equal timestamps fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every run of a
// simulation bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports the duration as a floating-point microsecond count,
// the unit used throughout the paper's figures.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

type event struct {
	t   Time
	seq uint64
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
	// observer events (periodic monitors: metrics streams, heartbeat
	// tickers) are invisible to Pending, so several observers never keep
	// each other — or a finished simulation — alive.
	observer bool
	// kind labels the event for the self-profiler (AtKind/AfterKind);
	// empty means the generic "event" kind ("observer" when observer).
	kind string
}

// kindOf returns the profiling label of an event.
func kindOf(ev *event) string {
	if ev.kind != "" {
		return ev.kind
	}
	if ev.observer {
		return "observer"
	}
	return "event"
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Timer is a handle to a scheduled event that can be canceled before it
// fires. Canceling a timer that already fired is a no-op.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	return true
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now      Time
	seq      uint64
	events   eventHeap
	park     chan struct{}
	running  *Proc
	procs    []*Proc
	live     int
	closed   bool
	executed int64
	prof     *Profiler
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel {
	return &Kernel{park: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute time t (which must not be in the
// past) and returns a cancelable handle.
func (k *Kernel) At(t Time, fn func()) *Timer {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	ev := &event{t: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.At(k.now.Add(d), fn)
}

// AtObserver schedules fn like At but marks the event as an observer
// event: it fires normally yet is not counted by Pending. Periodic
// monitors (metrics streams, liveness tickers) schedule themselves this
// way so that each can use "Pending() == 0" to mean "only observers
// remain — the workload is done", even when several observers coexist.
func (k *Kernel) AtObserver(t Time, fn func()) *Timer {
	tm := k.At(t, fn)
	tm.ev.observer = true
	return tm
}

// AfterObserver schedules fn like After, as an observer event.
func (k *Kernel) AfterObserver(d Duration, fn func()) *Timer {
	tm := k.After(d, fn)
	tm.ev.observer = true
	return tm
}

// AtKind schedules fn like At with a profiling label: when a Profiler
// is installed, the event's wall-clock execution cost is attributed to
// kind instead of the generic "event" bucket. The label changes nothing
// else — ordering, Pending and the virtual clock are untouched.
func (k *Kernel) AtKind(t Time, kind string, fn func()) *Timer {
	tm := k.At(t, fn)
	tm.ev.kind = kind
	return tm
}

// AfterKind schedules fn like After, labeled for the profiler.
func (k *Kernel) AfterKind(d Duration, kind string, fn func()) *Timer {
	tm := k.After(d, fn)
	tm.ev.kind = kind
	return tm
}

// SetProfiler installs (or, with nil, removes) a kernel self-profiler.
// Profiling reads the host clock around each executed event and
// attributes the cost to the event's kind; it charges zero virtual
// time and cannot reorder events, so a profiled run is bit-for-bit the
// same simulation. One profiler may be shared by consecutive kernels
// to accumulate a whole benchmark sweep.
func (k *Kernel) SetProfiler(p *Profiler) { k.prof = p }

// Executed returns how many events the kernel has executed so far
// (canceled events are not counted). With a profiler installed this
// equals the profiler's TotalEvents for this kernel — the identity
// cmd/anatomy -profile cross-checks.
func (k *Kernel) Executed() int64 { return k.executed }

// step executes the next pending event. It reports false when no events
// remain.
func (k *Kernel) step() bool {
	for len(k.events) > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.canceled {
			continue
		}
		k.now = ev.t
		k.executed++
		if k.prof != nil {
			t0 := time.Now()
			ev.fn()
			k.prof.record(kindOf(ev), time.Since(t0).Nanoseconds())
		} else {
			ev.fn()
		}
		return true
	}
	return false
}

// DeadlockError reports that the event queue drained while processes were
// still blocked: nothing can ever wake them.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%d: %d process(es) blocked forever: %s",
		e.Time, len(e.Blocked), strings.Join(e.Blocked, ", "))
}

// Run executes events until none remain. It returns a *DeadlockError if
// processes are still blocked when the queue drains, and nil when every
// spawned process has terminated.
func (k *Kernel) Run() error {
	for k.step() {
	}
	return k.checkDeadlock()
}

// RunUntil executes events with timestamps <= t and then advances the
// clock to exactly t. Blocked processes are not a deadlock here: the
// caller may schedule more work and resume.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 {
		if next := k.peek(); next == nil || next.t > t {
			break
		}
		k.step()
	}
	if t > k.now {
		k.now = t
	}
}

// RunFor runs the simulation for d virtual time from now.
func (k *Kernel) RunFor(d Duration) { k.RunUntil(k.now.Add(d)) }

func (k *Kernel) peek() *event {
	for len(k.events) > 0 {
		if k.events[0].canceled {
			heap.Pop(&k.events)
			continue
		}
		return k.events[0]
	}
	return nil
}

// Pending counts scheduled, non-canceled, non-observer events still in
// the heap. A periodic observer (e.g. a metrics snapshot stream or a
// heartbeat ticker) uses it to decide whether rescheduling itself would
// keep an otherwise-finished simulation alive: when Pending is zero
// inside a timer callback, every remaining event belongs to observers,
// which all terminate themselves by the same test. Observers must
// schedule with AtObserver/AfterObserver for this to hold.
func (k *Kernel) Pending() int {
	n := 0
	for _, ev := range k.events {
		if !ev.canceled && !ev.observer {
			n++
		}
	}
	return n
}

func (k *Kernel) checkDeadlock() error {
	if k.live == 0 {
		return nil
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done && !p.daemon {
			blocked = append(blocked, p.name)
		}
	}
	sort.Strings(blocked)
	return &DeadlockError{Time: k.now, Blocked: blocked}
}

// Close terminates every still-live process (their goroutines unwind via
// an internal panic) so that a test or tool can abandon a simulation
// without leaking goroutines. The kernel must not be used afterwards.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	for _, p := range k.procs {
		if !p.done {
			p.killed = true
			k.handoff(p)
		}
	}
}
