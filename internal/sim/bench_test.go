package sim

import (
	"fmt"
	"testing"
)

// These benchmarks measure the simulator itself (real CPU time), since
// every reproduction result is bottlenecked by kernel event throughput.

func BenchmarkKernelEventDispatch(b *testing.B) {
	k := NewKernel()
	var t Time
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t += 10
		k.At(t, func() { count++ })
	}
	k.Run()
	if count != b.N {
		b.Fatalf("ran %d of %d events", count, b.N)
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	k := NewKernel()
	k.Spawn("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCondHandoffPingPong(b *testing.B) {
	k := NewKernel()
	a, c := NewCond(k), NewCond(k)
	turn := 0
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for turn != 0 {
				a.Wait(p)
			}
			turn = 1
			c.Signal()
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for turn != 1 {
				c.Wait(p)
			}
			turn = 0
			a.Signal()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkServerPipeline(b *testing.B) {
	k := NewKernel()
	servers := make([]*Server, 8)
	for i := range servers {
		servers[i] = NewServer(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var forward func(stage int)
		forward = func(stage int) {
			if stage == len(servers) {
				return
			}
			servers[stage].Serve(100, func() { forward(stage + 1) })
		}
		forward(0)
		k.Run()
	}
}

func BenchmarkManyProcsRoundRobin(b *testing.B) {
	k := NewKernel()
	const procs = 64
	for i := 0; i < procs; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < b.N/procs+1; j++ {
				p.Delay(Duration(1 + j%7))
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
