package sim

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"
)

// ProfBuckets is the fixed log2 bucket layout of the per-event wall-ns
// histograms: bucket 0 holds observations <= 0, bucket i holds
// [2^(i-1), 2^i), the last bucket is open-ended. It mirrors
// internal/metrics.NumBuckets so a published profile lands in
// structurally identical metrics histograms (internal/metrics asserts
// the match at compile time).
const ProfBuckets = 48

// KindStat is one event kind's accumulated real-time cost.
type KindStat struct {
	// Kind is the scheduling label: "proc" (a process resume — Delay,
	// Yield, Cond wake, Spawn — including all simulated software the
	// process runs before blocking again), "ring", "bus", "intr",
	// "fabric", "fault" for labeled hardware events, "observer" for
	// AtObserver/AfterObserver monitors, and "event" for everything
	// unlabeled.
	Kind string
	// Events counts executed events of this kind; WallNs is their total
	// host (wall-clock) execution time and MaxNs the single worst event.
	Events int64
	WallNs int64
	MaxNs  int64
	// Buckets is the log2 histogram of per-event wall nanoseconds.
	Buckets [ProfBuckets]int64
}

// Profiler attributes the kernel's real-time cost per event kind — the
// simulator-overhead half of ROADMAP item 5. It reads the host clock
// around each executed event but never touches the virtual clock, the
// event queue, or any model state, so a profiled run reproduces exactly
// the virtual timeline of an unprofiled one (cmd/anatomy -profile
// asserts this identity; TestProfilerZeroVirtualTime proves it).
//
// The measured values are wall-clock and therefore non-deterministic:
// a profile must never feed a byte-stable artifact (BENCH_*.json, the
// snapshot stream). Publish it into a dedicated registry via
// internal/metrics.PublishKernelProfile, or render it directly.
type Profiler struct {
	stats map[string]*KindStat
}

// NewProfiler returns an empty profiler. Install it with
// Kernel.SetProfiler; one profiler may accumulate across many kernels
// (the sweep driver profiles a whole matrix into one).
func NewProfiler() *Profiler {
	return &Profiler{stats: map[string]*KindStat{}}
}

func profBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > ProfBuckets-1 {
		return ProfBuckets - 1
	}
	return b
}

// record accumulates one executed event. Called by Kernel.step.
func (p *Profiler) record(kind string, ns int64) {
	s := p.stats[kind]
	if s == nil {
		s = &KindStat{Kind: kind}
		p.stats[kind] = s
	}
	s.Events++
	s.WallNs += ns
	if ns > s.MaxNs {
		s.MaxNs = ns
	}
	s.Buckets[profBucket(ns)]++
}

// Stats returns the per-kind attribution, sorted by descending total
// wall time (ties broken by kind name, so rendering is stable for a
// given set of measurements).
func (p *Profiler) Stats() []KindStat {
	if p == nil {
		return nil
	}
	out := make([]KindStat, 0, len(p.stats))
	for _, s := range p.stats {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallNs != out[j].WallNs {
			return out[i].WallNs > out[j].WallNs
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// TotalEvents returns the number of events profiled across all kinds.
// On a single kernel this equals Kernel.Executed() — the identity
// cmd/anatomy -profile asserts.
func (p *Profiler) TotalEvents() int64 {
	var n int64
	for _, s := range p.Stats() {
		n += s.Events
	}
	return n
}

// TotalWallNs returns the total host time spent executing events.
func (p *Profiler) TotalWallNs() int64 {
	var n int64
	for _, s := range p.Stats() {
		n += s.WallNs
	}
	return n
}

// Render writes the profile as an aligned table: one row per kind with
// its share of the total wall time, mean and max per-event cost.
func (p *Profiler) Render(w io.Writer) {
	stats := p.Stats()
	if len(stats) == 0 {
		fmt.Fprintln(w, "(no events profiled)")
		return
	}
	total := p.TotalWallNs()
	fmt.Fprintf(w, "%-10s %12s %14s %7s %12s %12s\n",
		"kind", "events", "wall", "share", "mean/event", "max/event")
	for _, s := range stats {
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.WallNs) / float64(total)
		}
		mean := int64(0)
		if s.Events > 0 {
			mean = s.WallNs / s.Events
		}
		fmt.Fprintf(w, "%-10s %12d %14s %6.1f%% %12s %12s\n",
			s.Kind, s.Events, time.Duration(s.WallNs), share,
			time.Duration(mean), time.Duration(s.MaxNs))
	}
	fmt.Fprintf(w, "%-10s %12d %14s\n", "total", p.TotalEvents(), time.Duration(total))
}
