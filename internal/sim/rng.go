package sim

// RNG is a small deterministic pseudo-random generator (splitmix64) used
// by workload generators. It is independent of math/rand so that
// simulation results cannot drift with Go releases.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [0, d).
func (r *RNG) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(d))
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	for i := range b {
		if i%8 == 0 {
			v := r.Uint64()
			for j := 0; j < 8 && i+j < len(b); j++ {
				b[i+j] = byte(v >> (8 * j))
			}
		}
	}
}

// Exp returns an exponentially distributed duration with the given mean,
// computed with a rational approximation of -ln(u) to stay reproducible
// across floating-point environments (which Go guarantees anyway; the
// approximation simply avoids math.Log's platform-tuned tables).
func (r *RNG) Exp(mean Duration) Duration {
	// Inverse-CDF with u in (0,1]; crude piecewise -ln via bit tricks is
	// not worth the obscurity, so use the straightforward series on the
	// mantissa after range reduction by powers of two.
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	// -ln(u) = k*ln2 - ln(m) with u = m * 2^-k, m in [1,2)
	k := 0
	for u < 0.5 {
		u *= 2
		k++
	}
	// ln(m) for m in [1,2) via atanh series: ln(m) = 2*atanh((m-1)/(m+1))
	x := (u - 1) / (u + 1)
	x2 := x * x
	ln := 2 * x * (1 + x2/3 + x2*x2/5 + x2*x2*x2/7 + x2*x2*x2*x2/9)
	const ln2 = 0.6931471805599453
	neglog := float64(k)*ln2 - ln
	if neglog < 0 {
		neglog = 0
	}
	return Duration(neglog * float64(mean))
}
