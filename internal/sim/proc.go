package sim

import "fmt"

// Proc is a simulated process: a coroutine scheduled by the kernel. At
// most one process executes at any instant; a running process owns the
// simulation until it blocks (Delay, Cond.Wait, ...), so process code may
// freely read and write shared model state without synchronization.
type Proc struct {
	k      *Kernel
	name   string
	id     int
	resume chan struct{}
	done   bool
	killed bool
	daemon bool
	// blockedOn is a short description of the current blocking call,
	// used by deadlock reports.
	blockedOn string
}

// killedPanic unwinds a process goroutine that the kernel terminated.
type killedPanic struct{ name string }

// Spawn starts a new process at the current virtual time. fn runs as a
// coroutine; it must perform all waiting through p (never real time or
// real channels).
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, id: len(k.procs), resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			if !p.daemon {
				k.live--
			}
			r := recover()
			if _, ok := r.(killedPanic); ok || r == nil {
				k.park <- struct{}{}
				return
			}
			// A model bug: re-panic on the kernel goroutine would hang
			// the handoff, so annotate and crash here.
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}()
		fn(p)
	}()
	k.AtKind(k.now, "proc", func() { k.handoff(p) })
	return p
}

// SpawnDaemon starts a background service process (e.g. a node's
// protocol stack). Daemons block forever between requests by design, so
// they do not count as deadlocked when the event queue drains.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	p := k.Spawn(name, fn)
	p.daemon = true
	k.live--
	return p
}

// handoff transfers control to p until it blocks or terminates.
func (k *Kernel) handoff(p *Proc) {
	if p.done {
		return
	}
	prev := k.running
	k.running = p
	p.resume <- struct{}{}
	<-k.park
	k.running = prev
}

// block parks the calling process until the kernel dispatches it again.
func (p *Proc) block(what string) {
	p.blockedOn = what
	p.k.park <- struct{}{}
	<-p.resume
	p.blockedOn = ""
	if p.killed {
		panic(killedPanic{p.name})
	}
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Delay suspends the process for d of virtual time. It models time spent
// computing or waiting; charging software path costs is done with Delay.
func (p *Proc) Delay(d Duration) {
	if d < 0 {
		panic("sim: negative delay")
	}
	if d == 0 {
		return
	}
	p.k.AfterKind(d, "proc", func() { p.k.handoff(p) })
	p.block("delay")
}

// Yield reschedules the process at the current time behind already-queued
// events, letting same-timestamp events run first.
func (p *Proc) Yield() {
	p.k.AfterKind(0, "proc", func() { p.k.handoff(p) })
	p.block("yield")
}

// Cond is a waitable condition. Unlike sync.Cond there is no mutex: the
// simulation is single-threaded by construction, so a process re-checks
// its predicate immediately upon waking.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond returns a condition attached to k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait blocks p until Signal or Broadcast wakes it. As with sync.Cond,
// callers loop: for !pred() { c.Wait(p) }.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.block("cond")
}

// WaitTimeout blocks p until the condition is signaled or d elapses.
// It reports true if woken by a signal and false on timeout.
func (c *Cond) WaitTimeout(p *Proc, d Duration) bool {
	fired := false
	timer := c.k.AfterKind(d, "proc", func() {
		fired = true
		c.remove(p)
		c.k.handoff(p)
	})
	c.waiters = append(c.waiters, p)
	p.block("cond-timeout")
	if fired {
		return false
	}
	timer.Stop()
	return true
}

func (c *Cond) remove(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.k.AfterKind(0, "proc", func() { c.k.handoff(p) })
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		w := p
		c.k.AfterKind(0, "proc", func() { c.k.handoff(w) })
	}
}
