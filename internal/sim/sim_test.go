package sim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %d, want 30", k.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: got[%d]=%d", i, got[i])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10, func() {
		k.After(5, func() { fired++ })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || k.Now() != 15 {
		t.Fatalf("fired=%d now=%d", fired, k.Now())
	}
}

func TestTimerStop(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.At(10, func() { fired = true })
	k.At(5, func() {
		if !tm.Stop() {
			t.Error("Stop returned false for pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(5, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcDelay(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("p", func(p *Proc) {
		times = append(times, p.Now())
		p.Delay(100)
		times = append(times, p.Now())
		p.Delay(50)
		times = append(times, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 100, 150}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcExclusivity(t *testing.T) {
	// Two processes incrementing a shared counter must never observe a
	// torn interleave: each runs exclusively between blocking points.
	k := NewKernel()
	shared := 0
	worker := func(p *Proc) {
		for i := 0; i < 1000; i++ {
			v := shared
			// No blocking between read and write: must be atomic w.r.t.
			// the other process.
			shared = v + 1
			p.Delay(1)
		}
	}
	k.Spawn("a", worker)
	k.Spawn("b", worker)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if shared != 2000 {
		t.Fatalf("shared = %d, want 2000", shared)
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	ready := false
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for !ready {
				c.Wait(p)
			}
			woken++
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Delay(10)
		ready = true
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	var timedOut, signaled bool
	k.Spawn("timeout", func(p *Proc) {
		timedOut = !c.WaitTimeout(p, 50)
	})
	k.Spawn("signaled", func(p *Proc) {
		p.Delay(60) // join after the first waiter timed out
		ok := c.WaitTimeout(p, 1000)
		signaled = ok
	})
	k.Spawn("signaler", func(p *Proc) {
		p.Delay(100)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("first waiter should have timed out")
	}
	if !signaled {
		t.Error("second waiter should have been signaled")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
	k.Close()
}

func TestCloseUnwindsProcesses(t *testing.T) {
	k := NewKernel()
	cleaned := false
	c := NewCond(k)
	k.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		c.Wait(p)
	})
	k.RunFor(10)
	k.Close()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on Close")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(100, func() { fired = true })
	k.RunUntil(50)
	if fired || k.Now() != 50 {
		t.Fatalf("fired=%v now=%d", fired, k.Now())
	}
	k.RunUntil(150)
	if !fired || k.Now() != 150 {
		t.Fatalf("fired=%v now=%d", fired, k.Now())
	}
	k.Close()
}

func TestQueueFIFO(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Pop(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Delay(10)
			q.Push(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("queue not FIFO: %v", got)
		}
	}
}

func TestQueuePopTimeout(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k)
	var ok1, ok2 bool
	k.Spawn("c", func(p *Proc) {
		_, ok1 = q.PopTimeout(p, 10)
		v, ok := q.PopTimeout(p, 100)
		ok2 = ok && v == "hello"
	})
	k.Spawn("p", func(p *Proc) {
		p.Delay(50)
		q.Push("hello")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ok1 {
		t.Error("first pop should time out")
	}
	if !ok2 {
		t.Error("second pop should succeed")
	}
}

func TestServerFIFOBacklog(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	var done []Time
	k.At(0, func() {
		s.Serve(100, func() { done = append(done, k.Now()) })
		s.Serve(50, func() { done = append(done, k.Now()) })
	})
	k.At(10, func() {
		s.Serve(5, func() { done = append(done, k.Now()) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{100, 150, 155}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestServerIdleRestart(t *testing.T) {
	k := NewKernel()
	s := NewServer(k)
	var completion Time
	k.At(0, func() { s.Serve(10, nil) })
	k.At(100, func() { completion = s.Serve(10, nil) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if completion != 110 {
		t.Fatalf("completion = %d, want 110 (server should idle between jobs)", completion)
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Property: two identical simulations produce identical event traces.
	run := func(seed uint64) []Time {
		k := NewKernel()
		defer k.Close()
		rng := NewRNG(seed)
		var trace []Time
		for i := 0; i < 20; i++ {
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Delay(rng.Duration(1000) + 1)
					trace = append(trace, p.Now())
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	f := func(seed uint64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 50; i++ {
			x, y := a.Intn(m), b.Intn(m)
			if x != y || x < 0 || x >= m {
				return false
			}
			fa, fb := a.Float64(), b.Float64()
			if fa != fb || fa < 0 || fa >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(42)
	const mean = 1000
	var sum Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := float64(sum) / n
	if got < 950 || got > 1050 {
		t.Fatalf("Exp mean = %.1f, want ~%d", got, mean)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{7800, "7.800µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestObserverEventsExcludedFromPending(t *testing.T) {
	k := NewKernel()
	fired := 0
	// Two periodic observers, each rearming only while real work remains:
	// because observer events never count in Pending, neither keeps the
	// other alive, and both stop after the last real event drains.
	var tickA, tickB func()
	tickA = func() {
		fired++
		if k.Pending() > 0 {
			k.AfterObserver(3, tickA)
		}
	}
	tickB = func() {
		fired++
		if k.Pending() > 0 {
			k.AfterObserver(5, tickB)
		}
	}
	k.AfterObserver(3, tickA)
	k.AfterObserver(5, tickB)
	if k.Pending() != 0 {
		t.Fatalf("observer events counted in Pending: %d", k.Pending())
	}
	k.At(20, func() {})
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("observer ticks never fired")
	}
	// Both tickers must have self-terminated: a second Run finds nothing.
	if k.Pending() != 0 {
		t.Fatalf("observers left pending work: %d", k.Pending())
	}
}

func TestObserverTimerStop(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.AtObserver(10, func() { fired = true })
	k.At(20, func() {})
	tm.Stop()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped observer timer fired")
	}
}

func TestDaemonNotADeadlock(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	served := 0
	k.SpawnDaemon("service", func(p *Proc) {
		for {
			q.Pop(p)
			served++
		}
	})
	k.Spawn("client", func(p *Proc) {
		p.Delay(10)
		q.Push(1)
		q.Push(2)
		p.Delay(10)
	})
	if err := k.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
	if served != 2 {
		t.Fatalf("served = %d, want 2", served)
	}
	k.Close()
}

func TestDaemonPlusStuckProcStillDeadlocks(t *testing.T) {
	k := NewKernel()
	c := NewCond(k)
	k.SpawnDaemon("service", func(p *Proc) { c.Wait(p) })
	k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) || len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Fatalf("err = %v", err)
	}
	k.Close()
}

func TestYieldOrdersBehindSameTimeEvents(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("p", func(p *Proc) {
		p.Delay(10)
		k.After(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v", order)
	}
}
