package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCappedRecorderEvictsOldest(t *testing.T) {
	r := NewCapped(3)
	for i := 0; i < 5; i++ {
		r.Emitf(sim.Time(i), BBP, 0, "ev", "n=%d", i)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("capped recorder holds %d events, want 3", len(evs))
	}
	if evs[0].T != 2 || evs[2].T != 4 {
		t.Fatalf("retained window is [%d,%d], want the newest [2,4]", evs[0].T, evs[2].T)
	}
	if r.Drops() != 2 {
		t.Fatalf("Drops() = %d, want 2", r.Drops())
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "evicted") {
		t.Fatalf("Render must mention evictions:\n%s", sb.String())
	}
}

func TestMayHaveDroppedMsgRange(t *testing.T) {
	r := NewCapped(2)
	a, b, c := MsgID(0, 5), MsgID(0, 9), MsgID(1, 1)
	r.EmitMsg(0, BBP, 0, "x", a, 0, "")
	r.EmitMsg(1, BBP, 0, "x", b, 0, "")
	if r.MayHaveDroppedMsg(a) {
		t.Fatal("nothing evicted yet, MayHaveDroppedMsg must be false")
	}
	r.EmitMsg(2, BBP, 0, "x", c, 0, "") // evicts the event for a
	if !r.MayHaveDroppedMsg(a) {
		t.Fatal("event of msg a was evicted, MayHaveDroppedMsg(a) must be true")
	}
	if r.MayHaveDroppedMsg(c) {
		t.Fatal("msg c is outside the evicted range")
	}
	r.Reset()
	if r.Drops() != 0 || r.MayHaveDroppedMsg(a) {
		t.Fatal("Reset must clear drop accounting")
	}
}

func TestUnboundedRecorderNeverDrops(t *testing.T) {
	r := New()
	for i := 0; i < 1000; i++ {
		r.Emit(sim.Time(i), Ring, 0, "e", "")
	}
	if r.Drops() != 0 || r.MayHaveDroppedMsg(MsgID(0, 1)) {
		t.Fatal("unbounded recorder must not report drops")
	}
	if len(r.Events()) != 1000 {
		t.Fatalf("unbounded recorder lost events: %d", len(r.Events()))
	}
}

func TestSpansJoinBeginEnd(t *testing.T) {
	r := New()
	msg := MsgID(0, 1)
	outer := r.BeginSpan(10, MPI, 0, "eager", 0, 0, "outer")
	r.PushParent(outer)
	inner := r.BeginSpan(20, BBP, 0, "post", msg, r.Parent(), "inner")
	r.PopParent()
	r.EndSpan(30, BBP, 0, "send-end", inner, msg, "done")
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].ID != outer || spans[0].Ended {
		t.Fatalf("outer span must be first and unterminated: %+v", spans[0])
	}
	in := spans[1]
	if in.Parent != outer || in.Msg != msg || !in.Ended || in.Start != 20 || in.End != 30 {
		t.Fatalf("inner span wrong: %+v", in)
	}
}

func TestNilRecorderSpanMethodsAreSafe(t *testing.T) {
	var r *Recorder
	id := r.BeginSpan(0, BBP, 0, "post", MsgID(0, 1), 0, "x")
	if id != 0 {
		t.Fatalf("nil recorder BeginSpan = %d, want 0", id)
	}
	r.EndSpan(1, BBP, 0, "end", id, 0, "x")
	r.EmitMsg(2, BBP, 0, "i", 1, 0, "x")
	r.PushParent(7)
	if r.Parent() != 0 {
		t.Fatal("nil recorder Parent() must be 0")
	}
	r.PopParent()
	if r.Drops() != 0 || r.MayHaveDroppedMsg(1) || r.Spans() != nil {
		t.Fatal("nil recorder accessors must return zero values")
	}
}

func TestMsgIDRoundTrip(t *testing.T) {
	for _, c := range []struct {
		sender int
		seq    uint32
	}{{0, 1}, {3, 0xFFFFFFFF}, {255, 42}} {
		id := MsgID(c.sender, c.seq)
		if id == 0 {
			t.Fatalf("MsgID(%d,%d) must be nonzero", c.sender, c.seq)
		}
		if MsgSender(id) != c.sender || MsgSeq(id) != c.seq {
			t.Fatalf("round trip failed for (%d,%d): got (%d,%d)",
				c.sender, c.seq, MsgSender(id), MsgSeq(id))
		}
	}
}
