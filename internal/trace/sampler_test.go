package trace

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	simt "repro/internal/sim"
)

func TestSamplerKeepDeterministic(t *testing.T) {
	s := NewSampler(4)
	// Keep is a pure function of the id: seq 1, 5, 9, ... kept for every
	// sender; recomputing at a different "hop" gives the same verdict.
	for sender := 0; sender < 3; sender++ {
		for seq := uint32(1); seq <= 12; seq++ {
			id := MsgID(sender, seq)
			want := (seq-1)%4 == 0
			if got := s.Keep(id); got != want {
				t.Errorf("Keep(%d:%d) = %v, want %v", sender, seq, got, want)
			}
			if s.Keep(id) != s.Keep(id) {
				t.Errorf("Keep(%d:%d) not stable", sender, seq)
			}
		}
	}
	// Unattributed events and nil samplers always pass.
	if !s.Keep(0) {
		t.Error("Keep(0) must be true")
	}
	var nilS *Sampler
	if !nilS.Keep(MsgID(1, 2)) {
		t.Error("nil sampler must keep everything")
	}
	if NewSampler(1).Keep(MsgID(0, 7)) != true {
		t.Error("n=1 sampler must keep everything")
	}
	if NewSampler(-3).Every() != 1 {
		t.Error("n<1 clamps to 1")
	}
}

func TestRecorderSamplerFilters(t *testing.T) {
	r := New()
	r.SetSampler(NewSampler(2))
	// seq 1 kept, seq 2 dropped, seq 3 kept, seq 4 dropped.
	for seq := uint32(1); seq <= 4; seq++ {
		id := MsgID(0, seq)
		sp := r.BeginSpan(10, BBP, 0, "send", id, 0, "")
		r.EmitMsg(20, Ring, 0, "inject", id, sp, "")
		r.EndSpan(30, BBP, 0, "send", sp, id, "")
	}
	// Unattributed events always pass.
	r.Emit(40, Host, 0, "poll", "")

	if got := len(r.Events()); got != 7 {
		t.Fatalf("kept %d events, want 7 (2 sampled msgs x3 + 1 unattributed)", got)
	}
	if r.SamplerDrops() != 6 {
		t.Errorf("SamplerDrops = %d, want 6", r.SamplerDrops())
	}
	if r.Drops() != 0 {
		t.Errorf("Drops = %d, want 0 (no capacity evictions)", r.Drops())
	}
	for seq := uint32(1); seq <= 4; seq++ {
		id := MsgID(0, seq)
		wantSampled := seq%2 == 1
		if got := r.Sampled(id); got != wantSampled {
			t.Errorf("Sampled(0:%d) = %v, want %v", seq, got, wantSampled)
		}
		// Sampler drops never poison capacity-drop accounting.
		if r.MayHaveDroppedMsg(id) {
			t.Errorf("MayHaveDroppedMsg(0:%d) true with zero capacity drops", seq)
		}
	}
	// Sampled ids have complete spans.
	for _, sp := range r.Spans() {
		if !sp.Ended {
			t.Errorf("span %d (msg %d) not ended", sp.ID, sp.Msg)
		}
	}

	smp := r.Sampler()
	if smp.Kept() != 6 || smp.Dropped() != 6 {
		t.Errorf("sampler kept/dropped = %d/%d, want 6/6", smp.Kept(), smp.Dropped())
	}
	if smp.KeepPermil() != 500 {
		t.Errorf("KeepPermil = %d, want 500", smp.KeepPermil())
	}
}

func TestSamplerCapacityDropSplit(t *testing.T) {
	// A capped+sampled recorder: capacity evictions and sampler filters
	// are accounted separately, and MayHaveDroppedMsg reflects only the
	// former.
	r := NewCapped(4)
	r.SetSampler(NewSampler(2))
	for seq := uint32(1); seq <= 8; seq++ {
		r.EmitMsg(simt.Time(seq), BBP, 0, "post", MsgID(0, seq), 0, "")
	}
	// Kept: seq 1,3,5,7 → 4 events, exactly at cap. No capacity drops.
	if r.Drops() != 0 || r.SamplerDrops() != 4 {
		t.Fatalf("drops=%d samplerDrops=%d, want 0/4", r.Drops(), r.SamplerDrops())
	}
	// Two more sampled messages force two capacity evictions (seq 1, 3).
	r.EmitMsg(simt.Time(9), BBP, 0, "post", MsgID(0, 9), 0, "")
	r.EmitMsg(simt.Time(11), BBP, 0, "post", MsgID(0, 11), 0, "")
	if r.Drops() != 2 {
		t.Fatalf("Drops = %d, want 2", r.Drops())
	}
	if !r.MayHaveDroppedMsg(MsgID(0, 1)) || !r.MayHaveDroppedMsg(MsgID(0, 3)) {
		t.Error("capacity-evicted ids must report MayHaveDroppedMsg")
	}
	// Ids above the evicted range are clean.
	if r.MayHaveDroppedMsg(MsgID(0, 11)) {
		t.Error("retained id reports MayHaveDroppedMsg")
	}

	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "evicted by the 4-event cap") {
		t.Errorf("render missing cap note:\n%s", out)
	}
	if !strings.Contains(out, "filtered by the 1-in-2 sampler") {
		t.Errorf("render missing sampler note:\n%s", out)
	}
}

func TestSamplerKeepRateGauge(t *testing.T) {
	reg := metrics.New()
	r := New()
	smp := NewSampler(4)
	r.SetSampler(smp)
	g := reg.Gauge("trace.sampler_keep_permil", metrics.NodeGlobal)
	smp.WireGauge(g)
	if g.Value() != 1000 {
		t.Errorf("initial keep rate = %d, want 1000", g.Value())
	}
	for seq := uint32(1); seq <= 8; seq++ {
		r.EmitMsg(simt.Time(seq), BBP, 0, "post", MsgID(0, seq), 0, "")
	}
	// 2 of 8 kept → 250 permil.
	if g.Value() != 250 {
		t.Errorf("keep rate = %d, want 250", g.Value())
	}
}

func TestSamplerNilSafety(t *testing.T) {
	var r *Recorder
	r.SetSampler(NewSampler(2))
	if r.Sampler() != nil {
		t.Error("nil recorder has no sampler")
	}
	if !r.Sampled(MsgID(0, 2)) {
		t.Error("nil recorder samples everything")
	}
	if r.SamplerDrops() != 0 {
		t.Error("nil recorder has no sampler drops")
	}
	var s *Sampler
	if s.Every() != 1 || s.Kept() != 0 || s.Dropped() != 0 || s.KeepPermil() != 1000 {
		t.Error("nil sampler accessors must be zero-valued")
	}
	s.WireGauge(nil) // no panic
}

func TestRecorderResetClearsSamplerDrops(t *testing.T) {
	r := New()
	r.SetSampler(NewSampler(2))
	r.EmitMsg(1, BBP, 0, "post", MsgID(0, 2), 0, "")
	if r.SamplerDrops() != 1 {
		t.Fatalf("SamplerDrops = %d, want 1", r.SamplerDrops())
	}
	r.Reset()
	if r.SamplerDrops() != 0 {
		t.Errorf("SamplerDrops after Reset = %d, want 0", r.SamplerDrops())
	}
	if r.Sampler() == nil {
		t.Error("Reset must keep the sampler installed")
	}
}
