// Head-based trace sampling.
//
// On week-long soaks a capped recorder keeps complete *recent* history:
// every message older than the ring is gone, so no old message has a
// complete span tree. A Sampler inverts the trade: it decides keep/drop
// once, at message-id origin, and the decision is a pure function of
// the id — every hop (send, ring transit, detect, consume, ack, retry,
// MPI, spin handlers) recomputes the identical verdict from the id it
// already carries, so the decision propagates with zero wire changes
// and sampled messages retain complete span trees for the whole run.
// Unsampled ids are absent by design, not dropped: internal/timeline
// simply never sees them, and capacity-drop accounting
// (MayHaveDroppedMsg) stays truthful because sampler drops are counted
// separately.
//
// Events with no message attribution (Msg == 0: MPI call spans, router
// decisions, fault-script actions, liveness verdicts) always pass —
// they are root context shared by every message.
package trace

import "repro/internal/metrics"

// Sampler is a deterministic head-based keep/drop rule over message
// ids. A nil *Sampler keeps everything (the unsampled default).
type Sampler struct {
	every uint32

	kept, dropped int64
	gauge         *metrics.Gauge
}

// NewSampler returns a sampler keeping every n-th message per sender:
// the ids whose BBP send sequence s satisfies (s-1) % n == 0, so each
// sender's first message is always sampled. n <= 1 keeps everything.
func NewSampler(n int) *Sampler {
	if n < 1 {
		n = 1
	}
	return &Sampler{every: uint32(n)}
}

// Every returns the sampling period (1 = keep all, also for nil).
func (s *Sampler) Every() int {
	if s == nil {
		return 1
	}
	return int(s.every)
}

// Keep reports the sampling verdict for a message id. It is a pure
// function of the id — any hop on any node computes the same answer,
// which is how the origin decision "propagates" without touching the
// wire. Unattributed events (msg 0) and nil samplers keep everything.
func (s *Sampler) Keep(msg uint64) bool {
	if s == nil || s.every <= 1 || msg == 0 {
		return true
	}
	return (MsgSeq(msg)-1)%s.every == 0
}

// observe accounts one recorder verdict and refreshes the keep-rate
// gauge (permil of message-attributed events kept).
func (s *Sampler) observe(keep bool) {
	if keep {
		s.kept++
	} else {
		s.dropped++
	}
	s.gauge.Set(s.KeepPermil())
}

// Kept and Dropped count message-attributed events the recorder kept
// and filtered under this sampler.
func (s *Sampler) Kept() int64 {
	if s == nil {
		return 0
	}
	return s.kept
}

func (s *Sampler) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// KeepPermil returns the observed keep rate in permil (0..1000); 1000
// before any observation.
func (s *Sampler) KeepPermil() int64 {
	if s == nil {
		return 1000
	}
	total := s.kept + s.dropped
	if total == 0 {
		return 1000
	}
	return s.kept * 1000 / total
}

// WireGauge publishes the keep rate into g on every observation
// (nil-safe on both sides).
func (s *Sampler) WireGauge(g *metrics.Gauge) {
	if s == nil {
		return
	}
	s.gauge = g
	g.Set(s.KeepPermil())
}
