package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(0, Ring, 0, "x", "")
	r.Emitf(0, BBP, 0, "y", "%d", 1)
	if r.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
	r.Reset()
	if _, ok := r.Span("a", "b"); ok {
		t.Fatal("nil recorder found a span")
	}
	var sb strings.Builder
	r.Render(&sb)
	if !strings.Contains(sb.String(), "no events") {
		t.Fatalf("render = %q", sb.String())
	}
}

func TestEmitAndSpan(t *testing.T) {
	r := New()
	r.Emit(100, BBP, 0, "post", "slot=0")
	r.Emit(250, Ring, 0, "inject", "")
	r.Emit(900, BBP, 1, "consume", "slot=0")
	if len(r.Events()) != 3 {
		t.Fatalf("%d events", len(r.Events()))
	}
	span, ok := r.Span("post", "consume")
	if !ok || span != 800 {
		t.Fatalf("span = %v ok=%v", span, ok)
	}
	if _, ok := r.Span("post", "missing"); ok {
		t.Fatal("span to missing event reported ok")
	}
	if r.Count("inject") != 1 || r.Count("nothing") != 0 {
		t.Fatal("counts wrong")
	}
}

func TestRenderFormatsDeltas(t *testing.T) {
	r := New()
	r.Emit(1000, Host, 2, "write", "w=1")
	r.Emit(1600, Ring, 3, "apply", "off=0")
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"write", "apply", "600ns", "host", "ring"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Emit(1, BBP, 0, "a", "")
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSpanOrderingGuard(t *testing.T) {
	r := New()
	r.Emit(500, BBP, 0, "late", "")
	r.Emit(100, BBP, 0, "early", "")
	// Span from a later event to an earlier one must not report ok.
	if _, ok := r.Span("late", "early"); ok {
		t.Fatal("negative span reported ok")
	}
	_ = sim.Time(0) // keep the sim import meaningful for Time types
}
