// Package trace records timestamped protocol events from the simulated
// hardware and the BillBoard Protocol, so a message's life — post,
// replication, detection, consumption, acknowledgement — can be laid
// out on the virtual timeline. cmd/anatomy uses it to print the
// breakdown behind the paper's 7.8 µs headline number.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Category classifies an event source.
type Category string

// Event categories.
const (
	Ring Category = "ring" // packet injected/applied on the SCRAMNet ring
	BBP  Category = "bbp"  // BillBoard Protocol actions
	Host Category = "host" // host-side bus operations
)

// Event is one timestamped occurrence.
type Event struct {
	T      sim.Time
	Cat    Category
	Node   int
	Name   string
	Detail string
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so instrumented code needs no guards beyond the method call.
type Recorder struct {
	evs []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Emit appends an event (no-op on a nil recorder).
func (r *Recorder) Emit(t sim.Time, cat Category, node int, name, detail string) {
	if r == nil {
		return
	}
	r.evs = append(r.evs, Event{T: t, Cat: cat, Node: node, Name: name, Detail: detail})
}

// Emitf is Emit with a formatted detail string; the formatting cost is
// skipped entirely on a nil recorder.
func (r *Recorder) Emitf(t sim.Time, cat Category, node int, name, format string, args ...any) {
	if r == nil {
		return
	}
	r.evs = append(r.evs, Event{T: t, Cat: cat, Node: node, Name: name, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the recorded events in emission order (which is
// timestamp order, since the simulation clock is monotonic).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.evs
}

// Reset discards recorded events.
func (r *Recorder) Reset() {
	if r != nil {
		r.evs = r.evs[:0]
	}
}

// Render writes the timeline as an aligned table with deltas between
// consecutive events.
func (r *Recorder) Render(w io.Writer) {
	if r == nil || len(r.evs) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	t0 := r.evs[0].T
	prev := t0
	fmt.Fprintf(w, "%12s %10s  %-5s node  %-16s %s\n", "t", "+delta", "cat", "event", "detail")
	for _, e := range r.evs {
		fmt.Fprintf(w, "%10dns %8dns  %-5s %4d  %-16s %s\n",
			int64(e.T-t0), int64(e.T-prev), e.Cat, e.Node, e.Name, e.Detail)
		prev = e.T
	}
}

// Span returns the duration between the first event matching `from` and
// the last matching `to` (by name); ok is false if either is absent.
func (r *Recorder) Span(from, to string) (sim.Duration, bool) {
	if r == nil {
		return 0, false
	}
	var start, end sim.Time
	haveStart, haveEnd := false, false
	for _, e := range r.evs {
		if !haveStart && e.Name == from {
			start, haveStart = e.T, true
		}
		if e.Name == to {
			end, haveEnd = e.T, true
		}
	}
	if !haveStart || !haveEnd || end < start {
		return 0, false
	}
	return end.Sub(start), true
}

// Count returns how many events carry the given name.
func (r *Recorder) Count(name string) int {
	n := 0
	for _, e := range r.Events() {
		if e.Name == name {
			n++
		}
	}
	return n
}
