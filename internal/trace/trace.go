// Package trace records timestamped protocol events from the simulated
// hardware and the BillBoard Protocol, so a message's life — post,
// replication, detection, consumption, acknowledgement — can be laid
// out on the virtual timeline. cmd/anatomy uses it to print the
// breakdown behind the paper's 7.8 µs headline number.
//
// Beyond flat events, the recorder is span-structured: every BBP
// message carries a cluster-unique id (MsgID), assigned at Send/Mcast
// and propagated through ring injection, replication, detection,
// consume, acknowledgement, retry, the MPI layers and the hybrid
// router. Begin/End events open and close spans with parent links, so
// cmd/timeline can rebuild a causal tree for any message and export it
// as a Chrome trace. Within one node the parent link is explicit;
// across nodes the message id is the join key (nothing extra ever
// crosses the simulated wire).
//
// A recorder built with NewCapped keeps only the newest events in a
// fixed ring, counting what it evicted, so long fault sweeps cannot
// grow memory without bound. For soak-length runs a head-based Sampler
// (see sampler.go) complements the cap: instead of complete recent
// history it keeps complete span trees for every n-th message id,
// deciding once at id origin with the decision recomputed at every hop.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Category classifies an event source.
type Category string

// Event categories.
const (
	Ring   Category = "ring"  // packet injected/applied on the SCRAMNet ring
	BBP    Category = "bbp"   // BillBoard Protocol actions
	Host   Category = "host"  // host-side bus operations
	MPI    Category = "mpi"   // MPICH layers above the channel device
	Hybrid Category = "hyb"   // hybrid router decisions
	Fault  Category = "fault" // injected fault-script actions
	Live   Category = "live"  // liveness detector verdicts (suspect/dead/rejoin)
	Spin   Category = "spin"  // in-network handler execution at ring transit points
)

// SpanID identifies one span within a recorder; 0 means "no span".
type SpanID uint64

// Kind distinguishes instantaneous events from span boundaries.
type Kind uint8

const (
	// Instant is a point event (the zero value, so Emit/Emitf produce
	// instants as they always did).
	Instant Kind = iota
	// Begin opens the span named in Event.Span.
	Begin
	// End closes it.
	End
)

func (k Kind) String() string {
	switch k {
	case Begin:
		return "B"
	case End:
		return "E"
	}
	return "."
}

// MsgID derives the cluster-unique message id from a sender rank and
// its BBP send sequence. The sequence starts at 1, so a valid id is
// never zero (0 means "no message attribution"). The receiver can
// reconstruct the id from the descriptor alone — no wire change.
func MsgID(sender int, seq uint32) uint64 {
	return uint64(uint32(sender))<<32 | uint64(seq)
}

// MsgSender and MsgSeq invert MsgID.
func MsgSender(msg uint64) int { return int(uint32(msg >> 32)) }
func MsgSeq(msg uint64) uint32 { return uint32(msg) }

// Event is one timestamped occurrence.
type Event struct {
	T      sim.Time
	Cat    Category
	Node   int
	Name   string
	Detail string
	// Kind marks span boundaries; Span is the span a Begin/End event
	// opens/closes; Parent is the causal parent span (same-node link);
	// Msg attributes the event to one BBP message (0 = unattributed).
	Kind   Kind
	Span   SpanID
	Parent SpanID
	Msg    uint64
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so instrumented code needs no guards beyond the method call.
type Recorder struct {
	evs   []Event
	cap   int // 0 = unbounded
	start int // ring start index once the capped buffer wrapped

	nextSpan SpanID
	parents  []SpanID // ambient parent stack (see PushParent)

	drops          int64
	dropLo, dropHi uint64 // msg-id range seen on evicted events
	droppedMsg     bool

	smp          *Sampler
	samplerDrops int64
}

// New returns an empty, unbounded recorder.
func New() *Recorder { return &Recorder{} }

// NewCapped returns a recorder that retains only the newest n events:
// once full it evicts the oldest event for each new one, counting the
// evictions (Drops) and remembering the message-id range they covered
// (MayHaveDroppedMsg). This bounds tracing memory on long fault sweeps.
func NewCapped(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{cap: n, evs: make([]Event, 0, n)}
}

// SetSampler installs (or, with nil, removes) a head-based sampler:
// message-attributed events whose id the sampler rejects are filtered
// before they reach the buffer, counted in SamplerDrops — separately
// from capacity evictions, so MayHaveDroppedMsg keeps meaning "the cap
// may have eaten this message's events" and never fires for ids that
// were simply not sampled.
func (r *Recorder) SetSampler(s *Sampler) {
	if r == nil {
		return
	}
	r.smp = s
}

// Sampler returns the installed sampler (nil when unsampled).
func (r *Recorder) Sampler() *Sampler {
	if r == nil {
		return nil
	}
	return r.smp
}

// Sampled reports whether events for msg pass the sampler (always true
// without one). Callers that do per-message post-processing use it to
// distinguish absent-by-design ids from genuinely missing data.
func (r *Recorder) Sampled(msg uint64) bool {
	if r == nil {
		return true
	}
	return r.smp.Keep(msg)
}

// SamplerDrops returns how many message-attributed events the sampler
// filtered (distinct from Drops, the capacity evictions).
func (r *Recorder) SamplerDrops() int64 {
	if r == nil {
		return 0
	}
	return r.samplerDrops
}

// add appends e, evicting the oldest event when capped and full.
func (r *Recorder) add(e Event) {
	if e.Msg != 0 && r.smp != nil {
		keep := r.smp.Keep(e.Msg)
		r.smp.observe(keep)
		if !keep {
			r.samplerDrops++
			return
		}
	}
	if r.cap > 0 && len(r.evs) == r.cap {
		old := r.evs[r.start]
		r.drops++
		if old.Msg != 0 {
			if !r.droppedMsg {
				r.dropLo, r.dropHi = old.Msg, old.Msg
				r.droppedMsg = true
			} else {
				if old.Msg < r.dropLo {
					r.dropLo = old.Msg
				}
				if old.Msg > r.dropHi {
					r.dropHi = old.Msg
				}
			}
		}
		r.evs[r.start] = e
		r.start = (r.start + 1) % r.cap
		return
	}
	r.evs = append(r.evs, e)
}

// Drops returns how many events a capped recorder has evicted.
func (r *Recorder) Drops() int64 {
	if r == nil {
		return 0
	}
	return r.drops
}

// MayHaveDroppedMsg conservatively reports whether any evicted event
// could have belonged to msg: true iff events were dropped and msg lies
// in the [min,max] id range observed on message-attributed evictions.
// False positives are possible (the range is a summary), false
// negatives are not.
func (r *Recorder) MayHaveDroppedMsg(msg uint64) bool {
	if r == nil || r.drops == 0 || !r.droppedMsg {
		return false
	}
	return msg >= r.dropLo && msg <= r.dropHi
}

// Emit appends an instant event (no-op on a nil recorder).
func (r *Recorder) Emit(t sim.Time, cat Category, node int, name, detail string) {
	if r == nil {
		return
	}
	r.add(Event{T: t, Cat: cat, Node: node, Name: name, Detail: detail})
}

// Emitf is Emit with a formatted detail string; the formatting cost is
// skipped entirely on a nil recorder.
func (r *Recorder) Emitf(t sim.Time, cat Category, node int, name, format string, args ...any) {
	if r == nil {
		return
	}
	r.add(Event{T: t, Cat: cat, Node: node, Name: name, Detail: fmt.Sprintf(format, args...)})
}

// EmitMsg appends an instant event attributed to message msg with an
// explicit parent span (either may be zero).
func (r *Recorder) EmitMsg(t sim.Time, cat Category, node int, name string, msg uint64, parent SpanID, format string, args ...any) {
	if r == nil {
		return
	}
	r.add(Event{T: t, Cat: cat, Node: node, Name: name, Msg: msg, Parent: parent, Detail: fmt.Sprintf(format, args...)})
}

// BeginSpan opens a new span and returns its id (0 on a nil recorder,
// which every span-taking method accepts).
func (r *Recorder) BeginSpan(t sim.Time, cat Category, node int, name string, msg uint64, parent SpanID, format string, args ...any) SpanID {
	if r == nil {
		return 0
	}
	r.nextSpan++
	id := r.nextSpan
	r.add(Event{T: t, Cat: cat, Node: node, Name: name, Kind: Begin, Span: id, Parent: parent, Msg: msg, Detail: fmt.Sprintf(format, args...)})
	return id
}

// EndSpan closes span id (no-op when the recorder is nil or id is 0).
func (r *Recorder) EndSpan(t sim.Time, cat Category, node int, name string, id SpanID, msg uint64, format string, args ...any) {
	if r == nil || id == 0 {
		return
	}
	r.add(Event{T: t, Cat: cat, Node: node, Name: name, Kind: End, Span: id, Msg: msg, Detail: fmt.Sprintf(format, args...)})
}

// PushParent establishes span id as the ambient causal parent: spans
// begun by lower layers (e.g. a BBP post under an MPI send) adopt it
// via Parent(). Balanced with PopParent; nil-safe.
func (r *Recorder) PushParent(id SpanID) {
	if r == nil {
		return
	}
	r.parents = append(r.parents, id)
}

// PopParent removes the most recent ambient parent.
func (r *Recorder) PopParent() {
	if r == nil || len(r.parents) == 0 {
		return
	}
	r.parents = r.parents[:len(r.parents)-1]
}

// Parent returns the current ambient parent span (0 when none).
func (r *Recorder) Parent() SpanID {
	if r == nil || len(r.parents) == 0 {
		return 0
	}
	return r.parents[len(r.parents)-1]
}

// Events returns the recorded events in emission order (which is
// timestamp order, since the simulation clock is monotonic). On a
// capped recorder that wrapped, these are the newest Cap events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.start == 0 {
		return r.evs
	}
	out := make([]Event, 0, len(r.evs))
	out = append(out, r.evs[r.start:]...)
	out = append(out, r.evs[:r.start]...)
	return out
}

// Reset discards recorded events and drop accounting (capacity and the
// span-id sequence are kept, so ids stay unique across a Reset).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.evs = r.evs[:0]
	r.start = 0
	r.drops = 0
	r.droppedMsg = false
	r.samplerDrops = 0
	r.parents = r.parents[:0]
}

// Render writes the timeline as an aligned table with deltas between
// consecutive events.
func (r *Recorder) Render(w io.Writer) {
	evs := r.Events()
	if len(evs) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	t0 := evs[0].T
	prev := t0
	fmt.Fprintf(w, "%12s %10s  %-5s node %s %-16s %s\n", "t", "+delta", "cat", "k", "event", "detail")
	for _, e := range evs {
		detail := e.Detail
		if e.Msg != 0 {
			detail = fmt.Sprintf("%s msg=%d:%d", detail, MsgSender(e.Msg), MsgSeq(e.Msg))
		}
		fmt.Fprintf(w, "%10dns %8dns  %-5s %4d %s %-16s %s\n",
			int64(e.T-t0), int64(e.T-prev), e.Cat, e.Node, e.Kind, e.Name, detail)
		prev = e.T
	}
	if d := r.Drops(); d > 0 {
		fmt.Fprintf(w, "(%d older events evicted by the %d-event cap)\n", d, r.cap)
	}
	if d := r.SamplerDrops(); d > 0 {
		fmt.Fprintf(w, "(%d events filtered by the 1-in-%d sampler)\n", d, r.smp.Every())
	}
}

// Span returns the duration between the first event matching `from` and
// the last matching `to` (by name); ok is false if either is absent.
func (r *Recorder) Span(from, to string) (sim.Duration, bool) {
	if r == nil {
		return 0, false
	}
	var start, end sim.Time
	haveStart, haveEnd := false, false
	for _, e := range r.Events() {
		if !haveStart && e.Name == from {
			start, haveStart = e.T, true
		}
		if e.Name == to {
			end, haveEnd = e.T, true
		}
	}
	if !haveStart || !haveEnd || end < start {
		return 0, false
	}
	return end.Sub(start), true
}

// Count returns how many events carry the given name.
func (r *Recorder) Count(name string) int {
	n := 0
	for _, e := range r.Events() {
		if e.Name == name {
			n++
		}
	}
	return n
}

// SpanRec is one reconstructed span: its Begin event joined with its
// End event (if recorded).
type SpanRec struct {
	ID     SpanID
	Parent SpanID
	Msg    uint64
	Cat    Category
	Node   int
	Name   string
	Detail string
	Start  sim.Time
	End    sim.Time
	Ended  bool
}

// Spans reconstructs every span from the Begin/End events currently
// retained, in begin order. A span whose Begin was evicted by the cap
// does not appear; one whose End is missing has Ended=false.
func (r *Recorder) Spans() []SpanRec {
	if r == nil {
		return nil
	}
	var out []SpanRec
	idx := map[SpanID]int{}
	for _, e := range r.Events() {
		switch e.Kind {
		case Begin:
			idx[e.Span] = len(out)
			out = append(out, SpanRec{
				ID: e.Span, Parent: e.Parent, Msg: e.Msg,
				Cat: e.Cat, Node: e.Node, Name: e.Name, Detail: e.Detail,
				Start: e.T, End: e.T,
			})
		case End:
			if i, ok := idx[e.Span]; ok {
				out[i].End = e.T
				out[i].Ended = true
			}
		}
	}
	return out
}
