package core

// This file wires heartbeat-based membership (internal/liveness) into
// the BillBoard Protocol. Enabled by Config.Liveness, it adds:
//
//   - a global single-writer heartbeat table ahead of the partitions
//     (layout.hbBeat/hbInc): one (beat, incarnation) word pair per
//     node, each written only by its owner, replicated by the ring like
//     any other write;
//   - a per-endpoint heartbeat daemon (hbLoop) that each Period
//     publishes the local pair, burst-reads the whole table in one wide
//     read (like the MESSAGE flag region), and feeds the samples into a
//     liveness.Detector;
//   - a link-epoch check: when the card reports carrier loss and later
//     recovery, the node bumps its incarnation and resets its detector,
//     so it rejoins as a fresh identity and its partition-era verdicts
//     are discarded (peers fence the old incarnation either way);
//   - dead-peer reclaim: collect() treats a confirmed-dead receiver's
//     ACK obligation as abandoned, so the garbage collector and the
//     retry daemon free buffers within a detector-bound delay instead
//     of burning MaxRetries × Timeout per message — including the
//     multicast case where one dead receiver in a group used to pin
//     the buffer until retry exhaustion.
//
// All daemons are woken by one shared observer-event ticker per System,
// so the subsystem costs one kernel event per period and never keeps a
// finished simulation alive (see sim.Kernel.AfterObserver).

import (
	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// armHbTicker schedules the next shared heartbeat tick. The tick is an
// observer event: when only observers remain in the kernel the workload
// has drained, and the ticker lets the simulation end by simply not
// rearming (the daemons stay blocked on hbWake; they are daemons, so
// that is not a deadlock).
func (s *System) armHbTicker() {
	k := s.net.Kernel()
	k.AfterObserver(s.cfg.Liveness.Period, func() {
		if k.Pending() == 0 {
			return
		}
		s.hbWake.Broadcast()
		s.armHbTicker()
	})
}

// hbState is one endpoint's half of the liveness subsystem: the
// publisher state and the failure detector it feeds.
type hbState struct {
	det  *liveness.Detector
	beat uint32
	inc  uint32
	// sawDown latches a carrier loss until the link recovers, at which
	// point the endpoint bumps inc and resets det (a link epoch).
	sawDown bool
	buf     []uint32 // scratch for the one-burst table read

	beats        *metrics.Counter // liveness.beats
	selfRejoins  *metrics.Counter // liveness.self_rejoins
	deadReclaims *metrics.Counter // bbp.dead_peer_reclaims
	incGauge     *metrics.Gauge   // liveness.incarnation
}

func (e *Endpoint) initLiveness() {
	m := e.sys.metrics
	e.hb = &hbState{
		det: liveness.NewDetector(e.me, e.Procs(), e.sys.cfg.Liveness,
			e.sys.net.Kernel().Now(), e.sys.tracer, m),
		inc:          1, // 0 means "never booted" in zero-initialized memory
		buf:          make([]uint32, 2*e.Procs()),
		beats:        m.Counter("liveness.beats", e.me),
		selfRejoins:  m.Counter("liveness.self_rejoins", e.me),
		deadReclaims: m.Counter("bbp.dead_peer_reclaims", e.me),
		incGauge:     m.Gauge("liveness.incarnation", e.me),
	}
	e.hb.incGauge.Set(int64(e.hb.inc))
}

// Liveness exposes the endpoint's membership view (liveness.Provider).
// It returns nil when Config.Liveness is disabled.
func (e *Endpoint) Liveness() liveness.View {
	if e.hb == nil {
		return nil
	}
	return e.hb.det
}

// LivenessStats returns detector transition counts (zero when the
// subsystem is disabled).
func (e *Endpoint) LivenessStats() liveness.Stats {
	if e.hb == nil {
		return liveness.Stats{}
	}
	return e.hb.det.Stats()
}

// hbLoop is the heartbeat daemon: publish + scan once per shared tick.
func (e *Endpoint) hbLoop(p *sim.Proc) {
	for {
		e.sys.hbWake.Wait(p)
		e.hbTick(p)
	}
}

func (e *Endpoint) hbTick(p *sim.Proc) {
	lay, hb := e.sys.lay, e.hb
	now := p.Now()

	up := e.nic.LinkUp()
	switch {
	case !up && !hb.sawDown:
		hb.sawDown = true
		e.sys.tracer.Emitf(now, trace.Live, e.me, "link-down", "inc=%d", hb.inc)
	case up && hb.sawDown:
		// The link came back after an outage: everything this node
		// observed (and everything peers observed about it) during the
		// partition is stale. Rejoin as a fresh incarnation and restart
		// the local detector's clocks; peers fence the old identity
		// until this new incarnation reaches them.
		hb.sawDown = false
		hb.inc++
		hb.det.Reset(now)
		hb.det.AddSelfRejoin()
		hb.selfRejoins.Inc()
		hb.incGauge.Set(int64(hb.inc))
		e.sys.tracer.Emitf(now, trace.Live, e.me, "self-rejoin", "inc=%d", hb.inc)
	}

	// Publish, incarnation word first: the ring preserves per-sender
	// write order, so any observer that sees the new beat also sees the
	// incarnation it belongs to. Both words are rewritten every tick —
	// a tick lost to a loss window heals on the next one.
	hb.beat++
	e.nic.WriteWord(p, lay.hbInc(e.me), hb.inc)
	e.nic.WriteWord(p, lay.hbBeat(e.me), hb.beat)
	hb.det.AddBeat()
	hb.beats.Inc()

	if !up {
		// A frozen replica proves nothing about the peers; verdicts
		// formed now would all be false. Hold the detector until the
		// link epoch turns over.
		return
	}
	// One wide read covers every peer's pair, like a burst poll of the
	// MESSAGE flag region.
	e.nic.ReadWords(p, 0, hb.buf)
	now = p.Now()
	for s := 0; s < e.Procs(); s++ {
		if s == e.me {
			continue
		}
		hb.det.Observe(now, s, hb.buf[2*s], hb.buf[2*s+1])
	}
	hb.det.Tick(now)
}

// deadPeer reports whether the detector has confirmed r dead. Safe to
// call with liveness disabled (always false).
func (e *Endpoint) deadPeer(r int) bool {
	return e.hb != nil && e.hb.det.State(r) == liveness.Dead
}
