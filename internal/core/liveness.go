package core

// This file wires heartbeat-based membership (internal/liveness) into
// the BillBoard Protocol. Enabled by Config.Liveness, it adds:
//
//   - a global single-writer heartbeat table ahead of the partitions
//     (layout.hbBeat/hbInc): one (beat, incarnation) word pair per
//     node, each written only by its owner, replicated by the ring like
//     any other write;
//   - a per-endpoint heartbeat daemon (hbLoop) that each Period
//     publishes the local pair, burst-reads the whole table in one wide
//     read (like the MESSAGE flag region), and feeds the samples into a
//     liveness.Detector;
//   - a link-epoch check: when the card reports carrier loss and later
//     recovery, the node bumps its incarnation and resets its detector,
//     so it rejoins as a fresh identity and its partition-era verdicts
//     are discarded (peers fence the old incarnation either way);
//   - dead-peer reclaim: collect() treats a confirmed-dead receiver's
//     ACK obligation as abandoned, so the garbage collector and the
//     retry daemon free buffers within a detector-bound delay instead
//     of burning MaxRetries × Timeout per message — including the
//     multicast case where one dead receiver in a group used to pin
//     the buffer until retry exhaustion.
//
// All daemons are woken by one shared observer-event ticker per System,
// so the subsystem costs one kernel event per period and never keeps a
// finished simulation alive (see sim.Kernel.AfterObserver).

import (
	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// armHbTicker schedules the next shared heartbeat tick. The tick is an
// observer event: when only observers remain in the kernel the workload
// has drained, and the ticker lets the simulation end by simply not
// rearming (the daemons stay blocked on hbWake; they are daemons, so
// that is not a deadlock).
func (s *System) armHbTicker() {
	k := s.net.Kernel()
	k.AfterObserver(s.cfg.Liveness.Period, func() {
		if k.Pending() == 0 {
			return
		}
		s.hbWake.Broadcast()
		s.armHbTicker()
	})
}

// hbState is one endpoint's half of the liveness subsystem: the
// publisher state and the failure detector it feeds.
type hbState struct {
	det  *liveness.Detector
	beat uint32
	inc  uint32
	// sawDown latches a carrier loss until the link recovers, at which
	// point the endpoint bumps inc and resets det (a link epoch).
	sawDown bool
	buf     []uint32 // scratch for the one-burst table read

	beats        *metrics.Counter // liveness.beats
	selfRejoins  *metrics.Counter // liveness.self_rejoins
	deadReclaims *metrics.Counter // bbp.dead_peer_reclaims
	fencedSends  *metrics.Counter // liveness.fenced_sends
	incGauge     *metrics.Gauge   // liveness.incarnation
}

func (e *Endpoint) initLiveness() {
	m := e.sys.metrics
	e.hb = &hbState{
		det: liveness.NewDetector(e.me, e.Procs(), e.sys.cfg.Liveness,
			e.sys.net.Kernel().Now(), e.sys.tracer, m),
		inc:          1, // 0 means "never booted" in zero-initialized memory
		buf:          make([]uint32, 2*e.Procs()),
		beats:        m.Counter("liveness.beats", e.me),
		selfRejoins:  m.Counter("liveness.self_rejoins", e.me),
		deadReclaims: m.Counter("bbp.dead_peer_reclaims", e.me),
		fencedSends:  m.Counter("liveness.fenced_sends", e.me),
		incGauge:     m.Gauge("liveness.incarnation", e.me),
	}
	e.hb.incGauge.Set(int64(e.hb.inc))
}

// Liveness exposes the endpoint's membership view (liveness.Provider).
// It returns nil when Config.Liveness is disabled.
func (e *Endpoint) Liveness() liveness.View {
	if e.hb == nil {
		return nil
	}
	return e.hb.det
}

// Partition exposes the endpoint's declared ring partition, if any
// (liveness.PartitionView). Always false when liveness is disabled.
func (e *Endpoint) Partition() (liveness.PartitionInfo, bool) {
	if e.hb == nil {
		return liveness.PartitionInfo{}, false
	}
	return e.hb.det.Partition()
}

// LivenessStats returns detector transition counts (zero when the
// subsystem is disabled).
func (e *Endpoint) LivenessStats() liveness.Stats {
	if e.hb == nil {
		return liveness.Stats{}
	}
	return e.hb.det.Stats()
}

// hbLoop is the heartbeat daemon: publish + scan once per shared tick.
func (e *Endpoint) hbLoop(p *sim.Proc) {
	for {
		e.sys.hbWake.Wait(p)
		e.hbTick(p)
	}
}

func (e *Endpoint) hbTick(p *sim.Proc) {
	lay, hb := e.sys.lay, e.hb
	now := p.Now()

	up := e.nic.LinkUp()
	switch {
	case !up && !hb.sawDown:
		hb.sawDown = true
		e.sys.tracer.Emitf(now, trace.Live, e.me, "link-down", "inc=%d", hb.inc)
	case up && hb.sawDown:
		// The link came back after an outage: everything this node
		// observed (and everything peers observed about it) during the
		// partition is stale. Rejoin as a fresh incarnation and restart
		// the local detector's clocks; peers fence the old identity
		// until this new incarnation reaches them.
		hb.sawDown = false
		hb.inc++
		hb.det.Reset(now)
		hb.det.AddSelfRejoin()
		hb.selfRejoins.Inc()
		hb.incGauge.Set(int64(hb.inc))
		e.sys.tracer.Emitf(now, trace.Live, e.me, "self-rejoin", "inc=%d", hb.inc)
	}

	// Publish, incarnation word first: the ring preserves per-sender
	// write order, so any observer that sees the new beat also sees the
	// incarnation it belongs to. Both words are rewritten every tick —
	// a tick lost to a loss window heals on the next one.
	hb.beat++
	e.nic.WriteWord(p, lay.hbInc(e.me), hb.inc)
	e.nic.WriteWord(p, lay.hbBeat(e.me), hb.beat)
	hb.det.AddBeat()
	hb.beats.Inc()

	if !up {
		// A frozen replica proves nothing about the peers; verdicts
		// formed now would all be false. Hold the detector until the
		// link epoch turns over.
		return
	}
	// Ring status sample: the severed-segment count is the hardware
	// corroboration the partition machinery requires to distinguish an
	// unreachable arc from dead peers, and its return to a healable
	// level is what clears a declared partition.
	hb.det.ObserveRing(now, e.nic.RingCuts())
	// One wide read covers every peer's pair, like a burst poll of the
	// MESSAGE flag region.
	e.nic.ReadWords(p, 0, hb.buf)
	now = p.Now()
	for s := 0; s < e.Procs(); s++ {
		if s == e.me {
			continue
		}
		hb.det.Observe(now, s, hb.buf[2*s], hb.buf[2*s+1])
	}
	hb.det.Tick(now)
	if hb.det.TakeResync() {
		e.partitionResync(p)
	}
}

// partitionResync re-publishes this node's billboard state after it
// returns from the minority side of a partition. The node takes a fresh
// incarnation — peers accept the rejoin through the existing fencing
// path — then every occupied retry slot is scheduled for an immediate
// retransmission with a fresh backoff budget, and the MIN-UNACKED words
// are force-republished. The receiver-side re-ack path reconciles the
// rest: a retransmitted descriptor whose sequence was already consumed
// is re-acknowledged without redelivery, so messages posted before or
// during the fence deliver exactly once across the heal.
func (e *Endpoint) partitionResync(p *sim.Proc) {
	lay, hb := e.sys.lay, e.hb
	hb.inc++
	hb.det.AddSelfRejoin()
	hb.selfRejoins.Inc()
	hb.incGauge.Set(int64(hb.inc))
	e.nic.WriteWord(p, lay.hbInc(e.me), hb.inc)
	e.nic.WriteWord(p, lay.hbBeat(e.me), hb.beat)
	slots := 0
	if e.sys.cfg.Retry.Enabled {
		for s := range e.live {
			lb := &e.live[s]
			if lb.used {
				lb.posted = sim.Time(0)
				lb.attempts = 0
				slots++
			}
		}
		e.syncMinUn(p, true)
		e.retryWake.Signal()
	}
	e.sys.tracer.Emitf(p.Now(), trace.Live, e.me, "partition-resync", "inc=%d slots=%d", hb.inc, slots)
}

// deadPeer reports whether the detector has confirmed r dead. Safe to
// call with liveness disabled (always false). A confirmed-dead verdict
// about a peer on the far side of a declared partition does not count:
// the peer is unreachable, not dead, so its ACK obligations must
// survive until the ring heals — reclaiming them would turn pre-cut
// messages into ghosts the delivery oracle can see.
func (e *Endpoint) deadPeer(r int) bool {
	if e.hb == nil || e.hb.det.State(r) != liveness.Dead {
		return false
	}
	if part, ok := e.hb.det.Partition(); ok && part.Unreachable(r) {
		return false
	}
	return true
}
