package core

import (
	"repro/internal/liveness"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/trace"
)

// This file implements the streaming-allreduce fast path over the
// in-network handler engine (DESIGN.md §13, PROTOCOL.md "In-network
// handler extension"). Rank 0 initiates every round; the reduction is
// computed *on the ring* by the spin.Reducer each endpoint installs at
// its transit point, so one revolution of the vector replaces the
// software tree's log(P) store-and-forward stages.
//
// A round, in ring write order (per-origin FIFO makes each sequence
// arrive everywhere in order):
//
//  1. Every rank writes its vector into its own contribution area,
//     then its arrival word = round. The contribution is staged before
//     the arrival word announces it, so a transit node whose arrival
//     has been seen is guaranteed to combine current-round lanes.
//  2. Rank 0 polls the arrival words from its local replica (one burst
//     read). If the failure detector reports a missing rank Suspect or
//     Dead, rank 0 publishes a fallback verdict instead of starting
//     the reduction — rank 0 alone decides, so every rank degrades to
//     the same software tree on the same round.
//  3. Rank 0 writes the header word (operator + vector length, arming
//     every transit Reducer), the vector seeded with its own
//     contribution, and the combining-counter word — count 1 for its
//     own contribution and the round tag in the high byte
//     (spin.CounterWord). Each transit combines its staged lanes into
//     the circulating packets (Rewrite) and increments the counter only
//     if it combined every byte of the round; the origin's strip-apply
//     lands the fully combined vector and counter back in rank 0's
//     replica. The count accumulates *inside the NIC* at each hop — no
//     per-rank bit assignment, so one word covers the full 256-node
//     ring.
//  4. Rank 0 polls its local counter word for count == Procs *and* the
//     current round's tag. The tag is load-bearing: rank 0's own seed
//     write lands in its bank immediately, but strip-applies arrive
//     arbitrarily late under transit-link queueing — a full counter
//     from an earlier round rank 0 already abandoned could otherwise
//     strip into the bank mid-poll and satisfy a later round whose
//     combines never ran. Full count with the right tag — publish the
//     result (conventional replicated write) and the done word. A short
//     count past the drain horizon means a vector packet was dropped at
//     injection or a node died mid-transit: publish a fallback verdict
//     instead. Either way non-roots learn the round's outcome from the
//     done word alone.
//
// The contribution, arrival, and control words keep the single-writer
// discipline: contrib(i)/arrival(i) are written only by rank i, the
// control block only by rank 0. The vector scratch region intentionally
// diverges across replicas mid-round (each transit's bank holds the
// partial combined up to itself); no rank ever reads another's scratch
// — the result region is the published truth.

// streamState is the per-endpoint streaming-allreduce state.
type streamState struct {
	reducer *spin.Reducer
	round   uint32
	arrBuf  []uint32
}

// initStream installs this endpoint's transit Reducer over the
// contiguous header+counter+vector block of the stream region. Each
// transit that combined the full round increments the counter word's
// low 24 bits (the high byte is the round tag), so the scheme is
// rank-count-agnostic up to the ring's own address limit.
func (e *Endpoint) initStream() {
	lay := e.sys.lay
	e.stream.arrBuf = make([]uint32, e.Procs())
	e.stream.reducer = &spin.Reducer{
		HdrOff:     lay.strHdr(),
		VecOff:     lay.strVec(),
		CtrOff:     lay.strCtr(),
		MaxBytes:   lay.strMax,
		ContribOff: lay.strContrib(e.me),
	}
	e.nic.InstallHandler(lay.strHdr(), 8+lay.strMax, e.stream.reducer)
}

// initEarlyAck installs one spin.EarlyAck per sender over this
// receiver's MESSAGE-flag word for that sender. The handler injects the
// ACK toggle at transit; the host-side ackWrite is suppressed.
func (e *Endpoint) initEarlyAck() {
	lay := e.sys.lay
	for s := 0; s < e.Procs(); s++ {
		if s == e.me {
			continue
		}
		e.nic.InstallHandler(lay.msgFlags(e.me, s), 4, &spin.EarlyAck{
			FlagsOff: lay.msgFlags(e.me, s),
			AckOff:   lay.ackFlags(s, e.me),
		})
	}
}

// StreamMax returns the largest vector StreamAllreduce can carry on the
// fast path (0 when Config.Stream is disabled). Part of
// xport.StreamReducer.
func (e *Endpoint) StreamMax() int {
	if !e.sys.cfg.Stream.Enabled {
		return 0
	}
	return e.sys.lay.strMax
}

// StreamAllreduce runs one in-network allreduce round over 32-bit
// lanes. Every process must call it collectively with the same op and
// length. done=false with a nil error means the fast path declined or
// degraded — the caller must run its software fallback (every rank
// reports the same verdict for the same round, so the fallback is
// collective too). done=true means recv holds the reduction of every
// rank's send. Part of xport.StreamReducer.
func (e *Endpoint) StreamAllreduce(p *sim.Proc, op spin.RingOp, send, recv []byte) (bool, error) {
	lay, cfg := e.sys.lay, e.sys.cfg
	n := len(send)
	// For a well-formed collective call (every rank passing the same op
	// and equally sized buffers) these gates are rank-uniform, so either
	// every rank proceeds (and the round counters stay in step) or every
	// rank declines. The recv-length gate is the one a buggy caller can
	// break per-rank; a lone decliner then simply never announces
	// arrival, rank 0's arrival wait expires, and the whole collective
	// degrades to the software tree rather than hanging or splitting.
	if !cfg.Stream.Enabled || !op.Valid() || n == 0 || n%4 != 0 || n > lay.strMax || len(recv) < n {
		return false, nil
	}
	e.stream.round++
	r := e.stream.round
	e.stats.StreamRounds++
	e.im.streamRounds.Inc()
	span := e.sys.tracer.BeginSpan(p.Now(), trace.BBP, e.me, "stream-allreduce", 0, e.sys.tracer.Parent(), "round=%d op=%v len=%d", r, op, n)
	fast, err := e.streamRound(p, op, send, recv[:n], r)
	if !fast {
		e.stats.StreamFallbacks++
		e.im.streamFallbacks.Inc()
	}
	e.sys.tracer.EndSpan(p.Now(), trace.BBP, e.me, "stream-allreduce-end", span, 0, "round=%d fast=%v err=%v", r, fast, err)
	return fast, err
}

func (e *Endpoint) streamRound(p *sim.Proc, op spin.RingOp, send, recv []byte, r uint32) (bool, error) {
	lay := e.sys.lay
	if e.me != 0 {
		// Stage the contribution, then announce it; per-origin FIFO
		// guarantees every transit node's bank holds the contribution
		// by the time the arrival word is visible there.
		e.nic.Write(p, lay.strContrib(e.me), send)
		e.nic.WriteWord(p, lay.strArrival(e.me), r)
		return e.streamLeaf(p, recv, r)
	}
	// Rank 0 contributes by seeding the circulating vector directly, so
	// it announces arrival without staging.
	e.nic.WriteWord(p, lay.strArrival(0), r)
	return e.streamRoot(p, op, send, recv, r)
}

// streamRoot is rank 0's side of a round: gather arrivals, decide,
// drive the reduction, publish the verdict.
func (e *Endpoint) streamRoot(p *sim.Proc, op spin.RingOp, send, recv []byte, r uint32) (bool, error) {
	lay, cfg := e.sys.lay, e.sys.cfg
	n := len(send)
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	arr := e.stream.arrBuf
	for {
		e.nic.ReadWords(p, lay.strArrival(0), arr)
		all := true
		for i := range arr {
			if arr[i] != r {
				all = false
				break
			}
		}
		if all {
			break
		}
		if v := e.Liveness(); v != nil {
			for i := range arr {
				if arr[i] != r && v.State(i) != liveness.Alive {
					return e.streamAbort(p, r, "rank %d not alive", i)
				}
			}
		}
		if deadline >= 0 && p.Now() > deadline {
			// A rank is unresponsive but not (yet) suspect. Publish the
			// fallback verdict and decline like the leaves do, so the
			// collective exits symmetrically: every rank runs the same
			// software tree, and the tree is what surfaces a genuinely
			// dead or missing rank as its own error.
			return e.streamAbort(p, r, "arrival wait timed out")
		}
		p.Delay(cfg.Costs.PollOverhead)
	}

	// Header arms every transit Reducer; the vector is seeded with our
	// own contribution; the counter carries count 1 for that seed plus
	// the round tag. FIFO order guarantees each transit sees them in
	// this order.
	e.nic.WriteWord(p, lay.strHdr(), spin.HdrWord(op, n))
	e.nic.Write(p, lay.strVec(), send)
	e.nic.WriteWord(p, lay.strCtr(), spin.CounterWord(r, 1))

	// One revolution later our own strip-apply lands the combined
	// vector and counter in the local replica. The poll requires this
	// round's tag alongside the full count: a late strip from an
	// abandoned earlier round carries that round's tag and cannot
	// satisfy it (see the file comment). A mismatch past the drain
	// horizon (plus worst-case handler stalls at every transit) means a
	// vector packet was dropped at injection or a node died mid-round.
	want := spin.CounterWord(r, uint32(e.Procs()))
	ncfg := e.nic.NetworkConfig()
	maskBy := e.nic.DrainBound().
		Add(sim.Duration(ncfg.Nodes) * sim.Duration(ncfg.HandlerBudget) * ncfg.HandlerCycleCost)
	for {
		m := e.nic.ReadWord(p, lay.strCtr())
		if m == want {
			break
		}
		if p.Now() > maskBy {
			return e.streamAbort(p, r, "counter %#x != %#x past drain bound", m, want)
		}
		p.Delay(cfg.Costs.PollOverhead)
	}

	// Publish: the combined vector is read from the local replica and
	// replicated conventionally through the result region, then the
	// done word releases every non-root.
	if n >= e.recvDMAThreshold() {
		e.nic.ReadDMA(p, lay.strVec(), recv)
	} else {
		e.nic.Read(p, lay.strVec(), recv)
	}
	if n >= cfg.Thresholds.SendDMA {
		e.nic.WriteDMA(p, lay.strResult(), recv)
	} else {
		e.nic.Write(p, lay.strResult(), recv)
	}
	e.nic.WriteWord(p, lay.strDone(), r<<1)
	return true, nil
}

// streamAbort publishes a fallback verdict for round r: every non-root
// reads it from the done word and degrades to the same software tree.
func (e *Endpoint) streamAbort(p *sim.Proc, r uint32, format string, args ...any) (bool, error) {
	e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "stream-fallback", format, args...)
	e.nic.WriteWord(p, e.sys.lay.strDone(), r<<1|1)
	return false, nil
}

// streamLeaf is a non-root's side of a round: wait for rank 0's done
// word, then either read the published result or report the fallback.
func (e *Endpoint) streamLeaf(p *sim.Proc, recv []byte, r uint32) (bool, error) {
	lay, cfg := e.sys.lay, e.sys.cfg
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	for {
		d := e.nic.ReadWord(p, lay.strDone())
		if d>>1 == r {
			if d&1 != 0 {
				return false, nil
			}
			if len(recv) >= e.recvDMAThreshold() {
				e.nic.ReadDMA(p, lay.strResult(), recv)
			} else {
				e.nic.Read(p, lay.strResult(), recv)
			}
			return true, nil
		}
		if v := e.Liveness(); v != nil && v.State(0) == liveness.Dead {
			// The initiator died before publishing a verdict. Degrade;
			// the software tree then surfaces the death as its own
			// error.
			e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "stream-fallback", "initiator confirmed dead")
			return false, nil
		}
		if deadline >= 0 && p.Now() > deadline {
			return false, ErrTimeout
		}
		p.Delay(cfg.Costs.PollOverhead)
	}
}
