package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/xport"
	"repro/internal/xport/oracle"
)

// retryCluster builds a 4-node SCRAMNet cluster with the BBP retry
// extension enabled and the given fault script applied to the ring.
func retryCluster(t *testing.T, k *sim.Kernel, script *fault.Script) *cluster.Cluster {
	t.Helper()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetrySurvivesTransientFault is the acceptance test for the retry
// extension: a single transient loss window hits the ring while a
// fixed workload crosses it, and the delivery oracle must find every
// message delivered exactly once, in per-stream order, with nothing
// lost, duplicated, or invented — while the sender's counters prove
// retransmissions actually happened.
func TestRetrySurvivesTransientFault(t *testing.T) {
	script := &fault.Script{Seed: 77, Actions: []fault.Action{
		{At: sim.Time(0).Add(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.2},
		{At: sim.Time(0).Add(500 * sim.Microsecond), Kind: fault.LossStop},
	}}
	k := sim.NewKernel()
	c := retryCluster(t, k, script)
	o := oracle.New()
	eps := make([]xport.Endpoint, len(c.Endpoints))
	for i, ep := range c.Endpoints {
		eps[i] = o.Wrap(ep)
	}

	const msgs = 25
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			payload := bytes.Repeat([]byte{byte(i + 1)}, 32)
			if err := eps[0].Send(p, 1, payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			p.Delay(40 * sim.Microsecond)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		for i := 0; i < msgs; i++ {
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	st, err := o.Check(true)
	if err != nil {
		t.Fatalf("oracle: %v (%v)", err, st)
	}
	if st.Sent != msgs || st.Delivered != msgs || st.Lost != 0 {
		t.Fatalf("oracle stats: %v", st)
	}
	stats := c.Endpoints[0].(*core.Endpoint).Stats()
	if stats.Retransmits == 0 {
		t.Fatalf("loss window crossed but no retransmissions: %+v", stats)
	}
	if stats.RetryFailures != 0 {
		t.Fatalf("transient fault must not exhaust the retry budget: %+v", stats)
	}
}

// TestRetryMcastUnderFaults exercises the multicast path — one shared
// buffer, per-receiver acknowledgment and retransmission — under the
// same transient loss, with every receiver checked for exactly-once
// in-order delivery.
func TestRetryMcastUnderFaults(t *testing.T) {
	script := &fault.Script{Seed: 99, Actions: []fault.Action{
		{At: sim.Time(0).Add(80 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.15},
		{At: sim.Time(0).Add(450 * sim.Microsecond), Kind: fault.LossStop},
	}}
	k := sim.NewKernel()
	c := retryCluster(t, k, script)
	o := oracle.New()
	eps := make([]xport.Endpoint, len(c.Endpoints))
	for i, ep := range c.Endpoints {
		eps[i] = o.Wrap(ep)
	}

	const msgs = 12
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			payload := bytes.Repeat([]byte{byte(0x40 + i)}, 20)
			if err := eps[0].Mcast(p, []int{1, 2, 3}, payload); err != nil {
				t.Errorf("mcast %d: %v", i, err)
				return
			}
			p.Delay(60 * sim.Microsecond)
		}
	})
	for r := 1; r <= 3; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
			buf := make([]byte, 64)
			for i := 0; i < msgs; i++ {
				if _, err := eps[r].Recv(p, 0, buf); err != nil {
					t.Errorf("rx%d recv %d: %v", r, i, err)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st, err := o.Check(true)
	if err != nil {
		t.Fatalf("oracle: %v (%v)", err, st)
	}
	if st.Streams != 3 || st.Delivered != 3*msgs {
		t.Fatalf("oracle stats: %v", st)
	}
}

// TestRetryConfigValidation rejects a retry configuration with a
// missing timeout or retry budget.
func TestRetryConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	for _, bad := range []core.RetryConfig{
		{Enabled: true, Timeout: 0, MaxRetries: 4},
		{Enabled: true, Timeout: 100 * sim.Microsecond, MaxRetries: 0},
	} {
		bbp := core.DefaultConfig()
		bbp.Retry = bad
		if _, err := cluster.New(k, cluster.Options{Nodes: 2, Net: cluster.SCRAMNet, BBP: &bbp}); err == nil {
			t.Fatalf("retry config %+v accepted", bad)
		}
	}
}

// TestRetryFaultFreeIsQuiet checks the extension's overhead shape on a
// healthy ring: no retransmissions, no checksum drops, no reclaims —
// the daemon only ever wakes, finds everything acknowledged, and goes
// back to sleep.
func TestRetryFaultFreeIsQuiet(t *testing.T) {
	k := sim.NewKernel()
	c := retryCluster(t, k, nil)
	const msgs = 10
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := c.Endpoints[0].Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < msgs; i++ {
			n, err := c.Endpoints[1].Recv(p, 0, buf)
			if err != nil || n != 1 || buf[0] != byte(i) {
				t.Errorf("recv %d: n=%d err=%v buf=%v", i, n, err, buf[:n])
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	stats := c.Endpoints[0].(*core.Endpoint).Stats()
	if stats.Retransmits != 0 || stats.RetryFailures != 0 || stats.ChecksumDrops != 0 || stats.StaleDescs != 0 {
		t.Fatalf("fault-free run touched recovery paths: %+v", stats)
	}
}
