package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

// world builds a kernel, ring, BBP system and attached endpoints with
// the single-writer assertion armed.
func world(t testing.TB, nodes int, mutate ...func(*Config)) (*sim.Kernel, *System, []*Endpoint) {
	t.Helper()
	k := sim.NewKernel()
	net, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	net.SetSingleWriterCheck(true)
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	sys, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, nodes)
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			t.Fatal(err)
		}
	}
	return k, sys, eps
}

func TestSendRecvRoundtrip(t *testing.T) {
	k, _, eps := world(t, 2)
	msg := []byte("hello, billboard")
	var got []byte
	k.Spawn("sender", func(p *sim.Proc) {
		if err := eps[0].Send(p, 1, msg); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		buf := make([]byte, 64)
		n, err := eps[1].Recv(p, 0, buf)
		if err != nil {
			t.Error(err)
			return
		}
		got = append(got, buf[:n]...)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q, want %q", got, msg)
	}
}

func TestZeroByteMessage(t *testing.T) {
	k, _, eps := world(t, 2)
	var n int = -1
	k.Spawn("sender", func(p *sim.Proc) {
		if err := eps[0].Send(p, 1, nil); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		var err error
		n, err = eps[1].Recv(p, 0, nil)
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("zero-byte message length = %d", n)
	}
}

func TestInOrderDelivery(t *testing.T) {
	k, _, eps := world(t, 2)
	const count = 50
	var got []int
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if err := eps[0].Send(p, 1, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < count; i++ {
			n, err := eps[1].Recv(p, 0, buf)
			if err != nil || n != 1 {
				t.Errorf("recv %d: n=%d err=%v", i, n, err)
				return
			}
			got = append(got, int(buf[0]))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d arrived out of order (got payload %d)", i, v)
		}
	}
}

func TestGarbageCollectionReclaims(t *testing.T) {
	// Far more messages than buffer slots: progress requires GC, which
	// requires the receiver's ACK toggles to be honored.
	k, _, eps := world(t, 2, func(c *Config) { c.Buffers = 4 })
	const count = 200
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if err := eps[0].Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	received := 0
	k.Spawn("receiver", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < count; i++ {
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			received++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != count {
		t.Fatalf("received %d of %d", received, count)
	}
	if eps[0].Stats().GCPasses == 0 {
		t.Error("expected at least one GC pass with 4 slots and 200 sends")
	}
}

func TestAllocTimesOutWithoutReceiver(t *testing.T) {
	k, _, eps := world(t, 2, func(c *Config) {
		c.Buffers = 2
		c.RecvTimeout = 200 * sim.Microsecond
	})
	var sendErr error
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := eps[0].Send(p, 1, []byte{1}); err != nil {
				sendErr = err
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sendErr != ErrTimeout {
		t.Fatalf("sendErr = %v, want ErrTimeout", sendErr)
	}
}

func TestMcastDeliversToAllAddressed(t *testing.T) {
	k, _, eps := world(t, 4)
	msg := []byte("multicast payload")
	results := make([][]byte, 4)
	k.Spawn("sender", func(p *sim.Proc) {
		if err := eps[0].Mcast(p, []int{1, 3}, msg); err != nil {
			t.Error(err)
		}
	})
	for _, r := range []int{1, 3} {
		r := r
		k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
			buf := make([]byte, 64)
			n, err := eps[r].Recv(p, 0, buf)
			if err != nil {
				t.Error(err)
				return
			}
			results[r] = append([]byte(nil), buf[:n]...)
		})
	}
	// Node 2 is not addressed: it must see nothing.
	k.Spawn("rx2", func(p *sim.Proc) {
		p.Delay(500 * sim.Microsecond)
		if eps[2].MsgAvailFrom(p, 0) {
			t.Error("unaddressed node 2 sees a message")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 3} {
		if !bytes.Equal(results[r], msg) {
			t.Errorf("node %d received %q", r, results[r])
		}
	}
}

func TestMcastSingleDataTransmission(t *testing.T) {
	// §3: "Each extra receiver adds only the cost of writing one more
	// word to SCRAMNet memory at the sender." Mechanically: a broadcast
	// injects exactly (nrecv-1) more ring packets than a unicast of the
	// same payload.
	count := func(bcast bool) int64 {
		k, _, eps := world(t, 4)
		payload := make([]byte, 256)
		k.Spawn("sender", func(p *sim.Proc) {
			if bcast {
				if err := eps[0].Bcast(p, payload); err != nil {
					t.Error(err)
				}
			} else {
				if err := eps[0].Send(p, 1, payload); err != nil {
					t.Error(err)
				}
			}
		})
		recv := []int{1}
		if bcast {
			recv = []int{1, 2, 3}
		}
		for _, r := range recv {
			r := r
			k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
				buf := make([]byte, 512)
				if _, err := eps[r].Recv(p, 0, buf); err != nil {
					t.Error(err)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return eps[0].sys.net.NIC(0).Stats().PacketsSent
	}
	uni, bc := count(false), count(true)
	if bc != uni+2 {
		t.Fatalf("broadcast sent %d packets, unicast %d: want exactly 2 extra flag packets", bc, uni)
	}
}

func TestErrTooLarge(t *testing.T) {
	k, sys, eps := world(t, 2)
	var err error
	k.Spawn("sender", func(p *sim.Proc) {
		err = eps[0].Send(p, 1, make([]byte, sys.MaxMessage()+1))
	})
	if e := k.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestErrTruncated(t *testing.T) {
	k, _, eps := world(t, 2)
	var err error
	k.Spawn("sender", func(p *sim.Proc) {
		if e := eps[0].Send(p, 1, make([]byte, 100)); e != nil {
			t.Error(e)
		}
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		_, err = eps[1].Recv(p, 0, make([]byte, 10))
	})
	if e := k.Run(); e != nil && err == nil {
		t.Fatal(e)
	}
	if err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestErrBadRank(t *testing.T) {
	k, _, eps := world(t, 2)
	k.Spawn("p", func(p *sim.Proc) {
		if err := eps[0].Send(p, 0, nil); err != ErrBadRank {
			t.Errorf("self-send err = %v", err)
		}
		if err := eps[0].Send(p, 5, nil); err != ErrBadRank {
			t.Errorf("out-of-range err = %v", err)
		}
		if err := eps[0].Mcast(p, []int{0}, nil); err != ErrBadRank {
			t.Errorf("mcast-to-self err = %v", err)
		}
		if err := eps[0].Mcast(p, nil, nil); err != ErrBadRank {
			t.Errorf("empty-mcast err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMsgAvailAndTryRecv(t *testing.T) {
	k, _, eps := world(t, 2)
	k.Spawn("receiver", func(p *sim.Proc) {
		if eps[1].MsgAvail(p) {
			t.Error("MsgAvail true before any send")
		}
		if _, ok, _ := eps[1].TryRecv(p, 0, make([]byte, 8)); ok {
			t.Error("TryRecv succeeded before any send")
		}
		p.Delay(100 * sim.Microsecond) // let the sender's message land
		if !eps[1].MsgAvail(p) {
			t.Error("MsgAvail false after send")
		}
		n, ok, err := eps[1].TryRecv(p, 0, make([]byte, 8))
		if !ok || err != nil || n != 3 {
			t.Errorf("TryRecv = (%d,%v,%v)", n, ok, err)
		}
	})
	k.Spawn("sender", func(p *sim.Proc) {
		p.Delay(20 * sim.Microsecond)
		if err := eps[0].Send(p, 1, []byte{1, 2, 3}); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyFairness(t *testing.T) {
	k, _, eps := world(t, 4)
	const per = 20
	for s := 1; s < 4; s++ {
		s := s
		k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				if err := eps[s].Send(p, 0, []byte{byte(s)}); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	counts := map[int]int{}
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < 3*per; i++ {
			src, n, err := eps[0].RecvAny(p, buf)
			if err != nil || n != 1 || int(buf[0]) != src {
				t.Errorf("RecvAny: src=%d n=%d payload=%d err=%v", src, n, buf[0], err)
				return
			}
			counts[src]++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 1; s < 4; s++ {
		if counts[s] != per {
			t.Errorf("source %d delivered %d of %d", s, counts[s], per)
		}
	}
}

func TestUnicastLatencyCalibration(t *testing.T) {
	// The paper's headline: 4-byte one-way latency 7.8 µs, 0-byte 6.5 µs
	// at the API layer. The simulator must land in that neighborhood.
	lat := func(n int) float64 {
		k, _, eps := world(t, 4)
		var sent, recvd sim.Time
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 64)
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				t.Error(err)
			}
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond) // receiver already polling
			sent = p.Now()
			if err := eps[0].Send(p, 1, make([]byte, n)); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	l0, l4 := lat(0), lat(4)
	if l4 < 5 || l4 > 12 {
		t.Errorf("4-byte one-way latency %.2f µs, paper anchor 7.8 µs", l4)
	}
	if l0 >= l4 {
		t.Errorf("0-byte latency %.2f µs not below 4-byte %.2f µs", l0, l4)
	}
}

func TestInterruptDrivenMode(t *testing.T) {
	lat := func(interrupts bool) float64 {
		k, _, eps := world(t, 2, func(c *Config) { c.InterruptDriven = interrupts })
		var recvd sim.Time
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 8)
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				t.Error(err)
			}
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond)
			if err := eps[0].Send(p, 1, []byte{1, 2, 3, 4}); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return recvd.Sub(sim.Time(10 * sim.Microsecond)).Microseconds()
	}
	polled, intr := lat(false), lat(true)
	if intr <= polled {
		t.Errorf("interrupt receive %.2fµs should cost more than polling %.2fµs for short messages", intr, polled)
	}
}

func TestPropertyExactlyOnceInOrderAllPairs(t *testing.T) {
	// Property: with every process sending a random number of messages
	// to every other process (random sizes, random pacing), every stream
	// is delivered exactly once, in order, bit-exact.
	f := func(seed uint64) bool {
		const nodes = 4
		k := sim.NewKernel()
		defer k.Close()
		net, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
		if err != nil {
			return false
		}
		net.SetSingleWriterCheck(true)
		cfg := DefaultConfig()
		cfg.Buffers = 8
		sys, err := New(net, cfg)
		if err != nil {
			return false
		}
		eps := make([]*Endpoint, nodes)
		for i := range eps {
			if eps[i], err = sys.Attach(i); err != nil {
				return false
			}
		}
		rng := sim.NewRNG(seed)
		counts := [nodes][nodes]int{}
		for s := 0; s < nodes; s++ {
			for r := 0; r < nodes; r++ {
				if s != r {
					counts[s][r] = rng.Intn(12)
				}
			}
		}
		payload := func(s, r, i, n int) []byte {
			b := make([]byte, n)
			sim.NewRNG(uint64(s)<<32 | uint64(r)<<16 | uint64(i)).Bytes(b)
			return b
		}
		fail := false
		for s := 0; s < nodes; s++ {
			s := s
			gap := sim.Duration(rng.Intn(30)) * sim.Microsecond
			sizes := make([][nodes]int, 64)
			for i := range sizes {
				for r := range sizes[i] {
					sizes[i][r] = rng.Intn(600)
				}
			}
			k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
				for i := 0; i < 12; i++ {
					for r := 0; r < nodes; r++ {
						if r == s || i >= counts[s][r] {
							continue
						}
						if err := eps[s].Send(p, r, payload(s, r, i, sizes[i][r])); err != nil {
							fail = true
							return
						}
						p.Delay(gap)
					}
				}
			})
		}
		for r := 0; r < nodes; r++ {
			r := r
			k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
				buf := make([]byte, 1024)
				next := [nodes]int{}
				total := 0
				for s := 0; s < nodes; s++ {
					total += counts[s][r]
				}
				for got := 0; got < total; got++ {
					src, n, err := eps[r].RecvAny(p, buf)
					if err != nil {
						fail = true
						return
					}
					i := next[src]
					next[src]++
					// Verify content against the deterministic generator:
					// a skipped or reordered message mismatches here.
					if !bytes.Equal(buf[:n], payload(src, r, i, n)) {
						fail = true
						return
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return !fail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestAttachTwiceFails(t *testing.T) {
	k, sys, _ := world(t, 2)
	defer k.Close()
	if _, err := sys.Attach(0); err == nil {
		t.Fatal("second Attach(0) succeeded")
	}
	if _, err := sys.Attach(9); err != ErrBadRank {
		t.Fatalf("Attach(9) err = %v", err)
	}
}

func TestAllocatorProperty(t *testing.T) {
	// Property: any interleaving of allocs and frees never double-books
	// bytes, and freeing everything restores a single maximal span.
	f := func(seed uint64) bool {
		a := newAllocator(1 << 16)
		rng := sim.NewRNG(seed)
		type block struct{ off, n int }
		var held []block
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				n := rng.Intn(2000) + 1
				if off, ok := a.alloc(n); ok {
					for _, h := range held {
						lo, hi := off, off+((n+3)&^3)
						if lo < h.off+h.n && h.off < hi {
							return false // overlap
						}
					}
					held = append(held, block{off, (n + 3) &^ 3})
				}
			} else if len(held) > 0 {
				i := rng.Intn(len(held))
				a.release(held[i].off, held[i].n)
				held = append(held[:i], held[i+1:]...)
			}
		}
		for _, h := range held {
			a.release(h.off, h.n)
		}
		return a.totalFree() == 1<<16 && a.largestFree() == 1<<16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqLessWraparound(t *testing.T) {
	if !seqLess(0xFFFFFFFF, 0) {
		t.Error("wraparound compare failed")
	}
	if seqLess(5, 5) || seqLess(6, 5) {
		t.Error("ordering broken")
	}
}
