// Package core implements the BillBoard Protocol (BBP), the paper's
// primary contribution: a user-level, zero-copy, lock-free message
// passing protocol for SCRAMNet replicated shared memory (§3).
//
// The SCRAMNet memory is divided equally among the participating
// processes. Each process's partition holds a control partition —
// MESSAGE toggle flags (set by senders), ACK toggle flags (set by
// receivers), and buffer descriptors (offset/length/sequence, written by
// the owner) — followed by a data partition of message buffers.
//
// A send "posts the message on a billboard": the sender allocates a
// buffer in its own data partition, writes the message and a descriptor,
// and toggles a MESSAGE flag bit in each receiver's control partition.
// Because every SCRAMNet word is written by exactly one process, no
// locks are ever needed, and because the data partition is visible to
// every node, multicast costs one extra flag-word write per extra
// receiver — a single-step multicast, unlike point-to-point binomial
// trees.
//
// Receivers poll their MESSAGE flag words, diff them against a shadow
// copy to find newly posted buffers, read the descriptor and the data
// straight into the user buffer, and toggle an ACK flag bit in the
// sender's control partition. Senders garbage-collect buffers whose ACK
// toggles from every addressed receiver match the MESSAGE toggles —
// which is attempted only when an allocation fails, as in the paper.
//
// The five-call API of [8] — bbp_init, bbp_Send, bbp_Recv, bbp_Mcast,
// bbp_MsgAvail — maps to New/Attach, Endpoint.Send, Endpoint.Recv,
// Endpoint.Mcast and Endpoint.MsgAvail; TryRecv, RecvAny and Bcast are
// convenience extensions, and interrupt-driven receive (the paper's §7
// "future work") is available behind Config.InterruptDriven.
package core

import (
	"errors"
	"fmt"

	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/trace"
)

// MaxProcs bounds the number of BBP processes at the SCRAMNet ring's
// own 256-node address limit. Flag words scale per-peer (MESSAGE/ACK
// flags are one 32-bit toggle word per peer with one bit per buffer
// slot — the 32 bound lives on Config.Buffers, not here), and the
// layout validation rejects any rank count whose per-process partition
// would fall under the 256-byte data floor for the configured bank
// size. Hierarchies that address more than 256 hosts are ROADMAP item
// 4.
const MaxProcs = 256

// descWords is the portion of a descriptor actually transferred:
// offset, length, sequence. The base protocol needs nothing more —
// its per-receiver MESSAGE flag words carry the addressing. The retry
// extension adds the destination mask and an integrity checksum over
// all of it: its receivers detect by scanning every descriptor of a
// sender (the flag word is just a post counter), so without the mask a
// scan could adopt a slot addressed to a different receiver whose
// sequence happens to fit this receiver's delivery window.
const (
	descWords      = 3
	descWordsRetry = 5
	descSize       = 20
)

// Costs are the software-path CPU costs charged by the protocol,
// separate from the bus and wire costs charged by the hardware models.
type Costs struct {
	// SendSetup covers argument checks, buffer allocation bookkeeping
	// and descriptor marshalling on the send side.
	SendSetup sim.Duration
	// RecvBookkeeping covers descriptor decode, pending-queue insertion
	// and shadow-flag update per received message.
	RecvBookkeeping sim.Duration
	// PollOverhead is the per-iteration loop cost of polling, on top of
	// the PIO flag read itself.
	PollOverhead sim.Duration
	// GCPass is the fixed software cost of one garbage-collection sweep,
	// on top of the ACK-word PIO reads.
	GCPass sim.Duration
	// AllocRetryDelay is how long a sender backs off when the data
	// partition is exhausted even after GC.
	AllocRetryDelay sim.Duration
}

// DefaultCosts returns the calibrated software costs (DESIGN.md §5).
func DefaultCosts() Costs {
	return Costs{
		SendSetup:       250 * sim.Nanosecond,
		RecvBookkeeping: 300 * sim.Nanosecond,
		PollOverhead:    100 * sim.Nanosecond,
		GCPass:          500 * sim.Nanosecond,
		AllocRetryDelay: 2 * sim.Microsecond,
	}
}

// Config parameterizes a BBP system.
type Config struct {
	// Buffers is the number of message buffer slots per process (1..32).
	Buffers int
	// Thresholds groups the PIO-vs-DMA protocol-switch knobs; its
	// Validate method is the one documented entry point for checking
	// them (New calls it).
	Thresholds Thresholds
	// BurstPoll selects the receive-side poll-aggregation strategy
	// (default BurstAuto: wide flag-region reads whenever the bus cost
	// model says they beat the per-word probes they replace).
	BurstPoll BurstMode
	// RecvTimeout bounds blocking receives and allocation stalls in
	// virtual time; 0 means wait forever. A finite default keeps a
	// protocol bug from spinning the simulation indefinitely.
	RecvTimeout sim.Duration
	// InterruptDriven makes senders set the SCRAMNet interrupt bit on
	// MESSAGE flag writes and receivers sleep on the interrupt instead
	// of polling (§7 future work; ablated in the benchmarks).
	InterruptDriven bool
	// Retry enables the bounded-retransmission extension for lossy
	// rings. The base protocol (and the paper's hardware) assumes the
	// ring never drops writes; the zero value keeps that behavior.
	Retry RetryConfig
	// Liveness enables heartbeat-based membership: every node publishes
	// a (beat, incarnation) pair in the single-writer heartbeat table
	// and runs a failure detector over its replica of it (DESIGN.md
	// §11). Off by default — the table and its periodic bus traffic
	// would shift the calibrated fault-free figures.
	Liveness liveness.Config
	// Stream enables the in-network streaming-allreduce extension: a
	// global stream region is carved out of the replicated memory and
	// every endpoint installs a spin.Reducer at its ring transit point,
	// so a reduction's vector is combined as it circulates instead of
	// being shuffled through a software tree (DESIGN.md §13). Requires a
	// flat ring (handlers do not cross hierarchy bridges).
	Stream StreamConfig
	// EarlyAck installs a spin.EarlyAck transit handler per (receiver,
	// sender) pair: the receiver's NIC acknowledges a MESSAGE-flag
	// packet the moment it transits, one revolution after the post,
	// instead of waiting for the host's poll-consume-ack cycle. The
	// host-side ACK write is suppressed. ACK semantics weaken from
	// "consumed" to "arrived at the receiver's bank", so it is
	// incompatible with the retry extension, whose per-slot sequence
	// ACKs must prove consumption (DESIGN.md §13).
	EarlyAck bool
	// Costs are the software path costs.
	Costs Costs
}

// StreamConfig parameterizes the in-network streaming-allreduce
// extension (Config.Stream).
type StreamConfig struct {
	// Enabled turns the extension on. Off by default: the stream region
	// shrinks every data partition, which would shift the calibrated
	// figures.
	Enabled bool
	// MaxBytes caps the vector one streaming round can carry; it must
	// be a positive multiple of 4 (the ring combines 32-bit lanes).
	// 0 means DefaultStreamMax.
	MaxBytes int
}

// DefaultStreamMax is the stream-region vector capacity when
// StreamConfig.MaxBytes is zero.
const DefaultStreamMax = 256

// Thresholds are the message lengths at or above which data crosses the
// I/O bus by DMA instead of PIO, per direction. They differ because
// posted PIO writes are ~5x cheaper than PIO reads on the testbed's
// PCI, so DMA pays off far earlier on the receive side. Set them above
// MaxMessage for a PIO-only endpoint (the minimal MPICH channel device
// does this).
type Thresholds struct {
	SendDMA int
	RecvDMA int
	// Adaptive, when enabled, drives the receive threshold from live
	// bus-cost observations instead of the RecvDMA constant; RecvDMA
	// then remains the starting point and the fallback for endpoints
	// that have not accumulated observations yet.
	Adaptive AdaptiveConfig
}

// AdaptiveConfig tunes the adaptive receive-DMA threshold: each
// endpoint treats its own poll reads and payload drains as live probes
// of the per-word PIO read cost and the DMA fixed overhead (the same
// quantities the pci.busy_ns counter aggregates, plus queueing behind
// concurrent DMA), folds them into EWMAs, and periodically recomputes
// the crossover size at which DMA becomes cheaper. On an uncontended
// default-cost bus this converges on the measured 20 B crossover (E7);
// under bus contention the inflated read cost pulls the threshold down.
// The current value is published as the bbp.recv_dma_threshold_bytes
// gauge.
type AdaptiveConfig struct {
	// Enabled turns adaptation on.
	Enabled bool
	// Window is the number of cost observations between threshold
	// recomputations; 0 means DefaultAdaptiveWindow.
	Window int
	// Floor and Ceil clamp the adapted threshold in bytes; Ceil 0 means
	// unclamped above.
	Floor, Ceil int
}

// DefaultAdaptiveWindow is the observation count between threshold
// recomputations when AdaptiveConfig.Window is zero.
const DefaultAdaptiveWindow = 16

// Validate rejects nonsense threshold configurations: negative
// thresholds, malformed adaptive clamps, adaptive knobs set while
// adaptation is off, or a static override pinned outside the adaptive
// clamp range (the caller asked for two contradictory behaviors).
func (t Thresholds) Validate() error {
	if t.SendDMA < 0 || t.RecvDMA < 0 {
		return fmt.Errorf("bbp: negative DMA threshold (send %d, recv %d)", t.SendDMA, t.RecvDMA)
	}
	a := t.Adaptive
	if !a.Enabled {
		if a.Window != 0 || a.Floor != 0 || a.Ceil != 0 {
			return fmt.Errorf("bbp: adaptive threshold knobs set (window %d, floor %d, ceil %d) but Adaptive.Enabled is false", a.Window, a.Floor, a.Ceil)
		}
		return nil
	}
	if a.Window < 0 || a.Floor < 0 || a.Ceil < 0 {
		return fmt.Errorf("bbp: negative adaptive parameter (window %d, floor %d, ceil %d)", a.Window, a.Floor, a.Ceil)
	}
	if a.Ceil != 0 && a.Ceil < a.Floor {
		return fmt.Errorf("bbp: adaptive clamp ceiling %d below floor %d", a.Ceil, a.Floor)
	}
	if t.RecvDMA < a.Floor || (a.Ceil != 0 && t.RecvDMA > a.Ceil) {
		return fmt.Errorf("bbp: adaptive+override conflict: static RecvDMA %d outside the adaptive clamp [%d, %d]", t.RecvDMA, a.Floor, a.Ceil)
	}
	return nil
}

// BurstMode selects how receivers read MESSAGE flags while polling.
type BurstMode int

const (
	// BurstAuto (the default) aggregates a poll into one wide read of
	// the receiver's whole contiguous flag region whenever the bus cost
	// model says the burst is cheaper than the per-word probes it
	// replaces, and keeps the single 650 ns word probe otherwise (a
	// focused poll of one sender on a small base-protocol ring).
	BurstAuto BurstMode = iota
	// BurstOff forces the pre-aggregation per-word path everywhere.
	// Kept for A/B measurement (the E9 figure) and the equivalence
	// tests.
	BurstOff
	// BurstOn forces the wide read even where the cost model prefers
	// per-word probes.
	BurstOn
)

// RetryConfig parameterizes BBP's graceful-degradation extension: a
// per-endpoint daemon that retransmits posted-but-unacknowledged
// buffers with exponential backoff. Retransmission rewrites the data,
// the descriptor and the *same* MESSAGE toggle values, so a receiver
// that already saw the post observes no flag change — retries are
// idempotent and delivery stays exactly-once. The reserved fourth
// descriptor word carries a checksum over (offset, length, sequence,
// payload) so receivers can reject torn or stale descriptors and wait
// for the retransmission instead (PROTOCOL.md "Fault model").
type RetryConfig struct {
	// Enabled turns the extension on. Off by default: it adds a
	// descriptor word and background ACK polling, which would shift the
	// calibrated fault-free figures.
	Enabled bool
	// Timeout is how long a posted buffer may go unacknowledged before
	// its first retransmission; it doubles on every subsequent attempt.
	Timeout sim.Duration
	// MaxRetries bounds retransmissions per message. When exhausted the
	// buffer is forcibly reclaimed and Stats.RetryFailures incremented —
	// the receiver is presumed dead.
	MaxRetries int
}

// DefaultRetryConfig returns the retry tuning used by the fault-sweep
// experiment: first retransmit after 200µs, up to 8 attempts (last
// backoff ~25ms), enough to ride out every scripted loss window the
// test suite uses.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{Enabled: true, Timeout: 200 * sim.Microsecond, MaxRetries: 8}
}

// DefaultConfig returns the configuration used for the paper figures.
func DefaultConfig() Config {
	return Config{
		Buffers: 16,
		Thresholds: Thresholds{
			SendDMA: 128,
			// E7's recv-DMA crossover sweep measured DMA overtaking PIO
			// reads at 20 B on the default bus (EXPERIMENTS.md), not the
			// 64 B this default used to be; 20 B is also what the
			// adaptive estimator converges on, and stays the fallback
			// when adaptation is disabled.
			RecvDMA: 20,
		},
		RecvTimeout: 5 * sim.Second,
		Costs:       DefaultCosts(),
	}
}

// Protocol errors.
var (
	ErrTooLarge  = errors.New("bbp: message exceeds data partition capacity")
	ErrTimeout   = errors.New("bbp: operation timed out")
	ErrTruncated = errors.New("bbp: receive buffer smaller than message")
	ErrBadRank   = errors.New("bbp: destination rank out of range or self")
	// ErrFenced rejects a new send on the minority side of a declared
	// ring partition: the quorum is on the far arc, and publishing new
	// state that the majority cannot see would split-brain the
	// billboard. Existing retry slots keep retransmitting (their
	// delivery resumes when the ring heals); only new posts fence.
	ErrFenced = errors.New("bbp: send fenced: node is on the minority side of a ring partition")
)

// layout computes the SCRAMNet memory map. All processes share the same
// arithmetic, so no layout information ever crosses the network.
//
// The base protocol keeps one ACK toggle word per (sender, receiver)
// pair. The retry extension instead keeps one ACK word per (sender,
// receiver, buffer slot) — ackWords is the per-pair word count — so a
// receiver can acknowledge the exact sequence it consumed from each
// slot (see ackWrite in recv.go for why per-pair words are ambiguous
// once writes can be lost). It also adds one MIN-UNACKED word per
// (sender, receiver) pair, through which the sender publishes the
// smallest sequence addressed to that receiver it is still
// retransmitting; the receiver holds delivery of later sequences
// until the gap resolves, preserving per-stream FIFO order across
// repairs (see popPending).
type layout struct {
	nprocs   int
	buffers  int
	ackWords int
	retry    bool
	hbBytes  int // global single-writer heartbeat table ahead of the partitions (0 when liveness is off)
	strMax   int // stream-region vector capacity in bytes (0 when Config.Stream is off)
	strBytes int // global streaming-allreduce region after the heartbeat table (0 when off)
	ackBase  int // partition-relative offset of the ACK region
	descBase int // partition-relative offset of the descriptor region
	partSize int
	ctrlSize int
	dataSize int
}

func newLayout(nprocs, buffers, ackWords, memBytes int, retry, hb bool, strMax int) (layout, error) {
	l := layout{nprocs: nprocs, buffers: buffers, ackWords: ackWords, retry: retry}
	if hb {
		// One (beat, incarnation) word pair per node, each pair written
		// only by its owner — the same single-writer-per-word discipline
		// as the MESSAGE flags, placed once globally instead of fanned
		// out per partition so a detector reads every peer in one
		// contiguous burst and a publisher pays one pair write total.
		l.hbBytes = (hbSlotSize*nprocs + 63) &^ 63
	}
	if strMax > 0 {
		// The streaming-allreduce region keeps the global single-writer
		// discipline word by word: a contribution area plus an arrival
		// word per node (each written only by its owner), then the
		// initiator-owned control block — header word, mask word, the
		// circulating vector, the done word and the published result.
		l.strMax = strMax
		l.strBytes = (nprocs*(strMax+4) + 16 + 2*strMax + 63) &^ 63
	}
	l.partSize = ((memBytes - l.hbBytes - l.strBytes) / nprocs) &^ 63
	l.ackBase = 4 * nprocs // MESSAGE flag words
	if retry {
		l.ackBase += 4 * nprocs // MIN-UNACKED words
	}
	l.descBase = l.ackBase + 4*nprocs*ackWords
	l.ctrlSize = (l.descBase + descSize*buffers + 63) &^ 63
	l.dataSize = l.partSize - l.ctrlSize
	if l.dataSize < 256 {
		return l, fmt.Errorf("bbp: %d bytes of SCRAMNet memory leaves only %d data bytes per process", memBytes, l.dataSize)
	}
	return l, nil
}

func (l layout) base(i int) int        { return l.hbBytes + l.strBytes + i*l.partSize }
func (l layout) msgFlags(i, s int) int { return l.base(i) + 4*s }
func (l layout) minUn(i, s int) int    { return l.base(i) + 4*l.nprocs + 4*s }
func (l layout) ackFlags(i, r int) int { return l.base(i) + l.ackBase + 4*l.ackWords*r }
func (l layout) ackSlot(i, r, b int) int {
	return l.ackFlags(i, r) + 4*b
}
func (l layout) desc(i, b int) int      { return l.base(i) + l.descBase + descSize*b }
func (l layout) dataBase(i int) int     { return l.base(i) + l.ctrlSize }
func (l layout) dataOff(i, rel int) int { return l.dataBase(i) + rel }

// Stream-region accessors (meaningful only when strBytes > 0). The
// region sits between the heartbeat table and the partitions:
// per-node contribution areas, per-node arrival words (contiguous, so
// the initiator reads all of them in one burst), then the
// initiator-owned control block.
func (l layout) strContrib(i int) int { return l.hbBytes + i*l.strMax }
func (l layout) strArrival(i int) int { return l.hbBytes + l.nprocs*l.strMax + 4*i }
func (l layout) strCtl() int          { return l.hbBytes + l.nprocs*(l.strMax+4) }
func (l layout) strHdr() int          { return l.strCtl() }
func (l layout) strCtr() int          { return l.strCtl() + 4 }
func (l layout) strVec() int          { return l.strCtl() + 8 }
func (l layout) strDone() int         { return l.strCtl() + 8 + l.strMax }
func (l layout) strResult() int       { return l.strCtl() + 12 + l.strMax }

// hbSlotSize is the per-node heartbeat table entry: beat word +
// incarnation word.
const hbSlotSize = 8

// hbBeat/hbInc address node i's heartbeat pair in the global table.
// Both words are written only by node i.
func (l layout) hbBeat(i int) int { return hbSlotSize * i }
func (l layout) hbInc(i int) int  { return hbSlotSize*i + 4 }

// RingNetwork is the replicated-memory hardware the protocol runs on: a
// flat SCRAMNet ring (*scramnet.Network) or a bridged ring-of-rings
// (*scramnet.Hierarchy).
type RingNetwork interface {
	Kernel() *sim.Kernel
	Nodes() int
	NIC(i int) *scramnet.NIC
	MemBytes() int
}

// System is one BBP deployment over a SCRAMNet topology: one process
// per host (bbp_init).
type System struct {
	net     RingNetwork
	cfg     Config
	lay     layout
	eps     []*Endpoint
	tracer  *trace.Recorder
	metrics *metrics.Registry
	// hbWake is the shared heartbeat tick broadcast: one observer timer
	// per System wakes every endpoint's liveness daemon, so n daemons
	// cost one kernel event per period and the ticker stops itself when
	// only observers remain (see armHbTicker).
	hbWake *sim.Cond
}

// New divides the replicated memory among the hosts and prepares one
// endpoint slot per host. Observability is wired at construction via
// functional options (WithTracer, WithMetrics) — there is no
// half-initialized window in which endpoints exist without their
// instruments.
func New(net RingNetwork, cfg Config, opts ...Option) (*System, error) {
	n := net.Nodes()
	if n > MaxProcs {
		return nil, fmt.Errorf("bbp: %d processes exceeds MaxProcs %d", n, MaxProcs)
	}
	if cfg.Buffers < 1 || cfg.Buffers > 32 {
		return nil, fmt.Errorf("bbp: Buffers %d outside 1..32", cfg.Buffers)
	}
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if cfg.BurstPoll < BurstAuto || cfg.BurstPoll > BurstOn {
		return nil, fmt.Errorf("bbp: unknown BurstPoll mode %d", cfg.BurstPoll)
	}
	if cfg.Retry.Enabled && (cfg.Retry.Timeout <= 0 || cfg.Retry.MaxRetries < 1) {
		return nil, fmt.Errorf("bbp: Retry enabled with Timeout %v MaxRetries %d (both must be positive)",
			cfg.Retry.Timeout, cfg.Retry.MaxRetries)
	}
	if err := cfg.Liveness.Validate(); err != nil {
		return nil, err
	}
	if cfg.EarlyAck && cfg.Retry.Enabled {
		return nil, fmt.Errorf("bbp: EarlyAck is incompatible with the retry extension (a transit handler cannot prove consumption, which per-slot sequence ACKs must)")
	}
	strMax := 0
	if cfg.Stream.Enabled {
		strMax = cfg.Stream.MaxBytes
		if strMax == 0 {
			strMax = DefaultStreamMax
		}
		if strMax < 4 || strMax%4 != 0 || strMax > 0xffffff {
			return nil, fmt.Errorf("bbp: Stream.MaxBytes %d must be a positive multiple of 4 below 2^24", cfg.Stream.MaxBytes)
		}
		// The combining-counter word carries a participation count in
		// its low 24 bits and the round tag in the high 8
		// (spin.CounterWord): every rank the ring can address fits, so
		// Stream scales to the full 256-node ring limit and beyond.
		if n >= spin.CounterRanks {
			return nil, fmt.Errorf("bbp: Stream supports fewer than %d processes (the combining counter shares a word with the round tag), got %d", spin.CounterRanks, n)
		}
	} else if cfg.Stream.MaxBytes != 0 {
		return nil, fmt.Errorf("bbp: Stream.MaxBytes %d set but Stream.Enabled is false", cfg.Stream.MaxBytes)
	}
	if cfg.Stream.Enabled || cfg.EarlyAck {
		// In-network handlers run at one ring's transit points; a
		// hierarchy bridge re-injects packets with a new origin, which
		// would re-run handlers and break the one-revolution semantics.
		if _, flat := net.(*scramnet.Network); !flat {
			return nil, fmt.Errorf("bbp: in-network handlers (Stream/EarlyAck) require a flat ring, not %T", net)
		}
	}
	ackWords := 1
	if cfg.Retry.Enabled {
		ackWords = cfg.Buffers
	}
	lay, err := newLayout(n, cfg.Buffers, ackWords, net.MemBytes(), cfg.Retry.Enabled, cfg.Liveness.Enabled, strMax)
	if err != nil {
		return nil, err
	}
	s := &System{net: net, cfg: cfg, lay: lay, eps: make([]*Endpoint, n)}
	for _, o := range opts {
		o(s)
	}
	if cfg.Liveness.Enabled {
		s.hbWake = sim.NewCond(net.Kernel())
		s.armHbTicker()
	}
	return s, nil
}

// Network returns the underlying ring topology.
func (s *System) Network() RingNetwork { return s.net }

// Config returns the protocol configuration.
func (s *System) Config() Config { return s.cfg }

// Procs returns the number of participating processes.
func (s *System) Procs() int { return s.lay.nprocs }

// MaxMessage returns the largest message a single buffer can carry.
func (s *System) MaxMessage() int { return s.lay.dataSize }

// Attach binds the BBP endpoint for ring node `rank` (each node attaches
// exactly once).
func (s *System) Attach(rank int) (*Endpoint, error) {
	if rank < 0 || rank >= s.lay.nprocs {
		return nil, ErrBadRank
	}
	if s.eps[rank] != nil {
		return nil, fmt.Errorf("bbp: rank %d already attached", rank)
	}
	e := &Endpoint{
		sys:        s,
		me:         rank,
		nic:        s.net.NIC(rank),
		outToggles: make([]uint32, s.lay.nprocs),
		lastSeen:   make([]uint32, s.lay.nprocs),
		ackOut:     make([]uint32, s.lay.nprocs),
		minUnOut:   make([]uint32, s.lay.nprocs),
		pending:    make([][]message, s.lay.nprocs),
		rescan:     make([]bool, s.lay.nprocs),
		minUnIn:    make([]uint32, s.lay.nprocs),
		lastDeliv:  make([]uint32, s.lay.nprocs),
		alloc:      newAllocator(s.lay.dataSize),
		intrWake:   sim.NewCond(s.net.Kernel()),
		retryWake:  sim.NewCond(s.net.Kernel()),
	}
	for b := s.cfg.Buffers - 1; b >= 0; b-- {
		e.freeSlots = append(e.freeSlots, b)
	}
	e.live = make([]liveBuf, s.cfg.Buffers)
	e.slotSeq = make([][]uint32, s.lay.nprocs)
	for i := range e.slotSeq {
		e.slotSeq[i] = make([]uint32, s.cfg.Buffers)
	}
	if s.cfg.InterruptDriven {
		e.nic.EnableInterrupts(true, func(off int) { e.intrWake.Broadcast() })
	}
	if s.cfg.Stream.Enabled {
		e.initStream()
	}
	if s.cfg.EarlyAck {
		e.initEarlyAck()
	}
	if s.cfg.Retry.Enabled {
		s.net.Kernel().SpawnDaemon(fmt.Sprintf("bbp-retry-%d", rank), e.retryLoop)
	}
	if s.cfg.Liveness.Enabled {
		e.initLiveness()
		s.net.Kernel().SpawnDaemon(fmt.Sprintf("bbp-hb-%d", rank), e.hbLoop)
	}
	e.initPollPlan()
	e.initAdaptive()
	e.setMetrics(s.metrics)
	s.eps[rank] = e
	return e, nil
}

// Stats counts protocol-level activity on one endpoint.
type Stats struct {
	Sent      int64
	McastSent int64
	Received  int64
	BytesSent int64
	BytesRecv int64
	Polls     int64
	// PollWords counts flag/floor words fetched while polling, whatever
	// the transaction shape; BurstPolls/BurstPollWords count the subset
	// moved by wide reads (so per-word full-round-trip poll reads are
	// PollWords − BurstPollWords).
	PollWords      int64
	BurstPolls     int64
	BurstPollWords int64
	ReAcks         int64 // retransmitted posts re-acknowledged without redelivery
	GCPasses       int64
	AllocRetries   int64
	// Retry-extension counters (zero unless Config.Retry.Enabled).
	Retransmits   int64 // buffers rewritten after an unacknowledged timeout
	RetryFailures int64 // buffers reclaimed with MaxRetries exhausted
	ChecksumDrops int64 // descriptors rejected by the receiver pending retry
	StaleDescs    int64 // flag toggles whose descriptor was stale or torn
	// Liveness counters (zero unless Config.Liveness.Enabled).
	DeadPeerReclaims int64 // (buffer, receiver) ACK obligations abandoned because the detector confirmed the receiver dead
	FencedSends      int64 // posts rejected with ErrFenced on the minority side of a partition
	// Streaming-allreduce counters (zero unless Config.Stream.Enabled).
	StreamRounds    int64 // fast-path rounds attempted (gating declines not counted)
	StreamFallbacks int64 // rounds degraded to the caller's tree path (suspicion, loss, or timeout)
}
