package core

import (
	"fmt"

	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Endpoint is one process's handle on the BillBoard. All methods taking
// a *sim.Proc must be called from that process's simulation coroutine.
type Endpoint struct {
	sys *System
	me  int
	nic *scramnet.NIC

	// Sender state. outToggles[r] shadows the MESSAGE flag word this
	// process writes into r's control partition; sendSeq is the global
	// send sequence, strictly increasing across Send and Mcast.
	outToggles []uint32
	sendSeq    uint32
	live       []liveBuf
	freeSlots  []int
	alloc      *allocator

	// Receiver state. lastSeen[s] shadows the last observed value of
	// sender s's MESSAGE flag word; ackOut[s] shadows the ACK word this
	// process writes into s's partition; pending[s] holds detected-but-
	// not-consumed messages from s in sequence order; rrNext implements
	// round-robin fairness for RecvAny.
	lastSeen []uint32
	ackOut   []uint32
	pending  [][]message
	rrNext   int

	intrWake *sim.Cond
	stats    Stats
}

// liveBuf tracks an occupied buffer slot until every addressed receiver
// acknowledges it.
type liveBuf struct {
	used   bool
	off, n int    // data-partition segment
	dests  uint32 // bitmask of addressed receivers
	acked  uint32 // receivers whose ACK toggle already matched
}

// message is a detected incoming message: descriptor contents plus the
// slot to acknowledge.
type message struct {
	slot   int
	off, n int
	seq    uint32
}

// Rank returns this endpoint's process number.
func (e *Endpoint) Rank() int { return e.me }

// MaxMessage returns the largest payload one buffer can carry.
func (e *Endpoint) MaxMessage() int { return e.sys.lay.dataSize }

// NativeMcast reports that BBP multicast is a single-step hardware
// operation (it satisfies xport.Endpoint).
func (e *Endpoint) NativeMcast() bool { return true }

// Procs returns the number of processes in the system.
func (e *Endpoint) Procs() int { return e.sys.lay.nprocs }

// Stats returns a copy of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Send posts data to process dst (bbp_Send).
func (e *Endpoint) Send(p *sim.Proc, dst int, data []byte) error {
	if dst == e.me || dst < 0 || dst >= e.Procs() {
		return ErrBadRank
	}
	return e.post(p, 1<<uint(dst), data)
}

// Mcast posts one copy of data, visible to every process in dsts
// (bbp_Mcast). Each extra receiver costs one additional flag-word write.
func (e *Endpoint) Mcast(p *sim.Proc, dsts []int, data []byte) error {
	var mask uint32
	for _, d := range dsts {
		if d == e.me || d < 0 || d >= e.Procs() {
			return ErrBadRank
		}
		mask |= 1 << uint(d)
	}
	if mask == 0 {
		return ErrBadRank
	}
	return e.post(p, mask, data)
}

// Bcast posts data to every other process.
func (e *Endpoint) Bcast(p *sim.Proc, data []byte) error {
	mask := uint32(1<<uint(e.Procs())) - 1
	mask &^= 1 << uint(e.me)
	return e.post(p, mask, data)
}

// post is the shared billboard write path: allocate, write data, write
// descriptor, toggle MESSAGE flags.
func (e *Endpoint) post(p *sim.Proc, dests uint32, data []byte) error {
	lay, cfg := e.sys.lay, e.sys.cfg
	if len(data) > lay.dataSize {
		return ErrTooLarge
	}
	p.Delay(cfg.Costs.SendSetup)

	slot, off, err := e.allocate(p, len(data))
	if err != nil {
		return err
	}
	e.live[slot] = liveBuf{used: true, off: off, n: len(data), dests: dests}
	e.sendSeq++
	e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "post", "slot=%d off=%d len=%d dests=%#x seq=%d", slot, off, len(data), dests, e.sendSeq)

	// Message body straight from the user buffer into SCRAMNet memory
	// (the zero-copy path), then the descriptor, then the flags; the
	// ring's per-sender FIFO guarantees receivers see them in order.
	if len(data) > 0 {
		if len(data) >= cfg.SendDMAThreshold {
			e.nic.WriteDMA(p, lay.dataOff(e.me, off), data)
		} else {
			e.nic.Write(p, lay.dataOff(e.me, off), data)
		}
	}
	var desc [descWords * 4]byte
	putWord(desc[0:], uint32(off))
	putWord(desc[4:], uint32(len(data)))
	putWord(desc[8:], e.sendSeq)
	e.nic.Write(p, lay.desc(e.me, slot), desc[:])

	multicast := false
	for r := 0; r < e.Procs(); r++ {
		if dests&(1<<uint(r)) == 0 {
			continue
		}
		e.outToggles[r] ^= 1 << uint(slot)
		if cfg.InterruptDriven {
			e.nic.WriteWordInterrupt(p, lay.msgFlags(r, e.me), e.outToggles[r])
		} else {
			e.nic.WriteWord(p, lay.msgFlags(r, e.me), e.outToggles[r])
		}
		e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "flag-set", "receiver=%d slot=%d", r, slot)
		if multicast {
			e.stats.McastSent++
		}
		multicast = true
	}
	e.stats.Sent++
	e.stats.BytesSent += int64(len(data))
	return nil
}

// allocate obtains a free slot and data segment, running garbage
// collection — and then backing off — only when space is exhausted, as
// in the paper (§3 footnote: "If a buffer cannot be allocated garbage
// collection is first done ... and then a buffer is allocated").
func (e *Endpoint) allocate(p *sim.Proc, n int) (slot, off int, err error) {
	cfg := e.sys.cfg
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	for {
		if len(e.freeSlots) > 0 {
			if o, ok := e.alloc.alloc(n); ok {
				s := e.freeSlots[len(e.freeSlots)-1]
				e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
				return s, o, nil
			}
		}
		e.collect(p)
		if len(e.freeSlots) > 0 {
			if o, ok := e.alloc.alloc(n); ok {
				s := e.freeSlots[len(e.freeSlots)-1]
				e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
				return s, o, nil
			}
		}
		if n > e.sys.lay.dataSize {
			return 0, 0, ErrTooLarge
		}
		e.stats.AllocRetries++
		if deadline >= 0 && p.Now().Add(cfg.Costs.AllocRetryDelay) > deadline {
			return 0, 0, ErrTimeout
		}
		p.Delay(cfg.Costs.AllocRetryDelay)
	}
}

// collect is the garbage collector: read the ACK toggle words receivers
// write into our control partition and free every buffer whose addressed
// receivers have all caught up with the MESSAGE toggles.
func (e *Endpoint) collect(p *sim.Proc) {
	lay := e.sys.lay
	p.Delay(e.sys.cfg.Costs.GCPass)
	e.stats.GCPasses++
	e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "gc", "pass=%d", e.stats.GCPasses)
	// One ACK word per peer that any live buffer is still waiting on.
	var need uint32
	for s := range e.live {
		if e.live[s].used {
			need |= e.live[s].dests &^ e.live[s].acked
		}
	}
	if need == 0 {
		return
	}
	acks := make([]uint32, e.Procs())
	for r := 0; r < e.Procs(); r++ {
		if need&(1<<uint(r)) != 0 {
			acks[r] = e.nic.ReadWord(p, lay.ackFlags(e.me, r))
		}
	}
	for s := range e.live {
		lb := &e.live[s]
		if !lb.used {
			continue
		}
		for r := 0; r < e.Procs(); r++ {
			bit := uint32(1) << uint(r)
			if lb.dests&bit == 0 || lb.acked&bit != 0 {
				continue
			}
			if acks[r]&(1<<uint(s)) == e.outToggles[r]&(1<<uint(s)) {
				lb.acked |= bit
			}
		}
		if lb.acked == lb.dests {
			e.alloc.release(lb.off, lb.n)
			e.freeSlots = append(e.freeSlots, s)
			lb.used = false
		}
	}
}

func putWord(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getWord(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// seqLess compares sequence numbers with wraparound.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

func (e *Endpoint) String() string {
	return fmt.Sprintf("bbp[%d/%d]", e.me, e.Procs())
}
