package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Endpoint is one process's handle on the BillBoard. All methods taking
// a *sim.Proc must be called from that process's simulation coroutine.
type Endpoint struct {
	sys *System
	me  int
	nic *scramnet.NIC

	// Sender state. outToggles[r] shadows the MESSAGE flag word this
	// process writes into r's control partition: one toggle bit per
	// buffer slot in the base protocol, a bare post counter under the
	// retry extension (bumped on every post and retransmission, so a
	// receiver always sees a fresh difference no matter which earlier
	// writes were lost). sendSeq is the global send sequence, strictly
	// increasing across Send and Mcast.
	outToggles []uint32
	sendSeq    uint32
	live       []liveBuf
	freeSlots  []int
	alloc      *allocator
	// minUnOut[r] (retry extension) shadows the MIN-UNACKED word this
	// process writes into r's partition: the smallest sequence addressed
	// to r not yet acknowledged, or sendSeq+1 when none is outstanding.
	// Monotone non-decreasing, so stale replicas can only delay
	// delivery at r, never reorder it.
	minUnOut []uint32

	// Receiver state. lastSeen[s] shadows the last observed value of
	// sender s's MESSAGE flag word; ackOut[s] shadows the ACK word this
	// process writes into s's partition; pending[s] holds detected-but-
	// not-consumed messages from s in sequence order; rrNext implements
	// round-robin fairness for RecvAny.
	lastSeen []uint32
	ackOut   []uint32
	pending  [][]message
	rrNext   int
	// slotSeq[s][b] is the sequence of the last message accepted from
	// sender s's buffer slot b; the retry extension rejects a
	// re-scanned descriptor at or below it as stale. The floor is per
	// slot, not per sender: descriptors can be repaired out of sequence
	// order, so a slot-b retransmission may legitimately carry a lower
	// sequence than a message already accepted from another slot.
	// Soundness rests on slot occupancy: successive occupants of one
	// slot carry strictly increasing sequences, because the sender
	// reuses a slot only after freeing it and sendSeq never decreases.
	slotSeq [][]uint32
	// rescan[s], set when a checksum failure rolls a detection back,
	// forces the next poll of s to rescan descriptors even though the
	// post counter has not advanced.
	rescan []bool
	// minUnIn[s] (retry extension) shadows sender s's MIN-UNACKED word
	// and lastDeliv[s] the sequence this process last consumed from s:
	// a pending message whose sequence is not contiguous with
	// lastDeliv[s] is delivered only once minUnIn[s] reaches it,
	// proving every earlier sequence addressed to us was either
	// consumed by us or given up on by the sender.
	minUnIn   []uint32
	lastDeliv []uint32

	// Poll plan, fixed at Attach (see initPollPlan): how many words one
	// wide read of this receiver's contiguous flag region covers, a
	// scratch buffer for it, and whether the bus cost model favors the
	// burst over per-word probes for an all-senders poll (burstAllOK)
	// and for a single-sender poll (burstOneOK).
	burstWords int
	burstBuf   []uint32
	burstAllOK bool
	burstOneOK bool

	// adapt is the adaptive receive-DMA threshold estimator (adaptive.go).
	adapt adaptiveState

	// hb is the heartbeat publisher + failure detector pair (liveness.go);
	// nil unless Config.Liveness.Enabled.
	hb *hbState

	// stream is the in-network allreduce state (stream.go); zero unless
	// Config.Stream.Enabled.
	stream streamState

	intrWake  *sim.Cond
	retryWake *sim.Cond
	stats     Stats
	im        epInstruments
}

// epInstruments mirror Stats into the metrics registry, keyed by the
// endpoint's rank (nil = disabled no-ops).
type epInstruments struct {
	sends         *metrics.Counter   // bbp.sends
	mcastSends    *metrics.Counter   // bbp.mcast_sends
	recvs         *metrics.Counter   // bbp.recvs
	bytesSent     *metrics.Counter   // bbp.bytes_sent
	bytesRecv     *metrics.Counter   // bbp.bytes_recv
	polls         *metrics.Counter   // bbp.polls
	gcPasses      *metrics.Counter   // bbp.gc_passes
	allocRetries  *metrics.Counter   // bbp.alloc_retries
	retransmits   *metrics.Counter   // bbp.retransmits
	retryFailures *metrics.Counter   // bbp.retry_failures
	checksumDrops *metrics.Counter   // bbp.checksum_drops
	staleDescs    *metrics.Counter   // bbp.stale_descs
	reAcks        *metrics.Counter   // bbp.re_acks
	msgSize       *metrics.Histogram // bbp.msg_size_bytes
	// Burst-poll and adaptive-threshold instruments (PR 4).
	pollWords          *metrics.Counter   // bbp.poll_words
	burstPolls         *metrics.Counter   // bbp.burst_polls
	burstPollWords     *metrics.Counter   // bbp.burst_poll_words
	recvThresholdBytes *metrics.Gauge     // bbp.recv_dma_threshold_bytes
	thresholdAdapts    *metrics.Counter   // bbp.threshold_adaptations
	recvSize           *metrics.Histogram // bbp.recv_size_bytes
	// Streaming-allreduce instruments (PR 7).
	streamRounds    *metrics.Counter // bbp.stream_rounds
	streamFallbacks *metrics.Counter // bbp.stream_fallbacks
}

// setMetrics (re)creates the endpoint's instruments against m.
func (e *Endpoint) setMetrics(m *metrics.Registry) {
	if m == nil {
		e.im = epInstruments{}
		return
	}
	e.im = epInstruments{
		sends:         m.Counter("bbp.sends", e.me),
		mcastSends:    m.Counter("bbp.mcast_sends", e.me),
		recvs:         m.Counter("bbp.recvs", e.me),
		bytesSent:     m.Counter("bbp.bytes_sent", e.me),
		bytesRecv:     m.Counter("bbp.bytes_recv", e.me),
		polls:         m.Counter("bbp.polls", e.me),
		gcPasses:      m.Counter("bbp.gc_passes", e.me),
		allocRetries:  m.Counter("bbp.alloc_retries", e.me),
		retransmits:   m.Counter("bbp.retransmits", e.me),
		retryFailures: m.Counter("bbp.retry_failures", e.me),
		checksumDrops: m.Counter("bbp.checksum_drops", e.me),
		staleDescs:    m.Counter("bbp.stale_descs", e.me),
		reAcks:        m.Counter("bbp.re_acks", e.me),
		msgSize:       m.Histogram("bbp.msg_size_bytes", e.me),

		pollWords:          m.Counter("bbp.poll_words", e.me),
		burstPolls:         m.Counter("bbp.burst_polls", e.me),
		burstPollWords:     m.Counter("bbp.burst_poll_words", e.me),
		recvThresholdBytes: m.Gauge("bbp.recv_dma_threshold_bytes", e.me),
		thresholdAdapts:    m.Counter("bbp.threshold_adaptations", e.me),
		recvSize:           m.Histogram("bbp.recv_size_bytes", e.me),

		streamRounds:    m.Counter("bbp.stream_rounds", e.me),
		streamFallbacks: m.Counter("bbp.stream_fallbacks", e.me),
	}
	e.im.recvThresholdBytes.Set(int64(e.recvDMAThreshold()))
}

// liveBuf tracks an occupied buffer slot until every addressed receiver
// acknowledges it.
type liveBuf struct {
	used   bool
	off, n int    // data-partition segment
	dests  uint32 // bitmask of addressed receivers
	acked  uint32 // receivers whose ACK toggle already matched

	// Retry-extension state, maintained only when Config.Retry.Enabled.
	seq      uint32   // sequence number the buffer was posted with
	data     []byte   // payload copy for retransmission
	posted   sim.Time // time of the last (re)transmission
	attempts int      // retransmissions so far
	busy     bool     // a retransmission's writes are in flight: don't free

	span trace.SpanID // the message's send span (retransmissions parent to it)
	msg  uint64       // trace.MsgID of the posted message
}

// message is a detected incoming message: descriptor contents plus the
// slot to acknowledge.
type message struct {
	slot   int
	off, n int
	seq    uint32
	// Retry-extension fields: the destination mask and descriptor
	// checksum, and the slot's previous sequence floor so a
	// checksum-failed detection can be rolled back for a fresh
	// descriptor read (see consume).
	dests     uint32
	ck        uint32
	prevFloor uint32
}

// Rank returns this endpoint's process number.
func (e *Endpoint) Rank() int { return e.me }

// MaxMessage returns the largest payload one buffer can carry.
func (e *Endpoint) MaxMessage() int { return e.sys.lay.dataSize }

// NativeMcast reports that BBP multicast is a single-step hardware
// operation (it satisfies xport.Endpoint).
func (e *Endpoint) NativeMcast() bool { return true }

// Procs returns the number of processes in the system.
func (e *Endpoint) Procs() int { return e.sys.lay.nprocs }

// Stats returns a copy of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Send posts data to process dst (bbp_Send).
func (e *Endpoint) Send(p *sim.Proc, dst int, data []byte) error {
	if dst == e.me || dst < 0 || dst >= e.Procs() {
		return ErrBadRank
	}
	return e.post(p, 1<<uint(dst), data)
}

// Mcast posts one copy of data, visible to every process in dsts
// (bbp_Mcast). Each extra receiver costs one additional flag-word write.
func (e *Endpoint) Mcast(p *sim.Proc, dsts []int, data []byte) error {
	var mask uint32
	for _, d := range dsts {
		if d == e.me || d < 0 || d >= e.Procs() {
			return ErrBadRank
		}
		mask |= 1 << uint(d)
	}
	if mask == 0 {
		return ErrBadRank
	}
	return e.post(p, mask, data)
}

// Bcast posts data to every other process.
func (e *Endpoint) Bcast(p *sim.Proc, data []byte) error {
	mask := uint32(1<<uint(e.Procs())) - 1
	mask &^= 1 << uint(e.me)
	return e.post(p, mask, data)
}

// post is the shared billboard write path: allocate, write data, write
// descriptor, toggle MESSAGE flags.
func (e *Endpoint) post(p *sim.Proc, dests uint32, data []byte) error {
	lay, cfg := e.sys.lay, e.sys.cfg
	if len(data) > lay.dataSize {
		return ErrTooLarge
	}
	if e.hb != nil && e.hb.det.Fenced() {
		// Minority side of a declared ring partition: new posts would
		// publish state the quorum cannot see. Heartbeats and existing
		// retry slots keep running — only new billboard writes fence.
		e.stats.FencedSends++
		e.hb.fencedSends.Inc()
		return ErrFenced
	}
	p.Delay(cfg.Costs.SendSetup)

	slot, off, err := e.allocate(p, len(data))
	if err != nil {
		return err
	}
	e.live[slot] = liveBuf{used: true, off: off, n: len(data), dests: dests}
	e.sendSeq++
	if cfg.Retry.Enabled {
		lb := &e.live[slot]
		lb.seq = e.sendSeq
		lb.data = append([]byte(nil), data...)
		lb.posted = p.Now()
	}
	// "post" opens the message's send span (closed by "send-end" after
	// the last flag write). Every bus write and ring packet until then
	// is attributed to the message via the NIC's trace context.
	msg := trace.MsgID(e.me, e.sendSeq)
	span := e.sys.tracer.BeginSpan(p.Now(), trace.BBP, e.me, "post", msg, e.sys.tracer.Parent(), "slot=%d off=%d len=%d dests=%#x seq=%d", slot, off, len(data), dests, e.sendSeq)
	e.live[slot].span = span
	e.live[slot].msg = msg
	pm, pp := e.nic.SetTraceContext(msg, span)
	defer e.nic.SetTraceContext(pm, pp)

	// Message body straight from the user buffer into SCRAMNet memory
	// (the zero-copy path), then the descriptor, then the flags; the
	// ring's per-sender FIFO guarantees receivers see them in order.
	if len(data) > 0 {
		if len(data) >= cfg.Thresholds.SendDMA {
			e.nic.WriteDMA(p, lay.dataOff(e.me, off), data)
		} else {
			e.nic.Write(p, lay.dataOff(e.me, off), data)
		}
	}
	var desc [descSize]byte
	putWord(desc[0:], uint32(off))
	putWord(desc[4:], uint32(len(data)))
	putWord(desc[8:], e.sendSeq)
	dw := descWords
	if cfg.Retry.Enabled {
		putWord(desc[12:], dests)
		putWord(desc[16:], descCheck(off, len(data), e.sendSeq, dests, data))
		dw = descWordsRetry
	}
	e.nic.Write(p, lay.desc(e.me, slot), desc[:dw*4])

	// Publish MIN-UNACKED before the post counters so a receiver that
	// sees the counter (the ring preserves per-sender write order) can
	// already judge this message's delivery eligibility.
	if cfg.Retry.Enabled {
		e.syncMinUn(p, false)
	}

	multicast := false
	for r := 0; r < e.Procs(); r++ {
		if dests&(1<<uint(r)) == 0 {
			continue
		}
		if cfg.Retry.Enabled {
			e.outToggles[r]++ // post counter; the descriptor scan finds the slot
		} else {
			e.outToggles[r] ^= 1 << uint(slot)
		}
		if cfg.InterruptDriven {
			e.nic.WriteWordInterrupt(p, lay.msgFlags(r, e.me), e.outToggles[r])
		} else {
			e.nic.WriteWord(p, lay.msgFlags(r, e.me), e.outToggles[r])
		}
		e.sys.tracer.EmitMsg(p.Now(), trace.BBP, e.me, "flag-set", msg, span, "receiver=%d slot=%d", r, slot)
		if multicast {
			e.stats.McastSent++
			e.im.mcastSends.Inc()
		}
		multicast = true
	}
	e.sys.tracer.EndSpan(p.Now(), trace.BBP, e.me, "send-end", span, msg, "seq=%d", e.sendSeq)
	e.stats.Sent++
	e.stats.BytesSent += int64(len(data))
	e.im.sends.Inc()
	e.im.bytesSent.Add(int64(len(data)))
	e.im.msgSize.Observe(int64(len(data)))
	if cfg.Retry.Enabled {
		e.retryWake.Signal()
	}
	return nil
}

// popFreeSlot takes a slot from the free list. The base protocol reuses
// slots LIFO (hot in cache); the retry extension reuses them FIFO to
// maximize the distance before a slot's descriptor is overwritten,
// which narrows the stale-descriptor window PROTOCOL.md describes.
func (e *Endpoint) popFreeSlot() int {
	if e.sys.cfg.Retry.Enabled {
		s := e.freeSlots[0]
		e.freeSlots = e.freeSlots[1:]
		return s
	}
	s := e.freeSlots[len(e.freeSlots)-1]
	e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
	return s
}

// allocate obtains a free slot and data segment, running garbage
// collection — and then backing off — only when space is exhausted, as
// in the paper (§3 footnote: "If a buffer cannot be allocated garbage
// collection is first done ... and then a buffer is allocated").
func (e *Endpoint) allocate(p *sim.Proc, n int) (slot, off int, err error) {
	cfg := e.sys.cfg
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	for {
		if len(e.freeSlots) > 0 {
			if o, ok := e.alloc.alloc(n); ok {
				return e.popFreeSlot(), o, nil
			}
		}
		e.collect(p)
		if len(e.freeSlots) > 0 {
			if o, ok := e.alloc.alloc(n); ok {
				return e.popFreeSlot(), o, nil
			}
		}
		if n > e.sys.lay.dataSize {
			return 0, 0, ErrTooLarge
		}
		e.stats.AllocRetries++
		e.im.allocRetries.Inc()
		if deadline >= 0 && p.Now().Add(cfg.Costs.AllocRetryDelay) > deadline {
			return 0, 0, ErrTimeout
		}
		p.Delay(cfg.Costs.AllocRetryDelay)
	}
}

// collect is the garbage collector: read the ACK toggle words receivers
// write into our control partition and free every buffer whose addressed
// receivers have all caught up with the MESSAGE toggles.
func (e *Endpoint) collect(p *sim.Proc) {
	lay := e.sys.lay
	p.Delay(e.sys.cfg.Costs.GCPass)
	e.stats.GCPasses++
	e.im.gcPasses.Inc()
	e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "gc", "pass=%d", e.stats.GCPasses)
	// One ACK word per peer that any live buffer is still waiting on.
	var need uint32
	for s := range e.live {
		if e.live[s].used {
			need |= e.live[s].dests &^ e.live[s].acked
		}
	}
	if need == 0 {
		return
	}
	retry := e.sys.cfg.Retry.Enabled
	acks := make([]uint32, e.Procs())
	if !retry {
		for r := 0; r < e.Procs(); r++ {
			if need&(1<<uint(r)) != 0 {
				acks[r] = e.nic.ReadWord(p, lay.ackFlags(e.me, r))
			}
		}
	}
	for s := range e.live {
		lb := &e.live[s]
		if !lb.used {
			continue
		}
		for r := 0; r < e.Procs(); r++ {
			bit := uint32(1) << uint(r)
			if lb.dests&bit == 0 || lb.acked&bit != 0 {
				continue
			}
			if e.deadPeer(r) {
				// The failure detector confirmed r dead: its ACK will
				// never come, so stop waiting for it. This reclaims the
				// buffer within the detector's confirmation window —
				// in particular a multicast with one dead receiver in
				// the group no longer pins its slot until retry
				// exhaustion — and the survivors' ACKs still count.
				lb.acked |= bit
				e.stats.DeadPeerReclaims++
				if e.hb != nil {
					e.hb.deadReclaims.Inc()
				}
				e.sys.tracer.EmitMsg(p.Now(), trace.BBP, e.me, "dead-reclaim", lb.msg, lb.span, "receiver=%d slot=%d", r, s)
				continue
			}
			if retry {
				// Per-slot ACK (see ackWrite): r writes the sequence it
				// consumed from this slot. Occupant sequences are
				// strictly increasing per slot, so a stale replica can
				// only under-report — never acknowledge the current
				// occupant on behalf of an older one.
				if !seqLess(e.nic.ReadWord(p, lay.ackSlot(e.me, r, s)), lb.seq) {
					lb.acked |= bit
				}
			} else if acks[r]&(1<<uint(s)) == e.outToggles[r]&(1<<uint(s)) {
				lb.acked |= bit
			}
		}
		if lb.acked == lb.dests && !lb.busy {
			e.freeLive(s, lb)
		}
	}
	if retry {
		e.syncMinUn(p, false)
	}
}

// syncMinUn (retry extension) recomputes every receiver's MIN-UNACKED
// value and writes those that changed — or all of them when force is
// set, which the retry daemon uses each pass to heal writes the ring
// dropped. The value is monotone non-decreasing: new posts carry
// larger sequences than anything outstanding, and acknowledgments and
// reclaims only remove the smallest elements.
func (e *Endpoint) syncMinUn(p *sim.Proc, force bool) {
	lay := e.sys.lay
	for r := 0; r < e.Procs(); r++ {
		if r == e.me {
			continue
		}
		bit := uint32(1) << uint(r)
		v := e.sendSeq + 1
		for s := range e.live {
			lb := &e.live[s]
			if lb.used && lb.dests&bit != 0 && lb.acked&bit == 0 && seqLess(lb.seq, v) {
				v = lb.seq
			}
		}
		if v == e.sendSeq+1 {
			// Nothing outstanding to r: r has nothing of ours pending
			// either (pending implies unacknowledged), so it will not
			// consult the word until our next post updates it.
			continue
		}
		if force || v != e.minUnOut[r] {
			e.minUnOut[r] = v
			e.nic.WriteWord(p, lay.minUn(r, e.me), v)
		}
	}
}

// freeLive returns slot s's data segment and slot to the free pools.
func (e *Endpoint) freeLive(s int, lb *liveBuf) {
	e.alloc.release(lb.off, lb.n)
	e.freeSlots = append(e.freeSlots, s)
	*lb = liveBuf{}
}

func putWord(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getWord(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// seqLess compares sequence numbers with wraparound.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

func (e *Endpoint) String() string {
	return fmt.Sprintf("bbp[%d/%d]", e.me, e.Procs())
}
