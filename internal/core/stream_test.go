package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/liveness"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/spin"
)

// streamWorld is world() with the streaming-allreduce extension on.
func streamWorld(t testing.TB, nodes int, mutate ...func(*Config)) (*sim.Kernel, *scramnet.Network, *System, []*Endpoint) {
	t.Helper()
	k := sim.NewKernel()
	net, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	net.SetSingleWriterCheck(true)
	cfg := DefaultConfig()
	cfg.Stream.Enabled = true
	for _, m := range mutate {
		m(&cfg)
	}
	sys, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, nodes)
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			t.Fatal(err)
		}
	}
	return k, net, sys, eps
}

// vecU32 packs 32-bit lanes little-endian.
func vecU32(vals ...uint32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		putWord(out[4*i:], v)
	}
	return out
}

// reduceRef folds op over every rank's lanes in software.
func reduceRef(op spin.RingOp, contribs [][]byte) []byte {
	acc := append([]byte(nil), contribs[0]...)
	for _, c := range contribs[1:] {
		for i := 0; i+4 <= len(acc); i += 4 {
			putWord(acc[i:], op.Combine(getWord(acc[i:]), getWord(c[i:])))
		}
	}
	return acc
}

func TestStreamAllreduceOps(t *testing.T) {
	for _, op := range []spin.RingOp{spin.OpSumU32, spin.OpMaxU32, spin.OpMinU32, spin.OpBOR, spin.OpBAND, spin.OpBXOR} {
		t.Run(op.String(), func(t *testing.T) {
			const nodes = 4
			k, net, _, eps := streamWorld(t, nodes)
			contribs := make([][]byte, nodes)
			for i := range contribs {
				contribs[i] = vecU32(uint32(i*7+3), uint32(i)<<uint(i), 0xdead0000|uint32(i), uint32(100-i))
			}
			want := reduceRef(op, contribs)
			results := make([][]byte, nodes)
			for i := 0; i < nodes; i++ {
				i := i
				k.Spawn(fmt.Sprintf("rank-%d", i), func(p *sim.Proc) {
					recv := make([]byte, len(contribs[i]))
					done, err := eps[i].StreamAllreduce(p, op, contribs[i], recv)
					if err != nil {
						t.Errorf("rank %d: %v", i, err)
						return
					}
					if !done {
						t.Errorf("rank %d: fast path declined", i)
						return
					}
					results[i] = recv
				})
			}
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			for i, got := range results {
				if !bytes.Equal(got, want) {
					t.Errorf("rank %d: got %x want %x", i, got, want)
				}
			}
			// The reduction must actually have run in-network: every
			// node between origin 0 and the strip point rewrote vector
			// packets and charged cycles.
			for i := 1; i < nodes; i++ {
				st := net.NIC(i).HandlerStats()
				if st.PacketsRewritten == 0 || st.HandlerCycles == 0 {
					t.Errorf("node %d: no in-network work recorded: %+v", i, st)
				}
			}
		})
	}
}

func TestStreamAllreduceRepeatedRounds(t *testing.T) {
	const nodes, rounds = 3, 5
	k, _, _, eps := streamWorld(t, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("rank-%d", i), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				send := vecU32(uint32(i+1), uint32(r+1))
				recv := make([]byte, len(send))
				done, err := eps[i].StreamAllreduce(p, spin.OpSumU32, send, recv)
				if err != nil || !done {
					t.Errorf("rank %d round %d: done=%v err=%v", i, r, done, err)
					return
				}
				if got, want := getWord(recv), uint32(1+2+3); got != want {
					t.Errorf("rank %d round %d: lane0 %d want %d", i, r, got, want)
				}
				if got, want := getWord(recv[4:]), uint32(nodes*(r+1)); got != want {
					t.Errorf("rank %d round %d: lane1 %d want %d", i, r, got, want)
				}
			}
			if st := eps[i].Stats(); st.StreamRounds != rounds || st.StreamFallbacks != 0 {
				t.Errorf("rank %d: stats %+v", i, eps[i].Stats())
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamAllreduceDeclines checks the rank-uniform gating predicates.
func TestStreamAllreduceDeclines(t *testing.T) {
	k, _, sys, eps := streamWorld(t, 2)
	k.Spawn("gates", func(p *sim.Proc) {
		big := make([]byte, sys.lay.strMax+4)
		cases := []struct {
			name       string
			op         spin.RingOp
			send, recv []byte
		}{
			{"bad-op", spin.OpNone, vecU32(1), make([]byte, 4)},
			{"empty", spin.OpSumU32, nil, make([]byte, 4)},
			{"unaligned", spin.OpSumU32, []byte{1, 2, 3}, make([]byte, 4)},
			{"too-big", spin.OpSumU32, big, make([]byte, len(big))},
			{"short-recv", spin.OpSumU32, vecU32(1, 2), make([]byte, 4)},
		}
		for _, c := range cases {
			done, err := eps[0].StreamAllreduce(p, c.op, c.send, c.recv)
			if err != nil {
				t.Errorf("%s: unexpected error: %v", c.name, err)
			}
			if done {
				t.Errorf("%s: fast path accepted, want decline", c.name)
			}
		}
		if st := eps[0].Stats(); st.StreamRounds != 0 {
			t.Errorf("gating declines must not count as rounds: %+v", st)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSuspectFallback: a node that dies before announcing makes
// rank 0 publish a fallback verdict once the detector suspects it, and
// every live rank degrades on the same round.
func TestStreamSuspectFallback(t *testing.T) {
	const nodes = 4
	k, net, _, eps := streamWorld(t, nodes, func(c *Config) {
		c.Liveness = liveness.DefaultConfig()
	})
	net.FailNode(3)
	verdicts := make([]bool, nodes-1)
	for i := 0; i < nodes-1; i++ {
		i := i
		k.Spawn(fmt.Sprintf("rank-%d", i), func(p *sim.Proc) {
			send := vecU32(uint32(i), 1)
			recv := make([]byte, len(send))
			done, err := eps[i].StreamAllreduce(p, spin.OpSumU32, send, recv)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
			}
			verdicts[i] = done
			if st := eps[i].Stats(); st.StreamFallbacks != 1 {
				t.Errorf("rank %d: want 1 fallback, stats %+v", i, eps[i].Stats())
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range verdicts {
		if d {
			t.Errorf("rank %d: fast path claimed success with a dead member", i)
		}
	}
}

// TestStreamLossFallback: with the ring dropping every injected packet
// mid-round, the mask never fills and rank 0 publishes a fallback — but
// the done word must still reach the leaves, so the loss window has to
// close before the verdict write. The test drops exactly the vector
// packets by flipping the drop rate around rank 0's reduction writes
// via a kernel timer.
func TestStreamLossFallback(t *testing.T) {
	const nodes = 3
	k, net, _, eps := streamWorld(t, nodes, func(c *Config) {
		c.Liveness = liveness.DefaultConfig()
	})
	// Window chosen empirically: arrivals complete within ~20µs; the
	// header/vector/mask writes happen right after. Dropping injections
	// during [20µs, 60µs] kills the reduction packets; the mask
	// deadline then expires well after the window closes, so the
	// fallback verdict circulates cleanly.
	k.At(sim.Time(0).Add(20*sim.Microsecond), func() { net.SetDropRate(1) })
	k.At(sim.Time(0).Add(60*sim.Microsecond), func() { net.SetDropRate(0) })
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("rank-%d", i), func(p *sim.Proc) {
			send := vecU32(uint32(i + 1))
			recv := make([]byte, len(send))
			done, err := eps[i].StreamAllreduce(p, spin.OpSumU32, send, recv)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			if done {
				// Permissible only if the loss window missed the round
				// entirely — then the result must be right.
				if got, want := getWord(recv), uint32(1+2+3); got != want {
					t.Errorf("rank %d: claimed success with lanes %d want %d", i, got, want)
				}
				return
			}
			// Degraded round: a second, loss-free round must succeed.
			done2, err := eps[i].StreamAllreduce(p, spin.OpSumU32, send, recv)
			if err != nil || !done2 {
				t.Errorf("rank %d: recovery round done=%v err=%v", i, done2, err)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDeterminism runs the same faulted scenario twice — a node
// dying mid-transit with a reduction in flight — and requires
// byte-identical results and identical spin.* counters.
func TestStreamDeterminism(t *testing.T) {
	type outcome struct {
		Done    []bool
		Err     []string
		Results [][]byte
		Spin    []spin.Stats
		Stream  []Stats
	}
	run := func() outcome {
		const nodes = 4
		k, net, _, eps := streamWorld(t, nodes, func(c *Config) {
			c.Liveness = liveness.DefaultConfig()
		})
		// Node 2 dies 25µs in: after announcing arrival (a few µs) but
		// around the reduction's transit, so some rounds see its
		// handler work and later rounds see the detector's verdict.
		k.At(sim.Time(0).Add(25*sim.Microsecond), func() { net.FailNode(2) })
		o := outcome{
			Done:    make([]bool, nodes),
			Err:     make([]string, nodes),
			Results: make([][]byte, nodes),
			Spin:    make([]spin.Stats, nodes),
			Stream:  make([]Stats, nodes),
		}
		for i := 0; i < nodes; i++ {
			if i == 2 {
				continue // the dying rank never participates
			}
			i := i
			k.Spawn(fmt.Sprintf("rank-%d", i), func(p *sim.Proc) {
				for r := 0; r < 3; r++ {
					send := vecU32(uint32(i+1), uint32(r))
					recv := make([]byte, len(send))
					done, err := eps[i].StreamAllreduce(p, spin.OpSumU32, send, recv)
					o.Done[i] = done
					if err != nil {
						o.Err[i] = err.Error()
					}
					o.Results[i] = append(o.Results[i], recv...)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nodes; i++ {
			o.Spin[i] = net.NIC(i).HandlerStats()
			o.Stream[i] = eps[i].Stats()
		}
		return o
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic stream execution:\nrun1: %+v\nrun2: %+v", a, b)
	}
}

// TestEarlyAckReclaims: with EarlyAck the transit handler acknowledges
// posts at arrival, so a sender can cycle many messages through a tiny
// slot pool without the receiver ever consuming — impossible in the
// base protocol, where the ACK comes only from the receiver's consume.
func TestEarlyAckReclaims(t *testing.T) {
	const sends = 10
	k, _, _, eps := streamWorld(t, 2, func(c *Config) {
		c.Stream.Enabled = false
		c.EarlyAck = true
		c.Buffers = 2
		c.RecvTimeout = 50 * sim.Millisecond
	})
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < sends; i++ {
			if err := eps[0].Send(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEarlyAckRoundtrip: delivery semantics are unchanged — the
// receiver still detects, consumes and returns the payload; only the
// ACK write moved from the host to the transit point.
func TestEarlyAckRoundtrip(t *testing.T) {
	k, _, _, eps := streamWorld(t, 3, func(c *Config) {
		c.Stream.Enabled = false
		c.EarlyAck = true
	})
	msgs := [][]byte{[]byte("early"), []byte("ack"), []byte("ring")}
	k.Spawn("sender", func(p *sim.Proc) {
		for _, m := range msgs {
			if err := eps[0].Send(p, 2, m); err != nil {
				t.Error(err)
			}
		}
	})
	k.Spawn("receiver", func(p *sim.Proc) {
		buf := make([]byte, 64)
		for _, want := range msgs {
			n, err := eps[2].Recv(p, 0, buf)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(buf[:n], want) {
				t.Errorf("got %q want %q", buf[:n], want)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamWideRing: the combining counter lifts the old 24-rank
// completion-bitmask cap — a 28-rank ring (wider than any single mask
// word could cover) must run a full in-network round on the fast path,
// with every transit's increment accumulating in the single counter
// word. This is the regression test for the counter conversion: before
// it, core.New rejected Stream past 24 ranks outright.
func TestStreamWideRing(t *testing.T) {
	const nodes = 28
	k, _, _, eps := streamWorld(t, nodes)
	contribs := make([][]byte, nodes)
	for i := range contribs {
		contribs[i] = vecU32(uint32(i + 1))
	}
	want := reduceRef(spin.OpSumU32, contribs)
	fastAll := true
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("rank-%d", i), func(p *sim.Proc) {
			recv := make([]byte, 4)
			done, err := eps[i].StreamAllreduce(p, spin.OpSumU32, contribs[i], recv)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
				return
			}
			if !done {
				fastAll = false
				return
			}
			if !bytes.Equal(recv, want) {
				t.Errorf("rank %d: got %x want %x", i, recv, want)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fastAll {
		t.Fatalf("fast path declined on a %d-rank ring", nodes)
	}
}

// TestStreamTrapFallback is the regression test for handler state
// leaking across a budget-overrun trap: with a budget too small for the
// vector combine, every transit's work is rolled back — the round must
// degrade to a fallback verdict on every rank. The old bug let a
// trapped transit keep its combined-byte count, set its completion bit
// anyway, and rank 0 published a vector missing every contribution as
// done=true.
func TestStreamTrapFallback(t *testing.T) {
	const nodes = 3
	k := sim.NewKernel()
	scfg := scramnet.DefaultConfig(nodes)
	// Variable packets carry the whole 64-byte vector in one packet,
	// whose combine costs 1+16 cycles — over the 10-cycle budget. The
	// header and mask words (2 cycles each) still fit.
	scfg.Mode = scramnet.VariablePackets
	scfg.HandlerBudget = 10
	net, err := scramnet.New(k, scfg)
	if err != nil {
		t.Fatal(err)
	}
	net.SetSingleWriterCheck(true)
	cfg := DefaultConfig()
	cfg.Stream.Enabled = true
	sys, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, nodes)
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn(fmt.Sprintf("rank-%d", i), func(p *sim.Proc) {
			send := make([]byte, 64)
			for w := 0; w < len(send); w += 4 {
				putWord(send[w:], uint32(100*i+w))
			}
			recv := make([]byte, len(send))
			done, err := eps[i].StreamAllreduce(p, spin.OpSumU32, send, recv)
			if err != nil {
				t.Errorf("rank %d: %v", i, err)
			}
			if done {
				t.Errorf("rank %d: trapped round published as done=true", i)
			}
			if st := eps[i].Stats(); st.StreamFallbacks != 1 {
				t.Errorf("rank %d: stats %+v", i, st)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var traps int64
	for i := 0; i < nodes; i++ {
		traps += net.NIC(i).HandlerStats().TrapsToHost
	}
	if traps == 0 {
		t.Error("no transit trapped — the test exercised nothing")
	}
}

// TestStreamConfigValidation covers the new construction-time checks.
func TestStreamConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	net, err := scramnet.New(k, scramnet.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Stream.Enabled = true; c.Stream.MaxBytes = 7 },
		func(c *Config) { c.Stream.Enabled = true; c.Stream.MaxBytes = -4 },
		func(c *Config) { c.Stream.MaxBytes = 64 }, // set while disabled
		func(c *Config) { c.EarlyAck = true; c.Retry = DefaultRetryConfig() },
	}
	for i, m := range bad {
		cfg := DefaultConfig()
		m(&cfg)
		if _, err := New(net, cfg); err == nil {
			t.Errorf("case %d: config accepted, want error", i)
		}
	}
}
