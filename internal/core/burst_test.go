package core

import (
	"fmt"
	"testing"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

func newRingSystem(t *testing.T, nodes int, cfg Config) (*sim.Kernel, *System, []*Endpoint) {
	t.Helper()
	k := sim.NewKernel()
	net, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, nodes)
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			t.Fatal(err)
		}
	}
	return k, sys, eps
}

func TestThresholdsValidate(t *testing.T) {
	cases := []struct {
		name string
		th   Thresholds
		ok   bool
	}{
		{"defaults", DefaultConfig().Thresholds, true},
		{"zero", Thresholds{}, true},
		{"negative send", Thresholds{SendDMA: -1, RecvDMA: 20}, false},
		{"negative recv", Thresholds{SendDMA: 128, RecvDMA: -20}, false},
		{"adaptive off with knobs", Thresholds{RecvDMA: 20, Adaptive: AdaptiveConfig{Window: 8}}, false},
		{"adaptive on", Thresholds{RecvDMA: 20, Adaptive: AdaptiveConfig{Enabled: true}}, true},
		{"adaptive clamped", Thresholds{RecvDMA: 20, Adaptive: AdaptiveConfig{Enabled: true, Floor: 8, Ceil: 64}}, true},
		{"ceil below floor", Thresholds{RecvDMA: 20, Adaptive: AdaptiveConfig{Enabled: true, Floor: 64, Ceil: 8}}, false},
		{"negative window", Thresholds{RecvDMA: 20, Adaptive: AdaptiveConfig{Enabled: true, Window: -1}}, false},
		{"override below clamp", Thresholds{RecvDMA: 4, Adaptive: AdaptiveConfig{Enabled: true, Floor: 8, Ceil: 64}}, false},
		{"override above clamp", Thresholds{RecvDMA: 128, Adaptive: AdaptiveConfig{Enabled: true, Floor: 8, Ceil: 64}}, false},
	}
	for _, c := range cases {
		if err := c.th.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	k := sim.NewKernel()
	net, err := scramnet.New(k, scramnet.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Thresholds.RecvDMA = -1
	if _, err := New(net, bad); err == nil {
		t.Error("New accepted a negative RecvDMA threshold")
	}
	bad = DefaultConfig()
	bad.BurstPoll = BurstMode(42)
	if _, err := New(net, bad); err == nil {
		t.Error("New accepted an unknown BurstPoll mode")
	}
}

func TestDefaultRecvDMAMatchesMeasuredCrossover(t *testing.T) {
	// E7 measured the receive-DMA crossover at 20 B; the static default
	// must cite it, not the historical 64.
	if got := DefaultConfig().Thresholds.RecvDMA; got != 20 {
		t.Fatalf("DefaultConfig().Thresholds.RecvDMA = %d, want 20", got)
	}
}

// TestPollPlan pins the Attach-time cost-model decision on the default
// bus: an all-senders sweep bursts on a 4-node base ring (740 ns beats
// 3 × 650 ns), a focused single-sender poll does not (740 ns loses to
// one 650 ns probe) — except under retry, where one probe is already
// two word reads; the forced modes override both ways.
func TestPollPlan(t *testing.T) {
	plan := func(nodes int, mut func(*Config)) (allOK, oneOK bool) {
		cfg := DefaultConfig()
		if mut != nil {
			mut(&cfg)
		}
		_, _, eps := newRingSystem(t, nodes, cfg)
		return eps[0].burstAllOK, eps[0].burstOneOK
	}
	if all, one := plan(4, nil); !all || one {
		t.Errorf("4-node base: burstAllOK=%v burstOneOK=%v, want true/false", all, one)
	}
	if all, one := plan(2, nil); all || one {
		t.Errorf("2-node base: burstAllOK=%v burstOneOK=%v, want false/false (one sender)", all, one)
	}
	if all, one := plan(4, func(c *Config) { c.Retry = DefaultRetryConfig() }); !all || !one {
		t.Errorf("4-node retry: burstAllOK=%v burstOneOK=%v, want true/true (two-word probe)", all, one)
	}
	if all, one := plan(4, func(c *Config) { c.BurstPoll = BurstOff }); all || one {
		t.Errorf("BurstOff: burstAllOK=%v burstOneOK=%v, want false/false", all, one)
	}
	if all, one := plan(2, func(c *Config) { c.BurstPoll = BurstOn }); !all || !one {
		t.Errorf("BurstOn: burstAllOK=%v burstOneOK=%v, want true/true", all, one)
	}
}

// TestBurstPollDetectsAllSenders drives a many-to-one workload through
// the wide-read sweep and checks both delivery and the accounting: all
// messages arrive, every burst is nprocs words, and the per-word poll
// residue is zero.
func TestBurstPollDetectsAllSenders(t *testing.T) {
	const nodes = 8
	cfg := DefaultConfig()
	cfg.BurstPoll = BurstOn
	k, _, eps := newRingSystem(t, nodes, cfg)
	for s := 1; s < nodes; s++ {
		s := s
		k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
			if err := eps[s].Send(p, 0, []byte{byte(s)}); err != nil {
				t.Error(err)
			}
		})
	}
	got := map[int]byte{}
	k.Spawn("sink", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 1; i < nodes; i++ {
			src, n, err := eps[0].RecvAny(p, buf)
			if err != nil {
				t.Error(err)
				return
			}
			if n != 1 {
				t.Errorf("message from %d has %d bytes, want 1", src, n)
			}
			got[src] = buf[0]
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 1; s < nodes; s++ {
		if got[s] != byte(s) {
			t.Errorf("sender %d: got payload %d", s, got[s])
		}
	}
	st := eps[0].Stats()
	if st.BurstPolls == 0 {
		t.Fatal("BurstOn sink performed no burst polls")
	}
	if st.PollWords != st.BurstPollWords {
		t.Errorf("BurstOn sink has %d poll words but only %d from bursts", st.PollWords, st.BurstPollWords)
	}
	if st.BurstPollWords != st.BurstPolls*int64(nodes) {
		t.Errorf("burst words %d != %d bursts × %d region words", st.BurstPollWords, st.BurstPolls, nodes)
	}
	if st.Received != nodes-1 {
		t.Errorf("received %d, want %d", st.Received, nodes-1)
	}
}

// TestAdaptiveThresholdConverges runs enough receive traffic for the
// estimator to recompute and checks it lands on the 20 B crossover the
// default bus costs imply (E7), published through recvDMAThreshold.
func TestAdaptiveThresholdConverges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thresholds.RecvDMA = 64 // deliberately wrong starting point
	cfg.Thresholds.Adaptive.Enabled = true
	k, _, eps := newRingSystem(t, 2, cfg)
	const msgs = 32
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := eps[0].Send(p, 1, make([]byte, 16)); err != nil {
				t.Error(err)
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 32)
		for i := 0; i < msgs; i++ {
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eps[1].recvDMAThreshold(); got != 20 {
		t.Errorf("adaptive threshold = %d B, want the 20 B crossover", got)
	}
	if eps[1].stats.Received != msgs {
		t.Fatalf("received %d, want %d", eps[1].stats.Received, msgs)
	}
}

// TestAdaptiveThresholdClamp pins the Floor/Ceil clamp: with a floor
// above the natural 20 B crossover the estimator must stop at the floor.
func TestAdaptiveThresholdClamp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thresholds.RecvDMA = 64
	cfg.Thresholds.Adaptive = AdaptiveConfig{Enabled: true, Floor: 32, Ceil: 128}
	k, _, eps := newRingSystem(t, 2, cfg)
	const msgs = 32
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			if err := eps[0].Send(p, 1, make([]byte, 16)); err != nil {
				t.Error(err)
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 32)
		for i := 0; i < msgs; i++ {
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := eps[1].recvDMAThreshold(); got != 32 {
		t.Errorf("clamped adaptive threshold = %d B, want the 32 B floor", got)
	}
}

// TestAdaptiveDisabledKeepsStaticThreshold guards the fallback path.
func TestAdaptiveDisabledKeepsStaticThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thresholds.RecvDMA = 48
	_, _, eps := newRingSystem(t, 2, cfg)
	if got := eps[0].recvDMAThreshold(); got != 48 {
		t.Errorf("static threshold = %d, want 48", got)
	}
}
