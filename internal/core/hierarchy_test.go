package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

// hierWorld builds a BBP system over a bridged ring-of-rings: the §2
// path to clusters beyond the 256-node ring limit.
func hierWorld(t testing.TB, leaves, hostsPerLeaf int) (*sim.Kernel, *System, []*Endpoint) {
	t.Helper()
	k := sim.NewKernel()
	h, err := scramnet.NewHierarchy(k, scramnet.DefaultHierarchyConfig(leaves, hostsPerLeaf))
	if err != nil {
		t.Fatal(err)
	}
	h.SetSingleWriterCheck(true)
	sys, err := New(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, h.Nodes())
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			t.Fatal(err)
		}
	}
	return k, sys, eps
}

func TestBBPOverHierarchyCrossRing(t *testing.T) {
	// Host 0 (leaf 0) talks to host 3 (leaf 1): the whole protocol —
	// flags, descriptors, data, ACK-driven GC — crosses two bridges.
	k, _, eps := hierWorld(t, 2, 2)
	msg := []byte("across the backbone")
	var got []byte
	k.Spawn("tx", func(p *sim.Proc) {
		if err := eps[0].Send(p, 3, msg); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		n, err := eps[3].Recv(p, 0, buf)
		if err != nil {
			t.Error(err)
			return
		}
		got = buf[:n]
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestBBPOverHierarchyBroadcast(t *testing.T) {
	// One bbp_Mcast reaches hosts on every leaf: replication forwards
	// the single posted buffer everywhere.
	k, _, eps := hierWorld(t, 3, 2)
	msg := []byte("to all six hosts")
	ok := make([]bool, 6)
	k.Spawn("root", func(p *sim.Proc) {
		if err := eps[0].Bcast(p, msg); err != nil {
			t.Error(err)
		}
	})
	for r := 1; r < 6; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
			buf := make([]byte, 64)
			n, err := eps[r].Recv(p, 0, buf)
			ok[r] = err == nil && bytes.Equal(buf[:n], msg)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 6; r++ {
		if !ok[r] {
			t.Errorf("host %d missed the cross-ring broadcast", r)
		}
	}
}

func TestBBPOverHierarchyGCWithRemoteAcks(t *testing.T) {
	// ACK toggles written on one leaf must reach the sender's ring for
	// its garbage collector; more messages than slots forces GC.
	k, _, eps := hierWorld(t, 2, 2)
	const count = 80
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if err := eps[0].Send(p, 2, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	received := 0
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		for i := 0; i < count; i++ {
			if _, err := eps[2].Recv(p, 0, buf); err != nil || buf[0] != byte(i) {
				t.Errorf("recv %d: %v (%d)", i, err, buf[0])
				return
			}
			received++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != count {
		t.Fatalf("received %d of %d", received, count)
	}
}

func TestHierarchyLatencyPenaltyAtBBPLevel(t *testing.T) {
	oneWay := func(build func(k *sim.Kernel) (RingNetwork, int)) float64 {
		k := sim.NewKernel()
		net, dst := build(k)
		sys, err := New(net, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		e0, err := sys.Attach(0)
		if err != nil {
			t.Fatal(err)
		}
		eD, err := sys.Attach(dst)
		if err != nil {
			t.Fatal(err)
		}
		var sent, recvd sim.Time
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 8)
			if _, err := eD.Recv(p, 0, buf); err != nil {
				t.Error(err)
			}
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond)
			sent = p.Now()
			if err := e0.Send(p, dst, []byte{1, 2, 3, 4}); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	flat := oneWay(func(k *sim.Kernel) (RingNetwork, int) {
		n, err := scramnet.New(k, scramnet.DefaultConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		return n, 2
	})
	hier := oneWay(func(k *sim.Kernel) (RingNetwork, int) {
		h, err := scramnet.NewHierarchy(k, scramnet.DefaultHierarchyConfig(2, 2))
		if err != nil {
			t.Fatal(err)
		}
		return h, 2 // first host of the second leaf
	})
	if hier <= flat {
		t.Fatalf("cross-ring BBP latency %.1fµs not above flat-ring %.1fµs", hier, flat)
	}
	if hier > flat+15 {
		t.Fatalf("bridge penalty %.1fµs implausibly large (flat %.1fµs)", hier-flat, flat)
	}
}
