package core

import (
	"repro/internal/sim"
)

// Receiver-posted rendezvous windows (xport.Windowed).
//
// A window is a contiguous span of the receiver's data partition,
// reserved from the same first-fit allocator that backs billboard
// buffers and lent to exactly one sender. The loan is a word-ownership
// hand-over in the SCRAMNet single-writer table: while the window is
// posted the sender is the one writer of those words, and the release
// hands them back. Unlike a billboard post, window traffic carries no
// descriptors, MESSAGE flags or ACK words — delivery notification and
// recovery belong to the layer above (the MPI rendezvous protocol),
// which is what makes the path zero-copy: payload crosses each host
// bus exactly once, as a burst.

// windowDMAMin is the size at or above which window reads and writes
// use the DMA engine. The posted-window path exists so the DMA engine
// can burst payload between host memory and the replicated bank — the
// MPICH2-over-InfiniBand RDMA design mapped onto SCRAMNet — so it is
// deliberately not subject to Config.Thresholds: those calibrate the
// generic billboard path, whose channel device the paper models as
// PIO-only. Below this floor the setup cost outweighs the burst and
// plain word I/O is used.
const windowDMAMin = 128

// ReserveWindow reserves n bytes in this endpoint's data partition and
// grants write ownership of the words to process src. When the
// partition is fragmented or full it runs one garbage-collection pass
// (as the billboard allocator does) and retries once; ok is false when
// no contiguous n-byte span exists even then — the caller is expected
// to fall back to the sequential path, not to spin.
func (e *Endpoint) ReserveWindow(p *sim.Proc, src, n int) (off int, ok bool) {
	if n <= 0 || src == e.me || src < 0 || src >= e.Procs() {
		return 0, false
	}
	off, ok = e.alloc.alloc(n)
	if !ok {
		e.collect(p)
		off, ok = e.alloc.alloc(n)
	}
	if !ok {
		return 0, false
	}
	e.nic.AssignOwner(src, e.sys.lay.dataOff(e.me, off), n)
	return off, true
}

// ReleaseWindow returns the window [off, off+n) to the partition's
// free pool and reclaims write ownership for this endpoint, so the
// words can back ordinary billboard buffers (or a new window) again.
// Bookkeeping only; safe to call when abandoning a transfer whose
// sender the failure detector confirmed dead.
func (e *Endpoint) ReleaseWindow(off, n int) {
	if n <= 0 {
		return
	}
	e.nic.AssignOwner(e.me, e.sys.lay.dataOff(e.me, off), n)
	e.alloc.release(off, n)
}

// WriteWindow writes data into dst's partition at partition-relative
// offset off — a window dst reserved for this endpoint — and returns
// the NIC's conservative drain bound: the virtual time by which the
// written bytes are applied at every live node. The write is
// burst-priced (DMA engine) at or above windowDMAMin.
func (e *Endpoint) WriteWindow(p *sim.Proc, dst, off int, data []byte) sim.Time {
	abs := e.sys.lay.dataOff(dst, off)
	if len(data) >= windowDMAMin {
		e.nic.WriteDMA(p, abs, data)
	} else {
		e.nic.Write(p, abs, data)
	}
	return e.nic.DrainBound()
}

// ReadWindow reads len(buf) bytes from this endpoint's own partition
// at partition-relative offset off: a local bank read, burst-priced at
// or above windowDMAMin. It deliberately does not feed the adaptive
// receive-threshold estimator — that estimator calibrates the generic
// billboard consume path, and window reads would skew its samples.
func (e *Endpoint) ReadWindow(p *sim.Proc, off int, buf []byte) {
	if len(buf) == 0 {
		return
	}
	abs := e.sys.lay.dataOff(e.me, off)
	if len(buf) >= windowDMAMin {
		e.nic.ReadDMA(p, abs, buf)
	} else {
		e.nic.Read(p, abs, buf)
	}
}
