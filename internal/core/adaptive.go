package core

import (
	"repro/internal/sim"
)

// Adaptive receive-DMA threshold (Thresholds.Adaptive).
//
// The receiver already performs the two bus operations whose relative
// cost decides the PIO-vs-DMA crossover: per-word PIO reads (polling,
// descriptor fetch, small-payload drains) and DMA drains. Instead of
// trusting the static configuration, the endpoint times its own
// operations in virtual time — the elapsed time of a bus operation is
// exactly the occupancy that feeds pci.busy_ns, plus any queueing
// behind concurrent DMA, which is the live contention signal a constant
// cannot see — and folds them into EWMAs:
//
//	w = EWMA of observed per-word PIO read cost (ns/word)
//	F = EWMA of observed DMA fixed overhead (drain elapsed − n·DMAPerByte)
//
// Every windowObs observations it recomputes the crossover length at
// which DMA becomes cheaper than word-at-a-time PIO:
//
//	n* : F + n·b = n·(w/4)  ⇒  n* = 4F / (w − 4b)
//
// with b = DMAPerByte from the bus config, rounded up to a whole word
// and clamped to [Floor, Ceil]. On the default uncontended bus
// (w = 650 ns, F = 2.75 µs, b = 12 ns/B) this yields 20 B — the E7
// measurement — and under contention the inflated w pulls the threshold
// down. The current value is published as the
// bbp.recv_dma_threshold_bytes gauge; recomputations that change it
// count bbp.threshold_adaptations.
type adaptiveState struct {
	enabled     bool
	windowObs   int
	floor, ceil int // ceil 0 = unclamped above
	wordNs      int64
	fixedNs     int64
	obs         int
	threshold   int
}

const ewmaShift = 3 // EWMA weight 1/8

// initAdaptive seeds the estimator from the bus cost model and the
// static threshold (the documented starting point and disabled-mode
// fallback).
func (e *Endpoint) initAdaptive() {
	t := e.sys.cfg.Thresholds
	e.adapt = adaptiveState{
		enabled:   t.Adaptive.Enabled,
		windowObs: t.Adaptive.Window,
		floor:     t.Adaptive.Floor,
		ceil:      t.Adaptive.Ceil,
		threshold: t.RecvDMA,
	}
	if e.adapt.windowObs == 0 {
		e.adapt.windowObs = DefaultAdaptiveWindow
	}
	bc := e.nic.Bus().Config()
	e.adapt.wordNs = int64(bc.PIOReadWord)
	e.adapt.fixedNs = int64(bc.DMASetup + bc.DMACompletionCheck)
}

// recvDMAThreshold returns the receive-DMA switch length currently in
// effect.
func (e *Endpoint) recvDMAThreshold() int {
	if e.adapt.enabled {
		return e.adapt.threshold
	}
	return e.sys.cfg.Thresholds.RecvDMA
}

func ewma(old, sample int64) int64 {
	return old + (sample-old)>>ewmaShift
}

// observeWordReads folds the elapsed virtual time of a words-long
// sequence of full-round-trip PIO reads into the per-word cost EWMA.
func (e *Endpoint) observeWordReads(words int, elapsed sim.Duration) {
	if !e.adapt.enabled || words <= 0 || elapsed <= 0 {
		return
	}
	e.adapt.wordNs = ewma(e.adapt.wordNs, int64(elapsed)/int64(words))
	e.adaptTick()
}

// observeDMARead folds one n-byte DMA drain's elapsed time into the
// fixed-overhead EWMA, after subtracting the size-proportional part.
func (e *Endpoint) observeDMARead(n int, elapsed sim.Duration) {
	if !e.adapt.enabled || n <= 0 || elapsed <= 0 {
		return
	}
	fixed := int64(elapsed) - int64(n)*int64(e.nic.Bus().Config().DMAPerByte)
	if fixed < 0 {
		fixed = 0
	}
	e.adapt.fixedNs = ewma(e.adapt.fixedNs, fixed)
	e.adaptTick()
}

func (e *Endpoint) adaptTick() {
	e.adapt.obs++
	if e.adapt.obs < e.adapt.windowObs {
		return
	}
	e.adapt.obs = 0
	e.recomputeThreshold()
}

func (e *Endpoint) recomputeThreshold() {
	a := &e.adapt
	b4 := 4 * int64(e.nic.Bus().Config().DMAPerByte)
	var t int
	if a.wordNs <= b4 {
		// PIO reads observed no dearer per byte than the DMA stream
		// rate: DMA can never win, push the threshold to the ceiling.
		t = a.ceil
		if t == 0 {
			t = 1 << 30
		}
	} else {
		n := (4*a.fixedNs + (a.wordNs - b4) - 1) / (a.wordNs - b4) // ceil(4F / (w−4b))
		t = int(n+3) &^ 3                                          // whole words
	}
	if t < a.floor {
		t = a.floor
	}
	if a.ceil != 0 && t > a.ceil {
		t = a.ceil
	}
	if t != a.threshold {
		a.threshold = t
		e.im.thresholdAdapts.Inc()
	}
	e.im.recvThresholdBytes.Set(int64(a.threshold))
}
