package core

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements the retry extension's send side: a per-endpoint
// daemon that watches posted buffers and retransmits any not yet
// acknowledged within the (exponentially backed off) timeout. A
// retransmission rewrites the payload and descriptor with the values
// of the original post — idempotent, so a receiver that did observe
// the first transmission cannot deliver the message twice (its slot
// floor already carries the sequence) — and then bumps the MESSAGE
// post counter of every receiver still owing an ACK, which forces
// those receivers to rescan the descriptors no matter which earlier
// writes were lost. ACK words are likewise self-healing: a receiver
// that rescans a descriptor it has already consumed re-writes the
// slot's ACK word (scanSender), repairing a dropped acknowledgment.
// In the worst case the sender reclaims the buffer after MaxRetries
// (the receiver is presumed dead).

// descCheck is the integrity checksum the retry extension stores in
// the last descriptor word: FNV-1a over the descriptor fields —
// including the destination mask, so a torn mask can never route a
// message to the wrong receiver — and the payload, forced nonzero so
// an all-zero (never written) descriptor can never validate.
func descCheck(off, n int, seq, dests uint32, data []byte) uint32 {
	const (
		basis = 2166136261
		prime = 16777619
	)
	h := uint32(basis)
	word := func(v uint32) {
		for i := uint(0); i < 4; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	word(uint32(off))
	word(uint32(n))
	word(seq)
	word(dests)
	for _, b := range data {
		h ^= uint32(b)
		h *= prime
	}
	if h == 0 {
		h = 1
	}
	return h
}

// unackedOutstanding reports whether any posted buffer is still waiting
// on a receiver.
func (e *Endpoint) unackedOutstanding() bool {
	for i := range e.live {
		if e.live[i].used && e.live[i].acked != e.live[i].dests {
			return true
		}
	}
	return false
}

// retryLoop is the retransmission daemon. It sleeps on retryWake while
// nothing is outstanding — crucially, a blocked daemon schedules no
// events, so an idle simulation still quiesces — and otherwise sweeps
// at a quarter of the base timeout.
func (e *Endpoint) retryLoop(p *sim.Proc) {
	rc := e.sys.cfg.Retry
	tick := rc.Timeout / 4
	if tick < sim.Microsecond {
		tick = sim.Microsecond
	}
	for {
		for !e.unackedOutstanding() {
			e.retryWake.Wait(p)
		}
		p.Delay(tick)
		e.retryPass(p)
	}
}

// retryPass refreshes ACK state, reclaims buffers whose retry budget is
// exhausted, and retransmits those past their deadline.
func (e *Endpoint) retryPass(p *sim.Proc) {
	rc := e.sys.cfg.Retry
	e.collect(p)
	now := p.Now()
	for s := range e.live {
		lb := &e.live[s]
		if !lb.used || lb.acked == lb.dests || lb.busy {
			continue
		}
		if now.Sub(lb.posted) < rc.Timeout<<uint(lb.attempts) {
			continue
		}
		if lb.attempts >= rc.MaxRetries {
			// The remaining receivers are presumed dead; reclaim the
			// buffer so the sender is not wedged forever.
			e.stats.RetryFailures++
			e.im.retryFailures.Inc()
			e.sys.tracer.EmitMsg(now, trace.BBP, e.me, "retry-fail", lb.msg, lb.span, "slot=%d seq=%d attempts=%d", s, lb.seq, lb.attempts)
			e.freeLive(s, lb)
			continue
		}
		e.retransmit(p, s, lb)
	}
	// Unconditional rewrite — after reclaims, so abandoned gaps are
	// published immediately — heals MIN-UNACKED words whose last update
	// the ring dropped (receivers may be holding deliveries on them).
	e.syncMinUn(p, true)
}

// retransmit rewrites slot s's payload, descriptor and outstanding
// MESSAGE flag words. busy pins the buffer so a concurrent collect (the
// application thread GCs on allocation failure) cannot free and reuse
// the slot mid-rewrite.
func (e *Endpoint) retransmit(p *sim.Proc, s int, lb *liveBuf) {
	lay, cfg := e.sys.lay, e.sys.cfg
	lb.busy = true
	lb.attempts++
	e.stats.Retransmits++
	e.im.retransmits.Inc()
	// Each retransmission is its own span, parented to the original send
	// span, so a timeline shows attempt N hanging off the message root.
	span := e.sys.tracer.BeginSpan(p.Now(), trace.BBP, e.me, "retransmit", lb.msg, lb.span, "slot=%d seq=%d attempt=%d", s, lb.seq, lb.attempts)
	pm, pp := e.nic.SetTraceContext(lb.msg, span)

	if lb.n > 0 {
		if lb.n >= cfg.Thresholds.SendDMA {
			e.nic.WriteDMA(p, lay.dataOff(e.me, lb.off), lb.data)
		} else {
			e.nic.Write(p, lay.dataOff(e.me, lb.off), lb.data)
		}
	}
	var desc [descSize]byte
	putWord(desc[0:], uint32(lb.off))
	putWord(desc[4:], uint32(lb.n))
	putWord(desc[8:], lb.seq)
	putWord(desc[12:], lb.dests)
	putWord(desc[16:], descCheck(lb.off, lb.n, lb.seq, lb.dests, lb.data))
	e.nic.Write(p, lay.desc(e.me, s), desc[:])

	for r := 0; r < e.Procs(); r++ {
		bit := uint32(1) << uint(r)
		if lb.dests&bit == 0 || lb.acked&bit != 0 {
			continue
		}
		// A fresh counter value, never a repeat: the receiver rescans
		// even if every earlier flag write to it was dropped.
		e.outToggles[r]++
		if cfg.InterruptDriven {
			e.nic.WriteWordInterrupt(p, lay.msgFlags(r, e.me), e.outToggles[r])
		} else {
			e.nic.WriteWord(p, lay.msgFlags(r, e.me), e.outToggles[r])
		}
	}
	e.nic.SetTraceContext(pm, pp)
	e.sys.tracer.EndSpan(p.Now(), trace.BBP, e.me, "retransmit-end", span, lb.msg, "slot=%d attempt=%d", s, lb.attempts)
	lb.posted = p.Now()
	lb.busy = false
}
