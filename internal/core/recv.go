package core

import (
	"errors"

	"repro/internal/pci"
	"repro/internal/sim"
	"repro/internal/trace"
)

// errChecksum is internal to the retry extension: the payload read back
// for a detected message did not match its descriptor checksum (some of
// its packets were lost in flight). The message is re-queued unacked
// and re-read after the sender's retransmission repairs the buffer.
var errChecksum = errors.New("bbp: payload checksum mismatch (awaiting retransmission)")

// initPollPlan fixes, at Attach time, how this receiver's polls read
// MESSAGE flags. The receiver's flag words are contiguous —
// msgFlags(me, s) = base(me)+4s for s = 0..nprocs−1, immediately
// followed under the retry extension by the MIN-UNACKED words
// minUn(me, s) = base(me)+4·nprocs+4s — so one aligned burst of nprocs
// (base) or 2·nprocs (retry) words covers every word a full poll sweep
// would otherwise fetch with per-word 650 ns reads. Whether the burst
// actually wins is a pure cost-model question, decided here once from
// the same numbers the bus will charge: against the (nprocs−1) probes
// of an all-senders sweep (burstAllOK), and against the single probe of
// a focused poll (burstOneOK — only worthwhile under retry, where one
// probe is already two word reads).
func (e *Endpoint) initPollPlan() {
	n := e.sys.lay.nprocs
	words, probeWords := n, 1
	if e.sys.cfg.Retry.Enabled {
		words, probeWords = 2*n, 2
	}
	e.burstWords = words
	e.burstBuf = make([]uint32, words)
	bus := e.nic.Bus()
	burst := bus.BurstReadCost(words)
	probe := sim.Duration(probeWords) * bus.Config().PIOReadWord
	switch e.sys.cfg.BurstPoll {
	case BurstOff:
		// both false
	case BurstOn:
		e.burstAllOK, e.burstOneOK = true, true
	default: // BurstAuto
		e.burstAllOK = burst < sim.Duration(n-1)*probe
		e.burstOneOK = burst < probe
	}
}

// acceptFlags applies one observed sample of sender s's MESSAGE flag
// word (and, under the retry extension, its MIN-UNACKED word) — however
// the words were read. Both the per-word and the burst poll paths feed
// this one function, so detection logic cannot diverge between them.
//
// In the base protocol the flag word is a per-slot toggle mask diffed
// against the shadow copy. Under the retry extension it is a bare post
// counter: any change (a post or a retransmission) triggers a scan of
// all of s's descriptors, and detection rests on per-slot sequence
// floors rather than toggle parity, which is ambiguous once flag writes
// can be lost.
func (e *Endpoint) acceptFlags(p *sim.Proc, s int, flags, minUn uint32) {
	lay, cfg := e.sys.lay, e.sys.cfg
	if cfg.Retry.Enabled {
		// Refresh the delivery gate even when the post counter is
		// unchanged: the sender advances MIN-UNACKED on acknowledgments
		// and reclaims without bumping the counter.
		e.minUnIn[s] = minUn
		if flags == e.lastSeen[s] && !e.rescan[s] {
			return
		}
		// Absorb the counter before scanning: a lost counter write is
		// healed by the sender's next post or retransmission, which
		// always produces a fresh value.
		e.lastSeen[s] = flags
		e.rescan[s] = false
		e.scanSender(p, s)
		return
	}
	diff := flags ^ e.lastSeen[s]
	if diff == 0 {
		return
	}
	for b := 0; b < cfg.Buffers; b++ {
		if diff&(1<<uint(b)) == 0 {
			continue
		}
		var desc [descSize]byte
		e.nic.Read(p, lay.desc(s, b), desc[:descWords*4])
		m := message{
			slot: b,
			off:  int(getWord(desc[0:])),
			n:    int(getWord(desc[4:])),
			seq:  getWord(desc[8:]),
		}
		p.Delay(cfg.Costs.RecvBookkeeping)
		e.sys.tracer.EmitMsg(p.Now(), trace.BBP, e.me, "detect", trace.MsgID(s, m.seq), 0, "sender=%d slot=%d len=%d seq=%d", s, b, m.n, m.seq)
		e.insertPending(s, m)
		e.lastSeen[s] ^= 1 << uint(b)
	}
}

// pollWord is the pre-aggregation probe: one (retry: two) full 650 ns
// PIO word reads for a single sender — the receive overhead §7 of the
// paper attributes to polling. Its elapsed time doubles as a live
// sample of the per-word read cost for the adaptive threshold.
func (e *Endpoint) pollWord(p *sim.Proc, s int) {
	lay, cfg := e.sys.lay, e.sys.cfg
	e.stats.Polls++
	e.im.polls.Inc()
	p.Delay(cfg.Costs.PollOverhead)
	t0 := p.Now()
	flags := e.nic.ReadWord(p, lay.msgFlags(e.me, s))
	words := 1
	var minUn uint32
	if cfg.Retry.Enabled {
		minUn = e.nic.ReadWord(p, lay.minUn(e.me, s))
		words = 2
	}
	e.stats.PollWords += int64(words)
	e.im.pollWords.Add(int64(words))
	e.observeWordReads(words, p.Now().Sub(t0))
	e.acceptFlags(p, s, flags, minUn)
}

// pollBurst collapses a poll into one wide read of the receiver's whole
// contiguous flag region and runs every sender's words through the same
// acceptance logic as the per-word path. The loop overhead is paid once
// for the whole sweep, not once per sender.
func (e *Endpoint) pollBurst(p *sim.Proc) {
	lay, cfg := e.sys.lay, e.sys.cfg
	e.stats.Polls++
	e.im.polls.Inc()
	p.Delay(cfg.Costs.PollOverhead)
	e.nic.ReadWords(p, lay.base(e.me), e.burstBuf)
	w := int64(e.burstWords)
	e.stats.PollWords += w
	e.stats.BurstPolls++
	e.stats.BurstPollWords += w
	e.im.pollWords.Add(w)
	e.im.burstPolls.Inc()
	e.im.burstPollWords.Add(w)
	n := e.Procs()
	for s := 0; s < n; s++ {
		if s == e.me {
			continue
		}
		var minUn uint32
		if cfg.Retry.Enabled {
			minUn = e.burstBuf[n+s]
		}
		e.acceptFlags(p, s, e.burstBuf[s], minUn)
	}
}

// pollFrom polls for messages from sender s: the focused shape used by
// Recv/TryRecv/MsgAvailFrom. It upgrades to the burst only where the
// plan says one wide read beats even a single probe.
func (e *Endpoint) pollFrom(p *sim.Proc, s int) {
	if e.burstOneOK {
		e.pollBurst(p)
		return
	}
	e.pollWord(p, s)
}

// pollAll polls every sender once: the sweep shape used by
// RecvAny/MsgAvail, and the poll loop the burst read collapses from
// nprocs−1 bus round trips to one transaction.
func (e *Endpoint) pollAll(p *sim.Proc) {
	if e.burstAllOK {
		e.pollBurst(p)
		return
	}
	for s := 0; s < e.Procs(); s++ {
		if s != e.me {
			e.pollWord(p, s)
		}
	}
}

// scanSender (retry extension only) reads all of sender s's descriptors
// and classifies each slot by its sequence against the slot floor:
// newer and well-formed — accept; equal to the floor — a retransmission
// of a message this receiver already consumed, meaning the ACK write
// was lost, so acknowledge it again; older or torn — ignore, the
// sender's retransmission will repair the descriptor and bump the post
// counter, triggering another scan.
func (e *Endpoint) scanSender(p *sim.Proc, s int) {
	lay, cfg := e.sys.lay, e.sys.cfg
	descs := make([]byte, descSize*cfg.Buffers)
	e.nic.Read(p, lay.desc(s, 0), descs)
scan:
	for b := 0; b < cfg.Buffers; b++ {
		d := descs[descSize*b:]
		m := message{
			slot:  b,
			off:   int(getWord(d[0:])),
			n:     int(getWord(d[4:])),
			seq:   getWord(d[8:]),
			dests: getWord(d[12:]),
			ck:    getWord(d[16:]),
		}
		if m.ck == 0 {
			continue // never written
		}
		if m.dests&(1<<uint(e.me)) == 0 {
			// Addressed elsewhere (or the mask is torn — then no ACK
			// reaches the sender and its retransmission repairs the
			// descriptor and re-bumps our post counter). Skipping
			// before any floor bookkeeping keeps this slot's history
			// entirely the business of its real receivers.
			continue
		}
		for _, q := range e.pending[s] {
			if q.seq == m.seq {
				continue scan // already detected, not yet consumed
			}
		}
		floor := e.slotSeq[s][b]
		if !seqLess(floor, m.seq) {
			if m.seq == floor && floor != 0 {
				// Re-acknowledge with our own record of what we
				// consumed, not the (possibly torn) descriptor. Sound
				// even if the slot meanwhile holds a newer message
				// whose descriptor packets were all lost: the ACK names
				// the old sequence, so the sender keeps retransmitting
				// the new occupant until this scan can accept it.
				e.nic.WriteWord(p, lay.ackSlot(s, e.me, b), floor)
				e.stats.ReAcks++
				e.im.reAcks.Inc()
				e.sys.tracer.EmitMsg(p.Now(), trace.BBP, e.me, "re-ack", trace.MsgID(s, floor), 0, "sender=%d slot=%d seq=%d", s, b, floor)
			}
			continue
		}
		if m.n < 0 || m.off < 0 || m.off+m.n > lay.dataSize {
			// Torn descriptor — some of its packets were lost in flight.
			e.stats.StaleDescs++
			e.im.staleDescs.Inc()
			e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "torn-desc", "sender=%d slot=%d seq=%d", s, b, m.seq)
			continue
		}
		m.prevFloor = floor
		e.slotSeq[s][b] = m.seq
		p.Delay(cfg.Costs.RecvBookkeeping)
		e.sys.tracer.EmitMsg(p.Now(), trace.BBP, e.me, "detect", trace.MsgID(s, m.seq), 0, "sender=%d slot=%d len=%d seq=%d", s, b, m.n, m.seq)
		e.insertPending(s, m)
	}
}

// insertPending keeps pending[s] sorted by sequence so consumption is
// in-order even when several flags flip between two polls.
func (e *Endpoint) insertPending(s int, m message) {
	q := e.pending[s]
	i := len(q)
	for i > 0 && seqLess(m.seq, q[i-1].seq) {
		i--
	}
	q = append(q, message{})
	copy(q[i+1:], q[i:])
	q[i] = m
	e.pending[s] = q
}

// consume reads message m's payload from sender s's data partition into
// buf and toggles the ACK flag bit in s's control partition, completing
// the transfer.
func (e *Endpoint) consume(p *sim.Proc, s int, m message, buf []byte) (int, error) {
	lay, cfg := e.sys.lay, e.sys.cfg
	if m.n > len(buf) {
		return 0, ErrTruncated
	}
	// The drain span covers payload read + ACK write; its End is the
	// existing "consume" event, so the legacy detect→consume measurement
	// is unchanged. The message id is rebuilt from the descriptor —
	// causal joins to the sender's spans need nothing on the wire.
	msg := trace.MsgID(s, m.seq)
	span := e.sys.tracer.BeginSpan(p.Now(), trace.BBP, e.me, "drain", msg, 0, "sender=%d slot=%d len=%d", s, m.slot, m.n)
	e.im.recvSize.Observe(int64(m.n))
	if m.n > 0 {
		src := lay.dataOff(s, m.off)
		t0 := p.Now()
		if m.n >= e.recvDMAThreshold() {
			e.nic.ReadDMA(p, src, buf[:m.n])
			e.observeDMARead(m.n, p.Now().Sub(t0))
		} else {
			e.nic.Read(p, src, buf[:m.n])
			e.observeWordReads(pci.WordsFor(m.n), p.Now().Sub(t0))
		}
	}
	if cfg.Retry.Enabled && descCheck(m.off, m.n, m.seq, m.dests, buf[:m.n]) != m.ck {
		// Part of the descriptor or payload was dropped in flight — and
		// what this message struct holds may itself be a torn snapshot.
		// Roll the detection back (slot floor, plus a forced rescan
		// since the post counter has not moved) so the next poll
		// re-reads the descriptor after the sender's retransmission has
		// rewritten buffer and descriptor. No ACK is written, so the
		// sender keeps retrying.
		e.slotSeq[s][m.slot] = m.prevFloor
		e.rescan[s] = true
		e.stats.ChecksumDrops++
		e.im.checksumDrops.Inc()
		e.sys.tracer.EmitMsg(p.Now(), trace.BBP, e.me, "ck-drop", msg, span, "sender=%d slot=%d seq=%d", s, m.slot, m.seq)
		e.sys.tracer.EndSpan(p.Now(), trace.BBP, e.me, "drain-abort", span, msg, "checksum")
		return 0, errChecksum
	}
	if cfg.Retry.Enabled {
		e.lastDeliv[s] = m.seq
	}
	// ACK toggle: this word in s's control partition is written only by
	// this process, preserving the single-writer discipline.
	pm, pp := e.nic.SetTraceContext(msg, span)
	e.ackWrite(p, s, m)
	e.nic.SetTraceContext(pm, pp)
	e.sys.tracer.EmitMsg(p.Now(), trace.BBP, e.me, "ack", msg, span, "sender=%d slot=%d", s, m.slot)
	e.sys.tracer.EndSpan(p.Now(), trace.BBP, e.me, "consume", span, msg, "sender=%d slot=%d len=%d", s, m.slot, m.n)
	e.stats.Received++
	e.stats.BytesRecv += int64(m.n)
	e.im.recvs.Inc()
	e.im.bytesRecv.Add(int64(m.n))
	return m.n, nil
}

// ackWrite acknowledges m to sender s. The base protocol flips the ACK
// toggle bit for the buffer slot. The retry extension instead writes
// the consumed sequence into the slot's own ACK word. Toggle parity is
// ambiguous once writes can be lost (a stale ACK replica can coincide
// with a reused slot's fresh toggle and falsely acknowledge an
// unconsumed buffer), and a single sequence-valued word per pair is no
// better — acknowledging seq N would falsely cover an undelivered
// earlier message whose writes were all lost, since a sequence gap is
// invisible to the receiver. Per slot, sequences are strictly
// increasing and gap-free in occupancy order, so "consumed seq X from
// slot b" can only ever under-report; a lost ACK write is healed by
// the re-ack path in scanSender.
func (e *Endpoint) ackWrite(p *sim.Proc, s int, m message) {
	if e.sys.cfg.EarlyAck {
		// The transit handler (spin.EarlyAck) already injected this
		// toggle when the MESSAGE-flag packet crossed our NIC; writing
		// it again here would re-toggle the word and un-acknowledge the
		// slot.
		return
	}
	if e.sys.cfg.Retry.Enabled {
		e.nic.WriteWord(p, e.sys.lay.ackSlot(s, e.me, m.slot), m.seq)
		return
	}
	e.ackOut[s] ^= 1 << uint(m.slot)
	e.nic.WriteWord(p, e.sys.lay.ackFlags(s, e.me), e.ackOut[s])
}

// popPending removes the lowest-sequence pending message from s. Under
// the retry extension a message whose sequence gaps past the last
// delivery is held back while the sender's MIN-UNACKED word is below
// it: an earlier message addressed to us may still be in repair, and
// delivering past it would break per-stream FIFO. A contiguous
// sequence (lastDeliv+1) needs no gate — there is no room for a
// missing earlier message. The word is monotone, so a stale replica
// can only delay delivery; the retry daemon rewrites it every pass, so
// the gate always opens once the gap is consumed by us or abandoned by
// the sender.
func (e *Endpoint) popPending(s int) (message, bool) {
	q := e.pending[s]
	if len(q) == 0 {
		return message{}, false
	}
	if e.sys.cfg.Retry.Enabled &&
		q[0].seq != e.lastDeliv[s]+1 && seqLess(e.minUnIn[s], q[0].seq) {
		return message{}, false
	}
	m := q[0]
	e.pending[s] = q[1:]
	return m, true
}

// Recv blocks until the next in-order message from src arrives, copies
// it into buf, acknowledges it, and returns its length (bbp_Recv).
func (e *Endpoint) Recv(p *sim.Proc, src int, buf []byte) (int, error) {
	if src == e.me || src < 0 || src >= e.Procs() {
		return 0, ErrBadRank
	}
	cfg := e.sys.cfg
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	for {
		if m, ok := e.popPending(src); ok {
			n, err := e.consume(p, src, m, buf)
			if err != errChecksum {
				return n, err
			}
			// Rolled back; keep polling — every iteration advances
			// virtual time, so the retry daemon's rewrite will land.
		}
		e.pollFrom(p, src)
		if deadline >= 0 && p.Now() > deadline {
			return 0, ErrTimeout
		}
		if len(e.pending[src]) > 0 {
			continue
		}
		if cfg.InterruptDriven {
			// Sleep until any MESSAGE-flag interrupt; re-poll then.
			if deadline >= 0 {
				e.intrWake.WaitTimeout(p, deadline.Sub(p.Now()))
			} else {
				e.intrWake.Wait(p)
			}
		}
	}
}

// TryRecv is Recv without blocking: it performs one poll and reports
// ok=false if no message from src is ready.
func (e *Endpoint) TryRecv(p *sim.Proc, src int, buf []byte) (n int, ok bool, err error) {
	if src == e.me || src < 0 || src >= e.Procs() {
		return 0, false, ErrBadRank
	}
	tryConsume := func() (int, bool, error, bool) {
		m, found := e.popPending(src)
		if !found {
			return 0, false, nil, false
		}
		n, err := e.consume(p, src, m, buf)
		if err == errChecksum {
			return 0, false, nil, true // rolled back; re-detected later
		}
		return n, err == nil, err, true
	}
	if n, ok, err, done := tryConsume(); done {
		return n, ok, err
	}
	e.pollFrom(p, src)
	if n, ok, err, done := tryConsume(); done {
		return n, ok, err
	}
	return 0, false, nil
}

// RecvAny blocks for the next message from any sender (round-robin fair
// across senders), returning the source and length.
func (e *Endpoint) RecvAny(p *sim.Proc, buf []byte) (src, n int, err error) {
	cfg := e.sys.cfg
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	for {
		for i := 0; i < e.Procs(); i++ {
			s := (e.rrNext + i) % e.Procs()
			if s == e.me {
				continue
			}
			m, ok := e.popPending(s)
			if !ok {
				continue
			}
			n, err = e.consume(p, s, m, buf)
			if err == errChecksum {
				continue // rolled back; re-detected on a later poll
			}
			e.rrNext = (s + 1) % e.Procs()
			return s, n, err
		}
		e.pollAll(p)
		if deadline >= 0 && p.Now() > deadline {
			return 0, 0, ErrTimeout
		}
		if e.anyPending() {
			continue
		}
		if cfg.InterruptDriven {
			if deadline >= 0 {
				e.intrWake.WaitTimeout(p, deadline.Sub(p.Now()))
			} else {
				e.intrWake.Wait(p)
			}
		}
	}
}

// MsgAvail polls every sender once and reports whether any message is
// waiting (bbp_MsgAvail).
func (e *Endpoint) MsgAvail(p *sim.Proc) bool {
	e.pollAll(p)
	return e.anyPending()
}

// MsgAvailFrom polls a single sender and reports whether a message from
// it is waiting.
func (e *Endpoint) MsgAvailFrom(p *sim.Proc, src int) bool {
	if src == e.me || src < 0 || src >= e.Procs() {
		return false
	}
	e.pollFrom(p, src)
	return len(e.pending[src]) > 0
}

func (e *Endpoint) anyPending() bool {
	for _, q := range e.pending {
		if len(q) > 0 {
			return true
		}
	}
	return false
}
