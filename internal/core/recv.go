package core

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// pollSender reads sender s's MESSAGE flag word, diffs it against the
// shadow copy, and moves any newly posted buffers onto the pending queue
// in sequence order. One PIO read across the I/O bus per call — the
// receive overhead §7 of the paper attributes to polling.
func (e *Endpoint) pollSender(p *sim.Proc, s int) {
	lay, cfg := e.sys.lay, e.sys.cfg
	e.stats.Polls++
	p.Delay(cfg.Costs.PollOverhead)
	flags := e.nic.ReadWord(p, lay.msgFlags(e.me, s))
	diff := flags ^ e.lastSeen[s]
	if diff == 0 {
		return
	}
	for b := 0; b < cfg.Buffers; b++ {
		if diff&(1<<uint(b)) == 0 {
			continue
		}
		var desc [descWords * 4]byte
		e.nic.Read(p, lay.desc(s, b), desc[:])
		m := message{
			slot: b,
			off:  int(getWord(desc[0:])),
			n:    int(getWord(desc[4:])),
			seq:  getWord(desc[8:]),
		}
		p.Delay(cfg.Costs.RecvBookkeeping)
		e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "detect", "sender=%d slot=%d len=%d seq=%d", s, b, m.n, m.seq)
		e.insertPending(s, m)
		e.lastSeen[s] ^= 1 << uint(b)
	}
}

// insertPending keeps pending[s] sorted by sequence so consumption is
// in-order even when several flags flip between two polls.
func (e *Endpoint) insertPending(s int, m message) {
	q := e.pending[s]
	i := len(q)
	for i > 0 && seqLess(m.seq, q[i-1].seq) {
		i--
	}
	q = append(q, message{})
	copy(q[i+1:], q[i:])
	q[i] = m
	e.pending[s] = q
}

// consume reads message m's payload from sender s's data partition into
// buf and toggles the ACK flag bit in s's control partition, completing
// the transfer.
func (e *Endpoint) consume(p *sim.Proc, s int, m message, buf []byte) (int, error) {
	lay, cfg := e.sys.lay, e.sys.cfg
	if m.n > len(buf) {
		return 0, ErrTruncated
	}
	if m.n > 0 {
		src := lay.dataOff(s, m.off)
		if m.n >= cfg.RecvDMAThreshold {
			e.nic.ReadDMA(p, src, buf[:m.n])
		} else {
			e.nic.Read(p, src, buf[:m.n])
		}
	}
	// ACK toggle: this word in s's control partition is written only by
	// this process, preserving the single-writer discipline.
	e.ackToggle(p, s, m.slot)
	e.sys.tracer.Emitf(p.Now(), trace.BBP, e.me, "consume", "sender=%d slot=%d len=%d", s, m.slot, m.n)
	e.stats.Received++
	e.stats.BytesRecv += int64(m.n)
	return m.n, nil
}

// ackToggle flips this process's ACK bit for s's buffer slot.
func (e *Endpoint) ackToggle(p *sim.Proc, s, slot int) {
	e.ackOut[s] ^= 1 << uint(slot)
	e.nic.WriteWord(p, e.sys.lay.ackFlags(s, e.me), e.ackOut[s])
}

// popPending removes the lowest-sequence pending message from s.
func (e *Endpoint) popPending(s int) (message, bool) {
	q := e.pending[s]
	if len(q) == 0 {
		return message{}, false
	}
	m := q[0]
	e.pending[s] = q[1:]
	return m, true
}

// Recv blocks until the next in-order message from src arrives, copies
// it into buf, acknowledges it, and returns its length (bbp_Recv).
func (e *Endpoint) Recv(p *sim.Proc, src int, buf []byte) (int, error) {
	if src == e.me || src < 0 || src >= e.Procs() {
		return 0, ErrBadRank
	}
	cfg := e.sys.cfg
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	for {
		if m, ok := e.popPending(src); ok {
			return e.consume(p, src, m, buf)
		}
		e.pollSender(p, src)
		if len(e.pending[src]) > 0 {
			continue
		}
		if deadline >= 0 && p.Now() > deadline {
			return 0, ErrTimeout
		}
		if cfg.InterruptDriven {
			// Sleep until any MESSAGE-flag interrupt; re-poll then.
			if deadline >= 0 {
				e.intrWake.WaitTimeout(p, deadline.Sub(p.Now()))
			} else {
				e.intrWake.Wait(p)
			}
		}
	}
}

// TryRecv is Recv without blocking: it performs one poll and reports
// ok=false if no message from src is ready.
func (e *Endpoint) TryRecv(p *sim.Proc, src int, buf []byte) (n int, ok bool, err error) {
	if src == e.me || src < 0 || src >= e.Procs() {
		return 0, false, ErrBadRank
	}
	if m, found := e.popPending(src); found {
		n, err = e.consume(p, src, m, buf)
		return n, err == nil, err
	}
	e.pollSender(p, src)
	if m, found := e.popPending(src); found {
		n, err = e.consume(p, src, m, buf)
		return n, err == nil, err
	}
	return 0, false, nil
}

// RecvAny blocks for the next message from any sender (round-robin fair
// across senders), returning the source and length.
func (e *Endpoint) RecvAny(p *sim.Proc, buf []byte) (src, n int, err error) {
	cfg := e.sys.cfg
	deadline := sim.Time(-1)
	if cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(cfg.RecvTimeout)
	}
	for {
		for i := 0; i < e.Procs(); i++ {
			s := (e.rrNext + i) % e.Procs()
			if s == e.me {
				continue
			}
			if m, ok := e.popPending(s); ok {
				e.rrNext = (s + 1) % e.Procs()
				n, err = e.consume(p, s, m, buf)
				return s, n, err
			}
		}
		for s := 0; s < e.Procs(); s++ {
			if s != e.me {
				e.pollSender(p, s)
			}
		}
		if e.anyPending() {
			continue
		}
		if deadline >= 0 && p.Now() > deadline {
			return 0, 0, ErrTimeout
		}
		if cfg.InterruptDriven {
			if deadline >= 0 {
				e.intrWake.WaitTimeout(p, deadline.Sub(p.Now()))
			} else {
				e.intrWake.Wait(p)
			}
		}
	}
}

// MsgAvail polls every sender once and reports whether any message is
// waiting (bbp_MsgAvail).
func (e *Endpoint) MsgAvail(p *sim.Proc) bool {
	for s := 0; s < e.Procs(); s++ {
		if s != e.me {
			e.pollSender(p, s)
		}
	}
	return e.anyPending()
}

// MsgAvailFrom polls a single sender and reports whether a message from
// it is waiting.
func (e *Endpoint) MsgAvailFrom(p *sim.Proc, src int) bool {
	if src == e.me || src < 0 || src >= e.Procs() {
		return false
	}
	e.pollSender(p, src)
	return len(e.pending[src]) > 0
}

func (e *Endpoint) anyPending() bool {
	for _, q := range e.pending {
		if len(q) > 0 {
			return true
		}
	}
	return false
}
