package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scramnet"
	"repro/internal/sim"
)

// The five-call BillBoard API from the paper: init (New/Attach), Send,
// Recv, Mcast and MsgAvail, on a simulated 4-node ring.
func Example() {
	k := sim.NewKernel()
	ring, _ := scramnet.New(k, scramnet.DefaultConfig(4))
	sys, _ := core.New(ring, core.DefaultConfig()) // bbp_init
	eps := make([]*core.Endpoint, 4)
	for i := range eps {
		eps[i], _ = sys.Attach(i)
	}

	k.Spawn("node0", func(p *sim.Proc) {
		eps[0].Send(p, 1, []byte("point-to-point"))    // bbp_Send
		eps[0].Mcast(p, []int{1, 2, 3}, []byte("all")) // bbp_Mcast
	})
	for r := 1; r < 4; r++ {
		r := r
		k.Spawn(fmt.Sprintf("node%d", r), func(p *sim.Proc) {
			buf := make([]byte, 32)
			if r == 1 {
				n, _ := eps[1].Recv(p, 0, buf) // bbp_Recv
				fmt.Printf("node 1: %s\n", buf[:n])
			}
			n, _ := eps[r].Recv(p, 0, buf)
			_ = n
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	fmt.Println("broadcast delivered to 3 receivers")
	// Output:
	// node 1: point-to-point
	// broadcast delivered to 3 receivers
}
