package core

// allocator is a first-fit free-list allocator over one process's data
// partition. It is purely local state: the owner is the only process
// that ever allocates from or frees into its partition, which is what
// keeps the protocol lock-free.
type allocator struct {
	free []span // sorted by off, non-adjacent
	size int
}

type span struct{ off, n int }

func newAllocator(size int) *allocator {
	return &allocator{free: []span{{0, size}}, size: size}
}

// alloc reserves n bytes (rounded up to a word) first-fit. ok is false
// when no free span is large enough.
func (a *allocator) alloc(n int) (off int, ok bool) {
	n = (n + 3) &^ 3
	if n == 0 {
		n = 4
	}
	for i, s := range a.free {
		if s.n >= n {
			a.free[i].off += n
			a.free[i].n -= n
			if a.free[i].n == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return s.off, true
		}
	}
	return 0, false
}

// release returns [off, off+n) to the free list, coalescing neighbors.
func (a *allocator) release(off, n int) {
	n = (n + 3) &^ 3
	if n == 0 {
		n = 4
	}
	i := 0
	for i < len(a.free) && a.free[i].off < off {
		i++
	}
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{off, n}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].n == a.free[i+1].off {
		a.free[i].n += a.free[i+1].n
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].n == a.free[i].off {
		a.free[i-1].n += a.free[i].n
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// largestFree returns the biggest allocatable block.
func (a *allocator) largestFree() int {
	max := 0
	for _, s := range a.free {
		if s.n > max {
			max = s.n
		}
	}
	return max
}

// totalFree returns the sum of free bytes.
func (a *allocator) totalFree() int {
	t := 0
	for _, s := range a.free {
		t += s.n
	}
	return t
}
