package core_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestMcastDeadReceiverReclaim is the regression test for the multicast
// buffer leak: a bbp_Mcast group with one bypassed member used to pin
// the posted buffer until the retry daemon exhausted MaxRetries ×
// doubling Timeout (~51 ms per message). With the failure detector on,
// the dead receiver's ACK obligation is abandoned within the
// confirmation window, survivors keep receiving, and the sender never
// stalls on leaked slots.
func TestMcastDeadReceiverReclaim(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	lcfg := liveness.DefaultConfig()
	reg := metrics.New()
	kill := 500 * sim.Microsecond
	script := &fault.Script{Seed: 21, Actions: []fault.Action{
		{At: sim.Time(0).Add(kill), Kind: fault.NodeFail, Node: 2},
	}}
	c, err := cluster.New(k, cluster.Options{
		Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script,
		Liveness: &lcfg, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 24 multicasts to {1, 2, 3}: far more than the 16 buffer slots, so
	// the sender must reclaim mid-stream to finish. Node 2 dies after
	// the first few.
	const msgs = 24
	var doneAt sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			payload := bytes.Repeat([]byte{byte(i + 1)}, 24)
			if err := c.Endpoints[0].Mcast(p, []int{1, 2, 3}, payload); err != nil {
				t.Errorf("mcast %d: %v", i, err)
				return
			}
			p.Delay(50 * sim.Microsecond)
		}
		doneAt = p.Now()
	})
	for _, rx := range []int{1, 3} {
		rx := rx
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 64)
			for i := 0; i < msgs; i++ {
				n, err := c.Endpoints[rx].Recv(p, 0, buf)
				if err != nil {
					t.Errorf("survivor %d recv %d: %v", rx, i, err)
					return
				}
				if n != 24 || buf[0] != byte(i+1) {
					t.Errorf("survivor %d recv %d: n=%d first=%d", rx, i, n, buf[0])
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	stats := c.Endpoints[0].(*core.Endpoint).Stats()
	if stats.DeadPeerReclaims == 0 {
		t.Fatal("no dead-peer reclaims recorded")
	}
	if stats.RetryFailures != 0 {
		t.Fatalf("%d buffers still burned the full retry budget", stats.RetryFailures)
	}
	// The whole stream must finish on the detector's clock: kill +
	// confirmation window + the remaining sends, nowhere near a single
	// 51 ms retry exhaustion.
	bound := sim.Time(0).Add(kill + lcfg.ConfirmAfter + msgs*100*sim.Microsecond + 5*sim.Millisecond)
	if doneAt == 0 || doneAt > bound {
		t.Fatalf("sender finished at %v, want before %v", doneAt, bound)
	}
	// The reclaim is observable: the counter matches the stat.
	if got := reg.Counter("bbp.dead_peer_reclaims", 0).Value(); got != stats.DeadPeerReclaims {
		t.Fatalf("counter %d != stat %d", got, stats.DeadPeerReclaims)
	}
}
