package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMcastPartialAcksBlockReuse(t *testing.T) {
	// A multicast buffer may be reclaimed only after EVERY addressed
	// receiver acknowledges. With one slow receiver and few slots, the
	// sender must stall until the straggler catches up — never reuse a
	// live buffer.
	k, _, eps := world(t, 3, func(c *Config) { c.Buffers = 2 })
	const count = 10
	var senderDone, slowStart sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			if err := eps[0].Mcast(p, []int{1, 2}, []byte{byte(i)}); err != nil {
				t.Errorf("mcast %d: %v", i, err)
				return
			}
		}
		senderDone = p.Now()
	})
	k.Spawn("fast", func(p *sim.Proc) {
		buf := make([]byte, 4)
		for i := 0; i < count; i++ {
			if _, err := eps[1].Recv(p, 0, buf); err != nil || buf[0] != byte(i) {
				t.Errorf("fast recv %d: %v", i, err)
				return
			}
		}
	})
	k.Spawn("slow", func(p *sim.Proc) {
		p.Delay(5 * sim.Millisecond)
		slowStart = p.Now()
		buf := make([]byte, 4)
		for i := 0; i < count; i++ {
			if _, err := eps[2].Recv(p, 0, buf); err != nil || buf[0] != byte(i) {
				t.Errorf("slow recv %d: %v (got %d)", i, err, buf[0])
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if senderDone < slowStart {
		t.Fatalf("sender finished at %v before the slow receiver started at %v: a live multicast buffer was reused", senderDone, slowStart)
	}
}

func TestRecvTimesOutWhenRingBreaks(t *testing.T) {
	// Single ring (no bypass): the ring breaks mid-conversation and the
	// receiver's poll loop must give up with ErrTimeout, not hang.
	k := sim.NewKernel()
	cfg := scramnet.DefaultConfig(4)
	cfg.DualRing = false
	net, err := scramnet.New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := DefaultConfig()
	bcfg.RecvTimeout = 2 * sim.Millisecond
	sys, err := New(net, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	e0, _ := sys.Attach(0)
	e2, _ := sys.Attach(2)
	var recvErr error
	k.Spawn("tx", func(p *sim.Proc) {
		p.Delay(100 * sim.Microsecond) // after the break below
		if err := e0.Send(p, 2, []byte{1}); err != nil && err != ErrTimeout {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		_, recvErr = e2.Recv(p, 0, make([]byte, 4))
	})
	net.FailNode(1) // breaks 0→2 on the single ring
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvErr != ErrTimeout {
		t.Fatalf("recvErr = %v, want ErrTimeout", recvErr)
	}
}

func TestBBPRequiresReliableHardware(t *testing.T) {
	// The BillBoard Protocol carries no checksums or retransmission: it
	// leans entirely on SCRAMNet's reliable replication (the ring's CRC
	// discards a corrupted packet and the word is simply never applied).
	// This test documents the consequence: under injected packet loss,
	// deliveries go wrong — stale descriptors, missing payload words,
	// or receive timeouts — but the protocol must degrade cleanly (no
	// panic, no deadlock) and deterministically.
	outcome := func() (intact, corrupt, timeouts int) {
		k := sim.NewKernel()
		cfg := scramnet.DefaultConfig(2)
		cfg.DropRate = 0.6
		cfg.Seed = 3
		net, err := scramnet.New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bcfg := DefaultConfig()
		bcfg.RecvTimeout = 3 * sim.Millisecond
		sys, err := New(net, bcfg)
		if err != nil {
			t.Fatal(err)
		}
		e0, _ := sys.Attach(0)
		e1, _ := sys.Attach(1)
		k.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				if err := e0.Send(p, 1, []byte{byte(i), 0xA5, 0x5A, byte(i)}); err != nil && err != ErrTimeout {
					t.Error(err)
					return
				}
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 8)
			for i := 0; i < 10; i++ {
				n, err := e1.Recv(p, 0, buf)
				switch {
				case err == ErrTimeout:
					timeouts++
					return
				case err != nil:
					t.Error(err)
					return
				case n == 4 && buf[0] == byte(i) && buf[1] == 0xA5 && buf[2] == 0x5A:
					intact++
				default:
					corrupt++
				}
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return
	}
	intact, corrupt, timeouts := outcome()
	if corrupt+timeouts == 0 {
		t.Fatalf("60%% packet loss left all %d messages intact; fault injection ineffective", intact)
	}
	i2, c2, to2 := outcome()
	if i2 != intact || c2 != corrupt || to2 != timeouts {
		t.Fatalf("fault outcomes not deterministic: (%d,%d,%d) vs (%d,%d,%d)", intact, corrupt, timeouts, i2, c2, to2)
	}
}
func TestBBPOverVariableModeRing(t *testing.T) {
	// The protocol is mode-agnostic: variable-length packets carry the
	// same messages, faster for bulk.
	oneWay := func(mode scramnet.Mode, n int) float64 {
		k := sim.NewKernel()
		cfg := scramnet.DefaultConfig(4)
		cfg.Mode = mode
		net, err := scramnet.New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.SetSingleWriterCheck(true)
		sys, err := New(net, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		e0, _ := sys.Attach(0)
		e1, _ := sys.Attach(1)
		var sent, recvd sim.Time
		payload := make([]byte, n)
		sim.NewRNG(1).Bytes(payload)
		var got []byte
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, n+1)
			m, err := e1.Recv(p, 0, buf)
			if err != nil {
				t.Error(err)
			}
			got = append([]byte(nil), buf[:m]...)
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond)
			sent = p.Now()
			if err := e0.Send(p, 1, payload); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload corrupted in variable mode")
		}
		return recvd.Sub(sent).Microseconds()
	}
	fixed := oneWay(scramnet.FixedPackets, 2048)
	variable := oneWay(scramnet.VariablePackets, 2048)
	if variable >= fixed {
		t.Fatalf("2 KB message: variable mode %.1fµs not below fixed %.1fµs", variable, fixed)
	}
}

func TestTracerObservesProtocol(t *testing.T) {
	k := sim.NewKernel()
	net, err := scramnet.New(k, scramnet.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New()
	sys, err := New(net, DefaultConfig(), WithTracer(rec))
	if err != nil {
		t.Fatal(err)
	}
	net.SetTracer(rec)
	e0, _ := sys.Attach(0)
	e1, _ := sys.Attach(1)
	k.Spawn("tx", func(p *sim.Proc) {
		if err := e0.Send(p, 1, []byte{1, 2, 3, 4}); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		if _, err := e1.Recv(p, 0, make([]byte, 8)); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"post", "flag-set", "detect", "consume", "inject", "apply"} {
		if rec.Count(name) == 0 {
			t.Errorf("no %q events recorded", name)
		}
	}
	if span, ok := rec.Span("post", "consume"); !ok || span <= 0 || span > sim.Duration(50*sim.Microsecond) {
		t.Errorf("post→consume span = %v ok=%v", span, ok)
	}
}

func TestAllBufferSlotCounts(t *testing.T) {
	// The protocol must work at both extremes of the slot range.
	for _, buffers := range []int{1, 32} {
		buffers := buffers
		t.Run(fmt.Sprintf("buffers=%d", buffers), func(t *testing.T) {
			k, _, eps := world(t, 2, func(c *Config) { c.Buffers = buffers })
			const count = 40
			k.Spawn("tx", func(p *sim.Proc) {
				for i := 0; i < count; i++ {
					if err := eps[0].Send(p, 1, []byte{byte(i)}); err != nil {
						t.Errorf("send %d: %v", i, err)
						return
					}
				}
			})
			k.Spawn("rx", func(p *sim.Proc) {
				buf := make([]byte, 4)
				for i := 0; i < count; i++ {
					if _, err := eps[1].Recv(p, 0, buf); err != nil || buf[0] != byte(i) {
						t.Errorf("recv %d: %v", i, err)
						return
					}
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMaxProcsRing(t *testing.T) {
	// A 32-process BillBoard on one ring: layout arithmetic and flag
	// words well past the paper's 4-node testbed.
	k, _, eps := world(t, 32)
	ok := false
	k.Spawn("tx", func(p *sim.Proc) {
		if err := eps[0].Send(p, 31, []byte("edge")); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		n, err := eps[31].Recv(p, 0, buf)
		ok = err == nil && string(buf[:n]) == "edge"
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("delivery failed at MaxProcs")
	}
	// Beyond MaxProcs the flat ring itself refuses first (the 256-node
	// address limit is the same bound), so the rejection is exercised on
	// a hierarchy, which can host more than one ring's worth of nodes.
	k2 := sim.NewKernel()
	defer k2.Close()
	hier, err := scramnet.NewHierarchy(k2, scramnet.DefaultHierarchyConfig(2, 160))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(hier, DefaultConfig()); err == nil {
		t.Fatal("320 processes accepted beyond MaxProcs")
	}
}

func TestGCStressProperty(t *testing.T) {
	// Property: with a deliberately tiny data partition and random
	// mixed unicast/multicast traffic, heavy garbage collection and
	// fragmentation never corrupt or reorder a stream.
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		defer k.Close()
		ringCfg := scramnet.DefaultConfig(3)
		ringCfg.MemBytes = 16 << 10 // ~5.4 KB per process, ~4.7 KB data
		net, err := scramnet.New(k, ringCfg)
		if err != nil {
			return false
		}
		net.SetSingleWriterCheck(true)
		cfg := DefaultConfig()
		cfg.Buffers = 4
		sys, err := New(net, cfg)
		if err != nil {
			return false
		}
		eps := make([]*Endpoint, 3)
		for i := range eps {
			if eps[i], err = sys.Attach(i); err != nil {
				return false
			}
		}
		rng := sim.NewRNG(seed)
		const msgs = 25
		kinds := make([]int, msgs) // 0: →1, 1: →2, 2: mcast both
		sizes := make([]int, msgs)
		for i := range kinds {
			kinds[i] = rng.Intn(3)
			sizes[i] = rng.Intn(1200) + 1
		}
		payload := func(i int) []byte {
			b := make([]byte, sizes[i])
			sim.NewRNG(seed ^ uint64(i*31)).Bytes(b)
			return b
		}
		ok := true
		k.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < msgs; i++ {
				var err error
				switch kinds[i] {
				case 0:
					err = eps[0].Send(p, 1, payload(i))
				case 1:
					err = eps[0].Send(p, 2, payload(i))
				case 2:
					err = eps[0].Mcast(p, []int{1, 2}, payload(i))
				}
				if err != nil {
					ok = false
					return
				}
			}
		})
		for _, r := range []int{1, 2} {
			r := r
			k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
				buf := make([]byte, 2048)
				for i := 0; i < msgs; i++ {
					if kinds[i] == r-1 || kinds[i] == 2 {
						n, err := eps[r].Recv(p, 0, buf)
						if err != nil || !bytes.Equal(buf[:n], payload(i)) {
							ok = false
							return
						}
						// Uneven consumption keeps the allocator
						// fragmented.
						p.Delay(sim.Duration(rng.Intn(40)) * sim.Microsecond)
					}
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestTinyMemoryRejected(t *testing.T) {
	k := sim.NewKernel()
	cfg := scramnet.DefaultConfig(4)
	cfg.MemBytes = 2048 // not enough for 4 partitions with data room
	net, err := scramnet.New(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, DefaultConfig()); err == nil {
		t.Fatal("insufficient memory accepted")
	}
}
