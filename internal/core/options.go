package core

import (
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Option configures a System at construction time. Options replace the
// old post-construction SetTracer/SetMetrics mutators: a System is
// fully wired before the first Attach, so no endpoint can ever exist
// without its instruments.
type Option func(*System)

// WithTracer installs a protocol event recorder (nil disables tracing).
func WithTracer(r *trace.Recorder) Option {
	return func(s *System) { s.tracer = r }
}

// WithMetrics installs protocol metrics (nil disables).
func WithMetrics(m *metrics.Registry) Option {
	return func(s *System) { s.metrics = m }
}
