package bench

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// The simulation is deterministic, so the headline figures are pinned
// exactly (±2% slack for intentional recalibration): any drift in a
// substrate's cost model shows up here first, with the figure it moves.
// When changing a calibration constant on purpose, re-run
// `go run ./cmd/figures` and update these values alongside
// EXPERIMENTS.md.
func TestGoldenHeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figures are slow")
	}
	cases := []struct {
		name string
		got  func() float64
		want float64
	}{
		{"Fig1 API 0B µs", func() float64 { return OneWayAPI(cluster.SCRAMNet, 0) }, 6.88},
		{"Fig1 API 4B µs", func() float64 { return OneWayAPI(cluster.SCRAMNet, 4) }, 8.40},
		{"Fig1 MPI 0B µs", func() float64 { return OneWayMPI(cluster.SCRAMNet, 0) }, 43.92},
		{"Fig1 MPI 4B µs", func() float64 { return OneWayMPI(cluster.SCRAMNet, 4) }, 49.16},
		{"Fig2 FE 0B µs", func() float64 { return OneWayAPI(cluster.FastEthernet, 0) }, 119.43},
		{"Fig2 MyrAPI 0B µs", func() float64 { return OneWayAPI(cluster.MyrinetAPI, 0) }, 77.62},
		{"Fig4 bcast4 0B µs", func() float64 { return BroadcastAPI(4, 0) }, 9.94},
		{"Fig6 mcast barrier 4 µs", func() float64 { return MPIBarrier(cluster.SCRAMNet, BarrierNative, 4) }, 35.94},
		{"Fig6 p2p barrier 4 µs", func() float64 { return MPIBarrier(cluster.SCRAMNet, BarrierP2P, 4) }, 174.53},
		{"raw fixed MB/s", func() float64 { return RingThroughput(false) }, 6.61},
		{"raw variable MB/s", func() float64 { return RingThroughput(true) }, 16.80},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := c.got()
			if math.Abs(got-c.want)/c.want > 0.02 {
				t.Errorf("%s = %.2f, golden %.2f (Δ %.1f%%)", c.name, got, c.want, 100*(got-c.want)/c.want)
			}
		})
	}
}
