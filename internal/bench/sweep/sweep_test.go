package sweep

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestReducedMatrixStable proves the document is byte-stable: two
// independent runs of the reduced matrix marshal identically, and a
// profiled run changes nothing (profiling reads the host clock but the
// virtual timeline — and therefore the document — is untouched).
func TestReducedMatrixStable(t *testing.T) {
	a := Marshal(Run(ReducedOptions()))
	b := Marshal(Run(ReducedOptions()))
	if !bytes.Equal(a, b) {
		t.Fatal("two reduced-matrix runs marshaled differently")
	}
	opts := ReducedOptions()
	opts.Profiler = sim.NewProfiler()
	c := Marshal(Run(opts))
	if !bytes.Equal(a, c) {
		t.Fatal("a profiled run changed the document — profiling is charging virtual time")
	}
	if opts.Profiler.TotalEvents() == 0 {
		t.Fatal("profiler attached to every kernel but recorded nothing")
	}
}

func TestReducedMatrixShape(t *testing.T) {
	opts := ReducedOptions()
	r := Run(opts)
	if r.Schema != Schema {
		t.Errorf("schema = %d, want %d", r.Schema, Schema)
	}
	wantCells := len(opts.Substrates) * len(opts.Ranks)
	if len(r.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(r.Cells), wantCells)
	}
	for _, c := range r.Cells {
		if len(c.LatencyUs) != len(opts.LatencySizes) {
			t.Errorf("%s/r%d: %d latency points, want %d", c.Substrate, c.Ranks, len(c.LatencyUs), len(opts.LatencySizes))
		}
		if len(c.BandwidthMBs) != len(opts.BandwidthSizes) {
			t.Errorf("%s/r%d: %d bandwidth points, want %d", c.Substrate, c.Ranks, len(c.BandwidthMBs), len(opts.BandwidthSizes))
		}
	}
	if err := r.Check(nil, DefaultTrendConfig()); err != nil {
		t.Errorf("reduced matrix failed its own gate: %v", err)
	}
}

// TestLatencyScalesWithRanks pins the reason the rank axis exists: the
// ping-pong runs to the farthest rank, so on the register-insertion
// ring more ranks must mean more hop delay, not a repeated 2-node
// measurement.
func TestLatencyScalesWithRanks(t *testing.T) {
	l4 := Latency("scramnet", 4, 0, nil)
	l16 := Latency("scramnet", 16, 0, nil)
	if l16 <= l4 {
		t.Errorf("16-rank farthest-pair latency %.3f µs ≤ 4-rank %.3f µs; rank axis is not exercising hops", l16, l4)
	}
}

func TestBandwidthSaneAcrossSizes(t *testing.T) {
	small := Bandwidth("scramnet", 4, 1024, 4, nil)
	large := Bandwidth("scramnet", 4, 16384, 4, nil)
	if small <= 0 || large <= 0 {
		t.Fatalf("degenerate bandwidth: %f / %f MB/s", small, large)
	}
	if large <= small {
		t.Errorf("16 KiB streaming (%.1f MB/s) not above 1 KiB (%.1f MB/s); per-message overhead no longer amortizes", large, small)
	}
}

func TestCheckRejectsDegenerate(t *testing.T) {
	r := Run(ReducedOptions())
	r.Cells[0].LatencyUs[0].Value = 0
	if err := r.Check(nil, DefaultTrendConfig()); err == nil {
		t.Error("zero latency passed the gate")
	}
	r = Run(ReducedOptions())
	r.Cells[0].RateMsgS = -1
	if err := r.Check(nil, DefaultTrendConfig()); err == nil {
		t.Error("negative message rate passed the gate")
	}
}
