// Package sweep is the OSU-style continuous-performance matrix: a
// latency / bandwidth / message-rate grid across substrates and rank
// counts, emitted as the schema-versioned, byte-stable BENCH_sweep.json
// and summarized into one trajectory record per run
// (BENCH_trajectory.jsonl) so regressions show as *trends* across runs,
// not just single-run drift against a golden file.
//
// The three benchmark shapes mirror the OSU micro-benchmark suite:
//
//   - latency: ping-pong between rank 0 and the farthest rank, so the
//     rank axis exercises real ring hop counts;
//   - bandwidth: a window of messages streamed 0 → last, timed first
//     post to last drain;
//   - message rate: back-to-back small sends, in messages per second.
//
// Byte stability follows the report-package construction: the sim is
// deterministic, no wall-clock values enter the document, floats are
// rounded to three decimals, and serialization is struct-field-ordered
// json.MarshalIndent. The kernel self-profiler (Options.Profiler)
// measures host time but publishes through its own channel, never into
// the document.
package sweep

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Schema is the sweep document format version. Bump on any field
// change, as with report.Schema.
//
// Schema 2 adds the collective axis to every cell: barrier_us (the
// point-to-point tree barrier, portable across substrates) and, on the
// ring, nic_barrier_us (the NIC-combined barrier), so barrier latency
// rides the same trajectory trend gate as the point-to-point metrics.
const Schema = 2

// Options selects the matrix axes. The zero value is not runnable; use
// DefaultOptions or ReducedOptions.
type Options struct {
	// Substrates and Ranks are the grid axes. Every substrate runs at
	// every rank count.
	Substrates []cluster.Network
	Ranks      []int
	// LatencySizes are the ping-pong payload sizes; BandwidthSizes the
	// streamed payload sizes.
	LatencySizes   []int
	BandwidthSizes []int
	// BandwidthWindow is how many messages each bandwidth point streams.
	BandwidthWindow int
	// RateBytes/RateCount parameterize the message-rate point:
	// RateCount back-to-back RateBytes-sized sends.
	RateBytes, RateCount int
	// Profiler, when non-nil, is installed on every kernel the sweep
	// builds, accumulating a real-time cost attribution for the whole
	// matrix (rendered by cmd/sweep -profile; never part of the JSON).
	Profiler *sim.Profiler
}

// DefaultOptions is the full matrix, as committed in BENCH_sweep.json:
// the ring, the hybrid subsystem, and two pure fabrics, at the paper's
// testbed size up to the 16-rank scaling point.
func DefaultOptions() Options {
	return Options{
		Substrates:      []cluster.Network{cluster.SCRAMNet, cluster.Hybrid, cluster.FastEthernet, cluster.MyrinetAPI},
		Ranks:           []int{2, 4, 8, 16},
		LatencySizes:    []int{0, 64, 1024},
		BandwidthSizes:  []int{1024, 16384},
		BandwidthWindow: 16,
		RateBytes:       4,
		RateCount:       64,
	}
}

// ReducedOptions is a small subset for schema and stability tests.
func ReducedOptions() Options {
	return Options{
		Substrates:      []cluster.Network{cluster.SCRAMNet, cluster.FastEthernet},
		Ranks:           []int{2, 4},
		LatencySizes:    []int{0, 64},
		BandwidthSizes:  []int{1024},
		BandwidthWindow: 4,
		RateBytes:       4,
		RateCount:       16,
	}
}

// SizePoint is one (payload size, value) measurement.
type SizePoint struct {
	Bytes int     `json:"bytes"`
	Value float64 `json:"value"`
}

// Cell is one (substrate, ranks) grid cell.
type Cell struct {
	Substrate string `json:"substrate"`
	Ranks     int    `json:"ranks"`
	// LatencyUs is one-way ping-pong latency (µs) per payload size,
	// rank 0 ↔ the farthest rank.
	LatencyUs []SizePoint `json:"latency_us"`
	// BandwidthMBs is streaming throughput (MB/s) per payload size.
	BandwidthMBs []SizePoint `json:"bandwidth_mb_s"`
	// RateMsgS is the small-message rate in messages per second.
	RateBytes int     `json:"rate_bytes"`
	RateMsgS  float64 `json:"rate_msg_s"`
	// BarrierUs is the full-communicator tree-barrier latency (µs per
	// barrier) — the one collective every substrate supports.
	BarrierUs float64 `json:"barrier_us"`
	// NICBarrierUs is the NIC-combined barrier latency, present only on
	// the ring (the combining stream needs the SCRAMNet substrate).
	NICBarrierUs float64 `json:"nic_barrier_us,omitempty"`
}

// Report is the document written to BENCH_sweep.json.
type Report struct {
	Schema int    `json:"schema"`
	Paper  string `json:"paper"`
	Cells  []Cell `json:"cells"`
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// build constructs one testbed for a grid cell.
func build(k *sim.Kernel, net cluster.Network, ranks int, prof *sim.Profiler) *cluster.Cluster {
	c, err := cluster.New(k, cluster.Options{Nodes: ranks, Net: net, Profiler: prof})
	if err != nil {
		panic(fmt.Sprintf("sweep: build %s/%d: %v", net, ranks, err))
	}
	return c
}

// Latency measures one-way ping-pong latency (µs) between rank 0 and
// rank ranks-1 — the farthest pair, so larger rank counts traverse more
// ring hops — for an n-byte payload.
func Latency(net cluster.Network, ranks, n int, prof *sim.Profiler) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c := build(k, net, ranks, prof)
	return bench.PingPong(k, c.Endpoints[0], c.Endpoints[ranks-1], n)
}

// Bandwidth measures streaming throughput (MB/s): rank 0 posts window
// n-byte messages to rank ranks-1 as fast as the substrate admits them;
// the clock runs from the first post to the last drain.
func Bandwidth(net cluster.Network, ranks, n, window int, prof *sim.Profiler) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c := build(k, net, ranks, prof)
	tx, rx := c.Endpoints[0], c.Endpoints[ranks-1]
	var start, done sim.Time
	msg := make([]byte, n)
	k.Spawn("tx", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < window; i++ {
			if err := tx.Send(p, rx.Rank(), msg); err != nil {
				panic(fmt.Sprintf("sweep: bandwidth %s/%d/%dB send: %v", net, ranks, n, err))
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, n+1)
		for i := 0; i < window; i++ {
			if _, err := rx.Recv(p, tx.Rank(), buf); err != nil {
				panic(fmt.Sprintf("sweep: bandwidth %s/%d/%dB recv: %v", net, ranks, n, err))
			}
		}
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		panic(fmt.Sprintf("sweep: bandwidth %s/%d/%dB: %v", net, ranks, n, err))
	}
	elapsed := done.Sub(start)
	if elapsed <= 0 {
		panic(fmt.Sprintf("sweep: bandwidth %s/%d/%dB: degenerate elapsed %d", net, ranks, n, elapsed))
	}
	return float64(window*n) / (float64(elapsed) / 1e9) / 1e6
}

// MessageRate measures the small-message rate (messages/second): count
// back-to-back n-byte sends from rank 0 to rank ranks-1, first post to
// last drain.
func MessageRate(net cluster.Network, ranks, n, count int, prof *sim.Profiler) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c := build(k, net, ranks, prof)
	tx, rx := c.Endpoints[0], c.Endpoints[ranks-1]
	var start, done sim.Time
	msg := make([]byte, n)
	k.Spawn("tx", func(p *sim.Proc) {
		start = p.Now()
		for i := 0; i < count; i++ {
			if err := tx.Send(p, rx.Rank(), msg); err != nil {
				panic(fmt.Sprintf("sweep: rate %s/%d send: %v", net, ranks, err))
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, n+1)
		for i := 0; i < count; i++ {
			if _, err := rx.Recv(p, tx.Rank(), buf); err != nil {
				panic(fmt.Sprintf("sweep: rate %s/%d recv: %v", net, ranks, err))
			}
		}
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		panic(fmt.Sprintf("sweep: rate %s/%d: %v", net, ranks, err))
	}
	elapsed := done.Sub(start)
	if elapsed <= 0 {
		panic(fmt.Sprintf("sweep: rate %s/%d: degenerate elapsed %d", net, ranks, elapsed))
	}
	return float64(count) / (float64(elapsed) / 1e9)
}

// Barrier measures the full-communicator barrier latency (µs per
// barrier) at a rank count. Unlike the point-to-point shapes it drives
// the MPI collective layer, so the trajectory also watches the
// algorithm-selection path end to end.
func Barrier(net cluster.Network, ranks int, impl bench.BarrierImpl) float64 {
	return bench.MPIBarrier(net, impl, ranks)
}

// Run executes the matrix and assembles the report. Cells appear in
// axis order (substrates outer, ranks inner), so the document layout is
// stable for a given Options.
func Run(opts Options) Report {
	r := Report{
		Schema: Schema,
		Paper:  "Low-Latency Message Passing on Workstation Clusters using SCRAMNet",
	}
	for _, net := range opts.Substrates {
		for _, ranks := range opts.Ranks {
			cell := Cell{Substrate: string(net), Ranks: ranks, RateBytes: opts.RateBytes}
			for _, n := range opts.LatencySizes {
				cell.LatencyUs = append(cell.LatencyUs, SizePoint{
					Bytes: n, Value: round3(Latency(net, ranks, n, opts.Profiler)),
				})
			}
			for _, n := range opts.BandwidthSizes {
				cell.BandwidthMBs = append(cell.BandwidthMBs, SizePoint{
					Bytes: n, Value: round3(Bandwidth(net, ranks, n, opts.BandwidthWindow, opts.Profiler)),
				})
			}
			cell.RateMsgS = round3(MessageRate(net, ranks, opts.RateBytes, opts.RateCount, opts.Profiler))
			cell.BarrierUs = round3(Barrier(net, ranks, bench.BarrierP2P))
			if net == cluster.SCRAMNet {
				cell.NICBarrierUs = round3(Barrier(net, ranks, bench.BarrierNIC))
			}
			r.Cells = append(r.Cells, cell)
		}
	}
	return r
}

// Marshal renders the report as the canonical BENCH_sweep.json bytes
// (indented, trailing newline). Byte-identical across runs.
func Marshal(r Report) []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}
