package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// flatRecord builds one trajectory record with fixed metric values, as
// a deterministic baseline run would produce.
func flatRecord(run int) Record {
	return Record{
		Schema:   Schema,
		Run:      run,
		Describe: "test-baseline",
		Metrics: []Metric{
			{Name: "lat_us/scramnet/r4/b0", Value: 7.253},
			{Name: "bw_mbs/scramnet/r4/b1024", Value: 14.5},
			{Name: "rate_mps/scramnet/r4", Value: 150000},
		},
	}
}

// TestTrendGateFlatBaselinePasses: a deterministic sim produces
// identical records run after run — slope exactly zero, gate clean.
func TestTrendGateFlatBaselinePasses(t *testing.T) {
	var recs []Record
	for i := 1; i <= 6; i++ {
		recs = append(recs, flatRecord(i))
	}
	if err := CheckTrend(recs, DefaultTrendConfig()); err != nil {
		t.Errorf("flat trajectory failed the gate: %v", err)
	}
}

// TestTrendGateCatchesInjectedDrift is the PR acceptance point: five
// fabricated records drifting +2%/run — each step well inside any
// single-run tolerance — must fail the 1%/run gate, in every metric
// kind's bad direction.
func TestTrendGateCatchesInjectedDrift(t *testing.T) {
	recs := SyntheticDrift(flatRecord(1), 5, 2.0)
	if len(recs) != 5 {
		t.Fatalf("fabricated %d records, want 5", len(recs))
	}
	err := CheckTrend(recs, DefaultTrendConfig())
	if err == nil {
		t.Fatal("+2%/run over 5 records passed the 1%/run gate")
	}
	for _, name := range []string{"lat_us/", "bw_mbs/", "rate_mps/"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("gate error does not name a drifting %s metric: %v", name, err)
		}
	}
	// Latencies must have drifted up, throughput metrics down.
	last := recs[len(recs)-1]
	for i, m := range last.Metrics {
		base := flatRecord(1).Metrics[i]
		switch badDirection(m.Name) {
		case +1:
			if m.Value <= base.Value {
				t.Errorf("%s drifted down (%.3f → %.3f); bad direction is up", m.Name, base.Value, m.Value)
			}
		case -1:
			if m.Value >= base.Value {
				t.Errorf("%s drifted up (%.3f → %.3f); bad direction is down", m.Name, base.Value, m.Value)
			}
		}
	}
}

// TestTrendGateImprovementPasses: the same 2%/run slope in the *good*
// direction (latency falling, bandwidth rising) is not a regression.
func TestTrendGateImprovementPasses(t *testing.T) {
	recs := SyntheticDrift(flatRecord(1), 5, -2.0)
	if err := CheckTrend(recs, DefaultTrendConfig()); err != nil {
		t.Errorf("improving trajectory failed the gate: %v", err)
	}
}

// TestTrendWindowLimitsHistory: drift older than the window is
// invisible; only the newest Window records are judged.
func TestTrendWindowLimitsHistory(t *testing.T) {
	// 5 drifting records followed by 8 flat ones: with Window=8 the
	// judged span is entirely flat.
	recs := SyntheticDrift(flatRecord(1), 5, 3.0)
	for i := 0; i < 8; i++ {
		recs = append(recs, flatRecord(len(recs)+1))
	}
	cfg := DefaultTrendConfig()
	if err := CheckTrend(recs, cfg); err != nil {
		t.Errorf("drift outside the window still failed the gate: %v", err)
	}
	// Truncate history to the drifting prefix: inside the window now,
	// so the same records must fail.
	if err := CheckTrend(recs[:5], cfg); err == nil {
		t.Error("drift inside the window passed the gate")
	}
}

func TestTrendMinRecords(t *testing.T) {
	// Two drifting records are below MinRecords=3: too short to judge.
	recs := SyntheticDrift(flatRecord(1), 2, 10.0)
	if err := CheckTrend(recs, DefaultTrendConfig()); err != nil {
		t.Errorf("2-record history was judged despite MinRecords=3: %v", err)
	}
}

// TestReportCheckCompletesDrift: Report.Check appends the current run
// to history before judging, so the run that completes a drift is the
// run that fails.
func TestReportCheckCompletesDrift(t *testing.T) {
	r := Run(ReducedOptions())
	base := Record{Schema: Schema, Run: 1, Describe: "seed", Metrics: Summarize(r)}
	// History: 4 fabricated runs drifting away from what this run will
	// measure — in reverse, so the real (lower-latency) measurement
	// extends the worsening... actually drift *toward* the real values:
	// fabricate 4 runs each 2% worse than the last, then reverse them so
	// the real run is the worst point of a rising line.
	drift := SyntheticDrift(base, 4, 2.0)
	history := []Record{drift[3], drift[2], drift[1], drift[0]}
	for i := range history {
		history[i].Run = i + 1
	}
	// history runs worst→best... reversed drift means each metric moves
	// toward base; appending the real run (== base) continues that line
	// in the *good* direction for latency. So this must pass:
	if err := r.Check(history, DefaultTrendConfig()); err != nil {
		t.Errorf("improving history + real run failed: %v", err)
	}
	// Whereas history drifting away from base, with the real run below
	// it, breaks the trend — also passes; the failing case is history
	// leading up to values the real run confirms:
	bad := SyntheticDrift(base, 7, 2.0)
	// Scale the real report's own values to sit on the drift line's
	// continuation — simulate "this run completes the regression".
	if err := CheckTrend(append(bad, Record{Schema: Schema, Run: 9, Metrics: SyntheticDrift(bad[6], 1, 2.0)[0].Metrics}), DefaultTrendConfig()); err == nil {
		t.Error("completed drift passed")
	}
}

// TestTrajectoryRoundTrip: MarshalRecord → LoadTrajectory is lossless
// and byte-stable (the seeded-baseline stability test).
func TestTrajectoryRoundTrip(t *testing.T) {
	recs := []Record{flatRecord(1), flatRecord(2)}
	recs[1].Note = "second run"
	var buf bytes.Buffer
	for _, rec := range recs {
		buf.Write(MarshalRecord(rec))
	}
	first := buf.Bytes()

	loaded, err := LoadTrajectory(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d records, want 2", len(loaded))
	}
	var again bytes.Buffer
	for _, rec := range loaded {
		again.Write(MarshalRecord(rec))
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatalf("round trip not byte-stable:\n%s\nvs\n%s", first, again.Bytes())
	}
	if loaded[1].Note != "second run" || loaded[0].Describe != "test-baseline" {
		t.Errorf("metadata lost in round trip: %+v", loaded)
	}
}

func TestLoadTrajectoryRejectsCorruption(t *testing.T) {
	if _, err := LoadTrajectory(strings.NewReader("{\"schema\":1,\"run\":1,\"describe\":\"x\",\"metrics\":[]}\nnot json\n")); err == nil {
		t.Error("malformed line loaded silently")
	}
	if _, err := LoadTrajectory(strings.NewReader("{\"schema\":99,\"run\":1,\"describe\":\"x\",\"metrics\":[]}\n")); err == nil {
		t.Error("wrong schema loaded silently")
	}
	recs, err := LoadTrajectory(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank lines: recs=%v err=%v", recs, err)
	}
}

func TestSummarizeNames(t *testing.T) {
	r := Report{Schema: Schema, Cells: []Cell{{
		Substrate: "scramnet", Ranks: 8, RateBytes: 4, RateMsgS: 100,
		LatencyUs:    []SizePoint{{Bytes: 0, Value: 7}},
		BandwidthMBs: []SizePoint{{Bytes: 1024, Value: 14}},
		BarrierUs:    120, NICBarrierUs: 40,
	}}}
	ms := Summarize(r)
	want := []string{"lat_us/scramnet/r8/b0", "bw_mbs/scramnet/r8/b1024", "rate_mps/scramnet/r8",
		"barrier_us/scramnet/r8", "barrier_nic_us/scramnet/r8"}
	if len(ms) != len(want) {
		t.Fatalf("summarized %d metrics, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Errorf("metric %d = %q, want %q", i, m.Name, want[i])
		}
		if badDirection(m.Name) == 0 {
			t.Errorf("metric %q has no gating direction", m.Name)
		}
	}
}
