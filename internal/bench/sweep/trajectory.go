// Trajectory tracking: one compact-JSON record per sweep run, appended
// to BENCH_trajectory.jsonl, plus the least-squares trend detector that
// turns the history into a regression gate. A single run can drift
// inside any golden-file tolerance; a *trend* across runs cannot hide,
// which is the OSU/ReFrame continuous-benchmarking shape this package
// reproduces.
//
// Records carry no wall-clock values: run metadata (the sequence
// number, a git describe string, a free-form note) is passed in by the
// driver, never read inside the sim, so a record is byte-stable for a
// given (code, metadata) pair.
package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cluster"
)

// Metric is one summarized measurement, named by kind and grid cell:
//
//	lat_us/<substrate>/r<ranks>/b<bytes>    one-way latency, µs (up = bad)
//	bw_mbs/<substrate>/r<ranks>/b<bytes>    throughput, MB/s   (down = bad)
//	rate_mps/<substrate>/r<ranks>           messages/s         (down = bad)
//	barrier_us/<substrate>/r<ranks>         tree barrier, µs   (up = bad)
//	barrier_nic_us/<substrate>/r<ranks>     NIC barrier, µs    (up = bad)
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Record is one trajectory line.
type Record struct {
	Schema int `json:"schema"`
	// Run is the 1-based sequence number in the trajectory.
	Run int `json:"run"`
	// Describe is the driver-supplied code identity (git describe).
	Describe string `json:"describe"`
	// Note is free-form run context (optional).
	Note    string   `json:"note,omitempty"`
	Metrics []Metric `json:"metrics"`
}

// Summarize flattens a sweep report into the trajectory metric vector,
// in document order.
func Summarize(r Report) []Metric {
	var out []Metric
	for _, c := range r.Cells {
		for _, p := range c.LatencyUs {
			out = append(out, Metric{
				Name:  fmt.Sprintf("lat_us/%s/r%d/b%d", c.Substrate, c.Ranks, p.Bytes),
				Value: p.Value,
			})
		}
		for _, p := range c.BandwidthMBs {
			out = append(out, Metric{
				Name:  fmt.Sprintf("bw_mbs/%s/r%d/b%d", c.Substrate, c.Ranks, p.Bytes),
				Value: p.Value,
			})
		}
		out = append(out, Metric{
			Name:  fmt.Sprintf("rate_mps/%s/r%d", c.Substrate, c.Ranks),
			Value: c.RateMsgS,
		})
		out = append(out, Metric{
			Name:  fmt.Sprintf("barrier_us/%s/r%d", c.Substrate, c.Ranks),
			Value: c.BarrierUs,
		})
		if c.NICBarrierUs > 0 {
			out = append(out, Metric{
				Name:  fmt.Sprintf("barrier_nic_us/%s/r%d", c.Substrate, c.Ranks),
				Value: c.NICBarrierUs,
			})
		}
	}
	return out
}

// MarshalRecord renders one trajectory line: compact JSON plus newline.
// Byte-stable for identical records (encoding/json preserves struct
// field order).
func MarshalRecord(rec Record) []byte {
	b, err := json.Marshal(rec)
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}

// LoadTrajectory parses a BENCH_trajectory.jsonl stream. Blank lines
// are skipped; any malformed line is an error (a corrupt trajectory
// must not silently weaken the trend gate).
func LoadTrajectory(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("sweep: trajectory line %d: %w", line, err)
		}
		// Older schemas are accepted: the record layout only ever grows
		// new metric *names*, and the trend detector keys by name, so an
		// old record simply contributes nothing to the newer series.
		if rec.Schema < 1 || rec.Schema > Schema {
			return nil, fmt.Errorf("sweep: trajectory line %d: schema %d, want 1..%d", line, rec.Schema, Schema)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: trajectory: %w", err)
	}
	return out, nil
}

// TrendConfig parameterizes the drift detector.
type TrendConfig struct {
	// Window is how many of the newest records the fit runs over.
	Window int
	// MinRecords is the fewest points a metric needs before it is
	// judged at all (a short history proves nothing).
	MinRecords int
	// MaxSlopePctPerRun fails a metric whose fitted slope moves in its
	// bad direction faster than this percentage of the window mean per
	// run.
	MaxSlopePctPerRun float64
}

// DefaultTrendConfig is the `make bench` gate calibration: an 8-run
// window, judged from 3 records, failing at 1%/run sustained drift.
// Five runs of +2%/run — each inside a typical ±5% single-run tolerance
// — trip it; a flat deterministic baseline never does (slope exactly 0).
func DefaultTrendConfig() TrendConfig {
	return TrendConfig{Window: 8, MinRecords: 3, MaxSlopePctPerRun: 1.0}
}

// Trend is one metric's fitted drift across the window.
type Trend struct {
	Name string
	// SlopePctPerRun is the least-squares slope normalized by the
	// window mean: percent of the typical value per run. Positive =
	// increasing.
	SlopePctPerRun float64
	// N is how many records contributed.
	N int
	// Regressing reports the gate verdict: the slope moves in the
	// metric's bad direction faster than the configured bound.
	Regressing bool
}

// badDirection returns +1 when increase is bad (latency), -1 when
// decrease is bad (bandwidth, rate), 0 for unknown prefixes (never
// gated, so a future metric kind fails loudly in tests, not silently
// in CI).
func badDirection(name string) int {
	switch {
	case strings.HasPrefix(name, "lat_us/"),
		strings.HasPrefix(name, "barrier_us/"),
		strings.HasPrefix(name, "barrier_nic_us/"):
		return +1
	case strings.HasPrefix(name, "bw_mbs/"), strings.HasPrefix(name, "rate_mps/"):
		return -1
	}
	return 0
}

// Trends fits every metric present in the newest cfg.Window records and
// returns the per-metric drift, sorted by name. Metrics with fewer than
// cfg.MinRecords points are skipped.
func Trends(recs []Record, cfg TrendConfig) []Trend {
	if cfg.Window > 0 && len(recs) > cfg.Window {
		recs = recs[len(recs)-cfg.Window:]
	}
	// Collect each metric's series in record order.
	series := map[string][]float64{}
	for _, rec := range recs {
		for _, m := range rec.Metrics {
			series[m.Name] = append(series[m.Name], m.Value)
		}
	}
	minRecs := cfg.MinRecords
	if minRecs < 2 {
		minRecs = 2 // a slope needs two points, whatever the config says
	}
	var out []Trend
	for name, vals := range series {
		if len(vals) < minRecs {
			continue
		}
		slope, mean := leastSquares(vals)
		pct := 0.0
		if mean != 0 {
			pct = 100 * slope / mean
		}
		dir := badDirection(name)
		out = append(out, Trend{
			Name:           name,
			SlopePctPerRun: pct,
			N:              len(vals),
			Regressing:     dir != 0 && float64(dir)*pct > cfg.MaxSlopePctPerRun,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// leastSquares fits v = a + b*i over i = 0..n-1 and returns the slope b
// and the mean of v.
func leastSquares(vals []float64) (slope, mean float64) {
	n := float64(len(vals))
	var sumI, sumV, sumIV, sumII float64
	for i, v := range vals {
		fi := float64(i)
		sumI += fi
		sumV += v
		sumIV += fi * v
		sumII += fi * fi
	}
	mean = sumV / n
	den := n*sumII - sumI*sumI
	if den == 0 {
		return 0, mean
	}
	return (n*sumIV - sumI*sumV) / den, mean
}

// CheckTrend runs the detector over a trajectory and returns an error
// naming every regressing metric (nil when the history is clean or too
// short to judge).
func CheckTrend(recs []Record, cfg TrendConfig) error {
	var bad []string
	for _, t := range Trends(recs, cfg) {
		if t.Regressing {
			bad = append(bad, fmt.Sprintf("%s drifting %+.2f%%/run over %d runs", t.Name, t.SlopePctPerRun, t.N))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("sweep trend gate (> %.1f%%/run sustained): %s",
		cfg.MaxSlopePctPerRun, strings.Join(bad, "; "))
}

// Check is the sweep report's regression gate, wired into `make bench`:
// it validates that the matrix is non-degenerate (every measurement
// positive) and then runs the trend detector over history extended with
// this report's own summary — so a run that *completes* the drift is
// the run that fails.
func (r Report) Check(history []Record, cfg TrendConfig) error {
	for _, c := range r.Cells {
		for _, p := range c.LatencyUs {
			if p.Value <= 0 {
				return fmt.Errorf("sweep gate: degenerate latency %s/r%d/b%d = %.3f µs", c.Substrate, c.Ranks, p.Bytes, p.Value)
			}
		}
		for _, p := range c.BandwidthMBs {
			if p.Value <= 0 {
				return fmt.Errorf("sweep gate: degenerate bandwidth %s/r%d/b%d = %.3f MB/s", c.Substrate, c.Ranks, p.Bytes, p.Value)
			}
		}
		if c.RateMsgS <= 0 {
			return fmt.Errorf("sweep gate: degenerate message rate %s/r%d = %.3f msg/s", c.Substrate, c.Ranks, c.RateMsgS)
		}
		if c.BarrierUs <= 0 {
			return fmt.Errorf("sweep gate: degenerate barrier %s/r%d = %.3f µs", c.Substrate, c.Ranks, c.BarrierUs)
		}
		if c.Substrate == string(cluster.SCRAMNet) && c.NICBarrierUs <= 0 {
			return fmt.Errorf("sweep gate: ring cell %s/r%d is missing the NIC barrier", c.Substrate, c.Ranks)
		}
	}
	run := len(history) + 1
	return CheckTrend(append(append([]Record(nil), history...),
		Record{Schema: Schema, Run: run, Metrics: Summarize(r)}), cfg)
}

// SyntheticDrift fabricates runs continuing a trajectory with every
// metric moving pct percent per run in its bad direction (latencies up,
// bandwidths and rates down), starting from base's values. It exists
// for the E13 trend-gate demonstration (cmd/sweep -inject-trend) and
// the gate's own tests: drift the gate must catch, built without
// waiting N real runs.
func SyntheticDrift(base Record, runs int, pct float64) []Record {
	out := make([]Record, 0, runs)
	vals := map[string]float64{}
	for _, m := range base.Metrics {
		vals[m.Name] = m.Value
	}
	for i := 0; i < runs; i++ {
		rec := Record{
			Schema:   Schema,
			Run:      base.Run + i + 1,
			Describe: base.Describe,
			Note:     fmt.Sprintf("synthetic drift %+.1f%%/run (%d of %d)", pct, i+1, runs),
		}
		for _, m := range base.Metrics {
			step := 1 + float64(badDirection(m.Name))*pct/100
			vals[m.Name] *= step
			rec.Metrics = append(rec.Metrics, Metric{Name: m.Name, Value: round3(vals[m.Name])})
		}
		out = append(out, rec)
	}
	return out
}
