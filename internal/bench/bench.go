// Package bench is the measurement harness behind every figure and
// table of the paper's §5. Each primitive builds a fresh testbed,
// drives a standard micro-benchmark (ping-pong, broadcast, barrier) in
// virtual time, and returns microsecond latencies. Because the
// simulation is deterministic, repeated runs reproduce results exactly.
package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/xport"
)

// clusterRingConfig returns the testbed ring in the requested
// transmission mode.
func clusterRingConfig(variable bool) scramnet.Config {
	cfg := scramnet.DefaultConfig(4)
	if variable {
		cfg.Mode = scramnet.VariablePackets
	}
	return cfg
}

// Iters is how many measured round trips each latency point averages
// over (after one warmup).
const Iters = 8

// OneWayAPI measures one-way latency at the messaging-API layer (the
// BillBoard API on SCRAMNet, sockets or the native API elsewhere) for an
// n-byte message between two nodes of a 4-node testbed, via ping-pong.
func OneWayAPI(net cluster.Network, n int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: net})
	if err != nil {
		panic(err)
	}
	return PingPong(k, c.Endpoints[0], c.Endpoints[1], n)
}

// PingPong runs warmup+Iters round trips between a and b and returns
// the average one-way latency in microseconds. It is exported so the
// perf-regression report (internal/bench/report) can drive it against
// custom-configured, metrics-instrumented testbeds.
func PingPong(k *sim.Kernel, a, b xport.Endpoint, n int) float64 {
	var total sim.Duration
	buf0 := make([]byte, n+1)
	buf1 := make([]byte, n+1)
	msg := make([]byte, n)
	k.Spawn("ping", func(p *sim.Proc) {
		for i := 0; i < Iters+1; i++ {
			start := p.Now()
			if err := a.Send(p, b.Rank(), msg); err != nil {
				panic(err)
			}
			if _, err := a.Recv(p, b.Rank(), buf0); err != nil {
				panic(err)
			}
			if i > 0 { // skip warmup
				total += p.Now().Sub(start)
			}
		}
	})
	k.Spawn("pong", func(p *sim.Proc) {
		for i := 0; i < Iters+1; i++ {
			if _, err := b.Recv(p, a.Rank(), buf1); err != nil {
				panic(err)
			}
			if err := b.Send(p, a.Rank(), msg); err != nil {
				panic(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return total.Microseconds() / float64(2*Iters)
}

// OneWayMPI measures MPI-level one-way latency for an n-byte message on
// a 4-node testbed.
func OneWayMPI(net cluster.Network, n int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	_, w, err := cluster.NewMPIWorld(k, net, 4, false)
	if err != nil {
		panic(err)
	}
	var total sim.Duration
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		buf := make([]byte, n+1)
		msg := make([]byte, n)
		switch c.Rank() {
		case 0:
			for i := 0; i < Iters+1; i++ {
				start := p.Now()
				if err := c.Send(p, 1, 0, msg); err != nil {
					panic(err)
				}
				if _, err := c.Recv(p, 1, 0, buf); err != nil {
					panic(err)
				}
				if i > 0 {
					total += p.Now().Sub(start)
				}
			}
		case 1:
			for i := 0; i < Iters+1; i++ {
				if _, err := c.Recv(p, 0, 0, buf); err != nil {
					panic(err)
				}
				if err := c.Send(p, 0, 0, msg); err != nil {
					panic(err)
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return total.Microseconds() / float64(2*Iters)
}

// BroadcastAPI measures the BillBoard API broadcast latency on a
// SCRAMNet testbed of the given size: from the root's bbp_Mcast call to
// the LAST receiver completing bbp_Recv, averaged over Iters rounds
// (receivers acknowledge between rounds, which is also what keeps the
// sender's garbage collector fed).
func BroadcastAPI(nodes, n int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: nodes, Net: cluster.SCRAMNet})
	if err != nil {
		panic(err)
	}
	eps := c.Endpoints
	var total sim.Duration
	msg := make([]byte, n)
	lastDone := make([]sim.Time, Iters+1)
	arrived := make([]int, Iters+1)
	roundStart := make([]sim.Time, Iters+1)
	done := sim.NewCond(k)
	k.Spawn("root", func(p *sim.Proc) {
		for i := 0; i <= Iters; i++ {
			roundStart[i] = p.Now()
			if err := eps[0].Mcast(p, others(nodes, 0), msg); err != nil {
				panic(err)
			}
			for arrived[i] < nodes-1 {
				done.Wait(p)
			}
			if i > 0 {
				total += lastDone[i].Sub(roundStart[i])
			}
		}
	})
	for r := 1; r < nodes; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
			buf := make([]byte, n+1)
			for i := 0; i <= Iters; i++ {
				if _, err := eps[r].Recv(p, 0, buf); err != nil {
					panic(err)
				}
				if p.Now() > lastDone[i] {
					lastDone[i] = p.Now()
				}
				arrived[i]++
				done.Broadcast()
			}
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	return total.Microseconds() / float64(Iters)
}

// UnicastAPI is the point-to-point half of Figure 4: the same
// measurement protocol as BroadcastAPI but with a single receiver, on
// the same 4-node ring.
func UnicastAPI(n int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet})
	if err != nil {
		panic(err)
	}
	return PingPong(k, c.Endpoints[0], c.Endpoints[1], n)
}

func others(nodes, not int) []int {
	var out []int
	for i := 0; i < nodes; i++ {
		if i != not {
			out = append(out, i)
		}
	}
	return out
}

// BcastImpl names an MPI_Bcast implementation of Figure 5.
type BcastImpl int

const (
	// BcastP2P is stock MPICH's binomial tree over point-to-point.
	BcastP2P BcastImpl = iota
	// BcastNative uses the BBP API multicast (SCRAMNet only).
	BcastNative
)

// MPIBcast measures MPI_Bcast latency — root call start to last rank's
// return — on `nodes` ranks with an n-byte payload.
func MPIBcast(net cluster.Network, impl BcastImpl, nodes, n int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	_, w, err := cluster.NewMPIWorld(k, net, nodes, impl == BcastNative)
	if err != nil {
		panic(err)
	}
	var total sim.Duration
	lastDone := make([]sim.Time, Iters+1)
	start := make([]sim.Time, Iters+1)
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		buf := make([]byte, n)
		for i := 0; i <= Iters; i++ {
			if c.Rank() == 0 {
				start[i] = p.Now()
			}
			algo := mpi.Tree
			if impl == BcastNative {
				algo = mpi.Mcast
			}
			if err := c.Bcast(p, 0, buf, mpi.WithAlgorithm(algo)); err != nil {
				panic(err)
			}
			if p.Now() > lastDone[i] {
				lastDone[i] = p.Now()
			}
			// Re-synchronize so every round starts together.
			if err := c.Barrier(p, mpi.WithAlgorithm(mpi.Tree)); err != nil {
				panic(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	for i := 1; i <= Iters; i++ {
		total += lastDone[i].Sub(start[i])
	}
	return total.Microseconds() / float64(Iters)
}

// BarrierImpl names an MPI_Barrier implementation of Figure 6.
type BarrierImpl int

const (
	// BarrierP2P is the stock point-to-point algorithm.
	BarrierP2P BarrierImpl = iota
	// BarrierNative is the coordinator + bbp_Mcast release (SCRAMNet).
	BarrierNative
	// BarrierNIC is the NIC-combined 1-lane BAND round over the
	// in-network handler engine (SCRAMNet only, DESIGN.md §15).
	BarrierNIC
)

// MPIBarrier measures barrier latency — simultaneous entry to last
// exit — on `nodes` ranks.
func MPIBarrier(net cluster.Network, impl BarrierImpl, nodes int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	var w *mpi.World
	if impl == BarrierNIC {
		bbp := core.DefaultConfig()
		bbp.Stream.Enabled = true
		c, err := cluster.New(k, cluster.Options{Nodes: nodes, Net: net, BBP: &bbp})
		if err != nil {
			panic(err)
		}
		w = mpi.NewWorld(c.Endpoints, mpi.DefaultConfig())
	} else {
		_, mw, err := cluster.NewMPIWorld(k, net, nodes, impl == BarrierNative)
		if err != nil {
			panic(err)
		}
		w = mw
	}
	algo := mpi.Tree
	switch impl {
	case BarrierNative:
		algo = mpi.Mcast
	case BarrierNIC:
		algo = mpi.NICCombined
	}
	lastDone := make([]sim.Time, Iters+1)
	start := make([]sim.Time, Iters+1)
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		for i := 0; i <= Iters; i++ {
			if start[i] == 0 || p.Now() > start[i] {
				start[i] = p.Now() // all ranks enter at (nearly) the same time
			}
			if err := c.Barrier(p, mpi.WithAlgorithm(algo)); err != nil {
				panic(err)
			}
			if p.Now() > lastDone[i] {
				lastDone[i] = p.Now()
			}
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	var total sim.Duration
	for i := 1; i <= Iters; i++ {
		total += lastDone[i].Sub(start[i])
	}
	return total.Microseconds() / float64(Iters)
}

// RingThroughput measures sustained SCRAMNet throughput (MB/s) for a
// bulk write in the given transmission mode — the §2 table: 6.5 MB/s
// fixed, 16.7 MB/s variable.
func RingThroughput(variable bool) float64 {
	k := sim.NewKernel()
	defer k.Close()
	cfg := clusterRingConfig(variable)
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, Ring: &cfg})
	if err != nil {
		panic(err)
	}
	const size = 1 << 16
	var elapsed sim.Duration
	k.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		c.Ring.NIC(0).WriteDMA(p, 1<<20, make([]byte, size))
		elapsed = p.Now().Sub(start)
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return float64(size) / (float64(elapsed) / 1e9) / 1e6
}
