// Package report is the perf-regression harness: it re-runs the
// Figure 1–6 suite plus the raw-throughput and bus-utilization sweeps
// against the simulated testbed and emits one schema-versioned,
// byte-stable JSON document (BENCH_figures.json). A checked-in copy of
// that document is the performance baseline; the `make bench` tier
// regenerates it and fails on any drift, so a PR that moves a latency
// or a counter must also move the golden file — visibly, in review.
//
// Byte stability is by construction: the simulation is deterministic,
// the report contains no wall-clock time, every float is rounded to
// three decimals before marshaling, and serialization is
// struct-field-ordered json.MarshalIndent (no maps).
package report

import (
	"encoding/json"
	"math"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Schema is the report format version. Bump it whenever a field is
// added, removed or reinterpreted, so downstream tooling can refuse
// documents it does not understand.
const Schema = 1

// Options selects the sweep resolution. The default runs the figure
// suite at the paper's panel sizes; Reduced is a fast subset for tests.
type Options struct {
	// SmallSizes and FullSizes are the figure panels' size axes.
	SmallSizes []int
	FullSizes  []int
	// BusSizes is the bus-utilization sweep axis.
	BusSizes []int
	// CrossoverLo/Hi/Step bound the fine-grained scan for the receive
	// DMA threshold crossover (Step <= 0 disables the scan).
	CrossoverLo, CrossoverHi, CrossoverStep int
	// BarrierAndBcast includes Figures 5 and 6 (the slowest part of the
	// suite, involving every network's collectives).
	BarrierAndBcast bool
}

// DefaultOptions is the full suite, as committed in BENCH_figures.json.
func DefaultOptions() Options {
	return Options{
		SmallSizes:      bench.SmallSizes,
		FullSizes:       bench.FullSizes,
		BusSizes:        []int{0, 16, 64, 256, 1024, 4096},
		CrossoverLo:     4,
		CrossoverHi:     256,
		CrossoverStep:   4,
		BarrierAndBcast: true,
	}
}

// ReducedOptions is a two-point subset for schema and stability tests.
func ReducedOptions() Options {
	return Options{
		SmallSizes:      []int{0, 64},
		FullSizes:       []int{0, 64},
		BusSizes:        []int{0, 256},
		CrossoverLo:     32,
		CrossoverHi:     64,
		CrossoverStep:   32,
		BarrierAndBcast: false,
	}
}

// Report is the document written to BENCH_figures.json.
type Report struct {
	Schema int    `json:"schema"`
	Paper  string `json:"paper"`
	// Figures are the paper's latency panels, in figure order.
	Figures []Figure `json:"figures"`
	// Barrier is the Figure 6 table (empty when BarrierAndBcast is off).
	Barrier []BarrierRow `json:"barrier,omitempty"`
	// Throughput is the §2 raw-hardware table.
	Throughput Throughput `json:"throughput"`
	// BusSweep quantifies §7's claim that polling PIO reads dominate
	// receive overhead: per message size, the receive-side latency on
	// the pure-PIO and pure-DMA paths, the receiver's PIO read traffic,
	// and its I/O-bus utilization.
	BusSweep []BusPoint `json:"bus_sweep"`
	// RecvDMACrossoverBytes is the smallest message size at which the
	// DMA receive path beats PIO word reads (-1: never within the scan,
	// 0: scan disabled).
	RecvDMACrossoverBytes int `json:"recv_dma_crossover_bytes"`
	// Rollup is the cluster-wide metrics snapshot of the canonical
	// instrumented run (the 4-byte SCRAMNet ping-pong): protocol and
	// hardware counters that must not drift silently.
	Rollup metrics.Snapshot `json:"rollup"`
}

// Figure is one latency panel.
type Figure struct {
	Name   string   `json:"name"`
	Title  string   `json:"title"`
	Series []Series `json:"series"`
}

// Series is one curve: latency in microseconds against message size.
type Series struct {
	Label string    `json:"label"`
	X     []int     `json:"x_bytes"`
	Y     []float64 `json:"y_us"`
}

// BarrierRow is one Figure 6 measurement.
type BarrierRow struct {
	Config string  `json:"config"`
	Nodes  int     `json:"nodes"`
	Us     float64 `json:"us"`
}

// Throughput is the §2 raw ring throughput table.
type Throughput struct {
	FixedMBs    float64 `json:"fixed_mb_s"`
	VariableMBs float64 `json:"variable_mb_s"`
}

// BusPoint is one size of the bus-utilization sweep. All counters are
// whole-run totals of the receiving node over warmup+Iters round trips.
type BusPoint struct {
	Bytes int `json:"bytes"`
	// PIOUs and DMAUs are the one-way latencies with the receive path
	// forced to PIO word reads and to the DMA engine respectively.
	PIOUs float64 `json:"pio_recv_us"`
	DMAUs float64 `json:"dma_recv_us"`
	// PIOReadWords is the receiver's PIO read-word count on the PIO
	// path; every one costs a full bus round trip (§7).
	PIOReadWords int64 `json:"recv_pio_read_words"`
	// Polls is how many times the receiver's poll loop read the MESSAGE
	// flag word.
	Polls int64 `json:"recv_polls"`
	// BusBusyFrac is the receiver's I/O-bus occupancy divided by the
	// run's virtual duration, on the PIO path.
	BusBusyFrac float64 `json:"recv_bus_busy_frac"`
}

func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}

func roundSeries(ss []bench.Series) []Series {
	var out []Series
	for _, s := range ss {
		r := Series{Label: s.Label, X: s.X}
		for _, y := range s.Y {
			r.Y = append(r.Y, round3(y))
		}
		out = append(out, r)
	}
	return out
}

// instrumented runs one SCRAMNet ping-pong with a metrics registry
// installed, the BBP configured by mutate (nil = defaults), returning
// the one-way latency, the per-node snapshot, and the run's virtual
// duration in nanoseconds.
func instrumented(n int, mutate func(*core.Config)) (us float64, snap metrics.Snapshot, elapsedNs int64) {
	k := sim.NewKernel()
	defer k.Close()
	m := metrics.New()
	opts := cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, Metrics: m}
	if mutate != nil {
		cfg := core.DefaultConfig()
		mutate(&cfg)
		opts.BBP = &cfg
	}
	c, err := cluster.New(k, opts)
	if err != nil {
		panic(err)
	}
	us = bench.PingPong(k, c.Endpoints[0], c.Endpoints[1], n)
	return us, m.Snapshot(), int64(k.Now())
}

// pioOnly forces the receive path onto PIO word reads; dmaAlways forces
// every non-empty receive through the DMA engine.
func pioOnly(cfg *core.Config)   { cfg.RecvDMAThreshold = 1 << 30 }
func dmaAlways(cfg *core.Config) { cfg.RecvDMAThreshold = 1 }

// busPoint measures one size of the bus-utilization sweep.
func busPoint(n int) BusPoint {
	pioUs, snap, elapsed := instrumented(n, pioOnly)
	dmaUs, _, _ := instrumented(n, dmaAlways)
	// Node 1 is the pong side: it consumes rank 0's messages.
	reads, _ := snap.Counter("pci.pio_read_words", 1)
	polls, _ := snap.Counter("bbp.polls", 1)
	busy, _ := snap.Counter("pci.busy_ns", 1)
	frac := 0.0
	if elapsed > 0 {
		frac = float64(busy) / float64(elapsed)
	}
	return BusPoint{
		Bytes:        n,
		PIOUs:        round3(pioUs),
		DMAUs:        round3(dmaUs),
		PIOReadWords: reads,
		Polls:        polls,
		BusBusyFrac:  round3(frac),
	}
}

// recvDMACrossover scans [lo,hi] for the first size at which the DMA
// receive path is strictly cheaper than PIO reads.
func recvDMACrossover(lo, hi, step int) int {
	if step <= 0 {
		return 0
	}
	pio := func(n int) float64 { us, _, _ := instrumented(n, pioOnly); return us }
	dma := func(n int) float64 { us, _, _ := instrumented(n, dmaAlways); return us }
	return bench.Crossover(pio, dma, lo, hi, step)
}

// Run executes the suite and assembles the report.
func Run(opts Options) Report {
	r := Report{
		Schema: Schema,
		Paper:  "Low-Latency Message Passing on Workstation Clusters using SCRAMNet",
	}
	r.Figures = append(r.Figures,
		Figure{Name: "fig1_small", Title: "SCRAMNet one-way latency, API vs MPI (small messages)", Series: roundSeries(bench.Fig1(opts.SmallSizes))},
		Figure{Name: "fig1", Title: "SCRAMNet one-way latency, API vs MPI", Series: roundSeries(bench.Fig1(opts.FullSizes))},
		Figure{Name: "fig2", Title: "One-way latency across networks, API layer", Series: roundSeries(bench.Fig2(opts.FullSizes))},
		Figure{Name: "fig3", Title: "One-way latency across networks, MPI layer", Series: roundSeries(bench.Fig3(opts.FullSizes))},
		Figure{Name: "fig4", Title: "SCRAMNet point-to-point vs 4-node broadcast, API layer", Series: roundSeries(bench.Fig4(opts.FullSizes))},
	)
	if opts.BarrierAndBcast {
		r.Figures = append(r.Figures,
			Figure{Name: "fig5", Title: "4-node MPI_Bcast, SCRAMNet vs Fast Ethernet", Series: roundSeries(bench.Fig5(opts.FullSizes))})
		for _, row := range bench.Fig6() {
			r.Barrier = append(r.Barrier, BarrierRow{Config: row.Config, Nodes: row.Nodes, Us: round3(row.Microus)})
		}
	}
	r.Throughput = Throughput{
		FixedMBs:    round3(bench.RingThroughput(false)),
		VariableMBs: round3(bench.RingThroughput(true)),
	}
	for _, n := range opts.BusSizes {
		r.BusSweep = append(r.BusSweep, busPoint(n))
	}
	r.RecvDMACrossoverBytes = recvDMACrossover(opts.CrossoverLo, opts.CrossoverHi, opts.CrossoverStep)
	_, snap, _ := instrumented(4, nil)
	r.Rollup = snap.Rollup()
	return r
}

// Marshal renders the report as the canonical BENCH_figures.json bytes
// (indented, trailing newline). Byte-identical across runs.
func Marshal(r Report) []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // no marshal-resistant types in Report
	}
	return append(b, '\n')
}
