// Package report is the perf-regression harness: it re-runs the
// Figure 1–6 suite plus the raw-throughput and bus-utilization sweeps
// against the simulated testbed and emits one schema-versioned,
// byte-stable JSON document (BENCH_figures.json). A checked-in copy of
// that document is the performance baseline; the `make bench` tier
// regenerates it and fails on any drift, so a PR that moves a latency
// or a counter must also move the golden file — visibly, in review.
//
// Byte stability is by construction: the simulation is deterministic,
// the report contains no wall-clock time, every float is rounded to
// three decimals before marshaling, and serialization is
// struct-field-ordered json.MarshalIndent (no maps).
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hybrid"
	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/myrinet"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/trace"
)

// Schema is the report format version. Bump it whenever a field is
// added, removed or reinterpreted, so downstream tooling can refuse
// documents it does not understand.
//
// Schema 2: added poll_aggregation (E9 burst-read poll figure) and
// adaptive_recv_dma_bytes; the bbp.* rollup gained the burst-poll and
// adaptive-threshold instruments.
//
// Schema 3: added failover_latency (E10): with the heartbeat failure
// detector on, the delay from a node bypass to MPI surfacing a
// DeadPeerError mid-Barrier and to the hybrid router's first proactive
// reroute. Default-path figures and the rollup are unchanged — liveness
// is off everywhere else, and the disabled layout is byte-identical.
//
// Schema 4: added rndv_pipeline (E11): the large-message A/B between
// the legacy sequential rendezvous and the receiver-posted-window
// pipelined rendezvous (mpi.Config.RndvZeroCopy). Check() gates the
// improvement. Also in this schema the retry-protocol extension grew
// its descriptors from 4 to 5 words (a checksummed destination mask),
// which moves retry-enabled timings (E10) by a few microseconds;
// default-path figures are unchanged (retry is off there).
//
// Schema 5: added stream_allreduce (E12): the A/B between the in-network
// handler-engine streaming allreduce (spin.Reducer at every ring transit
// point) and the rank-side software tree at 16 nodes, plus the degraded
// round where a suspect member forces the fast path back onto the tree.
// The rollup gained the always-present (zero off the fast path)
// bbp.stream_* and mpi.stream_* instruments; default-path figures are
// unchanged — no handlers are installed there, and the un-handled
// transit path charges nothing.
//
// Schema 6: added barrier_scaling (E14): the NIC-combined barrier (a
// 1-lane BAND spin.Reducer round, gather state accumulated inside the
// cards) against the 16-node mcast-coordinator baseline, NIC scaling
// out to 256 nodes, and span-tree critical-path proofs of the gating
// rank's bus before and after. In the same schema the Reducer's
// completion word became a combining counter (round tag | count)
// instead of a 24-rank bitmask, which leaves packet counts and E12
// timings unchanged, and the rollup gained the always-present
// ring.packets_combined instrument.
//
// Schema 7: added partition_tolerance (E15): with link-cut faults and
// the partition detector on, the delay from a scripted double cut to
// the worst minority rank's PartitionError, the delay from the splice
// to a fully resynced all-alive membership, and the one-way latency
// penalty of the dual ring's wrap path under a single cut. Default-path
// figures and the rollup are unchanged — no segment is ever cut there,
// and the new ring.wrap_hops/link_cuts/link_splices instruments sit at
// zero off the fault path.
const Schema = 7

// Options selects the sweep resolution. The default runs the figure
// suite at the paper's panel sizes; Reduced is a fast subset for tests.
type Options struct {
	// SmallSizes and FullSizes are the figure panels' size axes.
	SmallSizes []int
	FullSizes  []int
	// BusSizes is the bus-utilization sweep axis.
	BusSizes []int
	// CrossoverLo/Hi/Step bound the fine-grained scan for the receive
	// DMA threshold crossover (Step <= 0 disables the scan).
	CrossoverLo, CrossoverHi, CrossoverStep int
	// BarrierAndBcast includes Figures 5 and 6 (the slowest part of the
	// suite, involving every network's collectives).
	BarrierAndBcast bool
}

// DefaultOptions is the full suite, as committed in BENCH_figures.json.
func DefaultOptions() Options {
	return Options{
		SmallSizes:      bench.SmallSizes,
		FullSizes:       bench.FullSizes,
		BusSizes:        []int{0, 16, 64, 256, 1024, 4096},
		CrossoverLo:     4,
		CrossoverHi:     256,
		CrossoverStep:   4,
		BarrierAndBcast: true,
	}
}

// ReducedOptions is a two-point subset for schema and stability tests.
func ReducedOptions() Options {
	return Options{
		SmallSizes:      []int{0, 64},
		FullSizes:       []int{0, 64},
		BusSizes:        []int{0, 256},
		CrossoverLo:     32,
		CrossoverHi:     64,
		CrossoverStep:   32,
		BarrierAndBcast: false,
	}
}

// Report is the document written to BENCH_figures.json.
type Report struct {
	Schema int    `json:"schema"`
	Paper  string `json:"paper"`
	// Figures are the paper's latency panels, in figure order.
	Figures []Figure `json:"figures"`
	// Barrier is the Figure 6 table (empty when BarrierAndBcast is off).
	Barrier []BarrierRow `json:"barrier,omitempty"`
	// Throughput is the §2 raw-hardware table.
	Throughput Throughput `json:"throughput"`
	// BusSweep quantifies §7's claim that polling PIO reads dominate
	// receive overhead: per message size, the receive-side latency on
	// the pure-PIO and pure-DMA paths, the receiver's PIO read traffic,
	// and its I/O-bus utilization.
	BusSweep []BusPoint `json:"bus_sweep"`
	// RecvDMACrossoverBytes is the smallest message size at which the
	// DMA receive path beats PIO word reads (-1: never within the scan,
	// 0: scan disabled).
	RecvDMACrossoverBytes int `json:"recv_dma_crossover_bytes"`
	// PollAggregation is the E9 measurement: the sink's full-round-trip
	// poll reads in a 0-byte incast with per-word polling vs the
	// burst-read poll path. Check() gates ReductionPct.
	PollAggregation PollAggregation `json:"poll_aggregation"`
	// AdaptiveRecvDMABytes is the receive-DMA threshold the adaptive
	// estimator converges to on the default uncontended bus (the
	// bbp.recv_dma_threshold_bytes gauge after an instrumented run with
	// adaptation enabled); it must agree with the measured crossover.
	AdaptiveRecvDMABytes int64 `json:"adaptive_recv_dma_bytes"`
	// FailoverLatency is the E10 measurement: node-death-to-action
	// delays with the heartbeat failure detector on. Check() gates both
	// delays against the detector's configured windows.
	FailoverLatency FailoverLatency `json:"failover_latency"`
	// RndvPipeline is the E11 measurement: one large-message one-way
	// MPI latency with the legacy sequential rendezvous vs the
	// receiver-posted-window pipelined rendezvous. Check() gates
	// ImprovementPct.
	RndvPipeline RndvPipeline `json:"rndv_pipeline"`
	// StreamAllreduce is the E12 measurement: one small-vector allreduce
	// at 16 nodes through the in-network handler engine vs the rank-side
	// software tree, and whether a suspect member degrades the fast path
	// back onto the tree. Check() gates the improvement, the non-zero
	// handler cycle charge, and the degradation.
	StreamAllreduce StreamAllreduce `json:"stream_allreduce"`
	// BarrierScaling is the E14 measurement: the NIC-combined barrier (a
	// 1-lane BAND spin.Reducer round) against the host mcast-coordinator
	// barrier at 16 nodes, NIC scaling out to the 256-node ring limit,
	// and the span-tree critical-path proof of which rank's bus gates
	// each variant. Check() gates the improvement, the scaling exponent,
	// and the gating rank's bus relief.
	BarrierScaling BarrierScaling `json:"barrier_scaling"`
	// PartitionTolerance is the E15 measurement: how quickly a ring-cut
	// partition is turned into typed fencing at the MPI layer, how
	// quickly a splice is turned back into an all-alive resynced
	// membership, and what the dual ring's wrap path costs in one-way
	// latency while it heals a single cut. Check() gates all three.
	PartitionTolerance PartitionTolerance `json:"partition_tolerance"`
	// Rollup is the cluster-wide metrics snapshot of the canonical
	// instrumented run (the 4-byte SCRAMNet ping-pong): protocol and
	// hardware counters that must not drift silently.
	Rollup metrics.Snapshot `json:"rollup"`
}

// Figure is one latency panel.
type Figure struct {
	Name   string   `json:"name"`
	Title  string   `json:"title"`
	Series []Series `json:"series"`
}

// Series is one curve: latency in microseconds against message size.
type Series struct {
	Label string    `json:"label"`
	X     []int     `json:"x_bytes"`
	Y     []float64 `json:"y_us"`
}

// BarrierRow is one Figure 6 measurement.
type BarrierRow struct {
	Config string  `json:"config"`
	Nodes  int     `json:"nodes"`
	Us     float64 `json:"us"`
}

// Throughput is the §2 raw ring throughput table.
type Throughput struct {
	FixedMBs    float64 `json:"fixed_mb_s"`
	VariableMBs float64 `json:"variable_mb_s"`
}

// BusPoint is one size of the bus-utilization sweep. All counters are
// whole-run totals of the receiving node over warmup+Iters round trips.
type BusPoint struct {
	Bytes int `json:"bytes"`
	// PIOUs and DMAUs are the one-way latencies with the receive path
	// forced to PIO word reads and to the DMA engine respectively.
	PIOUs float64 `json:"pio_recv_us"`
	DMAUs float64 `json:"dma_recv_us"`
	// PIOReadWords is the receiver's PIO read-word count on the PIO
	// path; every one costs a full bus round trip (§7).
	PIOReadWords int64 `json:"recv_pio_read_words"`
	// Polls is how many times the receiver's poll loop read the MESSAGE
	// flag word.
	Polls int64 `json:"recv_polls"`
	// BusBusyFrac is the receiver's I/O-bus occupancy divided by the
	// run's virtual duration, on the PIO path.
	BusBusyFrac float64 `json:"recv_bus_busy_frac"`
}

// PollAggregation compares the receiver's poll traffic, in full
// bus-round-trip read transactions, between the per-word and burst-read
// poll paths on the same workload: a 0-byte incast of Nodes−1 senders
// into one RecvAny sink. Per-word, every poll word is its own round
// trip; with bursts, each wide read costs one round trip however many
// words it moves, so the transaction count is
// (poll_words − burst_poll_words) + burst_polls.
type PollAggregation struct {
	Nodes int `json:"nodes"`
	Bytes int `json:"bytes"`
	// PerWordPollReads / BurstPollReads are the sink's full-round-trip
	// poll read transactions with BurstPoll forced off vs the default.
	PerWordPollReads int64 `json:"per_word_poll_reads"`
	BurstPollReads   int64 `json:"burst_poll_reads"`
	// ReductionPct is the drop, in percent, burst polling achieves.
	ReductionPct float64 `json:"reduction_pct"`
}

// FailoverLatency is the E10 measurement (EXPERIMENTS.md): how quickly
// the stack turns a node death into action once the heartbeat failure
// detector (liveness.DefaultConfig) is on. Both delays are measured
// from the instant the fault script bypasses the node's ring card.
type FailoverLatency struct {
	Nodes int `json:"nodes"`
	// SuspectWindowUs / ConfirmWindowUs record the detector calibration
	// the run used, so the gated delays are self-describing.
	SuspectWindowUs float64 `json:"suspect_window_us"`
	ConfirmWindowUs float64 `json:"confirm_window_us"`
	// MPIErrorUs is the worst delay, across surviving ranks, until a
	// Barrier interrupted by the death returns DeadPeerError. Bounded by
	// the confirmation window — not the retry daemon's MaxRetries ×
	// doubling-Timeout budget (~51 ms).
	MPIErrorUs float64 `json:"mpi_error_us"`
	// HybridRerouteUs is the delay until the hybrid router's first
	// proactive reroute of a ring-preferred send onto the high-bandwidth
	// substrate. Bounded by the suspicion window: rerouting starts on
	// suspicion, before confirmation.
	HybridRerouteUs float64 `json:"hybrid_reroute_us"`
}

// PartitionTolerance is the E15 measurement (EXPERIMENTS.md): the
// ring-cut partition lifecycle with link-cut faults and the partition
// detector (liveness.DefaultConfig) on. Fence and heal delays are
// measured from the instants the fault script cuts and splices the
// fibers; the wrap penalty compares a clean dual ring against one
// healing a single cut.
type PartitionTolerance struct {
	Nodes int `json:"nodes"`
	// SuspectWindowUs / ConfirmWindowUs record the detector calibration
	// the runs used, so the gated delays are self-describing.
	SuspectWindowUs float64 `json:"suspect_window_us"`
	ConfirmWindowUs float64 `json:"confirm_window_us"`
	// FenceUs is the worst delay, across minority ranks, until a Barrier
	// straddling a scripted double cut returns PartitionError. Bounded
	// below by the suspicion window (the declaration needs a stable
	// suspect arc) and above by the confirmation window plus scan slack.
	FenceUs float64 `json:"fence_us"`
	// HealResyncUs is the delay from the splice until every node reports
	// no partition and an all-alive membership — the minority's
	// incarnation-fenced rejoin and resync included.
	HealResyncUs float64 `json:"heal_resync_us"`
	// WrapPenaltyUs is the added one-way BBP latency of a small send
	// whose path crosses a single cut segment: the cost of the secondary
	// ring's wrap hops, and nothing else — delivery stays byte-identical
	// and no partition is ever declared.
	WrapPenaltyUs float64 `json:"wrap_penalty_us"`
}

// RndvPipeline is the E11 measurement (EXPERIMENTS.md): the one-way
// MPI latency of one Bytes-long message on the paper's PIO-only
// SCRAMNet channel device, sequentially (rendezvous data re-crosses
// the receiver's I/O bus as polled word reads) and through a
// receiver-posted window (payload bursts across each bus exactly once,
// chunks pipelined PipelineDepth deep on the ring). The wire format
// with the feature off is byte-identical to pre-window builds, so
// SequentialUs doubles as the legacy-path regression anchor.
type RndvPipeline struct {
	Bytes         int     `json:"bytes"`
	PipelineDepth int     `json:"pipeline_depth"`
	SequentialUs  float64 `json:"sequential_us"`
	PipelinedUs   float64 `json:"pipelined_us"`
	// ImprovementPct is how much of the sequential latency the windowed
	// path removes, in percent.
	ImprovementPct float64 `json:"improvement_pct"`
}

// StreamAllreduce is the E12 measurement (EXPERIMENTS.md): the
// completion latency of one Bytes-long 32-bit-lane sum allreduce across
// Nodes ranks, (a) through Comm.AllreduceW's in-network fast path — the
// vector circulates the ring once and every transit NIC's spin.Reducer
// handler folds the local contribution in — and (b) through the
// rank-side binomial tree over the identical RingOpFunc fold. Both runs
// use the same substrate and cost model; the handler path additionally
// pays HandlerCycles × scramnet.Config.HandlerCycleCost of in-network
// compute, so the win is honest. SuspectFallback records the liveness
// gate: with one member suspected (bypassed then repaired), the same
// call must decline the fast path and complete on the tree.
type StreamAllreduce struct {
	Nodes int `json:"nodes"`
	Bytes int `json:"bytes"`
	// TreeUs / HandlerUs are the worst-rank completion latencies of the
	// software tree and the handler fast path.
	TreeUs    float64 `json:"tree_us"`
	HandlerUs float64 `json:"handler_us"`
	// ImprovementPct is how much of the tree latency the handler path
	// removes, in percent.
	ImprovementPct float64 `json:"improvement_pct"`
	// HandlerCycles is the cluster-wide spin.handler_cycles total of the
	// fast-path run — the virtual-time cost the NICs charged for the
	// in-network compute.
	HandlerCycles int64 `json:"handler_cycles"`
	// SuspectFallback reports that the degraded run declined the fast
	// path on suspicion and still produced the correct sums on the tree.
	SuspectFallback bool `json:"suspect_fallback"`
}

// BarrierScaling is the E14 document section. HostUs is the paper-style
// mcast-coordinator barrier at BarrierHostNodes ranks (the ~137 µs
// baseline); NIC lists the NIC-combined barrier latency per rank count
// out to the 256-node ring address limit; ScaleRatio is
// NIC(256)/NIC(16), which O(ranks) scaling would put at ≥ 16. HostPath
// and NICPath are the span-tree critical-path decompositions
// (timeline.CriticalPath) of traced 16-node runs: which rank's
// sequential work — and hence whose host bus — gates the collective,
// what fraction of the barrier window sits on that rank's chain, and
// that rank's PCI bus occupancy over the run.
type BarrierScaling struct {
	HostNodes int            `json:"host_nodes"`
	HostUs    float64        `json:"host_us"`
	NIC       []BarrierPoint `json:"nic"`
	// ImprovementPct is how much of the 16-node host barrier the
	// NIC-combined round removes.
	ImprovementPct float64     `json:"improvement_pct"`
	ScaleRatio     float64     `json:"scale_ratio"`
	HostPath       BarrierPath `json:"host_path"`
	NICPath        BarrierPath `json:"nic_path"`
}

// BarrierPoint is one rank count of the NIC barrier scaling sweep.
type BarrierPoint struct {
	Nodes int     `json:"nodes"`
	Us    float64 `json:"us"`
}

// BarrierPath is the critical-path summary of one traced 16-node
// barrier: the gating rank (largest critical-path share), that share in
// µs and as a fraction of the barrier window, and the gating rank's
// pci.busy_ns occupancy over the run.
type BarrierPath struct {
	GatingRank  int     `json:"gating_rank"`
	PathUs      float64 `json:"path_us"`
	PathFrac    float64 `json:"path_frac"`
	BusBusyFrac float64 `json:"bus_busy_frac"`
}

// BarrierHostNodes / BarrierNICNodes are the E14 panel points: the
// baseline size the paper's coordinator barrier is proven at, and the
// NIC sweep out to the flat ring's address limit.
var BarrierNICNodes = []int{4, 16, 64, 256}

const BarrierHostNodes = 16

// MinBarrierImprovementPct and MaxBarrierScaleRatio are the `make
// bench` regression gates on E14 (this PR): the NIC-combined barrier
// must cut the 16-node mcast-coordinator barrier (~137 µs) by at least
// this percentage, and its 16→256 scaling ratio must stay below
// O(ranks) growth (which would be 256/16 = 16; measured ~13.6 — the
// ring revolution is inherently O(ranks), the flatter-than-linear win
// is the combining pass absorbing all gather work into transit).
const (
	MinBarrierImprovementPct = 25.0
	MaxBarrierScaleRatio     = 16.0
)

// StreamAllreduceNodes / StreamAllreduceBytes are the E12 panel point:
// the acceptance cluster size and the vector size (16 32-bit lanes).
const (
	StreamAllreduceNodes = 16
	StreamAllreduceBytes = 64
)

// MinStreamImprovementPct is the `make bench` regression gate on E12
// (ISSUE 7): the in-network streaming allreduce must cut the 16-node
// small-vector allreduce latency by at least this percentage versus the
// rank-side tree. The tree pays log2(16) = 4 serialized rounds of
// software send/receive overhead (~27.5 µs + ~20 µs per hop); the
// stream path pays one arrival barrier plus one ring revolution of
// header+vector+mask packets and the cycle-priced handler work.
const MinStreamImprovementPct = 25.0

// RndvPipelineBytes / RndvPipelineDepth are the E11 panel point: the
// acceptance size for "pipelining pays off at or above 64 KiB", at the
// engine's default pipeline depth.
const (
	RndvPipelineBytes = 64 << 10
	RndvPipelineDepth = 2
)

// MinRndvImprovementPct is the `make bench` regression gate on E11
// (ISSUE 6): the windowed pipelined rendezvous must cut the 64 KiB
// one-way latency by at least this percentage versus the sequential
// path. The 615 ns/word ring wire dominates both paths, so the
// realistic win is the receiver's bus traffic, not the wire: the
// sequential path tails off with a ~16k-word polled PIO re-read of the
// last chunk plus per-chunk billboard bookkeeping, all of which the
// single end-of-window DMA burst removes. Measured: ~17.4% (13.25 ms →
// 10.95 ms); the gate sits below it to absorb cost-model
// recalibration, while still catching any change that degrades the
// windowed path toward the sequential one.
const MinRndvImprovementPct = 10.0

// MaxMPIDeadPeerErrorUs and MaxHybridRerouteUs are the `make bench`
// regression gates on E10: the MPI error must land within the 2500 µs
// confirmation window plus scan slack, and the hybrid reroute within
// the 500 µs suspicion window plus the sender's probe spacing. Either
// drifting upward means death discovery regressed toward the ~51 ms
// retry-exhaustion path this subsystem replaces.
const (
	MaxMPIDeadPeerErrorUs = 3500.0
	MaxHybridRerouteUs    = 1200.0
)

// MaxPartitionFenceUs, MaxHealResyncUs and MaxWrapPenaltyUs are the
// `make bench` regression gates on E15. The fence must land within the
// confirmation window plus scan slack (like the dead-peer gate above);
// the heal must reconverge within a few detector periods of the splice
// — drifting upward means rejoin/resync regressed toward waiting out
// suspicion from scratch; and the wrap penalty must stay a pure wire
// cost (a handful of extra hop delays), because the wrap path adds
// latency only, never protocol work.
const (
	MaxPartitionFenceUs = 3500.0
	MaxHealResyncUs     = 2000.0
	MaxWrapPenaltyUs    = 5.0
)

// MinPollReductionPct is the `make bench` regression gate on the burst
// poll path (ISSUE 4): the sink's poll read transactions at 0 B /
// PollAggregationNodes nodes must drop by at least this percentage
// versus per-word polling, and must not silently regress in later PRs.
const MinPollReductionPct = 60.0

// PollAggregationNodes is the cluster size of the E9 incast.
const PollAggregationNodes = 16

// Check enforces the report's self-describing regression gates; the
// cmd/figures -json path exits nonzero when it fails, so `make bench`
// catches the regression even before the golden-file diff.
func (r Report) Check() error {
	p := r.PollAggregation
	if p.PerWordPollReads <= 0 || p.BurstPollReads <= 0 {
		return fmt.Errorf("poll aggregation gate: degenerate measurement (per-word %d, burst %d poll reads)",
			p.PerWordPollReads, p.BurstPollReads)
	}
	if p.ReductionPct < MinPollReductionPct {
		return fmt.Errorf("poll aggregation gate: burst polling cut the sink's poll reads by %.1f%% (%d → %d at %d B / %d nodes); the gate requires ≥ %.0f%%",
			p.ReductionPct, p.PerWordPollReads, p.BurstPollReads, p.Bytes, p.Nodes, MinPollReductionPct)
	}
	f := r.FailoverLatency
	if f.MPIErrorUs <= f.ConfirmWindowUs || f.MPIErrorUs > MaxMPIDeadPeerErrorUs {
		return fmt.Errorf("failover gate: mid-Barrier DeadPeerError took %.1f µs after the bypass; must be within (%.0f, %.0f] µs (confirmation window + scan slack)",
			f.MPIErrorUs, f.ConfirmWindowUs, MaxMPIDeadPeerErrorUs)
	}
	if f.HybridRerouteUs <= f.SuspectWindowUs || f.HybridRerouteUs > MaxHybridRerouteUs {
		return fmt.Errorf("failover gate: first proactive hybrid reroute took %.1f µs after the bypass; must be within (%.0f, %.0f] µs (suspicion window + probe spacing)",
			f.HybridRerouteUs, f.SuspectWindowUs, MaxHybridRerouteUs)
	}
	pt := r.PartitionTolerance
	if pt.FenceUs <= pt.SuspectWindowUs || pt.FenceUs > MaxPartitionFenceUs {
		return fmt.Errorf("partition gate: minority PartitionError took %.1f µs after the double cut; must be within (%.0f, %.0f] µs (suspicion window .. confirmation window + scan slack)",
			pt.FenceUs, pt.SuspectWindowUs, MaxPartitionFenceUs)
	}
	if pt.HealResyncUs <= 0 || pt.HealResyncUs > MaxHealResyncUs {
		return fmt.Errorf("partition gate: all-alive resync took %.1f µs after the splice; must be within (0, %.0f] µs (a few detector periods)",
			pt.HealResyncUs, MaxHealResyncUs)
	}
	if pt.WrapPenaltyUs <= 0 || pt.WrapPenaltyUs > MaxWrapPenaltyUs {
		return fmt.Errorf("partition gate: single-cut wrap path added %.3f µs one-way; must be within (0, %.0f] µs (hop delays only — the wrap heal does no protocol work)",
			pt.WrapPenaltyUs, MaxWrapPenaltyUs)
	}
	z := r.RndvPipeline
	if z.SequentialUs <= 0 || z.PipelinedUs <= 0 {
		return fmt.Errorf("rendezvous pipeline gate: degenerate measurement (sequential %.1f µs, pipelined %.1f µs)",
			z.SequentialUs, z.PipelinedUs)
	}
	if z.ImprovementPct < MinRndvImprovementPct {
		return fmt.Errorf("rendezvous pipeline gate: the windowed path cut the %d B one-way latency by %.1f%% (%.1f → %.1f µs at depth %d); the gate requires ≥ %.0f%%",
			z.Bytes, z.ImprovementPct, z.SequentialUs, z.PipelinedUs, z.PipelineDepth, MinRndvImprovementPct)
	}
	s := r.StreamAllreduce
	if s.TreeUs <= 0 || s.HandlerUs <= 0 {
		return fmt.Errorf("stream allreduce gate: degenerate measurement (tree %.1f µs, handler %.1f µs)",
			s.TreeUs, s.HandlerUs)
	}
	if s.ImprovementPct < MinStreamImprovementPct {
		return fmt.Errorf("stream allreduce gate: the handler path cut the %d B / %d-node allreduce by %.1f%% (%.1f → %.1f µs); the gate requires ≥ %.0f%%",
			s.Bytes, s.Nodes, s.ImprovementPct, s.TreeUs, s.HandlerUs, MinStreamImprovementPct)
	}
	if s.HandlerCycles <= 0 {
		return fmt.Errorf("stream allreduce gate: fast path ran without charging handler cycles — the in-network compute is no longer priced in virtual time")
	}
	if !s.SuspectFallback {
		return fmt.Errorf("stream allreduce gate: a suspect member did not degrade the fast path to the tree")
	}
	b := r.BarrierScaling
	if b.HostUs <= 0 || len(b.NIC) == 0 {
		return fmt.Errorf("barrier scaling gate: degenerate measurement (host %.1f µs, %d NIC points)",
			b.HostUs, len(b.NIC))
	}
	if b.ImprovementPct < MinBarrierImprovementPct {
		return fmt.Errorf("barrier scaling gate: the NIC-combined round cut the %d-node coordinator barrier by %.1f%% (%.1f µs baseline); the gate requires ≥ %.0f%%",
			b.HostNodes, b.ImprovementPct, b.HostUs, MinBarrierImprovementPct)
	}
	if b.ScaleRatio <= 0 || b.ScaleRatio >= MaxBarrierScaleRatio {
		return fmt.Errorf("barrier scaling gate: NIC barrier grew %.1f× from 16 to 256 ranks; O(ranks) would be %.0f× and the gate requires flatter",
			b.ScaleRatio, MaxBarrierScaleRatio)
	}
	if b.HostPath.GatingRank != 0 {
		return fmt.Errorf("barrier scaling gate: host barrier critical path gated by rank %d, not the rank-0 coordinator — the span-tree proof no longer matches the algorithm",
			b.HostPath.GatingRank)
	}
	if b.NICPath.BusBusyFrac >= b.HostPath.BusBusyFrac {
		return fmt.Errorf("barrier scaling gate: the gating rank's bus occupancy did not drop (host %.3f → NIC %.3f); the combining pass no longer relieves the coordinator's bus",
			b.HostPath.BusBusyFrac, b.NICPath.BusBusyFrac)
	}
	return nil
}

func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}

func roundSeries(ss []bench.Series) []Series {
	var out []Series
	for _, s := range ss {
		r := Series{Label: s.Label, X: s.X}
		for _, y := range s.Y {
			r.Y = append(r.Y, round3(y))
		}
		out = append(out, r)
	}
	return out
}

// instrumented runs one SCRAMNet ping-pong with a metrics registry
// installed, the BBP configured by mutate (nil = defaults), returning
// the one-way latency, the per-node snapshot, and the run's virtual
// duration in nanoseconds.
func instrumented(n int, mutate func(*core.Config)) (us float64, snap metrics.Snapshot, elapsedNs int64) {
	k := sim.NewKernel()
	defer k.Close()
	m := metrics.New()
	opts := cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, Metrics: m}
	if mutate != nil {
		cfg := core.DefaultConfig()
		mutate(&cfg)
		opts.BBP = &cfg
	}
	c, err := cluster.New(k, opts)
	if err != nil {
		panic(err)
	}
	us = bench.PingPong(k, c.Endpoints[0], c.Endpoints[1], n)
	return us, m.Snapshot(), int64(k.Now())
}

// pioOnly forces the receive path onto PIO word reads; dmaAlways forces
// every non-empty receive through the DMA engine.
func pioOnly(cfg *core.Config)   { cfg.Thresholds.RecvDMA = 1 << 30 }
func dmaAlways(cfg *core.Config) { cfg.Thresholds.RecvDMA = 1 }

// incastPollReads runs the E9 workload — senders = nodes−1 processes
// each posting one n-byte message into a RecvAny sink at node 0 — with
// the given poll mode, and returns the sink's poll traffic as full
// bus-round-trip read transactions.
func incastPollReads(mode core.BurstMode, nodes, n int) int64 {
	k := sim.NewKernel()
	defer k.Close()
	m := metrics.New()
	cfg := core.DefaultConfig()
	cfg.BurstPoll = mode
	c, err := cluster.New(k, cluster.Options{Nodes: nodes, Net: cluster.SCRAMNet, BBP: &cfg, Metrics: m})
	if err != nil {
		panic(err)
	}
	eps := c.Endpoints
	for s := 1; s < nodes; s++ {
		s := s
		k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
			if err := eps[s].Send(p, 0, make([]byte, n)); err != nil {
				panic(err)
			}
		})
	}
	k.Spawn("sink", func(p *sim.Proc) {
		buf := make([]byte, n+8)
		for i := 1; i < nodes; i++ {
			if _, _, err := eps[0].RecvAny(p, buf); err != nil {
				panic(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	snap := m.Snapshot()
	pollW, _ := snap.Counter("bbp.poll_words", 0)
	burstW, _ := snap.Counter("bbp.burst_poll_words", 0)
	bursts, _ := snap.Counter("bbp.burst_polls", 0)
	return (pollW - burstW) + bursts
}

// pollAggregation measures the E9 figure at the gate's panel point.
func pollAggregation() PollAggregation {
	const n = 0
	perWord := incastPollReads(core.BurstOff, PollAggregationNodes, n)
	burst := incastPollReads(core.BurstAuto, PollAggregationNodes, n)
	red := 0.0
	if perWord > 0 {
		red = 100 * (1 - float64(burst)/float64(perWord))
	}
	return PollAggregation{
		Nodes:            PollAggregationNodes,
		Bytes:            n,
		PerWordPollReads: perWord,
		BurstPollReads:   burst,
		ReductionPct:     round3(red),
	}
}

// adaptiveConverged runs an instrumented ping-pong with threshold
// adaptation enabled and returns the converged
// bbp.recv_dma_threshold_bytes gauge on the pong side.
func adaptiveConverged() int64 {
	_, snap, _ := instrumented(4, func(cfg *core.Config) {
		cfg.Thresholds.Adaptive.Enabled = true
	})
	g, _ := snap.Gauge("bbp.recv_dma_threshold_bytes", 1)
	return g.Value
}

// mpiDeadPeerLatency kills one node mid-Barrier and returns the worst
// delay, in µs after the bypass, until a surviving rank's Barrier
// returns DeadPeerError.
func mpiDeadPeerLatency(lcfg liveness.Config) float64 {
	const nodes, victim = 4, 2
	kill := sim.Time(0).Add(1 * sim.Millisecond)
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	bbp.Thresholds.SendDMA = 1 << 30 // the paper's PIO-only channel device
	bbp.Thresholds.RecvDMA = 1 << 30
	bbp.Thresholds.Adaptive = core.AdaptiveConfig{}
	script := &fault.Script{Seed: 101, Actions: []fault.Action{
		{At: kill, Kind: fault.NodeFail, Node: victim},
	}}
	c, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		panic(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.McastCollectives = true
	w := mpi.NewWorld(c.Endpoints, mcfg)
	var worst sim.Time
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if err := cm.Barrier(p); err != nil {
			panic(err) // the pre-death barrier must succeed
		}
		if cm.Rank() == victim {
			return // the machine dies with its process
		}
		if err := cm.Barrier(p); err == nil {
			panic("barrier with a dead participant completed")
		}
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return round3(float64(worst.Sub(kill)) / float64(sim.Microsecond))
}

// hybridRerouteLatency bypasses a node's ring card (its Myrinet link
// stays up) under a steady stream of small ring-preferred sends, and
// returns the delay, in µs after the bypass, until the router's first
// proactive reroute completes on the high substrate.
func hybridRerouteLatency(lcfg liveness.Config) float64 {
	const nodes, dst = 3, 2
	kill := sim.Time(0).Add(1 * sim.Millisecond)
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	// Nothing consumes at dst (the probe stream only exists to trip the
	// router), so no ACKs ever return: give the sender enough billboard
	// slots that it never stalls on allocation while probing.
	bbp.Buffers = 32
	script := &fault.Script{Seed: 102, Actions: []fault.Action{
		{At: kill, Kind: fault.NodeFail, Node: dst},
	}}
	low, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		panic(err)
	}
	san, err := myrinet.New(k, myrinet.DefaultConfig(nodes))
	if err != nil {
		panic(err)
	}
	router, err := hybrid.New(low.Endpoints[0],
		myrinet.OpenAPI(san, 0, myrinet.DefaultAPIConfig()), hybrid.DefaultConfig())
	if err != nil {
		panic(err)
	}
	var reroute sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		msg := make([]byte, 16) // far below the crossover: prefers the ring
		for {
			if err := router.Send(p, dst, msg); err != nil {
				panic(err)
			}
			if router.Stats().ProactiveFailovers > 0 {
				reroute = p.Now()
				return
			}
			p.Delay(50 * sim.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return round3(float64(reroute.Sub(kill)) / float64(sim.Microsecond))
}

// failoverLatency assembles the E10 row.
func failoverLatency() FailoverLatency {
	lcfg := liveness.DefaultConfig()
	return FailoverLatency{
		Nodes:           4,
		SuspectWindowUs: round3(float64(lcfg.SuspectAfter) / float64(sim.Microsecond)),
		ConfirmWindowUs: round3(float64(lcfg.ConfirmAfter) / float64(sim.Microsecond)),
		MPIErrorUs:      mpiDeadPeerLatency(lcfg),
		HybridRerouteUs: hybridRerouteLatency(lcfg),
	}
}

// partitionScript severs segments 1 (1→2) and 3 (3→4) of the 5-node
// ring at cut, splitting it into a majority arc {4,0,1} and a minority
// arc {2,3}, and splices both at heal.
func partitionScript(cut, heal sim.Time) *fault.Script {
	return &fault.Script{Seed: 103, Actions: []fault.Action{
		{At: cut, Kind: fault.LinkCut, Node: 1},
		{At: cut, Kind: fault.LinkCut, Node: 3},
		{At: heal, Kind: fault.LinkSplice, Node: 1},
		{At: heal, Kind: fault.LinkSplice, Node: 3},
	}}
}

// partitionCluster builds the E15 cluster: the paper's PIO-only channel
// device with retry and the failure detector on, under script.
func partitionCluster(k *sim.Kernel, nodes int, script *fault.Script, lcfg *liveness.Config) *cluster.Cluster {
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	bbp.Thresholds.SendDMA = 1 << 30
	bbp.Thresholds.RecvDMA = 1 << 30
	bbp.Thresholds.Adaptive = core.AdaptiveConfig{}
	c, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: lcfg,
	})
	if err != nil {
		panic(err)
	}
	return c
}

// partitionFenceLatency double-cuts the ring under a Barrier entered
// just after the cut lands and returns the worst delay, in µs after the
// cut, until a minority rank's Barrier returns PartitionError.
func partitionFenceLatency(lcfg liveness.Config) float64 {
	const nodes = 5
	cut := sim.Time(0).Add(2 * sim.Millisecond)
	heal := sim.Time(0).Add(60 * sim.Millisecond) // after the errors land
	k := sim.NewKernel()
	defer k.Close()
	c := partitionCluster(k, nodes, partitionScript(cut, heal), &lcfg)
	w := mpi.NewWorld(c.Endpoints, mpi.DefaultConfig())
	var worst sim.Time
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		p.Delay(cut.Sub(sim.Time(0)) + 100*sim.Microsecond)
		err := cm.Barrier(p)
		var pe *mpi.PartitionError
		if !errors.As(err, &pe) {
			panic(fmt.Sprintf("E15 rank %d: straddling barrier returned %v, want PartitionError", cm.Rank(), err))
		}
		if pe.Minority && p.Now() > worst {
			worst = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return round3(float64(worst.Sub(cut)) / float64(sim.Microsecond))
}

// partitionHealLatency lets the same double cut be declared on every
// node, splices both segments, and returns the delay, in µs after the
// splice, until every node reports no partition and an all-alive view —
// the minority's incarnation-fenced rejoin and resync included.
func partitionHealLatency(lcfg liveness.Config) float64 {
	const nodes = 5
	cut := sim.Time(0).Add(2 * sim.Millisecond)
	heal := sim.Time(0).Add(8 * sim.Millisecond)
	k := sim.NewKernel()
	defer k.Close()
	c := partitionCluster(k, nodes, partitionScript(cut, heal), &lcfg)
	converged := func() bool {
		for i := 0; i < nodes; i++ {
			e := c.Endpoints[i].(*core.Endpoint)
			if _, ok := e.Partition(); ok {
				return false
			}
			v := e.Liveness()
			for n := 0; n < nodes; n++ {
				if n != i && v.State(n) != liveness.Alive {
					return false
				}
			}
		}
		return true
	}
	var done sim.Time
	healed := false
	deadline := heal.Add(20 * sim.Millisecond)
	var poll func()
	poll = func() {
		if converged() {
			done, healed = k.Now(), true
			return
		}
		if k.Now() < deadline {
			k.At(k.Now().Add(lcfg.Period), poll)
		}
	}
	k.At(heal, poll)
	if err := k.Run(); err != nil {
		panic(err)
	}
	if !healed {
		panic("E15: membership never reconverged after the splice")
	}
	for i := 0; i < nodes; i++ {
		if st := c.Endpoints[i].(*core.Endpoint).LivenessStats(); st.Partitions != 1 || st.PartitionHeals != 1 {
			panic(fmt.Sprintf("E15 node %d: partition lifecycle did not run (stats %+v)", i, st))
		}
	}
	return round3(float64(done.Sub(heal)) / float64(sim.Microsecond))
}

// wrapPenalty returns the propagation cost, in µs, of the dual ring's
// wrap path: the time for one replicated word write from node 0 to
// finish circulating a clean 4-node ring vs the same write with segment
// 1 (1→2, on the packet's path) severed. The delta is pure wire time —
// the extra secondary-ring hops the wrap heal inserts.
func wrapPenalty() float64 {
	run := func(cutSeg int) float64 {
		k := sim.NewKernel()
		defer k.Close()
		n, err := scramnet.New(k, scramnet.DefaultConfig(4))
		if err != nil {
			panic(err)
		}
		if cutSeg >= 0 {
			n.CutLink(cutSeg)
		}
		k.Spawn("writer", func(p *sim.Proc) { n.NIC(0).WriteWord(p, 0, 7) })
		if err := k.Run(); err != nil {
			panic(err)
		}
		if n.NIC(2).Peek(0, 4)[0] != 7 {
			panic("E15: wrap-penalty write not delivered across the cut")
		}
		return float64(k.Now()) / float64(sim.Microsecond)
	}
	clean := run(-1)
	cut := run(1)
	return round3(cut - clean)
}

// partitionTolerance assembles the E15 row.
func partitionTolerance() PartitionTolerance {
	lcfg := liveness.DefaultConfig()
	return PartitionTolerance{
		Nodes:           5,
		SuspectWindowUs: round3(float64(lcfg.SuspectAfter) / float64(sim.Microsecond)),
		ConfirmWindowUs: round3(float64(lcfg.ConfirmAfter) / float64(sim.Microsecond)),
		FenceUs:         partitionFenceLatency(lcfg),
		HealResyncUs:    partitionHealLatency(lcfg),
		WrapPenaltyUs:   wrapPenalty(),
	}
}

// rndvOneWay runs one n-byte MPI send 0→1 on the paper's PIO-only
// SCRAMNet channel device under cfg and returns the receiver's
// completion time in µs: the one-way latency including the whole
// rendezvous handshake.
func rndvOneWay(n int, cfg mpi.Config) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, PIOOnlyBBP: true})
	if err != nil {
		panic(err)
	}
	w := mpi.NewWorld(c.Endpoints, cfg)
	var done sim.Time
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		switch cm.Rank() {
		case 0:
			if err := cm.Send(p, 1, 0, make([]byte, n)); err != nil {
				panic(err)
			}
		case 1:
			if _, err := cm.Recv(p, 0, 0, make([]byte, n)); err != nil {
				panic(err)
			}
			done = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	if s := w.Engine(0).Stats(); s.RndvSent != 1 {
		panic(fmt.Sprintf("E11 run was not a rendezvous: %+v", s))
	}
	if s := w.Engine(0).Stats(); cfg.RndvZeroCopy != (s.RndvZeroCopy == 1) {
		panic(fmt.Sprintf("E11 run took the wrong rendezvous path: %+v", s))
	}
	return float64(done) / float64(sim.Microsecond)
}

// rndvPipeline measures the E11 row at the gate's panel point.
func rndvPipeline() RndvPipeline {
	base := mpi.DefaultConfig()
	seq := rndvOneWay(RndvPipelineBytes, base)
	cfg := base
	cfg.RndvZeroCopy = true
	cfg.RndvPipelineDepth = RndvPipelineDepth
	pipe := rndvOneWay(RndvPipelineBytes, cfg)
	imp := 0.0
	if seq > 0 {
		imp = 100 * (1 - pipe/seq)
	}
	return RndvPipeline{
		Bytes:          RndvPipelineBytes,
		PipelineDepth:  RndvPipelineDepth,
		SequentialUs:   round3(seq),
		PipelinedUs:    round3(pipe),
		ImprovementPct: round3(imp),
	}
}

// streamRun executes one 16-rank sum allreduce over a patterned
// StreamAllreduceBytes vector and returns the worst-rank completion
// latency (µs past start), the cluster-wide spin.handler_cycles total,
// and whether any rank degraded to the tree. fast lets the Auto policy
// take the in-network path vs pinning the rank-side tree with
// WithAlgorithm; script/live optionally fault the run, with start
// delaying the collective past the scripted suspicion window.
func streamRun(fast bool, script *fault.Script, live *liveness.Config, start sim.Duration) (us float64, cycles int64, fellBack bool) {
	k := sim.NewKernel()
	defer k.Close()
	m := metrics.New()
	bbp := core.DefaultConfig()
	bbp.Stream.Enabled = true
	c, err := cluster.New(k, cluster.Options{
		Nodes: StreamAllreduceNodes, Net: cluster.SCRAMNet,
		BBP: &bbp, Metrics: m, Liveness: live, Faults: script,
	})
	if err != nil {
		panic(err)
	}
	w := mpi.NewWorld(c.Endpoints, mpi.DefaultConfig())
	var worst sim.Time
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if start > 0 {
			p.Delay(start)
		}
		me := cm.Rank()
		send := make([]byte, StreamAllreduceBytes)
		for i := 0; i+4 <= len(send); i += 4 {
			lane := uint32(me+1) * uint32(i/4+1)
			send[i], send[i+1], send[i+2], send[i+3] = byte(lane), byte(lane>>8), byte(lane>>16), byte(lane>>24)
		}
		recv := make([]byte, StreamAllreduceBytes)
		if fast {
			err = cm.Allreduce(p, mpi.SumU32, send, recv)
		} else {
			err = cm.Allreduce(p, mpi.SumU32, send, recv, mpi.WithAlgorithm(mpi.Tree))
		}
		if err != nil {
			panic(err)
		}
		for i := 0; i+4 <= len(recv); i += 4 {
			var want uint32
			for r := 0; r < StreamAllreduceNodes; r++ {
				want += uint32(r+1) * uint32(i/4+1)
			}
			got := uint32(recv[i]) | uint32(recv[i+1])<<8 | uint32(recv[i+2])<<16 | uint32(recv[i+3])<<24
			if got != want {
				panic(fmt.Sprintf("E12 rank %d lane %d: got %d want %d", me, i/4, got, want))
			}
		}
		if p.Now() > worst {
			worst = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	cyc, _ := m.Snapshot().Rollup().Counter("spin.handler_cycles", metrics.NodeGlobal)
	for i := 0; i < StreamAllreduceNodes; i++ {
		fellBack = fellBack || w.Engine(i).Stats().StreamFallbacks > 0
	}
	return round3(float64(worst.Sub(sim.Time(0).Add(start))) / float64(sim.Microsecond)), cyc, fellBack
}

// streamAllreduce measures the E12 row and its degradation scenario.
func streamAllreduce() StreamAllreduce {
	treeUs, _, _ := streamRun(false, nil, nil, 0)
	fastUs, cycles, fell := streamRun(true, nil, nil, 0)
	if fell {
		panic("E12 fast-path run fell back with all members alive")
	}
	if cycles <= 0 {
		panic("E12 fast-path run charged no handler cycles")
	}
	// Degradation: rank 11's card is bypassed at 1 ms and repaired at
	// 1.7 ms; the collective starts at 1.72 ms, inside the suspicion
	// window (suspected from 1.5 ms until its next heartbeat circulates
	// after the repair), so the fast path must decline and the tree —
	// with every member alive again — must complete correctly.
	live := liveness.DefaultConfig()
	script := &fault.Script{Seed: 112, Actions: []fault.Action{
		{At: sim.Time(0).Add(1 * sim.Millisecond), Kind: fault.NodeFail, Node: 11},
		{At: sim.Time(0).Add(1700 * sim.Microsecond), Kind: fault.NodeRepair, Node: 11},
	}}
	_, _, degraded := streamRun(true, script, &live, 1720*sim.Microsecond)
	imp := 0.0
	if treeUs > 0 {
		imp = 100 * (1 - fastUs/treeUs)
	}
	return StreamAllreduce{
		Nodes:           StreamAllreduceNodes,
		Bytes:           StreamAllreduceBytes,
		TreeUs:          treeUs,
		HandlerUs:       fastUs,
		ImprovementPct:  round3(imp),
		HandlerCycles:   cycles,
		SuspectFallback: degraded,
	}
}

// barrierRun executes one warmup and one measured barrier on a
// nodes-rank SCRAMNet cluster and returns the measured barrier's
// worst-rank latency plus its [start, end] window. nic selects the
// stream-enabled substrate with the NIC-combined round (asserted to
// never fall back) vs the paper's mcast-coordinator barrier on the
// PIO-only testbed. m/rec optionally instrument and trace the run.
func barrierRun(nodes int, nic bool, m *metrics.Registry, rec *trace.Recorder) (us float64, start, end sim.Time) {
	k := sim.NewKernel()
	defer k.Close()
	opts := cluster.Options{Nodes: nodes, Net: cluster.SCRAMNet, Metrics: m, Trace: rec}
	mcfg := mpi.DefaultConfig()
	algo := mpi.Mcast
	if nic {
		bbp := core.DefaultConfig()
		bbp.Stream.Enabled = true
		opts.BBP = &bbp
		algo = mpi.NICCombined
	} else {
		opts.PIOOnlyBBP = true
		mcfg.McastCollectives = true
	}
	c, err := cluster.New(k, opts)
	if err != nil {
		panic(err)
	}
	w := mpi.NewWorld(c.Endpoints, mcfg)
	var t0, t1 sim.Time
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if err := cm.Barrier(p, mpi.WithAlgorithm(algo)); err != nil {
			panic(err)
		}
		// Every rank re-enters the instant it exits the warmup, so the
		// last warmup exit is the measured barrier's simultaneous-entry
		// start — the same convention as bench.MPIBarrier.
		if p.Now() > t0 {
			t0 = p.Now()
		}
		if err := cm.Barrier(p, mpi.WithAlgorithm(algo)); err != nil {
			panic(err)
		}
		if p.Now() > t1 {
			t1 = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	if nic {
		for i := 0; i < nodes; i++ {
			if got := w.Engine(i).Stats().NICBarriers; got != 2 {
				panic(fmt.Sprintf("E14 rank %d completed %d of 2 barriers on the NIC path", i, got))
			}
		}
	}
	return round3(t1.Sub(t0).Microseconds()), t0, t1
}

// barrierPath runs the traced+instrumented 16-node barrier and reduces
// it to the E14 critical-path summary. Envelope spans that cover the
// whole window on every rank (the per-rank "barrier" span and the
// stream wrappers) are excluded so the attribution lands on the work
// spans (BBP post/drain, ring inject, spin handler, MPI eager).
func barrierPath(nic bool) BarrierPath {
	m := metrics.New()
	rec := trace.New()
	_, t0, t1 := barrierRun(BarrierHostNodes, nic, m, rec)
	var work []trace.SpanRec
	for _, s := range rec.Spans() {
		switch s.Name {
		case "barrier", "allreduce-stream", "stream-allreduce":
			continue
		}
		work = append(work, s)
	}
	shares := timeline.CriticalPath(work, t0, t1)
	if len(shares) == 0 {
		panic("E14 critical path: traced barrier produced no work spans")
	}
	window := t1.Sub(t0).Microseconds()
	snap := m.Snapshot()
	busy, _ := snap.Counter("pci.busy_ns", shares[0].Node)
	frac := 0.0
	// pci.busy_ns accumulates over the whole run (warmup + measured
	// barrier, both the same collective), so normalize by total virtual
	// time rather than the measured window.
	if t1 > 0 {
		frac = float64(busy) / float64(t1.Sub(0))
	}
	return BarrierPath{
		GatingRank:  shares[0].Node,
		PathUs:      round3(shares[0].Us),
		PathFrac:    round3(shares[0].Us / window),
		BusBusyFrac: round3(frac),
	}
}

// barrierScaling measures the E14 section.
func barrierScaling() BarrierScaling {
	hostUs, _, _ := barrierRun(BarrierHostNodes, false, nil, nil)
	var nic []BarrierPoint
	byNodes := map[int]float64{}
	for _, n := range BarrierNICNodes {
		us, _, _ := barrierRun(n, true, nil, nil)
		nic = append(nic, BarrierPoint{Nodes: n, Us: us})
		byNodes[n] = us
	}
	imp := 0.0
	if hostUs > 0 {
		imp = 100 * (1 - byNodes[BarrierHostNodes]/hostUs)
	}
	ratio := 0.0
	if byNodes[BarrierHostNodes] > 0 {
		ratio = byNodes[256] / byNodes[BarrierHostNodes]
	}
	return BarrierScaling{
		HostNodes:      BarrierHostNodes,
		HostUs:         hostUs,
		NIC:            nic,
		ImprovementPct: round3(imp),
		ScaleRatio:     round3(ratio),
		HostPath:       barrierPath(false),
		NICPath:        barrierPath(true),
	}
}

// busPoint measures one size of the bus-utilization sweep.
func busPoint(n int) BusPoint {
	pioUs, snap, elapsed := instrumented(n, pioOnly)
	dmaUs, _, _ := instrumented(n, dmaAlways)
	// Node 1 is the pong side: it consumes rank 0's messages.
	reads, _ := snap.Counter("pci.pio_read_words", 1)
	polls, _ := snap.Counter("bbp.polls", 1)
	busy, _ := snap.Counter("pci.busy_ns", 1)
	frac := 0.0
	if elapsed > 0 {
		frac = float64(busy) / float64(elapsed)
	}
	return BusPoint{
		Bytes:        n,
		PIOUs:        round3(pioUs),
		DMAUs:        round3(dmaUs),
		PIOReadWords: reads,
		Polls:        polls,
		BusBusyFrac:  round3(frac),
	}
}

// recvDMACrossover scans [lo,hi] for the first size at which the DMA
// receive path is strictly cheaper than PIO reads.
func recvDMACrossover(lo, hi, step int) int {
	if step <= 0 {
		return 0
	}
	pio := func(n int) float64 { us, _, _ := instrumented(n, pioOnly); return us }
	dma := func(n int) float64 { us, _, _ := instrumented(n, dmaAlways); return us }
	return bench.Crossover(pio, dma, lo, hi, step)
}

// Run executes the suite and assembles the report.
func Run(opts Options) Report {
	r := Report{
		Schema: Schema,
		Paper:  "Low-Latency Message Passing on Workstation Clusters using SCRAMNet",
	}
	r.Figures = append(r.Figures,
		Figure{Name: "fig1_small", Title: "SCRAMNet one-way latency, API vs MPI (small messages)", Series: roundSeries(bench.Fig1(opts.SmallSizes))},
		Figure{Name: "fig1", Title: "SCRAMNet one-way latency, API vs MPI", Series: roundSeries(bench.Fig1(opts.FullSizes))},
		Figure{Name: "fig2", Title: "One-way latency across networks, API layer", Series: roundSeries(bench.Fig2(opts.FullSizes))},
		Figure{Name: "fig3", Title: "One-way latency across networks, MPI layer", Series: roundSeries(bench.Fig3(opts.FullSizes))},
		Figure{Name: "fig4", Title: "SCRAMNet point-to-point vs 4-node broadcast, API layer", Series: roundSeries(bench.Fig4(opts.FullSizes))},
	)
	if opts.BarrierAndBcast {
		r.Figures = append(r.Figures,
			Figure{Name: "fig5", Title: "4-node MPI_Bcast, SCRAMNet vs Fast Ethernet", Series: roundSeries(bench.Fig5(opts.FullSizes))})
		for _, row := range bench.Fig6() {
			r.Barrier = append(r.Barrier, BarrierRow{Config: row.Config, Nodes: row.Nodes, Us: round3(row.Microus)})
		}
	}
	r.Throughput = Throughput{
		FixedMBs:    round3(bench.RingThroughput(false)),
		VariableMBs: round3(bench.RingThroughput(true)),
	}
	for _, n := range opts.BusSizes {
		r.BusSweep = append(r.BusSweep, busPoint(n))
	}
	r.RecvDMACrossoverBytes = recvDMACrossover(opts.CrossoverLo, opts.CrossoverHi, opts.CrossoverStep)
	r.PollAggregation = pollAggregation()
	r.AdaptiveRecvDMABytes = adaptiveConverged()
	r.FailoverLatency = failoverLatency()
	r.RndvPipeline = rndvPipeline()
	r.StreamAllreduce = streamAllreduce()
	r.BarrierScaling = barrierScaling()
	r.PartitionTolerance = partitionTolerance()
	_, snap, _ := instrumented(4, nil)
	r.Rollup = snap.Rollup()
	return r
}

// Marshal renders the report as the canonical BENCH_figures.json bytes
// (indented, trailing newline). Byte-identical across runs.
func Marshal(r Report) []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // no marshal-resistant types in Report
	}
	return append(b, '\n')
}
