package report

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scramnet"
)

// TestReportByteStable is the stability guarantee the `make bench` tier
// rests on: two full reduced runs must marshal to identical bytes.
func TestReportByteStable(t *testing.T) {
	a := Marshal(Run(ReducedOptions()))
	b := Marshal(Run(ReducedOptions()))
	if !bytes.Equal(a, b) {
		t.Fatal("two identical report runs produced different bytes")
	}
}

// TestReportSchemaAndShape pins the document structure a schema-7
// consumer relies on.
func TestReportSchemaAndShape(t *testing.T) {
	r := Run(ReducedOptions())
	if r.Schema != 7 {
		t.Fatalf("schema = %d, want 7", r.Schema)
	}
	wantFigs := []string{"fig1_small", "fig1", "fig2", "fig3", "fig4"}
	if len(r.Figures) != len(wantFigs) {
		t.Fatalf("got %d figures, want %d", len(r.Figures), len(wantFigs))
	}
	for i, f := range r.Figures {
		if f.Name != wantFigs[i] {
			t.Errorf("figure[%d] = %q, want %q", i, f.Name, wantFigs[i])
		}
		for _, s := range f.Series {
			if len(s.X) != len(s.Y) {
				t.Errorf("%s/%s: %d sizes but %d latencies", f.Name, s.Label, len(s.X), len(s.Y))
			}
		}
	}
	if len(r.BusSweep) != len(ReducedOptions().BusSizes) {
		t.Fatalf("bus sweep has %d points, want %d", len(r.BusSweep), len(ReducedOptions().BusSizes))
	}
	if len(r.Rollup.Counters) == 0 {
		t.Fatal("rollup snapshot is empty — cluster instrumentation did not fire")
	}
	// The marshaled document must round-trip.
	var back Report
	if err := json.Unmarshal(Marshal(r), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != r.Schema || back.RecvDMACrossoverBytes != r.RecvDMACrossoverBytes {
		t.Fatal("round-tripped report disagrees with original")
	}
}

// TestReportMatchesGoldenFigures pins the report's latencies to the
// same values the golden figure tests enforce: installing metrics must
// not move any figure (instruments never charge virtual time).
func TestReportMatchesGoldenFigures(t *testing.T) {
	r := Run(ReducedOptions())
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}
	api0 := r.Figures[0].Series[0].Y[0] // fig1_small, SCRAMNet API, 0 B
	if !within(api0, 6.88, 0.02) {
		t.Errorf("API 0-byte latency %v µs, want 6.88 ±2%%", api0)
	}
	mpi0 := r.Figures[0].Series[1].Y[0] // fig1_small, MPI, 0 B
	if !within(mpi0, 43.92, 0.02) {
		t.Errorf("MPI 0-byte latency %v µs, want 43.92 ±2%%", mpi0)
	}
	if !within(r.Throughput.FixedMBs, 6.61, 0.02) {
		t.Errorf("fixed-mode throughput %v MB/s, want 6.61 ±2%%", r.Throughput.FixedMBs)
	}
	if !within(r.Throughput.VariableMBs, 16.80, 0.02) {
		t.Errorf("variable-mode throughput %v MB/s, want 16.80 ±2%%", r.Throughput.VariableMBs)
	}
}

// TestBusSweepShowsPIOReadDominance verifies the §7 claim the sweep
// exists to quantify: on the PIO receive path the receiver's read-word
// traffic grows with message size, and for large messages the DMA path
// is strictly cheaper.
func TestBusSweepShowsPIOReadDominance(t *testing.T) {
	r := Run(ReducedOptions())
	small, large := r.BusSweep[0], r.BusSweep[len(r.BusSweep)-1]
	if large.PIOReadWords <= small.PIOReadWords {
		t.Errorf("PIO read words did not grow with size: %d -> %d", small.PIOReadWords, large.PIOReadWords)
	}
	if large.DMAUs >= large.PIOUs {
		t.Errorf("at %d B, DMA receive (%v µs) should beat PIO (%v µs)", large.Bytes, large.DMAUs, large.PIOUs)
	}
	if large.BusBusyFrac <= 0 || large.BusBusyFrac > 1 {
		t.Errorf("bus utilization %v outside (0,1]", large.BusBusyFrac)
	}
	if cross := r.RecvDMACrossoverBytes; cross <= 0 {
		t.Errorf("receive DMA crossover = %d, want a positive size", cross)
	}
}

// TestPollAggregationGate runs the E9 measurement and enforces the
// `make bench` regression gate in-tree: the burst-read poll path must
// cut the 0-byte incast sink's full-round-trip poll reads by at least
// MinPollReductionPct versus per-word polling, and the adaptive
// threshold must converge on the measured 20 B crossover (E7) on the
// default uncontended bus.
func TestPollAggregationGate(t *testing.T) {
	r := Report{
		PollAggregation:      pollAggregation(),
		AdaptiveRecvDMABytes: adaptiveConverged(),
		FailoverLatency:      failoverLatency(), // Check gates the whole report
		RndvPipeline:         rndvPipeline(),
		StreamAllreduce:      passingStream,
		BarrierScaling:       passingBarrier,
		PartitionTolerance:   passingPartition,
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	p := r.PollAggregation
	if p.BurstPollReads >= p.PerWordPollReads {
		t.Errorf("burst polling did not reduce poll reads: %d -> %d", p.PerWordPollReads, p.BurstPollReads)
	}
	if r.AdaptiveRecvDMABytes != 20 {
		t.Errorf("adaptive threshold converged on %d B, want the 20 B E7 crossover", r.AdaptiveRecvDMABytes)
	}
}

// TestFailoverLatencyGate runs the E10 measurement and enforces the
// `make bench` gate in-tree: a node death mid-Barrier must surface as a
// DeadPeerError within the detector's confirmation window (plus scan
// slack), and the hybrid router must reroute within the suspicion
// window (plus probe spacing) — both orders of magnitude below the
// ~51 ms retry-exhaustion path the failure detector replaces.
func TestFailoverLatencyGate(t *testing.T) {
	f := failoverLatency()
	r := Report{PollAggregation: pollAggregation(), FailoverLatency: f, RndvPipeline: rndvPipeline(), StreamAllreduce: passingStream, BarrierScaling: passingBarrier, PartitionTolerance: passingPartition}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if f.MPIErrorUs <= f.HybridRerouteUs {
		t.Errorf("MPI error (%v µs, confirmation-bound) should be slower than the hybrid reroute (%v µs, suspicion-bound)",
			f.MPIErrorUs, f.HybridRerouteUs)
	}
}

// TestRndvPipelineGate runs the E11 measurement and enforces the
// `make bench` gate in-tree: the receiver-posted-window pipelined
// rendezvous must beat the sequential path at the 64 KiB panel point
// by at least MinRndvImprovementPct. The ring wire bounds both paths,
// so the improvement must also stay below the sequential path's
// non-wire share — a larger number would mean the windowed path
// stopped paying for the wire at all, i.e. the model broke.
func TestRndvPipelineGate(t *testing.T) {
	z := rndvPipeline()
	r := Report{PollAggregation: pollAggregation(), FailoverLatency: failoverLatency(), RndvPipeline: z, StreamAllreduce: passingStream, BarrierScaling: passingBarrier, PartitionTolerance: passingPartition}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if z.PipelinedUs >= z.SequentialUs {
		t.Errorf("windowed path (%v µs) not faster than sequential (%v µs)", z.PipelinedUs, z.SequentialUs)
	}
	// 64 KiB at 615 ns per 4-byte ring packet is ~10.1 ms of wire that
	// no protocol can remove.
	wireUs := float64(z.Bytes/4) * 0.615
	if z.PipelinedUs < wireUs {
		t.Errorf("pipelined latency %v µs beat the %v µs wire bound — model broken", z.PipelinedUs, wireUs)
	}
}

// TestGoldenBenchJSON regenerates the full default report and compares
// it byte-for-byte against the checked-in BENCH_figures.json — the
// in-tree copy of what `make bench` enforces. Regenerate with:
//
//	go run ./cmd/figures -json BENCH_figures.json
func TestGoldenBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite in -short mode")
	}
	golden := filepath.Join("..", "..", "..", "BENCH_figures.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	got := Marshal(Run(DefaultOptions()))
	if !bytes.Equal(got, want) {
		t.Fatalf("BENCH_figures.json drifted from the checked-in golden.\n"+
			"If the change is intended, regenerate with: go run ./cmd/figures -json BENCH_figures.json\n"+
			"(got %d bytes, want %d)", len(got), len(want))
	}
}

// passingStream is a synthetic E12 row that satisfies Check(), for
// gate tests aimed at other subsystems; TestStreamAllreduceGate runs
// the real measurement.
var passingStream = StreamAllreduce{
	Nodes: StreamAllreduceNodes, Bytes: StreamAllreduceBytes,
	TreeUs: 700, HandlerUs: 220, ImprovementPct: 68,
	HandlerCycles: 540, SuspectFallback: true,
}

// passingBarrier is the E14 equivalent; TestBarrierScalingGate runs the
// real measurement.
var passingBarrier = BarrierScaling{
	HostNodes: BarrierHostNodes, HostUs: 137,
	NIC:            []BarrierPoint{{Nodes: 16, Us: 56}, {Nodes: 256, Us: 770}},
	ImprovementPct: 58, ScaleRatio: 13.6,
	HostPath: BarrierPath{GatingRank: 0, PathUs: 100, PathFrac: 0.8, BusBusyFrac: 0.5},
	NICPath:  BarrierPath{GatingRank: 0, PathUs: 30, PathFrac: 0.5, BusBusyFrac: 0.1},
}

// passingPartition is the E15 equivalent; TestPartitionToleranceGate
// runs the real measurement.
var passingPartition = PartitionTolerance{
	Nodes: 5, SuspectWindowUs: 500, ConfirmWindowUs: 2500,
	FenceUs: 605, HealResyncUs: 100, WrapPenaltyUs: 0.5,
}

// TestBarrierScalingGate runs the E14 measurement and enforces the
// `make bench` gate in-tree: the NIC-combined barrier must beat the
// 16-node mcast-coordinator baseline by MinBarrierImprovementPct, its
// 16→256 scaling must stay flatter than O(ranks), the host baseline's
// critical path must pin the rank-0 coordinator as the gating rank,
// and the combining pass must relieve that rank's bus.
func TestBarrierScalingGate(t *testing.T) {
	if testing.Short() {
		t.Skip("256-rank barrier sweep in -short mode")
	}
	b := barrierScaling()
	r := Report{
		PollAggregation:    pollAggregation(),
		FailoverLatency:    failoverLatency(),
		RndvPipeline:       rndvPipeline(),
		StreamAllreduce:    passingStream,
		BarrierScaling:     b,
		PartitionTolerance: passingPartition,
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	// One ring revolution of wire and hop delay bounds the NIC barrier
	// from below at every rank count.
	for _, pt := range b.NIC {
		cfg := scramnet.DefaultConfig(pt.Nodes)
		wireUs := float64(cfg.Nodes) * (float64(cfg.HopDelay) + 615.0) / 1000.0
		if pt.Us < wireUs {
			t.Errorf("%d-rank NIC barrier %v µs beat the %v µs one-revolution bound — model broken", pt.Nodes, pt.Us, wireUs)
		}
	}
	// The host coordinator serializes size-1 arrival drains plus the
	// release mcast; its critical-path share must carry a large part of
	// the window (measured ~0.44 — the rest is concurrent arrival sends
	// and wire), and the NIC round must cut the gating rank's serialized
	// work outright (measured ~60 µs → ~30 µs).
	if b.HostPath.PathFrac < 0.35 {
		t.Errorf("host barrier gating rank carries only %.2f of the window; coordinator serialization missing", b.HostPath.PathFrac)
	}
	if b.NICPath.PathUs >= b.HostPath.PathUs {
		t.Errorf("gating rank's critical-path share did not shrink: host %v µs → NIC %v µs", b.HostPath.PathUs, b.NICPath.PathUs)
	}
}

// TestStreamAllreduceGate runs the E12 measurement and enforces the
// `make bench` gate in-tree: the in-network handler allreduce must
// beat the rank-side tree at 16 nodes by at least
// MinStreamImprovementPct, must charge handler cycles in virtual time,
// and must degrade to the tree when a member is suspect.
func TestStreamAllreduceGate(t *testing.T) {
	s := streamAllreduce()
	r := Report{
		PollAggregation:    pollAggregation(),
		FailoverLatency:    failoverLatency(),
		RndvPipeline:       rndvPipeline(),
		StreamAllreduce:    s,
		BarrierScaling:     passingBarrier,
		PartitionTolerance: passingPartition,
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if s.HandlerUs >= s.TreeUs {
		t.Errorf("handler path (%v µs) not faster than the tree (%v µs)", s.HandlerUs, s.TreeUs)
	}
	// The vector still circulates the whole ring once: 16 nodes of wire
	// and hop delay bound the fast path from below.
	cfg := scramnet.DefaultConfig(StreamAllreduceNodes)
	wireUs := float64(cfg.Nodes) * (float64(cfg.HopDelay) + 615.0) / 1000.0
	if s.HandlerUs < wireUs {
		t.Errorf("handler latency %v µs beat the %v µs one-revolution bound — model broken", s.HandlerUs, wireUs)
	}
}

// TestPartitionToleranceGate runs the E15 measurement and enforces the
// `make bench` gate in-tree: the double cut must surface as a minority
// PartitionError within the confirmation window (plus scan slack) but
// not before suspicion can stabilize; the splice must reconverge to an
// all-alive resynced membership within a few detector periods; and the
// dual ring's single-cut wrap path must cost latency — some, but only
// wire time.
func TestPartitionToleranceGate(t *testing.T) {
	pt := partitionTolerance()
	r := Report{
		PollAggregation:    pollAggregation(),
		FailoverLatency:    failoverLatency(),
		RndvPipeline:       rndvPipeline(),
		StreamAllreduce:    passingStream,
		BarrierScaling:     passingBarrier,
		PartitionTolerance: pt,
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	// Fencing rides the partition declaration, not dead-peer
	// confirmation: it must land well before the per-peer confirmation
	// window would have expired.
	if pt.FenceUs >= pt.ConfirmWindowUs {
		t.Errorf("fence (%v µs) did not beat the confirmation window (%v µs); the declaration is not faster than mass death", pt.FenceUs, pt.ConfirmWindowUs)
	}
	// The wrap penalty is pure wire time: an integer number of
	// secondary-ring hop delays.
	hopUs := float64(scramnet.DefaultConfig(4).HopDelay) / 1000.0
	if rem := math.Mod(pt.WrapPenaltyUs, hopUs); rem > 1e-9 && hopUs-rem > 1e-9 {
		t.Errorf("wrap penalty %v µs is not a whole number of %v µs hop delays — the wrap path charges more than wire time", pt.WrapPenaltyUs, hopUs)
	}
}
