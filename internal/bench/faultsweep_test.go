package bench

import (
	"strings"
	"testing"
)

// quickSweepConfig is a reduced sweep so the test stays fast: the full
// five-rate, 30-message sweep belongs to cmd/figures.
func quickSweepConfig() FaultSweepConfig {
	cfg := DefaultFaultSweepConfig()
	cfg.Rates = []float64{0, 0.10, 0.20}
	cfg.Messages = 12
	return cfg
}

// TestFaultSweepDegradesGracefully is the experiment's contract: every
// swept rate delivers everything (the oracle inside FaultSweep panics
// otherwise), the fault-free point does no recovery work, and faulted
// points pay for their recovery with retransmissions and latency — never
// with lost messages.
func TestFaultSweepDegradesGracefully(t *testing.T) {
	pts := FaultSweep(quickSweepConfig())
	if len(pts) != 3 {
		t.Fatalf("points: %d", len(pts))
	}
	base := pts[0]
	if base.Rate != 0 || base.Retransmits != 0 || base.ChecksumDrops != 0 {
		t.Fatalf("baseline point did recovery work: %+v", base)
	}
	for _, p := range pts {
		if p.Delivered != p.Sent {
			t.Fatalf("rate %.2f lost messages: %+v", p.Rate, p)
		}
		if p.MeanLatency <= 0 || p.MaxLatency < p.MeanLatency {
			t.Fatalf("rate %.2f has implausible latencies: %+v", p.Rate, p)
		}
	}
	// Nonzero loss must show recovery work, and its worst-case latency
	// must sit above the fault-free worst case (a retransmission costs
	// at least one timeout).
	for _, p := range pts[1:] {
		if p.Retransmits == 0 {
			t.Errorf("rate %.2f crossed no-retransmit run: %+v", p.Rate, p)
		}
		if p.MaxLatency <= base.MaxLatency {
			t.Errorf("rate %.2f worst case %.1fµs not above baseline %.1fµs",
				p.Rate, p.MaxLatency, base.MaxLatency)
		}
	}
}

// TestFaultSweepIsDeterministic: same config, same seed, identical
// points — the scripted faults are part of the event order.
func TestFaultSweepIsDeterministic(t *testing.T) {
	cfg := quickSweepConfig()
	cfg.Rates = []float64{0.15}
	a, b := FaultSweep(cfg), FaultSweep(cfg)
	if a[0] != b[0] {
		t.Fatalf("replay diverged:\n  %+v\n  %+v", a[0], b[0])
	}
}

// TestFaultSweepBaselineMatchesCalibration: the rate-0 sweep point uses
// the same BBP code path as the golden figures (retry machinery is
// passive without faults), so its latency must sit in the same band as
// the calibrated one-way figure rather than drifting with the retry
// extension's bookkeeping.
func TestFaultSweepBaselineMatchesCalibration(t *testing.T) {
	cfg := quickSweepConfig()
	cfg.Rates = []float64{0}
	p := FaultSweep(cfg)[0]
	// The calibrated API one-way latency for 32 B is ~35µs; streaming
	// with gaps adds pipeline effects, so accept a generous band that
	// still catches an accidental extra timeout (hundreds of µs).
	if p.MeanLatency < 5 || p.MeanLatency > 150 {
		t.Fatalf("fault-free sweep latency %.1fµs outside calibration band", p.MeanLatency)
	}
}

func TestRenderFaultSweep(t *testing.T) {
	var sb strings.Builder
	RenderFaultSweep(&sb, []FaultPoint{
		{Rate: 0, MeanLatency: 35.2, MaxLatency: 41.0, Sent: 30, Delivered: 30},
		{Rate: 0.1, MeanLatency: 60.1, MaxLatency: 310.5, Sent: 30, Delivered: 30, Retransmits: 7},
	})
	out := sb.String()
	for _, want := range []string{"loss", "retransmits", "0%", "10%", "30/30"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
