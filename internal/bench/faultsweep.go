package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/xport/oracle"
)

// The fault-sweep experiment measures what the retry extension costs:
// one-way BBP latency as the ring's transient loss rate rises from the
// paper's fault-free baseline. Every point is a full oracle-checked run
// — a point only counts if every message arrived exactly once and in
// order — so the curve shows graceful degradation, not silent loss.

// FaultPoint is one measurement of the sweep.
type FaultPoint struct {
	// Rate is the packet-drop probability the ring sustained for the
	// whole run.
	Rate float64
	// MeanLatency is the average send-to-delivery latency in µs.
	MeanLatency float64
	// MaxLatency is the worst single delivery in µs (recovery tail).
	MaxLatency float64
	// Sent and Delivered count application messages; the oracle has
	// already proven Delivered == Sent with exactly-once semantics.
	Sent, Delivered int
	// Retransmits and ChecksumDrops expose the recovery work done.
	Retransmits   int64
	ChecksumDrops int64
}

// FaultSweepConfig parameterizes a sweep.
type FaultSweepConfig struct {
	// Rates are the drop probabilities to measure, typically starting
	// at 0 for the calibrated baseline.
	Rates []float64
	// Messages is the number of messages the sender streams per point.
	Messages int
	// Bytes is the payload size.
	Bytes int
	// Gap is the inter-send spacing; a nonzero gap keeps the sender's
	// 16 buffers from saturating so latency reflects recovery, not
	// queueing.
	Gap sim.Duration
	// Seed feeds the fault script so a sweep replays bit-identically.
	Seed uint64
	// Retry tunes the BBP retry extension for every point.
	Retry core.RetryConfig
}

// DefaultFaultSweepConfig returns the tuning used by the EXPERIMENTS.md
// fault-sweep figure: 30 × 32 B messages at each of five loss rates.
func DefaultFaultSweepConfig() FaultSweepConfig {
	return FaultSweepConfig{
		Rates:    []float64{0, 0.05, 0.10, 0.15, 0.20},
		Messages: 30,
		Bytes:    32,
		Gap:      25 * sim.Microsecond,
		Seed:     1999,
		Retry:    core.DefaultRetryConfig(),
	}
}

// FaultSweep runs one oracle-checked latency measurement per loss rate
// and returns the points in rate order. It panics if any run violates
// exactly-once in-order delivery or fails outright — a sweep point with
// lost messages would be a protocol bug, not a measurement.
func FaultSweep(cfg FaultSweepConfig) []FaultPoint {
	out := make([]FaultPoint, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		out = append(out, faultPoint(cfg, rate))
	}
	return out
}

// faultPoint measures a single sweep point: `Messages` timed sends from
// node 0 to node 1 on a 4-node SCRAMNet ring holding the given loss
// rate for the whole run, with the retry extension recovering drops.
func faultPoint(cfg FaultSweepConfig, rate float64) FaultPoint {
	k := sim.NewKernel()
	defer k.Close()

	var script *fault.Script
	if rate > 0 {
		script = &fault.Script{Seed: cfg.Seed, Actions: []fault.Action{
			{At: 0, Kind: fault.LossStart, Rate: rate},
		}}
	}
	bbp := core.DefaultConfig()
	bbp.Retry = cfg.Retry
	c, err := cluster.New(k, cluster.Options{
		Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script,
	})
	if err != nil {
		panic(err)
	}
	o := oracle.New()
	tx, rx := o.Wrap(c.Endpoints[0]), o.Wrap(c.Endpoints[1])

	sendAt := make([]sim.Time, cfg.Messages)
	recvAt := make([]sim.Time, cfg.Messages)
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < cfg.Messages; i++ {
			msg := make([]byte, cfg.Bytes)
			if cfg.Bytes > 0 {
				msg[0] = byte(i + 1)
			}
			sendAt[i] = p.Now()
			if err := tx.Send(p, 1, msg); err != nil {
				panic(err)
			}
			p.Delay(cfg.Gap)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, cfg.Bytes+1)
		for i := 0; i < cfg.Messages; i++ {
			if _, err := rx.Recv(p, 0, buf); err != nil {
				panic(err)
			}
			recvAt[i] = p.Now()
		}
	})
	if err := k.Run(); err != nil {
		panic(fmt.Sprintf("fault sweep rate=%.2f: %v", rate, err))
	}
	if st, err := o.Check(true); err != nil {
		panic(fmt.Sprintf("fault sweep rate=%.2f violated delivery contract: %v (%v)", rate, err, st))
	}

	pt := FaultPoint{Rate: rate, Sent: cfg.Messages, Delivered: cfg.Messages}
	// The oracle proved in-order exactly-once delivery, so recvAt[i]
	// pairs with sendAt[i].
	for i := 0; i < cfg.Messages; i++ {
		lat := recvAt[i].Sub(sendAt[i]).Microseconds()
		pt.MeanLatency += lat
		if lat > pt.MaxLatency {
			pt.MaxLatency = lat
		}
	}
	pt.MeanLatency /= float64(cfg.Messages)
	stats := c.Endpoints[0].(*core.Endpoint).Stats()
	pt.Retransmits = stats.Retransmits
	pt.ChecksumDrops = stats.ChecksumDrops
	return pt
}

// RenderFaultSweep writes the sweep as a fixed-width table.
func RenderFaultSweep(w io.Writer, pts []FaultPoint) {
	title := "Fault sweep: BBP one-way latency vs ring loss rate (retry enabled)"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%8s  %12s  %12s  %10s  %12s  %8s\n",
		"loss", "mean", "worst", "delivered", "retransmits", "ckdrops")
	for _, p := range pts {
		fmt.Fprintf(w, "%7.0f%%  %10.1fµs  %10.1fµs  %6d/%-3d  %12d  %8d\n",
			p.Rate*100, p.MeanLatency, p.MaxLatency, p.Delivered, p.Sent,
			p.Retransmits, p.ChecksumDrops)
	}
	fmt.Fprintln(w)
}
