package bench

import (
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestBandwidthShape(t *testing.T) {
	// §7: "SCRAMNet has low latency, but it does not have high
	// bandwidth" — streaming throughput must plateau at the fixed-mode
	// ring rate while the other networks keep scaling.
	scr := Throughput(cluster.SCRAMNet, 16384, 16)
	if scr < 5.8 || scr > 7.0 {
		t.Errorf("SCRAMNet streaming = %.2f MB/s, want ≈6.5 (ring-limited)", scr)
	}
	fe := Throughput(cluster.FastEthernet, 16384, 16)
	if fe < 9 || fe > 12.6 {
		t.Errorf("Fast Ethernet streaming = %.2f MB/s, want ≈11 (wire-limited)", fe)
	}
	myr := Throughput(cluster.MyrinetAPI, 16384, 16)
	if myr < 40 {
		t.Errorf("Myrinet API streaming = %.2f MB/s, want ≫ SCRAMNet", myr)
	}
	if !(scr < fe && fe < myr) {
		t.Errorf("bandwidth ordering broken: scr=%.1f fe=%.1f myr=%.1f", scr, fe, myr)
	}
}

func TestBandwidthGrowsWithMessageSize(t *testing.T) {
	small := Throughput(cluster.FastEthernet, 256, 16)
	large := Throughput(cluster.FastEthernet, 16384, 16)
	if large <= small {
		t.Errorf("per-message overheads should amortize: %.2f vs %.2f MB/s", small, large)
	}
}

func TestBarrierScalingShape(t *testing.T) {
	mcast, tree := BarrierScaling([]int{2, 8, 16})
	for i := range mcast.X {
		if mcast.Y[i] >= tree.Y[i] {
			t.Errorf("%d nodes: mcast barrier %.1fµs not below tree %.1fµs", mcast.X[i], mcast.Y[i], tree.Y[i])
		}
	}
	// Both grow with size, but the multicast release keeps the gap wide.
	if mcast.Y[2] <= mcast.Y[0] || tree.Y[2] <= tree.Y[0] {
		t.Error("barrier latency should grow with cluster size")
	}
	if ratio := tree.Y[2] / mcast.Y[2]; ratio < 2 {
		t.Errorf("16-node tree/mcast ratio %.1f, want ≥2", ratio)
	}
}

func TestBcastScalingNearFlat(t *testing.T) {
	// The single-step multicast should grow far slower with fanout than
	// the binomial tree (§3: "potentially, all the receivers could
	// receive the multicast message simultaneously").
	mcast, tree := BcastScaling([]int{2, 16}, 256)
	mGrowth := mcast.Y[1] / mcast.Y[0]
	tGrowth := tree.Y[1] / tree.Y[0]
	if mGrowth >= tGrowth {
		t.Errorf("mcast growth %.2fx not below tree growth %.2fx", mGrowth, tGrowth)
	}
	if mGrowth > 2.2 {
		t.Errorf("mcast bcast grew %.2fx from 2 to 16 nodes; should be near-flat", mGrowth)
	}
}

func TestHierarchyPingPongPenaltyBounded(t *testing.T) {
	flat := OneWayAPI(cluster.SCRAMNet, 4)
	hier := HierarchyPingPong(2, 2, 4)
	if hier <= flat {
		t.Errorf("hierarchy latency %.2fµs not above flat %.2fµs", hier, flat)
	}
	if hier > 2.5*flat {
		t.Errorf("hierarchy latency %.2fµs implausibly high (flat %.2fµs)", hier, flat)
	}
	// Deeper hierarchies cost more.
	deep := HierarchyPingPong(4, 4, 4)
	if deep <= hier {
		t.Errorf("4x4 hierarchy %.2fµs not above 2x2 %.2fµs", deep, hier)
	}
}

func TestIncastScalesWithSenders(t *testing.T) {
	one := Incast(cluster.SCRAMNet, 1, 256)
	many := Incast(cluster.SCRAMNet, 7, 256)
	if many <= one {
		t.Errorf("7-way incast %.1fµs not above 1-way %.1fµs", many, one)
	}
	// The receiver consumes sequentially: with 7 senders, completion
	// should take several single-message times but benefit from overlap
	// (all messages are already posted on the billboard).
	if many > 7*one {
		t.Errorf("7-way incast %.1fµs worse than fully serialized 7x%.1fµs", many, one)
	}
	feOne := Incast(cluster.FastEthernet, 1, 256)
	feMany := Incast(cluster.FastEthernet, 7, 256)
	if feMany <= feOne {
		t.Errorf("FE incast did not scale: %.1f vs %.1f", feMany, feOne)
	}
}

func TestFigureGeneratorsSmoke(t *testing.T) {
	// Every figure generator produces well-formed, positive series for
	// a minimal size axis (full axes are exercised by cmd/figures).
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	sizes := []int{0, 64}
	check := func(name string, ss []Series, wantSeries int) {
		t.Helper()
		if len(ss) != wantSeries {
			t.Fatalf("%s: %d series, want %d", name, len(ss), wantSeries)
		}
		for _, s := range ss {
			if len(s.X) != len(sizes) || len(s.Y) != len(sizes) {
				t.Fatalf("%s/%s: %d points", name, s.Label, len(s.Y))
			}
			for i, y := range s.Y {
				if y <= 0 {
					t.Fatalf("%s/%s: non-positive latency %f at %d B", name, s.Label, y, s.X[i])
				}
			}
			if s.Y[1] <= s.Y[0] {
				t.Errorf("%s/%s: latency not increasing with size", name, s.Label)
			}
		}
	}
	check("Fig1", Fig1(sizes), 2)
	check("Fig2", Fig2(sizes), 5)
	check("Fig3", Fig3(sizes), 3)
	check("Fig4", Fig4(sizes), 2)
	check("Fig5", Fig5(sizes), 3)
	rows := Fig6()
	if len(rows) != 8 {
		t.Fatalf("Fig6: %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Microus <= 0 {
			t.Fatalf("Fig6 %s/%d: %f µs", r.Config, r.Nodes, r.Microus)
		}
	}
	bw := FigBandwidth([]int{1024})
	if len(bw) != 4 || bw[0].Y[0] <= 0 {
		t.Fatalf("FigBandwidth malformed: %+v", bw)
	}
}

func TestRenderers(t *testing.T) {
	ss := []Series{{Label: "a", X: []int{0, 4}, Y: []float64{1.5, 2.5}}}
	var tbl, csv, scal strings.Builder
	RenderSeries(&tbl, "T", ss)
	if !strings.Contains(tbl.String(), "1.5µs") || !strings.Contains(tbl.String(), "bytes") {
		t.Errorf("table output malformed:\n%s", tbl.String())
	}
	RenderCSV(&csv, ss)
	want := "bytes,a\n0,1.50\n4,2.50\n"
	if csv.String() != want {
		t.Errorf("csv = %q, want %q", csv.String(), want)
	}
	RenderScaling(&scal, "S", ss)
	if !strings.Contains(scal.String(), "nodes") {
		t.Errorf("scaling output malformed:\n%s", scal.String())
	}
	var f6 strings.Builder
	RenderFig6(&f6, []Fig6Row{{"cfg", 3, 12.5}})
	if !strings.Contains(f6.String(), "12.5µs") {
		t.Errorf("fig6 output malformed:\n%s", f6.String())
	}
}
