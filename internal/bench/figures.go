package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
)

// Series is one curve of a figure: latency (µs) against message size.
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// Sizes used by the paper's small-message panels (0–64 B) and full
// panels (0–1000 B); Figure 5's broadcast panel extends to 1 KB.
var (
	SmallSizes = []int{0, 4, 8, 16, 24, 32, 48, 64}
	FullSizes  = []int{0, 4, 16, 64, 128, 256, 512, 768, 1000}
	WideSizes  = []int{0, 64, 256, 512, 1024, 2048, 4096, 8192}
)

// Fig1 regenerates Figure 1: SCRAMNet one-way latency, BillBoard API vs
// MPI layer.
func Fig1(sizes []int) []Series {
	api := Series{Label: "SCRAMNet API"}
	mpiS := Series{Label: "MPI"}
	for _, n := range sizes {
		api.X = append(api.X, n)
		api.Y = append(api.Y, OneWayAPI(cluster.SCRAMNet, n))
		mpiS.X = append(mpiS.X, n)
		mpiS.Y = append(mpiS.Y, OneWayMPI(cluster.SCRAMNet, n))
	}
	return []Series{api, mpiS}
}

// Fig2 regenerates Figure 2: API-layer one-way latency across networks.
func Fig2(sizes []int) []Series {
	nets := []struct {
		label string
		net   cluster.Network
	}{
		{"SCRAMNet (API)", cluster.SCRAMNet},
		{"Fast Ethernet (TCP/IP)", cluster.FastEthernet},
		{"Myrinet API", cluster.MyrinetAPI},
		{"Myrinet (TCP/IP)", cluster.MyrinetTCP},
		{"ATM (TCP/IP)", cluster.ATM},
	}
	var out []Series
	for _, nc := range nets {
		s := Series{Label: nc.label}
		for _, n := range sizes {
			s.X = append(s.X, n)
			s.Y = append(s.Y, OneWayAPI(nc.net, n))
		}
		out = append(out, s)
	}
	return out
}

// Fig3 regenerates Figure 3: MPI-layer one-way latency on SCRAMNet,
// Fast Ethernet and ATM.
func Fig3(sizes []int) []Series {
	nets := []struct {
		label string
		net   cluster.Network
	}{
		{"SCRAMNet", cluster.SCRAMNet},
		{"Fast Ethernet", cluster.FastEthernet},
		{"ATM", cluster.ATM},
	}
	var out []Series
	for _, nc := range nets {
		s := Series{Label: nc.label}
		for _, n := range sizes {
			s.X = append(s.X, n)
			s.Y = append(s.Y, OneWayMPI(nc.net, n))
		}
		out = append(out, s)
	}
	return out
}

// Fig4 regenerates Figure 4: BillBoard API point-to-point vs 4-node
// broadcast latency.
func Fig4(sizes []int) []Series {
	ptp := Series{Label: "Point-to-Point"}
	bc := Series{Label: "4-node Broadcast"}
	for _, n := range sizes {
		ptp.X = append(ptp.X, n)
		ptp.Y = append(ptp.Y, UnicastAPI(n))
		bc.X = append(bc.X, n)
		bc.Y = append(bc.Y, BroadcastAPI(4, n))
	}
	return []Series{ptp, bc}
}

// Fig5 regenerates Figure 5: 4-node MPI_Bcast on Fast Ethernet
// (point-to-point), SCRAMNet (point-to-point) and SCRAMNet (API
// multicast).
func Fig5(sizes []int) []Series {
	fe := Series{Label: "Fast Ethernet using point-to-point"}
	sp := Series{Label: "SCRAMNet using point-to-point"}
	sm := Series{Label: "SCRAMNet using API multicast"}
	for _, n := range sizes {
		fe.X = append(fe.X, n)
		fe.Y = append(fe.Y, MPIBcast(cluster.FastEthernet, BcastP2P, 4, n))
		sp.X = append(sp.X, n)
		sp.Y = append(sp.Y, MPIBcast(cluster.SCRAMNet, BcastP2P, 4, n))
		sm.X = append(sm.X, n)
		sm.Y = append(sm.Y, MPIBcast(cluster.SCRAMNet, BcastNative, 4, n))
	}
	return []Series{fe, sp, sm}
}

// Fig6Row is one barrier measurement of Figure 6.
type Fig6Row struct {
	Config  string
	Nodes   int
	Microus float64
}

// Fig6 regenerates Figure 6: MPI_Barrier latencies.
func Fig6() []Fig6Row {
	return []Fig6Row{
		{"SCRAMNet w/ API multicast", 3, MPIBarrier(cluster.SCRAMNet, BarrierNative, 3)},
		{"SCRAMNet w/ API multicast", 4, MPIBarrier(cluster.SCRAMNet, BarrierNative, 4)},
		{"SCRAMNet w/ point-to-point", 3, MPIBarrier(cluster.SCRAMNet, BarrierP2P, 3)},
		{"SCRAMNet w/ point-to-point", 4, MPIBarrier(cluster.SCRAMNet, BarrierP2P, 4)},
		{"Fast Ethernet", 3, MPIBarrier(cluster.FastEthernet, BarrierP2P, 3)},
		{"Fast Ethernet", 4, MPIBarrier(cluster.FastEthernet, BarrierP2P, 4)},
		{"ATM", 3, MPIBarrier(cluster.ATM, BarrierP2P, 3)},
		{"ATM", 4, MPIBarrier(cluster.ATM, BarrierP2P, 4)},
	}
}

// Crossover returns the first size (searching fine-grained between lo
// and hi) at which series b becomes cheaper than series a, or -1 if it
// never does. Used to verify the paper's crossover claims.
func Crossover(a, b func(n int) float64, lo, hi, step int) int {
	for n := lo; n <= hi; n += step {
		if b(n) < a(n) {
			return n
		}
	}
	return -1
}

// RenderSeries writes a fixed-width table of the series to w.
func RenderSeries(w io.Writer, title string, ss []Series) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%8s", "bytes")
	for _, s := range ss {
		fmt.Fprintf(w, "  %26s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range ss[0].X {
		fmt.Fprintf(w, "%8d", ss[0].X[i])
		for _, s := range ss {
			fmt.Fprintf(w, "  %23.1fµs", s.Y[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the series as CSV (size, one column per series).
func RenderCSV(w io.Writer, ss []Series) {
	fmt.Fprint(w, "bytes")
	for _, s := range ss {
		fmt.Fprintf(w, ",%s", strings.ReplaceAll(s.Label, ",", ";"))
	}
	fmt.Fprintln(w)
	for i := range ss[0].X {
		fmt.Fprintf(w, "%d", ss[0].X[i])
		for _, s := range ss {
			fmt.Fprintf(w, ",%.2f", s.Y[i])
		}
		fmt.Fprintln(w)
	}
}

// RenderFig6 writes the barrier table to w.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	title := "Figure 6: MPI_Barrier latency"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%-30s  %5s  %12s\n", "configuration", "nodes", "latency")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s  %5d  %10.1fµs\n", r.Config, r.Nodes, r.Microus)
	}
	fmt.Fprintln(w)
}
