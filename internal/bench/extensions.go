package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/scramnet"
	"repro/internal/sim"
)

// The measurements in this file go beyond the paper's six figures:
// streaming bandwidth, collective scaling with cluster size, and the
// §2 hierarchy-of-rings extension.

// Throughput measures sustained one-directional application bandwidth
// (MB/s) between two nodes: `count` back-to-back messages of n bytes,
// timed from first send to last receive.
func Throughput(net cluster.Network, n, count int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: net})
	if err != nil {
		panic(err)
	}
	eps := c.Endpoints
	var start, end sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		start = p.Now()
		msg := make([]byte, n)
		for i := 0; i < count; i++ {
			if err := eps[0].Send(p, 1, msg); err != nil {
				panic(err)
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, n+1)
		for i := 0; i < count; i++ {
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	sec := float64(end.Sub(start)) / 1e9
	return float64(n*count) / sec / 1e6
}

// BarrierScaling returns multicast- and tree-barrier latency for each
// cluster size (an extension: the paper stops at 4 nodes but argues
// scalability).
func BarrierScaling(sizes []int) (mcast, tree Series) {
	mcast = Series{Label: "SCRAMNet w/ API multicast"}
	tree = Series{Label: "SCRAMNet w/ point-to-point"}
	for _, n := range sizes {
		mcast.X = append(mcast.X, n)
		mcast.Y = append(mcast.Y, MPIBarrier(cluster.SCRAMNet, BarrierNative, n))
		tree.X = append(tree.X, n)
		tree.Y = append(tree.Y, MPIBarrier(cluster.SCRAMNet, BarrierP2P, n))
	}
	return mcast, tree
}

// BcastScaling returns multicast- and tree-broadcast latency against
// cluster size for an n-byte payload. The multicast curve should stay
// nearly flat — the single-step property of §3.
func BcastScaling(sizes []int, payload int) (mcast, tree Series) {
	mcast = Series{Label: "bbp_Mcast-based"}
	tree = Series{Label: "binomial tree"}
	for _, n := range sizes {
		mcast.X = append(mcast.X, n)
		mcast.Y = append(mcast.Y, MPIBcast(cluster.SCRAMNet, BcastNative, n, payload))
		tree.X = append(tree.X, n)
		tree.Y = append(tree.Y, MPIBcast(cluster.SCRAMNet, BcastP2P, n, payload))
	}
	return mcast, tree
}

// HierarchyPingPong measures BBP one-way latency between the two most
// distant hosts of a hierarchy with the given leaf layout, for an
// n-byte message.
func HierarchyPingPong(leaves, hostsPerLeaf, n int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	hcfg := scramnet.DefaultHierarchyConfig(leaves, hostsPerLeaf)
	c, err := cluster.New(k, cluster.Options{
		Nodes:     leaves * hostsPerLeaf,
		Net:       cluster.SCRAMNet,
		Hierarchy: &hcfg,
	})
	if err != nil {
		panic(err)
	}
	// First host of the first leaf to last host of the last leaf.
	return PingPong(k, c.Endpoints[0], c.Endpoints[leaves*hostsPerLeaf-1], n)
}

// FigBandwidth sweeps streaming throughput across networks (extension
// figure E2).
func FigBandwidth(sizes []int) []Series {
	nets := []struct {
		label string
		net   cluster.Network
	}{
		{"SCRAMNet (BBP)", cluster.SCRAMNet},
		{"Fast Ethernet (TCP)", cluster.FastEthernet},
		{"ATM (TCP)", cluster.ATM},
		{"Myrinet API", cluster.MyrinetAPI},
	}
	var out []Series
	for _, nc := range nets {
		s := Series{Label: nc.label}
		for _, n := range sizes {
			s.X = append(s.X, n)
			s.Y = append(s.Y, Throughput(nc.net, n, 32))
		}
		out = append(out, s)
	}
	return out
}

// MessageRate measures small-message throughput (messages/second) for
// one sender streaming `count` n-byte messages to one receiver.
func MessageRate(net cluster.Network, n, count int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: 2, Net: net})
	if err != nil {
		panic(err)
	}
	var end sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		msg := make([]byte, n)
		for i := 0; i < count; i++ {
			if err := c.Endpoints[0].Send(p, 1, msg); err != nil {
				panic(err)
			}
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, n+8)
		for i := 0; i < count; i++ {
			if _, err := c.Endpoints[1].Recv(p, 0, buf); err != nil {
				panic(err)
			}
		}
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return float64(count) / (float64(end) / 1e9)
}

// Incast measures hotspot contention: `senders` nodes each send one
// n-byte message to node 0 at the same instant; returned is the time
// until the last message is consumed. On SCRAMNet the bottleneck is
// the receiver's I/O bus and the shared ring; on Ethernet it is the
// receiver's downlink and the kernel's serialized protocol processing.
func Incast(net cluster.Network, senders, n int) float64 {
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: senders + 1, Net: net})
	if err != nil {
		panic(err)
	}
	eps := c.Endpoints
	var last sim.Time
	for s := 1; s <= senders; s++ {
		s := s
		k.Spawn(fmt.Sprintf("tx%d", s), func(p *sim.Proc) {
			if err := eps[s].Send(p, 0, make([]byte, n)); err != nil {
				panic(err)
			}
		})
	}
	k.Spawn("sink", func(p *sim.Proc) {
		buf := make([]byte, n+8)
		for i := 0; i < senders; i++ {
			if _, _, err := eps[0].RecvAny(p, buf); err != nil {
				panic(err)
			}
		}
		last = p.Now()
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return last.Sub(0).Microseconds()
}

// RenderScaling writes a latency-vs-nodes table.
func RenderScaling(w io.Writer, title string, ss []Series) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	fmt.Fprintf(w, "%8s", "nodes")
	for _, s := range ss {
		fmt.Fprintf(w, "  %26s", s.Label)
	}
	fmt.Fprintln(w)
	for i := range ss[0].X {
		fmt.Fprintf(w, "%8d", ss[0].X[i])
		for _, s := range ss {
			fmt.Fprintf(w, "  %23.1fµs", s.Y[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
