package bench

import (
	"bytes"
	"fmt"
	"testing"
)

// renderAllFigures renders a reduced-size version of every figure and
// table of cmd/figures into one byte stream.
func renderAllFigures() []byte {
	sizes := []int{0, 64} // reduced axis: stability, not coverage
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "raw fixed %.4f variable %.4f\n", RingThroughput(false), RingThroughput(true))
	RenderSeries(&buf, "Figure 1", Fig1(sizes))
	RenderSeries(&buf, "Figure 2", Fig2(sizes))
	RenderSeries(&buf, "Figure 3", Fig3(sizes))
	RenderSeries(&buf, "Figure 4", Fig4(sizes))
	RenderSeries(&buf, "Figure 5", Fig5(sizes))
	RenderFig6(&buf, Fig6())
	RenderCSV(&buf, Fig2(sizes))
	return buf.Bytes()
}

// TestFiguresByteStable regenerates Figures 1–6 (and the §2 raw table)
// twice and requires bit-identical output: the simulation owns every
// source of variation, so the rendered evaluation must be perfectly
// reproducible run to run — the repository's core reproduction claim.
func TestFiguresByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure render is slow")
	}
	a := renderAllFigures()
	b := renderAllFigures()
	if !bytes.Equal(a, b) {
		// Find the first diverging line for the failure message.
		al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := range al {
			if i >= len(bl) || !bytes.Equal(al[i], bl[i]) {
				t.Fatalf("figure output diverges at line %d:\n  run1: %s\n  run2: %s", i+1, al[i], bl[i])
			}
		}
		t.Fatal("figure output diverges in length only")
	}
	if len(a) < 500 {
		t.Fatalf("render suspiciously small (%d bytes):\n%s", len(a), a)
	}
}

// TestFaultSweepRenderByteStable extends the stability guarantee to the
// fault-sweep table, which additionally exercises the scripted fault
// generator at a fixed seed.
func TestFaultSweepRenderByteStable(t *testing.T) {
	render := func() []byte {
		cfg := DefaultFaultSweepConfig()
		cfg.Rates = []float64{0, 0.15}
		cfg.Messages = 10
		var buf bytes.Buffer
		RenderFaultSweep(&buf, FaultSweep(cfg))
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatalf("fault-sweep render not byte-stable:\n%s\n---\n%s", a, b)
	}
}
