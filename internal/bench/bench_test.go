package bench

import (
	"testing"

	"repro/internal/cluster"
)

// These tests pin the paper's headline claims — anchors, orderings and
// crossovers — so that a calibration regression in any substrate fails
// loudly. EXPERIMENTS.md records the quantitative residuals.

func TestAnchorsFig1(t *testing.T) {
	api0 := OneWayAPI(cluster.SCRAMNet, 0)
	api4 := OneWayAPI(cluster.SCRAMNet, 4)
	mpi0 := OneWayMPI(cluster.SCRAMNet, 0)
	mpi4 := OneWayMPI(cluster.SCRAMNet, 4)
	if api0 < 5.0 || api0 > 8.5 {
		t.Errorf("API 0-byte = %.1fµs, paper anchor 6.5µs", api0)
	}
	if api4 < 6.5 || api4 > 10.0 {
		t.Errorf("API 4-byte = %.1fµs, paper anchor 7.8µs", api4)
	}
	if mpi0 < 37 || mpi0 > 51 {
		t.Errorf("MPI 0-byte = %.1fµs, paper anchor 44µs", mpi0)
	}
	if mpi4 < 42 || mpi4 > 56 {
		t.Errorf("MPI 4-byte = %.1fµs, paper anchor 49µs", mpi4)
	}
	if api4 <= api0 || mpi4 <= mpi0 {
		t.Error("latency must grow with message size")
	}
}

func TestMPIAddsRoughlyConstantOverhead(t *testing.T) {
	// Paper, Fig 1: "the MPI layer only adds a constant overhead to the
	// API layer latency" (for the small-message panel).
	d0 := OneWayMPI(cluster.SCRAMNet, 0) - OneWayAPI(cluster.SCRAMNet, 0)
	d64 := OneWayMPI(cluster.SCRAMNet, 64) - OneWayAPI(cluster.SCRAMNet, 64)
	if d0 < 25 || d0 > 50 {
		t.Errorf("MPI-over-API overhead at 0B = %.1fµs, want ≈37", d0)
	}
	if diff := d64 - d0; diff < -18 || diff > 18 {
		t.Errorf("overhead drifts %.1fµs between 0B and 64B; should be ≈constant", diff)
	}
}

func TestFig2SmallMessageOrdering(t *testing.T) {
	// At 4 bytes the paper's API-layer ordering is SCRAMNet ≪ Myrinet
	// API < TCP/IP stacks.
	scr := OneWayAPI(cluster.SCRAMNet, 4)
	myr := OneWayAPI(cluster.MyrinetAPI, 4)
	myrT := OneWayAPI(cluster.MyrinetTCP, 4)
	fe := OneWayAPI(cluster.FastEthernet, 4)
	atm := OneWayAPI(cluster.ATM, 4)
	if !(scr < myr && myr < myrT && myrT < fe && fe < atm) {
		t.Errorf("4-byte ordering broken: scr=%.1f myrAPI=%.1f myrTCP=%.1f fe=%.1f atm=%.1f",
			scr, myr, myrT, fe, atm)
	}
}

func TestFig2Crossovers(t *testing.T) {
	scr := func(n int) float64 { return OneWayAPI(cluster.SCRAMNet, n) }
	check := func(name string, other func(int) float64, winAt, loseAt int) {
		t.Helper()
		if s, o := scr(winAt), other(winAt); s >= o {
			t.Errorf("SCRAMNet should beat %s at %dB: %.1f vs %.1f", name, winAt, s, o)
		}
		if s, o := scr(loseAt), other(loseAt); s <= o {
			t.Errorf("%s should beat SCRAMNet at %dB: %.1f vs %.1f", name, loseAt, o, s)
		}
	}
	// Paper: SCRAMNet wins vs Fast Ethernet up to several thousand
	// bytes, vs ATM below ~1000B, vs Myrinet API below ~500B.
	check("Fast Ethernet", func(n int) float64 { return OneWayAPI(cluster.FastEthernet, n) }, 2048, 16384)
	check("ATM", func(n int) float64 { return OneWayAPI(cluster.ATM, n) }, 1024, 4096)
	check("Myrinet API", func(n int) float64 { return OneWayAPI(cluster.MyrinetAPI, n) }, 256, 1024)
}

func TestFig3Crossovers(t *testing.T) {
	scr := func(n int) float64 { return OneWayMPI(cluster.SCRAMNet, n) }
	fe := func(n int) float64 { return OneWayMPI(cluster.FastEthernet, n) }
	atm := func(n int) float64 { return OneWayMPI(cluster.ATM, n) }
	// SCRAMNet wins for small messages at the MPI layer too...
	if scr(256) >= fe(256) || scr(256) >= atm(256) {
		t.Errorf("SCRAMNet MPI should win at 256B: scr=%.1f fe=%.1f atm=%.1f", scr(256), fe(256), atm(256))
	}
	// ...and each TCP network has a threshold beyond which it wins
	// (paper: ≈512B FE, ≈580B ATM; measured larger — see EXPERIMENTS.md).
	if scr(4096) <= fe(4096) {
		t.Errorf("Fast Ethernet MPI should win at 4KB: scr=%.1f fe=%.1f", scr(4096), fe(4096))
	}
	if scr(2048) <= atm(2048) {
		t.Errorf("ATM MPI should win at 2KB: scr=%.1f atm=%.1f", scr(2048), atm(2048))
	}
}

func TestFig4BroadcastNearUnicast(t *testing.T) {
	// Paper: a 4-node broadcast adds very little over point-to-point;
	// short broadcast ≈ 10.1µs.
	b0, u0 := BroadcastAPI(4, 0), UnicastAPI(0)
	if b0-u0 > 6 {
		t.Errorf("0-byte broadcast %.1fµs adds %.1fµs over unicast %.1fµs; want small", b0, b0-u0, u0)
	}
	if b0 < 7 || b0 > 14 {
		t.Errorf("0-byte 4-node broadcast = %.1fµs, paper anchor ≈10.1µs", b0)
	}
	b1k, u1k := BroadcastAPI(4, 1000), UnicastAPI(1000)
	if (b1k-u1k)/u1k > 0.15 {
		t.Errorf("1000-byte broadcast overhead %.0f%% too high (b=%.1f u=%.1f)", 100*(b1k-u1k)/u1k, b1k, u1k)
	}
}

func TestFig5BcastOrdering(t *testing.T) {
	for _, n := range []int{0, 256, 1000} {
		fe := MPIBcast(cluster.FastEthernet, BcastP2P, 4, n)
		sp := MPIBcast(cluster.SCRAMNet, BcastP2P, 4, n)
		sm := MPIBcast(cluster.SCRAMNet, BcastNative, 4, n)
		// Paper: the multicast implementation is much faster than the
		// point-to-point one and beats Fast Ethernet up to 1 KB.
		if !(sm < sp && sp < fe) {
			t.Errorf("%dB bcast ordering broken: mcast=%.1f p2p=%.1f fe=%.1f", n, sm, sp, fe)
		}
	}
	// The multicast advantage over the tree grows with fanout work:
	// at 1 KB it should be at least ~1.5x.
	sp := MPIBcast(cluster.SCRAMNet, BcastP2P, 4, 1000)
	sm := MPIBcast(cluster.SCRAMNet, BcastNative, 4, 1000)
	if sp/sm < 1.5 {
		t.Errorf("mcast speedup at 1KB only %.2fx", sp/sm)
	}
}

func TestFig6BarrierOrderingAndAnchors(t *testing.T) {
	smc3 := MPIBarrier(cluster.SCRAMNet, BarrierNative, 3)
	smc4 := MPIBarrier(cluster.SCRAMNet, BarrierNative, 4)
	sp3 := MPIBarrier(cluster.SCRAMNet, BarrierP2P, 3)
	sp4 := MPIBarrier(cluster.SCRAMNet, BarrierP2P, 4)
	fe3 := MPIBarrier(cluster.FastEthernet, BarrierP2P, 3)
	atm3 := MPIBarrier(cluster.ATM, BarrierP2P, 3)
	// Paper anchors: 37µs (mcast), 179µs (SCRAMNet p2p), 554µs (FE),
	// 660µs (ATM) for small clusters; ordering must hold exactly.
	if !(smc3 < sp3 && sp3 < fe3 && fe3 < atm3) {
		t.Errorf("barrier ordering broken: mcast=%.1f p2p=%.1f fe=%.1f atm=%.1f", smc3, sp3, fe3, atm3)
	}
	if smc4 < 20 || smc4 > 55 {
		t.Errorf("4-node mcast barrier = %.1fµs, paper anchor 37µs", smc4)
	}
	if sp4 < 120 || sp4 > 260 {
		t.Errorf("4-node p2p barrier = %.1fµs, paper anchor ≈179µs", sp4)
	}
	if ratio := fe3 / sp3; ratio < 2 || ratio > 5 {
		t.Errorf("FE/SCRAMNet 3-node barrier ratio %.1f, paper ≈3.1", ratio)
	}
	if smc3 >= smc4 {
		t.Errorf("mcast barrier should grow with nodes: 3-node %.1f vs 4-node %.1f", smc3, smc4)
	}
}

func TestRawThroughputTable(t *testing.T) {
	fixed, variable := RingThroughput(false), RingThroughput(true)
	if fixed < 5.8 || fixed > 7.2 {
		t.Errorf("fixed mode %.2f MB/s, paper 6.5", fixed)
	}
	if variable < 15.0 || variable > 18.0 {
		t.Errorf("variable mode %.2f MB/s, paper 16.7", variable)
	}
}

func TestCrossoverHelper(t *testing.T) {
	a := func(n int) float64 { return 10 + float64(n) }
	b := func(n int) float64 { return 100 + 0.5*float64(n) }
	// b < a strictly first holds at n=190 (they tie at 180).
	if x := Crossover(a, b, 0, 1000, 10); x != 190 {
		t.Errorf("crossover = %d, want 190", x)
	}
	if x := Crossover(b, a, 0, 100, 10); x != 0 {
		t.Errorf("crossover = %d, want 0 (a cheaper from the start)", x)
	}
	if x := Crossover(a, func(n int) float64 { return 1e9 }, 0, 100, 10); x != -1 {
		t.Errorf("crossover = %d, want -1", x)
	}
}

func TestDeterministicMeasurements(t *testing.T) {
	if a, b := OneWayAPI(cluster.SCRAMNet, 100), OneWayAPI(cluster.SCRAMNet, 100); a != b {
		t.Errorf("measurement not reproducible: %.3f vs %.3f", a, b)
	}
	if a, b := MPIBarrier(cluster.FastEthernet, BarrierP2P, 4), MPIBarrier(cluster.FastEthernet, BarrierP2P, 4); a != b {
		t.Errorf("barrier not reproducible: %.3f vs %.3f", a, b)
	}
}
