// Package ethernet models a switched full-duplex Fast Ethernet
// (100BASE-TX) LAN of the paper's era: per-host links into one
// store-and-forward switch, 1500-byte MTU, and 38 bytes of on-wire
// overhead per frame (preamble 8 + MAC header 14 + FCS 4 + inter-frame
// gap 12). At 100 Mb/s the wire moves one byte every 80 ns.
package ethernet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xport"
)

// Config describes the LAN.
type Config struct {
	Nodes int
	// MTU is the frame payload limit (1500 for Ethernet).
	MTU int
	// PerByte is the wire serialization time per byte (80 ns at
	// 100 Mb/s).
	PerByte sim.Duration
	// FrameOverhead is the extra on-wire bytes per frame.
	FrameOverhead int
	// MinFrame pads small frames to Ethernet's 64-byte minimum.
	MinFrame int
	// PropDelay is cable propagation per link.
	PropDelay sim.Duration
	// SwitchLatency is the store-and-forward switch's processing time
	// per frame, excluding the output serialization.
	SwitchLatency sim.Duration
}

// DefaultConfig returns a 100 Mb/s switched LAN.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:         nodes,
		MTU:           1500,
		PerByte:       80 * sim.Nanosecond,
		FrameOverhead: 38,
		MinFrame:      64,
		PropDelay:     500 * sim.Nanosecond,
		SwitchLatency: 12 * sim.Microsecond,
	}
}

// Network is the LAN; it implements xport.Fabric.
type Network struct {
	k        *sim.Kernel
	cfg      Config
	up, down []*sim.Server // per-host uplink (host→switch) and downlink
	handlers []func(src int, frame []byte)

	frames int64
	bytes  int64
}

// New builds the LAN on kernel k.
func New(k *sim.Kernel, cfg Config) (*Network, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("ethernet: need at least 2 nodes, got %d", cfg.Nodes)
	}
	n := &Network{k: k, cfg: cfg, handlers: make([]func(int, []byte), cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		n.up = append(n.up, sim.NewServer(k))
		n.down = append(n.down, sim.NewServer(k))
	}
	return n, nil
}

// Nodes returns the host count.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// MTU returns the frame payload limit.
func (n *Network) MTU() int { return n.cfg.MTU }

// SetHandler installs node's frame delivery callback.
func (n *Network) SetHandler(node int, fn func(src int, frame []byte)) {
	n.handlers[node] = fn
}

// wireTime is the serialization time of a frame carrying n payload
// bytes, including framing overhead and minimum-frame padding.
func (n *Network) wireTime(payload int) sim.Duration {
	onWire := payload + n.cfg.FrameOverhead
	// The 64-byte minimum frame counts MAC header and FCS but not
	// preamble and IFG (20 bytes), so the minimum on-wire size is
	// MinFrame+20.
	if min := n.cfg.MinFrame + 20; onWire < min {
		onWire = min
	}
	return sim.Duration(onWire) * n.cfg.PerByte
}

// Transmit sends one frame src→switch→dst, store-and-forward.
func (n *Network) Transmit(src, dst int, frame []byte) {
	if len(frame) > n.cfg.MTU {
		panic(fmt.Sprintf("ethernet: %d-byte frame exceeds MTU %d", len(frame), n.cfg.MTU))
	}
	n.frames++
	n.bytes += int64(len(frame))
	wire := n.wireTime(len(frame))
	cfg := n.cfg
	n.up[src].Serve(wire, func() {
		// Frame fully at the switch after propagation; forward after the
		// switch's processing latency, re-serializing on the output port.
		n.k.AfterKind(cfg.PropDelay+cfg.SwitchLatency, "fabric", func() {
			n.down[dst].Serve(wire, func() {
				n.k.AfterKind(cfg.PropDelay, "fabric", func() {
					if h := n.handlers[dst]; h != nil {
						h(src, frame)
					}
				})
			})
		})
	})
}

// Stats returns frames and payload bytes transmitted.
func (n *Network) Stats() (frames, bytes int64) { return n.frames, n.bytes }

var _ xport.Fabric = (*Network)(nil)
