package ethernet

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestFrameDelivery(t *testing.T) {
	k := sim.NewKernel()
	n, err := New(k, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var from int
	n.SetHandler(2, func(src int, frame []byte) { from, got = src, frame })
	k.At(0, func() { n.Transmit(0, 2, []byte("frame-payload")) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if from != 0 || !bytes.Equal(got, []byte("frame-payload")) {
		t.Fatalf("got src=%d payload=%q", from, got)
	}
}

func TestStoreAndForwardLatency(t *testing.T) {
	// One 1500-byte frame: two serializations (in and out of the
	// switch) plus switch latency and two propagation delays.
	k := sim.NewKernel()
	cfg := DefaultConfig(2)
	n, _ := New(k, cfg)
	var arrival sim.Time
	n.SetHandler(1, func(src int, frame []byte) { arrival = k.Now() })
	k.At(0, func() { n.Transmit(0, 1, make([]byte, 1500)) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	wire := sim.Duration(1500+cfg.FrameOverhead) * cfg.PerByte
	want := sim.Time(2*wire + 2*cfg.PropDelay + cfg.SwitchLatency)
	if arrival != want {
		t.Fatalf("arrival = %d, want %d", arrival, want)
	}
}

func TestMinimumFramePadding(t *testing.T) {
	// Frames of 1 and 46 payload bytes both pad to the 64-byte minimum
	// frame, so their one-way latencies are identical.
	latency := func(payload int) sim.Duration {
		k := sim.NewKernel()
		n, _ := New(k, DefaultConfig(2))
		var arrival sim.Time
		n.SetHandler(1, func(src int, frame []byte) { arrival = k.Now() })
		k.At(0, func() { n.Transmit(0, 1, make([]byte, payload)) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return arrival.Sub(0)
	}
	l1, l46, l100 := latency(1), latency(46), latency(100)
	if l1 != l46 {
		t.Fatalf("1-byte frame latency %d != 46-byte %d (both should pad to minimum)", l1, l46)
	}
	if l100 <= l46 {
		t.Fatalf("100-byte frame latency %d not above the padded minimum %d", l100, l46)
	}
}

func TestFIFOPerPair(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(2))
	var order []int
	n.SetHandler(1, func(src int, frame []byte) { order = append(order, int(frame[0])) })
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			n.Transmit(0, 1, []byte{byte(i)})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("frames reordered: %v", order)
		}
	}
}

func TestUplinkContentionSerializes(t *testing.T) {
	// Two frames from the same host must serialize on its uplink; two
	// frames from different hosts to different hosts must not.
	sameHost := measurePair(t, 0, 0)
	diffHost := measurePair(t, 0, 1)
	if sameHost <= diffHost {
		t.Fatalf("same-host last arrival %d should exceed different-host %d", sameHost, diffHost)
	}
}

func measurePair(t *testing.T, srcA, srcB int) sim.Time {
	t.Helper()
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(4))
	var last sim.Time
	h := func(src int, frame []byte) { last = k.Now() }
	n.SetHandler(2, h)
	n.SetHandler(3, h)
	k.At(0, func() {
		n.Transmit(srcA, 2, make([]byte, 1500))
		n.Transmit(srcB, 3, make([]byte, 1500))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return last
}

func TestOversizeFramePanics(t *testing.T) {
	k := sim.NewKernel()
	n, _ := New(k, DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for frame above MTU")
		}
	}()
	n.Transmit(0, 1, make([]byte, 1501))
}

func TestTooFewNodes(t *testing.T) {
	if _, err := New(sim.NewKernel(), DefaultConfig(1)); err == nil {
		t.Fatal("1-node LAN accepted")
	}
}
