package metrics

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// runStreamed drives a tiny deterministic workload — a counter bumped
// every 30 µs for 10 ticks — under a 100 µs snapshot stream and returns
// the stream's JSONL bytes.
func runStreamed(t *testing.T) ([]StreamPoint, []byte) {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	reg := New()
	s := NewStream(k, reg, 100*sim.Microsecond)
	c := reg.Counter("work.ticks", 0)
	k.Spawn("worker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Delay(30 * sim.Microsecond)
			c.Inc()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return s.Points(), buf.Bytes()
}

func TestStreamCadenceAndTermination(t *testing.T) {
	points, _ := runStreamed(t)
	// Baseline at t=0 plus one point per elapsed 100 µs; the workload
	// runs 300 µs, and the stream must stop itself once the kernel has
	// no other pending work (otherwise Run would never return — getting
	// here at all is half the assertion).
	if len(points) < 3 {
		t.Fatalf("stream captured %d points, want at least baseline + 2", len(points))
	}
	if points[0].T != 0 {
		t.Fatalf("first point at t=%d, want a baseline at 0", points[0].T)
	}
	for i := 1; i < len(points); i++ {
		if d := points[i].T - points[i-1].T; d != int64(100*sim.Microsecond) {
			t.Fatalf("points %d→%d are %dns apart, want the 100µs cadence", i-1, i, d)
		}
	}
	// The captured values must be the registry's state at each tick:
	// 100µs → 3 ticks of 30µs, 200µs → 6, 300µs → 10 (tick 10 lands at
	// 300µs, and the worker's Inc at a time runs before the timer
	// callback scheduled earlier only if the kernel orders it so — what
	// matters for determinism is that it is always the same; pin it).
	v, ok := points[1].Snap.Counter("work.ticks", 0)
	if !ok || v != 3 {
		t.Fatalf("snapshot at 100µs has work.ticks=%d (ok=%v), want 3", v, ok)
	}
}

func TestStreamJSONLDeterminism(t *testing.T) {
	_, a := runStreamed(t)
	_, b := runStreamed(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different JSONL:\n%s\nvs\n%s", a, b)
	}
	if len(a) == 0 || a[len(a)-1] != '\n' {
		t.Fatal("JSONL must be newline-terminated and non-empty")
	}
}

func TestStreamNilSafety(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	if s := NewStream(nil, New(), sim.Microsecond); s != nil {
		t.Fatal("NewStream without a kernel must return nil")
	}
	if s := NewStream(k, nil, sim.Microsecond); s != nil {
		t.Fatal("NewStream without a registry must return nil")
	}
	if s := NewStream(k, New(), 0); s != nil {
		t.Fatal("NewStream with a non-positive period must return nil")
	}
	var s *Stream
	if s.Points() != nil {
		t.Fatal("nil stream Points() must be nil")
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	s.Stop()
}

func TestStreamStop(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	reg := New()
	s := NewStream(k, reg, 50*sim.Microsecond)
	k.Spawn("w", func(p *sim.Proc) {
		p.Delay(120 * sim.Microsecond)
		s.Stop()
		p.Delay(200 * sim.Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Baseline + the 50µs and 100µs points; nothing after Stop.
	if n := len(s.Points()); n != 3 {
		t.Fatalf("stopped stream kept %d points, want 3", n)
	}
}
