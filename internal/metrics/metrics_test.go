package metrics

import (
	"bytes"
	"testing"
)

func TestNilRegistryIsSafeAndFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x", 0)
	g := r.Gauge("x", 0)
	h := r.Histogram("x", 0)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	// Every method must be a no-op on nil, not a panic.
	c.Inc()
	c.Add(5)
	g.Set(9)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram statistics must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var buf bytes.Buffer
	s.Render(&buf) // must not panic
}

// TestNilInstrumentsAllocateNothing pins the disabled-metrics cost on a
// hot path: no allocation per operation.
func TestNilInstrumentsAllocateNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("nil instrument ops allocated %.1f times per run, want 0", allocs)
	}
}

// TestLiveInstrumentsAllocateNothing pins the enabled cost after
// creation: updates never allocate either.
func TestLiveInstrumentsAllocateNothing(t *testing.T) {
	r := New()
	c := r.Counter("c", 0)
	g := r.Gauge("g", 0)
	h := r.Histogram("h", 0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(9)
		h.Observe(17)
	})
	if allocs != 0 {
		t.Fatalf("live instrument updates allocated %.1f times per run, want 0", allocs)
	}
}

func TestBucketLayout(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 46, 47}, {1 << 50, 47}, {1<<62 + 1, 47},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every positive value must land inside its bucket's bounds.
	for _, v := range []int64{1, 2, 5, 100, 4096, 1 << 40} {
		b := bucketOf(v)
		lo, hi := BucketBounds(b)
		if v < lo || (hi >= 0 && v >= hi) {
			t.Errorf("value %d outside bucket %d bounds [%d,%d)", v, b, lo, hi)
		}
	}
}

func TestHistogramStatistics(t *testing.T) {
	r := New()
	h := r.Histogram("lat", 2)
	for _, v := range []int64{100, 200, 400, 800} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 1500 || h.Min() != 100 || h.Max() != 800 {
		t.Fatalf("stats: count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if m := h.Mean(); m != 375 {
		t.Fatalf("mean = %v, want 375", m)
	}
	if q := h.Quantile(1.0); q != 800 {
		t.Fatalf("q100 = %d, want the max 800", q)
	}
	if q0 := h.Quantile(0); q0 <= 0 {
		t.Fatalf("q0 = %d, want a positive bucket bound", q0)
	}
	// Quantile must be monotone in q.
	prev := int64(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

// simulate is a stand-in workload: a fixed sequence of instrument
// updates, as a deterministic simulation run would produce.
func simulate(r *Registry) {
	for node := 0; node < 3; node++ {
		c := r.Counter("ring.packets_injected", node)
		h := r.Histogram("bbp.msg_size_bytes", node)
		g := r.Gauge("mpi.unexpected_depth", node)
		for i := 0; i < 50; i++ {
			c.Inc()
			h.Observe(int64(i * i))
			g.Set(int64(i % 7))
		}
	}
	r.Counter("fault.injected_events", NodeGlobal).Add(3)
}

// TestSnapshotDeterminism is the two-identical-runs guarantee: same
// workload, two registries, byte-identical renderings.
func TestSnapshotDeterminism(t *testing.T) {
	r1, r2 := New(), New()
	simulate(r1)
	simulate(r2)
	var b1, b2 bytes.Buffer
	r1.Snapshot().Render(&b1)
	r2.Snapshot().Render(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two identical runs rendered differently:\n%s\n---\n%s", b1.String(), b2.String())
	}
	// And rendering the same registry twice must also be stable (no
	// map-order leakage inside Snapshot).
	var b3 bytes.Buffer
	r1.Snapshot().Render(&b3)
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatal("re-snapshotting the same registry rendered differently")
	}
}

func TestSnapshotLookupAndSortOrder(t *testing.T) {
	r := New()
	r.Counter("b", 1).Add(10)
	r.Counter("a", 2).Add(20)
	r.Counter("a", 0).Add(30)
	s := r.Snapshot()
	wantOrder := []struct {
		name string
		node int
	}{{"a", 0}, {"a", 2}, {"b", 1}}
	for i, w := range wantOrder {
		if s.Counters[i].Name != w.name || s.Counters[i].Node != w.node {
			t.Fatalf("sort order[%d] = %s/%d, want %s/%d", i, s.Counters[i].Name, s.Counters[i].Node, w.name, w.node)
		}
	}
	if v, ok := s.Counter("a", 2); !ok || v != 20 {
		t.Fatalf("lookup a/2 = %d,%v", v, ok)
	}
	if _, ok := s.Counter("missing", 0); ok {
		t.Fatal("lookup of absent counter reported ok")
	}
}

func TestRollup(t *testing.T) {
	r := New()
	r.Counter("c", 0).Add(5)
	r.Counter("c", 1).Add(7)
	r.Gauge("g", 0).Set(3)
	r.Gauge("g", 1).Set(9)
	r.Gauge("g", 1).Set(2) // value drops, max stays 9
	r.Histogram("h", 0).Observe(10)
	r.Histogram("h", 1).Observe(1000)
	up := r.Snapshot().Rollup()
	if v, _ := up.Counter("c", NodeGlobal); v != 12 {
		t.Fatalf("rolled-up counter = %d, want 12", v)
	}
	g, ok := up.Gauge("g", NodeGlobal)
	if !ok || g.Max != 9 {
		t.Fatalf("rolled-up gauge max = %d, want 9", g.Max)
	}
	h, ok := up.Histogram("h", NodeGlobal)
	if !ok || h.Count != 2 || h.Sum != 1010 || h.Min != 10 || h.Max != 1000 {
		t.Fatalf("rolled-up histogram = %+v", h)
	}
	var total int64
	for _, bc := range h.Buckets {
		total += bc.Count
	}
	if total != 2 {
		t.Fatalf("rolled-up bucket mass = %d, want 2", total)
	}
}
