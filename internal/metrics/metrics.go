// Package metrics is the deterministic observability subsystem: a
// Registry of named counters, gauges and fixed-log-bucket histograms
// that every simulated layer (ring, I/O bus, BillBoard Protocol, MPI,
// hybrid router, fault injector) reports into.
//
// Design rules, in force everywhere:
//
//   - Nil-safe, like trace.Recorder: a nil *Registry hands out nil
//     instruments, and every instrument method is a no-op on a nil
//     receiver. Instrumented hot paths need no guards and pay one
//     pointer test when metrics are disabled — no allocation, and no
//     virtual time ever (instruments never call Proc.Delay, so enabling
//     metrics cannot move a single figure).
//   - Deterministic: no wall-clock reads, no map-iteration order.
//     Snapshots are sorted by (name, node) and two identical simulation
//     runs produce byte-identical renderings.
//   - Fixed bucket layout: histograms always carry NumBuckets power-of-
//     two buckets, so snapshots from different runs (or different PRs)
//     are structurally comparable and the BENCH JSON schema is stable.
//   - Single-writer: the simulation kernel hands one execution token
//     between Procs, so instruments need no locks (the race-mode tier
//     proves this stays true).
//
// Names are dot-scoped by layer ("ring.packets_injected",
// "pci.pio_read_words", "bbp.polls", ...). Each instrument belongs to a
// node (ring node / process rank), or to NodeGlobal for whole-network
// quantities. Snapshot gives the per-node view; Snapshot.Rollup
// aggregates across nodes into the cluster-wide view the BENCH report
// records.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// NodeGlobal is the node id of instruments that describe the whole
// network rather than one node.
const NodeGlobal = -1

// NumBuckets is the fixed histogram layout: bucket 0 holds observations
// <= 0, bucket i (1 <= i < NumBuckets-1) holds [2^(i-1), 2^i), and the
// last bucket is open-ended. 48 buckets cover every int64 the
// simulation can produce (2^47 ns is ~39 virtual hours).
const NumBuckets = 48

// bucketOf returns the fixed bucket index for an observation.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// BucketBounds returns bucket i's half-open range [lo, hi); hi < 0
// means unbounded (the last bucket).
func BucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return 0, 1
	case i >= NumBuckets-1:
		return 1 << (NumBuckets - 2), -1
	default:
		return 1 << (i - 1), 1 << i
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Inc adds one (no-op on nil).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d (no-op on nil).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level that also remembers its high-water
// mark (e.g. a queue depth).
type Gauge struct{ v, max int64 }

// Set records the current level and updates the high-water mark (no-op
// on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Value returns the last level set (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (zero on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram accumulates observations into the fixed power-of-two
// bucket layout, tracking count, sum and extrema exactly.
type Histogram struct {
	count, sum int64
	min, max   int64
	buckets    [NumBuckets]int64
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// ObserveN records n identical observations of v in one step (no-op on
// nil or n <= 0). It is the bulk-import path for pre-bucketed data —
// internal/metrics.PublishKernelProfile replays a kernel profile's
// buckets through it at each bucket's lower bound, so the re-imported
// sum is quantized to bucket floors while count and bucket shape are
// exact.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * n
	h.buckets[bucketOf(v)] += n
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the running total (zero on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min and Max return the extrema (zero on nil or before the first
// observation).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (zero before the first observation).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for quantile q in [0,1]: the
// exclusive upper bound of the bucket in which the q-th observation
// falls (capped at the exact maximum). Deterministic and monotone in q.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i := 0; i < NumBuckets; i++ {
		seen += h.buckets[i]
		if seen > rank {
			_, hi := BucketBounds(i)
			if hi < 0 || hi > h.max {
				return h.max
			}
			return hi
		}
	}
	return h.max
}

// key identifies one instrument.
type key struct {
	name string
	node int
}

// Registry hands out instruments by (name, node) and snapshots them.
// The zero value is not usable; call New. A nil *Registry is the
// disabled state: it returns nil instruments and empty snapshots.
type Registry struct {
	counters map[key]*Counter
	gauges   map[key]*Gauge
	hists    map[key]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[key]*Counter{},
		gauges:   map[key]*Gauge{},
		hists:    map[key]*Histogram{},
	}
}

// Counter returns the named counter for a node, creating it on first
// use. Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string, node int) *Counter {
	if r == nil {
		return nil
	}
	k := key{name, node}
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named gauge for a node, creating it on first use.
func (r *Registry) Gauge(name string, node int) *Gauge {
	if r == nil {
		return nil
	}
	k := key{name, node}
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram for a node, creating it on
// first use.
func (r *Registry) Histogram(name string, node int) *Histogram {
	if r == nil {
		return nil
	}
	k := key{name, node}
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Node  int    `json:"node"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string `json:"name"`
	Node  int    `json:"node"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistogramPoint is one histogram in a snapshot. Buckets lists only the
// populated buckets as {index, count} pairs so snapshots stay compact
// while the layout (NumBuckets, power-of-two bounds) remains fixed.
type HistogramPoint struct {
	Name    string        `json:"name"`
	Node    int           `json:"node"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one populated histogram bucket.
type BucketCount struct {
	Bucket int   `json:"bucket"`
	Count  int64 `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by
// (name, node) so rendering and serialization are deterministic.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot captures the registry. Empty (not nil-pointered) on a nil
// registry, so callers can render unconditionally.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for k, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{k.name, k.node, c.v})
	}
	for k, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{k.name, k.node, g.v, g.max})
	}
	for k, h := range r.hists {
		p := HistogramPoint{Name: k.name, Node: k.node, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, n := range h.buckets {
			if n != 0 {
				p.Buckets = append(p.Buckets, BucketCount{i, n})
			}
		}
		s.Histograms = append(s.Histograms, p)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return lessKey(s.Counters[i].Name, s.Counters[i].Node, s.Counters[j].Name, s.Counters[j].Node)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return lessKey(s.Gauges[i].Name, s.Gauges[i].Node, s.Gauges[j].Name, s.Gauges[j].Node)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return lessKey(s.Histograms[i].Name, s.Histograms[i].Node, s.Histograms[j].Name, s.Histograms[j].Node)
	})
	return s
}

func lessKey(an string, ai int, bn string, bi int) bool {
	if an != bn {
		return an < bn
	}
	return ai < bi
}

// Counter returns the snapshot value of a counter (ok=false if absent).
func (s Snapshot) Counter(name string, node int) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && c.Node == node {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the snapshot of a gauge (ok=false if absent).
func (s Snapshot) Gauge(name string, node int) (GaugePoint, bool) {
	for _, g := range s.Gauges {
		if g.Name == name && g.Node == node {
			return g, true
		}
	}
	return GaugePoint{}, false
}

// Histogram returns the snapshot of a histogram (ok=false if absent).
func (s Snapshot) Histogram(name string, node int) (HistogramPoint, bool) {
	for _, h := range s.Histograms {
		if h.Name == name && h.Node == node {
			return h, true
		}
	}
	return HistogramPoint{}, false
}

// Rollup aggregates the per-node snapshot into the cluster-wide view:
// counters sum across nodes; gauges take the maximum (a cluster
// high-water mark); histograms merge bucket-wise. Every resulting point
// carries NodeGlobal.
func (s Snapshot) Rollup() Snapshot {
	var out Snapshot
	cs := map[string]int64{}
	for _, c := range s.Counters {
		cs[c.Name] += c.Value
	}
	for name, v := range cs {
		out.Counters = append(out.Counters, CounterPoint{name, NodeGlobal, v})
	}
	gs := map[string]GaugePoint{}
	for _, g := range s.Gauges {
		p, ok := gs[g.Name]
		if !ok {
			p = GaugePoint{Name: g.Name, Node: NodeGlobal, Value: g.Value, Max: g.Max}
		} else {
			if g.Value > p.Value {
				p.Value = g.Value
			}
			if g.Max > p.Max {
				p.Max = g.Max
			}
		}
		gs[g.Name] = p
	}
	for _, p := range gs {
		out.Gauges = append(out.Gauges, p)
	}
	hs := map[string]*HistogramPoint{}
	for _, h := range s.Histograms {
		p := hs[h.Name]
		if p == nil {
			cp := h
			cp.Node = NodeGlobal
			cp.Buckets = append([]BucketCount(nil), h.Buckets...)
			hs[h.Name] = &cp
			continue
		}
		p.Count += h.Count
		p.Sum += h.Sum
		if h.Count > 0 && (p.Count == h.Count || h.Min < p.Min) {
			p.Min = h.Min
		}
		if h.Max > p.Max {
			p.Max = h.Max
		}
		p.Buckets = mergeBuckets(p.Buckets, h.Buckets)
	}
	for _, p := range hs {
		out.Histograms = append(out.Histograms, *p)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

func mergeBuckets(a, b []BucketCount) []BucketCount {
	var full [NumBuckets]int64
	for _, bc := range a {
		full[bc.Bucket] += bc.Count
	}
	for _, bc := range b {
		full[bc.Bucket] += bc.Count
	}
	var out []BucketCount
	for i, n := range full {
		if n != 0 {
			out = append(out, BucketCount{i, n})
		}
	}
	return out
}

// Render writes the snapshot as an aligned, deterministic table.
func (s Snapshot) Render(w io.Writer) {
	if len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		fmt.Fprintln(w, "(no metrics)")
		return
	}
	nodeStr := func(n int) string {
		if n == NodeGlobal {
			return "*"
		}
		return fmt.Sprintf("%d", n)
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "%-34s %5s %14s\n", "counter", "node", "value")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "%-34s %5s %14d\n", c.Name, nodeStr(c.Node), c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "%-34s %5s %14s %14s\n", "gauge", "node", "value", "high-water")
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "%-34s %5s %14d %14d\n", g.Name, nodeStr(g.Node), g.Value, g.Max)
		}
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "histogram %s node=%s count=%d sum=%d min=%d max=%d\n",
			h.Name, nodeStr(h.Node), h.Count, h.Sum, h.Min, h.Max)
		for _, bc := range h.Buckets {
			lo, hi := BucketBounds(bc.Bucket)
			bound := fmt.Sprintf("[%d,%d)", lo, hi)
			if hi < 0 {
				bound = fmt.Sprintf("[%d,inf)", lo)
			}
			fmt.Fprintf(w, "  %-22s %10d %s\n", bound, bc.Count, strings.Repeat("#", barLen(bc.Count, h.Count)))
		}
	}
}

// barLen scales a bucket count to a 1..40 character bar.
func barLen(n, total int64) int {
	if total <= 0 || n <= 0 {
		return 0
	}
	l := int(n * 40 / total)
	if l < 1 {
		l = 1
	}
	return l
}
