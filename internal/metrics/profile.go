// Kernel-profile publishing: bridge from internal/sim's self-profiler
// into a metrics Registry.
//
// The split exists because of the import direction: metrics depends on
// sim (Stream schedules observer events), so the profiler itself lives
// in sim with its own bucket layout and this file adapts it. The two
// layouts are asserted identical at compile time below.
//
// Profiles measure host wall-clock time and are therefore
// non-deterministic run to run. Publish them into a registry dedicated
// to profiling output — never the simulation's registry that feeds
// byte-stable artifacts (BENCH_*.json, the snapshot stream).
package metrics

import "repro/internal/sim"

// Compile-time assertion that sim's profiler buckets and the metrics
// histogram layout agree, so profile buckets re-import losslessly.
const _ = uint(sim.ProfBuckets-NumBuckets) + uint(NumBuckets-sim.ProfBuckets)

// PublishKernelProfile copies a kernel self-profile into reg at
// NodeGlobal:
//
//	sim.events.<kind>        counter: events executed
//	sim.wall_ns.<kind>       counter: exact total wall ns
//	sim.event_wall_ns.<kind> histogram: per-event wall ns, bucket-exact
//
// The histogram is rebuilt by replaying each profiler bucket at its
// lower bound, so its count and bucket population match the profiler
// exactly while its sum is quantized to bucket floors; the exact sum is
// the wall_ns counter. No-op on a nil registry or nil profiler.
func PublishKernelProfile(reg *Registry, p *sim.Profiler) {
	if reg == nil || p == nil {
		return
	}
	for _, s := range p.Stats() {
		reg.Counter("sim.events."+s.Kind, NodeGlobal).Add(s.Events)
		reg.Counter("sim.wall_ns."+s.Kind, NodeGlobal).Add(s.WallNs)
		h := reg.Histogram("sim.event_wall_ns."+s.Kind, NodeGlobal)
		for i, n := range s.Buckets {
			if n == 0 {
				continue
			}
			lo, _ := BucketBounds(i)
			if i == 0 {
				lo = 0
			}
			h.ObserveN(lo, n)
		}
	}
}
