package metrics

import (
	"testing"

	"repro/internal/sim"
)

// profiledRun executes a small labeled workload and returns its profile.
func profiledRun(t *testing.T) *sim.Profiler {
	t.Helper()
	p := sim.NewProfiler()
	k := sim.NewKernel()
	k.SetProfiler(p)
	k.AfterKind(10, "ring", func() {})
	k.AfterKind(20, "ring", func() {})
	k.AfterKind(30, "bus", func() {})
	k.After(40, func() {})
	if err := k.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if p.TotalEvents() != 4 {
		t.Fatalf("TotalEvents = %d, want 4", p.TotalEvents())
	}
	return p
}

func TestPublishKernelProfile(t *testing.T) {
	p := profiledRun(t)
	reg := New()
	PublishKernelProfile(reg, p)
	snap := reg.Snapshot()

	for _, s := range p.Stats() {
		if v, ok := snap.Counter("sim.events."+s.Kind, NodeGlobal); !ok || v != s.Events {
			t.Errorf("sim.events.%s = %d (ok=%v), want %d", s.Kind, v, ok, s.Events)
		}
		if v, ok := snap.Counter("sim.wall_ns."+s.Kind, NodeGlobal); !ok || v != s.WallNs {
			t.Errorf("sim.wall_ns.%s = %d (ok=%v), want %d", s.Kind, v, ok, s.WallNs)
		}
		h, ok := snap.Histogram("sim.event_wall_ns."+s.Kind, NodeGlobal)
		if !ok {
			t.Errorf("sim.event_wall_ns.%s missing", s.Kind)
			continue
		}
		if h.Count != s.Events {
			t.Errorf("sim.event_wall_ns.%s count = %d, want %d", s.Kind, h.Count, s.Events)
		}
		// Bucket shape must match the profiler exactly.
		var want []BucketCount
		for i, n := range s.Buckets {
			if n != 0 {
				want = append(want, BucketCount{i, n})
			}
		}
		if len(h.Buckets) != len(want) {
			t.Errorf("sim.event_wall_ns.%s buckets = %v, want %v", s.Kind, h.Buckets, want)
			continue
		}
		for i := range want {
			if h.Buckets[i] != want[i] {
				t.Errorf("sim.event_wall_ns.%s bucket %d = %v, want %v", s.Kind, i, h.Buckets[i], want[i])
			}
		}
	}
}

func TestPublishKernelProfileNil(t *testing.T) {
	// All nil combinations are no-ops, not panics.
	PublishKernelProfile(nil, nil)
	PublishKernelProfile(nil, sim.NewProfiler())
	reg := New()
	PublishKernelProfile(reg, nil)
	if s := reg.Snapshot(); len(s.Counters) != 0 {
		t.Errorf("nil profiler published counters: %v", s.Counters)
	}
}

func TestObserveN(t *testing.T) {
	h := &Histogram{}
	h.ObserveN(8, 3)
	h.ObserveN(1, 2)
	h.ObserveN(0, 1)
	h.ObserveN(5, 0)  // no-op
	h.ObserveN(5, -2) // no-op
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 8*3+1*2 {
		t.Errorf("sum = %d, want 26", h.Sum())
	}
	if h.Min() != 0 || h.Max() != 8 {
		t.Errorf("min/max = %d/%d, want 0/8", h.Min(), h.Max())
	}
	// Equivalent to repeated Observe calls.
	want := &Histogram{}
	for i := 0; i < 3; i++ {
		want.Observe(8)
	}
	for i := 0; i < 2; i++ {
		want.Observe(1)
	}
	want.Observe(0)
	if *h != *want {
		t.Errorf("ObserveN diverges from repeated Observe:\n got %+v\nwant %+v", *h, *want)
	}

	var nilH *Histogram
	nilH.ObserveN(1, 1) // no-op, no panic
}
