package metrics

import (
	"encoding/json"
	"io"

	"repro/internal/sim"
)

// StreamPoint is one periodic capture of the full registry at a virtual
// timestamp. Snapshot's slices are sorted by (name, node) and struct
// field order is fixed, so marshalling a point is byte-stable.
type StreamPoint struct {
	T    int64    `json:"t_ns"`
	Snap Snapshot `json:"snapshot"`
}

// Stream captures the full metrics registry every fixed virtual-time
// interval, accumulating an in-order sequence of StreamPoints. Captures
// run in timer callbacks and cost zero virtual time, so enabling a
// stream never perturbs simulated latencies. The stream stops
// rescheduling itself once it is the only event source left, so a
// simulation driven by Kernel.Run still terminates.
type Stream struct {
	k     *sim.Kernel
	reg   *Registry
	every sim.Duration

	points  []StreamPoint
	timer   *sim.Timer
	stopped bool
}

// NewStream starts capturing reg every `every` of virtual time,
// beginning with a baseline point at the current virtual time. Returns
// nil (safe to use) if any argument is missing or the interval is not
// positive.
func NewStream(k *sim.Kernel, reg *Registry, every sim.Duration) *Stream {
	if k == nil || reg == nil || every <= 0 {
		return nil
	}
	s := &Stream{k: k, reg: reg, every: every}
	s.capture()
	s.arm()
	return s
}

func (s *Stream) capture() {
	s.points = append(s.points, StreamPoint{T: int64(s.k.Now()), Snap: s.reg.Snapshot()})
}

func (s *Stream) arm() {
	// Observer scheduling keeps this tick out of Pending, so the stream
	// and any other periodic observer (e.g. a liveness ticker) cannot
	// keep each other alive after the workload drains.
	s.timer = s.k.AfterObserver(s.every, func() {
		if s.stopped {
			return
		}
		s.capture()
		// Our own tick has been popped already, so any remaining
		// non-observer event belongs to the workload; with none left the
		// run is over and rearming would only keep the kernel spinning.
		if s.k.Pending() > 0 {
			s.arm()
		}
	})
}

// Stop cancels future captures; already-captured points remain.
func (s *Stream) Stop() {
	if s == nil || s.stopped {
		return
	}
	s.stopped = true
	s.timer.Stop()
}

// Points returns the captures so far, in virtual-time order.
func (s *Stream) Points() []StreamPoint {
	if s == nil {
		return nil
	}
	return s.points
}

// WriteJSONL writes one compact JSON object per line per capture. The
// encoding is byte-stable: identical simulations produce identical
// output (see TestStreamDeterminism).
func (s *Stream) WriteJSONL(w io.Writer) error {
	return WritePointsJSONL(w, s.Points())
}

// WritePointsJSONL encodes any point sequence as JSONL (shared by
// Stream.WriteJSONL and tools that filtered or merged point streams).
func WritePointsJSONL(w io.Writer, points []StreamPoint) error {
	for _, p := range points {
		b, err := json.Marshal(p)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}
