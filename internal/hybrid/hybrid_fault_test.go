package hybrid_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hybrid"
	"repro/internal/sim"
	"repro/internal/xport"
	"repro/internal/xport/oracle"
)

// stubEndpoint is a controllable in-memory substrate for exercising the
// router's fault paths without a network. Deliveries are a simple FIFO
// per source; sendErr makes Send fail, recvErr makes TryRecv fail, and
// runt delivers a frame shorter than the router's header.
type stubEndpoint struct {
	rank, procs int
	max         int
	queues      map[int][][]byte
	sendErr     error
	recvErr     error
	delivered   [][]byte // what Send accepted, in order
}

func newStub(rank, procs, max int) *stubEndpoint {
	return &stubEndpoint{rank: rank, procs: procs, max: max, queues: map[int][][]byte{}}
}

func (s *stubEndpoint) Rank() int         { return s.rank }
func (s *stubEndpoint) Procs() int        { return s.procs }
func (s *stubEndpoint) MaxMessage() int   { return s.max }
func (s *stubEndpoint) NativeMcast() bool { return false }

func (s *stubEndpoint) Send(p *sim.Proc, dst int, data []byte) error {
	if s.sendErr != nil {
		return s.sendErr
	}
	if len(data) > s.max {
		return errors.New("stub: too large")
	}
	s.delivered = append(s.delivered, append([]byte(nil), data...))
	return nil
}

func (s *stubEndpoint) Mcast(p *sim.Proc, dsts []int, data []byte) error {
	for _, d := range dsts {
		if err := s.Send(p, d, data); err != nil {
			return err
		}
	}
	return nil
}

// push queues a raw frame for TryRecv(src) to return.
func (s *stubEndpoint) push(src int, frame []byte) {
	s.queues[src] = append(s.queues[src], append([]byte(nil), frame...))
}

func (s *stubEndpoint) TryRecv(p *sim.Proc, src int, buf []byte) (int, bool, error) {
	if s.recvErr != nil {
		return 0, false, s.recvErr
	}
	q := s.queues[src]
	if len(q) == 0 {
		return 0, false, nil
	}
	s.queues[src] = q[1:]
	return copy(buf, q[0]), true, nil
}

func (s *stubEndpoint) Recv(p *sim.Proc, src int, buf []byte) (int, error) {
	n, ok, err := s.TryRecv(p, src, buf)
	if err != nil || !ok {
		return 0, errors.New("stub: nothing queued")
	}
	return n, nil
}

func (s *stubEndpoint) RecvAny(p *sim.Proc, buf []byte) (int, int, error) {
	return 0, 0, errors.New("stub: RecvAny unsupported")
}

var _ xport.Endpoint = (*stubEndpoint)(nil)

// seqFrame builds a routed frame: 4-byte little-endian sequence header
// plus payload, matching the router's wire format.
func seqFrame(seq uint32, payload []byte) []byte {
	f := []byte{byte(seq), byte(seq >> 8), byte(seq >> 16), byte(seq >> 24)}
	return append(f, payload...)
}

func stubPair(t *testing.T) (*stubEndpoint, *stubEndpoint, *hybrid.Endpoint) {
	t.Helper()
	low := newStub(0, 2, 4096)
	high := newStub(0, 2, 64<<10)
	ep, err := hybrid.New(low, high, hybrid.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return low, high, ep
}

func TestSendFailoverToAlternateSubstrate(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	low, high, ep := stubPair(t)

	// Small message with the low road refusing: must cross on high.
	low.sendErr = errors.New("stub: low road down")
	k.Spawn("tx", func(p *sim.Proc) {
		if err := ep.Send(p, 1, []byte("small")); err != nil {
			t.Errorf("failover send: %v", err)
		}
		// Large message with the high road refusing: it no longer fits
		// the low road either (beyond its MaxMessage), so the original
		// error must surface.
		low.sendErr = nil
		high.sendErr = errors.New("stub: high road down")
		if err := ep.Send(p, 1, make([]byte, 16<<10)); err == nil {
			t.Error("oversized failover did not surface the error")
		}
		// Large-but-fitting message fails over high -> low.
		if err := ep.Send(p, 1, make([]byte, 2000)); err != nil {
			t.Errorf("failover to low: %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(high.delivered) != 1 || len(low.delivered) != 1 {
		t.Fatalf("deliveries: high=%d low=%d", len(high.delivered), len(low.delivered))
	}
	st := ep.Stats()
	if st.Failovers != 2 {
		t.Fatalf("Failovers = %d, want 2", st.Failovers)
	}
}

func TestResequencerDiscardsDuplicates(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	low, _, ep := stubPair(t)

	low.push(1, seqFrame(0, []byte("a")))
	low.push(1, seqFrame(0, []byte("a"))) // retransmitted duplicate
	low.push(1, seqFrame(1, []byte("b")))
	var got []string
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < 2; i++ {
			n, err := ep.Recv(p, 1, buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, string(buf[:n]))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("released %v", got)
	}
	if ep.Stats().Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", ep.Stats().Duplicates)
	}
}

func TestPollToleratesSubstrateErrorsAndRunts(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	low, high, ep := stubPair(t)

	// The high road errors on every poll and the low road delivers a
	// runt first; the stream must still heal around both.
	high.recvErr = errors.New("stub: receive fault")
	low.push(1, []byte{1, 2}) // shorter than the 4-byte header
	low.push(1, seqFrame(0, []byte("ok")))
	var got string
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16)
		n, err := ep.Recv(p, 1, buf)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = string(buf[:n])
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ok" {
		t.Fatalf("got %q", got)
	}
	st := ep.Stats()
	if st.SubErrors < 2 {
		t.Fatalf("SubErrors = %d, want >= 2 (faulted polls + runt)", st.SubErrors)
	}
}

// TestHybridUnderFaultScript drives a full hybrid cluster — retry-
// enabled BBP below, fault-wrapped Myrinet above — through a transient
// loss window and checks the oracle contract on the small-message
// (BBP) road, which is the one with a recovery layer.
func TestHybridUnderFaultScript(t *testing.T) {
	script := &fault.Script{Seed: 4242, Actions: []fault.Action{
		{At: sim.Time(0).Add(100 * sim.Microsecond), Kind: fault.LossStart, Rate: 0.1},
		{At: sim.Time(0).Add(400 * sim.Microsecond), Kind: fault.LossStop},
	}}
	k := sim.NewKernel()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.Hybrid, BBP: &bbp, Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.New()
	eps := make([]xport.Endpoint, len(c.Endpoints))
	for i, ep := range c.Endpoints {
		eps[i] = o.Wrap(ep)
	}
	const msgs = 20
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < msgs; i++ {
			payload := bytes.Repeat([]byte{byte(i + 1)}, 40) // small: BBP road
			if err := eps[0].Send(p, 1, payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			p.Delay(30 * sim.Microsecond)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 128)
		for i := 0; i < msgs; i++ {
			if _, err := eps[1].Recv(p, 0, buf); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if st, err := o.Check(true); err != nil {
		t.Fatalf("oracle: %v (%v)", err, st)
	}
}
