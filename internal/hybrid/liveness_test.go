package hybrid_test

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hybrid"
	"repro/internal/liveness"
	"repro/internal/myrinet"
	"repro/internal/sim"
)

// TestProactiveFailoverOnSuspicion models the partial failure the hybrid
// router exists for: a node's SCRAMNet card is bypassed while its
// Myrinet link stays up. Once the ring's failure detector merely
// suspects the destination, small sends steer onto the high-bandwidth
// substrate before any send error or pinned billboard buffer — and the
// stream keeps flowing in order.
func TestProactiveFailoverOnSuspicion(t *testing.T) {
	const nodes, dst = 3, 2
	kill := 2 * sim.Millisecond
	k := sim.NewKernel()
	defer k.Close()

	// Fault the ring only: the script drives the SCRAMNet cluster, and
	// the Myrinet SAN is built separately, unfaulted.
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	lcfg := liveness.DefaultConfig()
	script := &fault.Script{Seed: 31, Actions: []fault.Action{
		{At: sim.Time(0).Add(kill), Kind: fault.NodeFail, Node: dst},
	}}
	low, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	san, err := myrinet.New(k, myrinet.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*hybrid.Endpoint, nodes)
	for i := 0; i < nodes; i++ {
		high := myrinet.OpenAPI(san, i, myrinet.DefaultAPIConfig())
		if eps[i], err = hybrid.New(low.Endpoints[i], high, hybrid.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	if eps[0].Liveness() == nil {
		t.Fatal("hybrid router does not delegate the low substrate's liveness view")
	}

	const before, after = 4, 6
	small := []byte("below the crossover") // < Threshold: prefers the ring
	k.Spawn("tx", func(p *sim.Proc) {
		view := eps[0].Liveness()
		for i := 0; i < before; i++ {
			if err := eps[0].Send(p, dst, small); err != nil {
				t.Errorf("healthy send %d: %v", i, err)
				return
			}
			p.Delay(100 * sim.Microsecond)
		}
		if got := eps[0].Stats().ProactiveFailovers; got != 0 {
			t.Errorf("healthy sends already failed over %d times", got)
		}
		// Hold until the detector doubts dst, then resume: suspicion —
		// not confirmation, and no send error — must be enough to
		// reroute.
		for view.State(dst) == liveness.Alive {
			p.Delay(50 * sim.Microsecond)
		}
		if got := view.State(dst); got != liveness.Suspect {
			t.Errorf("detector skipped suspect: %v", got)
		}
		for i := 0; i < after; i++ {
			if err := eps[0].Send(p, dst, small); err != nil {
				t.Errorf("failover send %d: %v", i, err)
				return
			}
			p.Delay(100 * sim.Microsecond)
		}
	})
	var got int
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 64)
		for i := 0; i < before+after; i++ {
			n, err := eps[dst].Recv(p, 0, buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if !bytes.Equal(buf[:n], small) {
				t.Errorf("recv %d: %q", i, buf[:n])
				return
			}
			got++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != before+after {
		t.Fatalf("delivered %d/%d", got, before+after)
	}
	if pf := eps[0].Stats().ProactiveFailovers; pf != after {
		t.Fatalf("proactive failovers = %d, want %d", pf, after)
	}
}
