package hybrid_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/hybrid"
	"repro/internal/mpi"
	"repro/internal/sim"
)

func world(t testing.TB, nodes int) (*sim.Kernel, *cluster.Cluster) {
	t.Helper()
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: nodes, Net: cluster.Hybrid})
	if err != nil {
		t.Fatal(err)
	}
	return k, c
}

func TestSmallAndLargeRoundtrip(t *testing.T) {
	k, c := world(t, 2)
	small := []byte("tiny")
	large := make([]byte, 8000)
	sim.NewRNG(3).Bytes(large)
	var gotSmall, gotLarge []byte
	k.Spawn("tx", func(p *sim.Proc) {
		if err := c.Endpoints[0].Send(p, 1, small); err != nil {
			t.Error(err)
		}
		if err := c.Endpoints[0].Send(p, 1, large); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 16000)
		n, err := c.Endpoints[1].Recv(p, 0, buf)
		if err != nil {
			t.Error(err)
			return
		}
		gotSmall = append([]byte(nil), buf[:n]...)
		n, err = c.Endpoints[1].Recv(p, 0, buf)
		if err != nil {
			t.Error(err)
			return
		}
		gotLarge = append([]byte(nil), buf[:n]...)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSmall, small) || !bytes.Equal(gotLarge, large) {
		t.Fatal("payload mismatch across substrates")
	}
}

func TestResequencingAcrossSubstrates(t *testing.T) {
	// A large message (slow Myrinet path for the first bytes, then
	// fast) followed by a small one (fast BBP path): the small message
	// physically arrives first but must be delivered second.
	k, c := world(t, 2)
	var order []int
	k.Spawn("tx", func(p *sim.Proc) {
		if err := c.Endpoints[0].Send(p, 1, make([]byte, 4000)); err != nil {
			t.Error(err) // routed high: ~85µs+ path
		}
		if err := c.Endpoints[0].Send(p, 1, []byte{9}); err != nil {
			t.Error(err) // routed low: ~8µs path — overtakes on the wire
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8000)
		for i := 0; i < 2; i++ {
			n, err := c.Endpoints[1].Recv(p, 0, buf)
			if err != nil {
				t.Error(err)
				return
			}
			order = append(order, n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 4000 || order[1] != 1 {
		t.Fatalf("delivery order %v; resequencing failed", order)
	}
}

func TestOrderingProperty(t *testing.T) {
	// Property: any interleaving of sizes straddling the threshold is
	// delivered in send order, bit-exact.
	f := func(seed uint64) bool {
		k, c := world(t, 2)
		defer k.Close()
		rng := sim.NewRNG(seed)
		const count = 15
		sizes := make([]int, count)
		for i := range sizes {
			if rng.Intn(2) == 0 {
				sizes[i] = rng.Intn(500) // low road
			} else {
				sizes[i] = 600 + rng.Intn(3000) // high road
			}
		}
		payload := func(i int) []byte {
			b := make([]byte, sizes[i])
			sim.NewRNG(uint64(i) + seed).Bytes(b)
			return b
		}
		ok := true
		k.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				if err := c.Endpoints[0].Send(p, 1, payload(i)); err != nil {
					ok = false
					return
				}
				p.Delay(sim.Duration(rng.Intn(20)) * sim.Microsecond)
			}
		})
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, 8000)
			for i := 0; i < count; i++ {
				n, err := c.Endpoints[1].Recv(p, 0, buf)
				if err != nil || n != sizes[i] || !bytes.Equal(buf[:n], payload(i)) {
					ok = false
					return
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBestOfBothWorlds(t *testing.T) {
	// The hybrid's small-message latency must be close to SCRAMNet's
	// (far below Myrinet API's), and its large-message latency close to
	// Myrinet's (far below SCRAMNet's).
	oneWay := func(net cluster.Network, n int) float64 {
		k := sim.NewKernel()
		defer k.Close()
		c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: net})
		if err != nil {
			t.Fatal(err)
		}
		var sent, recvd sim.Time
		k.Spawn("rx", func(p *sim.Proc) {
			buf := make([]byte, n+8)
			if _, err := c.Endpoints[1].Recv(p, 0, buf); err != nil {
				t.Error(err)
			}
			recvd = p.Now()
		})
		k.Spawn("tx", func(p *sim.Proc) {
			p.Delay(10 * sim.Microsecond)
			sent = p.Now()
			if err := c.Endpoints[0].Send(p, 1, make([]byte, n)); err != nil {
				t.Error(err)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return recvd.Sub(sent).Microseconds()
	}
	smallHybrid := oneWay(cluster.Hybrid, 4)
	smallMyr := oneWay(cluster.MyrinetAPI, 4)
	if smallHybrid > smallMyr/3 {
		t.Errorf("hybrid 4B = %.1fµs, not ≪ Myrinet's %.1fµs", smallHybrid, smallMyr)
	}
	largeHybrid := oneWay(cluster.Hybrid, 32<<10)
	largeScr := oneWay(cluster.SCRAMNet, 32<<10)
	if largeHybrid > largeScr/3 {
		t.Errorf("hybrid 32K = %.1fµs, not ≪ SCRAMNet's %.1fµs", largeHybrid, largeScr)
	}
}

func TestMcastOverHybrid(t *testing.T) {
	k, c := world(t, 4)
	msg := []byte("to everyone")
	ok := make([]bool, 4)
	k.Spawn("tx", func(p *sim.Proc) {
		if err := c.Endpoints[0].Mcast(p, []int{1, 2, 3}, msg); err != nil {
			t.Error(err)
		}
	})
	for r := 1; r < 4; r++ {
		r := r
		k.Spawn(fmt.Sprintf("rx%d", r), func(p *sim.Proc) {
			buf := make([]byte, 64)
			n, err := c.Endpoints[r].Recv(p, 0, buf)
			ok[r] = err == nil && bytes.Equal(buf[:n], msg)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if !ok[r] {
			t.Errorf("node %d missed hybrid multicast", r)
		}
	}
}

func TestMPIOverHybrid(t *testing.T) {
	// The full MPI stack, including multicast collectives, runs over
	// the hybrid transport.
	k := sim.NewKernel()
	_, w, err := cluster.NewMPIWorld(k, cluster.Hybrid, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		buf := make([]byte, 2000)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i)
			}
		}
		if err := c.Bcast(p, 0, buf); err != nil {
			t.Error(err)
			return
		}
		for i := range buf {
			if buf[i] != byte(i) {
				t.Errorf("rank %d: bcast corrupted at %d", c.Rank(), i)
				return
			}
		}
		if err := c.Barrier(p); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyAcrossSubstrates(t *testing.T) {
	// Messages from two sources on different roads (small via BBP,
	// large via Myrinet) are both collectable with RecvAny.
	k, c := world(t, 3)
	counts := map[int]int{}
	k.Spawn("tx1", func(p *sim.Proc) {
		if err := c.Endpoints[1].Send(p, 0, []byte("small")); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("tx2", func(p *sim.Proc) {
		if err := c.Endpoints[2].Send(p, 0, make([]byte, 3000)); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8000)
		for i := 0; i < 2; i++ {
			src, n, err := c.Endpoints[0].RecvAny(p, buf)
			if err != nil {
				t.Error(err)
				return
			}
			counts[src] = n
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[1] != 5 || counts[2] != 3000 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRecvTimeout(t *testing.T) {
	// Assemble a hybrid endpoint directly so the timeout is short.
	k := sim.NewKernel()
	c2, err := cluster.New(k, cluster.Options{Nodes: 2, Net: cluster.SCRAMNet})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := cluster.New(k, cluster.Options{Nodes: 2, Net: cluster.MyrinetAPI})
	if err != nil {
		t.Fatal(err)
	}
	cfg := hybrid.DefaultConfig()
	cfg.RecvTimeout = 300 * sim.Microsecond
	ep, err := hybrid.New(c2.Endpoints[0], c3.Endpoints[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recvErr, anyErr error
	k.Spawn("rx", func(p *sim.Proc) {
		_, recvErr = ep.Recv(p, 1, make([]byte, 8))
		_, _, anyErr = ep.RecvAny(p, make([]byte, 8))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvErr != hybrid.ErrTimeout || anyErr != hybrid.ErrTimeout {
		t.Fatalf("errors = %v, %v; want ErrTimeout", recvErr, anyErr)
	}
}

func TestConfigValidation(t *testing.T) {
	k, c := world(t, 2)
	defer k.Close()
	// Mismatched ranks are rejected (endpoint 0 paired with endpoint 1).
	if _, err := hybrid.New(c.Endpoints[0], c.Endpoints[1], hybrid.DefaultConfig()); err == nil {
		t.Error("rank mismatch accepted")
	}
	// A threshold beyond the low substrate's capacity is rejected.
	bad := hybrid.DefaultConfig()
	bad.Threshold = 1 << 30
	if _, err := hybrid.New(c.Endpoints[0], c.Endpoints[0], bad); err == nil {
		t.Error("oversized threshold accepted")
	}
}
