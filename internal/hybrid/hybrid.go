// Package hybrid implements the communication subsystem the paper's
// conclusion (§7) proposes: SCRAMNet for latency, a high-bandwidth
// network for volume, in the same cluster. "We conclude that SCRAMNet
// has characteristics complementary to those of networks usually used
// in clusters. This makes SCRAMNet a good candidate for use with a high
// bandwidth network within the same cluster."
//
// An Endpoint routes each message by size: at or below Threshold it
// travels over the low-latency transport (the BillBoard Protocol);
// above, over the high-bandwidth one (e.g. the Myrinet API). Because
// the two substrates have wildly different latencies, a small message
// sent after a large one could overtake it; every message therefore
// carries a per-(sender,receiver) sequence number, and the receiver
// releases messages strictly in sequence, holding early arrivals in a
// reorder buffer.
package hybrid

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xport"
)

// hdrBytes prefixes every routed message: 4-byte sequence number.
const hdrBytes = 4

// ErrTimeout is returned when a blocking receive exceeds the timeout.
var ErrTimeout = errors.New("hybrid: receive timed out")

// Config parameterizes the router.
type Config struct {
	// Threshold is the largest payload routed over the low-latency
	// transport. The natural setting is the measured latency crossover
	// of the two substrates (≈500 B for BBP vs Myrinet API, Figure 2).
	Threshold int
	// ReorderCost is the software cost of holding/releasing one message
	// in the resequencing buffer.
	ReorderCost sim.Duration
	// RecvTimeout bounds blocking receives (0 = forever).
	RecvTimeout sim.Duration
}

// DefaultConfig returns the Figure-2-crossover threshold.
func DefaultConfig() Config {
	return Config{
		Threshold:   512,
		ReorderCost: 300 * sim.Nanosecond,
		RecvTimeout: 5 * sim.Second,
	}
}

// Endpoint routes messages across two transports; it implements
// xport.Endpoint itself.
type Endpoint struct {
	low, high xport.Endpoint // same rank on both substrates
	cfg       Config

	// live is the low substrate's membership view (liveness.Provider),
	// nil when it runs no failure detector. Consulted on every routing
	// decision so a suspect or dead ring peer is avoided proactively
	// instead of after a send error (see Send).
	live liveness.View

	// partv is the low substrate's declared-partition view
	// (liveness.PartitionView), nil without the partition machinery.
	// Under a declared partition the detector's verdicts about far-arc
	// peers reflect unreachability, not death, so the proactive steer
	// stands down for them (see Send); reactive failover on an actual
	// send error is kept.
	partv liveness.PartitionView

	sendSeq []uint32 // per destination
	nextSeq []uint32 // per source: next sequence to release
	held    []map[uint32][]byte
	scratch []byte
	stats   Stats
	im      hybInstruments
	tracer  *trace.Recorder
}

// hybInstruments are the router's metrics, keyed by its rank (nil =
// disabled no-ops).
type hybInstruments struct {
	lowSends      *metrics.Counter // hybrid.low_sends
	highSends     *metrics.Counter // hybrid.high_sends
	failovers     *metrics.Counter // hybrid.failovers
	proactiveFail *metrics.Counter // hybrid.proactive_failovers
	subErrors     *metrics.Counter // hybrid.sub_errors
	duplicates    *metrics.Counter // hybrid.duplicates
	heldDepth     *metrics.Gauge   // hybrid.reorder_depth
}

// SetMetrics installs the router's instruments (nil disables). It does
// not reach down into the substrates — install metrics there separately
// if wanted.
func (e *Endpoint) SetMetrics(m *metrics.Registry) {
	if m == nil {
		e.im = hybInstruments{}
		return
	}
	e.im = hybInstruments{
		lowSends:      m.Counter("hybrid.low_sends", e.Rank()),
		highSends:     m.Counter("hybrid.high_sends", e.Rank()),
		failovers:     m.Counter("hybrid.failovers", e.Rank()),
		proactiveFail: m.Counter("hybrid.proactive_failovers", e.Rank()),
		subErrors:     m.Counter("hybrid.sub_errors", e.Rank()),
		duplicates:    m.Counter("hybrid.duplicates", e.Rank()),
		heldDepth:     m.Gauge("hybrid.reorder_depth", e.Rank()),
	}
}

// SetTracer installs a span recorder on the router (nil disables). The
// routing decision and any failover become a span parenting the
// substrate's own send spans. Like SetMetrics it does not reach down
// into the substrates.
func (e *Endpoint) SetTracer(r *trace.Recorder) { e.tracer = r }

// Stats counts the router's fault-tolerance interventions.
type Stats struct {
	// Failovers counts sends rerouted to the other substrate after the
	// size-preferred one returned an error (e.g. BBP buffer exhaustion
	// while a receiver is bypassed).
	Failovers int64
	// SubErrors counts substrate receive errors and runt messages
	// tolerated during polling instead of taking the router down.
	SubErrors int64
	// Duplicates counts already-released sequence numbers discarded by
	// the resequencer (a substrate's recovery layer retransmitting into
	// a stream the router had already moved past).
	Duplicates int64
	// ProactiveFailovers counts sends steered onto the other substrate
	// before any error, because the liveness view reported the
	// destination suspect or dead on the size-preferred one.
	ProactiveFailovers int64
}

// Stats returns a copy of the fault-tolerance counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// New combines a low-latency and a high-bandwidth endpoint of the same
// rank and world size.
func New(low, high xport.Endpoint, cfg Config) (*Endpoint, error) {
	if low.Rank() != high.Rank() || low.Procs() != high.Procs() {
		return nil, fmt.Errorf("hybrid: endpoints disagree: rank %d/%d procs %d/%d",
			low.Rank(), high.Rank(), low.Procs(), high.Procs())
	}
	if cfg.Threshold < 0 || cfg.Threshold > low.MaxMessage()-hdrBytes {
		return nil, fmt.Errorf("hybrid: threshold %d outside the low-latency transport's range", cfg.Threshold)
	}
	n := low.Procs()
	e := &Endpoint{
		low:     low,
		high:    high,
		cfg:     cfg,
		sendSeq: make([]uint32, n),
		nextSeq: make([]uint32, n),
		held:    make([]map[uint32][]byte, n),
		scratch: make([]byte, maxInt(low.MaxMessage(), high.MaxMessage())+hdrBytes),
	}
	for i := range e.held {
		e.held[i] = map[uint32][]byte{}
	}
	if lp, ok := low.(liveness.Provider); ok {
		e.live = lp.Liveness()
	}
	if pv, ok := low.(liveness.PartitionView); ok {
		e.partv = pv
	}
	return e, nil
}

// Partition exposes the low substrate's declared ring partition
// (liveness.PartitionView), so layers above the router (MPI) fence
// partitioned operations instead of misreading them as dead peers.
func (e *Endpoint) Partition() (liveness.PartitionInfo, bool) {
	if e.partv == nil {
		return liveness.PartitionInfo{}, false
	}
	return e.partv.Partition()
}

// partitioned reports whether a declared ring partition makes dst
// unreachable from here (or this side lost quorum entirely).
func (e *Endpoint) partitioned(dst int) bool {
	if e.partv == nil {
		return false
	}
	part, ok := e.partv.Partition()
	return ok && (part.Minority || part.Unreachable(dst))
}

// Liveness exposes the low substrate's membership view, so layers above
// the router (MPI) inherit the ring's failure detector transparently
// (liveness.Provider). Nil when the low substrate runs no detector.
func (e *Endpoint) Liveness() liveness.View { return e.live }

// alive reports whether the liveness view (if any) considers dst
// healthy on the ring; without a view everyone is presumed healthy.
func (e *Endpoint) alive(dst int) bool {
	return e.live == nil || e.live.State(dst) == liveness.Alive
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Rank returns the endpoint's process number.
func (e *Endpoint) Rank() int { return e.low.Rank() }

// Procs returns the world size.
func (e *Endpoint) Procs() int { return e.low.Procs() }

// MaxMessage is bounded by the high-bandwidth substrate.
func (e *Endpoint) MaxMessage() int { return e.high.MaxMessage() - hdrBytes }

// NativeMcast reports whether the low-latency substrate replicates in
// hardware (it does, for BBP); multicasts route over it regardless of
// size threshold only when they fit.
func (e *Endpoint) NativeMcast() bool { return e.low.NativeMcast() }

// route picks the substrate for a payload size.
func (e *Endpoint) route(n int) xport.Endpoint {
	if n <= e.cfg.Threshold {
		return e.low
	}
	return e.high
}

// Send routes data to dst by size, tagging it with the stream sequence.
func (e *Endpoint) Send(p *sim.Proc, dst int, data []byte) error {
	if dst == e.Rank() || dst < 0 || dst >= e.Procs() {
		return fmt.Errorf("hybrid: bad destination %d", dst)
	}
	seq := e.sendSeq[dst]
	e.sendSeq[dst]++
	msg := make([]byte, hdrBytes+len(data))
	binary.LittleEndian.PutUint32(msg, seq)
	copy(msg[hdrBytes:], data)
	sub := e.route(len(data))
	proactive := false
	if sub == e.low && !e.alive(dst) && len(msg) <= e.high.MaxMessage() && !e.partitioned(dst) {
		// The ring's failure detector doubts dst (suspect or dead):
		// steer the send onto the high-bandwidth substrate now rather
		// than discover the problem through a send error or a
		// billboard buffer pinned behind a missing ACK. A refuted
		// suspicion costs one detour; an unheeded one costs a retry
		// storm.
		sub = e.high
		proactive = true
		e.stats.ProactiveFailovers++
		e.im.proactiveFail.Inc()
	}
	via := "low"
	if sub == e.low {
		e.im.lowSends.Inc()
	} else {
		e.im.highSends.Inc()
		via = "high"
	}
	span := e.tracer.BeginSpan(p.Now(), trace.Hybrid, e.Rank(), "route", 0, e.tracer.Parent(), "dst=%d len=%d via=%s seq=%d", dst, len(data), via, seq)
	if proactive {
		e.tracer.EmitMsg(p.Now(), trace.Hybrid, e.Rank(), "proactive-failover", 0, span, "dst=%d state=%s", dst, e.live.State(dst))
	}
	e.tracer.PushParent(span)
	err := sub.Send(p, dst, msg)
	e.tracer.PopParent()
	if err == nil {
		e.tracer.EndSpan(p.Now(), trace.Hybrid, e.Rank(), "route-end", span, 0, "via=%s", via)
		return nil
	}
	// Failover: the sequence tag makes the substrates interchangeable —
	// the resequencer releases in stream order no matter which network a
	// message crossed — so a send the preferred substrate refuses can
	// retry on the other, provided it fits.
	alt := e.high
	altName := "high"
	if sub == e.high {
		alt = e.low
		altName = "low"
	}
	if len(msg) > alt.MaxMessage() {
		e.tracer.EndSpan(p.Now(), trace.Hybrid, e.Rank(), "route-end", span, 0, "failed via=%s: %v", via, err)
		return err
	}
	e.tracer.EmitMsg(p.Now(), trace.Hybrid, e.Rank(), "failover", 0, span, "%s->%s: %v", via, altName, err)
	e.tracer.PushParent(span)
	altErr := alt.Send(p, dst, msg)
	e.tracer.PopParent()
	if altErr == nil {
		e.stats.Failovers++
		e.im.failovers.Inc()
		e.tracer.EndSpan(p.Now(), trace.Hybrid, e.Rank(), "route-end", span, 0, "failover via=%s", altName)
		return nil
	}
	e.tracer.EndSpan(p.Now(), trace.Hybrid, e.Rank(), "route-end", span, 0, "failed both: %v", err)
	return err
}

// Mcast replicates one message to several destinations over the
// low-latency substrate when it fits, else loops over Send.
func (e *Endpoint) Mcast(p *sim.Proc, dsts []int, data []byte) error {
	allAlive := true
	for _, d := range dsts {
		if !e.alive(d) {
			allAlive = false
			break
		}
	}
	if len(data) <= e.cfg.Threshold && e.low.NativeMcast() && allAlive {
		// One posted buffer, but per-destination sequence numbers must
		// still advance identically; BBP flags already fan out, so tag
		// with each stream's sequence only if they agree — otherwise
		// fall back to unicasts.
		seq := e.sendSeq[dsts[0]]
		agree := true
		for _, d := range dsts {
			if e.sendSeq[d] != seq {
				agree = false
				break
			}
		}
		if agree {
			for _, d := range dsts {
				e.sendSeq[d]++
			}
			msg := make([]byte, hdrBytes+len(data))
			binary.LittleEndian.PutUint32(msg, seq)
			copy(msg[hdrBytes:], data)
			return e.low.Mcast(p, dsts, msg)
		}
	}
	for _, d := range dsts {
		if err := e.Send(p, d, data); err != nil {
			return err
		}
	}
	return nil
}

// poll pulls at most one message from each substrate for src into the
// reorder buffer.
func (e *Endpoint) poll(p *sim.Proc, src int) {
	for _, sub := range []xport.Endpoint{e.low, e.high} {
		n, ok, err := sub.TryRecv(p, src, e.scratch)
		if err != nil {
			// A faulted substrate must not take the router down; the
			// stream heals via the substrate's own recovery or failover.
			e.stats.SubErrors++
			e.im.subErrors.Inc()
			continue
		}
		if !ok {
			continue
		}
		if n < hdrBytes {
			e.stats.SubErrors++
			e.im.subErrors.Inc()
			continue
		}
		seq := binary.LittleEndian.Uint32(e.scratch)
		if int32(seq-e.nextSeq[src]) < 0 {
			// Already released: a recovery layer below retransmitted
			// into a stream the resequencer has moved past.
			e.stats.Duplicates++
			e.im.duplicates.Inc()
			continue
		}
		p.Delay(e.cfg.ReorderCost)
		e.held[src][seq] = append([]byte(nil), e.scratch[hdrBytes:n]...)
		e.im.heldDepth.Set(int64(len(e.held[src])))
	}
}

// TryRecv polls once for the next in-sequence message from src.
func (e *Endpoint) TryRecv(p *sim.Proc, src int, buf []byte) (int, bool, error) {
	if src == e.Rank() || src < 0 || src >= e.Procs() {
		return 0, false, fmt.Errorf("hybrid: bad source %d", src)
	}
	if msg, ok := e.held[src][e.nextSeq[src]]; ok {
		return e.release(src, msg, buf)
	}
	e.poll(p, src)
	if msg, ok := e.held[src][e.nextSeq[src]]; ok {
		return e.release(src, msg, buf)
	}
	return 0, false, nil
}

func (e *Endpoint) release(src int, msg []byte, buf []byte) (int, bool, error) {
	if len(msg) > len(buf) {
		return 0, false, fmt.Errorf("hybrid: %d-byte message into %d-byte buffer", len(msg), len(buf))
	}
	delete(e.held[src], e.nextSeq[src])
	e.nextSeq[src]++
	copy(buf, msg)
	return len(msg), true, nil
}

// Recv blocks for the next in-sequence message from src.
func (e *Endpoint) Recv(p *sim.Proc, src int, buf []byte) (int, error) {
	deadline := sim.Time(-1)
	if e.cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(e.cfg.RecvTimeout)
	}
	for {
		n, ok, err := e.TryRecv(p, src, buf)
		if err != nil {
			return 0, err
		}
		if ok {
			return n, nil
		}
		if deadline >= 0 && p.Now() > deadline {
			return 0, ErrTimeout
		}
	}
}

// RecvAny blocks for the next releasable message from any source.
func (e *Endpoint) RecvAny(p *sim.Proc, buf []byte) (src, n int, err error) {
	deadline := sim.Time(-1)
	if e.cfg.RecvTimeout > 0 {
		deadline = p.Now().Add(e.cfg.RecvTimeout)
	}
	for {
		for s := 0; s < e.Procs(); s++ {
			if s == e.Rank() {
				continue
			}
			n, ok, err := e.TryRecv(p, s, buf)
			if err != nil {
				return 0, 0, err
			}
			if ok {
				return s, n, nil
			}
		}
		if deadline >= 0 && p.Now() > deadline {
			return 0, 0, ErrTimeout
		}
	}
}

var _ xport.Endpoint = (*Endpoint)(nil)
