package timeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xport/oracle"
)

// runScripted drives the standard 0→1 message stream on a 4-node
// SCRAMNet cluster under an arbitrary fault script, with tracing and
// snapshot streaming on, and returns the observability artifacts. The
// run is oracle-checked.
func runScripted(t *testing.T, script *fault.Script, messages int) (*trace.Recorder, []metrics.StreamPoint) {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	rec := trace.New()
	reg := metrics.New()
	c, err := cluster.New(k, cluster.Options{
		Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script,
		Metrics: reg, Trace: rec, SnapshotEvery: 100 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := oracle.New()
	tx, rx := o.Wrap(c.Endpoints[0]), o.Wrap(c.Endpoints[1])
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < messages; i++ {
			msg := make([]byte, 32)
			msg[0] = byte(i + 1)
			if err := tx.Send(p, 1, msg); err != nil {
				panic(err)
			}
			p.Delay(25 * sim.Microsecond)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 33)
		for i := 0; i < messages; i++ {
			if _, err := rx.Recv(p, 0, buf); err != nil {
				panic(err)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatalf("scripted run %v: %v", script, err)
	}
	if st, err := o.Check(true); err != nil {
		t.Fatalf("scripted run %v violated delivery: %v (%v)", script, err, st)
	}
	var points []metrics.StreamPoint
	if c.Stream != nil {
		points = c.Stream.Points()
	}
	return rec, points
}

// checkSpanTree asserts the structural invariants of the causal span
// stream: unique span ids, no End without its Begin, every consumed
// message rooted in a post, no orphan ACKs, retransmits hanging off
// their message's post span.
func checkSpanTree(t *testing.T, rec *trace.Recorder) {
	t.Helper()
	if d := rec.Drops(); d != 0 {
		t.Fatalf("unbounded recorder reports %d drops", d)
	}
	begun := map[trace.SpanID]trace.Event{}
	posted := map[uint64]bool{}
	consumed := 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.Begin:
			if e.Span == 0 {
				t.Fatalf("Begin event %q with zero span id", e.Name)
			}
			if _, dup := begun[e.Span]; dup {
				t.Fatalf("span id %d begun twice (%q)", e.Span, e.Name)
			}
			begun[e.Span] = e
			if e.Name == "post" {
				posted[e.Msg] = true
			}
		case trace.End:
			if _, ok := begun[e.Span]; !ok {
				t.Fatalf("End event %q closes span %d that never began", e.Name, e.Span)
			}
		}
	}
	for _, e := range rec.Events() {
		switch e.Name {
		case "consume":
			consumed++
			if !posted[e.Msg] {
				t.Fatalf("consume of msg %d:%d has no post ancestor",
					trace.MsgSender(e.Msg), trace.MsgSeq(e.Msg))
			}
			if b := begun[e.Span]; b.Name != "drain" || b.Msg != e.Msg {
				t.Fatalf("consume closes span %d (%q, msg %d), want this msg's drain", e.Span, b.Name, b.Msg)
			}
		case "ack":
			b, ok := begun[e.Parent]
			if !ok || b.Name != "drain" || b.Msg != e.Msg {
				t.Fatalf("orphan ack: parent span %d (%q) is not msg %d's drain", e.Parent, b.Name, e.Msg)
			}
		case "retransmit":
			if e.Kind != trace.Begin {
				continue
			}
			b, ok := begun[e.Parent]
			if !ok || b.Name != "post" || b.Msg != e.Msg {
				t.Fatalf("retransmit of msg %d not parented under its post span", e.Msg)
			}
			if !posted[e.Msg] {
				t.Fatalf("retransmit of never-posted msg %d", e.Msg)
			}
		}
	}
	if consumed == 0 {
		t.Fatal("run traced no consumes at all")
	}
}

func TestSpanTreeIntegrityUnderFaultBattery(t *testing.T) {
	for _, seed := range []uint64{7, 21, 1999} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			script := fault.Generate(seed, fault.GenConfig{
				Horizon:      2 * sim.Millisecond,
				Nodes:        4,
				LossWindows:  2,
				MaxLossRate:  0.3,
				NodeFailures: 1,
				Protect:      []int{0, 1}, // the communicating pair survives
			})
			rec, points := runScripted(t, script, 20)
			checkSpanTree(t, rec)
			if len(points) < 2 {
				t.Fatalf("snapshot stream captured %d points", len(points))
			}
		})
	}
}

func TestSpanTreeIntegrityFaultFree(t *testing.T) {
	rec, _ := runScripted(t, nil, 10)
	checkSpanTree(t, rec)
	// Fault-free: every message delivered without recovery work.
	for _, b := range Breakdowns(rec.Events()) {
		if !b.Delivered || b.Retransmits != 0 {
			t.Fatalf("fault-free message %d:%d delivered=%v retransmits=%d",
				b.Sender, b.Seq, b.Delivered, b.Retransmits)
		}
		if b.Publish() <= 0 || b.Transit() <= 0 || b.Drain() <= 0 {
			t.Fatalf("degenerate breakdown for %d:%d: %+v", b.Sender, b.Seq, b)
		}
		if b.Publish()+b.Transit()+b.Drain() != b.Total() {
			t.Fatalf("segments do not telescope for %d:%d", b.Sender, b.Seq)
		}
		if !b.AckSeen {
			t.Fatalf("message %d:%d consumed without a traced ack", b.Sender, b.Seq)
		}
	}
}

// TestSnapshotStreamDeterminism is the full-stack version of the unit
// test in internal/metrics: the same seeded fault sweep must serialize
// to byte-identical JSONL, run to run (and under -race via make race).
func TestSnapshotStreamDeterminism(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Rate = 0.10
	run := func() []byte {
		res, err := RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := metrics.WritePointsJSONL(&buf, res.Points); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("sweep produced an empty snapshot stream")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different snapshot JSONL (%d vs %d bytes)", len(a), len(b))
	}
}

func TestCoSpikesFlagsRetryStorm(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Rate = 0.15
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("15% loss produced no co-spike interval; the correlator or the streams broke")
	}
	for _, iv := range res.Intervals {
		if iv.DRetrans <= 0 || iv.DBusyNS <= 0 {
			t.Fatalf("flagged interval without both spikes: %v", iv)
		}
		if iv.To <= iv.From {
			t.Fatalf("degenerate interval %v", iv)
		}
	}
	// Fault-free control: no retransmissions, so nothing to flag.
	cfg.Rate = 0
	ctl, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctl.Intervals) != 0 {
		t.Fatalf("fault-free run flagged %d co-spike intervals", len(ctl.Intervals))
	}
}

func TestRunAnatomyAgreesWithCostModel(t *testing.T) {
	for _, size := range []int{4, 64} {
		res, err := RunAnatomy(size, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Mismatches) != 0 {
			t.Fatalf("size %d: span decomposition disagrees with the cost model: %v", size, res.Mismatches)
		}
		if res.Breakdown.Total() <= 0 || res.Breakdown.Total() > res.OneWay {
			t.Fatalf("size %d: post→consume %s outside (0, one-way %s]", size, res.Breakdown.Total(), res.OneWay)
		}
	}
}

func TestBreakdownsFromSyntheticEvents(t *testing.T) {
	rec := trace.New()
	msg := trace.MsgID(2, 7)
	post := rec.BeginSpan(100, trace.BBP, 2, "post", msg, 0, "")
	rec.EmitMsg(150, trace.BBP, 2, "flag-set", msg, post, "")
	rec.EndSpan(160, trace.BBP, 2, "send-end", post, msg, "")
	rt := rec.BeginSpan(300, trace.BBP, 2, "retransmit", msg, post, "")
	rec.EndSpan(320, trace.BBP, 2, "retransmit-end", rt, msg, "")
	rec.EmitMsg(400, trace.BBP, 3, "detect", msg, 0, "")
	drain := rec.BeginSpan(400, trace.BBP, 3, "drain", msg, 0, "")
	rec.EmitMsg(450, trace.BBP, 3, "ack", msg, drain, "")
	rec.EndSpan(460, trace.BBP, 3, "consume", drain, msg, "")
	bds := Breakdowns(rec.Events())
	if len(bds) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bds))
	}
	b := bds[0]
	if b.Sender != 2 || b.Seq != 7 || b.Receiver != 3 {
		t.Fatalf("identity wrong: %+v", b)
	}
	if b.Publish() != 50 || b.Transit() != 250 || b.Drain() != 60 || b.Total() != 360 {
		t.Fatalf("segments wrong: publish=%d transit=%d drain=%d total=%d",
			b.Publish(), b.Transit(), b.Drain(), b.Total())
	}
	if b.Retransmits != 1 || !b.AckSeen {
		t.Fatalf("recovery accounting wrong: %+v", b)
	}
}

func TestCoSpikesMedianBaseline(t *testing.T) {
	reg := metrics.New()
	mk := func(tns int64, retrans, busy int64) metrics.StreamPoint {
		reg.Counter("bbp.retransmits", 0).Add(retrans - mustCounter(reg, "bbp.retransmits"))
		reg.Counter("pci.busy_ns", 0).Add(busy - mustCounter(reg, "pci.busy_ns"))
		return metrics.StreamPoint{T: tns, Snap: reg.Snapshot()}
	}
	// Four windows: busy grows by 100 each, retransmits only in the
	// third — but its busy growth equals the median, so nothing flags.
	pts := []metrics.StreamPoint{
		mk(0, 0, 0), mk(100, 0, 100), mk(200, 0, 200), mk(300, 1, 300), mk(400, 1, 400),
	}
	if ivs := CoSpikes(pts); len(ivs) != 0 {
		t.Fatalf("median-growth window must not flag, got %v", ivs)
	}
	// Now a genuine storm: retransmits and a 5× busy spike together.
	pts = append(pts, mk(500, 4, 900))
	ivs := CoSpikes(pts)
	if len(ivs) != 1 {
		t.Fatalf("want exactly the storm window, got %v", ivs)
	}
	if ivs[0].From != 400 || ivs[0].To != 500 || ivs[0].DRetrans != 3 || ivs[0].DBusyNS != 500 {
		t.Fatalf("wrong interval: %v", ivs[0])
	}
	if CoSpikes(nil) != nil || CoSpikes(pts[:1]) != nil {
		t.Fatal("degenerate inputs must yield no intervals")
	}
}

func mustCounter(reg *metrics.Registry, name string) int64 {
	v, _ := reg.Snapshot().Counter(name, 0)
	return v
}

func TestChromeTraceExport(t *testing.T) {
	res, err := RunAnatomy(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res.Rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  string         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	spans, instants := 0, 0
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.Tid == "" {
			t.Fatalf("event %q missing tid", e.Name)
		}
		if i > 0 && e.Ts < doc.TraceEvents[i-1].Ts {
			t.Fatal("events not time-sorted")
		}
	}
	if want := len(res.Rec.Spans()); spans != want {
		t.Fatalf("exported %d X events, recorder has %d spans", spans, want)
	}
	if instants == 0 {
		t.Fatal("no instant events exported")
	}
}
