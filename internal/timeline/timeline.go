// Package timeline joins the two observability streams the testbed can
// produce — the causal span trace (internal/trace) and the periodic
// virtual-time metrics snapshot stream (internal/metrics.Stream) — into
// three artifacts:
//
//   - per-message latency breakdowns rebuilt from spans alone
//     (Breakdowns), reproducing the paper's §5 anatomy decomposition
//     without consulting the cost model;
//   - a retry-storm / bus-saturation correlator (CoSpikes) that flags
//     snapshot intervals where the cluster's retransmission counter and
//     its aggregate PCI bus occupancy spike together — the signature of
//     the retry extension fighting a lossy ring;
//   - Chrome trace_event JSON export (WriteChromeTrace) so any run can
//     be inspected in chrome://tracing or Perfetto.
//
// The package also hosts the two canned scenarios cmd/timeline runs:
// RunAnatomy (one traced message, spans cross-checked against the
// counter × cost-model figure cmd/anatomy computes) and RunSweep (the
// EXPERIMENTS.md E6 fault-sweep shape with tracing and snapshot
// streaming switched on).
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/pci"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xport/oracle"
)

// Breakdown is one message's life reconstructed purely from its trace
// events: the span boundaries carry everything needed, no cost model or
// counter is consulted. Times are zero-valued until the matching flag
// reports the boundary was observed (a capped recorder may have evicted
// the early events of an old message).
type Breakdown struct {
	Msg    uint64
	Sender int
	Seq    uint32
	// Receiver is the node of the first consume (or first detect when
	// the message never finished draining); -1 when neither was seen.
	Receiver int

	Post    sim.Time // "post" Begin on the sender
	FlagSet sim.Time // last "flag-set" on the sender
	Detect  sim.Time // first "detect" on the receiver
	Consume sim.Time // last "consume" End on the receiver

	Posted, Flagged, Detected, Delivered bool

	// Retransmits counts "retransmit" spans opened for this message;
	// AckSeen reports whether the receiver's "ack" instant was traced.
	Retransmits int
	AckSeen     bool
}

// Publish is the sender-side post→flag-set segment (0 if unbounded).
func (b Breakdown) Publish() sim.Duration {
	if !b.Posted || !b.Flagged {
		return 0
	}
	return b.FlagSet.Sub(b.Post)
}

// Transit is the flag-set→detect segment: wire replication plus the
// receiver's poll-phase alignment and descriptor read.
func (b Breakdown) Transit() sim.Duration {
	if !b.Flagged || !b.Detected {
		return 0
	}
	return b.Detect.Sub(b.FlagSet)
}

// Drain is the detect→consume segment: payload read plus ACK.
func (b Breakdown) Drain() sim.Duration {
	if !b.Detected || !b.Delivered {
		return 0
	}
	return b.Consume.Sub(b.Detect)
}

// Total is the post→consume one-way latency.
func (b Breakdown) Total() sim.Duration {
	if !b.Posted || !b.Delivered {
		return 0
	}
	return b.Consume.Sub(b.Post)
}

// Breakdowns rebuilds one Breakdown per message id present in evs,
// ordered by id (sender rank, then send sequence). Events without
// message attribution are ignored.
func Breakdowns(evs []trace.Event) []Breakdown {
	by := map[uint64]*Breakdown{}
	get := func(msg uint64) *Breakdown {
		b, ok := by[msg]
		if !ok {
			b = &Breakdown{Msg: msg, Sender: trace.MsgSender(msg), Seq: trace.MsgSeq(msg), Receiver: -1}
			by[msg] = b
		}
		return b
	}
	for _, e := range evs {
		if e.Msg == 0 {
			continue
		}
		b := get(e.Msg)
		switch e.Name {
		case "post":
			if e.Kind == trace.Begin && !b.Posted {
				b.Post, b.Posted = e.T, true
			}
		case "flag-set":
			b.FlagSet, b.Flagged = e.T, true // keep the last
		case "detect":
			if !b.Detected {
				b.Detect, b.Detected = e.T, true
				b.Receiver = e.Node
			}
		case "consume":
			if e.Kind == trace.End {
				b.Consume, b.Delivered = e.T, true
				b.Receiver = e.Node
			}
		case "retransmit":
			if e.Kind == trace.Begin {
				b.Retransmits++
			}
		case "ack":
			b.AckSeen = true
		}
	}
	out := make([]Breakdown, 0, len(by))
	for _, b := range by {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Msg < out[j].Msg })
	return out
}

// RenderBreakdowns writes the per-message decomposition table. Messages
// whose early events were evicted by a capped recorder show "—" for the
// unbounded segments.
func RenderBreakdowns(w io.Writer, bds []Breakdown) {
	fmt.Fprintf(w, "%-10s %4s %4s  %12s %14s %12s %12s %6s\n",
		"msg", "src", "dst", "publish", "transit+detect", "drain", "total", "rexmit")
	seg := func(d sim.Duration, ok bool) string {
		if !ok {
			return "—"
		}
		return d.String()
	}
	for _, b := range bds {
		dst := "—"
		if b.Receiver >= 0 {
			dst = fmt.Sprintf("%d", b.Receiver)
		}
		fmt.Fprintf(w, "%-10s %4d %4s  %12s %14s %12s %12s %6d\n",
			fmt.Sprintf("%d:%d", b.Sender, b.Seq), b.Sender, dst,
			seg(b.Publish(), b.Posted && b.Flagged),
			seg(b.Transit(), b.Flagged && b.Detected),
			seg(b.Drain(), b.Detected && b.Delivered),
			seg(b.Total(), b.Posted && b.Delivered),
			b.Retransmits)
	}
}

// Interval is one snapshot-stream window the correlator flagged: the
// cluster retransmitted during it AND aggregate bus occupancy grew
// faster than the run's median rate — retry traffic and bus saturation
// spiking together.
type Interval struct {
	From, To sim.Time
	// DRetrans is the growth of the cluster-rollup bbp.retransmits
	// counter across the window; DBusyNS the growth of pci.busy_ns.
	DRetrans int64
	DBusyNS  int64
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s] Δretransmits=%d Δbusy=%s",
		iv.From.Sub(sim.Time(0)), iv.To.Sub(sim.Time(0)), iv.DRetrans, sim.Duration(iv.DBusyNS))
}

// CoSpikes scans consecutive snapshot-stream points for windows where
// the retry machinery and the I/O buses were simultaneously busy:
// Δbbp.retransmits > 0 and Δpci.busy_ns above the median per-window
// growth. The median baseline makes the test self-calibrating — steady
// polling traffic sets the floor, and only windows where the bus worked
// measurably harder than usual while retries fired are flagged.
func CoSpikes(points []metrics.StreamPoint) []Interval {
	if len(points) < 2 {
		return nil
	}
	type win struct {
		from, to        sim.Time
		dRetrans, dBusy int64
	}
	rollup := func(p metrics.StreamPoint, name string) int64 {
		v, _ := p.Snap.Rollup().Counter(name, metrics.NodeGlobal)
		return v
	}
	wins := make([]win, 0, len(points)-1)
	busies := make([]int64, 0, len(points)-1)
	for i := 1; i < len(points); i++ {
		w := win{
			from:     sim.Time(points[i-1].T),
			to:       sim.Time(points[i].T),
			dRetrans: rollup(points[i], "bbp.retransmits") - rollup(points[i-1], "bbp.retransmits"),
			dBusy:    rollup(points[i], "pci.busy_ns") - rollup(points[i-1], "pci.busy_ns"),
		}
		wins = append(wins, w)
		busies = append(busies, w.dBusy)
	}
	sort.Slice(busies, func(i, j int) bool { return busies[i] < busies[j] })
	median := busies[len(busies)/2]
	if len(busies)%2 == 0 {
		median = (busies[len(busies)/2-1] + busies[len(busies)/2]) / 2
	}
	var out []Interval
	for _, w := range wins {
		if w.dRetrans > 0 && w.dBusy > median {
			out = append(out, Interval{From: w.from, To: w.to, DRetrans: w.dRetrans, DBusyNS: w.dBusy})
		}
	}
	return out
}

// RenderIntervals writes the correlation table.
func RenderIntervals(w io.Writer, ivs []Interval) {
	fmt.Fprintf(w, "%-14s %-14s %12s %14s\n", "from", "to", "Δretransmits", "Δpci.busy")
	for _, iv := range ivs {
		fmt.Fprintf(w, "%-14s %-14s %12d %14s\n",
			iv.From.Sub(sim.Time(0)), iv.To.Sub(sim.Time(0)), iv.DRetrans, sim.Duration(iv.DBusyNS))
	}
}

// chromeEvent is one trace_event JSON object. encoding/json preserves
// field order and sorts Args keys, so the export is byte-stable.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds, Chrome's unit
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  string         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the recorder's contents in Chrome
// trace_event format: spans become "X" complete events (pid = node,
// tid = category), instants become "i" events. Load the output in
// chrome://tracing or Perfetto to scrub through a run visually.
func WriteChromeTrace(w io.Writer, rec *trace.Recorder) error {
	var evs []chromeEvent
	us := func(t sim.Time) float64 { return t.Sub(sim.Time(0)).Microseconds() }
	spanned := map[trace.SpanID]bool{}
	for _, s := range rec.Spans() {
		spanned[s.ID] = true
		dur := 0.0
		name := s.Name
		if s.Ended {
			dur = s.End.Sub(s.Start).Microseconds()
		} else {
			name += " (unterminated)"
		}
		args := map[string]any{"span": uint64(s.ID), "detail": s.Detail}
		if s.Parent != 0 {
			args["parent"] = uint64(s.Parent)
		}
		if s.Msg != 0 {
			args["msg"] = fmt.Sprintf("%d:%d", trace.MsgSender(s.Msg), trace.MsgSeq(s.Msg))
		}
		evs = append(evs, chromeEvent{
			Name: name, Ph: "X", Ts: us(s.Start), Dur: dur,
			Pid: s.Node, Tid: string(s.Cat), Args: args,
		})
	}
	for _, e := range rec.Events() {
		if e.Kind != trace.Instant {
			continue
		}
		args := map[string]any{"detail": e.Detail}
		if e.Parent != 0 {
			args["parent"] = uint64(e.Parent)
		}
		if e.Msg != 0 {
			args["msg"] = fmt.Sprintf("%d:%d", trace.MsgSender(e.Msg), trace.MsgSeq(e.Msg))
		}
		evs = append(evs, chromeEvent{
			Name: e.Name, Ph: "i", Ts: us(e.T),
			Pid: e.Node, Tid: string(e.Cat), S: "t", Args: args,
		})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// AnatomyResult is RunAnatomy's output: the traced run plus the
// span-derived breakdown and the independently derived counter ×
// cost-model figures it must agree with.
type AnatomyResult struct {
	Rec       *trace.Recorder
	Metrics   *metrics.Registry
	Breakdown Breakdown
	// ModelPublish / ModelDrain are the cost-model predictions for the
	// same segments (cmd/anatomy's derivation); DetectFloor is the
	// deterministic lower bound of the transit+detect segment.
	ModelPublish sim.Duration
	ModelDrain   sim.Duration
	DetectFloor  sim.Duration
	OneWay       sim.Duration
	// Mismatches lists every disagreement between the span-derived
	// decomposition and the cost model; empty means the two independent
	// reconstructions tell one story.
	Mismatches []string
}

// RunAnatomy traces one size-byte BBP message from node 0 to node 1 on
// an n-node ring — the scenario behind the paper's 7.8 µs figure — and
// cross-checks the span-derived breakdown against the counter ×
// cost-model decomposition cmd/anatomy computes.
func RunAnatomy(size, nodes int) (*AnatomyResult, error) {
	k := sim.NewKernel()
	defer k.Close()
	ring, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
	if err != nil {
		return nil, err
	}
	ring.SetSingleWriterCheck(true)
	rec := trace.New()
	m := metrics.New()
	bcfg := core.DefaultConfig()
	sys, err := core.New(ring, bcfg, core.WithTracer(rec), core.WithMetrics(m))
	if err != nil {
		return nil, err
	}
	ring.SetTracer(rec)
	ring.SetMetrics(m)
	eps := make([]*core.Endpoint, nodes)
	for i := range eps {
		if eps[i], err = sys.Attach(i); err != nil {
			return nil, err
		}
	}
	var sent, done sim.Time
	k.Spawn("tx", func(p *sim.Proc) {
		p.Delay(10 * sim.Microsecond) // receiver already polling
		sent = p.Now()
		if err := eps[0].Send(p, 1, make([]byte, size)); err != nil {
			panic(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, size+1)
		if _, err := eps[1].Recv(p, 0, buf); err != nil {
			panic(err)
		}
		done = p.Now()
	})
	if err := k.Run(); err != nil {
		return nil, err
	}

	res := &AnatomyResult{Rec: rec, Metrics: m, OneWay: done.Sub(sent)}
	bds := Breakdowns(rec.Events())
	if len(bds) != 1 {
		return nil, fmt.Errorf("timeline: expected 1 traced message, got %d", len(bds))
	}
	res.Breakdown = bds[0]

	// The independent reconstruction: word counts × configured bus
	// transaction costs, exactly as cmd/anatomy derives them.
	buscfg := ring.NIC(0).Bus().Config()
	descW := int64(3)
	if bcfg.Retry.Enabled {
		descW = 4
	}
	dmaSend := size > 0 && size >= bcfg.Thresholds.SendDMA
	dmaRecv := size > 0 && size >= bcfg.Thresholds.RecvDMA
	res.ModelPublish = sim.Duration(descW+1) * buscfg.PIOWriteWord
	if dmaSend {
		res.ModelPublish += buscfg.DMASetup + sim.Duration(size)*buscfg.DMAPerByte + buscfg.DMACompletionCheck
	} else if size > 0 {
		res.ModelPublish += sim.Duration(pci.WordsFor(size)) * buscfg.PIOWriteWord
	}
	res.ModelDrain = buscfg.PIOWriteWord // ACK toggle
	if dmaRecv {
		res.ModelDrain += buscfg.DMASetup + sim.Duration(size)*buscfg.DMAPerByte + buscfg.DMACompletionCheck
	} else if size > 0 {
		res.ModelDrain += sim.Duration(pci.WordsFor(size)) * buscfg.PIOReadWord
	}
	res.DetectFloor = sim.Duration(descW)*buscfg.PIOReadWord + bcfg.Costs.RecvBookkeeping

	b := res.Breakdown
	mismatch := func(format string, args ...any) {
		res.Mismatches = append(res.Mismatches, fmt.Sprintf(format, args...))
	}
	if !b.Posted || !b.Flagged || !b.Detected || !b.Delivered {
		mismatch("span stream incomplete: posted=%v flagged=%v detected=%v delivered=%v",
			b.Posted, b.Flagged, b.Detected, b.Delivered)
		return res, nil
	}
	fifoSafe := size+int(descW+1)*4 <= ring.NIC(0).NetworkConfig().TxFIFOBytes
	if fifoSafe && b.Publish() != res.ModelPublish {
		mismatch("publish span %s != cost model %s", b.Publish(), res.ModelPublish)
	}
	if !fifoSafe && b.Publish() < res.ModelPublish {
		mismatch("publish span %s below its bus cost floor %s", b.Publish(), res.ModelPublish)
	}
	if b.Drain() != res.ModelDrain {
		mismatch("drain span %s != cost model %s", b.Drain(), res.ModelDrain)
	}
	if b.Transit() < res.DetectFloor {
		mismatch("transit+detect %s below the %s descriptor+bookkeeping floor", b.Transit(), res.DetectFloor)
	}
	if total := b.Publish() + b.Transit() + b.Drain(); total != b.Total() {
		mismatch("segments %s do not telescope to post→consume %s", total, b.Total())
	}
	if b.Total() > res.OneWay {
		mismatch("post→consume %s exceeds the measured one-way %s", b.Total(), res.OneWay)
	}

	// Burst-aware counter identities, mirroring cmd/anatomy: the
	// receiver's single-word PIO reads must equal the poll words not
	// moved by wide reads plus descriptor and PIO-drained payload, and
	// every node's bus occupancy must equal its counters times the
	// transaction costs with bursts priced as one round trip plus data
	// phases.
	snap := m.Snapshot()
	cnt := func(name string, node int) int64 { v, _ := snap.Counter(name, node); return v }
	dataRdW := int64(0)
	if size > 0 && !dmaRecv {
		dataRdW = int64(pci.WordsFor(size))
	}
	rd := cnt("pci.pio_read_words", 1)
	pollW := cnt("bbp.poll_words", 1)
	burstPollW := cnt("bbp.burst_poll_words", 1)
	if want := (pollW - burstPollW) + descW + dataRdW; rd != want {
		mismatch("receiver read %d single PIO words; cost model predicts %d (poll words %d−%d + desc %d + data %d)",
			rd, want, pollW, burstPollW, descW, dataRdW)
	}
	if bursts := cnt("pci.pio_read_bursts", 1); bursts != cnt("bbp.burst_polls", 1) {
		mismatch("pci saw %d read bursts but BBP issued %d burst polls", bursts, cnt("bbp.burst_polls", 1))
	}
	for i := 0; i < nodes; i++ {
		wr := cnt("pci.pio_write_words", i)
		rdw := cnt("pci.pio_read_words", i)
		bursts := cnt("pci.pio_read_bursts", i)
		burstW := cnt("pci.pio_read_burst_words", i)
		dma := cnt("pci.dma_bytes", i)
		want := wr*int64(buscfg.PIOWriteWord) + rdw*int64(buscfg.PIOReadWord) +
			bursts*int64(buscfg.PIOReadWord) + (burstW-bursts)*int64(buscfg.PIOReadBurstWord) +
			dma*int64(buscfg.DMAPerByte)
		if busy := cnt("pci.busy_ns", i); busy != want {
			mismatch("node %d pci.busy_ns %d != counters × cost model %d", i, busy, want)
		}
	}
	return res, nil
}

// SweepConfig parameterizes RunSweep. The zero value is completed by
// DefaultSweepConfig.
type SweepConfig struct {
	Rate          float64      // ring packet-drop probability (0 = fault-free)
	Seed          uint64       // fault-script + drop-stream seed
	Messages      int          // timed sends node 0 → node 1
	Bytes         int          // payload size
	Gap           sim.Duration // inter-send spacing
	SnapshotEvery sim.Duration // snapshot-stream period
	TraceCap      int          // 0 = unbounded recorder
	// SampleEvery > 1 installs a head-based sampler keeping every n-th
	// message id: sampled messages retain complete span trees for the
	// whole run, unsampled ids are absent by design (Breakdowns simply
	// never sees their events — they are not "dropped").
	SampleEvery int
}

// DefaultSweepConfig mirrors the E6 fault-sweep point (30 × 32 B
// messages, 25 µs apart, seed 1999) with a 100 µs snapshot cadence.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Seed:          1999,
		Messages:      30,
		Bytes:         32,
		Gap:           25 * sim.Microsecond,
		SnapshotEvery: 100 * sim.Microsecond,
	}
}

// SweepResult is one fully observed fault-sweep run.
type SweepResult struct {
	Rec        *trace.Recorder
	Points     []metrics.StreamPoint
	Breakdowns []Breakdown
	Intervals  []Interval
	Sent       int
	Delivered  int
}

// RunSweep executes the E6 fault-sweep scenario — 4-node SCRAMNet ring,
// retry-enabled BBP, a loss window covering the whole run — with span
// tracing and snapshot streaming on, and joins the two streams into
// breakdowns and co-spike intervals. The run is oracle-checked: it
// fails rather than report latencies for lost messages.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Messages == 0 {
		cfg = DefaultSweepConfig()
	}
	k := sim.NewKernel()
	defer k.Close()

	var script *fault.Script
	if cfg.Rate > 0 {
		script = &fault.Script{Seed: cfg.Seed, Actions: []fault.Action{
			{At: 0, Kind: fault.LossStart, Rate: cfg.Rate},
		}}
	}
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	rec := trace.New()
	if cfg.TraceCap > 0 {
		rec = trace.NewCapped(cfg.TraceCap)
	}
	reg := metrics.New()
	c, err := cluster.New(k, cluster.Options{
		Nodes: 4, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script,
		Metrics: reg, Trace: rec, SnapshotEvery: cfg.SnapshotEvery,
		SampleEvery: cfg.SampleEvery,
	})
	if err != nil {
		return nil, err
	}
	o := oracle.New()
	tx, rx := o.Wrap(c.Endpoints[0]), o.Wrap(c.Endpoints[1])
	k.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < cfg.Messages; i++ {
			msg := make([]byte, cfg.Bytes)
			if cfg.Bytes > 0 {
				msg[0] = byte(i + 1)
			}
			if err := tx.Send(p, 1, msg); err != nil {
				panic(err)
			}
			p.Delay(cfg.Gap)
		}
	})
	delivered := 0
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, cfg.Bytes+1)
		for i := 0; i < cfg.Messages; i++ {
			if _, err := rx.Recv(p, 0, buf); err != nil {
				panic(err)
			}
			delivered++
		}
	})
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("timeline sweep rate=%.2f: %w", cfg.Rate, err)
	}
	if st, err := o.Check(true); err != nil {
		return nil, fmt.Errorf("timeline sweep rate=%.2f violated delivery contract: %w (%v)", cfg.Rate, err, st)
	}
	points := c.Stream.Points()
	return &SweepResult{
		Rec:        rec,
		Points:     points,
		Breakdowns: Breakdowns(rec.Events()),
		Intervals:  CoSpikes(points),
		Sent:       cfg.Messages,
		Delivered:  delivered,
	}, nil
}
