package timeline

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func pathSpan(id trace.SpanID, node int, start, end sim.Time) trace.SpanRec {
	return trace.SpanRec{ID: id, Node: node, Start: start, End: end, Ended: true}
}

func usAt(v int) sim.Time { return sim.Time(0).Add(sim.Duration(v) * sim.Microsecond) }

// TestCriticalPathCoordinatorChain mirrors the E14 host-barrier shape:
// two ranks send arrivals concurrently, then the coordinator (node 0)
// drains them back-to-back and multicasts the release. The backward
// walk must attribute the whole serial tail to node 0 and only the
// pre-drain stretch to the last-active sender.
func TestCriticalPathCoordinatorChain(t *testing.T) {
	spans := []trace.SpanRec{
		pathSpan(1, 1, usAt(0), usAt(4)), // arrival sends, concurrent
		pathSpan(2, 2, usAt(0), usAt(4)),
		pathSpan(3, 0, usAt(4), usAt(10)),  // drain arrival 1
		pathSpan(4, 0, usAt(10), usAt(16)), // drain arrival 2
		pathSpan(5, 0, usAt(16), usAt(22)), // drain arrival 3
		pathSpan(6, 0, usAt(22), usAt(30)), // release mcast
	}
	shares := CriticalPath(spans, usAt(0), usAt(30))
	if len(shares) == 0 || shares[0].Node != 0 {
		t.Fatalf("gating node = %+v, want node 0 first", shares)
	}
	if shares[0].Us != 26 || shares[0].Spans != 4 {
		t.Errorf("node 0 share = %.1f µs over %d spans, want 26 µs over 4", shares[0].Us, shares[0].Spans)
	}
	var total float64
	for _, s := range shares {
		total += s.Us
	}
	if total != 30 {
		t.Errorf("shares sum to %.1f µs, want the full 30 µs window", total)
	}
}

// TestCriticalPathClampsAndSkipsIdle checks window clamping and that
// uncovered stretches (true idle) are attributed to nobody.
func TestCriticalPathClampsAndSkipsIdle(t *testing.T) {
	spans := []trace.SpanRec{
		pathSpan(1, 3, usAt(0), usAt(8)),                              // straddles the window start
		pathSpan(2, 5, usAt(12), usAt(18)),                            // idle gap 8..12
		pathSpan(3, 5, usAt(16), usAt(40)),                            // straddles the window end
		{ID: 4, Node: 9, Start: usAt(2), End: usAt(25), Ended: false}, // unended: ignored
	}
	shares := CriticalPath(spans, usAt(4), usAt(20))
	got := map[int]float64{}
	for _, s := range shares {
		got[s.Node] = s.Us
	}
	// Node 5: [16,20) from the clipped tail span + [12,16) from span 2.
	if got[5] != 8 {
		t.Errorf("node 5 share = %.1f µs, want 8", got[5])
	}
	// Node 3: clamped to [4,8).
	if got[3] != 4 {
		t.Errorf("node 3 share = %.1f µs, want 4", got[3])
	}
	if got[9] != 0 {
		t.Errorf("unended span attributed %.1f µs", got[9])
	}
}
