package timeline

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// PathShare is one node's share of a critical-path window: how much of
// the window's serial chain ran on (and through the PCI bus of) that
// node.
type PathShare struct {
	Node  int
	Us    float64
	Spans int
}

// CriticalPath approximates the serial chain behind a collective's
// completion from its span trace: sweeping backward from `to`, each
// instant of the window [from, to] is attributed to the work span that
// was last active at that instant — the thing the completion was
// actually waiting on — and the walk then jumps to that span's start
// and repeats. Instants no span covers (true idle, e.g. poll backoff)
// are attributed to nobody, so the shares sum to at most the window.
//
// Callers pass *work* spans (BBP post/drain, ring inject, spin
// handler, MPI eager) and exclude rank-level envelope spans like
// "barrier", which cover the whole window on every rank and would
// swallow the attribution. Shares come back largest first; the gating
// node — the one whose sequential work dominates the chain, i.e. whose
// host bus bounds the collective (EXPERIMENTS.md E14) — is
// shares[0].Node.
func CriticalPath(spans []trace.SpanRec, from, to sim.Time) []PathShare {
	work := make([]trace.SpanRec, 0, len(spans))
	for _, s := range spans {
		if s.Ended && s.End > from && s.Start < to {
			work = append(work, s)
		}
	}
	// Deterministic walk order: by start, then end, then node, then id.
	sort.Slice(work, func(i, j int) bool {
		a, b := work[i], work[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.ID < b.ID
	})

	acc := map[int]*PathShare{}
	cursor := to
	for cursor > from {
		// The span last active at `cursor`: latest segment end among
		// spans starting before the cursor; among ties, latest start
		// (innermost work).
		best := -1
		var bestEnd sim.Time
		for i, s := range work {
			if s.Start >= cursor {
				break
			}
			end := s.End
			if end > cursor {
				end = cursor
			}
			if best < 0 || end > bestEnd || (end == bestEnd && s.Start >= work[best].Start) {
				best, bestEnd = i, end
			}
		}
		if best < 0 {
			break
		}
		s := work[best]
		lo := s.Start
		if lo < from {
			lo = from
		}
		if bestEnd > lo {
			sh := acc[s.Node]
			if sh == nil {
				sh = &PathShare{Node: s.Node}
				acc[s.Node] = sh
			}
			sh.Us += bestEnd.Sub(lo).Microseconds()
			sh.Spans++
		}
		cursor = lo
	}

	out := make([]PathShare, 0, len(acc))
	for _, sh := range acc {
		out = append(out, *sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Us != out[j].Us {
			return out[i].Us > out[j].Us
		}
		return out[i].Node < out[j].Node
	})
	return out
}
