package timeline

import (
	"testing"

	"repro/internal/trace"
)

// soakCfg is a soak-length fault-battery sweep: enough messages that a
// capped recorder must evict early history, under a lossy ring so the
// retry machinery exercises the ack/retransmit hops too. The cap sits
// between the 1-in-8 sampled event volume (~10k, which must fit) and
// the unsampled volume (~42k, which must not).
func soakCfg(sampleEvery int) SweepConfig {
	cfg := DefaultSweepConfig()
	cfg.Messages = 200
	cfg.Rate = 0.05
	cfg.TraceCap = 12000
	cfg.SampleEvery = sampleEvery
	return cfg
}

// TestSamplingKeepsCompleteSpanTrees is the PR's acceptance test: on a
// soak-length run where the unsampled recorder has evicted its early
// history (old messages survive only as incomplete breakdowns), the
// sampled recorder retains *complete* span trees for every sampled id
// — including the very first message of the run — and unsampled ids
// are absent by design, not dropped.
func TestSamplingKeepsCompleteSpanTrees(t *testing.T) {
	// Baseline: no sampler. The cap must have evicted early events.
	base, err := RunSweep(soakCfg(0))
	if err != nil {
		t.Fatalf("unsampled sweep: %v", err)
	}
	if base.Rec.Drops() == 0 {
		t.Fatalf("soak too short: unsampled recorder never hit the %d-event cap", soakCfg(0).TraceCap)
	}
	incomplete := 0
	for _, b := range base.Breakdowns {
		if !(b.Posted && b.Flagged && b.Detected && b.Delivered) {
			incomplete++
		}
	}
	if incomplete == 0 {
		t.Fatal("unsampled soak kept every span tree complete; eviction pressure missing")
	}

	// Sampled: every 8th message id. Same workload, same faults.
	const every = 8
	res, err := RunSweep(soakCfg(every))
	if err != nil {
		t.Fatalf("sampled sweep: %v", err)
	}
	rec := res.Rec
	if rec.SamplerDrops() == 0 {
		t.Fatal("sampler filtered nothing")
	}
	if rec.Drops() != 0 {
		t.Errorf("sampled run still evicted %d events by capacity; cap no longer bounds the sampled set", rec.Drops())
	}

	// Every breakdown present must be a sampled id with a complete tree.
	seen := map[uint64]bool{}
	for _, b := range res.Breakdowns {
		seen[b.Msg] = true
		if !rec.Sampled(b.Msg) {
			t.Errorf("unsampled id %d:%d has traced events", b.Sender, b.Seq)
		}
		if !(b.Posted && b.Flagged && b.Detected && b.Delivered) {
			t.Errorf("sampled id %d:%d incomplete: posted=%v flagged=%v detected=%v delivered=%v",
				b.Sender, b.Seq, b.Posted, b.Flagged, b.Detected, b.Delivered)
		}
		if !b.AckSeen {
			t.Errorf("sampled id %d:%d missing its ack hop", b.Sender, b.Seq)
		}
	}
	// The very first message — long evicted in the baseline — is intact,
	// and every sampled data message of the run is present.
	for seq := uint32(1); seq <= uint32(soakCfg(every).Messages); seq += every {
		if !seen[trace.MsgID(0, seq)] {
			t.Errorf("sampled id 0:%d absent from breakdowns", seq)
		}
	}
	// Unsampled ids are cleanly absent: no events, and crucially not
	// reported as capacity casualties.
	for seq := uint32(2); seq <= 16; seq++ {
		id := trace.MsgID(0, seq)
		if (seq-1)%every == 0 {
			continue
		}
		if seen[id] {
			t.Errorf("id 0:%d should be unsampled but appears in breakdowns", seq)
		}
		if rec.MayHaveDroppedMsg(id) {
			t.Errorf("unsampled id 0:%d misreported as capacity-dropped", seq)
		}
	}
	// Spans that were kept are properly terminated.
	for _, sp := range rec.Spans() {
		if sp.Msg != 0 && !sp.Ended {
			t.Errorf("sampled span %d (msg %d:%d, %s) unterminated",
				sp.ID, trace.MsgSender(sp.Msg), trace.MsgSeq(sp.Msg), sp.Name)
		}
	}
}

// TestCoSpikesUnchangedBySampling proves the sampler touches only the
// trace stream: the metrics snapshot stream, and therefore the co-spike
// correlation built from it, is bit-identical with and without sampling.
func TestCoSpikesUnchangedBySampling(t *testing.T) {
	base, err := RunSweep(soakCfg(0))
	if err != nil {
		t.Fatalf("unsampled sweep: %v", err)
	}
	sampled, err := RunSweep(soakCfg(8))
	if err != nil {
		t.Fatalf("sampled sweep: %v", err)
	}
	if base.Delivered != sampled.Delivered {
		t.Fatalf("delivery diverged: %d vs %d", base.Delivered, sampled.Delivered)
	}
	if len(base.Points) != len(sampled.Points) {
		t.Fatalf("snapshot streams diverged: %d vs %d points", len(base.Points), len(sampled.Points))
	}
	bi, si := base.Intervals, sampled.Intervals
	if len(bi) != len(si) {
		t.Fatalf("co-spike intervals diverged: %d vs %d", len(bi), len(si))
	}
	for i := range bi {
		if bi[i] != si[i] {
			t.Errorf("interval %d diverged: %v vs %v", i, bi[i], si[i])
		}
	}
	if len(bi) == 0 {
		t.Log("note: no co-spikes flagged at this rate (comparison still exact)")
	}
}

// TestCoSpikesFlagsLossWindow gives CoSpikes direct coverage: a lossy
// run must flag at least one interval where retries and bus occupancy
// spiked together, and a fault-free run must flag none.
func TestCoSpikesFlagsLossWindow(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.Rate = 0.25
	cfg.Messages = 40
	lossy, err := RunSweep(cfg)
	if err != nil {
		t.Fatalf("lossy sweep: %v", err)
	}
	if len(lossy.Intervals) == 0 {
		t.Error("25% loss produced no co-spike intervals")
	}
	for _, iv := range lossy.Intervals {
		if iv.DRetrans <= 0 {
			t.Errorf("flagged interval %v has no retransmit growth", iv)
		}
		if iv.To <= iv.From {
			t.Errorf("flagged interval %v has non-positive width", iv)
		}
	}

	clean, err := RunSweep(DefaultSweepConfig())
	if err != nil {
		t.Fatalf("clean sweep: %v", err)
	}
	if len(clean.Intervals) != 0 {
		t.Errorf("fault-free run flagged %d co-spike intervals", len(clean.Intervals))
	}
}
