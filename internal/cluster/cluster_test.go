package cluster

import (
	"bytes"
	"testing"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

func TestEveryNetworkBuildsAndDelivers(t *testing.T) {
	for _, net := range AllNetworks {
		net := net
		t.Run(string(net), func(t *testing.T) {
			k := sim.NewKernel()
			c, err := New(k, Options{Nodes: 4, Net: net})
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Endpoints) != 4 {
				t.Fatalf("%d endpoints", len(c.Endpoints))
			}
			msg := []byte("probe")
			var got []byte
			k.Spawn("tx", func(p *sim.Proc) {
				if err := c.Endpoints[0].Send(p, 3, msg); err != nil {
					t.Error(err)
				}
			})
			k.Spawn("rx", func(p *sim.Proc) {
				buf := make([]byte, 16)
				n, err := c.Endpoints[3].Recv(p, 0, buf)
				if err != nil {
					t.Error(err)
					return
				}
				got = buf[:n]
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("got %q", got)
			}
			wantNative := net == SCRAMNet || net == Hybrid // hybrid inherits BBP multicast
			if native := c.Endpoints[0].NativeMcast(); native != wantNative {
				t.Errorf("NativeMcast = %v on %s", native, net)
			}
		})
	}
}

func TestBadOptions(t *testing.T) {
	k := sim.NewKernel()
	if _, err := New(k, Options{Nodes: 1, Net: SCRAMNet}); err == nil {
		t.Error("1-node cluster accepted")
	}
	if _, err := New(k, Options{Nodes: 4, Net: "token-ring"}); err == nil {
		t.Error("unknown network accepted")
	}
	h := scramnet.DefaultHierarchyConfig(2, 2)
	if _, err := New(k, Options{Nodes: 5, Net: SCRAMNet, Hierarchy: &h}); err == nil {
		t.Error("hierarchy host-count mismatch accepted")
	}
}

func TestPIOOnlyBBPDisablesDMA(t *testing.T) {
	k := sim.NewKernel()
	c, err := New(k, Options{Nodes: 2, Net: SCRAMNet, PIOOnlyBBP: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.BBP.Config().Thresholds.SendDMA; got != 1<<30 {
		t.Errorf("Thresholds.SendDMA = %d", got)
	}
}

func TestHierarchyClusterEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	h := scramnet.DefaultHierarchyConfig(2, 3)
	c, err := New(k, Options{Nodes: 6, Net: SCRAMNet, Hierarchy: &h})
	if err != nil {
		t.Fatal(err)
	}
	if c.Hier == nil || c.Ring != nil {
		t.Fatal("hierarchy cluster should set Hier, not Ring")
	}
	ok := false
	k.Spawn("tx", func(p *sim.Proc) {
		if err := c.Endpoints[0].Send(p, 5, []byte("far")); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("rx", func(p *sim.Proc) {
		buf := make([]byte, 8)
		n, err := c.Endpoints[5].Recv(p, 0, buf)
		ok = err == nil && string(buf[:n]) == "far"
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("cross-leaf delivery failed")
	}
}

func TestNewMPIWorldAllNetworks(t *testing.T) {
	for _, net := range Networks {
		k := sim.NewKernel()
		if _, _, err := NewMPIWorld(k, net, 3, true); err != nil {
			t.Errorf("%s: %v", net, err)
		}
	}
}
