// Package cluster assembles the paper's testbed: four dual-Pentium-II
// workstations wired, in turn, to SCRAMNet, Fast Ethernet, ATM, and
// Myrinet. It builds the chosen fabric, attaches the matching messaging
// substrate to every node, and exposes uniform xport.Endpoint handles —
// so benchmarks and MPI worlds are constructed identically regardless of
// the network under test.
package cluster

import (
	"fmt"

	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/fault"
	"repro/internal/hybrid"
	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/myrinet"
	"repro/internal/scramnet"
	"repro/internal/sim"
	"repro/internal/tcpip"
	"repro/internal/trace"
	"repro/internal/xport"
)

// Network names a testbed interconnect.
type Network string

// The five network configurations of Figures 2 and 3, plus the hybrid
// subsystem the paper's conclusion proposes.
const (
	SCRAMNet     Network = "scramnet"     // BillBoard Protocol on the replicated ring
	FastEthernet Network = "fastethernet" // TCP-lite on 100 Mb/s switched Ethernet
	ATM          Network = "atm"          // TCP-lite on OC-3 ATM
	MyrinetAPI   Network = "myrinet-api"  // vendor user-level API
	MyrinetTCP   Network = "myrinet-tcp"  // TCP-lite over the Myrinet driver
	// Hybrid routes small messages over the BillBoard Protocol and
	// large ones over the Myrinet API — the §7 "SCRAMNet together with
	// a high bandwidth network within the same cluster" proposal.
	Hybrid Network = "hybrid"
)

// Networks lists the paper's five measured configurations, in figure
// order; AllNetworks additionally includes the hybrid extension.
var (
	Networks    = []Network{SCRAMNet, FastEthernet, ATM, MyrinetAPI, MyrinetTCP}
	AllNetworks = []Network{SCRAMNet, FastEthernet, ATM, MyrinetAPI, MyrinetTCP, Hybrid}
)

// Options configures a testbed build.
type Options struct {
	Nodes int
	Net   Network
	// BBP optionally overrides the BillBoard Protocol configuration
	// (SCRAMNet only).
	BBP *core.Config
	// Ring optionally overrides the SCRAMNet hardware configuration.
	Ring *scramnet.Config
	// Hierarchy, when set, builds a bridged ring-of-rings instead of a
	// flat ring (SCRAMNet only); Nodes must equal the total host count.
	Hierarchy *scramnet.HierarchyConfig
	// PIOOnlyBBP forces the BBP endpoints onto the programmed-I/O path,
	// as the paper's minimal MPICH channel device does.
	PIOOnlyBBP bool
	// Liveness, when non-nil, enables heartbeat-based failure detection
	// on the BBP substrate (SCRAMNet, and the SCRAMNet side of Hybrid —
	// where the router and any MPI world above inherit the membership
	// view through liveness.Provider). It overrides any Liveness setting
	// in Options.BBP.
	Liveness *liveness.Config
	// Faults optionally schedules a fault script against the built
	// network. On SCRAMNet the script drives the ring's optical bypass
	// and CRC-drop model directly (the ring's drop stream is re-seeded
	// from the script); the switched fabrics are wrapped with a
	// fault-injecting layer. A Hybrid cluster faults both substrates
	// with the same script. Not supported on hierarchical SCRAMNet.
	Faults *fault.Script
	// Metrics, when non-nil, instruments every built layer (ring/
	// hierarchy, host buses, BBP endpoints, fault wrappers, hybrid
	// routers) against the given registry. Metrics never charge virtual
	// time, so an instrumented cluster reproduces exactly the latencies
	// of an uninstrumented one.
	Metrics *metrics.Registry
	// Trace, when non-nil, installs causal span tracing on every built
	// layer that supports it (ring/hierarchy, host buses, BBP system,
	// hybrid routers, fault scripts). Like Metrics it charges no
	// virtual time.
	Trace *trace.Recorder
	// SampleEvery, when > 1 and Trace is set, installs a head-based
	// sampler keeping every n-th message id (trace.NewSampler) on the
	// recorder; with Metrics also set, the sampler's keep rate is
	// published as the trace.sampler_keep_permil gauge.
	SampleEvery int
	// SnapshotEvery, when positive and Metrics is set, starts a
	// periodic snapshot stream capturing the full registry every
	// interval of virtual time (Cluster.Stream).
	SnapshotEvery sim.Duration
	// Profiler, when non-nil, is installed on the kernel so the run's
	// real-time cost is attributed per event kind (sim.Profiler). Like
	// Metrics and Trace it charges no virtual time.
	Profiler *sim.Profiler
}

// Cluster is a built testbed.
type Cluster struct {
	K         *sim.Kernel
	Net       Network
	Endpoints []xport.Endpoint
	// Ring and BBP are set for flat-ring SCRAMNet clusters; Hier for
	// hierarchical ones.
	Ring *scramnet.Network
	Hier *scramnet.Hierarchy
	BBP  *core.System
	// Fault is the fault-injection wrapper around a switched fabric,
	// set when Options.Faults was given on a non-SCRAMNet network (and
	// for the Myrinet side of a Hybrid cluster).
	Fault *fault.Fabric
	// Stream is the periodic metrics snapshot stream, set when both
	// Options.Metrics and Options.SnapshotEvery were given.
	Stream *metrics.Stream
}

// faulted wraps fab with fault injection and schedules the script on
// it when one was requested; otherwise it returns fab unchanged.
func faulted(k *sim.Kernel, c *Cluster, opts Options, fab xport.Fabric) xport.Fabric {
	if opts.Faults == nil {
		return fab
	}
	ff := fault.NewFabric(k, fab, opts.Faults.Seed)
	ff.SetMetrics(opts.Metrics)
	opts.Faults.ApplyObserved(k, ff, opts.Metrics, opts.Trace)
	c.Fault = ff
	return ff
}

// New builds a testbed per opts.
func New(k *sim.Kernel, opts Options) (*Cluster, error) {
	if opts.Nodes < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 nodes, got %d", opts.Nodes)
	}
	c := &Cluster{K: k, Net: opts.Net}
	if opts.Profiler != nil {
		k.SetProfiler(opts.Profiler)
	}
	if opts.Trace != nil && opts.SampleEvery > 1 && opts.Trace.Sampler() == nil {
		smp := trace.NewSampler(opts.SampleEvery)
		opts.Trace.SetSampler(smp)
		if opts.Metrics != nil {
			smp.WireGauge(opts.Metrics.Gauge("trace.sampler_keep_permil", metrics.NodeGlobal))
		}
	}
	switch opts.Net {
	case SCRAMNet:
		var topo core.RingNetwork
		if opts.Hierarchy != nil {
			if opts.Faults != nil {
				return nil, fmt.Errorf("cluster: fault scripts are not supported on hierarchical SCRAMNet")
			}
			h, err := scramnet.NewHierarchy(k, *opts.Hierarchy)
			if err != nil {
				return nil, err
			}
			if h.Nodes() != opts.Nodes {
				return nil, fmt.Errorf("cluster: hierarchy has %d hosts, want %d", h.Nodes(), opts.Nodes)
			}
			h.SetSingleWriterCheck(true)
			if opts.Metrics != nil {
				h.SetMetrics(opts.Metrics)
			}
			if opts.Trace != nil {
				h.SetTracer(opts.Trace)
			}
			c.Hier = h
			topo = h
		} else {
			ringCfg := scramnet.DefaultConfig(opts.Nodes)
			if opts.Ring != nil {
				ringCfg = *opts.Ring
			}
			if opts.Faults != nil {
				// The script's seed also parameterizes the ring's own
				// CRC-drop stream, so a replayed script reproduces the
				// exact same packet losses.
				ringCfg.Seed = opts.Faults.Seed
			}
			ring, err := scramnet.New(k, ringCfg)
			if err != nil {
				return nil, err
			}
			ring.SetSingleWriterCheck(true)
			if opts.Metrics != nil {
				ring.SetMetrics(opts.Metrics)
			}
			if opts.Trace != nil {
				ring.SetTracer(opts.Trace)
			}
			if opts.Faults != nil {
				opts.Faults.ApplyObserved(k, fault.Ring(ring), opts.Metrics, opts.Trace)
			}
			c.Ring = ring
			topo = ring
		}
		bbpCfg := core.DefaultConfig()
		if opts.BBP != nil {
			bbpCfg = *opts.BBP
		}
		if opts.PIOOnlyBBP {
			bbpCfg.Thresholds.SendDMA = 1 << 30
			bbpCfg.Thresholds.RecvDMA = 1 << 30
			bbpCfg.Thresholds.Adaptive = core.AdaptiveConfig{}
		}
		if opts.Liveness != nil {
			bbpCfg.Liveness = *opts.Liveness
		}
		var bbpOpts []core.Option
		if opts.Metrics != nil {
			bbpOpts = append(bbpOpts, core.WithMetrics(opts.Metrics))
		}
		if opts.Trace != nil {
			bbpOpts = append(bbpOpts, core.WithTracer(opts.Trace))
		}
		sys, err := core.New(topo, bbpCfg, bbpOpts...)
		if err != nil {
			return nil, err
		}
		for i := 0; i < opts.Nodes; i++ {
			ep, err := sys.Attach(i)
			if err != nil {
				return nil, err
			}
			c.Endpoints = append(c.Endpoints, ep)
		}
		c.BBP = sys
	case FastEthernet:
		fab, err := ethernet.New(k, ethernet.DefaultConfig(opts.Nodes))
		if err != nil {
			return nil, err
		}
		fb := faulted(k, c, opts, fab)
		for i := 0; i < opts.Nodes; i++ {
			c.Endpoints = append(c.Endpoints, tcpip.NewStack(k, fb, i, tcpip.FastEthernetProfile()))
		}
	case ATM:
		fab, err := atm.New(k, atm.DefaultConfig(opts.Nodes))
		if err != nil {
			return nil, err
		}
		fb := faulted(k, c, opts, fab)
		for i := 0; i < opts.Nodes; i++ {
			c.Endpoints = append(c.Endpoints, tcpip.NewStack(k, fb, i, tcpip.ATMProfile()))
		}
	case MyrinetAPI:
		fab, err := myrinet.New(k, myrinet.DefaultConfig(opts.Nodes))
		if err != nil {
			return nil, err
		}
		fb := faulted(k, c, opts, fab)
		for i := 0; i < opts.Nodes; i++ {
			c.Endpoints = append(c.Endpoints, myrinet.OpenAPI(fb, i, myrinet.DefaultAPIConfig()))
		}
	case MyrinetTCP:
		fab, err := myrinet.New(k, myrinet.DefaultConfig(opts.Nodes))
		if err != nil {
			return nil, err
		}
		fb := faulted(k, c, opts, fab)
		for i := 0; i < opts.Nodes; i++ {
			c.Endpoints = append(c.Endpoints, tcpip.NewStack(k, fb, i, tcpip.MyrinetProfile()))
		}
	case Hybrid:
		// Both NICs in every workstation: a SCRAMNet ring for latency
		// and a Myrinet SAN for bandwidth. A fault script hits both.
		low, err := New(k, Options{Nodes: opts.Nodes, Net: SCRAMNet, BBP: opts.BBP, Ring: opts.Ring, Faults: opts.Faults, Metrics: opts.Metrics, Trace: opts.Trace, Liveness: opts.Liveness})
		if err != nil {
			return nil, err
		}
		c.Ring, c.BBP = low.Ring, low.BBP
		fab, err := myrinet.New(k, myrinet.DefaultConfig(opts.Nodes))
		if err != nil {
			return nil, err
		}
		fb := faulted(k, c, opts, fab)
		for i := 0; i < opts.Nodes; i++ {
			high := myrinet.OpenAPI(fb, i, myrinet.DefaultAPIConfig())
			ep, err := hybrid.New(low.Endpoints[i], high, hybrid.DefaultConfig())
			if err != nil {
				return nil, err
			}
			ep.SetMetrics(opts.Metrics)
			ep.SetTracer(opts.Trace)
			c.Endpoints = append(c.Endpoints, ep)
		}
	default:
		return nil, fmt.Errorf("cluster: unknown network %q", opts.Net)
	}
	if opts.Metrics != nil && opts.SnapshotEvery > 0 {
		c.Stream = metrics.NewStream(k, opts.Metrics, opts.SnapshotEvery)
	}
	return c, nil
}

// NewMPIWorld builds a testbed on net and an MPI world over it. On
// SCRAMNet the channel device runs the BBP in PIO-only mode, as in the
// paper's minimal channel implementation; mcast selects the
// multicast-based collectives (meaningful only on SCRAMNet).
func NewMPIWorld(k *sim.Kernel, net Network, nodes int, mcast bool) (*Cluster, *mpi.World, error) {
	c, err := New(k, Options{Nodes: nodes, Net: net, PIOOnlyBBP: true})
	if err != nil {
		return nil, nil, err
	}
	cfg := mpi.DefaultConfig()
	cfg.McastCollectives = mcast
	return c, mpi.NewWorld(c.Endpoints, cfg), nil
}
