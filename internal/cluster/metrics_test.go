package cluster_test

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// run executes one 4-node SCRAMNet ping-pong, optionally instrumented
// and optionally faulted, and returns the one-way latency plus the
// registry's snapshot.
func run(t *testing.T, n int, m *metrics.Registry, script *fault.Script) (float64, metrics.Snapshot) {
	t.Helper()
	k := sim.NewKernel()
	defer k.Close()
	c, err := cluster.New(k, cluster.Options{Nodes: 4, Net: cluster.SCRAMNet, Metrics: m, Faults: script})
	if err != nil {
		t.Fatal(err)
	}
	return bench.PingPong(k, c.Endpoints[0], c.Endpoints[1], n), m.Snapshot()
}

// TestMetricsDeterministicAcrossRuns: two identical simulation runs
// must produce byte-identical snapshot renderings — counters included,
// not just latencies.
func TestMetricsDeterministicAcrossRuns(t *testing.T) {
	var renders [2]bytes.Buffer
	for i := range renders {
		m := metrics.New()
		lat, snap := run(t, 64, m, nil)
		if lat <= 0 {
			t.Fatal("ping-pong returned non-positive latency")
		}
		snap.Render(&renders[i])
		snap.Rollup().Render(&renders[i])
	}
	if !bytes.Equal(renders[0].Bytes(), renders[1].Bytes()) {
		t.Fatalf("identical runs rendered different metrics:\n%s\n---\n%s",
			renders[0].String(), renders[1].String())
	}
}

// TestMetricsChargeNoVirtualTime: an instrumented run must reproduce
// the uninstrumented latency exactly — instruments never call Delay.
func TestMetricsChargeNoVirtualTime(t *testing.T) {
	for _, n := range []int{0, 64, 1024} {
		plain, _ := run(t, n, nil, nil)
		inst, _ := run(t, n, metrics.New(), nil)
		if plain != inst {
			t.Errorf("%d B: instrumented latency %v µs != uninstrumented %v µs", n, inst, plain)
		}
	}
}

// TestMetricsCrossLayerConsistency checks invariants that tie layers
// together: BBP sends equal recvs in a ping-pong, packets applied are
// (nodes-1) times packets injected on a healthy 4-node ring, and every
// layer reported in.
func TestMetricsCrossLayerConsistency(t *testing.T) {
	m := metrics.New()
	_, snap := run(t, 64, m, nil)
	up := snap.Rollup()
	sends, _ := up.Counter("bbp.sends", metrics.NodeGlobal)
	recvs, _ := up.Counter("bbp.recvs", metrics.NodeGlobal)
	if sends == 0 || sends != recvs {
		t.Errorf("bbp sends=%d recvs=%d, want equal and positive", sends, recvs)
	}
	inj, _ := up.Counter("ring.packets_injected", metrics.NodeGlobal)
	app, _ := up.Counter("ring.packets_applied", metrics.NodeGlobal)
	if inj == 0 || app != 3*inj {
		t.Errorf("ring injected=%d applied=%d, want applied = 3*injected", inj, app)
	}
	hops, _ := up.Counter("ring.hops", metrics.NodeGlobal)
	if hops != 4*inj {
		t.Errorf("ring hops=%d, want 4*injected=%d (every packet circles home)", hops, 4*inj)
	}
	reads, _ := up.Counter("pci.pio_read_words", metrics.NodeGlobal)
	writes, _ := up.Counter("pci.pio_write_words", metrics.NodeGlobal)
	if reads == 0 || writes == 0 {
		t.Errorf("pci reads=%d writes=%d, want both positive", reads, writes)
	}
	if reads <= writes {
		t.Errorf("pci reads=%d <= writes=%d; polling reads should dominate (§7)", reads, writes)
	}
	h, ok := up.Histogram("bbp.msg_size_bytes", metrics.NodeGlobal)
	if !ok || h.Count != sends || h.Max != 64 {
		t.Errorf("msg size histogram = %+v, want count=%d max=64", h, sends)
	}
}

// TestMetricsCountInjectedFaults: a scripted node failure and repair
// must surface in the fault and ring counters.
func TestMetricsCountInjectedFaults(t *testing.T) {
	script := &fault.Script{Seed: 7, Actions: []fault.Action{
		{At: sim.Time(0).Add(5 * sim.Microsecond), Kind: fault.NodeFail, Node: 3},
		{At: sim.Time(0).Add(40 * sim.Microsecond), Kind: fault.NodeRepair, Node: 3},
	}}
	m := metrics.New()
	_, snap := run(t, 16, m, script)
	if ev, _ := snap.Counter("fault.injected_events", metrics.NodeGlobal); ev != 2 {
		t.Errorf("fault.injected_events = %d, want 2", ev)
	}
	if v, _ := snap.Counter("fault.injected_node-fail", 3); v != 1 {
		t.Errorf("fault.injected_node-fail node3 = %d, want 1", v)
	}
	if v, _ := snap.Counter("ring.node_fails", metrics.NodeGlobal); v != 1 {
		t.Errorf("ring.node_fails = %d, want 1", v)
	}
	if v, _ := snap.Counter("ring.node_repairs", metrics.NodeGlobal); v != 1 {
		t.Errorf("ring.node_repairs = %d, want 1", v)
	}
}

// TestMetricsMPIWorld wires a registry into an MPI world by hand and
// checks the protocol counters fire, including the eager/rendezvous
// split and the unexpected-queue high-water mark.
func TestMetricsMPIWorld(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	m := metrics.New()
	_, w, err := cluster.NewMPIWorld(k, cluster.SCRAMNet, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	w.SetMetrics(m)
	small := make([]byte, 16)
	large := make([]byte, 32<<10) // over EagerMax: rendezvous
	w.RunSPMD(k, func(p *sim.Proc, c *mpi.Comm) {
		buf := make([]byte, 33<<10)
		switch c.Rank() {
		case 0:
			// Tag 0 goes out first; rank 1 waits on tag 1, so the tag-0
			// eager message lands in its unexpected queue.
			if err := c.Send(p, 1, 0, small); err != nil {
				t.Error(err)
			}
			if err := c.Send(p, 1, 1, small); err != nil {
				t.Error(err)
			}
			if err := c.Send(p, 1, 2, large); err != nil {
				t.Error(err)
			}
		case 1:
			for _, tag := range []int{1, 0, 2} {
				if _, err := c.Recv(p, 0, tag, buf); err != nil {
					t.Error(err)
				}
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	up := snap.Rollup()
	eager, _ := up.Counter("mpi.eager_sent", metrics.NodeGlobal)
	rndv, _ := up.Counter("mpi.rndv_sent", metrics.NodeGlobal)
	recvd, _ := up.Counter("mpi.received", metrics.NodeGlobal)
	if eager != 2 || rndv != 1 || recvd != 3 {
		t.Errorf("mpi eager=%d rndv=%d received=%d, want 2/1/3", eager, rndv, recvd)
	}
	unexp, _ := up.Counter("mpi.unexpected_msgs", metrics.NodeGlobal)
	if unexp == 0 {
		t.Error("expected the delayed receiver to queue unexpected messages")
	}
	depth, ok := up.Gauge("mpi.unexpected_depth", metrics.NodeGlobal)
	if !ok || depth.Max < 1 {
		t.Errorf("unexpected-queue high-water = %+v, want max >= 1", depth)
	}
}
