// Package liveness implements heartbeat-based cluster membership on top
// of the BillBoard Protocol's replicated memory.
//
// Every node publishes a (beat, incarnation) word pair in a
// single-writer heartbeat table that replicates like any other SCRAMNet
// write — there is no new wire mechanism. Each node also runs a local
// timeout-based failure Detector over its replica of the table: a peer
// whose beat word stops advancing moves alive → suspect after
// SuspectAfter and suspect → dead after ConfirmAfter, both measured
// from the last observed progress. Because the table replicates to all
// banks in one ring revolution, detectors converge without exchanging
// verdicts.
//
// Incarnation numbers fence stale identities: a node that was declared
// dead stays dead to its peers until it publishes a strictly higher
// incarnation (which it does after noticing its own link went down),
// at which point it rejoins as a fresh instance. Beats that arrive at a
// dead peer's old incarnation are counted but ignored — the old
// identity cannot be resurrected.
//
// The package is transport-agnostic: internal/core owns the heartbeat
// table layout and the publish/scan daemon and feeds samples into a
// Detector; hybrid and MPI layers consume the resulting View through
// the Provider interface.
package liveness

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// State is a detector's verdict about one peer.
type State uint8

const (
	// Alive: the peer's beat advanced within SuspectAfter.
	Alive State = iota
	// Suspect: no progress for SuspectAfter; the peer may be dead, or
	// the ring may be losing its beats. Consumers should prepare to
	// fail over but must not reclaim the peer's resources yet.
	Suspect
	// Dead: no progress for ConfirmAfter; the peer's identity is
	// fenced. Only a higher incarnation revives it.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config calibrates the heartbeat publisher and failure detector.
type Config struct {
	// Enabled turns the subsystem on. The zero Config disables it and
	// leaves the control-partition layout unchanged.
	Enabled bool

	// Period is the heartbeat publish/scan interval.
	Period sim.Duration

	// SuspectAfter is how long a peer's beat may stall before the
	// detector moves it alive → suspect. Measured from the last
	// observed beat advance, so it must comfortably exceed Period plus
	// one ring revolution.
	SuspectAfter sim.Duration

	// ConfirmAfter is how long a stall lasts before suspect → dead.
	// Measured from the last observed beat advance (not from the
	// suspicion), so ConfirmAfter > SuspectAfter. This bounds how long
	// any layer waits on a dead peer; it replaces the retry daemon's
	// MaxRetries × Timeout death discovery.
	ConfirmAfter sim.Duration
}

// DefaultConfig returns a calibration that tolerates the fault
// battery's loss windows: confirming death requires ConfirmAfter/Period
// = 25 consecutive lost heartbeat packets, so a loss window at rate r
// produces a false death with probability ~r^25 (≈ 3e-6 even at
// r = 0.6) while a real death is confirmed within 2.5 ms — twenty times
// faster than the retry daemon's 8 × 200 µs-doubling backoff budget.
func DefaultConfig() Config {
	return Config{
		Enabled:      true,
		Period:       100 * sim.Microsecond,
		SuspectAfter: 500 * sim.Microsecond,
		ConfirmAfter: 2500 * sim.Microsecond,
	}
}

// Validate checks the window ordering Period < SuspectAfter <
// ConfirmAfter that the detector state machine assumes.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Period <= 0 {
		return fmt.Errorf("liveness: Period %v must be positive", c.Period)
	}
	if c.SuspectAfter < c.Period {
		return fmt.Errorf("liveness: SuspectAfter %v < Period %v", c.SuspectAfter, c.Period)
	}
	if c.ConfirmAfter <= c.SuspectAfter {
		return fmt.Errorf("liveness: ConfirmAfter %v must exceed SuspectAfter %v", c.ConfirmAfter, c.SuspectAfter)
	}
	return nil
}

// View is a read-only membership view, safe to consult on every send.
// Implementations are local state machines: State costs no virtual
// time and never blocks.
type View interface {
	// State returns the current verdict about node (Alive for self).
	State(node int) State
	// Incarnation returns the newest incarnation observed for node.
	Incarnation(node int) uint32
}

// Provider is implemented by transports that run a failure detector
// (core.Endpoint; the hybrid router delegates to its low side). Layers
// above discover liveness by asserting their endpoint to Provider.
// Liveness returns nil when the subsystem is disabled.
type Provider interface {
	Liveness() View
}

// PartitionInfo describes a declared ring partition from the local
// detector's point of view. A partition is declared — not mere death —
// when the unresponsive peers form one contiguous arc of the ring and
// the card's ring status register corroborates with at least two
// severed segments: every arc of a doubly-cut ring borders both cuts,
// so the evidence is arc-local. The winning arc (the quorum) is the
// larger one, with node 0's arc breaking ties; the losing arc fences.
type PartitionInfo struct {
	// Minority is true when the local node is on the losing arc: new
	// sends are fenced until the ring heals.
	Minority bool
	// Peers are the unreachable nodes — the far arc — ascending.
	Peers []int
	// Quorum are the winning arc's members, ascending.
	Quorum []int
}

// Unreachable reports whether node is on the far side of the partition.
func (p PartitionInfo) Unreachable(node int) bool {
	for _, q := range p.Peers {
		if q == node {
			return true
		}
	}
	return false
}

// PartitionView is the optional extension of Provider implemented by
// transports whose detector distinguishes unreachable from dead
// (core.Endpoint over a SCRAMNet ring; the hybrid router delegates to
// its low side). Layers discover it by type assertion, so Providers
// without partition awareness keep working unchanged.
type PartitionView interface {
	// Partition returns the declared partition, if any. The returned
	// slices are copies.
	Partition() (PartitionInfo, bool)
}

// Stats counts detector transitions since creation.
type Stats struct {
	Beats          int64 // heartbeats published by the local node
	Suspects       int64 // alive → suspect transitions
	Refutes        int64 // suspect → alive (a late beat refuted the suspicion)
	Confirms       int64 // suspect → dead transitions
	Rejoins        int64 // dead → alive via a fresh incarnation
	FencedBeats    int64 // beat advances ignored at a dead peer's stale incarnation
	SelfRejoins    int64 // local incarnation bumps after a link-down epoch
	Partitions     int64 // ring partitions declared (contiguous arc + cut evidence)
	PartitionHeals int64 // partitions cleared (splice observed or arc dissolved)
}

// Detector is one node's failure detector over the replicated heartbeat
// table. The owning transport feeds it samples (Observe) and clock
// ticks (Tick); everything else reads it through View.
type Detector struct {
	me  int
	n   int
	cfg Config

	state      []State
	inc        []uint32
	beat       []uint32
	lastFresh  []sim.Time     // last time the peer's beat/incarnation advanced
	suspectSpn []trace.SpanID // open suspect span per peer

	// Partition state: cuts is the last ring status sample
	// (ObserveRing); part is the declared partition, nil outside one;
	// pend is the previous tick's candidate arc (a declaration requires
	// the same arc on two consecutive ticks, because suspicions for one
	// arc's members can trip a tick apart and a partial arc would
	// mis-compute the quorum); resync latches a minority-side heal
	// until the owning transport consumes it (TakeResync).
	cuts   int
	part   *PartitionInfo
	pend   []int
	resync bool

	stats  Stats
	tracer *trace.Recorder
	im     struct {
		suspects, refutes, confirms, rejoins, fenced *metrics.Counter
		partitions, partitionHeals                   *metrics.Counter
		deadPeers                                    *metrics.Gauge
	}
}

// NewDetector returns a detector for `me` in an n-node cluster, with
// every peer initially Alive as of virtual time now. tracer and reg may
// be nil.
func NewDetector(me, n int, cfg Config, now sim.Time, tracer *trace.Recorder, reg *metrics.Registry) *Detector {
	d := &Detector{
		me:         me,
		n:          n,
		cfg:        cfg,
		state:      make([]State, n),
		inc:        make([]uint32, n),
		beat:       make([]uint32, n),
		lastFresh:  make([]sim.Time, n),
		suspectSpn: make([]trace.SpanID, n),
		tracer:     tracer,
	}
	for i := range d.lastFresh {
		d.lastFresh[i] = now
	}
	d.im.suspects = reg.Counter("liveness.suspects", me)
	d.im.refutes = reg.Counter("liveness.refutes", me)
	d.im.confirms = reg.Counter("liveness.confirms_dead", me)
	d.im.rejoins = reg.Counter("liveness.rejoins", me)
	d.im.fenced = reg.Counter("liveness.fenced_beats", me)
	d.im.partitions = reg.Counter("liveness.partitions_detected", me)
	d.im.partitionHeals = reg.Counter("liveness.partition_heals", me)
	d.im.deadPeers = reg.Gauge("liveness.dead_peers", me)
	return d
}

// State implements View.
func (d *Detector) State(node int) State {
	if node == d.me {
		return Alive
	}
	return d.state[node]
}

// Incarnation implements View.
func (d *Detector) Incarnation(node int) uint32 { return d.inc[node] }

// Stats returns transition counts. The owning transport adds Beats and
// SelfRejoins, which the detector itself cannot see.
func (d *Detector) Stats() Stats { return d.stats }

// AddBeat is called by the owning publisher so Stats covers both halves
// of the subsystem.
func (d *Detector) AddBeat() { d.stats.Beats++ }

// AddSelfRejoin records a local incarnation bump.
func (d *Detector) AddSelfRejoin() { d.stats.SelfRejoins++ }

// incLess compares incarnations with wraparound, like ACK sequence
// numbers: a is older than b if the signed distance is negative.
func incLess(a, b uint32) bool { return int32(a-b) < 0 }

// Observe feeds one sample of peer `node`'s heartbeat pair, read from
// the local replica of the table at virtual time now.
func (d *Detector) Observe(now sim.Time, node int, beat, inc uint32) {
	if node == d.me || node < 0 || node >= d.n {
		return
	}
	switch {
	case incLess(d.inc[node], inc):
		// A strictly newer incarnation always wins: the peer restarted
		// (or healed from a partition) and rejoined as a fresh identity.
		was := d.state[node]
		d.closeSuspect(now, node, "superseded")
		d.state[node] = Alive
		d.inc[node] = inc
		d.beat[node] = beat
		d.lastFresh[node] = now
		if was == Dead {
			d.stats.Rejoins++
			d.im.rejoins.Inc()
			d.im.deadPeers.Set(d.deadCount())
			d.tracer.Emitf(now, trace.Live, d.me, "rejoin", "node=%d inc=%d", node, inc)
		}
	case inc == d.inc[node]:
		if beat == d.beat[node] {
			return // no progress; Tick handles timeouts
		}
		d.beat[node] = beat
		if d.state[node] == Dead {
			// Fencing: the dead identity keeps beating (e.g. its stale
			// state replicated after a repair, before it noticed the
			// outage) but cannot come back without a new incarnation.
			d.stats.FencedBeats++
			d.im.fenced.Inc()
			d.tracer.Emitf(now, trace.Live, d.me, "fence", "node=%d inc=%d beat=%d", node, inc, beat)
			return
		}
		d.lastFresh[node] = now
		if d.state[node] == Suspect {
			d.stats.Refutes++
			d.im.refutes.Inc()
			d.closeSuspect(now, node, "refuted")
			d.state[node] = Alive
		}
	default:
		// A sample older than what we already saw: a stale replica
		// racing a rejoin. Ignore it entirely.
	}
}

// Tick advances timeout-based transitions at virtual time now. The
// owner calls it once per heartbeat period, after the Observe pass.
func (d *Detector) Tick(now sim.Time) {
	for node := 0; node < d.n; node++ {
		if node == d.me {
			continue
		}
		stall := now.Sub(d.lastFresh[node])
		switch d.state[node] {
		case Alive:
			if stall >= d.cfg.SuspectAfter {
				d.state[node] = Suspect
				d.stats.Suspects++
				d.im.suspects.Inc()
				d.suspectSpn[node] = d.tracer.BeginSpan(now, trace.Live, d.me, "suspect", 0, d.tracer.Parent(),
					"node=%d inc=%d stall=%v", node, d.inc[node], stall)
			}
		case Suspect:
			if stall >= d.cfg.ConfirmAfter {
				d.state[node] = Dead
				d.stats.Confirms++
				d.im.confirms.Inc()
				d.im.deadPeers.Set(d.deadCount())
				d.closeSuspect(now, node, "confirmed-dead")
				d.tracer.Emitf(now, trace.Live, d.me, "dead", "node=%d inc=%d stall=%v", node, d.inc[node], stall)
			}
		}
	}
	d.checkPartition(now)
}

// ObserveRing feeds the card's ring status register — the number of
// severed segments (scramnet.NIC.RingCuts) — sampled once per heartbeat
// tick before the Observe pass. Two or more cuts are the hardware
// corroboration a partition declaration requires; the count dropping
// back below two is what heals one: the verdicts formed against the
// partitioned arc are discarded wholesale, because the evidence that
// justified them is gone — no incarnation bump is demanded of peers
// that never actually died.
func (d *Detector) ObserveRing(now sim.Time, cuts int) {
	d.cuts = cuts
	if d.part != nil && cuts < 2 {
		d.heal(now, "spliced")
	}
}

// checkPartition runs after the per-peer timeout pass: declare a
// partition when the unresponsive peers form one contiguous arc under
// double-cut evidence, or heal a declared one whose arc dissolved.
func (d *Detector) checkPartition(now sim.Time) {
	if d.part != nil {
		// Dissolution heal: a formerly unreachable peer produced a
		// fresh beat (refute or rejoin) while the cut count still reads
		// partitioned — the arc evidence collapsed, so the declaration
		// cannot stand.
		for _, p := range d.part.Peers {
			if d.state[p] == Alive {
				d.heal(now, "dissolved")
				break
			}
		}
		return
	}
	if d.cuts < 2 {
		d.pend = nil
		return
	}
	var far []int
	for node := 0; node < d.n; node++ {
		if node != d.me && d.state[node] != Alive {
			far = append(far, node)
		}
	}
	if len(far) == 0 || !d.contiguousArc(far) {
		d.pend = nil
		return
	}
	if !equalInts(d.pend, far) {
		d.pend = append(d.pend[:0], far...)
		return
	}
	near := make([]int, 0, d.n-len(far))
	unreach := make([]bool, d.n)
	for _, p := range far {
		unreach[p] = true
	}
	for node := 0; node < d.n; node++ {
		if !unreach[node] {
			near = append(near, node)
		}
	}
	minority := false
	switch {
	case len(near) < len(far):
		minority = true
	case len(near) == len(far):
		minority = near[0] != 0 // node 0's arc breaks the tie
	}
	quorum := near
	if minority {
		quorum = far
	}
	d.part = &PartitionInfo{Minority: minority, Peers: far, Quorum: quorum}
	d.pend = nil
	d.stats.Partitions++
	d.im.partitions.Inc()
	d.tracer.Emitf(now, trace.Live, d.me, "partition-fence",
		"peers=%v quorum=%v minority=%v cuts=%d", far, quorum, minority, d.cuts)
}

// contiguousArc reports whether the given peers (never including me,
// never empty) occupy one contiguous arc of the ring — equivalently,
// the cyclic membership bitmap has exactly two boundaries.
func (d *Detector) contiguousArc(peers []int) bool {
	member := make([]bool, d.n)
	for _, p := range peers {
		member[p] = true
	}
	b := 0
	for i := 0; i < d.n; i++ {
		if member[i] != member[(i+1)%d.n] {
			b++
		}
	}
	return b == 2
}

// heal clears a declared partition: every far-arc verdict resets to
// Alive with a fresh stall clock, and a minority-side node latches the
// resync request its transport consumes via TakeResync.
func (d *Detector) heal(now sim.Time, why string) {
	p := d.part
	d.part = nil
	d.pend = nil
	for _, node := range p.Peers {
		if d.state[node] == Alive {
			continue
		}
		d.closeSuspect(now, node, "partition-heal")
		d.state[node] = Alive
		d.lastFresh[node] = now
	}
	d.im.deadPeers.Set(d.deadCount())
	d.stats.PartitionHeals++
	d.im.partitionHeals.Inc()
	if p.Minority {
		d.resync = true
	}
	d.tracer.Emitf(now, trace.Live, d.me, "partition-heal", "peers=%v minority=%v %s", p.Peers, p.Minority, why)
}

// Partition implements PartitionView. Nil-safe on a nil *Detector.
func (d *Detector) Partition() (PartitionInfo, bool) {
	if d == nil || d.part == nil {
		return PartitionInfo{}, false
	}
	p := *d.part
	p.Peers = append([]int(nil), p.Peers...)
	p.Quorum = append([]int(nil), p.Quorum...)
	return p, true
}

// Fenced reports whether the local node sits on the minority side of a
// declared partition: new sends must be rejected until the ring heals.
// Nil-safe on a nil *Detector.
func (d *Detector) Fenced() bool { return d != nil && d.part != nil && d.part.Minority }

// TakeResync reports — once per heal — that the local node returned
// from the minority side of a partition and must resync its published
// state (billboard re-publish, retry-slot reconciliation).
func (d *Detector) TakeResync() bool {
	r := d.resync
	d.resync = false
	return r
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reset forgets every verdict and restarts all stall clocks at now. The
// owner calls it when the local node bumps its own incarnation after a
// link outage: verdicts formed while partitioned observed a frozen
// replica and are meaningless.
func (d *Detector) Reset(now sim.Time) {
	for node := 0; node < d.n; node++ {
		d.closeSuspect(now, node, "reset")
		d.state[node] = Alive
		d.lastFresh[node] = now
	}
	d.part = nil
	d.pend = nil
	d.im.deadPeers.Set(0)
}

func (d *Detector) closeSuspect(now sim.Time, node int, why string) {
	if d.suspectSpn[node] != 0 {
		d.tracer.EndSpan(now, trace.Live, d.me, "suspect-end", d.suspectSpn[node], 0, "node=%d %s", node, why)
		d.suspectSpn[node] = 0
	}
}

func (d *Detector) deadCount() int64 {
	var n int64
	for _, s := range d.state {
		if s == Dead {
			n++
		}
	}
	return n
}

// DeadIn returns the lowest-numbered member of group (node ids) that is
// confirmed Dead, or -1 when all are Alive or merely Suspect. Nil-safe
// on a nil *Detector.
func (d *Detector) DeadIn(group []int) int {
	if d == nil {
		return -1
	}
	for _, node := range group {
		if node != d.me && node >= 0 && node < d.n && d.state[node] == Dead {
			return node
		}
	}
	return -1
}
