package liveness_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// cutScript severs two ring segments at cut and splices both at heal —
// the canonical double-cut partition.
func cutScript(segA, segB int, cut, heal sim.Duration) *fault.Script {
	return &fault.Script{Seed: 77, Actions: []fault.Action{
		{At: at(cut), Kind: fault.LinkCut, Node: segA},
		{At: at(cut), Kind: fault.LinkCut, Node: segB},
		{At: at(heal), Kind: fault.LinkSplice, Node: segA},
		{At: at(heal), Kind: fault.LinkSplice, Node: segB},
	}}
}

// TestPartitionFenceAndHeal walks a full partition cycle on a 5-node
// ring: segments 1 (1→2) and 3 (3→4) are cut, splitting the ring into
// a majority arc {4,0,1} and a minority arc {2,3}. Every node must
// declare the partition (with the correct side), the minority must
// fence new sends, and after the splice everyone reconverges to an
// all-alive view with the minority resynced under a fresh incarnation.
func TestPartitionFenceAndHeal(t *testing.T) {
	const (
		nodes = 5
		cutAt = 2 * sim.Millisecond
		heal  = 12 * sim.Millisecond
	)
	k := sim.NewKernel()
	defer k.Close()
	c := livenessCluster(t, k, nodes, cutScript(1, 3, cutAt, heal))
	k.At(at(25*sim.Millisecond), func() {})

	majority := map[int]bool{4: true, 0: true, 1: true}

	// Probe mid-partition, comfortably after the two-tick declaration
	// but well before the heal.
	k.RunUntil(at(6 * sim.Millisecond))
	for i := 0; i < nodes; i++ {
		part, ok := ep(c, i).Partition()
		if !ok {
			t.Fatalf("t=6ms: node %d declared no partition", i)
		}
		if part.Minority == majority[i] {
			t.Fatalf("t=6ms: node %d minority=%v, want %v", i, part.Minority, !majority[i])
		}
		for _, p := range part.Peers {
			if majority[p] == majority[i] {
				t.Fatalf("t=6ms: node %d lists same-side peer %d as unreachable", i, p)
			}
		}
		wantFar := 2 // the majority's far arc is {2,3}
		if !majority[i] {
			wantFar = 3 // the minority's far arc is {4,0,1}
		}
		if len(part.Peers) != wantFar {
			t.Fatalf("t=6ms: node %d peers=%v, want %d far nodes", i, part.Peers, wantFar)
		}
		if st := ep(c, i).LivenessStats(); st.Partitions != 1 {
			t.Fatalf("t=6ms: node %d Partitions=%d, want 1", i, st.Partitions)
		}
	}

	// Minority posts are fenced with a typed error; majority posts to
	// same-side peers still work.
	k.Spawn("fence-probe", func(p *sim.Proc) {
		if err := c.Endpoints[2].Send(p, 3, []byte("x")); !errors.Is(err, core.ErrFenced) {
			t.Errorf("minority send: err=%v, want ErrFenced", err)
		}
		if err := c.Endpoints[0].Send(p, 1, []byte("y")); err != nil {
			t.Errorf("majority same-side send: %v", err)
		} else {
			buf := make([]byte, 8)
			if _, err := c.Endpoints[1].Recv(p, 0, buf); err != nil {
				t.Errorf("majority same-side recv: %v", err)
			}
		}
	})
	k.RunUntil(at(8 * sim.Millisecond))
	if fenced := ep(c, 2).Stats().FencedSends; fenced != 1 {
		t.Fatalf("minority FencedSends=%d, want 1", fenced)
	}

	// After the splice: partitions cleared, everyone alive everywhere,
	// and the minority members resynced under a bumped incarnation.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if _, ok := ep(c, i).Partition(); ok {
			t.Fatalf("node %d still partitioned after splice", i)
		}
		st := ep(c, i).LivenessStats()
		if st.PartitionHeals != 1 {
			t.Fatalf("node %d PartitionHeals=%d, want 1", i, st.PartitionHeals)
		}
		v := ep(c, i).Liveness()
		for n := 0; n < nodes; n++ {
			if n != i && v.State(n) != liveness.Alive {
				t.Fatalf("node %d sees %d %v after heal", i, n, v.State(n))
			}
		}
	}
	for _, m := range []int{2, 3} {
		if self := ep(c, m).LivenessStats().SelfRejoins; self != 1 {
			t.Fatalf("minority node %d self-rejoins=%d, want 1 (resync)", m, self)
		}
	}
	for _, m := range []int{0, 1, 4} {
		if self := ep(c, m).LivenessStats().SelfRejoins; self != 0 {
			t.Fatalf("majority node %d self-rejoins=%d, want 0", m, self)
		}
	}
}

// TestMPIPartitionErrors is the acceptance scenario: a scripted double
// cut yields a PartitionError on every minority rank within the
// confirmation window (no hangs), while majority collectives complete
// over the quorum.
func TestMPIPartitionErrors(t *testing.T) {
	const (
		nodes = 5
		cutAt = 2 * sim.Millisecond
		heal  = 40 * sim.Millisecond // after the workload settles
	)
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	lcfg := liveness.DefaultConfig()
	c, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp,
		Faults: cutScript(1, 3, cutAt, heal), Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	w := mpi.NewWorld(c.Endpoints, mcfg)

	majority := map[int]bool{4: true, 0: true, 1: true}
	errAt := make([]sim.Time, nodes)
	errOf := make([]error, nodes)
	sums := make([]uint32, nodes)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		// Let the double cut land and the partition be declared
		// cluster-wide (the shared ticker converges every detector).
		p.Delay(cutAt + 4*sim.Millisecond)
		err := cm.Barrier(p)
		errAt[me] = p.Now()
		errOf[me] = err
		if !majority[me] {
			// Point-to-point across the cut fails typed, not hangs.
			if err := cm.Send(p, 0, 9, []byte("x")); !errors.As(err, new(*mpi.PartitionError)) {
				t.Errorf("minority rank %d cross-cut send: %v", me, err)
			}
			return
		}
		// Majority continues: an allreduce over the quorum.
		var in, out [4]byte
		in[0] = byte(1 << me)
		if err := cm.Allreduce(p, mpi.SumU32, in[:], out[:]); err != nil {
			t.Errorf("majority rank %d allreduce: %v", me, err)
			return
		}
		sums[me] = uint32(out[0])
		// Bcast rooted in the quorum also completes.
		buf := []byte{0, 0}
		if me == 0 {
			buf = []byte{7, 7}
		}
		if err := cm.Bcast(p, 0, buf); err != nil {
			t.Errorf("majority rank %d bcast: %v", me, err)
		} else if buf[0] != 7 {
			t.Errorf("majority rank %d bcast payload %v", me, buf)
		}
		// Bcast rooted on the far side cannot produce a payload.
		if err := cm.Bcast(p, 2, buf); !errors.As(err, new(*mpi.PartitionError)) {
			t.Errorf("majority rank %d far-rooted bcast: %v", me, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	bound := lcfg.ConfirmAfter + 20*lcfg.Period
	for r := 0; r < nodes; r++ {
		if majority[r] {
			if errOf[r] != nil {
				t.Fatalf("majority rank %d barrier over quorum: %v", r, errOf[r])
			}
			if want := uint32(1<<4 | 1<<0 | 1<<1); sums[r] != want {
				t.Fatalf("majority rank %d quorum sum %#x, want %#x", r, sums[r], want)
			}
			continue
		}
		var pe *mpi.PartitionError
		if !errors.As(errOf[r], &pe) {
			t.Fatalf("minority rank %d barrier returned %v, want PartitionError", r, errOf[r])
		}
		if !pe.Minority {
			t.Fatalf("minority rank %d error claims majority side: %v", r, pe)
		}
		if len(pe.Peers) != 3 {
			t.Fatalf("minority rank %d unreachable peers %v, want the 3 majority ranks", r, pe.Peers)
		}
		delay := errAt[r].Sub(at(cutAt))
		if delay <= 0 || delay > bound {
			t.Fatalf("minority rank %d errored %v after the cut, want (0, %v]", r, delay, bound)
		}
	}
	if pe := w.Engine(0).Stats().PartitionErrors; pe == 0 {
		t.Fatal("majority rank 0 counted no partition errors (far-rooted bcast)")
	}
	if pe := w.Engine(2).Stats().PartitionErrors; pe == 0 {
		t.Fatal("minority rank 2 counted no partition errors")
	}
}

// TestPartitionSoak is the multi-seed partition/heal battery behind
// `make soak`: a double cut separates sender from receiver mid-stream,
// and the delivery oracle checks exactly-once, in-order delivery across
// the heal — no duplicates, no ghosts, nothing lost. The minority-side
// sender simply retries around the fence.
func TestPartitionSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			const nodes = 4
			// Two distinct segments chosen so the cut separates node 0
			// from node 1: one cut in [0] (the 0→1 side reached by seg 0)
			// and one in [1..3].
			segA := 0
			segB := 1 + rng.Intn(nodes-1)
			cutAt := 2*sim.Millisecond + rng.Duration(2*sim.Millisecond)
			healAt := cutAt + 5*sim.Millisecond + rng.Duration(3*sim.Millisecond)

			k := sim.NewKernel()
			defer k.Close()
			c := livenessCluster(t, k, nodes, cutScript(segA, segB, cutAt, healAt))

			const msgs = 50
			var delivered [][]byte
			k.Spawn("tx", func(p *sim.Proc) {
				for i := 0; i < msgs; i++ {
					payload := []byte{byte(i + 1), byte(i + 1), byte(i + 1), byte(i + 1)}
					for {
						err := c.Endpoints[0].Send(p, 1, payload)
						if err == nil {
							break
						}
						if errors.Is(err, core.ErrFenced) {
							// Fenced mid-partition: wait out the fence and
							// resubmit — the oracle still demands exactly-once.
							p.Delay(500 * sim.Microsecond)
							continue
						}
						t.Errorf("send %d: %v", i, err)
						return
					}
					p.Delay(200 * sim.Microsecond)
				}
			})
			k.Spawn("rx", func(p *sim.Proc) {
				buf := make([]byte, 16)
				for i := 0; i < msgs; i++ {
					n, err := c.Endpoints[1].Recv(p, 0, buf)
					if err != nil {
						t.Errorf("recv %d: %v", i, err)
						return
					}
					delivered = append(delivered, append([]byte(nil), buf[:n]...))
				}
			})
			k.At(at(healAt+15*sim.Millisecond), func() {})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}

			// The delivery oracle: every message exactly once, in order.
			if len(delivered) != msgs {
				t.Fatalf("delivered %d/%d across the heal", len(delivered), msgs)
			}
			for i, d := range delivered {
				if len(d) != 4 || d[0] != byte(i+1) {
					t.Fatalf("message %d corrupted or reordered: %v", i, d)
				}
			}
			// And the membership reconverged.
			for i := 0; i < nodes; i++ {
				if _, ok := ep(c, i).Partition(); ok {
					t.Fatalf("node %d still partitioned after heal", i)
				}
				v := ep(c, i).Liveness()
				for n := 0; n < nodes; n++ {
					if n != i && v.State(n) != liveness.Alive {
						t.Fatalf("node %d sees %d %v after heal", i, n, v.State(n))
					}
				}
			}
		})
	}
}

// TestStraddlingBarrierFailsEverywhere covers the collective that is
// already in flight when the partition is declared: its fixed tree
// spans both arcs, so every rank — including majority ranks gathered
// behind a fenced peer on their own side — must abandon it with a
// typed PartitionError instead of sitting out WaitTimeout. (Quorum
// collectives entered *after* the declaration are distinguished by
// their plan mask and keep working; see TestMPIPartitionErrors.)
func TestStraddlingBarrierFailsEverywhere(t *testing.T) {
	const (
		nodes = 5
		cutAt = 2 * sim.Millisecond
		heal  = 60 * sim.Millisecond
	)
	k := sim.NewKernel()
	defer k.Close()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	lcfg := liveness.DefaultConfig()
	c, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp,
		Faults: cutScript(1, 3, cutAt, heal), Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	w := mpi.NewWorld(c.Endpoints, mcfg)

	majority := map[int]bool{4: true, 0: true, 1: true}
	errAt := make([]sim.Time, nodes)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		// Enter just after the cut lands but well before the partition
		// is declared (~SuspectAfter + two ticks later): the fixed tree
		// stalls on cross-arc messages and the declaration must break it.
		p.Delay(cutAt + 100*sim.Microsecond)
		err := cm.Barrier(p)
		errAt[me] = p.Now()
		var pe *mpi.PartitionError
		if !errors.As(err, &pe) {
			t.Errorf("rank %d straddling barrier: %v, want PartitionError", me, err)
			return
		}
		if pe.Minority == majority[me] {
			t.Errorf("rank %d error claims minority=%v", me, pe.Minority)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	bound := lcfg.ConfirmAfter + 20*lcfg.Period
	for r := 0; r < nodes; r++ {
		delay := errAt[r].Sub(at(cutAt))
		if delay <= 0 || delay > bound {
			t.Fatalf("rank %d abandoned the barrier %v after the cut, want (0, %v] — not a WaitTimeout", r, delay, bound)
		}
	}
}

// TestSingleCutNoMPIErrors: with the dual ring, one severed segment is
// healed by the wrap path — no partition is ever declared, no MPI
// operation errors, and traffic flows byte-identically.
func TestSingleCutNoMPIErrors(t *testing.T) {
	const nodes = 4
	k := sim.NewKernel()
	defer k.Close()
	script := &fault.Script{Seed: 3, Actions: []fault.Action{
		{At: at(2 * sim.Millisecond), Kind: fault.LinkCut, Node: 1},
	}}
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	lcfg := liveness.DefaultConfig()
	c, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.WaitTimeout = 100 * sim.Millisecond
	w := mpi.NewWorld(c.Endpoints, mcfg)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		for round := 0; round < 3; round++ {
			p.Delay(2 * sim.Millisecond) // rounds 1+ run across the cut
			if err := cm.Barrier(p); err != nil {
				t.Errorf("rank %d round %d barrier: %v", cm.Rank(), round, err)
				return
			}
			var in, out [4]byte
			in[0] = 1
			if err := cm.Allreduce(p, mpi.SumU32, in[:], out[:]); err != nil {
				t.Errorf("rank %d round %d allreduce: %v", cm.Rank(), round, err)
				return
			}
			if out[0] != nodes {
				t.Errorf("rank %d round %d sum=%d, want %d", cm.Rank(), round, out[0], nodes)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if _, ok := ep(c, i).Partition(); ok {
			t.Fatalf("node %d declared a partition for a single healed cut", i)
		}
		if st := ep(c, i).LivenessStats(); st.Partitions != 0 || st.Confirms != 0 {
			t.Fatalf("node %d stats %+v under a wrapped single cut", i, st)
		}
	}
}
