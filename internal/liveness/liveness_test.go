package liveness

import (
	"testing"

	"repro/internal/sim"
)

func testConfig() Config {
	return Config{
		Enabled:      true,
		Period:       100 * sim.Microsecond,
		SuspectAfter: 500 * sim.Microsecond,
		ConfirmAfter: 2500 * sim.Microsecond,
	}
}

// harness drives a detector one heartbeat period at a time, keeping the
// published beat counters across calls so a stalled node really stalls.
type harness struct {
	d     *Detector
	cfg   Config
	now   sim.Time
	beats []uint32
}

func newHarness(d *Detector, cfg Config) *harness {
	return &harness{d: d, cfg: cfg, beats: make([]uint32, d.n)}
}

// feed advances periods ticks, calling beating(node, period) to decide
// which peers' heartbeat words advance that period (nil = all beat).
func (h *harness) feed(periods int, beating func(node, period int) bool) {
	for p := 0; p < periods; p++ {
		h.now = h.now.Add(h.cfg.Period)
		for node := 0; node < h.d.n; node++ {
			if node == h.d.me {
				continue
			}
			if beating == nil || beating(node, p) {
				h.beats[node]++
			}
			h.d.Observe(h.now, node, h.beats[node], 1)
		}
		h.d.Tick(h.now)
	}
}

func TestDetectorStateMachine(t *testing.T) {
	cfg := testConfig()
	d := NewDetector(0, 4, cfg, 0, nil, nil)
	h := newHarness(d, cfg)

	// All beating: everyone stays Alive.
	h.feed(10, nil)
	for n := 1; n < 4; n++ {
		if d.State(n) != Alive {
			t.Fatalf("node %d = %v after steady beats", n, d.State(n))
		}
	}

	// Node 2 goes silent: Alive → Suspect at SuspectAfter, → Dead at
	// ConfirmAfter; nodes 1 and 3 stay Alive throughout.
	silent := func(node, p int) bool { return node != 2 }
	sawSuspect := false
	for p := 0; p < 30 && d.State(2) != Dead; p++ {
		h.feed(1, silent)
		if d.State(2) == Suspect {
			sawSuspect = true
		}
	}
	if !sawSuspect {
		t.Fatal("node 2 never entered Suspect before Dead")
	}
	if d.State(2) != Dead {
		t.Fatal("node 2 never confirmed Dead")
	}
	if d.State(1) != Alive || d.State(3) != Alive {
		t.Fatalf("collateral verdicts: 1=%v 3=%v", d.State(1), d.State(3))
	}
	st := d.Stats()
	if st.Suspects != 1 || st.Confirms != 1 {
		t.Fatalf("stats %+v, want 1 suspect + 1 confirm", st)
	}
}

func TestLateBeatRefutesSuspicion(t *testing.T) {
	cfg := testConfig()
	d := NewDetector(0, 2, cfg, 0, nil, nil)
	h := newHarness(d, cfg)
	h.feed(3, nil)
	// Stall node 1 just past SuspectAfter, then let one beat through.
	h.feed(6, func(node, p int) bool { return false })
	if d.State(1) != Suspect {
		t.Fatalf("node 1 = %v after %v stall", d.State(1), 6*cfg.Period)
	}
	h.feed(1, nil)
	if d.State(1) != Alive {
		t.Fatalf("node 1 = %v after refuting beat", d.State(1))
	}
	st := d.Stats()
	if st.Refutes != 1 || st.Confirms != 0 {
		t.Fatalf("stats %+v, want 1 refute and no confirms", st)
	}
}

func TestIncarnationFencingAndRejoin(t *testing.T) {
	cfg := testConfig()
	d := NewDetector(0, 2, cfg, 0, nil, nil)
	h := newHarness(d, cfg)
	h.feed(3, nil)
	h.feed(30, func(node, p int) bool { return false })
	if d.State(1) != Dead {
		t.Fatalf("node 1 = %v, want dead", d.State(1))
	}

	// Beats at the old incarnation are fenced: still Dead.
	beat := uint32(100)
	for i := 0; i < 5; i++ {
		h.now = h.now.Add(cfg.Period)
		beat++
		d.Observe(h.now, 1, beat, 1)
		d.Tick(h.now)
	}
	if d.State(1) != Dead {
		t.Fatalf("stale incarnation resurrected node 1: %v", d.State(1))
	}
	if d.Stats().FencedBeats == 0 {
		t.Fatal("fenced beats not counted")
	}

	// A strictly higher incarnation rejoins, even with a lower beat.
	h.now = h.now.Add(cfg.Period)
	d.Observe(h.now, 1, 1, 2)
	if d.State(1) != Alive || d.Incarnation(1) != 2 {
		t.Fatalf("rejoin failed: state=%v inc=%d", d.State(1), d.Incarnation(1))
	}
	if d.Stats().Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", d.Stats().Rejoins)
	}

	// Stale replicas of the old incarnation race in afterwards: ignored.
	d.Observe(h.now, 1, 999, 1)
	if d.State(1) != Alive || d.Incarnation(1) != 2 {
		t.Fatalf("stale sample regressed verdict: state=%v inc=%d", d.State(1), d.Incarnation(1))
	}
}

func TestIncarnationWraparound(t *testing.T) {
	if !incLess(^uint32(0), 0) {
		t.Fatal("incarnation comparison does not wrap")
	}
	if incLess(0, ^uint32(0)) {
		t.Fatal("wraparound comparison inverted")
	}
	d := NewDetector(0, 2, testConfig(), 0, nil, nil)
	d.Observe(1, 1, 1, ^uint32(0))
	d.Observe(2, 1, 1, 0) // wrapped: strictly newer
	if d.Incarnation(1) != 0 {
		t.Fatalf("wraparound incarnation rejected: inc=%d", d.Incarnation(1))
	}
}

func TestResetForgetsVerdicts(t *testing.T) {
	cfg := testConfig()
	d := NewDetector(0, 3, cfg, 0, nil, nil)
	h := newHarness(d, cfg)
	h.feed(30, func(node, p int) bool { return false })
	if d.State(1) != Dead || d.State(2) != Dead {
		t.Fatalf("setup: 1=%v 2=%v", d.State(1), d.State(2))
	}
	d.Reset(h.now)
	if d.State(1) != Alive || d.State(2) != Alive {
		t.Fatalf("verdicts survive Reset: 1=%v 2=%v", d.State(1), d.State(2))
	}
	// Stall clocks restarted: nobody re-dies until a full window elapses.
	d.Tick(h.now.Add(cfg.SuspectAfter - 1))
	if d.State(1) != Alive {
		t.Fatal("stall clock not restarted by Reset")
	}
}

func TestDeadIn(t *testing.T) {
	cfg := testConfig()
	d := NewDetector(0, 4, cfg, 0, nil, nil)
	if got := d.DeadIn([]int{0, 1, 2, 3}); got != -1 {
		t.Fatalf("DeadIn on healthy cluster = %d", got)
	}
	newHarness(d, cfg).feed(30, func(node, p int) bool { return node != 2 })
	if got := d.DeadIn([]int{0, 1, 2, 3}); got != 2 {
		t.Fatalf("DeadIn = %d, want 2", got)
	}
	if got := d.DeadIn([]int{0, 1, 3}); got != -1 {
		t.Fatalf("DeadIn excluding the dead node = %d", got)
	}
	var nilD *Detector
	if got := nilD.DeadIn([]int{0, 1}); got != -1 {
		t.Fatalf("nil DeadIn = %d", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Enabled: true},
		{Enabled: true, Period: 100, SuspectAfter: 50, ConfirmAfter: 500},
		{Enabled: true, Period: 100, SuspectAfter: 500, ConfirmAfter: 500},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated: %+v", i, c)
		}
	}
}
