package liveness_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/liveness"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// livenessCluster builds an n-node SCRAMNet cluster with the heartbeat
// subsystem and the BBP retry extension enabled, and the given fault
// script driving the ring.
func livenessCluster(t testing.TB, k *sim.Kernel, n int, script *fault.Script) *cluster.Cluster {
	t.Helper()
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	lcfg := liveness.DefaultConfig()
	c, err := cluster.New(k, cluster.Options{
		Nodes: n, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func ep(c *cluster.Cluster, i int) *core.Endpoint {
	return c.Endpoints[i].(*core.Endpoint)
}

func at(d sim.Duration) sim.Time { return sim.Time(0).Add(d) }

// TestSuspectConfirmRejoin walks one full membership cycle driven by a
// deterministic fault script: node 3 is bypassed at 2 ms, confirmed dead
// within the detector's windows, repaired at 8 ms, and rejoins with a
// fresh incarnation.
func TestSuspectConfirmRejoin(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	script := &fault.Script{Seed: 11, Actions: []fault.Action{
		{At: at(2 * sim.Millisecond), Kind: fault.NodeFail, Node: 3},
		{At: at(8 * sim.Millisecond), Kind: fault.NodeRepair, Node: 3},
	}}
	c := livenessCluster(t, k, 4, script)
	k.At(at(15*sim.Millisecond), func() {}) // keep the heartbeat ticker armed

	view := ep(c, 0).Liveness()
	if view == nil {
		t.Fatal("liveness enabled but endpoint exposes no view")
	}

	// Before the failure: everyone alive.
	k.RunUntil(at(1 * sim.Millisecond))
	for n := 1; n < 4; n++ {
		if view.State(n) != liveness.Alive {
			t.Fatalf("t=1ms: node %d = %v", n, view.State(n))
		}
	}

	// SuspectAfter (500 µs) past the bypass, plus a few periods of
	// slack: suspected but not yet confirmed.
	k.RunUntil(at(2*sim.Millisecond + 800*sim.Microsecond))
	if got := view.State(3); got != liveness.Suspect {
		t.Fatalf("t=2.8ms: node 3 = %v, want suspect", got)
	}

	// ConfirmAfter (2.5 ms) past the bypass, plus slack: dead.
	k.RunUntil(at(5 * sim.Millisecond))
	if got := view.State(3); got != liveness.Dead {
		t.Fatalf("t=5ms: node 3 = %v, want dead", got)
	}
	st := ep(c, 0).LivenessStats()
	if st.Suspects != 1 || st.Confirms != 1 {
		t.Fatalf("t=5ms stats: %+v", st)
	}

	// One heartbeat period after the repair the node notices its link
	// epoch turned over, bumps its incarnation, and peers readmit it.
	k.RunUntil(at(9 * sim.Millisecond))
	if got := view.State(3); got != liveness.Alive {
		t.Fatalf("t=9ms: node 3 = %v, want alive after rejoin", got)
	}
	if inc := view.Incarnation(3); inc != 2 {
		t.Fatalf("t=9ms: node 3 incarnation = %d, want 2", inc)
	}
	st = ep(c, 0).LivenessStats()
	if st.Rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", st.Rejoins)
	}
	if self := ep(c, 3).LivenessStats().SelfRejoins; self != 1 {
		t.Fatalf("node 3 self-rejoins = %d, want 1", self)
	}
	// Every survivor's detector converged to the same verdicts.
	for obs := 1; obs < 3; obs++ {
		if got := ep(c, obs).Liveness().State(3); got != liveness.Alive {
			t.Fatalf("observer %d: node 3 = %v after rejoin", obs, got)
		}
	}
}

// TestMPIBarrierDeadPeer is the issue's acceptance scenario: a node dies
// mid-Barrier and every surviving rank gets a DeadPeerError within the
// detector's confirmation window — not after the retry daemon's
// MaxRetries × Timeout budget (~51 ms with doubling backoff).
func TestMPIBarrierDeadPeer(t *testing.T) {
	const (
		nodes  = 4
		victim = 2
	)
	kill := 1 * sim.Millisecond
	k := sim.NewKernel()
	defer k.Close()
	script := &fault.Script{Seed: 5, Actions: []fault.Action{
		{At: at(kill), Kind: fault.NodeFail, Node: victim},
	}}
	bbp := core.DefaultConfig()
	bbp.Retry = core.DefaultRetryConfig()
	bbp.Thresholds.SendDMA = 1 << 30 // the paper's PIO-only channel device
	bbp.Thresholds.RecvDMA = 1 << 30
	bbp.Thresholds.Adaptive = core.AdaptiveConfig{}
	lcfg := liveness.DefaultConfig()
	c, err := cluster.New(k, cluster.Options{
		Nodes: nodes, Net: cluster.SCRAMNet, BBP: &bbp, Faults: script, Liveness: &lcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.McastCollectives = true
	mcfg.WaitTimeout = 100 * sim.Millisecond
	w := mpi.NewWorld(c.Endpoints, mcfg)

	errAt := make([]sim.Time, nodes)
	errOf := make([]error, nodes)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		// A healthy barrier first, so the death lands mid-protocol.
		if err := cm.Barrier(p); err != nil {
			t.Errorf("rank %d healthy barrier: %v", cm.Rank(), err)
			return
		}
		if cm.Rank() == victim {
			return // the machine dies with its process
		}
		err := cm.Barrier(p)
		errAt[cm.Rank()] = p.Now()
		errOf[cm.Rank()] = err
		// Point-to-point operations naming the dead peer fail fast too.
		if err := cm.Send(p, victim, 9, []byte("x")); err == nil {
			t.Errorf("rank %d: send to dead peer succeeded", cm.Rank())
		} else if !errors.As(err, new(*mpi.DeadPeerError)) {
			t.Errorf("rank %d: send to dead peer: %v", cm.Rank(), err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	bound := lcfg.ConfirmAfter + 20*lcfg.Period // detection + a couple of scan rounds
	for r := 0; r < nodes; r++ {
		if r == victim {
			continue
		}
		var dpe *mpi.DeadPeerError
		if !errors.As(errOf[r], &dpe) {
			t.Fatalf("rank %d barrier returned %v, want DeadPeerError", r, errOf[r])
		}
		if dpe.Rank != victim {
			t.Fatalf("rank %d blamed %d, want %d", r, dpe.Rank, victim)
		}
		delay := errAt[r].Sub(at(kill))
		if delay <= 0 || delay > bound {
			t.Fatalf("rank %d errored %v after the kill, want (0, %v]", r, delay, bound)
		}
	}
}

// TestFlappingNode drives rapid fail/repair cycles with fault.Flap: each
// down phase is long enough to be confirmed dead, each up phase rejoins
// with a fresh incarnation, and flapping never poisons verdicts about
// bystanders.
func TestFlappingNode(t *testing.T) {
	const cycles = 3
	period := 7 * sim.Millisecond // down 3.5 ms (> ConfirmAfter), up 3.5 ms
	k := sim.NewKernel()
	defer k.Close()
	c := livenessCluster(t, k, 4, fault.Flap(1, period, cycles))
	k.At(at(sim.Duration(cycles+2)*period), func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	st := ep(c, 0).LivenessStats()
	if st.Suspects != cycles || st.Confirms != cycles || st.Rejoins != cycles {
		t.Fatalf("observer stats %+v, want %d of each transition", st, cycles)
	}
	if self := ep(c, 1).LivenessStats().SelfRejoins; self != cycles {
		t.Fatalf("flapper self-rejoins = %d, want %d", self, cycles)
	}
	for obs := 0; obs < 4; obs++ {
		if obs == 1 {
			continue
		}
		v := ep(c, obs).Liveness()
		for n := 0; n < 4; n++ {
			if n != obs && v.State(n) != liveness.Alive {
				t.Fatalf("observer %d: node %d = %v after flapping settled", obs, n, v.State(n))
			}
		}
		if inc := v.Incarnation(1); inc != uint32(1+cycles) {
			t.Fatalf("observer %d: flapper incarnation = %d, want %d", obs, inc, 1+cycles)
		}
	}
}

// TestLossWindowsNeverKill is the false-positive property: scripts that
// only open packet-loss windows — at any generated rate up to 0.6 —
// must never get a live node declared dead, across seeds.
func TestLossWindowsNeverKill(t *testing.T) {
	horizon := 12 * sim.Millisecond
	prop := func(seed uint64) bool {
		script := fault.Generate(seed, fault.GenConfig{
			Horizon:     horizon,
			Nodes:       4,
			LossWindows: 2,
			MaxLossRate: 0.6,
		})
		k := sim.NewKernel()
		defer k.Close()
		c := livenessCluster(t, k, 4, script)
		k.At(at(horizon+2*sim.Millisecond), func() {})
		if err := k.Run(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		for i := 0; i < 4; i++ {
			if confirms := ep(c, i).LivenessStats().Confirms; confirms != 0 {
				t.Errorf("seed %d (max loss %.2f): node %d confirmed %d deaths under pure loss",
					seed, script.MaxLoss(), i, confirms)
				return false
			}
			v := ep(c, i).Liveness()
			for n := 0; n < 4; n++ {
				if n != i && v.State(n) == liveness.Dead {
					t.Errorf("seed %d: node %d sees %d dead", seed, i, n)
					return false
				}
			}
		}
		return true
	}
	max := 8
	if testing.Short() {
		max = 3
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// TestCongestionNoFalsePositives checks the slow-node scenario: nodes
// saturating the ring with bulk traffic delay each other's heartbeats
// behind TX backlogs, but congestion alone must never confirm a death.
func TestCongestionNoFalsePositives(t *testing.T) {
	k := sim.NewKernel()
	defer k.Close()
	c := livenessCluster(t, k, 4, nil)
	const msgs = 40
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	for src := 0; src < 2; src++ {
		src := src
		dst := src + 2
		k.Spawn(fmt.Sprintf("tx%d", src), func(p *sim.Proc) {
			for i := 0; i < msgs; i++ {
				if err := c.Endpoints[src].Send(p, dst, payload); err != nil {
					t.Errorf("send %d->%d: %v", src, dst, err)
					return
				}
			}
		})
		k.Spawn(fmt.Sprintf("rx%d", dst), func(p *sim.Proc) {
			buf := make([]byte, len(payload))
			for i := 0; i < msgs; i++ {
				if _, err := c.Endpoints[dst].Recv(p, src, buf); err != nil {
					t.Errorf("recv %d<-%d: %v", dst, src, err)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if confirms := ep(c, i).LivenessStats().Confirms; confirms != 0 {
			t.Fatalf("node %d confirmed %d deaths under congestion", i, confirms)
		}
	}
}

// TestSoak is the multi-seed battery behind `make soak`: generated
// scripts mixing loss windows and fail/repair cycles run against live
// traffic, and afterwards every detector must have reconverged to an
// all-alive view with the traffic delivered intact.
func TestSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	horizon := 20 * sim.Millisecond
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			script := fault.Generate(seed, fault.GenConfig{
				Horizon:      horizon,
				Nodes:        4,
				LossWindows:  2,
				MaxLossRate:  0.5,
				NodeFailures: 2,
				Protect:      []int{0, 1}, // the traffic endpoints
			})
			k := sim.NewKernel()
			defer k.Close()
			c := livenessCluster(t, k, 4, script)
			const msgs = 40
			var delivered int
			k.Spawn("tx", func(p *sim.Proc) {
				for i := 0; i < msgs; i++ {
					payload := bytes.Repeat([]byte{byte(i + 1)}, 32)
					if err := c.Endpoints[0].Send(p, 1, payload); err != nil {
						t.Errorf("send %d: %v", i, err)
						return
					}
					p.Delay(100 * sim.Microsecond)
				}
			})
			k.Spawn("rx", func(p *sim.Proc) {
				buf := make([]byte, 64)
				for i := 0; i < msgs; i++ {
					n, err := c.Endpoints[1].Recv(p, 0, buf)
					if err != nil {
						t.Errorf("recv %d: %v", i, err)
						return
					}
					if n != 32 || buf[0] != byte(i+1) {
						t.Errorf("recv %d: n=%d first=%d", i, n, buf[0])
						return
					}
					delivered++
				}
			})
			// A quiet tail long past the last repair, so every failed
			// node's rejoin (and its peers' verdicts) can settle.
			k.At(at(horizon+10*sim.Millisecond), func() {})
			if err := k.Run(); err != nil {
				t.Fatalf("script %v: %v", script, err)
			}
			if delivered != msgs {
				t.Fatalf("script %v: delivered %d/%d", script, delivered, msgs)
			}
			for i := 0; i < 4; i++ {
				v := ep(c, i).Liveness()
				for n := 0; n < 4; n++ {
					if n != i && v.State(n) != liveness.Alive {
						t.Fatalf("script %v: node %d sees %d %v after the quiet tail",
							script, i, n, v.State(n))
					}
				}
			}
		})
	}
}
