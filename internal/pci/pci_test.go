package pci

import (
	"testing"

	"repro/internal/sim"
)

func run(t *testing.T, fn func(k *sim.Kernel, b *Bus, p *sim.Proc)) sim.Time {
	t.Helper()
	k := sim.NewKernel()
	b := New(k, DefaultConfig())
	var end sim.Time
	k.Spawn("cpu", func(p *sim.Proc) {
		fn(k, b, p)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

func TestPIOWriteCost(t *testing.T) {
	cfg := DefaultConfig()
	end := run(t, func(k *sim.Kernel, b *Bus, p *sim.Proc) {
		b.PIOWrite(p, 10)
	})
	if want := sim.Time(10 * cfg.PIOWriteWord); end != want {
		t.Fatalf("end = %d, want %d", end, want)
	}
}

func TestPIOReadCostsMoreThanWrite(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PIOReadWord <= cfg.PIOWriteWord {
		t.Fatal("reads across the bus must be dearer than posted writes")
	}
}

func TestZeroWordOpsFree(t *testing.T) {
	end := run(t, func(k *sim.Kernel, b *Bus, p *sim.Proc) {
		b.PIOWrite(p, 0)
		b.PIORead(p, 0)
		b.DMA(p, 0)
	})
	if end != 0 {
		t.Fatalf("zero-length ops cost %d", end)
	}
}

func TestDMAVersusPIOCrossover(t *testing.T) {
	cfg := DefaultConfig()
	pio := func(n int) sim.Duration {
		return sim.Duration(WordsFor(n)) * cfg.PIOWriteWord
	}
	dma := func(n int) sim.Duration {
		return cfg.DMASetup + sim.Duration(n)*cfg.DMAPerByte + cfg.DMACompletionCheck
	}
	if pio(64) > dma(64) {
		t.Error("PIO should win for 64 B")
	}
	if pio(4096) < dma(4096) {
		t.Error("DMA should win for 4 KiB")
	}
}

func TestPIOQueuesBehindDMA(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.NewKernel()
	b := New(k, cfg)
	var pioDone sim.Time
	k.Spawn("dma", func(p *sim.Proc) {
		b.DMAAsync(p, 1000, nil) // occupies bus for 12µs after setup
	})
	k.Spawn("pio", func(p *sim.Proc) {
		p.Delay(cfg.DMASetup) // let the DMA burst start
		b.PIOWrite(p, 1)
		pioDone = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	burstEnd := sim.Time(cfg.DMASetup + 1000*cfg.DMAPerByte)
	if pioDone < burstEnd {
		t.Fatalf("PIO finished at %d, before DMA burst end %d", pioDone, burstEnd)
	}
}

func TestDMAAsyncOverlapsCompute(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.NewKernel()
	b := New(k, cfg)
	var dmaDone, computeDone sim.Time
	k.Spawn("cpu", func(p *sim.Proc) {
		b.DMAAsync(p, 10000, func() { dmaDone = k.Now() })
		p.Delay(1 * sim.Microsecond)
		computeDone = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if computeDone >= dmaDone {
		t.Fatalf("compute (%d) should finish before the 120µs DMA (%d)", computeDone, dmaDone)
	}
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 4: 1, 5: 2, 8: 2, 1024: 256}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
