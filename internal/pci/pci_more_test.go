package pci

import (
	"testing"

	"repro/internal/sim"
)

func TestConfigAccessor(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	b := New(k, cfg)
	if got := b.Config(); got != cfg {
		t.Fatalf("Config() = %+v, want %+v", got, cfg)
	}
}

func TestDMABlockingCost(t *testing.T) {
	cfg := DefaultConfig()
	end := run(t, func(k *sim.Kernel, b *Bus, p *sim.Proc) {
		b.DMA(p, 1000)
	})
	want := sim.Time(cfg.DMASetup + 1000*cfg.DMAPerByte + cfg.DMACompletionCheck)
	if end != want {
		t.Fatalf("DMA(1000) finished at %d, want %d", end, want)
	}
}

func TestDMAAsyncZeroLengthCompletes(t *testing.T) {
	k := sim.NewKernel()
	b := New(k, DefaultConfig())
	fired := false
	k.Spawn("cpu", func(p *sim.Proc) {
		b.DMAAsync(p, 0, func() { fired = true })
		p.Delay(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("zero-length async DMA never completed")
	}
}

func TestTwoDMAsQueueOnBus(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.NewKernel()
	b := New(k, cfg)
	var first, second sim.Time
	k.Spawn("cpu", func(p *sim.Proc) {
		b.DMAAsync(p, 1000, func() { first = k.Now() })
		b.DMAAsync(p, 1000, func() { second = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if second-first != sim.Time(1000*cfg.DMAPerByte) {
		t.Fatalf("second burst completed %d after first; want full burst %d",
			second-first, 1000*cfg.DMAPerByte)
	}
}

func TestNegativeCountsAreFree(t *testing.T) {
	end := run(t, func(k *sim.Kernel, b *Bus, p *sim.Proc) {
		b.PIOWrite(p, -3)
		b.PIORead(p, -1)
		b.DMA(p, -10)
	})
	if end != 0 {
		t.Fatalf("negative-count ops cost %d", end)
	}
}
