// Package pci models the workstation I/O bus that sits between a host
// CPU and a network interface card.
//
// The paper's testbed (dual Pentium II 300 MHz, 32-bit/33 MHz PCI) has an
// asymmetry that dominates the BillBoard Protocol's receive path: posted
// PIO writes to a device are cheap, while PIO reads stall the CPU for a
// full bus round trip ("polling requires memory access across the I/O
// bus which increases the receive overhead", §7 of the paper). DMA avoids
// per-word CPU involvement at the price of a fixed setup cost, which is
// why it only pays off for bulk transfers.
//
// All costs are charged in virtual time against the calling simulation
// process; concurrent DMA occupies a per-bus FIFO server so that PIO
// issued during a DMA burst queues behind it.
package pci

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config holds bus timing parameters. The defaults approximate 32-bit /
// 33 MHz PCI on a 1998 workstation and are the values used for figure
// calibration (see DESIGN.md §5).
type Config struct {
	// PIOWriteWord is the CPU cost of one posted 32-bit write to device
	// memory. Posted writes complete as soon as they enter the bridge
	// write buffer.
	PIOWriteWord sim.Duration
	// PIOReadWord is the CPU cost of one 32-bit read from device memory:
	// a non-posted transaction, roughly 5x a write.
	PIOReadWord sim.Duration
	// PIOReadBurstWord is the per-additional-word cost of an aligned
	// multi-word PIO read burst: the first word pays the full PIOReadWord
	// round trip (address phase, bridge turnaround, device latency), and
	// each subsequent word of the open transaction streams back at the
	// bus data rate — one 33 MHz data phase. Only fixed, aligned control
	// windows the card can satisfy from a single internal fetch are
	// burst-readable (see scramnet.NIC.ReadWords); arbitrary payload
	// reads through the non-prefetchable aperture stay word-priced.
	PIOReadBurstWord sim.Duration
	// DMASetup is the fixed CPU cost of programming the DMA engine
	// (descriptor writes plus doorbell).
	DMASetup sim.Duration
	// DMAPerByte is the bus occupancy per byte moved by DMA bursts.
	DMAPerByte sim.Duration
	// DMACompletionCheck is the CPU cost of observing DMA completion
	// (a status register read).
	DMACompletionCheck sim.Duration
}

// DefaultConfig returns timings for 32-bit/33 MHz PCI.
func DefaultConfig() Config {
	return Config{
		PIOWriteWord:       150 * sim.Nanosecond,
		PIOReadWord:        650 * sim.Nanosecond,
		PIOReadBurstWord:   30 * sim.Nanosecond, // one 33 MHz data phase
		DMASetup:           2 * sim.Microsecond,
		DMAPerByte:         12 * sim.Nanosecond, // ~83 MB/s sustained burst
		DMACompletionCheck: 750 * sim.Nanosecond,
	}
}

// Bus is one node's I/O bus.
type Bus struct {
	k      *sim.Kernel
	cfg    Config
	srv    *sim.Server
	im     busInstruments
	tracer *trace.Recorder
	node   int
}

// busInstruments are the bus's metrics. All fields are nil until
// SetMetrics installs a registry; nil instruments are no-ops.
type busInstruments struct {
	pioWriteWords *metrics.Counter // pci.pio_write_words
	pioReadWords  *metrics.Counter // pci.pio_read_words (single-word reads)
	pioReadBursts *metrics.Counter // pci.pio_read_bursts (burst transactions)
	pioBurstWords *metrics.Counter // pci.pio_read_burst_words (words moved by bursts)
	dmaBursts     *metrics.Counter // pci.dma_bursts
	dmaBytes      *metrics.Counter // pci.dma_bytes
	busyNs        *metrics.Counter // pci.busy_ns: total bus occupancy
}

// New returns a bus on kernel k.
func New(k *sim.Kernel, cfg Config) *Bus {
	return &Bus{k: k, cfg: cfg, srv: sim.NewServer(k)}
}

// SetMetrics installs metrics instruments for this bus, attributed to
// the given node (nil disables).
func (b *Bus) SetMetrics(m *metrics.Registry, node int) {
	if m == nil {
		b.im = busInstruments{}
		return
	}
	b.im = busInstruments{
		pioWriteWords: m.Counter("pci.pio_write_words", node),
		pioReadWords:  m.Counter("pci.pio_read_words", node),
		pioReadBursts: m.Counter("pci.pio_read_bursts", node),
		pioBurstWords: m.Counter("pci.pio_read_burst_words", node),
		dmaBursts:     m.Counter("pci.dma_bursts", node),
		dmaBytes:      m.Counter("pci.dma_bytes", node),
		busyNs:        m.Counter("pci.busy_ns", node),
	}
}

// SetTracer installs a trace recorder for this bus, attributed to the
// given node (nil disables). The bus emits only instants (DMA bursts),
// never spans, and charges no extra virtual time for them.
func (b *Bus) SetTracer(r *trace.Recorder, node int) {
	b.tracer = r
	b.node = node
}

// Config returns the bus timing parameters.
func (b *Bus) Config() Config { return b.cfg }

// occupy charges d of bus time, blocking p behind any in-flight DMA.
func (b *Bus) occupy(p *sim.Proc, d sim.Duration) {
	finish := b.srv.Serve(d, nil)
	if wait := finish.Sub(p.Now()); wait > 0 {
		p.Delay(wait)
	}
}

// PIOWrite charges the cost of writing words 32-bit words to the device.
func (b *Bus) PIOWrite(p *sim.Proc, words int) {
	if words <= 0 {
		return
	}
	b.im.pioWriteWords.Add(int64(words))
	b.im.busyNs.Add(int64(words) * int64(b.cfg.PIOWriteWord))
	b.occupy(p, sim.Duration(words)*b.cfg.PIOWriteWord)
}

// PIORead charges the cost of reading words 32-bit words from the device.
func (b *Bus) PIORead(p *sim.Proc, words int) {
	if words <= 0 {
		return
	}
	b.im.pioReadWords.Add(int64(words))
	b.im.busyNs.Add(int64(words) * int64(b.cfg.PIOReadWord))
	b.occupy(p, sim.Duration(words)*b.cfg.PIOReadWord)
}

// BurstReadCost returns the modeled cost of one aligned words-long PIO
// read burst: a full PIOReadWord round trip for the first word, then
// one PIOReadBurstWord data phase per remaining word. Exported so the
// protocol layer can decide, from the same numbers the bus will charge,
// whether a burst beats the per-word probes it would replace.
func (b *Bus) BurstReadCost(words int) sim.Duration {
	if words <= 0 {
		return 0
	}
	return b.cfg.PIOReadWord + sim.Duration(words-1)*b.cfg.PIOReadBurstWord
}

// PIOReadBurst charges one aligned multi-word read burst (see
// Config.PIOReadBurstWord). Burst words are counted separately from
// single-word reads — pci.pio_read_words keeps its §7 meaning of "reads
// that each cost a full bus round trip".
func (b *Bus) PIOReadBurst(p *sim.Proc, words int) {
	if words <= 0 {
		return
	}
	cost := b.BurstReadCost(words)
	b.im.pioReadBursts.Inc()
	b.im.pioBurstWords.Add(int64(words))
	b.im.busyNs.Add(int64(cost))
	b.occupy(p, cost)
}

// DMA performs a blocking DMA transfer of n bytes between host memory and
// the device: setup, burst occupancy, completion check. The calling
// process is blocked for the full duration (the simple synchronous shape
// used by the BBP bulk path); use DMAAsync to overlap.
func (b *Bus) DMA(p *sim.Proc, n int) {
	if n <= 0 {
		return
	}
	b.CountDMABurst(n)
	p.Delay(b.cfg.DMASetup)
	b.occupy(p, sim.Duration(n)*b.cfg.DMAPerByte)
	p.Delay(b.cfg.DMACompletionCheck)
}

// CountDMABurst records one n-byte DMA burst in the bus metrics. It is
// also called by engines that charge their own burst occupancy (the
// NIC's ring-overlapped transmit path) so that every DMA byte crossing
// the bus is accounted for exactly once.
func (b *Bus) CountDMABurst(n int) {
	b.im.dmaBursts.Inc()
	b.im.dmaBytes.Add(int64(n))
	b.im.busyNs.Add(int64(n) * int64(b.cfg.DMAPerByte))
	if b.tracer != nil {
		b.tracer.EmitMsg(b.k.Now(), trace.Host, b.node, "dma-burst", 0, b.tracer.Parent(), "len=%d", n)
	}
}

// DMAAsync charges setup on the caller, schedules the burst on the bus,
// and invokes done when the transfer completes. The caller continues
// computing while the engine runs.
func (b *Bus) DMAAsync(p *sim.Proc, n int, done func()) {
	p.Delay(b.cfg.DMASetup)
	if n <= 0 {
		if done != nil {
			b.k.AfterKind(0, "bus", done)
		}
		return
	}
	b.CountDMABurst(n)
	b.srv.Serve(sim.Duration(n)*b.cfg.DMAPerByte, done)
}

// WordsFor returns the number of 32-bit bus transactions needed to move
// n bytes by PIO.
func WordsFor(n int) int { return (n + 3) / 4 }
