package shm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

func ring(t testing.TB, nodes int) (*sim.Kernel, *scramnet.Network) {
	t.Helper()
	k := sim.NewKernel()
	n, err := scramnet.New(k, scramnet.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	n.SetSingleWriterCheck(true)
	return k, n
}

func TestRegionAllocationDeterministic(t *testing.T) {
	// Two independently constructed regions hand out identical offsets:
	// the property that lets every node agree on the layout for free.
	mk := func() []int {
		r, err := NewRegion(0x1000, 4096)
		if err != nil {
			t.Fatal(err)
		}
		w, _ := r.NewWord()
		f, _ := r.NewF64()
		a, _ := r.NewArray(100)
		pb, _ := r.NewPublished(64)
		return []int{w.off, f.off, a.off, pb.payload.off, pb.version.off}
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layouts differ: %v vs %v", a, b)
		}
	}
}

func TestRegionExhaustion(t *testing.T) {
	r, err := NewRegion(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewArray(12); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NewF64(); err == nil {
		t.Fatal("allocation beyond region accepted")
	}
	if r.Remaining() != 4 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	if _, err := NewRegion(-1, 100); err == nil {
		t.Fatal("negative base accepted")
	}
}

func TestWordAndF64Replication(t *testing.T) {
	k, n := ring(t, 3)
	r, _ := NewRegion(0x2000, 1024)
	w, _ := r.NewWord()
	f, _ := r.NewF64()
	var gotW uint32
	var gotF float64
	k.Spawn("writer", func(p *sim.Proc) {
		w.Set(p, n.NIC(0), 0xCAFE)
		f.Set(p, n.NIC(0), 3.25)
	})
	k.Spawn("reader", func(p *sim.Proc) {
		p.Delay(100 * sim.Microsecond)
		gotW = w.Get(p, n.NIC(2))
		gotF = f.Get(p, n.NIC(2))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotW != 0xCAFE || gotF != 3.25 {
		t.Fatalf("got %#x %v", gotW, gotF)
	}
}

func TestArrayBoundsChecked(t *testing.T) {
	k, n := ring(t, 2)
	r, _ := NewRegion(0, 256)
	a, _ := r.NewArray(16)
	k.Spawn("p", func(p *sim.Proc) {
		if err := a.Set(p, n.NIC(0), 10, make([]byte, 8)); err == nil {
			t.Error("out-of-bounds write accepted")
		}
		if err := a.Get(p, n.NIC(0), -1, make([]byte, 4)); err == nil {
			t.Error("negative index accepted")
		}
		if err := a.Set(p, n.NIC(0), 0, make([]byte, 16)); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 16 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestPublishedNeverTorn(t *testing.T) {
	// A writer republishing continuously; a remote reader must never
	// observe a mixed-version payload.
	k, n := ring(t, 2)
	r, _ := NewRegion(0x3000, 1024)
	pb, _ := r.NewPublished(64)
	const rounds = 30
	k.Spawn("writer", func(p *sim.Proc) {
		rec := make([]byte, 64)
		for i := 1; i <= rounds; i++ {
			for j := range rec {
				rec[j] = byte(i)
			}
			if err := pb.Publish(p, n.NIC(0), rec); err != nil {
				t.Error(err)
				return
			}
			p.Delay(20 * sim.Microsecond)
		}
	})
	k.Spawn("reader", func(p *sim.Proc) {
		buf := make([]byte, 64)
		seen := uint32(0)
		for seen < 2*rounds { // versions advance by 2 per publish
			v, err := pb.Read(p, n.NIC(1), buf)
			if err != nil {
				t.Error(err)
				return
			}
			if v%2 != 0 {
				t.Errorf("odd version %d escaped Read", v)
				return
			}
			for j := 1; j < 64; j++ {
				if buf[j] != buf[0] {
					t.Errorf("torn read at version %d: byte 0 = %d, byte %d = %d", v, buf[0], j, buf[j])
					return
				}
			}
			if v > seen {
				seen = v
			}
			p.Delay(7 * sim.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPublishedTornProperty(t *testing.T) {
	// Property: for random writer/reader pacing, snapshots are always
	// internally consistent.
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		defer k.Close()
		n, err := scramnet.New(k, scramnet.DefaultConfig(2))
		if err != nil {
			return false
		}
		r, _ := NewRegion(0, 2048)
		pb, _ := r.NewPublished(32)
		rng := sim.NewRNG(seed)
		wGap := sim.Duration(rng.Intn(30)+1) * sim.Microsecond
		rGap := sim.Duration(rng.Intn(12)+1) * sim.Microsecond
		ok := true
		k.Spawn("w", func(p *sim.Proc) {
			rec := make([]byte, 32)
			for i := 1; i <= 20; i++ {
				for j := range rec {
					rec[j] = byte(i)
				}
				if pb.Publish(p, n.NIC(0), rec) != nil {
					ok = false
					return
				}
				p.Delay(wGap)
			}
		})
		k.Spawn("r", func(p *sim.Proc) {
			buf := make([]byte, 32)
			for i := 0; i < 40; i++ {
				if _, err := pb.Read(p, n.NIC(1), buf); err != nil {
					ok = false
					return
				}
				if !bytes.Equal(buf, bytes.Repeat(buf[:1], 32)) {
					ok = false
					return
				}
				p.Delay(rGap)
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPublishedSizeValidation(t *testing.T) {
	k, n := ring(t, 2)
	r, _ := NewRegion(0, 1024)
	pb, _ := r.NewPublished(16)
	k.Spawn("p", func(p *sim.Proc) {
		if err := pb.Publish(p, n.NIC(0), make([]byte, 8)); err == nil {
			t.Error("short publish accepted")
		}
		if _, err := pb.Read(p, n.NIC(0), make([]byte, 8)); err == nil {
			t.Error("short read buffer accepted")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
