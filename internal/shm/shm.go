// Package shm is the shared-memory programming model that SCRAMNet was
// "almost exclusively used for" before the BillBoard Protocol (§1):
// typed, named variables living directly in the replicated address
// space. A Region hands out single-writer cells and arrays; a Published
// record gives torn-read-free multi-word state sharing using the frame
// counter idiom (write payload, then bump the counter — per-sender FIFO
// makes the counter an implicit seqlock).
package shm

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/scramnet"
	"repro/internal/sim"
)

// Region is an allocator over a range of the replicated address space.
// Allocation is layout arithmetic only — every node constructs the same
// region and obtains identical offsets, so no allocation metadata ever
// crosses the network.
type Region struct {
	base, size int
	next       int
}

// NewRegion creates a region covering [base, base+size).
func NewRegion(base, size int) (*Region, error) {
	if base < 0 || size < 4 {
		return nil, fmt.Errorf("shm: bad region [%d, %d)", base, base+size)
	}
	return &Region{base: base, size: size}, nil
}

// alloc reserves n bytes, word-aligned.
func (r *Region) alloc(n int) (int, error) {
	n = (n + 3) &^ 3
	if r.next+n > r.size {
		return 0, fmt.Errorf("shm: region exhausted (%d of %d bytes used)", r.next, r.size)
	}
	off := r.base + r.next
	r.next += n
	return off, nil
}

// Remaining returns unallocated bytes.
func (r *Region) Remaining() int { return r.size - r.next }

// Word is a replicated 32-bit cell. Writes must all come from one node
// (the single-writer discipline); reads may happen anywhere.
type Word struct{ off int }

// NewWord allocates a word cell.
func (r *Region) NewWord() (Word, error) {
	off, err := r.alloc(4)
	return Word{off}, err
}

// Set stores v through the given node's NIC.
func (w Word) Set(p *sim.Proc, nic *scramnet.NIC, v uint32) { nic.WriteWord(p, w.off, v) }

// Get loads the local replica's value.
func (w Word) Get(p *sim.Proc, nic *scramnet.NIC) uint32 { return nic.ReadWord(p, w.off) }

// F64 is a replicated float64 cell. The two words are written
// low-then-high; readers use the Published wrapper when tearing between
// the halves matters.
type F64 struct{ off int }

// NewF64 allocates a float64 cell.
func (r *Region) NewF64() (F64, error) {
	off, err := r.alloc(8)
	return F64{off}, err
}

// Set stores v.
func (f F64) Set(p *sim.Proc, nic *scramnet.NIC, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	nic.Write(p, f.off, b[:])
}

// Get loads the local replica's value.
func (f F64) Get(p *sim.Proc, nic *scramnet.NIC) float64 {
	var b [8]byte
	nic.Read(p, f.off, b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Array is a replicated byte array.
type Array struct{ off, n int }

// NewArray allocates n bytes.
func (r *Region) NewArray(n int) (Array, error) {
	off, err := r.alloc(n)
	return Array{off, n}, err
}

// Len returns the array size.
func (a Array) Len() int { return a.n }

// Set writes data at index i (PIO or DMA by size is the caller's
// choice via nic methods; Set uses PIO, SetDMA the engine).
func (a Array) Set(p *sim.Proc, nic *scramnet.NIC, i int, data []byte) error {
	if i < 0 || i+len(data) > a.n {
		return fmt.Errorf("shm: write [%d,%d) outside array of %d", i, i+len(data), a.n)
	}
	nic.Write(p, a.off+i, data)
	return nil
}

// SetDMA is Set using the DMA engine.
func (a Array) SetDMA(p *sim.Proc, nic *scramnet.NIC, i int, data []byte) error {
	if i < 0 || i+len(data) > a.n {
		return fmt.Errorf("shm: write [%d,%d) outside array of %d", i, i+len(data), a.n)
	}
	nic.WriteDMA(p, a.off+i, data)
	return nil
}

// Get reads len(buf) bytes at index i from the local replica.
func (a Array) Get(p *sim.Proc, nic *scramnet.NIC, i int, buf []byte) error {
	if i < 0 || i+len(buf) > a.n {
		return fmt.Errorf("shm: read [%d,%d) outside array of %d", i, i+len(buf), a.n)
	}
	nic.Read(p, a.off+i, buf)
	return nil
}

// Published is a multi-word record published atomically (with respect
// to readers) by one writer — a seqlock over replicated memory. The
// writer bumps the version to an odd value, writes the payload, then
// bumps it even. Per-sender FIFO replication makes the protocol sound
// remotely: a reader that sees an even version has, by FIFO, already
// received every payload word written before that version — and if the
// version is unchanged after the payload read, no later odd bump (which
// precedes any newer payload word in the stream) has arrived either.
type Published struct {
	payload Array
	version Word
}

// NewPublished allocates an n-byte published record.
func (r *Region) NewPublished(n int) (Published, error) {
	payload, err := r.NewArray(n)
	if err != nil {
		return Published{}, err
	}
	version, err := r.NewWord()
	if err != nil {
		return Published{}, err
	}
	return Published{payload, version}, nil
}

// Publish makes the record odd (write in progress), writes the
// payload, then makes it even.
func (pb Published) Publish(p *sim.Proc, nic *scramnet.NIC, data []byte) error {
	if len(data) != pb.payload.n {
		return fmt.Errorf("shm: publish %d bytes into %d-byte record", len(data), pb.payload.n)
	}
	v := pb.version.Get(p, nic)
	pb.version.Set(p, nic, v+1) // odd: in progress
	if err := pb.payload.Set(p, nic, 0, data); err != nil {
		return err
	}
	pb.version.Set(p, nic, v+2) // even: published
	return nil
}

// Read returns a consistent snapshot and its (even) version, retrying
// while a publish is in flight.
func (pb Published) Read(p *sim.Proc, nic *scramnet.NIC, buf []byte) (version uint32, err error) {
	if len(buf) < pb.payload.n {
		return 0, fmt.Errorf("shm: %d-byte buffer for %d-byte record", len(buf), pb.payload.n)
	}
	for {
		v1 := pb.version.Get(p, nic)
		if v1%2 == 1 {
			continue // write in progress; the Get charged poll time
		}
		if err := pb.payload.Get(p, nic, 0, buf[:pb.payload.n]); err != nil {
			return 0, err
		}
		v2 := pb.version.Get(p, nic)
		if v1 == v2 {
			return v2, nil
		}
		// Torn: the writer republished mid-read; retry.
	}
}

// Version returns the current version without reading the payload.
func (pb Published) Version(p *sim.Proc, nic *scramnet.NIC) uint32 {
	return pb.version.Get(p, nic)
}
