// Package spin is a sPIN-style in-network handler engine for the
// SCRAMNet NIC model (Hoefler et al., PAPERS.md): applications install
// small deterministic handlers that execute at ring transit points,
// before a circulating packet is applied to the local bank and
// forwarded downstream. A handler can let the packet pass (Forward),
// absorb it (Consume), mutate its payload in flight (Rewrite — the
// streaming reduction-on-the-ring primitive), or skip the local apply
// while forwarding unchanged (Steer — topic filtering for pub/sub
// fan-out).
//
// Handler cost is charged in the virtual-time model: each handler
// reports its work in handler cycles via HandlerCtx.Charge, the NIC
// converts cycles to time with scramnet.Config.HandlerCycleCost, and a
// per-packet budget (scramnet.Config.HandlerBudget) bounds the transit
// stall. A packet whose handlers overrun the budget traps to the host:
// every in-flight mutation is rolled back — the payload bytes, any
// injections staged through HandlerCtx.Inject (buffered until the
// verdict commits, because a posted ring packet cannot be recalled),
// and handler-internal state via the TrapAware callback — and the
// packet proceeds as if no handler were installed, so a buggy or
// adversarial handler can slow one transit but never wedge or corrupt
// the ring.
//
// The package is hardware-agnostic on purpose: it knows offsets, bytes
// and cycles, never *scramnet.NIC (which imports this package). All
// engine state is mutated only from simulation callbacks, so handler
// execution is deterministic for a fixed event order — the property the
// determinism battery in internal/scramnet locks in.
package spin

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Verdict is a handler's decision about the packet in transit.
type Verdict int

const (
	// Forward applies the packet to the local bank and forwards it
	// unchanged — the default ring behavior.
	Forward Verdict = iota
	// Consume applies the packet locally and strips it from the ring:
	// no downstream node sees it.
	Consume
	// Rewrite is Forward for a packet whose payload the handler mutated
	// in place: the local bank and every downstream node observe the
	// rewritten bytes, and the origin applies them at strip time.
	Rewrite
	// Steer forwards the packet unchanged but skips the local apply:
	// this node's bank never sees the write.
	Steer
)

func (v Verdict) String() string {
	switch v {
	case Forward:
		return "forward"
	case Consume:
		return "consume"
	case Rewrite:
		return "rewrite"
	case Steer:
		return "steer"
	}
	return fmt.Sprintf("spin.Verdict(%d)", int(v))
}

// Packet is the transit view of one ring transfer unit. Data aliases
// the circulating payload: writing through it is how a Rewrite verdict
// mutates the packet for the local apply, every downstream node, and
// the origin's strip-apply.
type Packet struct {
	// Origin is the injecting node, Off the bank offset the payload
	// lands at, Hops the link traversals so far (including this one).
	Origin int
	Off    int
	Hops   int
	// Data is the payload, mutable in place.
	Data []byte
	// Interrupt mirrors the packet's interrupt bit.
	Interrupt bool
}

// HandlerCtx is the per-transit execution context handed to handlers.
// The hardware hooks (Bank, InjectHook) are wired by the NIC before
// each run; handlers must not retain the context across calls.
type HandlerCtx struct {
	// Node is the transit node the handler executes on.
	Node int
	// Now is the virtual time of the transit.
	Now sim.Time
	// Bank reads n bytes of the local replicated bank at off without
	// charging time — handler memory accesses are on-card, not across
	// the host bus. The returned slice aliases the bank: read-only.
	Bank func(off, n int) []byte
	// InjectHook is the hardware hook behind Inject: it posts a
	// NIC-originated ring write immediately. Handlers never call it
	// directly — they go through Inject, which stages the write until
	// the engine commits the transit's verdict.
	InjectHook func(off int, data []byte)

	spent   int64
	budget  int64
	pendInj []pendingInject
}

// pendingInject is one staged HandlerCtx.Inject call.
type pendingInject struct {
	off  int
	data []byte
}

// Inject stages a NIC-originated ring write of data at off, as if this
// node's host had written it but without host-bus cost (the early-ACK
// primitive). The write is held until every handler for the transit has
// run and is discarded if the packet traps on budget overrun: a trapped
// transit must leave no side effect, and a ring packet, once posted,
// cannot be recalled. On commit the local bank is updated and the
// packet injected in staging order.
func (c *HandlerCtx) Inject(off int, data []byte) {
	c.pendInj = append(c.pendInj, pendingInject{off: off, data: append([]byte(nil), data...)})
}

// Charge records cycles of handler work. Once the per-packet budget is
// exceeded the engine traps the packet to the host: mutations roll
// back and the packet proceeds un-handled.
func (c *HandlerCtx) Charge(cycles int64) {
	if cycles > 0 {
		c.spent += cycles
	}
}

// Spent returns the cycles charged so far this transit.
func (c *HandlerCtx) Spent() int64 { return c.spent }

// Overrun reports whether the charged cycles exceed the packet budget.
func (c *HandlerCtx) Overrun() bool { return c.spent > c.budget }

// Handler executes at a ring transit point for packets overlapping its
// installed offset range. It must be deterministic: its decision may
// depend only on the packet, the local bank, and its own state.
type Handler interface {
	OnTransit(ctx *HandlerCtx, pkt Packet) Verdict
}

// TrapAware is implemented by stateful handlers that must observe a
// budget-overrun trap. When a transit traps, the engine rolls the
// packet bytes back and discards staged injections, then calls OnTrap
// on every handler that ran (in reverse run order); the handler must
// restore any internal state it mutated during that OnTransit call.
// Without this, state committed by a handler — e.g. a reduction's
// combined-byte count — would survive a rollback its packet effects did
// not, silently desynchronizing the two (the trap's contract is that
// the packet proceeds as if no handler were installed). A trap can be
// caused by a *later* handler in the chain, so checking
// HandlerCtx.Overrun inside OnTransit is not a substitute.
type TrapAware interface {
	OnTrap(pkt Packet)
}

// rng is one installed handler's offset range.
type rng struct {
	id      int
	off, n  int
	handler Handler
}

// Engine is one NIC's handler table: installed ranges in install
// order, plus the spin.* instruments. The zero value is unusable; NICs
// create engines lazily on first install so an un-handled ring charges
// nothing.
type Engine struct {
	node    int
	budget  int64
	nextID  int
	ranges  []rng
	stats   Stats
	im      instruments
	scratch []byte    // rollback snapshot, reused across transits
	ran     []Handler // handlers run this transit (TrapAware notification), reused
}

// Stats counts handler activity on one engine.
type Stats struct {
	HandlersRun      int64 // handler executions (one per matching handler per transit)
	HandlerCycles    int64 // cycles charged, including trapped transits
	TrapsToHost      int64 // transits rolled back on budget overrun
	PacketsConsumed  int64
	PacketsRewritten int64
	PacketsSteered   int64
}

// instruments mirror Stats into the metrics registry (nil = no-ops).
type instruments struct {
	handlersRun      *metrics.Counter // spin.handlers_run
	handlerCycles    *metrics.Counter // spin.handler_cycles
	trapsToHost      *metrics.Counter // spin.traps_to_host
	packetsConsumed  *metrics.Counter // spin.packets_consumed
	packetsRewritten *metrics.Counter // spin.packets_rewritten
	packetsSteered   *metrics.Counter // spin.packets_steered
}

// NewEngine builds a handler engine for one transit node with the
// given per-packet cycle budget.
func NewEngine(node int, budget int64) *Engine {
	if budget <= 0 {
		panic("spin: handler budget must be positive")
	}
	return &Engine{node: node, budget: budget}
}

// SetMetrics (re)creates the engine's spin.* instruments against m,
// keyed by the engine's node (nil disables).
func (e *Engine) SetMetrics(m *metrics.Registry) {
	if m == nil {
		e.im = instruments{}
		return
	}
	e.im = instruments{
		handlersRun:      m.Counter("spin.handlers_run", e.node),
		handlerCycles:    m.Counter("spin.handler_cycles", e.node),
		trapsToHost:      m.Counter("spin.traps_to_host", e.node),
		packetsConsumed:  m.Counter("spin.packets_consumed", e.node),
		packetsRewritten: m.Counter("spin.packets_rewritten", e.node),
		packetsSteered:   m.Counter("spin.packets_steered", e.node),
	}
}

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Install registers h for packets overlapping [off, off+n) and returns
// an id for Uninstall. Handlers run in install order; ranges may
// overlap.
func (e *Engine) Install(off, n int, h Handler) int {
	if off < 0 || n <= 0 {
		panic(fmt.Sprintf("spin: bad handler range [%d,%d)", off, off+n))
	}
	if h == nil {
		panic("spin: nil handler")
	}
	e.nextID++
	e.ranges = append(e.ranges, rng{id: e.nextID, off: off, n: n, handler: h})
	return e.nextID
}

// Uninstall removes the handler registered under id, reporting whether
// it was installed.
func (e *Engine) Uninstall(id int) bool {
	for i := range e.ranges {
		if e.ranges[i].id == id {
			e.ranges = append(e.ranges[:i], e.ranges[i+1:]...)
			return true
		}
	}
	return false
}

// Covers reports whether any installed range overlaps [off, off+n) —
// the fast path that keeps un-handled traffic free of handler cost.
func (e *Engine) Covers(off, n int) bool {
	for i := range e.ranges {
		r := &e.ranges[i]
		if off < r.off+r.n && r.off < off+n {
			return true
		}
	}
	return false
}

// Run executes every matching handler against the packet, in install
// order. A Consume or Steer verdict ends the chain; Rewrite is sticky
// across the remaining handlers. On budget overrun the packet traps to
// the host: the payload is rolled back to its pre-handler bytes, staged
// injections are discarded, every handler that ran is notified via
// TrapAware (reverse run order) to roll back its own state, and the
// verdict is forced to Forward, as if no handler were installed. On
// commit, staged injections are flushed in order. The cycles actually
// charged (capped at the budget) are returned so the NIC can convert
// them to transit time.
func (e *Engine) Run(ctx *HandlerCtx, pkt Packet) (v Verdict, cycles int64, trapped bool) {
	ctx.spent, ctx.budget = 0, e.budget
	ctx.pendInj = ctx.pendInj[:0]
	e.scratch = append(e.scratch[:0], pkt.Data...)
	e.ran = e.ran[:0]
	v = Forward
run:
	for i := range e.ranges {
		r := &e.ranges[i]
		if pkt.Off >= r.off+r.n || r.off >= pkt.Off+len(pkt.Data) {
			continue
		}
		e.ran = append(e.ran, r.handler)
		hv := r.handler.OnTransit(ctx, pkt)
		e.stats.HandlersRun++
		e.im.handlersRun.Inc()
		if ctx.Overrun() {
			trapped = true
			break
		}
		switch hv {
		case Consume, Steer:
			v = hv
			break run
		case Rewrite:
			v = Rewrite
		}
	}
	cycles = ctx.spent
	if trapped {
		cycles = e.budget
		copy(pkt.Data, e.scratch)
		ctx.pendInj = ctx.pendInj[:0]
		for i := len(e.ran) - 1; i >= 0; i-- {
			if ta, ok := e.ran[i].(TrapAware); ok {
				ta.OnTrap(pkt)
			}
		}
		v = Forward
		e.stats.TrapsToHost++
		e.im.trapsToHost.Inc()
	}
	for _, inj := range ctx.pendInj {
		ctx.InjectHook(inj.off, inj.data)
	}
	e.stats.HandlerCycles += cycles
	e.im.handlerCycles.Add(cycles)
	switch v {
	case Consume:
		e.stats.PacketsConsumed++
		e.im.packetsConsumed.Inc()
	case Rewrite:
		e.stats.PacketsRewritten++
		e.im.packetsRewritten.Inc()
	case Steer:
		e.stats.PacketsSteered++
		e.im.packetsSteered.Inc()
	}
	return v, cycles, trapped
}
