package spin

import (
	"bytes"
	"testing"

	"repro/internal/metrics"
)

// verdictFn adapts a function to the Handler interface.
type verdictFn func(ctx *HandlerCtx, pkt Packet) Verdict

func (f verdictFn) OnTransit(ctx *HandlerCtx, pkt Packet) Verdict { return f(ctx, pkt) }

// bankOf builds a HandlerCtx.Bank hook over a flat byte slice.
func bankOf(mem []byte) func(off, n int) []byte {
	return func(off, n int) []byte { return mem[off : off+n] }
}

func TestVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{
		Forward: "forward", Consume: "consume", Rewrite: "rewrite", Steer: "steer",
		Verdict(99): "spin.Verdict(99)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d: got %q want %q", int(v), got, want)
		}
	}
}

func TestRingOps(t *testing.T) {
	if OpNone.Valid() || RingOp(200).Valid() {
		t.Error("invalid ops reported valid")
	}
	cases := []struct {
		op      RingOp
		a, b, c uint32
		name    string
	}{
		{OpSumU32, 7, 5, 12, "sum-u32"},
		{OpMaxU32, 7, 5, 7, "max-u32"},
		{OpMaxU32, 5, 7, 7, "max-u32"},
		{OpMinU32, 7, 5, 5, "min-u32"},
		{OpMinU32, 5, 7, 5, "min-u32"},
		{OpBOR, 0b1010, 0b0110, 0b1110, "bor"},
		{OpBAND, 0b1010, 0b0110, 0b0010, "band"},
		{OpBXOR, 0b1010, 0b0110, 0b1100, "bxor"},
	}
	for _, c := range cases {
		if !c.op.Valid() {
			t.Errorf("%v: not valid", c.op)
		}
		if got := c.op.Combine(c.a, c.b); got != c.c {
			t.Errorf("%v(%d,%d): got %d want %d", c.op, c.a, c.b, got, c.c)
		}
		if got := c.op.String(); got != c.name {
			t.Errorf("op string: got %q want %q", got, c.name)
		}
	}
	if got := RingOp(77).String(); got != "spin.RingOp(77)" {
		t.Errorf("unknown op string %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Combine on OpNone did not panic")
		}
	}()
	OpNone.Combine(1, 2)
}

func TestHdrWordRoundtrip(t *testing.T) {
	for _, c := range []struct {
		op RingOp
		n  int
	}{{OpSumU32, 4}, {OpBXOR, 256}, {OpMaxU32, 0xffffff}} {
		op, n := DecodeHdr(HdrWord(c.op, c.n))
		if op != c.op || n != c.n {
			t.Errorf("roundtrip (%v,%d) -> (%v,%d)", c.op, c.n, op, n)
		}
	}
}

func TestEngineInstallValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero budget", func() { NewEngine(0, 0) })
	e := NewEngine(0, 100)
	mustPanic("negative off", func() { e.Install(-1, 4, verdictFn(nil)) })
	mustPanic("zero len", func() { e.Install(0, 0, verdictFn(nil)) })
	mustPanic("nil handler", func() { e.Install(0, 4, nil) })
}

func TestEngineCoversAndUninstall(t *testing.T) {
	e := NewEngine(0, 100)
	id := e.Install(100, 8, verdictFn(func(*HandlerCtx, Packet) Verdict { return Forward }))
	for _, c := range []struct {
		off, n int
		want   bool
	}{
		{100, 4, true}, {104, 4, true}, {96, 4, false}, {108, 4, false},
		{96, 8, true}, {107, 2, true}, {0, 100, false}, {0, 101, true},
	} {
		if got := e.Covers(c.off, c.n); got != c.want {
			t.Errorf("Covers(%d,%d) = %v want %v", c.off, c.n, got, c.want)
		}
	}
	if !e.Uninstall(id) {
		t.Error("Uninstall of live id failed")
	}
	if e.Uninstall(id) {
		t.Error("double Uninstall succeeded")
	}
	if e.Covers(100, 8) {
		t.Error("range still covered after Uninstall")
	}
}

func TestEngineRunOrderAndVerdicts(t *testing.T) {
	e := NewEngine(3, 1000)
	var order []int
	mk := func(tag int, v Verdict) verdictFn {
		return func(ctx *HandlerCtx, pkt Packet) Verdict {
			order = append(order, tag)
			ctx.Charge(1)
			return v
		}
	}
	// Three overlapping handlers: forward, rewrite, forward — rewrite
	// must be sticky across handler 3.
	e.Install(0, 16, mk(1, Forward))
	e.Install(4, 8, mk(2, Rewrite))
	e.Install(0, 16, mk(3, Forward))
	ctx := &HandlerCtx{Node: 3, Bank: bankOf(make([]byte, 32))}
	v, cycles, trapped := e.Run(ctx, Packet{Off: 4, Data: make([]byte, 4)})
	if v != Rewrite || trapped || cycles != 3 {
		t.Errorf("run: v=%v cycles=%d trapped=%v", v, cycles, trapped)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("install order not respected: %v", order)
	}
	// A packet outside handler 2's range runs only 1 and 3.
	order = nil
	v, _, _ = e.Run(ctx, Packet{Off: 12, Data: make([]byte, 4)})
	if v != Forward || len(order) != 2 {
		t.Errorf("range filter: v=%v order=%v", v, order)
	}
	// Consume ends the chain.
	e2 := NewEngine(0, 1000)
	e2.Install(0, 4, mk(4, Consume))
	e2.Install(0, 4, mk(5, Forward))
	order = nil
	v, _, _ = e2.Run(ctx, Packet{Off: 0, Data: make([]byte, 4)})
	if v != Consume || len(order) != 1 {
		t.Errorf("consume chain: v=%v order=%v", v, order)
	}
	// Steer ends the chain too.
	e3 := NewEngine(0, 1000)
	e3.Install(0, 4, mk(6, Steer))
	e3.Install(0, 4, mk(7, Rewrite))
	order = nil
	v, _, _ = e3.Run(ctx, Packet{Off: 0, Data: make([]byte, 4)})
	if v != Steer || len(order) != 1 {
		t.Errorf("steer chain: v=%v order=%v", v, order)
	}
	st := e.Stats()
	if st.HandlersRun != 5 || st.PacketsRewritten != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestEngineBudgetTrapRollsBack(t *testing.T) {
	m := metrics.New()
	e := NewEngine(1, 10)
	e.SetMetrics(m)
	e.Install(0, 4, verdictFn(func(ctx *HandlerCtx, pkt Packet) Verdict {
		putWord(pkt.Data, 0xdeadbeef) // mutation that must be rolled back
		ctx.Charge(50)                // blows the 10-cycle budget
		return Rewrite
	}))
	ran := false
	e.Install(0, 4, verdictFn(func(ctx *HandlerCtx, pkt Packet) Verdict {
		ran = true
		return Forward
	}))
	data := []byte{1, 2, 3, 4}
	ctx := &HandlerCtx{Bank: bankOf(make([]byte, 8))}
	v, cycles, trapped := e.Run(ctx, Packet{Off: 0, Data: data})
	if !trapped || v != Forward {
		t.Fatalf("v=%v trapped=%v", v, trapped)
	}
	if cycles != 10 {
		t.Errorf("trapped transit must charge exactly the budget, got %d", cycles)
	}
	if ran {
		t.Error("handler after the overrun still ran")
	}
	if !bytes.Equal(data, []byte{1, 2, 3, 4}) {
		t.Errorf("mutation not rolled back: %x", data)
	}
	st := e.Stats()
	if st.TrapsToHost != 1 || st.HandlerCycles != 10 || st.PacketsRewritten != 0 {
		t.Errorf("stats %+v", st)
	}
	if m.Counter("spin.traps_to_host", 1).Value() != 1 ||
		m.Counter("spin.handler_cycles", 1).Value() != 10 {
		t.Error("spin.* instruments out of sync with stats")
	}
}

func TestCounterWordRoundtrip(t *testing.T) {
	for _, c := range []struct{ round, count uint32 }{
		{0, 1}, {1, 7}, {255, CounterRanks - 1}, {256, 5}, {0xffffffff, 0},
	} {
		round, count := DecodeCounter(CounterWord(c.round, c.count))
		if round != c.round&0xff || count != c.count {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", c.round, c.count, round, count)
		}
	}
	// A full count from round r must never equal round r+1's expectation
	// unless the rounds are exactly 256 apart.
	full := uint32(4)
	if CounterWord(7, full) == CounterWord(8, full) {
		t.Error("round tag does not separate adjacent rounds")
	}
	if CounterWord(7, full) != CounterWord(7+256, full) {
		t.Error("tag arithmetic broken at wraparound")
	}
	// The in-place increment a transit applies stays within the count
	// field for every addressable rank count: seeding with count 1 and
	// incrementing through the largest rank count never carries into
	// the tag.
	w := CounterWord(9, 1) + (CounterRanks - 2)
	if round, count := DecodeCounter(w); round != 9 || count != CounterRanks-1 {
		t.Errorf("increment carried into the tag: (%d,%d)", round, count)
	}
}

// TestTrapRollsBackReducerState is the regression test for handler
// state surviving a trap: a transit whose vector combine is rolled back
// (here by an overlapping cycle-burner overrunning the budget after the
// Reducer committed) must not count those bytes toward its counter
// increment, or the initiator would read a full count over lanes that
// were never combined.
func TestTrapRollsBackReducerState(t *testing.T) {
	const (
		hdrOff = 0
		ctrOff = 4
		vecOff = 8
		maxB   = 8
		conOff = 64
	)
	mem := make([]byte, 128)
	putWord(mem[conOff:], 100)
	putWord(mem[conOff+4:], 200)
	e := NewEngine(1, 20)
	e.Install(hdrOff, 8+maxB, &Reducer{
		HdrOff: hdrOff, VecOff: vecOff, CtrOff: ctrOff,
		MaxBytes: maxB, ContribOff: conOff,
	})
	burner := e.Install(vecOff, maxB, verdictFn(func(ctx *HandlerCtx, pkt Packet) Verdict {
		ctx.Charge(1000)
		return Forward
	}))
	ctx := &HandlerCtx{Node: 1, Bank: bankOf(mem)}

	hdr := make([]byte, 4)
	putWord(hdr, HdrWord(OpSumU32, maxB))
	if v, _, trapped := e.Run(ctx, Packet{Off: hdrOff, Data: hdr}); v != Forward || trapped {
		t.Fatalf("hdr: v=%v trapped=%v", v, trapped)
	}
	// Both vector packets trap: the Reducer combines and commits, then
	// the burner blows the budget. Payload and combined-count must both
	// roll back.
	for i := 0; i < maxB; i += 4 {
		vec := make([]byte, 4)
		putWord(vec, uint32(i+1))
		v, _, trapped := e.Run(ctx, Packet{Off: vecOff + i, Data: vec})
		if !trapped || v != Forward {
			t.Fatalf("vec@%d: v=%v trapped=%v", i, v, trapped)
		}
		if got := word(vec); got != uint32(i+1) {
			t.Fatalf("vec@%d payload not rolled back: %d", i, got)
		}
	}
	// The counter packet must pass untouched: this node combined
	// nothing that survived.
	ctr := make([]byte, 4)
	putWord(ctr, CounterWord(1, 1))
	v, _, trapped := e.Run(ctx, Packet{Off: ctrOff, Data: ctr})
	if v != Forward || trapped {
		t.Fatalf("ctr: v=%v trapped=%v", v, trapped)
	}
	if got := word(ctr); got != CounterWord(1, 1) {
		t.Errorf("trapped transit still bumped the counter: %#x", got)
	}

	// With the burner gone the same reducer must work again: trap
	// rollback may not wedge later rounds.
	e.Uninstall(burner)
	putWord(hdr, HdrWord(OpSumU32, maxB))
	e.Run(ctx, Packet{Off: hdrOff, Data: hdr})
	want := []uint32{101, 205}
	for i := 0; i < maxB; i += 4 {
		vec := make([]byte, 4)
		putWord(vec, uint32(i+1))
		if v, _, _ := e.Run(ctx, Packet{Off: vecOff + i, Data: vec}); v != Rewrite || word(vec) != want[i/4] {
			t.Fatalf("recovery vec@%d: v=%v lane=%d", i, v, word(vec))
		}
	}
	putWord(ctr, CounterWord(2, 1))
	if v, _, _ := e.Run(ctx, Packet{Off: ctrOff, Data: ctr}); v != Rewrite || word(ctr) != CounterWord(2, 2) {
		t.Fatalf("recovery ctr: v=%v word=%#x", v, word(ctr))
	}
}

// TestReducerSelfOverrunCommitsNothing covers the single-handler case:
// when the Reducer's own Charge overruns the budget it must bail before
// mutating the payload or committing its combined count.
func TestReducerSelfOverrunCommitsNothing(t *testing.T) {
	const (
		hdrOff = 0
		ctrOff = 4
		vecOff = 8
		maxB   = 8
		conOff = 64
	)
	mem := make([]byte, 128)
	putWord(mem[conOff:], 7)
	// Budget 2: the header's Charge(2) fits exactly, but an 8-byte
	// vector packet costs 1+2 = 3 cycles and traps.
	e := NewEngine(2, 2)
	e.Install(hdrOff, 8+maxB, &Reducer{
		HdrOff: hdrOff, VecOff: vecOff, CtrOff: ctrOff,
		MaxBytes: maxB, ContribOff: conOff,
	})
	ctx := &HandlerCtx{Node: 2, Bank: bankOf(mem)}
	hdr := make([]byte, 4)
	putWord(hdr, HdrWord(OpSumU32, maxB))
	if _, _, trapped := e.Run(ctx, Packet{Off: hdrOff, Data: hdr}); trapped {
		t.Fatal("header transit trapped under exact budget")
	}
	vec := make([]byte, 8)
	putWord(vec, 1)
	v, _, trapped := e.Run(ctx, Packet{Off: vecOff, Data: vec})
	if !trapped || v != Forward || word(vec) != 1 {
		t.Fatalf("vec: v=%v trapped=%v lane=%d", v, trapped, word(vec))
	}
	ctr := make([]byte, 4)
	putWord(ctr, CounterWord(1, 1))
	if v, _, _ := e.Run(ctx, Packet{Off: ctrOff, Data: ctr}); v != Forward || word(ctr) != CounterWord(1, 1) {
		t.Fatalf("counter bumped by a trapped combine: v=%v word=%#x", v, word(ctr))
	}
}

// TestTrapDiscardsStagedInjection: an Inject staged before a budget
// overrun must never reach the ring, and EarlyAck's toggle accumulator
// must roll back with it — otherwise the next genuine toggle would
// inject an ACK word one flip ahead.
func TestTrapDiscardsStagedInjection(t *testing.T) {
	const flagsOff, ackOff = 0, 32
	mem := make([]byte, 64)
	var injected []uint32
	e := NewEngine(1, 10)
	e.Install(flagsOff, 4, &EarlyAck{FlagsOff: flagsOff, AckOff: ackOff})
	burner := e.Install(flagsOff, 4, verdictFn(func(ctx *HandlerCtx, pkt Packet) Verdict {
		ctx.Charge(1000)
		return Forward
	}))
	ctx := &HandlerCtx{
		Node:       1,
		Bank:       bankOf(mem),
		InjectHook: func(off int, data []byte) { injected = append(injected, word(data)) },
	}
	flags := make([]byte, 4)
	putWord(flags, 0b1)
	if _, _, trapped := e.Run(ctx, Packet{Off: flagsOff, Data: flags}); !trapped {
		t.Fatal("burner did not trap")
	}
	if len(injected) != 0 {
		t.Fatalf("staged injection survived the trap: %v", injected)
	}
	// Re-run the same toggle without the burner: the ACK must come out
	// as the first flip (0b1), proving ackOut rolled back to zero.
	e.Uninstall(burner)
	if _, _, trapped := e.Run(ctx, Packet{Off: flagsOff, Data: flags}); trapped {
		t.Fatal("clean transit trapped")
	}
	if len(injected) != 1 || injected[0] != 0b1 {
		t.Fatalf("ack accumulator did not roll back: injected %v, want [1]", injected)
	}
}

func TestReducerRound(t *testing.T) {
	const (
		hdrOff = 0
		ctrOff = 4
		vecOff = 8
		maxB   = 16
		conOff = 64
	)
	mem := make([]byte, 128)
	putWord(mem[conOff:], 100)
	putWord(mem[conOff+4:], 200)
	e := NewEngine(2, 1000)
	e.Install(hdrOff, 8+maxB, &Reducer{
		HdrOff: hdrOff, VecOff: vecOff, CtrOff: ctrOff,
		MaxBytes: maxB, ContribOff: conOff,
	})
	ctx := &HandlerCtx{Node: 2, Bank: bankOf(mem)}
	run := func(off int, data []byte) (Verdict, []byte) {
		v, _, _ := e.Run(ctx, Packet{Off: off, Data: data})
		return v, data
	}

	// Header announces an 8-byte sum round.
	hdr := make([]byte, 4)
	putWord(hdr, HdrWord(OpSumU32, 8))
	if v, _ := run(hdrOff, hdr); v != Forward {
		t.Fatalf("hdr verdict %v", v)
	}
	// Vector packets get this node's lanes combined in.
	v1 := make([]byte, 4)
	putWord(v1, 1)
	verdict, out := run(vecOff, v1)
	if verdict != Rewrite || word(out) != 101 {
		t.Fatalf("vec0: v=%v lane=%d", verdict, word(out))
	}
	v2 := make([]byte, 4)
	putWord(v2, 2)
	verdict, out = run(vecOff+4, v2)
	if verdict != Rewrite || word(out) != 202 {
		t.Fatalf("vec1: v=%v lane=%d", verdict, word(out))
	}
	// All bytes combined: the counter packet gets our increment.
	ctr := make([]byte, 4)
	putWord(ctr, CounterWord(0, 1))
	verdict, out = run(ctrOff, ctr)
	if verdict != Rewrite || word(out) != CounterWord(0, 2) {
		t.Fatalf("ctr: v=%v word=%#x", verdict, word(out))
	}

	// Second round loses a vector packet: the counter must pass
	// untouched.
	putWord(hdr, HdrWord(OpSumU32, 8))
	run(hdrOff, hdr)
	run(vecOff, v1) // second packet "lost" — never transits
	putWord(ctr, CounterWord(1, 1))
	verdict, out = run(ctrOff, ctr)
	if verdict != Forward || word(out) != CounterWord(1, 1) {
		t.Fatalf("lossy ctr: v=%v word=%#x", verdict, word(out))
	}

	// A bad header (oversize vector) deactivates the round entirely.
	putWord(hdr, HdrWord(OpSumU32, maxB+4))
	run(hdrOff, hdr)
	putWord(v1, 1)
	if verdict, _ = run(vecOff, v1); verdict != Forward {
		t.Fatalf("inactive vec verdict %v", verdict)
	}
	putWord(ctr, 0)
	if verdict, out = run(ctrOff, ctr); verdict != Forward || word(out) != 0 {
		t.Fatalf("inactive ctr: v=%v word=%#x", verdict, word(out))
	}
}

func TestTopicFilter(t *testing.T) {
	e := NewEngine(0, 100)
	e.Install(100, 40, &TopicFilter{
		Base: 100, SlotBytes: 10, Topics: 4,
		Subscribed: func(topic int) bool { return topic%2 == 0 },
	})
	ctx := &HandlerCtx{Bank: bankOf(make([]byte, 256))}
	for _, c := range []struct {
		off  int
		want Verdict
	}{
		{100, Forward}, // topic 0: subscribed
		{112, Steer},   // topic 1: not subscribed
		{125, Forward}, // topic 2
		{133, Steer},   // topic 3
	} {
		if v, _, _ := e.Run(ctx, Packet{Off: c.off, Data: make([]byte, 4)}); v != c.want {
			t.Errorf("off %d: got %v want %v", c.off, v, c.want)
		}
	}
}

func TestEarlyAck(t *testing.T) {
	const flagsOff, ackOff = 0, 32
	mem := make([]byte, 64)
	var injected []struct {
		off  int
		data []byte
	}
	e := NewEngine(1, 100)
	e.Install(flagsOff, 4, &EarlyAck{FlagsOff: flagsOff, AckOff: ackOff})
	ctx := &HandlerCtx{
		Node: 1,
		Bank: bankOf(mem),
		InjectHook: func(off int, data []byte) {
			injected = append(injected, struct {
				off  int
				data []byte
			}{off, append([]byte(nil), data...)})
		},
	}
	// First post toggles slot bit 0: handler injects the matching ack.
	flags := make([]byte, 4)
	putWord(flags, 0b1)
	if v, _, _ := e.Run(ctx, Packet{Off: flagsOff, Data: flags}); v != Forward {
		t.Fatal("early-ack must forward")
	}
	if len(injected) != 1 || injected[0].off != ackOff || word(injected[0].data) != 0b1 {
		t.Fatalf("injected %+v", injected)
	}
	// Apply the flags to the bank (as the NIC would after Forward), then
	// a duplicate packet with no new toggles injects nothing.
	copy(mem[flagsOff:], flags)
	if v, _, _ := e.Run(ctx, Packet{Off: flagsOff, Data: flags}); v != Forward || len(injected) != 1 {
		t.Fatalf("duplicate flags injected an ack: v=%v n=%d", v, len(injected))
	}
	// Second post toggles bit 1: ack word accumulates both toggles.
	putWord(flags, 0b11)
	e.Run(ctx, Packet{Off: flagsOff, Data: flags})
	if len(injected) != 2 || word(injected[1].data) != 0b11 {
		t.Fatalf("injected %+v", injected)
	}
	// Short packets pass through untouched.
	if v, _, _ := e.Run(ctx, Packet{Off: flagsOff, Data: []byte{1}}); v != Forward || len(injected) != 2 {
		t.Fatal("short packet mishandled")
	}
}
