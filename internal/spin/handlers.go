package spin

import "fmt"

// RingOp names a 32-bit-lane combining operator a transit handler can
// apply. Operators are identified by number, not function value, so an
// initiator can name the round's operator in a control word and every
// transit node resolves the same code — nothing but data crosses the
// simulated wire. Lanes are 4 bytes because the fixed-packet ring
// fragments anything wider: an 8-byte element can be split across two
// packets that transit independently, so only operators that combine
// 32-bit lanes independently are streamable (fold wider element types
// on the tree path instead).
type RingOp uint8

// The streamable operators.
const (
	OpNone RingOp = iota
	OpSumU32
	OpMaxU32
	OpMinU32
	OpBOR
	OpBAND
	OpBXOR
	opEnd
)

// Valid reports whether o names a streamable operator.
func (o RingOp) Valid() bool { return o > OpNone && o < opEnd }

func (o RingOp) String() string {
	switch o {
	case OpSumU32:
		return "sum-u32"
	case OpMaxU32:
		return "max-u32"
	case OpMinU32:
		return "min-u32"
	case OpBOR:
		return "bor"
	case OpBAND:
		return "band"
	case OpBXOR:
		return "bxor"
	}
	return fmt.Sprintf("spin.RingOp(%d)", int(o))
}

// Combine applies the operator to two 32-bit lanes.
func (o RingOp) Combine(a, b uint32) uint32 {
	switch o {
	case OpSumU32:
		return a + b
	case OpMaxU32:
		if b > a {
			return b
		}
		return a
	case OpMinU32:
		if b < a {
			return b
		}
		return a
	case OpBOR:
		return a | b
	case OpBAND:
		return a & b
	case OpBXOR:
		return a ^ b
	}
	panic(fmt.Sprintf("spin: Combine on %v", o))
}

func word(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putWord(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// CounterRanks is the combining-counter capacity: the counter word
// keeps a participation count in its low 24 bits and the initiator's
// round tag in the high 8, so a single word covers every rank the
// 256-node ring (or a hierarchy of rings) can address. Each transit
// that combined the full round increments the count in place — the NIC
// accumulates gather state, no per-rank bit assignment needed. The tag
// is what lets the initiator's completion poll reject a counter
// stripped back from an *abandoned* round — the initiator's own writes
// land in its bank immediately, but a strip-apply can arrive
// arbitrarily late under transit-link queueing, so a bare count would
// be ambiguous across rounds. Tags collide only for rounds exactly 256
// apart, far beyond any packet's queueing lifetime (the initiator
// additionally bounds each round's wait by the ring drain bound).
const CounterRanks = 1 << 24

// CounterWord encodes a combining-counter word: participation count in
// the low 24 bits, round tag (round mod 256) in the high 8.
func CounterWord(round, count uint32) uint32 {
	return round<<24 | count&(CounterRanks-1)
}

// DecodeCounter inverts CounterWord.
func DecodeCounter(v uint32) (round, count uint32) {
	return v >> 24, v & (CounterRanks - 1)
}

// Reducer is the streaming reduction-on-the-ring handler. The
// initiator lays out three single-writer regions it owns — a header
// word at HdrOff naming the round's operator and vector length, the
// circulating vector at VecOff, and a combining-counter word at CtrOff
// — and writes them in that order, so the ring's per-origin FIFO
// delivers them to every transit node in that order. At each transit
// the handler combines this node's staged contribution (read from the
// local bank at ContribOff) into the circulating vector lanes and, on
// the counter word, increments the count in place — but only if every
// vector byte of the round was seen and combined, which is what lets
// the initiator detect a lost vector packet or a node that died
// mid-round from the stripped count alone. A 1-lane OpBAND round over
// this machinery *is* a NIC-combined barrier: each hop ANDs its
// arrival lane and bumps the counter, and the initiator's single
// counter poll replaces a rank-side gather tree. See DESIGN.md §13/§15
// and PROTOCOL.md "In-network handler extension".
//
// Reducer implements TrapAware: a budget-overrun trap rolls its
// per-round state back along with the packet bytes, so a transit whose
// combine was discarded can never count those bytes toward its
// end-of-round counter increment.
type Reducer struct {
	// HdrOff, VecOff, CtrOff locate the initiator-owned header word,
	// vector region (MaxBytes capacity) and counter word in the bank.
	HdrOff, VecOff, CtrOff int
	MaxBytes               int
	// ContribOff locates this node's staged contribution in the local
	// bank (its own single-writer region, replicated like any other).
	ContribOff int

	st   reducerState
	prev reducerState // pre-transit snapshot, restored by OnTrap
}

// reducerState is the Reducer's per-round progress, kept in one struct
// so a trap can snapshot and restore it atomically.
type reducerState struct {
	op       RingOp
	expect   int
	combined int
	active   bool
}

// HdrWord encodes a round header: vector byte length in the low 24
// bits, operator code in the high 8.
func HdrWord(op RingOp, vecLen int) uint32 {
	return uint32(vecLen)&0xffffff | uint32(op)<<24
}

// DecodeHdr inverts HdrWord.
func DecodeHdr(v uint32) (op RingOp, vecLen int) {
	return RingOp(v >> 24), int(v & 0xffffff)
}

// OnTransit implements Handler. Every Charge is checked against the
// budget *before* the corresponding state commit or payload mutation:
// an overrun detected mid-handler must leave the round state exactly as
// it was, because the engine will roll the packet back (OnTrap covers
// the case where a later handler in the chain causes the trap).
func (r *Reducer) OnTransit(ctx *HandlerCtx, pkt Packet) Verdict {
	r.prev = r.st
	switch {
	case pkt.Off == r.HdrOff && len(pkt.Data) >= 4:
		// Round start: reset per-round state. The header is applied and
		// forwarded unchanged.
		ctx.Charge(2)
		if ctx.Overrun() {
			return Forward
		}
		r.st.op, r.st.expect = DecodeHdr(word(pkt.Data))
		r.st.combined = 0
		r.st.active = r.st.op.Valid() && r.st.expect > 0 && r.st.expect <= r.MaxBytes
		return Forward
	case pkt.Off == r.CtrOff && len(pkt.Data) >= 4:
		ctx.Charge(2)
		if ctx.Overrun() {
			return Forward
		}
		if !r.st.active || r.st.combined != r.st.expect {
			// A vector packet was lost upstream of the ring, or this
			// node joined mid-round: declining to increment is the
			// integrity signal the initiator acts on — the stripped
			// count comes back short of the rank count.
			r.st.active = false
			return Forward
		}
		r.st.active = false
		// The low 24 bits carry the count, the high 8 the round tag;
		// with at most CounterRanks participants the increment can
		// never carry into the tag.
		putWord(pkt.Data, word(pkt.Data)+1)
		return Rewrite
	case pkt.Off >= r.VecOff && pkt.Off < r.VecOff+r.MaxBytes:
		if !r.st.active {
			return Forward
		}
		// Size this node's share of the packet, charge for it, and only
		// then combine the staged lanes into the circulating partial.
		rel := pkt.Off - r.VecOff
		n := 0
		for n+4 <= len(pkt.Data) && rel+n+4 <= r.st.expect {
			n += 4
		}
		ctx.Charge(int64(1 + n/4))
		if ctx.Overrun() || n == 0 {
			return Forward
		}
		for i := 0; i < n; i += 4 {
			c := word(ctx.Bank(r.ContribOff+rel+i, 4))
			putWord(pkt.Data[i:], r.st.op.Combine(word(pkt.Data[i:]), c))
		}
		r.st.combined += n
		return Rewrite
	}
	return Forward
}

// OnTrap implements TrapAware: the per-round state reverts to its
// pre-transit snapshot, matching the engine's payload rollback.
func (r *Reducer) OnTrap(Packet) { r.st = r.prev }

// TopicFilter is the pub/sub fan-out handler: the publisher partitions
// a region of its partition into fixed-size topic slots, and each
// subscriber node installs a filter over the region. Packets for
// subscribed topics pass through (Forward — applied locally and
// forwarded); packets for other topics are steered past this node's
// bank (Steer), so a node's replica only ever materializes the topics
// it asked for. Demonstrated by examples/pubsub.
type TopicFilter struct {
	// Base and SlotBytes partition [Base, Base+Topics*SlotBytes) into
	// topic slots.
	Base, SlotBytes, Topics int
	// Subscribed reports interest in a topic. It must be deterministic.
	Subscribed func(topic int) bool
}

// OnTransit implements Handler.
func (f *TopicFilter) OnTransit(ctx *HandlerCtx, pkt Packet) Verdict {
	ctx.Charge(2)
	t := (pkt.Off - f.Base) / f.SlotBytes
	if t < 0 || t >= f.Topics || f.Subscribed(t) {
		return Forward
	}
	return Steer
}

// EarlyAck acknowledges BillBoard posts at ring transit instead of at
// host consumption: when a sender's MESSAGE-flag packet transits the
// addressed receiver's NIC, the handler diffs it against the bank's
// previous value and injects the matching ACK-toggle write on the
// spot. The sender's garbage collector then sees the acknowledgment
// one ring revolution after the post, without waiting for the
// receiver's poll-consume-ack cycle. The semantics weaken from
// "consumed" to "arrived at the receiver's bank" — see DESIGN.md §13
// for the slot-reuse hazard window this opens and why the base
// protocol's flow control must come from buffer depth instead.
// EarlyAck implements TrapAware: its ACK-toggle accumulator reverts on
// a budget-overrun trap, matching the engine's discard of the staged
// ACK injection — otherwise the next genuine toggle would inject an
// ACK word one flip ahead of what the sender's GC has observed.
type EarlyAck struct {
	// FlagsOff is the bank offset of this receiver's MESSAGE-flag word
	// for the sender this instance watches; AckOff the ACK-toggle word
	// this receiver owns in that sender's control partition.
	FlagsOff, AckOff int

	ackOut  uint32
	prevAck uint32 // pre-transit snapshot, restored by OnTrap
}

// OnTransit implements Handler.
func (a *EarlyAck) OnTransit(ctx *HandlerCtx, pkt Packet) Verdict {
	a.prevAck = a.ackOut
	if pkt.Off != a.FlagsOff || len(pkt.Data) < 4 {
		return Forward
	}
	ctx.Charge(3)
	if ctx.Overrun() {
		return Forward
	}
	diff := word(pkt.Data) ^ word(ctx.Bank(a.FlagsOff, 4))
	if diff == 0 {
		return Forward
	}
	a.ackOut ^= diff
	var ack [4]byte
	putWord(ack[:], a.ackOut)
	ctx.Inject(a.AckOff, ack[:])
	return Forward
}

// OnTrap implements TrapAware.
func (a *EarlyAck) OnTrap(Packet) { a.ackOut = a.prevAck }
