package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// ProcNull is the null neighbor rank returned by Cart.Shift at a
// non-periodic boundary (MPI_PROC_NULL).
const ProcNull = -2

// Cart is a Cartesian process topology over a communicator, with
// row-major rank ordering as in MPICH.
type Cart struct {
	comm     *Comm
	dims     []int
	periodic []bool
}

// CartCreate builds a Cartesian topology. The product of dims must
// equal the communicator size.
func CartCreate(c *Comm, dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 || len(dims) != len(periodic) {
		return nil, fmt.Errorf("mpi: cart dims/periodic length mismatch (%d vs %d)", len(dims), len(periodic))
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("mpi: cart dimension %d", d)
		}
		n *= d
	}
	if n != c.Size() {
		return nil, fmt.Errorf("mpi: cart grid %d does not match communicator size %d", n, c.Size())
	}
	return &Cart{
		comm:     c,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// Comm returns the underlying communicator.
func (ct *Cart) Comm() *Comm { return ct.comm }

// Dims returns the grid extents.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Coords returns the grid coordinates of a communicator rank.
func (ct *Cart) Coords(rank int) []int {
	coords := make([]int, len(ct.dims))
	for i := len(ct.dims) - 1; i >= 0; i-- {
		coords[i] = rank % ct.dims[i]
		rank /= ct.dims[i]
	}
	return coords
}

// Rank returns the communicator rank at the given coordinates, reducing
// periodic dimensions modulo their extent. ok is false when a
// non-periodic coordinate falls outside the grid.
func (ct *Cart) Rank(coords []int) (rank int, ok bool) {
	if len(coords) != len(ct.dims) {
		return 0, false
	}
	rank = 0
	for i, c := range coords {
		d := ct.dims[i]
		if ct.periodic[i] {
			c = ((c % d) + d) % d
		} else if c < 0 || c >= d {
			return 0, false
		}
		rank = rank*d + c
	}
	return rank, true
}

// Shift returns the source and destination ranks for a displacement
// along one dimension (MPI_Cart_shift): data flows src → me → dst.
// Either may be ProcNull at a non-periodic edge.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	me := ct.Coords(ct.comm.Rank())
	up := append([]int(nil), me...)
	up[dim] += disp
	down := append([]int(nil), me...)
	down[dim] -= disp
	dst = ProcNull
	if r, ok := ct.Rank(up); ok {
		dst = r
	}
	src = ProcNull
	if r, ok := ct.Rank(down); ok {
		src = r
	}
	return src, dst
}

// SendrecvShift exchanges halo buffers along a Cartesian shift,
// handling ProcNull neighbors (no transfer in that direction).
func (ct *Cart) SendrecvShift(p *sim.Proc, dim, disp, tag int, sendBuf, recvBuf []byte) (received bool, err error) {
	src, dst := ct.Shift(dim, disp)
	c := ct.comm
	var rreq, sreq *Request
	if src != ProcNull {
		if rreq, err = c.Irecv(p, src, tag, recvBuf); err != nil {
			return false, err
		}
	}
	if dst != ProcNull {
		if sreq, err = c.isend(p, dst, tag, sendBuf); err != nil {
			return false, err
		}
	}
	if sreq != nil {
		if _, err = c.eng.wait(p, sreq); err != nil {
			return false, err
		}
	}
	if rreq != nil {
		if _, err = c.eng.wait(p, rreq); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}
