package mpi_test

// Randomized conformance battery for the receiver-posted-window
// rendezvous path (Config.RndvZeroCopy): across seeds, message sizes
// straddling EagerMax and pipeline depths 1–8, the pipelined zero-copy
// protocol must deliver exactly the payloads, lengths, tags and
// per-(receiver, source) completion order of the legacy sequential
// rendezvous. The battery runs every schedule once with the feature
// off (the oracle) and once per depth with it on, then compares the
// observation streams byte for byte.

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// msgRec is one delivered message as its receiver observed it.
type msgRec struct {
	tag int
	n   int
	sum uint32 // FNV-1a over the payload
}

func fnv1a(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// pairRNG derives the deterministic stream generator for the ordered
// pair (src, dst) under a battery seed, so sender and checker agree on
// sizes and payloads regardless of protocol mode or interleaving.
func pairRNG(seed uint64, src, dst int) *sim.RNG {
	return sim.NewRNG(seed*1_000_003 + uint64(src)*8191 + uint64(dst)*131 + 7)
}

// pairSizes returns the per-pair message size schedule: random sizes in
// [0, maxSize] with the first entries pinned to straddle EagerMax
// exactly (EagerMax stays eager, EagerMax+1 goes rendezvous).
func pairSizes(rng *sim.RNG, cfg mpi.Config, perPair, maxSize int) []int {
	sizes := make([]int, perPair)
	for i := range sizes {
		switch i {
		case 0:
			sizes[i] = cfg.EagerMax
		case 1:
			sizes[i] = cfg.EagerMax + 1
		case 2:
			sizes[i] = 0
		default:
			sizes[i] = rng.Intn(maxSize + 1)
		}
	}
	return sizes
}

// runRndvSchedule executes one all-pairs randomized schedule: every
// rank posts all its receives up front (in per-source order), then
// issues its sends in a seed-determined interleaving across
// destinations. It returns the per-(receiver, source) observation
// streams and the world-total zero-copy transfer count.
func runRndvSchedule(t *testing.T, seed uint64, cfg mpi.Config, nodes, perPair, maxSize int) (map[[2]int][]msgRec, int64) {
	t.Helper()
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: nodes, Net: cluster.SCRAMNet, PIOOnlyBBP: true})
	if err != nil {
		t.Fatal(err)
	}
	w := mpi.NewWorld(c.Endpoints, cfg)
	streams := make(map[[2]int][]msgRec)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		me := cm.Rank()
		type slot struct {
			src int
			buf []byte
			req *mpi.Request
		}
		var slots []slot
		for src := 0; src < nodes; src++ {
			if src == me {
				continue
			}
			for i := 0; i < perPair; i++ {
				buf := make([]byte, maxSize)
				req, err := cm.Irecv(p, src, mpi.AnyTag, buf)
				if err != nil {
					t.Errorf("rank %d Irecv(%d): %v", me, src, err)
					return
				}
				slots = append(slots, slot{src, buf, req})
			}
		}

		// Build the deterministic per-destination payload schedules.
		type outMsg struct {
			dst  int
			tag  int
			data []byte
		}
		var pending [][]outMsg
		for dst := 0; dst < nodes; dst++ {
			if dst == me {
				continue
			}
			rng := pairRNG(seed, me, dst)
			sizes := pairSizes(rng, cfg, perPair, maxSize)
			msgs := make([]outMsg, perPair)
			for i, n := range sizes {
				data := make([]byte, n)
				rng.Bytes(data)
				msgs[i] = outMsg{dst: dst, tag: i, data: data}
			}
			pending = append(pending, msgs)
		}

		// Interleave sends across destinations in a seed-determined
		// (mode-independent) order.
		ilv := sim.NewRNG(seed*29 + uint64(me)*17 + 3)
		var sendReqs []*mpi.Request
		for len(pending) > 0 {
			i := ilv.Intn(len(pending))
			m := pending[i][0]
			pending[i] = pending[i][1:]
			if len(pending[i]) == 0 {
				pending = append(pending[:i], pending[i+1:]...)
			}
			req, err := cm.Isend(p, m.dst, m.tag, m.data)
			if err != nil {
				t.Errorf("rank %d Isend(%d): %v", me, m.dst, err)
				return
			}
			sendReqs = append(sendReqs, req)
			// Drive inbound progress between sends: with every rank in
			// its send phase, an undrained eager flood would pin all of
			// the transport's message slots and deadlock the schedule.
			for i := range slots {
				if !slots[i].req.Done() {
					if _, _, err := cm.Test(p, slots[i].req); err != nil {
						t.Errorf("rank %d Test: %v", me, err)
						return
					}
				}
			}
		}
		if err := cm.Waitall(p, sendReqs); err != nil {
			t.Errorf("rank %d send Waitall: %v", me, err)
			return
		}

		for _, s := range slots {
			st, err := cm.Wait(p, s.req)
			if err != nil {
				t.Errorf("rank %d recv from %d: %v", me, s.src, err)
				return
			}
			key := [2]int{me, s.src}
			streams[key] = append(streams[key], msgRec{
				tag: st.Tag,
				n:   st.Len,
				sum: fnv1a(s.buf[:st.Len]),
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var zc int64
	for r := 0; r < nodes; r++ {
		zc += w.Engine(r).Stats().RndvZeroCopy
	}
	return streams, zc
}

// checkStreams verifies every (receiver, source) stream against the
// deterministic schedule: tags in order, lengths and digests matching
// the sender-side generator. This catches corruption even if both
// modes were wrong the same way.
func checkStreams(t *testing.T, streams map[[2]int][]msgRec, seed uint64, cfg mpi.Config, nodes, perPair, maxSize int) {
	t.Helper()
	for dst := 0; dst < nodes; dst++ {
		for src := 0; src < nodes; src++ {
			if src == dst {
				continue
			}
			got := streams[[2]int{dst, src}]
			if len(got) != perPair {
				t.Fatalf("stream %d<-%d: %d messages, want %d", dst, src, len(got), perPair)
			}
			rng := pairRNG(seed, src, dst)
			sizes := pairSizes(rng, cfg, perPair, maxSize)
			for i, n := range sizes {
				data := make([]byte, n)
				rng.Bytes(data)
				want := msgRec{tag: i, n: n, sum: fnv1a(data)}
				if got[i] != want {
					t.Fatalf("stream %d<-%d msg %d: got %+v, want %+v", dst, src, i, got[i], want)
				}
			}
		}
	}
}

func streamsEqual(a, b map[[2]int][]msgRec) error {
	if len(a) != len(b) {
		return fmt.Errorf("stream count %d vs %d", len(a), len(b))
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return fmt.Errorf("stream %v missing", k)
		}
		if len(av) != len(bv) {
			return fmt.Errorf("stream %v length %d vs %d", k, len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Errorf("stream %v msg %d: %+v vs %+v", k, i, av[i], bv[i])
			}
		}
	}
	return nil
}

// TestRendezvousEquivalenceBattery is the randomized conformance
// battery: for each seed, the sequential oracle run is compared to a
// zero-copy run at every pipeline depth in 1–8. Small EagerMax and
// ChunkSize keep virtual payloads multi-chunk while the wall clock
// stays in test range.
func TestRendezvousEquivalenceBattery(t *testing.T) {
	const (
		nodes   = 4
		perPair = 6
		maxSize = 2048 // 8 chunks at ChunkSize 256
	)
	base := mpi.DefaultConfig()
	base.EagerMax = 512
	base.ChunkSize = 256

	for _, seed := range []uint64{1, 20250808, 0xfeedface} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			oracle, zc := runRndvSchedule(t, seed, base, nodes, perPair, maxSize)
			if zc != 0 {
				t.Fatalf("sequential run counted %d zero-copy transfers", zc)
			}
			checkStreams(t, oracle, seed, base, nodes, perPair, maxSize)

			for _, depth := range []int{1, 2, 4, 8} {
				cfg := base
				cfg.RndvZeroCopy = true
				cfg.RndvPipelineDepth = depth
				got, zc := runRndvSchedule(t, seed, cfg, nodes, perPair, maxSize)
				if zc == 0 {
					t.Fatalf("depth %d: windowed path never taken", depth)
				}
				if err := streamsEqual(oracle, got); err != nil {
					t.Fatalf("depth %d diverges from sequential oracle: %v", depth, err)
				}
			}
		})
	}
}
