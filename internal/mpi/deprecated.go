package mpi

// Deprecated collective entry points. The package used to select the
// collective algorithm by method-name suffix (BarrierMcast,
// BcastTree, AllreduceW, ...); selection now happens behind the single
// entry points in select.go, per call, via WithAlgorithm. These
// wrappers keep old callers compiling and delegate verbatim.

import (
	"repro/internal/sim"
	"repro/internal/spin"
)

// BcastMcast broadcasts over the transport's native multicast.
//
// Deprecated: use Bcast with WithAlgorithm(Mcast).
func (c *Comm) BcastMcast(p *sim.Proc, root int, buf []byte) error {
	return c.Bcast(p, root, buf, WithAlgorithm(Mcast))
}

// BcastTree broadcasts over the binomial tree.
//
// Deprecated: use Bcast with WithAlgorithm(Tree).
func (c *Comm) BcastTree(p *sim.Proc, root int, buf []byte) error {
	return c.Bcast(p, root, buf, WithAlgorithm(Tree))
}

// BarrierMcast runs the multicast-coordinated barrier.
//
// Deprecated: use Barrier with WithAlgorithm(Mcast).
func (c *Comm) BarrierMcast(p *sim.Proc) error {
	return c.Barrier(p, WithAlgorithm(Mcast))
}

// BarrierTree runs the binomial gather/release barrier.
//
// Deprecated: use Barrier with WithAlgorithm(Tree).
func (c *Comm) BarrierTree(p *sim.Proc) error {
	return c.Barrier(p, WithAlgorithm(Tree))
}

// BarrierDissemination runs the dissemination barrier.
//
// Deprecated: use Barrier with WithAlgorithm(Dissemination).
func (c *Comm) BarrierDissemination(p *sim.Proc) error {
	return c.Barrier(p, WithAlgorithm(Dissemination))
}

// AllreduceRD runs recursive-doubling allreduce.
//
// Deprecated: use Allreduce with WithAlgorithm(Dissemination).
func (c *Comm) AllreduceRD(p *sim.Proc, op Op, sendBuf, recvBuf []byte) error {
	return c.Allreduce(p, op, sendBuf, recvBuf, WithAlgorithm(Dissemination))
}

// AllreduceW is Allreduce over 32-bit lanes named by a ring operator.
//
// Deprecated: use Allreduce with one of the named u32 ops (SumU32,
// MaxU32, MinU32, BorU32, BandU32, BxorU32) — Auto offloads them to
// the NIC combining pass without the caller importing internal/spin.
func (c *Comm) AllreduceW(p *sim.Proc, op spin.RingOp, sendBuf, recvBuf []byte) error {
	return c.Allreduce(p, RingOpFunc(op), sendBuf, recvBuf)
}

// RingOpFunc returns the software Op equivalent of a streamable ring
// operator: op folded over little-endian 32-bit lanes. For a valid
// operator this is the corresponding named u32 op, so the result is
// recognized by the Auto selection policy.
//
// Deprecated: name the op directly (SumU32, ..., BxorU32).
func RingOpFunc(op spin.RingOp) Op {
	if fn := opOfRing(op); fn != nil {
		return fn
	}
	return func(acc, in []byte) { foldU32(op, acc, in) }
}
