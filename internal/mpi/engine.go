package mpi

import (
	"fmt"

	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xport"
)

// Engine is one process's ADI instance: matching queues, the progress
// loop, and the eager/rendezvous protocols over the channel interface.
type Engine struct {
	ep  xport.Endpoint
	cfg Config

	nextReq   uint32
	posted    []*Request
	unexpect  []*inMsg
	pendSends map[uint32]*Request
	pendRecvs map[uint32]*Request
	comms     map[uint32]*Comm
	nextCtx   uint32
	// collQ[src] holds multicast fast-path messages that surfaced in
	// the general progress loop before the collective call consumed
	// them (a rank running ahead into its next collective).
	collQ [][][]byte

	// live is the transport's membership view when it runs a failure
	// detector (liveness.Provider); nil otherwise. Blocking paths
	// consult it so a dead peer produces a DeadPeerError within the
	// detector's confirmation window instead of a hang or an
	// ErrTimeout-after-5s.
	live liveness.View

	// partView is the transport's declared-partition view when it runs
	// the ring-cut partition machinery (liveness.PartitionView); nil
	// otherwise. A declared partition outranks per-peer Dead verdicts:
	// far-side peers are unreachable, not dead, so blocking paths
	// surface a PartitionError instead of DeadPeerError and the
	// dead-peer reclaim paths leave their state alone until the heal.
	partView liveness.PartitionView

	// wnd is the transport's receiver-posted-window extension, set only
	// when Config.RndvZeroCopy is on AND the endpoint implements
	// xport.Windowed (the BillBoard Protocol on SCRAMNet). nil keeps
	// every rendezvous on the legacy sequential path.
	wnd xport.Windowed

	// stream is the transport's in-network collective extension, set
	// when the endpoint implements xport.StreamReducer with a non-zero
	// vector capacity (the BillBoard Protocol with Config.Stream). nil
	// keeps AllreduceW on the software tree.
	stream xport.StreamReducer

	// zombies holds the windows of abandoned receives whose borrower
	// was still alive at abandon time, keyed by the receive request id.
	// Releasing such a window immediately would hand single-writer
	// ownership of the words to a new owner while the sender may be
	// mid-writeWindowed; instead the reservation is kept until the
	// sender's late kRDone/kRRej proves the transfer is over
	// (reapZombie) or the failure detector confirms the sender dead
	// (sweepZombies).
	zombies map[uint32]zombieWin

	scratch []byte
	stats   EngineStats
	im      engInstruments
	tracer  *trace.Recorder
}

// engInstruments mirror EngineStats into the metrics registry, keyed by
// the engine's world rank, plus an unexpected-queue depth gauge whose
// Max() is the high-water mark (nil = disabled no-ops).
type engInstruments struct {
	eagerSent    *metrics.Counter // mpi.eager_sent
	rndvSent     *metrics.Counter // mpi.rndv_sent
	received     *metrics.Counter // mpi.received
	unexpected   *metrics.Counter // mpi.unexpected_msgs
	chunksSent   *metrics.Counter // mpi.chunks_sent
	rndvZeroCopy *metrics.Counter // mpi.rndv_zero_copy
	windowStalls *metrics.Counter // mpi.window_stalls
	streamAllred *metrics.Counter // mpi.stream_allreduces
	streamFalls  *metrics.Counter // mpi.stream_fallbacks
	nicBarriers  *metrics.Counter // mpi.nic_barriers
	collReplans  *metrics.Counter // mpi.coll_replans
	partitionErr *metrics.Counter // mpi.partition_errors
	unexpDepth   *metrics.Gauge   // mpi.unexpected_depth
	// pipelineDepth tracks the windowed sender's in-flight chunk count;
	// its Max() is the high-water mark. Like unexpDepth it has no
	// EngineStats twin — gauges describe instantaneous state, not
	// protocol activity totals.
	pipelineDepth *metrics.Gauge // mpi.pipeline_depth
}

// setMetrics (re)creates the engine's instruments against m.
func (e *Engine) setMetrics(m *metrics.Registry) {
	if m == nil {
		e.im = engInstruments{}
		return
	}
	rank := e.ep.Rank()
	e.im = engInstruments{
		eagerSent:     m.Counter("mpi.eager_sent", rank),
		rndvSent:      m.Counter("mpi.rndv_sent", rank),
		received:      m.Counter("mpi.received", rank),
		unexpected:    m.Counter("mpi.unexpected_msgs", rank),
		chunksSent:    m.Counter("mpi.chunks_sent", rank),
		rndvZeroCopy:  m.Counter("mpi.rndv_zero_copy", rank),
		windowStalls:  m.Counter("mpi.window_stalls", rank),
		streamAllred:  m.Counter("mpi.stream_allreduces", rank),
		streamFalls:   m.Counter("mpi.stream_fallbacks", rank),
		nicBarriers:   m.Counter("mpi.nic_barriers", rank),
		collReplans:   m.Counter("mpi.coll_replans", rank),
		partitionErr:  m.Counter("mpi.partition_errors", rank),
		unexpDepth:    m.Gauge("mpi.unexpected_depth", rank),
		pipelineDepth: m.Gauge("mpi.pipeline_depth", rank),
	}
}

// setTracer installs a trace recorder (nil disables). MPI spans carry
// no message id of their own — they cover several BBP messages — and
// instead parent the underlying sends via the recorder's ambient stack.
func (e *Engine) setTracer(r *trace.Recorder) { e.tracer = r }

// EngineStats counts protocol activity.
type EngineStats struct {
	EagerSent      int64
	RndvSent       int64
	Received       int64
	UnexpectedMsgs int64
	ChunksSent     int64
	// RndvZeroCopy counts rendezvous transfers that went through a
	// receiver-posted window; WindowStalls counts the times the
	// windowed sender's bounded pipeline actually waited for a chunk's
	// ring drain before writing the next one. Both are mirrored 1:1
	// into the mpi.rndv_zero_copy / mpi.window_stalls counters.
	RndvZeroCopy int64
	WindowStalls int64
	// StreamAllreduces counts AllreduceW rounds completed by the
	// in-network fast path; StreamFallbacks the rounds that degraded to
	// the software tree after the transport declined (suspicion, loss,
	// or timeout). Mirrored into mpi.stream_allreduces /
	// mpi.stream_fallbacks.
	StreamAllreduces int64
	StreamFallbacks  int64
	// NICBarriers counts barriers completed as a NIC-combined 1-lane
	// BAND round (mpi.nic_barriers); CollReplans counts the times a
	// collective root observed a changed non-empty suspect set and cut
	// a new release-tree plan epoch (mpi.coll_replans). See select.go.
	NICBarriers int64
	CollReplans int64
	// PartitionErrors counts operations abandoned with a PartitionError
	// because the transport declared a ring partition (minority fence,
	// or a majority operation naming an unreachable peer). Mirrored
	// into mpi.partition_errors.
	PartitionErrors int64
}

// zombieWin is a posted window whose receive was abandoned while the
// borrowing sender was (as far as the detector knows) still alive.
type zombieWin struct {
	off, cap int
	peer     int // world rank of the borrowing sender
}

// inMsg is an arrived-but-unmatched message: a fully staged eager
// payload, or a rendezvous request awaiting a matching receive.
type inMsg struct {
	env  envelope
	src  int    // world rank
	data []byte // staged eager payload (nil for RTS)
}

// newEngine wraps transport endpoint ep.
func newEngine(ep xport.Endpoint, cfg Config) *Engine {
	if cfg.DirectADI {
		cfg.Costs.SendOverhead = cfg.Costs.SendOverhead * 6 / 10
		cfg.Costs.RecvOverhead = cfg.Costs.RecvOverhead * 6 / 10
		cfg.Costs.PerChunk /= 2
	}
	if cfg.RndvPipelineDepth <= 0 {
		cfg.RndvPipelineDepth = defaultRndvPipelineDepth
	}
	e := &Engine{
		ep:        ep,
		cfg:       cfg,
		pendSends: map[uint32]*Request{},
		pendRecvs: map[uint32]*Request{},
		zombies:   map[uint32]zombieWin{},
		comms:     map[uint32]*Comm{},
		nextCtx:   1,
		collQ:     make([][][]byte, ep.Procs()),
		scratch:   make([]byte, maxInt(cfg.CollChunk+8, envWinBytes)),
	}
	if cfg.ChunkSize <= 0 {
		panic("mpi: ChunkSize must be positive")
	}
	if lp, ok := ep.(liveness.Provider); ok {
		e.live = lp.Liveness()
	}
	if pv, ok := ep.(liveness.PartitionView); ok {
		e.partView = pv
	}
	if cfg.RndvZeroCopy {
		if w, ok := ep.(xport.Windowed); ok {
			e.wnd = w
		}
	}
	if sr, ok := ep.(xport.StreamReducer); ok && sr.StreamMax() > 0 {
		e.stream = sr
	}
	return e
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Transport returns the underlying channel device.
func (e *Engine) Transport() xport.Endpoint { return e.ep }

// progressOnce polls every peer for one control packet each and handles
// whatever arrived. It returns true if anything was processed.
func (e *Engine) progressOnce(p *sim.Proc) bool {
	if len(e.zombies) > 0 {
		e.sweepZombies()
	}
	any := false
	for s := 0; s < e.ep.Procs(); s++ {
		if s == e.ep.Rank() {
			continue
		}
		n, ok, err := e.ep.TryRecv(p, s, e.scratch)
		if err != nil {
			panic(fmt.Sprintf("mpi: transport error polling rank %d: %v", s, err))
		}
		if ok {
			e.handleRaw(p, s, e.scratch[:n])
			any = true
		}
	}
	return any
}

// handleRaw dispatches one arrived transport message: an envelope or a
// multicast fast-path message (data chunks are always drained
// synchronously behind their envelope on the same FIFO stream, so they
// never surface here).
func (e *Engine) handleRaw(p *sim.Proc, src int, raw []byte) {
	if len(raw) >= 1 && raw[0] == collMagic {
		e.collQ[src] = append(e.collQ[src], append([]byte(nil), raw...))
		return
	}
	env, err := decodeEnv(raw)
	if err != nil {
		panic(err)
	}
	p.Delay(e.cfg.Costs.MatchCost)
	switch env.kind {
	case kEager:
		e.handleEager(p, src, env)
	case kRTS:
		e.handleRTS(p, src, env)
	case kCTS:
		e.handleCTS(p, src, env)
	case kRData:
		e.handleRData(p, src, env)
	case kCTSW:
		e.handleCTSW(p, src, env)
	case kRDone:
		e.handleRDone(p, src, env)
	case kRNak:
		e.handleRNak(p, src, env)
	case kRAck:
		e.handleRAck(p, src, env)
	case kRRej:
		e.handleRRej(p, src, env)
	case kRFall:
		e.handleRFall(p, src, env)
	default:
		panic(fmt.Sprintf("mpi: unknown packet kind %d from %d", env.kind, src))
	}
}

func (e *Engine) handleEager(p *sim.Proc, src int, env envelope) {
	if req := e.matchPosted(env, src); req != nil {
		if int(env.total) > len(req.buf) {
			e.drainDiscard(p, src, int(env.total))
			e.complete(req, src, env, ErrTruncated)
			return
		}
		e.drainInto(p, src, req.buf[:env.total])
		e.complete(req, src, env, nil)
		return
	}
	// Unexpected: stage the payload, pay the extra copy when matched.
	stage := make([]byte, env.total)
	e.drainInto(p, src, stage)
	e.unexpect = append(e.unexpect, &inMsg{env: env, src: src, data: stage})
	e.stats.UnexpectedMsgs++
	e.im.unexpected.Inc()
	e.im.unexpDepth.Set(int64(len(e.unexpect)))
}

func (e *Engine) handleRTS(p *sim.Proc, src int, env envelope) {
	if req := e.matchPosted(env, src); req != nil {
		e.sendCTS(p, src, env, req)
		return
	}
	e.unexpect = append(e.unexpect, &inMsg{env: env, src: src})
	e.stats.UnexpectedMsgs++
	e.im.unexpected.Inc()
	e.im.unexpDepth.Set(int64(len(e.unexpect)))
}

// sendCTS registers req to receive the rendezvous data and tells the
// sender to go ahead. With the zero-copy path enabled it first tries
// to post a window covering the whole payload in this receiver's data
// partition; on success the reply is a kCTSW carrying the window
// descriptor, and the sender writes payload straight into the window.
// Truncation, a zero-length payload, a reservation failure, or a
// transport without windows all fall back to the plain kCTS and the
// sequential kRData protocol — the sender never has to guess: the CTS
// kind itself is the agreement.
func (e *Engine) sendCTS(p *sim.Proc, src int, rts envelope, req *Request) {
	if int(rts.total) > len(req.buf) {
		// Still must clear the protocol: accept and discard.
		req.err = ErrTruncated
	}
	id := e.nextReq
	e.nextReq++
	e.pendRecvs[id] = req
	req.id = id
	req.peerID = rts.reqID
	req.status = Status{Source: e.commRank(rts.ctx, src), Tag: int(rts.tag), Len: int(rts.total)}
	if e.wnd != nil && req.err == nil && rts.total > 0 {
		if off, ok := e.wnd.ReserveWindow(p, src, int(rts.total)); ok {
			req.winOff, req.winCap, req.hasWin = off, int(rts.total), true
			req.winPeer = src
			cts := envelope{kind: kCTSW, ctx: rts.ctx, tag: rts.tag, total: rts.total,
				reqID: rts.reqID, aux: id, winOff: uint32(off), winCap: rts.total}
			e.sendControl(p, src, cts)
			return
		}
	}
	cts := envelope{kind: kCTS, ctx: rts.ctx, tag: rts.tag, total: rts.total, reqID: rts.reqID, aux: id}
	e.sendControl(p, src, cts)
}

func (e *Engine) handleCTS(p *sim.Proc, src int, env envelope) {
	req := e.pendSends[env.reqID]
	if req == nil {
		// The send was abandoned (timeout) before the go-ahead arrived;
		// a late CTS is benign. The receiver pins nothing on the
		// sequential path, so its own wait bounds the non-delivery.
		return
	}
	delete(e.pendSends, env.reqID)
	hdr := envelope{kind: kRData, ctx: env.ctx, tag: env.tag, total: uint32(len(req.data)), reqID: env.aux}
	e.tracer.PushParent(req.span)
	e.sendControl(p, src, hdr)
	e.sendChunks(p, req.dst, req.data)
	e.tracer.PopParent()
	e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "rndv-end", req.span, 0, "total=%d", len(req.data))
	req.done = true
}

// handleCTSW is the windowed sender's go-ahead: write the payload into
// the advertised window through the bounded pipeline, then announce
// completion with kRDone. The request stays in pendSends — it
// completes only when the receiver's kRAck confirms the payload
// checksum, because window writes carry none of the billboard's
// per-message recovery machinery and a lossy ring can corrupt the
// window silently.
func (e *Engine) handleCTSW(p *sim.Proc, src int, env envelope) {
	req := e.pendSends[env.reqID]
	if req == nil {
		// The send was abandoned (timeout) before the window grant
		// arrived. Unlike the sequential case the receiver is pinning a
		// window for us, so reject explicitly: nothing will ever be
		// written into it and the receiver may reclaim it at once.
		rej := envelope{kind: kRRej, ctx: env.ctx, tag: env.tag, total: env.total, reqID: env.aux}
		e.trySendControl(p, src, rej)
		return
	}
	if e.wnd == nil {
		panic(fmt.Sprintf("mpi: window CTS from %d on a transport without windows", src))
	}
	if int(env.winCap) < len(req.data) {
		panic(fmt.Sprintf("mpi: %d-byte window CTS for a %d-byte send", env.winCap, len(req.data)))
	}
	req.peerID = env.aux
	req.winOff, req.winCap = int(env.winOff), int(env.winCap)
	e.tracer.PushParent(req.span)
	e.writeWindowed(p, src, req)
	e.tracer.PopParent()
	e.stats.RndvZeroCopy++
	e.im.rndvZeroCopy.Inc()
	done := envelope{kind: kRDone, ctx: env.ctx, tag: env.tag, total: uint32(len(req.data)),
		reqID: req.peerID, aux: payloadCheck(req.data)}
	e.trySendControl(p, src, done)
}

// writeWindowed fills the receiver's posted window through a bounded
// pipeline: up to Config.RndvPipelineDepth chunks may be in flight on
// the ring before the sender waits for the oldest chunk's drain bound,
// overlapping each chunk's DMA setup and bus burst with its
// predecessors' ring circulation. Correctness never depends on the
// bound — the kRDone control message rides the same per-sender FIFO
// stream behind the window data — so the wait is pure pacing, and each
// actual wait is counted as a window stall.
func (e *Engine) writeWindowed(p *sim.Proc, dst int, req *Request) {
	data := req.data
	inflight := make([]sim.Time, 0, e.cfg.RndvPipelineDepth)
	for off := 0; off < len(data); {
		m := minInt(len(data)-off, e.cfg.ChunkSize)
		if len(inflight) >= e.cfg.RndvPipelineDepth {
			if t := inflight[0]; t > p.Now() {
				p.Delay(t.Sub(p.Now()))
				e.stats.WindowStalls++
				e.im.windowStalls.Inc()
			}
			inflight = inflight[1:]
			e.im.pipelineDepth.Set(int64(len(inflight)))
		}
		p.Delay(e.cfg.Costs.PerChunk)
		span := e.tracer.BeginSpan(p.Now(), trace.MPI, e.ep.Rank(), "rndv-chunk", 0, req.span, "dst=%d off=%d len=%d", dst, off, m)
		bound := e.wnd.WriteWindow(p, dst, req.winOff+off, data[off:off+m])
		e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "rndv-chunk-end", span, 0, "len=%d", m)
		inflight = append(inflight, bound)
		e.im.pipelineDepth.Set(int64(len(inflight)))
		e.stats.ChunksSent++
		e.im.chunksSent.Inc()
		off += m
	}
	// The fill is over: whatever is still circulating drains without the
	// sender tracking it, so the instantaneous depth is back to zero
	// (Max() keeps the high-water mark).
	e.im.pipelineDepth.Set(0)
}

// handleRDone is the receiver's end of a windowed transfer: read the
// window back (one local burst), verify the checksum, release the
// window and acknowledge. A mismatch means ring packets carrying
// window data were lost; the receiver keeps the window posted and
// sends kRNak, and the sender rewrites the whole window and announces
// again — at most maxWindowNaks times, after which the receiver gives
// the window up (kRFall) and the payload is resent sequentially.
func (e *Engine) handleRDone(p *sim.Proc, src int, env envelope) {
	req := e.pendRecvs[env.reqID]
	if req == nil {
		// The receive was abandoned (timeout) mid-transfer. The kRDone
		// proves the sender has finished writing, so the parked window
		// can finally be reclaimed; no ack — the payload was never
		// delivered to the application, and the sender's own wait
		// bounds its non-completion.
		e.reapZombie(env.reqID)
		return
	}
	if !req.hasWin || int(env.total) > req.winCap || int(env.total) > len(req.buf) {
		panic(fmt.Sprintf("mpi: RDONE total=%d does not fit request window (cap=%d posted=%v)", env.total, req.winCap, req.hasWin))
	}
	n := int(env.total)
	e.wnd.ReadWindow(p, req.winOff, req.buf[:n])
	if payloadCheck(req.buf[:n]) != env.aux {
		req.naks++
		if req.naks < maxWindowNaks {
			nak := envelope{kind: kRNak, ctx: env.ctx, tag: env.tag, total: env.total, reqID: req.peerID, aux: env.reqID}
			e.trySendControl(p, src, nak)
			return
		}
		// Persistent corruption: rewriting the unprotected window is
		// not converging, so fall back to the sequential kRData path,
		// which rides the billboard's own recovery machinery. The
		// kRDone in hand proves the sender is not mid-write, so the
		// release cannot race its stores; the request stays in
		// pendRecvs to match the kRData announcement.
		e.wnd.ReleaseWindow(req.winOff, req.winCap)
		req.hasWin = false
		fall := envelope{kind: kRFall, ctx: env.ctx, tag: env.tag, total: env.total, reqID: req.peerID, aux: env.reqID}
		e.trySendControl(p, src, fall)
		return
	}
	e.wnd.ReleaseWindow(req.winOff, req.winCap)
	req.hasWin = false
	delete(e.pendRecvs, env.reqID)
	// The payload is delivered even if the ack cannot reach a sender
	// that died after writing it — exactly-once holds locally.
	ack := envelope{kind: kRAck, ctx: env.ctx, tag: env.tag, total: env.total, reqID: req.peerID, aux: env.reqID}
	e.trySendControl(p, src, ack)
	req.done = true
	e.stats.Received++
	e.im.received.Inc()
}

// handleRNak rewrites the whole window and re-announces. The request
// may already be gone if the wait was abandoned (dead peer, timeout);
// then there is nothing to repair — the receiver's own abandonment
// reclaims the window.
func (e *Engine) handleRNak(p *sim.Proc, src int, env envelope) {
	req := e.pendSends[env.reqID]
	if req == nil {
		return
	}
	e.tracer.PushParent(req.span)
	e.writeWindowed(p, src, req)
	e.tracer.PopParent()
	done := envelope{kind: kRDone, ctx: env.ctx, tag: env.tag, total: uint32(len(req.data)),
		reqID: req.peerID, aux: payloadCheck(req.data)}
	e.trySendControl(p, src, done)
}

// handleRAck completes a windowed send: the receiver has verified the
// payload, so the data reference can be dropped and the rndv span
// closed.
func (e *Engine) handleRAck(p *sim.Proc, src int, env envelope) {
	req := e.pendSends[env.reqID]
	if req == nil {
		return
	}
	delete(e.pendSends, env.reqID)
	e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "rndv-end", req.span, 0, "total=%d zero-copy", len(req.data))
	req.done = true
}

// handleRRej is the sender's refusal of a window grant: its send was
// abandoned before the kCTSW arrived, so the window will never be
// written and the receiver can take ownership back immediately. The
// receive request itself stays pending — its own wait bounds the
// non-delivery — but it no longer pins partition space.
func (e *Engine) handleRRej(p *sim.Proc, src int, env envelope) {
	req := e.pendRecvs[env.reqID]
	if req == nil {
		e.reapZombie(env.reqID)
		return
	}
	delete(e.pendRecvs, env.reqID)
	if req.hasWin && e.wnd != nil {
		e.wnd.ReleaseWindow(req.winOff, req.winCap)
		req.hasWin = false
	}
}

// handleRFall is the receiver's verdict that the window rewrite loop
// is not converging (maxWindowNaks consecutive checksum mismatches):
// it has released the window, and the sender must deliver the payload
// through the sequential kRData path instead, exactly as a plain kCTS
// would have. The request may already be gone if the wait was
// abandoned; then the transfer stays undelivered and both waits bound
// the failure.
func (e *Engine) handleRFall(p *sim.Proc, src int, env envelope) {
	req := e.pendSends[env.reqID]
	if req == nil {
		return
	}
	hdr := envelope{kind: kRData, ctx: env.ctx, tag: env.tag, total: uint32(len(req.data)), reqID: req.peerID}
	if !e.trySendControl(p, src, hdr) {
		// Receiver unreachable (fenced mid-protocol): leave the request
		// pending so the sender's wait surfaces the death or timeout.
		return
	}
	delete(e.pendSends, env.reqID)
	e.tracer.PushParent(req.span)
	e.sendChunks(p, req.dst, req.data)
	e.tracer.PopParent()
	e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "rndv-end", req.span, 0, "total=%d fallback", len(req.data))
	req.done = true
}

func (e *Engine) handleRData(p *sim.Proc, src int, env envelope) {
	req := e.pendRecvs[env.reqID]
	if req == nil {
		// The receive was abandoned (timeout) after granting the CTS.
		// The payload chunks are already behind this announcement on
		// the same FIFO stream, so they must be drained to keep the
		// stream parseable — then discarded.
		e.drainDiscard(p, src, int(env.total))
		return
	}
	delete(e.pendRecvs, env.reqID)
	if req.err != nil { // truncation already flagged at CTS time
		e.drainDiscard(p, src, int(env.total))
	} else {
		e.drainInto(p, src, req.buf[:env.total])
	}
	req.done = true
	e.stats.Received++
	e.im.received.Inc()
}

// drainInto receives exactly len(buf) bytes of data chunks from src,
// directly into buf (the zero-copy path for matched receives).
func (e *Engine) drainInto(p *sim.Proc, src int, buf []byte) {
	for off := 0; off < len(buf); {
		m := len(buf) - off
		if m > e.cfg.ChunkSize {
			m = e.cfg.ChunkSize
		}
		p.Delay(e.cfg.Costs.PerChunk)
		n, err := e.ep.Recv(p, src, buf[off:off+m])
		if err != nil || n != m {
			panic(fmt.Sprintf("mpi: chunk drain from %d: n=%d want=%d err=%v", src, n, m, err))
		}
		off += m
	}
}

func (e *Engine) drainDiscard(p *sim.Proc, src int, total int) {
	tmp := make([]byte, minInt(total, e.cfg.ChunkSize))
	for off := 0; off < total; {
		m := minInt(total-off, e.cfg.ChunkSize)
		p.Delay(e.cfg.Costs.PerChunk)
		if _, err := e.ep.Recv(p, src, tmp[:m]); err != nil {
			panic(err)
		}
		off += m
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sendControl transmits one envelope packet. A transport refusal is a
// protocol bug — except under a declared partition, where the fence can
// race an operation's own partition check; then the packet is dropped
// exactly as the severed fiber would have dropped it, and the caller's
// blocking wait surfaces the PartitionError.
func (e *Engine) sendControl(p *sim.Proc, dstWorld int, env envelope) {
	if err := e.ep.Send(p, dstWorld, encodeEnv(env)); err != nil {
		if part, ok := e.partition(); ok && (part.Minority || part.Unreachable(dstWorld)) {
			return
		}
		panic(fmt.Sprintf("mpi: control send to %d: %v", dstWorld, err))
	}
}

// trySendControl transmits one envelope packet, tolerating a transport
// refusal. The windowed rendezvous notices (kRDone, kRNak, kRAck) use
// it because either end can leave the membership mid-transfer: the
// caller just leaves its request pending and the blocked wait on each
// side surfaces the death within the detector's confirmation window —
// abandoning the request is what reclaims any posted window.
func (e *Engine) trySendControl(p *sim.Proc, dstWorld int, env envelope) bool {
	return e.ep.Send(p, dstWorld, encodeEnv(env)) == nil
}

// sendChunks streams data to dstWorld in channel-size pieces.
func (e *Engine) sendChunks(p *sim.Proc, dstWorld int, data []byte) {
	for off := 0; off < len(data); {
		m := minInt(len(data)-off, e.cfg.ChunkSize)
		p.Delay(e.cfg.Costs.PerChunk)
		if err := e.ep.Send(p, dstWorld, data[off:off+m]); err != nil {
			panic(fmt.Sprintf("mpi: chunk send to %d: %v", dstWorld, err))
		}
		e.stats.ChunksSent++
		e.im.chunksSent.Inc()
		off += m
	}
}

// matchPosted removes and returns the first posted receive matching env.
func (e *Engine) matchPosted(env envelope, srcWorld int) *Request {
	cr := e.commRank(env.ctx, srcWorld)
	for i, req := range e.posted {
		if req.ctx != env.ctx {
			continue
		}
		if req.src != AnySource && req.src != cr {
			continue
		}
		if req.tag != AnyTag && req.tag != int(env.tag) {
			continue
		}
		e.posted = append(e.posted[:i], e.posted[i+1:]...)
		return req
	}
	return nil
}

// matchUnexpected removes and returns the earliest unexpected message
// matching a newly posted receive.
func (e *Engine) matchUnexpected(req *Request) *inMsg {
	for i, m := range e.unexpect {
		if m.env.ctx != req.ctx {
			continue
		}
		cr := e.commRank(m.env.ctx, m.src)
		if req.src != AnySource && req.src != cr {
			continue
		}
		if req.tag != AnyTag && req.tag != int(m.env.tag) {
			continue
		}
		e.unexpect = append(e.unexpect[:i], e.unexpect[i+1:]...)
		return m
	}
	return nil
}

func (e *Engine) complete(req *Request, srcWorld int, env envelope, err error) {
	req.status = Status{Source: e.commRank(env.ctx, srcWorld), Tag: int(env.tag), Len: int(env.total)}
	req.err = err
	req.done = true
	e.stats.Received++
	e.im.received.Inc()
}

// commRank translates a world rank to the rank within the communicator
// identified by ctx.
func (e *Engine) commRank(ctx uint32, world int) int {
	c := e.comms[ctx]
	if c == nil {
		panic(fmt.Sprintf("mpi: message for unknown context %d", ctx))
	}
	return c.rankOfWorld(world)
}

// peerDead reports whether the failure detector (if any) has confirmed
// world rank `world` dead.
// peerDead reports a confirmed-dead verdict about world. A verdict
// about a peer on the far side of a declared partition does not count:
// the peer is unreachable, not dead, so window/zombie reclaim must wait
// for the heal (checkPartition surfaces those peers as PartitionError).
func (e *Engine) peerDead(world int) bool {
	if e.live == nil || world < 0 || world == e.ep.Rank() || e.live.State(world) != liveness.Dead {
		return false
	}
	if part, ok := e.partition(); ok && part.Unreachable(world) {
		return false
	}
	return true
}

// deadIn returns the first world rank in group confirmed dead, or -1.
func (e *Engine) deadIn(group []int) int {
	if e.live == nil {
		return -1
	}
	for _, w := range group {
		if e.peerDead(w) {
			return w
		}
	}
	return -1
}

// partition returns the transport's declared ring partition, if any.
func (e *Engine) partition() (liveness.PartitionInfo, bool) {
	if e.partView == nil {
		return liveness.PartitionInfo{}, false
	}
	return e.partView.Partition()
}

// partitionErr counts and builds the error for an operation fenced by
// part. Callers decide whether part applies (minority side, or a
// majority operation naming an unreachable peer).
func (e *Engine) partitionErr(part liveness.PartitionInfo) error {
	e.stats.PartitionErrors++
	e.im.partitionErr.Inc()
	return &PartitionError{Minority: part.Minority, Peers: append([]int(nil), part.Peers...)}
}

// checkPartition decides whether req is fenced by a declared partition:
// everything on the minority side, and any majority operation that
// depends on an unreachable peer (a send or specific receive naming
// one, or a group operation spanning one). Returns nil when no
// partition is declared or req only touches the quorum.
func (e *Engine) checkPartition(req *Request) error {
	part, ok := e.partition()
	if !ok {
		return nil
	}
	if part.Minority {
		return e.partitionErr(part)
	}
	if req.isSend {
		if part.Unreachable(req.dst) {
			return e.partitionErr(part)
		}
		return nil
	}
	c := req.comm
	if c == nil {
		return nil
	}
	// A specific-source receive is judged by its named peer alone when
	// the operation was planned around this partition: user
	// point-to-point always is (it names exactly one peer), and an
	// internal-tag tree receive is when the comm's plan generation
	// matches the partition (a majority quorum collective — its tree
	// deliberately spans only reachable members). An internal-tag
	// receive under a *stale* plan belongs to a collective that
	// straddled the declaration: its tree spans everyone, so it is
	// abandoned group-wide — otherwise a rank gathered behind a fenced
	// peer would sit out WaitTimeout instead of failing fast.
	if req.src != AnySource && (req.tag >= 0 || bytesEq(c.lastPlanMask, c.partMask(part))) {
		if part.Unreachable(c.group[req.src]) {
			return e.partitionErr(part)
		}
		return nil
	}
	for _, w := range c.group {
		if part.Unreachable(w) {
			return e.partitionErr(part)
		}
	}
	return nil
}

// checkDead decides whether req can still complete under the current
// membership view. A send or a specific-source user receive depends on
// exactly one peer; an AnySource receive or an internal-tag (collective
// tree) operation is abandoned when any group member dies, because the
// collective as a whole can never complete — failing fast here is what
// turns a would-be distributed hang into an error on every survivor.
// A declared partition is checked first: an unreachable peer must
// surface as PartitionError, never as the terminal DeadPeerError.
func (e *Engine) checkDead(req *Request) error {
	if err := e.checkPartition(req); err != nil {
		return err
	}
	if e.live == nil {
		return nil
	}
	if req.isSend {
		if e.peerDead(req.dst) {
			return &DeadPeerError{Rank: req.dst}
		}
		return nil
	}
	c := req.comm
	if c == nil {
		return nil
	}
	if req.src != AnySource && req.tag >= 0 {
		if w := c.group[req.src]; e.peerDead(w) {
			return &DeadPeerError{Rank: w}
		}
		return nil
	}
	if w := e.deadIn(c.group); w >= 0 {
		return &DeadPeerError{Rank: w}
	}
	return nil
}

// wait progresses until req completes or the wait timeout expires (a
// guard against protocol bugs spinning the simulation forever). With a
// liveness view, waiting on a confirmed-dead peer fails in bounded time
// instead; anything already delivered completes first (progress runs
// before the verdict check).
func (e *Engine) wait(p *sim.Proc, req *Request) (Status, error) {
	deadline := sim.Time(-1)
	if e.cfg.WaitTimeout > 0 {
		deadline = p.Now().Add(e.cfg.WaitTimeout)
	}
	for !req.done {
		e.progressOnce(p)
		if req.done {
			break
		}
		if err := e.checkDead(req); err != nil {
			e.abandon(req)
			return Status{}, err
		}
		if deadline >= 0 && p.Now() > deadline {
			e.abandon(req)
			return Status{}, ErrTimeout
		}
	}
	return req.status, req.err
}

// abandon tears down a request whose wait ended without completion
// (dead peer or timeout): its protocol-table entries are dropped so a
// late control packet for it is ignored rather than mis-matched, and
// any window it holds is reclaimed — an aborted rendezvous must not
// pin receiver buffer space, mirroring the dead-peer reclaim in the
// billboard's collector. Reclaim is immediate only when the borrowing
// sender is confirmed dead (a fenced card's writes reach no live
// bank); with a live borrower possibly mid-writeWindowed, releasing
// now would re-lend the words under its stores, so the window is
// parked as a zombie until the sender's late kRDone/kRRej proves the
// transfer over, or the detector confirms the sender dead.
func (e *Engine) abandon(req *Request) {
	if req.hasWin && e.wnd != nil {
		if e.peerDead(req.winPeer) {
			e.wnd.ReleaseWindow(req.winOff, req.winCap)
		} else {
			e.zombies[req.id] = zombieWin{off: req.winOff, cap: req.winCap, peer: req.winPeer}
		}
		req.hasWin = false
	}
	if req.isSend {
		if e.pendSends[req.id] == req {
			delete(e.pendSends, req.id)
		}
		return
	}
	if e.pendRecvs[req.id] == req {
		delete(e.pendRecvs, req.id)
	}
	for i, r := range e.posted {
		if r == req {
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			break
		}
	}
}

// reapZombie releases the zombie window parked for an abandoned
// receive, if any: a late kRDone (the borrower finished writing) or
// kRRej (it never will) makes the release race-free.
func (e *Engine) reapZombie(id uint32) {
	if z, ok := e.zombies[id]; ok {
		e.wnd.ReleaseWindow(z.off, z.cap)
		delete(e.zombies, id)
	}
}

// sweepZombies reclaims zombie windows whose borrower the failure
// detector has since confirmed dead: the fenced card's writes reach no
// live bank, so handing the words back cannot race anything.
func (e *Engine) sweepZombies() {
	for id, z := range e.zombies {
		if e.peerDead(z.peer) {
			e.wnd.ReleaseWindow(z.off, z.cap)
			delete(e.zombies, id)
		}
	}
}
