package mpi

import (
	"fmt"

	"repro/internal/liveness"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xport"
)

// Engine is one process's ADI instance: matching queues, the progress
// loop, and the eager/rendezvous protocols over the channel interface.
type Engine struct {
	ep  xport.Endpoint
	cfg Config

	nextReq   uint32
	posted    []*Request
	unexpect  []*inMsg
	pendSends map[uint32]*Request
	pendRecvs map[uint32]*Request
	comms     map[uint32]*Comm
	nextCtx   uint32
	// collQ[src] holds multicast fast-path messages that surfaced in
	// the general progress loop before the collective call consumed
	// them (a rank running ahead into its next collective).
	collQ [][][]byte

	// live is the transport's membership view when it runs a failure
	// detector (liveness.Provider); nil otherwise. Blocking paths
	// consult it so a dead peer produces a DeadPeerError within the
	// detector's confirmation window instead of a hang or an
	// ErrTimeout-after-5s.
	live liveness.View

	scratch []byte
	stats   EngineStats
	im      engInstruments
	tracer  *trace.Recorder
}

// engInstruments mirror EngineStats into the metrics registry, keyed by
// the engine's world rank, plus an unexpected-queue depth gauge whose
// Max() is the high-water mark (nil = disabled no-ops).
type engInstruments struct {
	eagerSent  *metrics.Counter // mpi.eager_sent
	rndvSent   *metrics.Counter // mpi.rndv_sent
	received   *metrics.Counter // mpi.received
	unexpected *metrics.Counter // mpi.unexpected_msgs
	chunksSent *metrics.Counter // mpi.chunks_sent
	unexpDepth *metrics.Gauge   // mpi.unexpected_depth
}

// setMetrics (re)creates the engine's instruments against m.
func (e *Engine) setMetrics(m *metrics.Registry) {
	if m == nil {
		e.im = engInstruments{}
		return
	}
	rank := e.ep.Rank()
	e.im = engInstruments{
		eagerSent:  m.Counter("mpi.eager_sent", rank),
		rndvSent:   m.Counter("mpi.rndv_sent", rank),
		received:   m.Counter("mpi.received", rank),
		unexpected: m.Counter("mpi.unexpected_msgs", rank),
		chunksSent: m.Counter("mpi.chunks_sent", rank),
		unexpDepth: m.Gauge("mpi.unexpected_depth", rank),
	}
}

// setTracer installs a trace recorder (nil disables). MPI spans carry
// no message id of their own — they cover several BBP messages — and
// instead parent the underlying sends via the recorder's ambient stack.
func (e *Engine) setTracer(r *trace.Recorder) { e.tracer = r }

// EngineStats counts protocol activity.
type EngineStats struct {
	EagerSent      int64
	RndvSent       int64
	Received       int64
	UnexpectedMsgs int64
	ChunksSent     int64
}

// inMsg is an arrived-but-unmatched message: a fully staged eager
// payload, or a rendezvous request awaiting a matching receive.
type inMsg struct {
	env  envelope
	src  int    // world rank
	data []byte // staged eager payload (nil for RTS)
}

// newEngine wraps transport endpoint ep.
func newEngine(ep xport.Endpoint, cfg Config) *Engine {
	if cfg.DirectADI {
		cfg.Costs.SendOverhead = cfg.Costs.SendOverhead * 6 / 10
		cfg.Costs.RecvOverhead = cfg.Costs.RecvOverhead * 6 / 10
		cfg.Costs.PerChunk /= 2
	}
	e := &Engine{
		ep:        ep,
		cfg:       cfg,
		pendSends: map[uint32]*Request{},
		pendRecvs: map[uint32]*Request{},
		comms:     map[uint32]*Comm{},
		nextCtx:   1,
		collQ:     make([][][]byte, ep.Procs()),
		scratch:   make([]byte, maxInt(cfg.CollChunk+8, envBytes)),
	}
	if cfg.ChunkSize <= 0 {
		panic("mpi: ChunkSize must be positive")
	}
	if lp, ok := ep.(liveness.Provider); ok {
		e.live = lp.Liveness()
	}
	return e
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Transport returns the underlying channel device.
func (e *Engine) Transport() xport.Endpoint { return e.ep }

// progressOnce polls every peer for one control packet each and handles
// whatever arrived. It returns true if anything was processed.
func (e *Engine) progressOnce(p *sim.Proc) bool {
	any := false
	for s := 0; s < e.ep.Procs(); s++ {
		if s == e.ep.Rank() {
			continue
		}
		n, ok, err := e.ep.TryRecv(p, s, e.scratch)
		if err != nil {
			panic(fmt.Sprintf("mpi: transport error polling rank %d: %v", s, err))
		}
		if ok {
			e.handleRaw(p, s, e.scratch[:n])
			any = true
		}
	}
	return any
}

// handleRaw dispatches one arrived transport message: an envelope or a
// multicast fast-path message (data chunks are always drained
// synchronously behind their envelope on the same FIFO stream, so they
// never surface here).
func (e *Engine) handleRaw(p *sim.Proc, src int, raw []byte) {
	if len(raw) >= 1 && raw[0] == collMagic {
		e.collQ[src] = append(e.collQ[src], append([]byte(nil), raw...))
		return
	}
	env, err := decodeEnv(raw)
	if err != nil {
		panic(err)
	}
	p.Delay(e.cfg.Costs.MatchCost)
	switch env.kind {
	case kEager:
		e.handleEager(p, src, env)
	case kRTS:
		e.handleRTS(p, src, env)
	case kCTS:
		e.handleCTS(p, src, env)
	case kRData:
		e.handleRData(p, src, env)
	default:
		panic(fmt.Sprintf("mpi: unknown packet kind %d from %d", env.kind, src))
	}
}

func (e *Engine) handleEager(p *sim.Proc, src int, env envelope) {
	if req := e.matchPosted(env, src); req != nil {
		if int(env.total) > len(req.buf) {
			e.drainDiscard(p, src, int(env.total))
			e.complete(req, src, env, ErrTruncated)
			return
		}
		e.drainInto(p, src, req.buf[:env.total])
		e.complete(req, src, env, nil)
		return
	}
	// Unexpected: stage the payload, pay the extra copy when matched.
	stage := make([]byte, env.total)
	e.drainInto(p, src, stage)
	e.unexpect = append(e.unexpect, &inMsg{env: env, src: src, data: stage})
	e.stats.UnexpectedMsgs++
	e.im.unexpected.Inc()
	e.im.unexpDepth.Set(int64(len(e.unexpect)))
}

func (e *Engine) handleRTS(p *sim.Proc, src int, env envelope) {
	if req := e.matchPosted(env, src); req != nil {
		e.sendCTS(p, src, env, req)
		return
	}
	e.unexpect = append(e.unexpect, &inMsg{env: env, src: src})
	e.stats.UnexpectedMsgs++
	e.im.unexpected.Inc()
	e.im.unexpDepth.Set(int64(len(e.unexpect)))
}

// sendCTS registers req to receive the rendezvous data and tells the
// sender to go ahead.
func (e *Engine) sendCTS(p *sim.Proc, src int, rts envelope, req *Request) {
	if int(rts.total) > len(req.buf) {
		// Still must clear the protocol: accept and discard.
		req.err = ErrTruncated
	}
	id := e.nextReq
	e.nextReq++
	e.pendRecvs[id] = req
	req.id = id
	req.status = Status{Source: e.commRank(rts.ctx, src), Tag: int(rts.tag), Len: int(rts.total)}
	cts := envelope{kind: kCTS, ctx: rts.ctx, tag: rts.tag, total: rts.total, reqID: rts.reqID, aux: id}
	e.sendControl(p, src, cts)
}

func (e *Engine) handleCTS(p *sim.Proc, src int, env envelope) {
	req := e.pendSends[env.reqID]
	if req == nil {
		panic(fmt.Sprintf("mpi: CTS for unknown send request %d", env.reqID))
	}
	delete(e.pendSends, env.reqID)
	hdr := envelope{kind: kRData, ctx: env.ctx, tag: env.tag, total: uint32(len(req.data)), reqID: env.aux}
	e.tracer.PushParent(req.span)
	e.sendControl(p, src, hdr)
	e.sendChunks(p, req.dst, req.data)
	e.tracer.PopParent()
	e.tracer.EndSpan(p.Now(), trace.MPI, e.ep.Rank(), "rndv-end", req.span, 0, "total=%d", len(req.data))
	req.done = true
}

func (e *Engine) handleRData(p *sim.Proc, src int, env envelope) {
	req := e.pendRecvs[env.reqID]
	if req == nil {
		panic(fmt.Sprintf("mpi: RDATA for unknown recv request %d", env.reqID))
	}
	delete(e.pendRecvs, env.reqID)
	if req.err != nil { // truncation already flagged at CTS time
		e.drainDiscard(p, src, int(env.total))
	} else {
		e.drainInto(p, src, req.buf[:env.total])
	}
	req.done = true
	e.stats.Received++
	e.im.received.Inc()
}

// drainInto receives exactly len(buf) bytes of data chunks from src,
// directly into buf (the zero-copy path for matched receives).
func (e *Engine) drainInto(p *sim.Proc, src int, buf []byte) {
	for off := 0; off < len(buf); {
		m := len(buf) - off
		if m > e.cfg.ChunkSize {
			m = e.cfg.ChunkSize
		}
		p.Delay(e.cfg.Costs.PerChunk)
		n, err := e.ep.Recv(p, src, buf[off:off+m])
		if err != nil || n != m {
			panic(fmt.Sprintf("mpi: chunk drain from %d: n=%d want=%d err=%v", src, n, m, err))
		}
		off += m
	}
}

func (e *Engine) drainDiscard(p *sim.Proc, src int, total int) {
	tmp := make([]byte, minInt(total, e.cfg.ChunkSize))
	for off := 0; off < total; {
		m := minInt(total-off, e.cfg.ChunkSize)
		p.Delay(e.cfg.Costs.PerChunk)
		if _, err := e.ep.Recv(p, src, tmp[:m]); err != nil {
			panic(err)
		}
		off += m
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sendControl transmits one envelope packet.
func (e *Engine) sendControl(p *sim.Proc, dstWorld int, env envelope) {
	if err := e.ep.Send(p, dstWorld, encodeEnv(env)); err != nil {
		panic(fmt.Sprintf("mpi: control send to %d: %v", dstWorld, err))
	}
}

// sendChunks streams data to dstWorld in channel-size pieces.
func (e *Engine) sendChunks(p *sim.Proc, dstWorld int, data []byte) {
	for off := 0; off < len(data); {
		m := minInt(len(data)-off, e.cfg.ChunkSize)
		p.Delay(e.cfg.Costs.PerChunk)
		if err := e.ep.Send(p, dstWorld, data[off:off+m]); err != nil {
			panic(fmt.Sprintf("mpi: chunk send to %d: %v", dstWorld, err))
		}
		e.stats.ChunksSent++
		e.im.chunksSent.Inc()
		off += m
	}
}

// matchPosted removes and returns the first posted receive matching env.
func (e *Engine) matchPosted(env envelope, srcWorld int) *Request {
	cr := e.commRank(env.ctx, srcWorld)
	for i, req := range e.posted {
		if req.ctx != env.ctx {
			continue
		}
		if req.src != AnySource && req.src != cr {
			continue
		}
		if req.tag != AnyTag && req.tag != int(env.tag) {
			continue
		}
		e.posted = append(e.posted[:i], e.posted[i+1:]...)
		return req
	}
	return nil
}

// matchUnexpected removes and returns the earliest unexpected message
// matching a newly posted receive.
func (e *Engine) matchUnexpected(req *Request) *inMsg {
	for i, m := range e.unexpect {
		if m.env.ctx != req.ctx {
			continue
		}
		cr := e.commRank(m.env.ctx, m.src)
		if req.src != AnySource && req.src != cr {
			continue
		}
		if req.tag != AnyTag && req.tag != int(m.env.tag) {
			continue
		}
		e.unexpect = append(e.unexpect[:i], e.unexpect[i+1:]...)
		return m
	}
	return nil
}

func (e *Engine) complete(req *Request, srcWorld int, env envelope, err error) {
	req.status = Status{Source: e.commRank(env.ctx, srcWorld), Tag: int(env.tag), Len: int(env.total)}
	req.err = err
	req.done = true
	e.stats.Received++
	e.im.received.Inc()
}

// commRank translates a world rank to the rank within the communicator
// identified by ctx.
func (e *Engine) commRank(ctx uint32, world int) int {
	c := e.comms[ctx]
	if c == nil {
		panic(fmt.Sprintf("mpi: message for unknown context %d", ctx))
	}
	return c.rankOfWorld(world)
}

// peerDead reports whether the failure detector (if any) has confirmed
// world rank `world` dead.
func (e *Engine) peerDead(world int) bool {
	return e.live != nil && world >= 0 && world != e.ep.Rank() && e.live.State(world) == liveness.Dead
}

// deadIn returns the first world rank in group confirmed dead, or -1.
func (e *Engine) deadIn(group []int) int {
	if e.live == nil {
		return -1
	}
	for _, w := range group {
		if e.peerDead(w) {
			return w
		}
	}
	return -1
}

// checkDead decides whether req can still complete under the current
// membership view. A send or a specific-source user receive depends on
// exactly one peer; an AnySource receive or an internal-tag (collective
// tree) operation is abandoned when any group member dies, because the
// collective as a whole can never complete — failing fast here is what
// turns a would-be distributed hang into an error on every survivor.
func (e *Engine) checkDead(req *Request) error {
	if e.live == nil {
		return nil
	}
	if req.isSend {
		if e.peerDead(req.dst) {
			return &DeadPeerError{Rank: req.dst}
		}
		return nil
	}
	c := req.comm
	if c == nil {
		return nil
	}
	if req.src != AnySource && req.tag >= 0 {
		if w := c.group[req.src]; e.peerDead(w) {
			return &DeadPeerError{Rank: w}
		}
		return nil
	}
	if w := e.deadIn(c.group); w >= 0 {
		return &DeadPeerError{Rank: w}
	}
	return nil
}

// wait progresses until req completes or the wait timeout expires (a
// guard against protocol bugs spinning the simulation forever). With a
// liveness view, waiting on a confirmed-dead peer fails in bounded time
// instead; anything already delivered completes first (progress runs
// before the verdict check).
func (e *Engine) wait(p *sim.Proc, req *Request) (Status, error) {
	deadline := sim.Time(-1)
	if e.cfg.WaitTimeout > 0 {
		deadline = p.Now().Add(e.cfg.WaitTimeout)
	}
	for !req.done {
		e.progressOnce(p)
		if req.done {
			break
		}
		if err := e.checkDead(req); err != nil {
			return Status{}, err
		}
		if deadline >= 0 && p.Now() > deadline {
			return Status{}, ErrTimeout
		}
	}
	return req.status, req.err
}
