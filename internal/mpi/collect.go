package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Collective fast-path message ops.
const (
	opBcast          = 1
	opBarrierArrive  = 2
	opBarrierRelease = 3
)

const collHdrBytes = 4

func collHdr(op byte, seq uint16) []byte {
	return []byte{collMagic, op, byte(seq), byte(seq >> 8)}
}

// recvColl receives the next multicast fast-path message with the given
// op and sequence from srcWorld, steering any interleaved point-to-point
// envelopes through the normal engine path. Returns the payload length
// copied into out. group is the collective's world-rank membership:
// with a liveness view, the wait is abandoned with a DeadPeerError as
// soon as any member is confirmed dead (a collective with a dead
// participant can never complete), which bounds a mid-collective node
// death by the detector's confirmation window.
func (e *Engine) recvColl(p *sim.Proc, srcWorld int, group []int, op byte, seq uint16, out []byte) (int, error) {
	accept := func(msg []byte) int {
		gotOp := msg[1]
		gotSeq := uint16(msg[2]) | uint16(msg[3])<<8
		if gotOp != op || gotSeq != seq {
			panic(fmt.Sprintf("mpi: collective out of step: got op=%d seq=%d want op=%d seq=%d", gotOp, gotSeq, op, seq))
		}
		payload := len(msg) - collHdrBytes
		p.Delay(sim.Duration(payload) * e.cfg.Costs.CopyPerByte)
		copy(out, msg[collHdrBytes:])
		return payload
	}
	// A rank running ahead may have parked this message in the engine's
	// collective queue during general progress.
	if q := e.collQ[srcWorld]; len(q) > 0 {
		msg := q[0]
		e.collQ[srcWorld] = q[1:]
		return accept(msg), nil
	}
	if e.live == nil {
		// No detector: the transport's own blocking receive (and its
		// RecvTimeout) is the only bound, exactly as before.
		for {
			n, err := e.ep.Recv(p, srcWorld, e.scratch)
			if err != nil {
				panic(fmt.Sprintf("mpi: collective recv from %d: %v", srcWorld, err))
			}
			if n >= collHdrBytes && e.scratch[0] == collMagic {
				return accept(e.scratch[:n]), nil
			}
			// A point-to-point envelope overtook the collective on this
			// stream: process it and keep waiting.
			e.handleRaw(p, srcWorld, append([]byte(nil), e.scratch[:n]...))
		}
	}
	// Liveness-aware wait: poll the stream one probe at a time (the same
	// per-iteration poll costs the blocking receive pays internally) so
	// the membership view is consulted between probes.
	deadline := sim.Time(-1)
	if e.cfg.WaitTimeout > 0 {
		deadline = p.Now().Add(e.cfg.WaitTimeout)
	}
	for {
		if part, ok := e.partition(); ok {
			if part.Minority {
				return 0, e.partitionErr(part)
			}
			for _, w := range group {
				if part.Unreachable(w) {
					return 0, e.partitionErr(part)
				}
			}
		}
		if w := e.deadIn(group); w >= 0 {
			return 0, &DeadPeerError{Rank: w}
		}
		n, ok, err := e.ep.TryRecv(p, srcWorld, e.scratch)
		if err != nil {
			panic(fmt.Sprintf("mpi: collective recv from %d: %v", srcWorld, err))
		}
		if !ok {
			if deadline >= 0 && p.Now() > deadline {
				return 0, ErrTimeout
			}
			continue
		}
		if n >= collHdrBytes && e.scratch[0] == collMagic {
			return accept(e.scratch[:n]), nil
		}
		e.handleRaw(p, srcWorld, append([]byte(nil), e.scratch[:n]...))
	}
}

// othersWorld returns the group's world ranks except comm rank `not`.
func (c *Comm) othersWorld(not int) []int {
	var out []int
	for r, w := range c.group {
		if r != not {
			out = append(out, w)
		}
	}
	return out
}

// bcastMcast is the paper's MPI_Bcast over bbp_Mcast: the root posts
// each chunk once and every receiver reads it from the root's data
// partition — a single-step broadcast. It is not synchronizing: the
// root does not wait for receivers (§4).
func (c *Comm) bcastMcast(p *sim.Proc, root int, buf []byte) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	seq := uint16(c.seq)
	c.seq++
	e := c.eng
	chunk := e.cfg.CollChunk
	nchunks := (len(buf) + chunk - 1) / chunk
	if nchunks == 0 {
		nchunks = 1
	}
	if c.rank == root {
		p.Delay(e.cfg.Costs.CollOverhead)
		dsts := c.othersWorld(root)
		for i := 0; i < nchunks; i++ {
			lo := i * chunk
			hi := minInt(lo+chunk, len(buf))
			msg := append(collHdr(opBcast, seq), buf[lo:hi]...)
			p.Delay(e.cfg.Costs.PerChunk)
			if err := e.ep.Mcast(p, dsts, msg); err != nil {
				return err
			}
		}
		return nil
	}
	p.Delay(e.cfg.Costs.CollOverhead)
	rootWorld := c.group[root]
	off := 0
	for i := 0; i < nchunks; i++ {
		n, err := e.recvColl(p, rootWorld, c.group, opBcast, seq, buf[off:])
		if err != nil {
			return err
		}
		off += n
	}
	if off != len(buf) {
		return fmt.Errorf("%w: broadcast delivered %d of %d bytes", ErrProtocol, off, len(buf))
	}
	return nil
}

// barrierMcast is the paper's MPI_Barrier: rank 0 coordinates, waiting
// for a null message from every other process and then releasing them
// all with one bbp_Mcast (§4).
func (c *Comm) barrierMcast(p *sim.Proc) error {
	seq := uint16(c.seq)
	c.seq++
	e := c.eng
	p.Delay(e.cfg.Costs.CollOverhead)
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			if _, err := e.recvColl(p, c.group[r], c.group, opBarrierArrive, seq, nil); err != nil {
				return err
			}
		}
		return e.ep.Mcast(p, c.othersWorld(0), collHdr(opBarrierRelease, seq))
	}
	if err := e.ep.Send(p, c.group[0], collHdr(opBarrierArrive, seq)); err != nil {
		return err
	}
	_, err := e.recvColl(p, c.group[0], c.group, opBarrierRelease, seq, nil)
	return err
}

// Op combines an incoming contribution into an accumulator, in place.
type Op func(acc, in []byte)

// SumF64 adds float64 vectors.
func SumF64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(in[i:]))
		binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(a+b))
	}
}

// MaxF64 takes the elementwise maximum of float64 vectors.
func MaxF64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(in[i:]))
		if b > a {
			binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(b))
		}
	}
}

// SumI64 adds int64 vectors.
func SumI64(acc, in []byte) {
	for i := 0; i+8 <= len(acc) && i+8 <= len(in); i += 8 {
		a := int64(binary.LittleEndian.Uint64(acc[i:]))
		b := int64(binary.LittleEndian.Uint64(in[i:]))
		binary.LittleEndian.PutUint64(acc[i:], uint64(a+b))
	}
}

// Reduce combines sendBuf from every rank with op (assumed commutative
// and associative) into recvBuf at root, via a binomial tree.
func (c *Comm) Reduce(p *sim.Proc, root int, op Op, sendBuf, recvBuf []byte) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	size := c.Size()
	relrank := (c.rank - root + size) % size
	acc := append([]byte(nil), sendBuf...)
	tmp := make([]byte, len(sendBuf))
	mask := 1
	for mask < size {
		if relrank&mask != 0 {
			parent := c.rank - mask
			if parent < 0 {
				parent += size
			}
			if err := c.Send(p, parent, tagReduce, acc); err != nil {
				return err
			}
			break
		}
		if relrank+mask < size {
			child := c.rank + mask
			if child >= size {
				child -= size
			}
			if _, err := c.Recv(p, child, tagReduce, tmp); err != nil {
				return err
			}
			p.Delay(sim.Duration(len(tmp)) * c.eng.cfg.Costs.CopyPerByte)
			op(acc, tmp)
		}
		mask <<= 1
	}
	if c.rank == root {
		copy(recvBuf, acc)
	}
	return nil
}

// Gather concatenates equal-size contributions at root:
// recvAll[r*len(send)] holds rank r's send buffer. recvAll may be nil on
// non-root ranks.
func (c *Comm) Gather(p *sim.Proc, root int, send, recvAll []byte) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if c.rank != root {
		return c.Send(p, root, tagGather, send)
	}
	n := len(send)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recvAll[r*n:], send)
			continue
		}
		if _, err := c.Recv(p, r, tagGather, recvAll[r*n:(r+1)*n]); err != nil {
			return err
		}
	}
	return nil
}

// Scatter distributes equal slices of sendAll from root; each rank
// receives its slice into recv. sendAll may be nil on non-root ranks.
func (c *Comm) Scatter(p *sim.Proc, root int, sendAll, recv []byte) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	n := len(recv)
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				copy(recv, sendAll[r*n:(r+1)*n])
				continue
			}
			if err := c.Send(p, r, tagScatter, sendAll[r*n:(r+1)*n]); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := c.Recv(p, root, tagScatter, recv)
	return err
}

// Allgather gathers equal-size contributions everywhere.
func (c *Comm) Allgather(p *sim.Proc, send, recvAll []byte) error {
	return c.allgatherTag(p, tagGatherA, send, recvAll)
}

// allgatherTag implements Allgather with nonblocking sends to every peer
// and per-peer receives, under the given tag (Split uses a private tag).
func (c *Comm) allgatherTag(p *sim.Proc, tag int, send, recvAll []byte) error {
	n := len(send)
	copy(recvAll[c.rank*n:], send)
	var reqs []*Request
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		req, err := c.isend(p, r, tag, send)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for r := 0; r < c.Size(); r++ {
		if r == c.rank {
			continue
		}
		if _, err := c.Recv(p, r, tag, recvAll[r*n:(r+1)*n]); err != nil {
			return err
		}
	}
	return c.Waitall(p, reqs)
}

// Scan computes the inclusive prefix reduction: rank r's recvBuf holds
// send(0) op send(1) op ... op send(r), via a linear pipeline.
func (c *Comm) Scan(p *sim.Proc, op Op, sendBuf, recvBuf []byte) error {
	acc := recvBuf[:len(sendBuf)]
	copy(acc, sendBuf)
	if c.rank > 0 {
		partial := make([]byte, len(sendBuf))
		if _, err := c.Recv(p, c.rank-1, tagScan, partial); err != nil {
			return err
		}
		p.Delay(sim.Duration(len(partial)) * c.eng.cfg.Costs.CopyPerByte)
		// acc = partial op send: combine into a copy of the upstream
		// prefix so non-commutative ops keep rank order.
		tmp := append([]byte(nil), partial...)
		op(tmp, sendBuf)
		copy(acc, tmp)
	}
	if c.rank < c.Size()-1 {
		return c.Send(p, c.rank+1, tagScan, acc)
	}
	return nil
}

// Gatherv gathers variable-size contributions at root: recvs[r] (sized
// by the caller) receives rank r's send buffer. recvs is only read at
// the root.
func (c *Comm) Gatherv(p *sim.Proc, root int, send []byte, recvs [][]byte) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	if c.rank != root {
		return c.Send(p, root, tagGather, send)
	}
	if len(recvs) != c.Size() {
		return fmt.Errorf("%w: Gatherv needs one receive buffer per rank", ErrProtocol)
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			copy(recvs[r], send)
			continue
		}
		if _, err := c.Recv(p, r, tagGather, recvs[r]); err != nil {
			return err
		}
	}
	return nil
}

// Scatterv distributes variable-size slices from root: rank r receives
// sends[r] into recv and returns its length. sends is only read at the
// root.
func (c *Comm) Scatterv(p *sim.Proc, root int, sends [][]byte, recv []byte) (int, error) {
	if err := c.checkRank(root); err != nil {
		return 0, err
	}
	if c.rank == root {
		if len(sends) != c.Size() {
			return 0, fmt.Errorf("%w: Scatterv needs one send buffer per rank", ErrProtocol)
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(p, r, tagScatter, sends[r]); err != nil {
				return 0, err
			}
		}
		return copy(recv, sends[root]), nil
	}
	st, err := c.Recv(p, root, tagScatter, recv)
	return st.Len, err
}

// Alltoall performs a pairwise personalized exchange: rank r's slice
// send[d*n:(d+1)*n] lands in rank d's recv[r*n:(r+1)*n].
func (c *Comm) Alltoall(p *sim.Proc, send, recv []byte) error {
	size := c.Size()
	n := len(send) / size
	copy(recv[c.rank*n:(c.rank+1)*n], send[c.rank*n:(c.rank+1)*n])
	for phase := 1; phase < size; phase++ {
		dst := (c.rank + phase) % size
		src := (c.rank - phase + size) % size
		_, err := c.Sendrecv(p, dst, tagAll2All, send[dst*n:(dst+1)*n],
			src, tagAll2All, recv[src*n:(src+1)*n])
		if err != nil {
			return err
		}
	}
	return nil
}
