package mpi_test

// Boundary and fallback edges of the receiver-posted-window rendezvous
// (Config.RndvZeroCopy): the EagerMax threshold, zero-length payloads,
// truncation, reservation failure, and symmetric windowed exchanges.
// Every fallback must land on the legacy sequential path — the CTS kind
// is the agreement — and never count a zero-copy transfer.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/xport"
)

// windowedPair builds a 2-node SCRAMNet world with the zero-copy
// rendezvous enabled on top of cfg.
func windowedPair(t *testing.T, cfg mpi.Config) (*sim.Kernel, *cluster.Cluster, *mpi.World) {
	t.Helper()
	k := sim.NewKernel()
	c, err := cluster.New(k, cluster.Options{Nodes: 2, Net: cluster.SCRAMNet, PIOOnlyBBP: true})
	if err != nil {
		t.Fatal(err)
	}
	return k, c, mpi.NewWorld(c.Endpoints, cfg)
}

// TestRendezvousBoundaryAtEagerMax pins the protocol selection edge:
// len == EagerMax stays eager, len == EagerMax+1 goes rendezvous — and
// with zero-copy on, exactly the rendezvous message uses a window.
func TestRendezvousBoundaryAtEagerMax(t *testing.T) {
	for _, zc := range []bool{false, true} {
		zc := zc
		t.Run(fmt.Sprintf("zeroCopy=%v", zc), func(t *testing.T) {
			cfg := mpi.DefaultConfig()
			cfg.EagerMax = 1024
			cfg.ChunkSize = 256
			cfg.RndvZeroCopy = zc
			k, _, w := windowedPair(t, cfg)
			w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
				atMax := bytes.Repeat([]byte{0xa5}, cfg.EagerMax)
				overMax := bytes.Repeat([]byte{0x5a}, cfg.EagerMax+1)
				if cm.Rank() == 0 {
					if err := cm.Send(p, 1, 0, atMax); err != nil {
						t.Error(err)
					}
					if err := cm.Send(p, 1, 1, overMax); err != nil {
						t.Error(err)
					}
					return
				}
				buf := make([]byte, cfg.EagerMax+1)
				st, err := cm.Recv(p, 0, 0, buf)
				if err != nil || st.Len != cfg.EagerMax || !bytes.Equal(buf[:st.Len], atMax) {
					t.Errorf("at-max recv: %+v %v", st, err)
				}
				st, err = cm.Recv(p, 0, 1, buf)
				if err != nil || st.Len != cfg.EagerMax+1 || !bytes.Equal(buf[:st.Len], overMax) {
					t.Errorf("over-max recv: %+v %v", st, err)
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			s0 := w.Engine(0).Stats()
			if s0.EagerSent != 1 || s0.RndvSent != 1 {
				t.Errorf("sender stats: %+v, want 1 eager + 1 rndv", s0)
			}
			wantZC := int64(0)
			if zc {
				wantZC = 1
			}
			if s0.RndvZeroCopy != wantZC {
				t.Errorf("RndvZeroCopy = %d, want %d", s0.RndvZeroCopy, wantZC)
			}
		})
	}
}

// TestZeroLengthRendezvous forces even an empty message through the
// rendezvous handshake (EagerMax = -1). The zero-copy path must decline
// a zero-byte window — there is nothing to hand ownership of — and the
// plain-CTS fallback must complete with no data chunks at all.
func TestZeroLengthRendezvous(t *testing.T) {
	cfg := mpi.DefaultConfig()
	cfg.EagerMax = -1
	cfg.RndvZeroCopy = true
	k, _, w := windowedPair(t, cfg)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if cm.Rank() == 0 {
			if err := cm.Send(p, 1, 9, nil); err != nil {
				t.Error(err)
			}
			return
		}
		st, err := cm.Recv(p, 0, 9, nil)
		if err != nil || st.Len != 0 || st.Tag != 9 {
			t.Errorf("zero-length recv: %+v %v", st, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s0, s1 := w.Engine(0).Stats(), w.Engine(1).Stats()
	if s0.RndvSent != 1 || s0.ChunksSent != 0 {
		t.Errorf("sender stats: %+v, want 1 rndv and 0 chunks", s0)
	}
	if s0.RndvZeroCopy != 0 || s1.Received != 1 {
		t.Errorf("stats: sender %+v receiver %+v, want sequential fallback", s0, s1)
	}
}

// TestTruncatedRendezvousSkipsWindow: a receive buffer smaller than the
// payload is flagged ErrTruncated at CTS time, and the windowed path
// must not reserve partition space just to discard into it — the
// fallback drains and discards sequentially, exactly like the legacy
// protocol. The next well-sized transfer goes windowed again.
func TestTruncatedRendezvousSkipsWindow(t *testing.T) {
	const size = 64 << 10
	cfg := mpi.DefaultConfig()
	cfg.RndvZeroCopy = true
	k, _, w := windowedPair(t, cfg)
	payload := bytes.Repeat([]byte{0x3c}, size)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if cm.Rank() == 0 {
			if err := cm.Send(p, 1, 0, payload); err != nil {
				t.Errorf("truncated-side send: %v", err)
			}
			if err := cm.Send(p, 1, 1, payload); err != nil {
				t.Errorf("follow-up send: %v", err)
			}
			return
		}
		small := make([]byte, size/2)
		if _, err := cm.Recv(p, 0, 0, small); !errors.Is(err, mpi.ErrTruncated) {
			t.Errorf("short recv err = %v, want ErrTruncated", err)
		}
		full := make([]byte, size)
		st, err := cm.Recv(p, 0, 1, full)
		if err != nil || st.Len != size || !bytes.Equal(full, payload) {
			t.Errorf("full recv: %+v %v", st, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if s0 := w.Engine(0).Stats(); s0.RndvZeroCopy != 1 {
		t.Errorf("sender RndvZeroCopy = %d, want 1 (truncated transfer must stay sequential)", s0.RndvZeroCopy)
	}
}

// TestWindowReservationFailureFallsBack exhausts the receiver's data
// partition so ReserveWindow cannot find a contiguous span for the
// payload: the CTS must degrade to the plain kind and the transfer
// complete sequentially. Releasing the space restores the windowed path
// — proving the fallback is per-transfer, not sticky.
func TestWindowReservationFailureFallsBack(t *testing.T) {
	const size = 64 << 10
	cfg := mpi.DefaultConfig()
	cfg.RndvZeroCopy = true
	k, c, w := windowedPair(t, cfg)
	payload := bytes.Repeat([]byte{0xd7}, size)
	w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
		if cm.Rank() == 0 {
			if err := cm.Send(p, 1, 0, payload); err != nil {
				t.Errorf("fallback send: %v", err)
			}
			if err := cm.Send(p, 1, 1, payload); err != nil {
				t.Errorf("windowed send: %v", err)
			}
			return
		}
		wnd, ok := c.Endpoints[1].(xport.Windowed)
		if !ok {
			t.Error("BBP endpoint lost the Windowed extension")
			return
		}
		// Pin all but a sliver of the partition so a 64 KiB window can
		// never be carved out (control-packet buffers still fit).
		pin := c.Endpoints[1].MaxMessage() - 8<<10
		off, ok := wnd.ReserveWindow(p, 0, pin)
		if !ok {
			t.Errorf("could not pin %d bytes of the data partition", pin)
			return
		}
		buf := make([]byte, size)
		st, err := cm.Recv(p, 0, 0, buf)
		if err != nil || st.Len != size || !bytes.Equal(buf, payload) {
			t.Errorf("fallback recv: %+v %v", st, err)
		}
		wnd.ReleaseWindow(off, pin)
		for i := range buf {
			buf[i] = 0
		}
		st, err = cm.Recv(p, 0, 1, buf)
		if err != nil || st.Len != size || !bytes.Equal(buf, payload) {
			t.Errorf("windowed recv: %+v %v", st, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	s0 := w.Engine(0).Stats()
	if s0.RndvSent != 2 {
		t.Fatalf("sender stats: %+v, want 2 rendezvous sends", s0)
	}
	if s0.RndvZeroCopy != 1 {
		t.Errorf("RndvZeroCopy = %d, want exactly the post-release transfer windowed", s0.RndvZeroCopy)
	}
}

// TestWindowedBidirectionalExchange extends the classic symmetric
// Sendrecv deadlock test to the windowed path: both ranks are in the
// pipelined rendezvous at once, each writing into the other's posted
// window, at the degenerate depth 1 and a deep pipeline.
func TestWindowedBidirectionalExchange(t *testing.T) {
	const size = 64 << 10
	for _, depth := range []int{1, 4} {
		depth := depth
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			cfg := mpi.DefaultConfig()
			cfg.ChunkSize = 8 << 10
			cfg.RndvZeroCopy = true
			cfg.RndvPipelineDepth = depth
			k, _, w := windowedPair(t, cfg)
			w.RunSPMD(k, func(p *sim.Proc, cm *mpi.Comm) {
				peer := 1 - cm.Rank()
				out := bytes.Repeat([]byte{byte(cm.Rank() + 1)}, size)
				in := make([]byte, size)
				st, err := cm.Sendrecv(p, peer, 0, out, peer, 0, in)
				if err != nil || st.Len != size {
					t.Errorf("rank %d: %+v %v", cm.Rank(), st, err)
					return
				}
				if in[0] != byte(peer+1) || in[size-1] != byte(peer+1) {
					t.Errorf("rank %d got wrong payload", cm.Rank())
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 2; r++ {
				if s := w.Engine(r).Stats(); s.RndvZeroCopy != 1 {
					t.Errorf("rank %d RndvZeroCopy = %d, want 1", r, s.RndvZeroCopy)
				}
			}
		})
	}
}
